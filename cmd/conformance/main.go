// Command conformance runs a randomized cross-model conformance campaign:
// seeded KISA programs executed in lockstep on every CPU model plus the
// reference interpreter, with full architectural diffing, the metamorphic
// stats-invariant catalog, and minimized reproducers for any divergence.
//
// Usage:
//
//	conformance [-seeds N] [-start S] [-jobs J] [-blocks B] [-fuel F]
//	            [-repro DIR]
//
// The exit status is 0 when the campaign is clean and 1 when any
// divergence, invariant violation, or harness error was found. Output is
// deterministic for fixed flags regardless of -jobs. To replay a single
// failing program, rerun with -seeds 1 -start <seed> (each reproducer
// file written under -repro records that command in its header).
package main

import (
	"flag"
	"fmt"
	"os"

	"gem5prof/internal/conformance"
)

func main() {
	seeds := flag.Int("seeds", 500, "number of generated programs")
	start := flag.Int64("start", 1, "first generator seed")
	jobs := flag.Int("jobs", 0, "worker parallelism (0 = GOMAXPROCS)")
	blocks := flag.Int("blocks", 0, "program blocks per seed (0 = generator default)")
	fuel := flag.Int("fuel", 0, "dynamic instruction budget per program (0 = default)")
	repro := flag.String("repro", "internal/conformance/testdata/repro",
		"directory for minimized reproducers of divergent seeds")
	flag.Parse()

	res := conformance.RunCampaign(conformance.CampaignConfig{
		Seeds:     *seeds,
		StartSeed: *start,
		Jobs:      *jobs,
		Blocks:    *blocks,
		Fuel:      *fuel,
		ReproDir:  *repro,
	})
	fmt.Print(res.Summary())
	if res.Failed() {
		os.Exit(1)
	}
}
