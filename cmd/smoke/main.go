// Command smoke is a development scratch harness for eyeballing
// co-simulation calibration. The real deliverables are cmd/experiments and
// the benchmarks; this stays in the tree as a quick doctor.
package main

import (
	"fmt"
	"time"

	"gem5prof/internal/core"
	"gem5prof/internal/platform"
	"gem5prof/internal/uarch"
)

func run(model core.CPUModel, host uarch.Config, workload string, scale int) *core.SessionResult {
	res, err := core.RunSession(core.SessionConfig{
		Guest: core.GuestConfig{CPU: model, Mode: core.SE, Workload: workload, Scale: scale},
		Host:  host,
	})
	if err != nil {
		panic(err)
	}
	return res
}

func main() {
	t0 := time.Now()
	fmt.Println("=== cross-platform (water_nsquared, scale 48) ===")
	for _, model := range core.AllCPUModels {
		x := run(model, platform.IntelXeon(), "water_nsquared", 48)
		p := run(model, platform.M1Pro(), "water_nsquared", 48)
		u := run(model, platform.M1Ultra(), "water_nsquared", 48)
		fmt.Printf("%-7s xeon %.5fs  m1pro %.5fs (%.2fx)  m1ultra %.5fs (%.2fx)  [xeon IPC %.2f m1 IPC %.2f]\n",
			model, x.SimSeconds(), p.SimSeconds(), x.SimSeconds()/p.SimSeconds(),
			u.SimSeconds(), x.SimSeconds()/u.SimSeconds(), x.Host.IPC, p.Host.IPC)
	}

	fmt.Println("=== FireSim L1 sweep (sieve, atomic) ===")
	for _, cfg := range []uarch.Config{
		platform.FireSimRocket(8, 2, 8, 2, 512, 8),
		platform.FireSimRocket(16, 4, 16, 4, 512, 8),
		platform.FireSimRocket(32, 8, 32, 8, 512, 8),
		platform.FireSimRocket(64, 16, 64, 16, 512, 8),
		platform.FireSimRocket(8, 2, 8, 2, 2048, 8),
	} {
		r := run(core.Atomic, cfg, "sieve", 2048)
		fmt.Printf("%-40s %.5fs\n", cfg.Name, r.SimSeconds())
	}

	fmt.Println("=== huge pages (o3) ===")
	for _, hp := range []uarch.HugePageMode{uarch.PagesBase, uarch.PagesTHP, uarch.PagesEHP} {
		cfg := platform.IntelXeon()
		cfg.HugePages = hp
		r := run(core.O3, cfg, "water_nsquared", 48)
		fmt.Printf("%-5v %.5fs  (iTLB share %.2f%%, retiring %.2f%%)\n",
			hp, r.SimSeconds(), 100*r.Host.Level1.ITLBMisses, 100*r.Host.Level1.Retiring)
	}
	fmt.Println("wall:", time.Since(t0).Round(time.Millisecond))
}
