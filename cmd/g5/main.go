// Command g5 runs one guest simulation of the g5 architectural simulator:
// pick a CPU model, a mode, and a workload, and get gem5-style statistics.
//
// Usage:
//
//	g5 -cpu o3 -mode se -workload water_nsquared -scale 96 -stats
//	g5 -mode fs -boot-exit -cpu atomic
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gem5prof"
)

func main() {
	cpuModel := flag.String("cpu", "atomic", "CPU model: atomic|timing|minor|o3")
	mode := flag.String("mode", "se", "simulation mode: se|fs")
	workload := flag.String("workload", "sieve", "workload name (see -list)")
	scale := flag.Int("scale", 0, "problem size (0 = workload default)")
	bootExit := flag.Bool("boot-exit", false, "FS mode: boot the kernel and exit")
	numCPUs := flag.Int("ncpus", 1, "simulated cores (FS mode)")
	ideal := flag.Bool("ideal-mem", false, "disable the cache model")
	guestTLBs := flag.Bool("guest-tlbs", false, "insert guest iTLB/dTLB in front of the L1s")
	stats := flag.Bool("stats", false, "dump the full statistics registry")
	list := flag.Bool("list", false, "list workloads and exit")
	ckptOut := flag.String("take-checkpoint", "", "fast-forward (atomic CPU), write a checkpoint here and exit")
	ckptAfter := flag.Duration("checkpoint-after", 0, "guest time to fast-forward before checkpointing (e.g. 20us)")
	restore := flag.String("restore", "", "resume from a checkpoint file")
	tracePath := flag.String("trace", "", "write an Exec trace (one line per committed instruction)")
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(gem5prof.WorkloadNames(), " "))
		return
	}

	cfg := gem5prof.GuestConfig{
		CPU:         gem5prof.CPUModel(*cpuModel),
		Mode:        gem5prof.Mode(*mode),
		Workload:    *workload,
		Scale:       *scale,
		BootExit:    *bootExit,
		NumCPUs:     *numCPUs,
		IdealMemory: *ideal,
		GuestTLBs:   *guestTLBs,
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "g5:", err)
			os.Exit(1)
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		defer w.Flush()
		cfg.ExecTrace = w
	}
	t0 := time.Now()
	if *ckptOut != "" {
		if err := takeCheckpoint(cfg, *ckptOut, *ckptAfter); err != nil {
			fmt.Fprintln(os.Stderr, "g5:", err)
			os.Exit(1)
		}
		return
	}
	var res *gem5prof.GuestResult
	var err error
	if *restore != "" {
		res, err = restoreAndRun(cfg, *restore)
	} else {
		res, err = gem5prof.RunGuest(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "g5:", err)
		os.Exit(1)
	}
	fmt.Printf("Exiting @ tick %d because %s (code %d)\n", res.SimTicks, res.ExitReason, res.ExitCode)
	fmt.Printf("committed instructions: %d\n", res.Insts)
	fmt.Printf("simulated seconds:      %.6f\n", float64(res.SimTicks)/1e12)
	fmt.Printf("host wall clock:        %v\n", time.Since(t0).Round(time.Millisecond))
	if res.Expected != 0 || res.ChecksumOK {
		fmt.Printf("checksum:               %#x (reference match: %v)\n", uint32(res.ExitCode), res.ChecksumOK)
	}
	if res.Stdout != "" {
		fmt.Printf("--- guest output ---\n%s", res.Stdout)
	}
	if *stats {
		fmt.Print(res.Stats.Dump())
	}
}

// takeCheckpoint fast-forwards with the Atomic CPU and writes a checkpoint.
func takeCheckpoint(cfg gem5prof.GuestConfig, path string, after time.Duration) error {
	cfg.CPU = gem5prof.Atomic
	if after <= 0 {
		after = 20 * time.Microsecond
	}
	g, err := gem5prof.NewGuest(cfg)
	if err != nil {
		return err
	}
	res := g.RunFor(gem5prof.Tick(after.Nanoseconds()) * gem5prof.Nanosecond)
	fmt.Printf("fast-forwarded to tick %d (%v)\n", res.Now, res.Status)
	ck, err := g.TakeCheckpoint()
	if err != nil {
		return err
	}
	data, err := ck.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d instructions, %d bytes\n", path, ck.Insts, len(data))
	return nil
}

// restoreAndRun resumes a checkpoint under the requested CPU model.
func restoreAndRun(cfg gem5prof.GuestConfig, path string) (*gem5prof.GuestResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ck, err := gem5prof.DecodeCheckpoint(data)
	if err != nil {
		return nil, err
	}
	g, err := gem5prof.RestoreFromCheckpoint(cfg, ck)
	if err != nil {
		return nil, err
	}
	fmt.Printf("restored %s at tick %d into the %s model\n", path, ck.Tick, cfg.CPU)
	return g.Run()
}
