// Command g5lint runs this repository's determinism and simulator-contract
// analyzers (internal/lint) over Go packages.
//
// It speaks the `go vet -vettool` unitchecker protocol, so CI runs it as
//
//	go build -o g5lint ./cmd/g5lint
//	go vet -vettool=$PWD/g5lint ./...
//
// and it also works standalone — `go run ./cmd/g5lint ./...` — by
// re-executing itself through go vet, which supplies parsed compilation
// units (and their export data) per package. Standalone modes:
//
//	g5lint [packages]                findings as plain vet lines
//	g5lint -json [packages]          findings as a JSON array on stdout
//	g5lint -suppressions [packages]  audit every //lint: annotation and
//	                                 fail on stale ones (annotations whose
//	                                 diagnostic no longer fires)
//
// Analyzers: detmap, nowallclock, pastsched, atomicring, statreg,
// sinkdiscipline, shardpost, detflow, floatorder, shardescape; see
// internal/lint for what each enforces and for the //lint:deterministic
// and //lint:allow escape hatches.
package main

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"

	"gem5prof/internal/lint"
)

func main() {
	args := os.Args[1:]
	for _, arg := range args {
		if arg == "-V=full" || arg == "--V=full" || arg == "-flags" || arg == "--flags" ||
			strings.HasSuffix(arg, ".cfg") {
			lint.Main(lint.All()) // exits
		}
	}
	jsonMode, suppMode := false, false
	patterns := make([]string, 0, len(args))
	for _, arg := range args {
		switch arg {
		case "-json", "--json":
			jsonMode = true
		case "-suppressions", "--suppressions":
			suppMode = true
		default:
			patterns = append(patterns, arg)
		}
	}
	switch {
	case suppMode:
		os.Exit(suppressionsMode(patterns))
	case jsonMode:
		os.Exit(jsonMode2(patterns))
	default:
		os.Exit(standalone(patterns, nil))
	}
}

// standalone re-invokes the suite through `go vet -vettool=<self>` so the
// go command does the package loading and export-data plumbing. extra
// flags are inserted before the patterns. When capture is nil, output
// streams through; otherwise it is collected there and nothing is shown.
func standalone(patterns []string, capture *bytes.Buffer, extra ...string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "g5lint:", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	vetArgs := append([]string{"vet", "-vettool=" + self}, extra...)
	cmd := exec.Command("go", append(vetArgs, patterns...)...)
	if capture != nil {
		cmd.Stdout = capture
		cmd.Stderr = capture
	} else {
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
	}
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "g5lint:", err)
		return 1
	}
	return 0
}

// findingRE matches one rendered diagnostic line.
var findingRE = regexp.MustCompile(`^(.+?\.go):(\d+):(\d+): (.*) \[g5lint/([a-z]+)\]$`)

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonMode2 runs the suite and reprints the findings as a JSON array on
// stdout (always an array, possibly empty). Exit status 1 means findings
// were present, 2 means the underlying vet run failed some other way.
func jsonMode2(patterns []string) int {
	var out bytes.Buffer
	code := standalone(patterns, &out)
	findings := []jsonFinding{}
	sawOther := false
	for _, line := range strings.Split(out.String(), "\n") {
		m := findingRE.FindStringSubmatch(line)
		if m == nil {
			// Package headers ("# pkg"), blank lines and vet chatter are
			// expected; anything else (build errors) must not vanish.
			if line != "" && !strings.HasPrefix(line, "#") {
				fmt.Fprintln(os.Stderr, line)
				sawOther = true
			}
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		colNo, _ := strconv.Atoi(m[3])
		findings = append(findings, jsonFinding{File: m[1], Line: lineNo, Col: colNo,
			Analyzer: m[5], Message: m[4]})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(findings); err != nil {
		fmt.Fprintln(os.Stderr, "g5lint:", err)
		return 2
	}
	if code != 0 && len(findings) == 0 && sawOther {
		return 2
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// suppressionsMode audits every //lint: annotation: each unit re-runs
// with a cache-busting nonce and reports its annotations as
// g5lint-suppression lines; this parent renders the table and fails when
// any annotation is stale (suppresses nothing anymore).
func suppressionsMode(patterns []string) int {
	var nonce [8]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		fmt.Fprintln(os.Stderr, "g5lint:", err)
		return 2
	}
	var out bytes.Buffer
	standalone(patterns, &out, "-suppressions=run"+hex.EncodeToString(nonce[:]))
	type entry struct{ loc, analyzer, status, reason string }
	var entries []entry
	stale := 0
	for _, line := range strings.Split(out.String(), "\n") {
		rest, ok := strings.CutPrefix(line, lint.SuppressionPrefix)
		if !ok {
			// Ordinary findings still stream through in audit mode.
			if findingRE.MatchString(line) {
				fmt.Fprintln(os.Stderr, line)
			}
			continue
		}
		f := strings.SplitN(strings.TrimPrefix(rest, "\t"), "\t", 4)
		if len(f) != 4 {
			continue
		}
		entries = append(entries, entry{f[0], f[1], f[2], f[3]})
		if f[2] == "stale" {
			stale++
		}
	}
	for _, e := range entries {
		status := e.status
		if status == "stale" {
			status = "STALE"
		}
		fmt.Printf("%-5s %-12s %s\n      reason: %s\n", status, e.analyzer, e.loc, e.reason)
	}
	fmt.Printf("%d suppressions, %d stale\n", len(entries), stale)
	if stale > 0 {
		fmt.Println("stale suppressions excuse diagnostics that no longer fire; delete them")
		return 1
	}
	return 0
}
