// Command g5lint runs this repository's determinism and simulator-contract
// analyzers (internal/lint) over Go packages.
//
// It speaks the `go vet -vettool` unitchecker protocol, so CI runs it as
//
//	go build -o g5lint ./cmd/g5lint
//	go vet -vettool=$PWD/g5lint ./...
//
// and it also works standalone — `go run ./cmd/g5lint ./...` — by
// re-executing itself through go vet, which supplies parsed compilation
// units (and their export data) per package.
//
// Analyzers: detmap, nowallclock, pastsched, atomicring, statreg,
// sinkdiscipline; see internal/lint for what each enforces and for the
// //lint:deterministic / //lint:allow escape hatches.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"gem5prof/internal/lint"
)

func main() {
	args := os.Args[1:]
	for _, arg := range args {
		if arg == "-V=full" || arg == "--V=full" || arg == "-flags" || arg == "--flags" ||
			strings.HasSuffix(arg, ".cfg") {
			lint.Main(lint.All()) // exits
		}
	}
	os.Exit(standalone(args))
}

// standalone re-invokes the suite through `go vet -vettool=<self>` so the
// go command does the package loading and export-data plumbing.
func standalone(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "g5lint:", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "g5lint:", err)
		return 1
	}
	return 0
}
