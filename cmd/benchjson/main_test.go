package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: gem5prof
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCosimXeonSerial-4     	       2	600000000 ns/op	     50000 allocs/op
BenchmarkCosimXeonPipelined-4  	       3	400000000 ns/op	       1.5 speedup-x
BenchmarkEventQueueHeap/depth64-4	10000000	      70.0 ns/op
PASS
ok  	gem5prof	12.3s
`

func TestParseStream(t *testing.T) {
	doc, err := parseStream(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Context["cpu"] != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu context = %q", doc.Context["cpu"])
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	byName := map[string]Result{}
	for _, b := range doc.Benchmarks {
		byName[b.Name] = b
	}
	if got := byName["BenchmarkCosimXeonSerial"]; got.NsPerOp != 600000000 || got.AllocsPerOp == nil || *got.AllocsPerOp != 50000 {
		t.Fatalf("serial result = %+v", got)
	}
	if got := byName["BenchmarkCosimXeonPipelined"]; got.Metrics["speedup-x"] != 1.5 {
		t.Fatalf("pipelined metrics = %+v", got.Metrics)
	}
	if _, ok := byName["BenchmarkEventQueueHeap/depth64"]; !ok {
		t.Fatal("sub-benchmark name not preserved")
	}
}

// TestCompareGate is the regression-gate contract: within tolerance passes,
// beyond tolerance fails, both baseline spellings (ns_per_op and
// after_ns_per_op) gate, and baselines missing from the fresh run warn
// without failing.
func TestCompareGate(t *testing.T) {
	fresh := Doc{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 110},  // +10% vs 100: within 15%
		{Name: "BenchmarkB", NsPerOp: 120},  // +20% vs 100: regression
		{Name: "BenchmarkC", NsPerOp: 90},   // improvement
		{Name: "BenchmarkD", NsPerOp: 1000}, // no baseline entry: ignored
	}}
	base := baselineDoc{Benchmarks: []baselineEntry{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", AfterNsPerOp: 100}, // before/after record form
		{Name: "BenchmarkC", NsPerOp: 100, AfterNsPerOp: 95},
		{Name: "BenchmarkUnmeasured", NsPerOp: 50},
		{Name: "BenchmarkNoValue"}, // no usable baseline: skipped
	}}
	got := compare(fresh, base, 0.15)
	regressed := map[string]bool{}
	for _, v := range got {
		name, _, _ := strings.Cut(v.text, ":")
		regressed[name] = v.regressed
	}
	if len(got) != 4 {
		t.Fatalf("got %d verdicts, want 4: %+v", len(got), got)
	}
	for name, want := range map[string]bool{
		"BenchmarkA":          false,
		"BenchmarkB":          true,
		"BenchmarkC":          false,
		"BenchmarkUnmeasured": false,
	} {
		if v, ok := regressed[name]; !ok || v != want {
			t.Errorf("%s: regressed=%v present=%v, want regressed=%v", name, v, ok, want)
		}
	}
	// after_ns_per_op must win over ns_per_op when both are present.
	if e := (baselineEntry{NsPerOp: 100, AfterNsPerOp: 95}); e.baseline() != 95 {
		t.Errorf("baseline() = %v, want after_ns_per_op 95", e.baseline())
	}
}

// TestCompareToleranceBoundary pins the strict-inequality edge: exactly
// tolerance is not a regression.
func TestCompareToleranceBoundary(t *testing.T) {
	fresh := Doc{Benchmarks: []Result{{Name: "BenchmarkEdge", NsPerOp: 115}}}
	base := baselineDoc{Benchmarks: []baselineEntry{{Name: "BenchmarkEdge", NsPerOp: 100}}}
	for _, v := range compare(fresh, base, 0.15) {
		if v.regressed {
			t.Fatalf("exactly +15%% flagged as regression: %s", v.text)
		}
	}
}

// writeBaseline drops content into a temp file and returns its path.
func writeBaseline(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunCheckExitCodes is the fail-closed contract of the -check gate: a
// clean comparison exits 0; a regression exits 3; and a baseline that
// cannot gate anything — unreadable, malformed JSON, an empty {}, or a
// schema-drifted document with no usable entries — also exits 3 instead
// of letting the gate pass vacuously.
func TestRunCheckExitCodes(t *testing.T) {
	fresh := Doc{
		Context:    map[string]string{"cpu": "test-cpu"},
		Benchmarks: []Result{{Name: "BenchmarkA", NsPerOp: 100}},
	}
	good := writeBaseline(t, "good.json", `{"benchmarks":[{"name":"BenchmarkA","ns_per_op":95}]}`)
	slow := writeBaseline(t, "slow.json", `{"benchmarks":[{"name":"BenchmarkA","ns_per_op":50}]}`)
	malformed := writeBaseline(t, "malformed.json", `{"benchmarks": [`)
	empty := writeBaseline(t, "empty.json", `{}`)
	drifted := writeBaseline(t, "drifted.json", `{"benchmarks":[{"nm":"BenchmarkA","nsop":95}]}`)

	cases := []struct {
		name  string
		paths []string
		want  int
	}{
		{"clean", []string{good}, 0},
		{"regression", []string{slow}, 3},
		{"malformed JSON", []string{malformed}, 3},
		{"empty document", []string{empty}, 3},
		{"schema drift", []string{drifted}, 3},
		{"missing file", []string{filepath.Join(t.TempDir(), "nope.json")}, 3},
		{"bad baseline fails alongside a clean one", []string{good, malformed}, 3},
		{"blank paths are skipped", []string{"", " "}, 0},
	}
	for _, c := range cases {
		var buf strings.Builder
		if got := runCheck(fresh, c.paths, 0.15, &buf); got != c.want {
			t.Errorf("%s: runCheck = %d, want %d\nstderr:\n%s", c.name, got, c.want, buf.String())
		}
	}
}
