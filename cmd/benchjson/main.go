// Command benchjson converts `go test -bench` text output (on stdin)
// into a JSON document (on stdout), for archiving benchmark runs as CI
// artifacts (BENCH_hotpath.json) so the perf trajectory of the hot-path
// data structures is machine-comparable across commits.
//
// Usage:
//
//	go test -bench 'BenchmarkHostMachineFetch' -benchmem . | go run ./cmd/benchjson > BENCH_hotpath.json
//
// Lines that are not benchmark results (goos/goarch/pkg/cpu headers, PASS,
// ok) are folded into the context block; unknown lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64           `json:"mb_per_sec,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Result          `json:"benchmarks"`
}

func main() {
	doc := Doc{Context: map[string]string{}, Benchmarks: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			doc.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// parseBench parses one result line of the form
//
//	BenchmarkName-8   1234   56.7 ns/op   8 B/op   1 allocs/op   2.5 extra-unit
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	// The rest are value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = &v
		case "allocs/op":
			r.AllocsPerOp = &v
		case "MB/s":
			r.MBPerSec = &v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
