// Command benchjson converts `go test -bench` text output (on stdin)
// into a JSON document (on stdout), for archiving benchmark runs as CI
// artifacts (BENCH_hotpath.json) so the perf trajectory of the hot-path
// data structures is machine-comparable across commits.
//
// Usage:
//
//	go test -bench 'BenchmarkHostMachineFetch' -benchmem . | go run ./cmd/benchjson > BENCH_hotpath.json
//
//	go test -bench ... | go run ./cmd/benchjson \
//	    -check BENCH_hotpath.json,BENCH_pipeline.json -tolerance 0.15 > fresh.json
//
// Lines that are not benchmark results (goos/goarch/pkg/cpu headers, PASS,
// ok) are folded into the context block; unknown lines are ignored.
//
// -check is the CI regression gate: every checked-in record whose name
// matches a fresh result is compared on ns/op (a record's baseline is its
// after_ns_per_op field if present, else ns_per_op — both the archived
// before/after documents at the repo root and benchjson's own output
// parse), and the command exits 3 if any fresh result is more than
// -tolerance (default 0.15, i.e. 15%) slower than its baseline — or if a
// baseline file is unreadable, is not valid JSON, or contains no usable
// entries, since a gate whose baseline fails to load must fail rather
// than pass vacuously. This is what keeps the hot-path flattening PR's
// and the pipelining PR's wins from silently rotting. Baselines are
// per-runner-class: a cpu mismatch
// between the baseline's context block and the fresh run's is reported to
// stderr so cross-machine noise is diagnosable.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64           `json:"mb_per_sec,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Result          `json:"benchmarks"`
}

func main() {
	check := flag.String("check", "", "comma-separated baseline JSON files; fail (exit 3) on any >tolerance ns/op regression")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional ns/op regression against -check baselines")
	flag.Parse()

	doc, err := parseStream(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *check == "" {
		return
	}
	os.Exit(runCheck(doc, strings.Split(*check, ","), *tolerance, os.Stderr))
}

// runCheck gates the fresh document against every baseline file and
// returns the process exit code: 0 when clean, 3 on any regression or any
// unusable baseline. An unreadable file, malformed JSON, or a document
// with no gateable ns/op entries (schema drift, an empty {}) all exit 3
// rather than warn: a gate that cannot load its baseline would otherwise
// pass vacuously, which is indistinguishable from green in CI.
func runCheck(doc Doc, paths []string, tolerance float64, stderr io.Writer) int {
	failed := false
	for _, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		base, err := loadBaseline(path)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: bad baseline: %v\n", err)
			failed = true
			continue
		}
		if base.gateable() == 0 {
			fmt.Fprintf(stderr, "benchjson: bad baseline: %s: no usable ns/op entries (empty or schema-drifted document)\n", path)
			failed = true
			continue
		}
		if bcpu, fcpu := base.contextString("cpu"), doc.Context["cpu"]; bcpu != "" && fcpu != "" && bcpu != fcpu {
			fmt.Fprintf(stderr, "benchjson: note: %s was recorded on %q, this run is on %q — absolute comparison is cross-machine\n",
				path, bcpu, fcpu)
		}
		for _, line := range compare(doc, base, tolerance) {
			fmt.Fprintf(stderr, "benchjson: %s: %s\n", path, line.text)
			failed = failed || line.regressed
		}
	}
	if failed {
		fmt.Fprintf(stderr, "benchjson: FAIL: benchmark regression beyond %.0f%% or unusable baseline\n", tolerance*100)
		return 3
	}
	return 0
}

// parseStream parses `go test -bench` output into a Doc.
func parseStream(in io.Reader) (Doc, error) {
	doc := Doc{Context: map[string]string{}, Benchmarks: []Result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			doc.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	return doc, sc.Err()
}

// baselineEntry is one record of a checked-in benchmark document. Both
// benchjson's own output (ns_per_op) and the hand-annotated before/after
// records at the repo root (after_ns_per_op) parse into it.
type baselineEntry struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AfterNsPerOp float64 `json:"after_ns_per_op"`
}

// baseline returns the entry's gating value: the post-optimization number
// when the record carries a before/after pair, else the plain measurement.
func (e baselineEntry) baseline() float64 {
	if e.AfterNsPerOp > 0 {
		return e.AfterNsPerOp
	}
	return e.NsPerOp
}

// baselineDoc is a checked-in benchmark document. Context values are
// free-form (the hand-annotated records carry non-string entries), so they
// decode as any.
type baselineDoc struct {
	Context    map[string]any  `json:"context"`
	Benchmarks []baselineEntry `json:"benchmarks"`
}

// contextString returns the named context value if it is a string.
func (d baselineDoc) contextString(key string) string {
	s, _ := d.Context[key].(string)
	return s
}

// gateable counts entries carrying a usable positive baseline value.
func (d baselineDoc) gateable() int {
	n := 0
	for _, e := range d.Benchmarks {
		if e.baseline() > 0 {
			n++
		}
	}
	return n
}

func loadBaseline(path string) (baselineDoc, error) {
	var doc baselineDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// verdict is one comparison outcome line.
type verdict struct {
	text      string
	regressed bool
}

// compare gates fresh against base: any fresh ns/op more than tolerance
// above its baseline is a regression. Baseline entries the fresh run did
// not measure are reported but never fail (bench selection legitimately
// varies); entries without a usable baseline value are skipped.
func compare(fresh Doc, base baselineDoc, tolerance float64) []verdict {
	freshBy := map[string]Result{}
	for _, r := range fresh.Benchmarks {
		freshBy[r.Name] = r
	}
	var out []verdict
	for _, e := range base.Benchmarks {
		want := e.baseline()
		if want <= 0 {
			continue
		}
		got, ok := freshBy[e.Name]
		if !ok {
			out = append(out, verdict{text: fmt.Sprintf("%s: baseline %.4g ns/op, not measured in this run", e.Name, want)})
			continue
		}
		ratio := got.NsPerOp / want
		switch {
		case ratio > 1+tolerance:
			out = append(out, verdict{
				text: fmt.Sprintf("%s: REGRESSED %.4g -> %.4g ns/op (%+.1f%%, limit %+.0f%%)",
					e.Name, want, got.NsPerOp, (ratio-1)*100, tolerance*100),
				regressed: true,
			})
		default:
			out = append(out, verdict{text: fmt.Sprintf("%s: ok %.4g -> %.4g ns/op (%+.1f%%)",
				e.Name, want, got.NsPerOp, (ratio-1)*100)})
		}
	}
	return out
}

// parseBench parses one result line of the form
//
//	BenchmarkName-8   1234   56.7 ns/op   8 B/op   1 allocs/op   2.5 extra-unit
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	// The rest are value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = &v
		case "allocs/op":
			r.AllocsPerOp = &v
		case "MB/s":
			r.MBPerSec = &v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
