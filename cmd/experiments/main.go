// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] [-run table1,fig01,...|all] [-o out.txt]
//
// Each experiment prints an aligned table whose rows mirror the series of
// the corresponding figure, plus notes comparing the measured shape with the
// paper's published numbers (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gem5prof/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced workload sets and problem sizes")
	runList := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	outPath := flag.String("o", "", "also write the report to this file")
	flag.Parse()

	ids := experiments.IDs()
	if *runList != "all" {
		ids = strings.Split(*runList, ",")
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	opt := experiments.Options{Quick: *quick}
	start := time.Now()
	failed := 0
	for _, id := range ids {
		t0 := time.Now()
		res, err := experiments.Run(strings.TrimSpace(id), opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Fprint(out, res.Render())
		fmt.Fprintf(out, "  (generated in %v)\n\n", time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(out, "total: %v\n", time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		os.Exit(1)
	}
}
