// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] [-run table1,fig01,...|all] [-j N] [-o out.txt]
//
// Each experiment prints an aligned table whose rows mirror the series of
// the corresponding figure, plus notes comparing the measured shape with the
// paper's published numbers (see EXPERIMENTS.md).
//
// -j bounds how many simulation runs execute concurrently (default
// GOMAXPROCS): experiments fan out against each other and the independent
// runs inside each experiment fan out too, all on one shared pool. The
// report on stdout (and -o) is byte-identical for every -j value — results
// are collected in cell order and per-run seeds derive from (experiment id,
// cell index) — so only timing, which is inherently nondeterministic, goes
// to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"gem5prof/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced workload sets and problem sizes")
	runList := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulation runs (output is identical for any value)")
	outPath := flag.String("o", "", "also write the report to this file")
	flag.Parse()

	ids := experiments.IDs()
	if *runList != "all" {
		ids = strings.Split(*runList, ",")
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	opt := experiments.Options{Quick: *quick, Jobs: *jobs}
	start := time.Now()
	failed := 0
	// Outcomes arrive in ids order (not completion order), so the report
	// streams deterministically while later experiments keep computing.
	for oc := range experiments.RunMany(ids, opt) {
		if oc.Err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", oc.ID, oc.Err)
			failed++
			continue
		}
		fmt.Fprint(out, oc.Res.Render())
		fmt.Fprintln(out)
		fmt.Fprintf(os.Stderr, "%s done at %v\n", oc.ID, time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "total: %v (-j %d)\n", time.Since(start).Round(time.Millisecond), *jobs)
	if failed > 0 {
		os.Exit(1)
	}
}
