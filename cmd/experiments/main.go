// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] [-run table1,fig01,...|all] [-j N] [-pipeline auto|on|off]
//	            [-shards auto|off|N] [-cores N] [-simpoint] [-simpoint-interval N]
//	            [-ckpt-cache-dir DIR] [-o out.txt] [-cpuprofile cpu.out]
//	            [-memprofile mem.out]
//
// -cores caps the multicore guest scaling sweep (fig16): each cell builds
// an N-core SE guest with per-core L1s/TLBs behind a MESI-style directory
// at the shared L2 (DESIGN.md §14); 0 keeps the default 1/2/4 sweep.
//
// -simpoint switches the sweep-shaped figures (10, 12, 13) to SimPoint-style
// sampled simulation (see DESIGN.md §12): profile once on the Atomic model,
// cluster the basic-block vectors into phases, then simulate only one
// representative interval per phase on the detailed model and extrapolate by
// cluster weight. Sampled figures carry a note documenting the mode and its
// error bound; figures that need full microarchitectural detail (fig11's
// Top-Down breakdown) always run full. -ckpt-cache-dir persists the
// fast-forward checkpoints across processes in a content-addressed,
// self-verifying cache (internal/ckptcache); corrupt or version-skewed
// entries are evicted and re-simulated, never restored.
//
// -cpuprofile and -memprofile write pprof profiles of the harness itself
// (the tool the paper applies to gem5, applied to our reproduction of it),
// which is how the hot-path work in internal/uarch, internal/hostmodel and
// internal/mem is measured before and after. Profiles are flushed and
// closed via defer on every exit path, including experiment failures, so a
// failing run still yields a usable profile. Goroutines carry pprof labels
// (cosim-stage = experiment-worker / guest-producer / uarch-consumer), so
// `go tool pprof -tagfocus` attributes time to pipeline stages.
//
// -pipeline controls the in-session producer/consumer split (see DESIGN.md
// §10): every co-simulation runs its guest simulator + trace synthesis and
// its host uarch model on separate goroutines coupled by a batched SPSC
// ring. Output is byte-identical in every mode; "auto" (default) enables
// it when GOMAXPROCS > 1. See EXPERIMENTS.md for the full flag reference.
//
// -shards controls the third parallelism axis: sharded per-domain event
// queues inside each guest simulation (DESIGN.md §13) — the CPU complex and
// the DRAM controller advance on separate goroutines under a conservative
// quantum barrier. Output is byte-identical at every shard count; "auto"
// enables two shards when GOMAXPROCS >= 4, and the default is "off" because
// job-level parallelism (-j) already saturates small hosts.
//
// Each experiment prints an aligned table whose rows mirror the series of
// the corresponding figure, plus notes comparing the measured shape with the
// paper's published numbers (see EXPERIMENTS.md).
//
// -j bounds how many simulation runs execute concurrently (default
// GOMAXPROCS): experiments fan out against each other and the independent
// runs inside each experiment fan out too, all on one shared pool. The
// report on stdout (and -o) is byte-identical for every -j value — results
// are collected in cell order and per-run seeds derive from (experiment id,
// cell index) — so only timing, which is inherently nondeterministic, goes
// to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"gem5prof/internal/core"
	"gem5prof/internal/experiments"
)

func main() {
	// Indirection so deferred profile writers run before the process
	// exits, even when experiments fail.
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "use reduced workload sets and problem sizes")
	runList := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "max concurrent simulation runs (output is identical for any value)")
	pipeline := flag.String("pipeline", "auto", "in-session producer/consumer pipeline: auto, on, or off (output is identical in every mode)")
	shards := flag.String("shards", "off", "per-domain event-queue sharding inside each simulation: auto, off, or a shard count (output is identical in every mode)")
	cores := flag.Int("cores", 0, "cap the multicore scaling sweep (fig16) at this guest core count (0 = default 1/2/4)")
	simPoint := flag.Bool("simpoint", false, "sample the sweep figures (10, 12, 13) via SimPoint-style phase-representative intervals")
	simPointInterval := flag.Uint64("simpoint-interval", 0, "override the SimPoint profiling interval in committed instructions (0 = harness default)")
	ckptCacheDir := flag.String("ckpt-cache-dir", "", "persist fast-forward checkpoints in this directory (content-addressed, self-verifying)")
	outPath := flag.String("o", "", "also write the report to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the harness to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	mode, ok := core.ParsePipelineMode(*pipeline)
	if !ok {
		fmt.Fprintf(os.Stderr, "invalid -pipeline %q (want auto, on, or off)\n", *pipeline)
		return 2
	}
	core.SetDefaultPipeline(mode)

	smode, ok := core.ParseShardMode(*shards)
	if !ok {
		fmt.Fprintf(os.Stderr, "invalid -shards %q (want auto, off, or a shard count)\n", *shards)
		return 2
	}
	core.SetDefaultShards(smode)

	// Log each distinct effective shard layout once: -shards is a pure
	// performance knob, so the only interesting fact is what the request
	// actually resolved to (clamps included), not one line per simulation.
	var (
		shardLogMu   sync.Mutex
		shardLogSeen = map[string]bool{}
	)
	core.SetDefaultShardLog(func(line string) {
		shardLogMu.Lock()
		defer shardLogMu.Unlock()
		if shardLogSeen[line] {
			return
		}
		shardLogSeen[line] = true
		fmt.Fprintln(os.Stderr, line)
	})

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		// Stop and close via defer so the profile is complete on every
		// exit path of run() — experiment failures included. (main exits
		// through run()'s return value, never os.Exit directly, precisely
		// so these defers always execute.)
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile shows retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	ids := experiments.IDs()
	if *runList != "all" {
		ids = strings.Split(*runList, ",")
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	opt := experiments.Options{
		Quick: *quick, Jobs: *jobs,
		Cores:            *cores,
		SimPoint:         *simPoint,
		SimPointInterval: *simPointInterval,
		CkptCacheDir:     *ckptCacheDir,
	}
	start := time.Now()
	failed := 0
	// Outcomes arrive in ids order (not completion order), so the report
	// streams deterministically while later experiments keep computing.
	for oc := range experiments.RunMany(ids, opt) {
		if oc.Err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", oc.ID, oc.Err)
			failed++
			continue
		}
		fmt.Fprint(out, oc.Res.Render())
		fmt.Fprintln(out)
		fmt.Fprintf(os.Stderr, "%s done at %v\n", oc.ID, time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "total: %v (-j %d)\n", time.Since(start).Round(time.Millisecond), *jobs)
	if failed > 0 {
		return 1
	}
	return 0
}
