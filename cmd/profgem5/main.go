// Command profgem5 is the paper's measurement in one invocation: run the g5
// simulator under a modeled host platform and print the VTune-style profile
// (Top-Down breakdown, cache/TLB/branch rates, simulation time) and
// optionally the perf-style hot-function table.
//
// Usage:
//
//	profgem5 -platform Intel_Xeon -cpu o3 -workload water_nsquared
//	profgem5 -platform M1_Pro -cpu atomic -top 20
//	profgem5 -platform Intel_Xeon -hugepages thp -procs 20
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gem5prof"
)

func main() {
	plat := flag.String("platform", "Intel_Xeon", "host platform: Intel_Xeon|M1_Pro|M1_Ultra")
	cpuModel := flag.String("cpu", "atomic", "guest CPU model: atomic|timing|minor|o3")
	mode := flag.String("mode", "se", "guest mode: se|fs")
	workload := flag.String("workload", "water_nsquared", "guest workload")
	scale := flag.Int("scale", 0, "problem size (0 = default)")
	bootExit := flag.Bool("boot-exit", false, "FS: boot and exit")
	top := flag.Int("top", 0, "print the N hottest simulator functions")
	procs := flag.Int("procs", 1, "co-running gem5 processes (LLC contention)")
	smt := flag.Bool("smt", false, "share each physical core between two processes")
	hugepages := flag.String("hugepages", "base", "code backing: base|thp|ehp")
	o3build := flag.Bool("O3-build", false, "model the -O3 compiled binary")
	flag.Parse()

	host, err := gem5prof.PlatformByName(*plat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profgem5:", err)
		os.Exit(1)
	}
	switch *hugepages {
	case "base":
	case "thp":
		host.HugePages = gem5prof.PagesTHP
	case "ehp":
		host.HugePages = gem5prof.PagesEHP
	default:
		fmt.Fprintf(os.Stderr, "profgem5: unknown -hugepages %q\n", *hugepages)
		os.Exit(1)
	}

	cfg := gem5prof.SessionConfig{
		Guest: gem5prof.GuestConfig{
			CPU:      gem5prof.CPUModel(*cpuModel),
			Mode:     gem5prof.Mode(*mode),
			Workload: *workload,
			Scale:    *scale,
			BootExit: *bootExit,
		},
		Host:     host,
		Scenario: gem5prof.Scenario{Procs: *procs, SMT: *smt},
		Profile:  *top > 0,
	}
	if *o3build {
		cfg.HostCode = gem5prof.HostCodeConfig{SizeFactor: 0.97}
	}

	t0 := time.Now()
	res, err := gem5prof.RunSession(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profgem5:", err)
		os.Exit(1)
	}
	fmt.Printf("guest: %d instructions, %d simulator events, exited: %s\n",
		res.Guest.Insts, res.Guest.HostEvents, res.Guest.ExitReason)
	fmt.Printf("simulator binary: %.1f MB text, %d functions (%d called)\n",
		float64(res.TextBytes)/1e6, res.NumFuncs, res.CalledFuncs)
	fmt.Printf("simulation time (host seconds): %.6f\n\n", res.SimSeconds())
	fmt.Print(res.Host)
	if res.Prof != nil {
		fmt.Printf("\nhottest %d functions:\n%s", *top, res.Prof.Render(*top))
	}
	fmt.Printf("\n(wall clock %v)\n", time.Since(t0).Round(time.Millisecond))
}
