// platform_compare is the paper's headline experiment in miniature: profile
// the same gem5 simulation on the Intel Xeon and Apple M1 host models and
// watch the M1 finish first, driven by its larger VIPT L1 caches and 16KB
// pages (paper Figs. 1, 7, 8).
package main

import (
	"fmt"
	"log"

	"gem5prof"
)

func main() {
	hosts := []gem5prof.HostConfig{
		gem5prof.IntelXeon(),
		gem5prof.M1Pro(),
		gem5prof.M1Ultra(),
	}

	fmt.Printf("%-8s", "cpu")
	for _, h := range hosts {
		fmt.Printf(" %22s", h.Name)
	}
	fmt.Println("   (simulation host-seconds; speedup vs Xeon)")

	for _, cpu := range gem5prof.AllCPUModels {
		fmt.Printf("%-8s", cpu)
		var xeon float64
		for i, host := range hosts {
			res, err := gem5prof.RunSession(gem5prof.SessionConfig{
				Guest: gem5prof.GuestConfig{
					CPU:      cpu,
					Mode:     gem5prof.SE,
					Workload: "water_nsquared",
					Scale:    48,
				},
				Host: host,
			})
			if err != nil {
				log.Fatal(err)
			}
			t := res.SimSeconds()
			if i == 0 {
				xeon = t
				fmt.Printf(" %14.6fs  1.00x", t)
			} else {
				fmt.Printf(" %14.6fs %5.2fx", t, xeon/t)
			}
		}
		fmt.Println()
	}

	// Show why: the per-platform micro-architecture profile.
	fmt.Println("\nwhy (O3 simulation):")
	for _, host := range hosts {
		res, err := gem5prof.RunSession(gem5prof.SessionConfig{
			Guest: gem5prof.GuestConfig{
				CPU: gem5prof.O3, Mode: gem5prof.SE,
				Workload: "water_nsquared", Scale: 48,
			},
			Host: host,
		})
		if err != nil {
			log.Fatal(err)
		}
		r := res.Host
		fmt.Printf("%-11s IPC %4.2f  stalled %4.1f%%  L1I miss %5.2f%%  iTLB miss %5.2f%%  dTLB miss %5.2f%%\n",
			host.Name, r.IPC, 100*r.StallFrac, 100*r.ICacheMissRate,
			100*r.ITLBMissRate, 100*r.DTLBMissRate)
	}
	fmt.Println("\nthe M1's 192KB iCache (6x the Xeon's) and 16KB pages cut the")
	fmt.Println("front-end stalls that dominate gem5 — the paper's core finding.")
}
