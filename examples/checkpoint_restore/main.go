// checkpoint_restore demonstrates the gem5 methodology the paper relies on
// (Sec. III): fast-forward a workload with the cheap Atomic CPU, take a
// readable checkpoint, and restore it into the detailed O3 model — the
// standard way to reach a region of interest without paying for detailed
// simulation of the whole run. The paper's footnote about M1 machines not
// taking readable checkpoints refers to exactly this flow.
package main

import (
	"fmt"
	"log"

	"gem5prof"
)

func main() {
	const (
		workload = "water_nsquared"
		scale    = 96
	)

	// Reference: one uninterrupted detailed run.
	full, err := gem5prof.RunGuest(gem5prof.GuestConfig{
		CPU: gem5prof.O3, Workload: workload, Scale: scale,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Fast-forward with the Atomic CPU (cheap, CPI=1).
	ff, err := gem5prof.NewGuest(gem5prof.GuestConfig{
		CPU: gem5prof.Atomic, Workload: workload, Scale: scale,
	})
	if err != nil {
		log.Fatal(err)
	}
	res := ff.RunFor(20 * gem5prof.Microsecond)
	fmt.Printf("fast-forwarded to tick %d (%v)\n", res.Now, res.Status)

	// 2. Take a readable (JSON) checkpoint.
	ck, err := ff.TakeCheckpoint()
	if err != nil {
		log.Fatal(err)
	}
	data, err := ck.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d instructions, %d KB of JSON\n", ck.Insts, len(data)/1024)

	// 3. Restore into the detailed O3 model and run the region of interest.
	ck2, err := gem5prof.DecodeCheckpoint(data)
	if err != nil {
		log.Fatal(err)
	}
	detailed, err := gem5prof.RestoreFromCheckpoint(gem5prof.GuestConfig{
		CPU: gem5prof.O3, Workload: workload, Scale: scale,
	}, ck2)
	if err != nil {
		log.Fatal(err)
	}
	rest, err := detailed.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("restored O3 run: %d more instructions, checksum %#x\n",
		rest.Insts, uint32(rest.ExitCode))
	fmt.Printf("uninterrupted O3 run checksum:             %#x\n", uint32(full.ExitCode))
	if rest.ExitCode == full.ExitCode {
		fmt.Println("=> identical results: the checkpoint is architecturally exact")
	} else {
		log.Fatal("checksum mismatch!")
	}
}
