// hugepages reproduces the paper's Sec. V-A system tuning in miniature:
// back the simulator's code with transparent or explicit huge pages and
// watch the iTLB stalls collapse (paper Figs. 10-11).
package main

import (
	"fmt"
	"log"

	"gem5prof"
)

func main() {
	modes := []struct {
		label string
		mode  gem5prof.HugePageMode
	}{
		{"4KB pages (baseline)", gem5prof.PagesBase},
		{"transparent huge pages (THP)", gem5prof.PagesTHP},
		{"explicit huge pages (EHP)", gem5prof.PagesEHP},
	}

	fmt.Println("gem5 (O3 model, water_nsquared) on Intel_Xeon with different code backing:")
	var base float64
	for i, m := range modes {
		host := gem5prof.IntelXeon()
		host.HugePages = m.mode
		res, err := gem5prof.RunSession(gem5prof.SessionConfig{
			Guest: gem5prof.GuestConfig{
				CPU:      gem5prof.O3,
				Mode:     gem5prof.SE,
				Workload: "water_nsquared",
				Scale:    64,
			},
			Host: host,
		})
		if err != nil {
			log.Fatal(err)
		}
		t := res.SimSeconds()
		if i == 0 {
			base = t
		}
		fmt.Printf("%-30s time %.6fs  speedup %+5.2f%%  iTLB stalls %5.2f%% of cycles  retiring %5.2f%%\n",
			m.label, t, 100*(base/t-1),
			100*res.Host.Level1.ITLBMisses, 100*res.Host.Level1.Retiring)
	}
	fmt.Println("\npaper: huge pages buy up to 5.9% simulation speed, cutting iTLB")
	fmt.Println("overhead ~63% on average — most of it for detailed CPU models.")
}
