// Quickstart: run one guest program on the g5 simulator and print what the
// paper's tooling would show — simulated time, instructions, and the
// statistics registry.
package main

import (
	"fmt"
	"log"

	"gem5prof"
)

func main() {
	// Simulate the Sieve of Eratosthenes (the paper's "simple C++
	// program") on the out-of-order CPU model with the default cache
	// hierarchy, in system-call emulation mode.
	res, err := gem5prof.RunGuest(gem5prof.GuestConfig{
		CPU:      gem5prof.O3,
		Mode:     gem5prof.SE,
		Workload: "sieve",
		Scale:    8192, // count primes below 8192
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload finished: %s\n", res.ExitReason)
	fmt.Printf("primes found:      %d (reference match: %v)\n", res.ExitCode, res.ChecksumOK)
	fmt.Printf("guest instructions: %d\n", res.Insts)
	fmt.Printf("guest time:         %.3f ms\n", float64(res.SimTicks)/1e9)

	// A few interesting statistics from the registry (gem5's stats.txt).
	for _, stat := range []string{
		"cpu0.committedInsts", "cpu0.branches",
		"sys.l1i0.misses", "sys.l1d0.misses", "sys.l2.misses",
		"cpu0.bpMispredicts",
	} {
		fmt.Printf("%-24s %12.0f\n", stat, res.Stats.Get(stat))
	}
}
