// parsec_sweep runs the paper's nine PARSEC/SPLASH-2x workloads on every
// guest CPU model and prints a gem5-style comparison: simulated time per
// model, checked against each workload's reference checksum. This is the
// guest-side half of the paper's Fig. 1 sweep.
package main

import (
	"fmt"
	"log"
	"time"

	"gem5prof"
)

// scale keeps each run around 10-50k guest instructions.
func scale(workload string) int {
	return map[string]int{
		"blackscholes": 256, "canneal": 256, "dedup": 2048,
		"streamcluster": 96, "water_nsquared": 48, "water_spatial": 64,
		"ocean_cp": 24, "ocean_ncp": 24, "fmm": 96,
	}[workload]
}

func main() {
	fmt.Printf("%-16s %10s", "workload", "insts")
	for _, cpu := range gem5prof.AllCPUModels {
		fmt.Printf(" %12s", cpu)
	}
	fmt.Println("   (simulated guest microseconds)")

	start := time.Now()
	for _, spec := range gem5prof.PARSECWorkloads() {
		fmt.Printf("%-16s", spec.Name)
		first := true
		for _, cpu := range gem5prof.AllCPUModels {
			res, err := gem5prof.RunGuest(gem5prof.GuestConfig{
				CPU:      cpu,
				Mode:     gem5prof.SE,
				Workload: spec.Name,
				Scale:    scale(spec.Name),
			})
			if err != nil {
				log.Fatalf("%s on %s: %v", spec.Name, cpu, err)
			}
			if !res.ChecksumOK {
				log.Fatalf("%s on %s: checksum mismatch (got %#x want %#x)",
					spec.Name, cpu, uint32(res.ExitCode), res.Expected)
			}
			if first {
				fmt.Printf(" %10d", res.Insts)
				first = false
			}
			fmt.Printf(" %12.1f", float64(res.SimTicks)/1e6)
		}
		fmt.Println("  ok")
	}
	fmt.Printf("\nall checksums match their Go reference models (%v wall)\n",
		time.Since(start).Round(time.Millisecond))
	fmt.Println("note: every CPU model commits identical instruction counts;")
	fmt.Println("only the timing differs — exactly gem5's Atomic/Timing/Minor/O3 split.")
}
