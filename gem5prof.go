// Package gem5prof reproduces "Profiling gem5 Simulator" (ISPASS 2023) as a
// Go library: a gem5-like discrete-event architectural simulator (the
// guest), host micro-architecture models of the paper's evaluation platforms
// (Intel Xeon, Apple M1 Pro/Ultra, the FireSim Rocket host), and a
// co-simulation engine that profiles the simulator *as an application* —
// Top-Down cycle accounting, cache/TLB/branch statistics, hot-function
// profiles, and the sensitivity studies of the paper's Figs. 1-15.
//
// This package is the supported public surface; see the examples/ directory
// for end-to-end usage and cmd/experiments for the full reproduction
// harness.
package gem5prof

import (
	"gem5prof/internal/ckptcache"
	"gem5prof/internal/core"
	"gem5prof/internal/experiments"
	"gem5prof/internal/hostmodel"
	"gem5prof/internal/platform"
	"gem5prof/internal/profiler"
	"gem5prof/internal/sim"
	"gem5prof/internal/simpoint"
	"gem5prof/internal/spec"
	"gem5prof/internal/uarch"
	"gem5prof/internal/workloads"
)

// Guest simulation API.
type (
	// GuestConfig describes one g5 guest simulation (CPU model, mode,
	// workload, memory system).
	GuestConfig = core.GuestConfig
	// GuestResult is a completed guest simulation.
	GuestResult = core.GuestResult
	// CPUModel selects one of the four guest CPU models.
	CPUModel = core.CPUModel
	// Mode selects SE (system-call emulation) or FS (full system).
	Mode = core.Mode
)

// Guest CPU models, in the paper's order of increasing detail.
const (
	Atomic = core.Atomic
	Timing = core.Timing
	Minor  = core.Minor
	O3     = core.O3
)

// Simulation modes.
const (
	SE = core.SE
	FS = core.FS
)

// AllCPUModels lists the four models in order of increasing detail.
var AllCPUModels = core.AllCPUModels

// RunGuest builds and runs a pure guest simulation (no host profiling).
func RunGuest(cfg GuestConfig) (*GuestResult, error) { return core.RunGuest(cfg) }

// Checkpointing (the gem5 fast-forward-and-switch flow the paper's
// methodology relies on).
type (
	// GuestSystem is a constructed, steppable guest simulation
	// (Run / RunFor / TakeCheckpoint).
	GuestSystem = core.GuestSystem
	// Checkpoint is a readable (JSON) snapshot of a quiesced guest.
	Checkpoint = core.Checkpoint
	// Tick is guest simulated time (1 tick = 1 ps; sim.Microsecond etc.).
	Tick = sim.Tick
	// RunResult is a raw stepped-run outcome.
	RunResult = sim.RunResult
)

// Guest time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// NewGuest constructs an un-run guest simulation (no host tracing); use
// RunFor + TakeCheckpoint to fast-forward and snapshot it.
func NewGuest(cfg GuestConfig) (*GuestSystem, error) {
	return core.BuildGuest(cfg, sim.NewNopTracer())
}

// DecodeCheckpoint parses an encoded checkpoint.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) { return core.DecodeCheckpoint(data) }

// RestoreFromCheckpoint resumes a checkpoint under any CPU model (the gem5
// fast-forward-then-switch flow).
func RestoreFromCheckpoint(cfg GuestConfig, ck *Checkpoint) (*GuestSystem, error) {
	return core.RestoreGuest(cfg, ck, sim.NewNopTracer())
}

// Co-simulation API (the paper's measurement methodology).
type (
	// SessionConfig pairs a guest simulation with a host platform model
	// and optional co-run scenario.
	SessionConfig = core.SessionConfig
	// SessionResult carries the guest result plus the host profile.
	SessionResult = core.SessionResult
	// HostConfig describes a host machine (one Table I/II column).
	HostConfig = uarch.Config
	// HostReport is the host-side profile (Top-Down breakdown, miss
	// rates, occupancy, modeled wall-clock).
	HostReport = uarch.Report
	// Scenario describes co-running gem5 processes (Fig. 1).
	Scenario = platform.Scenario
	// HostCodeConfig tunes the synthetic simulator binary (e.g.
	// SizeFactor < 1 for the -O3 build of Fig. 12).
	HostCodeConfig = hostmodel.Config
	// Profiler is the hot-function profiler (Fig. 15).
	Profiler = profiler.Profiler
	// HugePageMode selects base/THP/EHP code backing (Figs. 10-11).
	HugePageMode = uarch.HugePageMode
	// PipelineMode selects serial or producer/consumer (ring-decoupled)
	// execution of one co-simulation; statistics are bit-identical either
	// way (DESIGN.md §10).
	PipelineMode = core.PipelineMode
	// ShardMode selects sharded per-domain event-queue execution inside
	// one guest simulation; statistics are bit-identical at every shard
	// count (DESIGN.md §13).
	ShardMode = core.ShardMode
)

// Huge-page modes for the host text segment.
const (
	PagesBase = uarch.PagesBase
	PagesTHP  = uarch.PagesTHP
	PagesEHP  = uarch.PagesEHP
)

// Pipeline modes for SessionConfig.Pipeline.
const (
	// PipelineAuto defers to SetDefaultPipeline, then to GOMAXPROCS>1.
	PipelineAuto = core.PipelineAuto
	// PipelineOff forces the serial co-simulation path.
	PipelineOff = core.PipelineOff
	// PipelineOn forces the pipelined path even on one processor.
	PipelineOn = core.PipelineOn
)

// Shard modes for GuestConfig.Shards.
const (
	// ShardAuto enables sharding when GOMAXPROCS >= 4.
	ShardAuto = core.ShardAuto
	// ShardDefault (the zero value) defers to SetDefaultShards.
	ShardDefault = core.ShardDefault
	// ShardSerial forces the single-queue path.
	ShardSerial = core.ShardSerial
)

var (
	// SetDefaultPipeline sets the process-wide pipeline mode used when
	// SessionConfig.Pipeline is PipelineAuto (the -pipeline flag of
	// cmd/experiments).
	SetDefaultPipeline = core.SetDefaultPipeline
	// ParsePipelineMode parses "auto", "on" or "off".
	ParsePipelineMode = core.ParsePipelineMode
	// SetDefaultShards sets the process-wide shard mode used when
	// GuestConfig.Shards is ShardDefault (the -shards flag of
	// cmd/experiments).
	SetDefaultShards = core.SetDefaultShards
	// ParseShardMode parses "auto", "off", or a shard count.
	ParseShardMode = core.ParseShardMode
)

// RunSession runs one co-simulation: the guest simulator executing on a
// modeled host platform.
func RunSession(cfg SessionConfig) (*SessionResult, error) { return core.RunSession(cfg) }

// SimPoint-style sampled simulation (profile on the Atomic model, simulate
// only one representative interval per program phase on the target model,
// extrapolate by cluster weight; see DESIGN.md §12).
type (
	// SampledConfig parameterizes sampling (interval length, warmup,
	// phase bound, checkpoint cache).
	SampledConfig = simpoint.Config
	// SampledResult is the extrapolated stand-in for a full session's
	// modeled seconds, with per-phase measurements attached.
	SampledResult = simpoint.Result
	// CheckpointCache is the content-addressed, self-verifying on-disk
	// store for fast-forward checkpoints (internal/ckptcache). A nil
	// *CheckpointCache is valid and means in-process memoization only.
	CheckpointCache = ckptcache.Cache
)

var (
	// RunSampled runs one co-simulation in sampled mode.
	RunSampled = simpoint.RunSampled
	// OpenCheckpointCache opens (creating if needed) a checkpoint cache
	// directory.
	OpenCheckpointCache = ckptcache.Open
)

// Host platforms (paper Table II and Table I).
var (
	// IntelXeon models the Dell server's Xeon Gold 6242R.
	IntelXeon = platform.IntelXeon
	// M1Pro models the MacBook Pro's Apple M1.
	M1Pro = platform.M1Pro
	// M1Ultra models the Mac Studio's M1 Ultra.
	M1Ultra = platform.M1Ultra
	// FireSimRocket models the FireSim host with explicit cache geometry
	// (Fig. 14's sweep knob).
	FireSimRocket = platform.FireSimRocket
	// FireSimBase is Table I's base configuration.
	FireSimBase = platform.FireSimBase
	// PlatformByName resolves "Intel_Xeon", "M1_Pro", "M1_Ultra".
	PlatformByName = platform.ByName
	// Contend derives the per-process machine under a co-run scenario.
	Contend = platform.Contend
)

// Workloads.
var (
	// WorkloadNames lists every guest workload.
	WorkloadNames = workloads.Names
	// WorkloadByName resolves one workload spec.
	WorkloadByName = workloads.ByName
	// PARSECWorkloads lists the paper's nine PARSEC/SPLASH-2x programs.
	PARSECWorkloads = workloads.PARSEC
)

// SPEC reference benchmarks (Fig. 2's bottom rows).
var (
	// SPECNames lists the three modeled SPEC CPU2017 benchmarks.
	SPECNames = spec.Names
	// SPECByName resolves one benchmark profile.
	SPECByName = spec.ByName
)

// Experiment harness: regenerate any of the paper's tables and figures.
type (
	// Experiment is one regenerated table or figure.
	Experiment = experiments.Result
	// ExperimentOptions tunes experiment cost and parallelism (Jobs bounds
	// concurrent simulation runs; output is identical for any value).
	ExperimentOptions = experiments.Options
	// ExperimentOutcome is one experiment's result from RunExperiments.
	ExperimentOutcome = experiments.Outcome
)

var (
	// ExperimentIDs lists table1, table2, fig01..fig15.
	ExperimentIDs = experiments.IDs
	// RunExperiment regenerates one table or figure.
	RunExperiment = experiments.Run
	// RunExperiments regenerates many experiments concurrently on one
	// bounded worker pool, yielding outcomes in ids order.
	RunExperiments = experiments.RunMany
	// ResetExperimentCaches drops per-process measurement caches so
	// benchmarks re-measure instead of replaying cached reports.
	ResetExperimentCaches = experiments.ResetCaches
)
