package gem5prof_test

// One benchmark per table and figure of the paper (regenerating the
// corresponding experiment in quick mode), the ablation benches called out
// in DESIGN.md §5, and micro-benchmarks of the substrate hot paths.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The figure benches report the experiment's headline number via
// b.ReportMetric so regressions in *shape*, not just speed, show up.

import (
	"testing"
	"time"

	"gem5prof"

	"gem5prof/internal/hostmodel"
	"gem5prof/internal/mem"
	"gem5prof/internal/platform"
	"gem5prof/internal/sim"
	"gem5prof/internal/uarch"
)

var quick = gem5prof.ExperimentOptions{Quick: true}

// benchExperiment regenerates one figure/table per iteration.
func benchExperiment(b *testing.B, id string, metric func(*gem5prof.Experiment) (float64, string)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := gem5prof.RunExperiment(id, quick)
		if err != nil {
			b.Fatal(err)
		}
		if metric != nil {
			v, unit := metric(res)
			b.ReportMetric(v, unit)
		}
	}
}

func BenchmarkTableI(b *testing.B)  { benchExperiment(b, "table1", nil) }
func BenchmarkTableII(b *testing.B) { benchExperiment(b, "table2", nil) }

func BenchmarkFig01_PlatformSpeedup(b *testing.B) {
	benchExperiment(b, "fig01", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[0].Values[0], "m1pro-speedup-x"
	})
}

func BenchmarkFig02_TopDown(b *testing.B) {
	benchExperiment(b, "fig02", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[0].Values[1], "o3-frontend-%"
	})
}

func BenchmarkFig03_FESplit(b *testing.B) {
	benchExperiment(b, "fig03", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[0].Values[0], "o3-fe-latency-%"
	})
}

func BenchmarkFig04_FELatency(b *testing.B) {
	benchExperiment(b, "fig04", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[0].Values[0], "o3-icache-%"
	})
}

func BenchmarkFig05_FEBandwidth(b *testing.B) {
	benchExperiment(b, "fig05", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[0].Values[2], "o3-mite-share-%"
	})
}

func BenchmarkFig06_DSBCoverage(b *testing.B) {
	benchExperiment(b, "fig06", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[0].Values[0], "o3-dsb-coverage-%"
	})
}

func BenchmarkFig07_IPC(b *testing.B) {
	benchExperiment(b, "fig07", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[0].Values[1] / r.Rows[0].Values[0], "m1-ipc-ratio-x"
	})
}

func BenchmarkFig08_MissRates(b *testing.B) {
	benchExperiment(b, "fig08", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[0].Values[0], "xeon-itlb-miss-%"
	})
}

func BenchmarkFig09_LLCOccupancy(b *testing.B) {
	benchExperiment(b, "fig09", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[len(r.Rows)-1].Values[0], "fs-o3-llc-KB"
	})
}

func BenchmarkFig10_HugePages(b *testing.B) {
	benchExperiment(b, "fig10", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[3].Values[0], "o3-thp-speedup-%"
	})
}

func BenchmarkFig11_THPiTLB(b *testing.B) {
	benchExperiment(b, "fig11", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[3].Values[0], "o3-itlb-reduction-%"
	})
}

func BenchmarkFig12_O3Build(b *testing.B) {
	benchExperiment(b, "fig12", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[0].Values[2], "xeon-mean-speedup-%"
	})
}

func BenchmarkFig13_Frequency(b *testing.B) {
	benchExperiment(b, "fig13", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[0].Values[0], "1.2GHz-slowdown-x"
	})
}

func BenchmarkFig14_FireSimSweep(b *testing.B) {
	benchExperiment(b, "fig14", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[len(r.Rows)-1].Values[0], "best-atomic-speedup-x"
	})
}

func BenchmarkFig15_HotFunctions(b *testing.B) {
	benchExperiment(b, "fig15", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[3].Values[3], "o3-funcs-called"
	})
}

func BenchmarkFig16_MulticoreScaling(b *testing.B) {
	benchExperiment(b, "fig16", func(r *gem5prof.Experiment) (float64, string) {
		return r.Rows[0].Values[len(r.Rows[0].Values)-1], "dotprod-4core-speedup-x"
	})
}

// --- Multicore coherence benches (BENCH_coherence.json) ---

// benchGuestMT runs one mt-suite kernel on the Timing model at the given
// guest core count, reporting the simulated ticks the run took: the
// before/after pair below records what directory coherence costs the host
// (ns/op) and buys the guest (sim-ticks shrink with cores).
func benchGuestMT(b *testing.B, cores int, shards gem5prof.ShardMode) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := gem5prof.RunGuest(gem5prof.GuestConfig{
			CPU: gem5prof.Timing, Workload: "dotprod_mt", Scale: 16384,
			Cores: cores, Shards: shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.ChecksumOK {
			b.Fatalf("cores=%d: checksum mismatch", cores)
		}
		b.ReportMetric(float64(res.SimTicks), "sim-ticks")
	}
}

// BenchmarkGuestMTSerial / BenchmarkGuestMTQuad are the multicore PR's
// before/after pair (BENCH_coherence.json): the same parallel kernel on a
// 1-core guest (the exact pre-multicore machine — no directory, no
// threading stats) versus a 4-core guest with per-core L1s behind the MESI
// directory. The host pays for four cores' events plus coherence traffic;
// the guest's simulated time drops.
func BenchmarkGuestMTSerial(b *testing.B) { benchGuestMT(b, 1, gem5prof.ShardSerial) }
func BenchmarkGuestMTQuad(b *testing.B)   { benchGuestMT(b, 4, gem5prof.ShardSerial) }

// BenchmarkGuestMTQuadSharded is the per-core un-fusing PR's after row
// (BENCH_mcshard.json): the same 4-core guest as BenchmarkGuestMTQuad with
// the widest per-core layout forced (shards 5 = cpu+dev|cpu1|cpu2|cpu3|mem;
// explicit rather than auto, which resolves to serial on hosts with
// GOMAXPROCS < 4). Each extra core's private events — core ticks, L1s, TLBs
// — live on its own affine shard, and only shared-memory traffic crosses a
// lookahead edge; modeled results stay byte-identical to the fused rows
// (TestShardedDifferential pins this exact config).
func BenchmarkGuestMTQuadSharded(b *testing.B) { benchGuestMT(b, 4, 5) }

// --- Ablation benches (DESIGN.md §5) ---

// cosim runs one co-simulation and returns the modeled host seconds.
func cosim(b *testing.B, host gem5prof.HostConfig, hc gem5prof.HostCodeConfig) float64 {
	return cosimMode(b, host, hc, gem5prof.PipelineAuto)
}

// cosimMode is cosim with an explicit pipeline mode (serial vs
// producer/consumer split; modeled results are bit-identical either way).
func cosimMode(b *testing.B, host gem5prof.HostConfig, hc gem5prof.HostCodeConfig, mode gem5prof.PipelineMode) float64 {
	b.Helper()
	res, err := gem5prof.RunSession(gem5prof.SessionConfig{
		Guest: gem5prof.GuestConfig{
			CPU: gem5prof.O3, Mode: gem5prof.SE,
			Workload: "water_nsquared", Scale: 40,
		},
		Host:     host,
		HostCode: hc,
		Pipeline: mode,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.SimSeconds()
}

// BenchmarkAblationDSB (A1): how much the Xeon's uop cache buys on gem5.
func BenchmarkAblationDSB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := cosim(b, gem5prof.IntelXeon(), gem5prof.HostCodeConfig{})
		no := gem5prof.IntelXeon()
		no.DSBUops = 0
		without := cosim(b, no, gem5prof.HostCodeConfig{})
		b.ReportMetric(without/with, "dsb-speedup-x")
	}
}

// BenchmarkAblationVIPT (A2): free L1I geometry (no VIPT constraint) vs the
// constrained baseline — what the Xeon could do with a 128KB L1I.
func BenchmarkAblationVIPT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := cosim(b, gem5prof.IntelXeon(), gem5prof.HostCodeConfig{})
		big := gem5prof.IntelXeon()
		big.L1I = uarch.CacheGeom{SizeBytes: 128 << 10, Ways: 8, LineBytes: 64}
		big.SkipVIPTCheck = true
		free := cosim(b, big, gem5prof.HostCodeConfig{})
		b.ReportMetric(base/free, "non-vipt-speedup-x")
	}
}

// BenchmarkAblationMLP (A3): the analytical MLP overlap factor.
func BenchmarkAblationMLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := cosim(b, gem5prof.IntelXeon(), gem5prof.HostCodeConfig{})
		none := gem5prof.IntelXeon()
		none.MLPOverlap = 0
		noOverlap := cosim(b, none, gem5prof.HostCodeConfig{})
		b.ReportMetric(noOverlap/base, "mlp-slowdown-x")
	}
}

// BenchmarkAblationLayout (A4): scattered (bit-reversed) function placement
// versus densely packed link order.
func BenchmarkAblationLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scattered := cosim(b, gem5prof.IntelXeon(), gem5prof.HostCodeConfig{})
		packed := hostmodel.DefaultConfig()
		packed.TextSlots = 2 // force sequential overflow placement
		dense := cosim(b, gem5prof.IntelXeon(), packed)
		b.ReportMetric(scattered/dense, "layout-cost-x")
	}
}

// BenchmarkAblationEventQueue (A5): binary heap vs calendar queue backend,
// measured on real wall-clock per guest instruction.
func BenchmarkAblationEventQueue(b *testing.B) {
	for _, backend := range []struct {
		name string
		cal  bool
	}{{"heap", false}, {"calendar", true}} {
		b.Run(backend.name, func(b *testing.B) {
			insts := uint64(0)
			for i := 0; i < b.N; i++ {
				res, err := gem5prof.RunGuest(gem5prof.GuestConfig{
					CPU: gem5prof.Timing, Workload: "sieve", Scale: 4096,
					CalendarQueue: backend.cal,
				})
				if err != nil {
					b.Fatal(err)
				}
				insts += res.Insts
			}
			b.ReportMetric(float64(insts)/float64(b.N), "guest-insts")
		})
	}
}

// --- Sampled simulation benches (BENCH_simpoint.json) ---

// simpointFigs is the figure set that opts into SimPoint sampling under
// the harness's -simpoint flag (fig11 needs a full Top-Down report, so it
// never samples).
var simpointFigs = []string{"fig10", "fig12", "fig13"}

// benchSimpointSuite times the sampled figure set end to end at -j1 from
// cold caches: BBV profiling, clustering, Atomic fast-forward
// checkpointing, and the per-cell representative-interval measurements.
func benchSimpointSuite(b *testing.B, opt gem5prof.ExperimentOptions) {
	b.Helper()
	opt.Quick = true
	opt.Jobs = 1
	for i := 0; i < b.N; i++ {
		gem5prof.ResetExperimentCaches()
		for oc := range gem5prof.RunExperiments(simpointFigs, opt) {
			if oc.Err != nil {
				b.Fatal(oc.Err)
			}
		}
	}
	gem5prof.ResetExperimentCaches()
}

// BenchmarkSimpointFullSuite / BenchmarkSimpointSampledSuite are the
// sampled-simulation PR's before/after pair: the same quick sweep figures
// fully simulated versus SimPoint-sampled (target >=10x; the measured
// per-cell error next to the speedup lives in BENCH_simpoint.json and is
// held by TestSampledFiguresError in internal/experiments).
func BenchmarkSimpointFullSuite(b *testing.B) {
	benchSimpointSuite(b, gem5prof.ExperimentOptions{})
}

func BenchmarkSimpointSampledSuite(b *testing.B) {
	benchSimpointSuite(b, gem5prof.ExperimentOptions{SimPoint: true})
}

// BenchmarkSimpointSampledWarmCache is the sampled suite with a persistent
// checkpoint cache already populated (the cross-process fast path): the
// Atomic fast-forward passes are replaced by verified cache restores.
func BenchmarkSimpointSampledWarmCache(b *testing.B) {
	opt := gem5prof.ExperimentOptions{Quick: true, Jobs: 1, SimPoint: true, CkptCacheDir: b.TempDir()}
	// Populate the cache once, outside the timed loop.
	gem5prof.ResetExperimentCaches()
	for oc := range gem5prof.RunExperiments(simpointFigs, opt) {
		if oc.Err != nil {
			b.Fatal(oc.Err)
		}
	}
	b.ResetTimer()
	benchSimpointSuite(b, opt)
}

// --- Parallel harness benches ---

// BenchmarkSessionRunParallel drives independent co-simulation sessions from
// GOMAXPROCS goroutines at once. RunSession is documented as safe for
// concurrent use; this bench is the scaling (and, under -race, the safety)
// witness for that claim.
func BenchmarkSessionRunParallel(b *testing.B) {
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := gem5prof.RunSession(gem5prof.SessionConfig{
				Guest: gem5prof.GuestConfig{
					CPU: gem5prof.Timing, Mode: gem5prof.SE,
					Workload: "sieve", Scale: 2048,
				},
				Host: gem5prof.IntelXeon(),
			})
			if err != nil {
				b.Fatal(err)
			}
			_ = res.SimSeconds()
		}
	})
}

// BenchmarkHarnessSpeedup times the quick Top-Down experiment set
// sequentially (-j 1) and on the full pool (-j GOMAXPROCS) from a cold cache
// each time, reporting the wall-clock ratio. On a 1-core host it reports
// ~1.0x; the gain appears with cores.
func BenchmarkHarnessSpeedup(b *testing.B) {
	ids := []string{"fig02", "fig03", "fig04", "fig05", "fig06"}
	runSet := func(jobs int) time.Duration {
		gem5prof.ResetExperimentCaches()
		start := time.Now()
		for oc := range gem5prof.RunExperiments(ids, gem5prof.ExperimentOptions{Quick: true, Jobs: jobs}) {
			if oc.Err != nil {
				b.Fatal(oc.Err)
			}
		}
		return time.Since(start)
	}
	for i := 0; i < b.N; i++ {
		seq := runSet(1)
		par := runSet(0)
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup-x")
	}
	gem5prof.ResetExperimentCaches()
}

// --- Substrate micro-benches ---

// benchEventQueue measures a queue backend in two regimes:
//
//   - pingpong: schedule one event, service it immediately. Queue depth
//     oscillates between 0 and 1, so this isolates the per-event fixed
//     cost but exercises no bucket/heap pressure at all.
//   - depth64: the queue holds a steady-state population of 64 pending
//     events; each iteration services the earliest and reschedules it at
//     a varying future tick. This is the regime the simulator actually
//     runs in (many in-flight cache/DRAM/pipeline events) and is what
//     stresses heap sift depth and calendar bucket scans/window slides.
//
// The earlier version of these benches only did the ping-pong pattern,
// which made the calendar queue look uniformly slower than the heap; at
// real depths the picture is workload-dependent.
func benchEventQueue(b *testing.B, mk func() sim.Queue) {
	b.Run("pingpong", func(b *testing.B) {
		q := mk()
		e := sim.NewEvent("e", 0, func() {})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Schedule(e, q.Now()+sim.Tick(i%1000))
			q.ServiceOne()
		}
	})
	b.Run("depth64", func(b *testing.B) {
		const depth = 64
		q := mk()
		var freed *sim.Event
		evs := make([]*sim.Event, depth)
		for i := range evs {
			var e *sim.Event
			e = sim.NewEvent("e", 0, func() { freed = e })
			evs[i] = e
		}
		for i, e := range evs {
			q.Schedule(e, q.Now()+sim.Tick(1+(i*37)%997))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Service the earliest of the 64 pending events and put it
			// back in the future: constant steady-state depth.
			q.ServiceOne()
			q.Schedule(freed, q.Now()+sim.Tick(1+(i*31)%997))
		}
		b.StopTimer()
		// Drain so every scheduled event is serviced, not leaked.
		for !q.Empty() {
			q.ServiceOne()
		}
		if q.Len() != 0 {
			b.Fatalf("queue not drained: %d left", q.Len())
		}
	})
}

func BenchmarkEventQueueHeap(b *testing.B) {
	benchEventQueue(b, func() sim.Queue { return sim.NewHeapQueue() })
}

func BenchmarkEventQueueCalendar(b *testing.B) {
	benchEventQueue(b, func() sim.Queue { return sim.NewCalendarQueue(256, 100) })
}

func BenchmarkGuestAtomicMIPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := gem5prof.RunGuest(gem5prof.GuestConfig{
			CPU: gem5prof.Atomic, Workload: "sieve", Scale: 8192,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.Insts))
	}
}

func BenchmarkGuestO3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gem5prof.RunGuest(gem5prof.GuestConfig{
			CPU: gem5prof.O3, Workload: "dedup", Scale: 4096,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCosimXeon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cosim(b, gem5prof.IntelXeon(), gem5prof.HostCodeConfig{})
	}
}

// BenchmarkCosimXeonSerial / BenchmarkCosimXeonPipelined are the
// pipelining PR's before/after pair (BENCH_pipeline.json): the same
// co-simulation with the guest+hostmodel producer and the uarch consumer
// on one goroutine vs decoupled over the internal/ring batch ring. The
// speedup requires a second hardware core; on GOMAXPROCS==1 the pipelined
// variant measures pure ring overhead.
func BenchmarkCosimXeonSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cosimMode(b, gem5prof.IntelXeon(), gem5prof.HostCodeConfig{}, gem5prof.PipelineOff)
	}
}

func BenchmarkCosimXeonPipelined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cosimMode(b, gem5prof.IntelXeon(), gem5prof.HostCodeConfig{}, gem5prof.PipelineOn)
	}
}

// BenchmarkCosimXeonSharded is the sharded-execution PR's after leg
// (BENCH_shardq.json, baseline BenchmarkCosimXeonSerial): the same
// co-simulation with the guest's event queue split into per-domain shards
// (CPU+devices / memory) advancing in parallel under the conservative
// quantum barrier, stats bit-identical to serial (TestShardedDifferential).
// Like the pipelined pair, the speedup requires a second hardware core; on
// GOMAXPROCS==1 this measures pure barrier + mailbox + trace-replay
// overhead.
func BenchmarkCosimXeonSharded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := gem5prof.RunSession(gem5prof.SessionConfig{
			Guest: gem5prof.GuestConfig{
				CPU: gem5prof.O3, Mode: gem5prof.SE,
				Workload: "water_nsquared", Scale: 40,
				Shards: 2,
			},
			Host:     gem5prof.IntelXeon(),
			Pipeline: gem5prof.PipelineOff,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.SimSeconds()
	}
}

func BenchmarkGuestCacheAtomicAccess(b *testing.B) {
	sys := sim.NewSystem(1)
	h := mem.NewHierarchy(sys, mem.DefaultHierarchyConfig("b"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.L1D.AtomicLatency(mem.Access{Addr: uint32(i*64) % (1 << 22), Size: 8})
	}
}

func BenchmarkHostMachineFetch(b *testing.B) {
	m := uarch.NewMachine(platform.IntelXeon())
	m.MapText(0x40_0000, 0x40_0000+64<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.FetchBlock(0x40_0000+uint64(i*64)%(8<<20), 32, 8)
	}
}

// BenchmarkSPECGenerators exercises the three reference workload models.
func BenchmarkSPECGenerators(b *testing.B) {
	for _, name := range gem5prof.SPECNames() {
		b.Run(name, func(b *testing.B) {
			p, err := gem5prof.SPECByName(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				m := uarch.NewMachine(platform.IntelXeon())
				rep := p.Run(m, 50_000)
				b.ReportMetric(rep.IPC, "uops/cycle")
			}
		})
	}
}
