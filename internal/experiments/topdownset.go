package experiments

import (
	"fmt"
	"sync"

	"gem5prof/internal/core"
	"gem5prof/internal/platform"
	"gem5prof/internal/spec"
	"gem5prof/internal/uarch"
)

// tdConfig is one bar of Figs. 2-6: a gem5 configuration or a SPEC
// benchmark profiled on the Xeon.
type tdConfig struct {
	Label    string
	CPU      core.CPUModel // gem5 configs only
	BootExit bool
	IsSpec   bool
	SpecName string
}

// topdownConfigs mirrors the paper's Fig. 2 bar order: gem5 {CPU}x
// {Boot-Exit, PARSEC representative} from most to least detailed, then the
// three SPEC benchmarks.
func topdownConfigs() []tdConfig {
	var out []tdConfig
	for _, cpu := range []core.CPUModel{core.O3, core.Minor, core.Timing, core.Atomic} {
		out = append(out,
			tdConfig{Label: cpuLabel(cpu) + "_BOOT_EXIT", CPU: cpu, BootExit: true},
			tdConfig{Label: cpuLabel(cpu) + "_PARSEC", CPU: cpu},
		)
	}
	for _, s := range []string{"525.x264_r", "531.deepsjeng_r", "505.mcf_r"} {
		out = append(out, tdConfig{Label: s, IsSpec: true, SpecName: s})
	}
	return out
}

func cpuLabel(cpu core.CPUModel) string {
	switch cpu {
	case core.Atomic:
		return "ATOMIC"
	case core.Timing:
		return "TIMING"
	case core.Minor:
		return "MINOR"
	case core.O3:
		return "O3"
	}
	return string(cpu)
}

// tdSet is the shared measurement backing Figs. 2-6.
type tdSet struct {
	labels  []string
	reports []uarch.Report
}

var (
	tdMu    sync.Mutex
	tdCache = map[bool]*tdSet{}
)

// parsecRepScale returns the water_nsquared scale used as the PARSEC
// representative (footnote 2 of the paper).
func parsecRepScale(opt Options) int {
	if opt.Quick {
		return 40
	}
	return 72
}

// runTopdownSet measures every Fig. 2-6 configuration once per process and
// caches the reports. The eleven configurations are independent sessions, so
// they fan out on the options' worker pool; reports are collected in
// configuration order, which keeps the cached set identical to the
// sequential measurement.
func runTopdownSet(opt Options) (*tdSet, error) {
	tdMu.Lock()
	defer tdMu.Unlock()
	if s, ok := tdCache[opt.Quick]; ok {
		return s, nil
	}
	specBlocks := 600_000
	bootKBs := 24
	if opt.Quick {
		specBlocks = 150_000
		bootKBs = 8
	}
	cfgs := topdownConfigs()
	reports, err := runAll(opt.runner, len(cfgs), func(i int) (uarch.Report, error) {
		cfg := cfgs[i]
		if cfg.IsSpec {
			p, err := spec.ByName(cfg.SpecName)
			if err != nil {
				return uarch.Report{}, err
			}
			return p.Run(uarch.NewMachine(platform.IntelXeon()), specBlocks), nil
		}
		gc := core.GuestConfig{CPU: cfg.CPU, Seed: core.DeriveSeed("topdownset", i)}
		if cfg.BootExit {
			gc.Mode = core.FS
			gc.BootExit = true
			gc.BootKBs = bootKBs
		} else {
			gc.Mode = core.SE
			gc.Workload = "water_nsquared"
			gc.Scale = parsecRepScale(opt)
		}
		res, err := core.RunSession(core.SessionConfig{Guest: gc, Host: platform.IntelXeon()})
		if err != nil {
			return uarch.Report{}, fmt.Errorf("topdown set %s: %w", cfg.Label, err)
		}
		return res.Host, nil
	})
	if err != nil {
		return nil, err
	}
	set := &tdSet{reports: reports}
	for _, cfg := range cfgs {
		set.labels = append(set.labels, cfg.Label)
	}
	tdCache[opt.Quick] = set
	return set, nil
}
