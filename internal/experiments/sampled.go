package experiments

import (
	"fmt"

	"gem5prof/internal/core"
	"gem5prof/internal/simpoint"
)

// sampledErrorBoundPct is the documented sampled-vs-full error bound for
// the per-cell modeled seconds of the figures that opt into sampling. The
// quick-mode workloads are only a few tens of thousands of instructions,
// so each phase is measured over a short window and the bound is looser
// than SimPoint's published low-single-digit CPI error on SPEC-length
// runs (measured across every cell of figs 10/12/13: worst 23.7%, mean
// 8.3% — the worst cells are the Atomic-target M1 rows, whose windows
// are the shortest in host instructions and so carry the largest
// residual cold-start fraction). BENCH_simpoint.json records the
// measured numbers next to the speedup; TestSampledFiguresError holds
// this bound.
const sampledErrorBoundPct = 25.0

// simpointConfig is the harness's sampling parameterization. The interval
// and warmup lengths trade error against speed: warmup only needs to
// re-warm the guest's own caches, because the sampler keeps the modeled
// host machine warm across windows (core.IntervalRunner) and projects the
// residual transient out (simpoint.steadyRate). These defaults keep the
// quick-suite per-cell error inside sampledErrorBoundPct while clearing
// the >=10x wall-clock target; BENCH_simpoint.json records the measured
// numbers.
func (o Options) simpointConfig() simpoint.Config {
	cfg := simpoint.Config{
		// WarmupInsts 1 means effectively no warmup: the runner's
		// machine reuse plus the steady-rate extrapolation replace it
		// (Config.WarmupInsts == 0 would select the package default).
		IntervalInsts: 500,
		WarmupInsts:   1,
		MaxK:          3,
		Cache:         o.ckptCache,
	}
	if o.SimPointInterval != 0 {
		cfg.IntervalInsts = o.SimPointInterval
		cfg.WarmupInsts = 0 // re-derive from the interval
	}
	return cfg
}

// sessionSeconds runs one sweep cell and returns its modeled host seconds:
// the full co-simulation normally, or the SimPoint extrapolation when the
// harness runs with -simpoint. Only figures whose cells consume nothing
// but SimSeconds() may call this — figures needing full Top-Down detail
// (fig11) always run full.
func sessionSeconds(opt Options, sc core.SessionConfig) (float64, error) {
	if !opt.SimPoint {
		r, err := core.RunSession(sc)
		if err != nil {
			return 0, err
		}
		return r.SimSeconds(), nil
	}
	res, err := simpoint.RunSampled(sc, opt.simpointConfig())
	if err != nil {
		return 0, err
	}
	return res.Seconds, nil
}

// sampledNote documents a figure's sampled provenance in its rendered
// output, so a sampled report is never mistaken for a full one.
func sampledNote(opt Options, res *Result) {
	if !opt.SimPoint {
		return
	}
	cfg := opt.simpointConfig()
	res.Notes = append(res.Notes, fmt.Sprintf(
		"sampled via simpoint (interval %d insts, warmup %d, <=%d phases); documented error bound %.0f%% vs full simulation",
		cfg.IntervalInsts, cfg.WarmupInsts, cfg.MaxK, sampledErrorBoundPct))
}
