package experiments

import (
	"fmt"

	"gem5prof/internal/core"
	"gem5prof/internal/platform"
	"gem5prof/internal/uarch"
)

func init() {
	register("fig07", runFig07)
	register("fig08", runFig08)
	register("fig09", runFig09)
}

// platformSet runs water_nsquared for the given CPU models on the three
// Table II platforms and returns reports keyed [platform][cpu]. The
// platform x CPU grid fans out on the worker pool.
func platformSet(opt Options, cpus []core.CPUModel) (map[string]map[core.CPUModel]uarch.Report, error) {
	hostList := platform.TableIIPlatforms()
	reports, err := runAll(opt.runner, len(hostList)*len(cpus), func(i int) (uarch.Report, error) {
		host, cpu := hostList[i/len(cpus)], cpus[i%len(cpus)]
		r, err := core.RunSession(core.SessionConfig{
			Guest: core.GuestConfig{
				CPU: cpu, Mode: core.SE,
				Workload: "water_nsquared", Scale: parsecRepScale(opt),
				Seed: core.DeriveSeed("platformset", i),
			},
			Host: host,
		})
		if err != nil {
			return uarch.Report{}, fmt.Errorf("platform set %s/%s: %w", host.Name, cpu, err)
		}
		return r.Host, nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string]map[core.CPUModel]uarch.Report{}
	for i, rep := range reports {
		host, cpu := hostList[i/len(cpus)], cpus[i%len(cpus)]
		if out[host.Name] == nil {
			out[host.Name] = map[core.CPUModel]uarch.Report{}
		}
		out[host.Name][cpu] = rep
	}
	return out, nil
}

// fig07CPUs are the models the paper profiles on all three platforms.
var fig07CPUs = []core.CPUModel{core.Atomic, core.Timing, core.O3}

// runFig07 reproduces Fig. 7: IPC and stall percentage of gem5 on the three
// platforms.
func runFig07(opt Options) (*Result, error) {
	set, err := platformSet(opt, fig07CPUs)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig07",
		Title: "gem5 IPC (uops/cycle) and stalled-cycle share per platform (water_nsquared)",
		Cols:  []string{"Xeon-IPC", "M1Pro-IPC", "M1Ultra-IPC", "Xeon-stall%", "M1Pro-stall%", "M1Ultra-stall%"},
	}
	var ipcRatioPro, ipcRatioUltra []float64
	for _, cpu := range fig07CPUs {
		x := set["Intel_Xeon"][cpu]
		p := set["M1_Pro"][cpu]
		u := set["M1_Ultra"][cpu]
		res.Rows = append(res.Rows, Row{
			Label: string(cpu),
			Values: []float64{
				x.IPC, p.IPC, u.IPC,
				pct(x.StallFrac), pct(p.StallFrac), pct(u.StallFrac),
			},
		})
		ipcRatioPro = append(ipcRatioPro, p.IPC/x.IPC)
		ipcRatioUltra = append(ipcRatioUltra, u.IPC/x.IPC)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("M1_Pro / M1_Ultra IPC is %.2fx / %.2fx the Xeon's (paper: 2.22x / 2.24x)",
			geomean(ipcRatioPro), geomean(ipcRatioUltra)),
		"paper: Xeon stalled-time share is much higher than both M1 platforms")
	return res, nil
}

// runFig08 reproduces Fig. 8: TLB, L1 cache, and branch prediction
// performance across the platforms.
func runFig08(opt Options) (*Result, error) {
	set, err := platformSet(opt, fig07CPUs)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig08",
		Title: "TLB / L1 / branch predictor miss rates per platform (%)",
		Cols:  []string{"iTLB", "dTLB", "L1I", "L1D", "BP-mispredict"},
	}
	for _, host := range []string{"Intel_Xeon", "M1_Pro", "M1_Ultra"} {
		// Average over the CPU models, as the paper's bars do.
		var itlb, dtlb, l1i, l1d, bp []float64
		for _, cpu := range fig07CPUs {
			r := set[host][cpu]
			itlb = append(itlb, pct(r.ITLBMissRate))
			dtlb = append(dtlb, pct(r.DTLBMissRate))
			l1i = append(l1i, pct(r.ICacheMissRate))
			l1d = append(l1d, pct(r.DCacheMissRate))
			bp = append(bp, pct(r.BranchMispredictRate))
		}
		res.Rows = append(res.Rows, Row{
			Label:  host,
			Values: []float64{meanf(itlb), meanf(dtlb), meanf(l1i), meanf(l1d), meanf(bp)},
		})
	}
	x, u := res.Rows[0].Values, res.Rows[2].Values
	ratio := func(i int) float64 {
		if u[i] == 0 {
			return 0
		}
		return x[i] / u[i]
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("Xeon iTLB / dTLB miss rate is %.1fx / %.1fx the M1_Ultra's (paper: 11.7x / 10.5x)", ratio(0), ratio(1)),
		fmt.Sprintf("Xeon dCache miss rate is %.1fx the M1_Ultra's (paper: 10.1x..13.4x lower on M1)", ratio(3)),
		fmt.Sprintf("branch mispredict: Xeon %.3f%% vs M1 %.3f%% (paper: 0.22%% vs ~0.14%%)", x[4], u[4]),
	)
	return res, nil
}

// runFig09 reproduces Fig. 9: LLC occupancy and DRAM bandwidth utilization
// of gem5 per CPU model and mode on the Xeon.
func runFig09(opt Options) (*Result, error) {
	res := &Result{
		ID:    "fig09",
		Title: "LLC occupancy and DRAM bandwidth utilization on Intel_Xeon",
		Cols:  []string{"LLC-occupancy-KB", "DRAM-BW-util-%"},
	}
	modes := []core.Mode{core.SE, core.FS}
	nCPU := len(core.AllCPUModels)
	reports, err := runAll(opt.runner, len(modes)*nCPU, func(i int) (uarch.Report, error) {
		mode, cpu := modes[i/nCPU], core.AllCPUModels[i%nCPU]
		gc := core.GuestConfig{CPU: cpu, Mode: mode, Seed: core.DeriveSeed("fig09", i)}
		if mode == core.FS {
			gc.BootExit = true
			gc.BootKBs = 16
		} else {
			gc.Workload = "water_nsquared"
			gc.Scale = parsecRepScale(opt)
		}
		r, err := core.RunSession(core.SessionConfig{Guest: gc, Host: platform.IntelXeon()})
		if err != nil {
			return uarch.Report{}, err
		}
		return r.Host, nil
	})
	if err != nil {
		return nil, err
	}
	var occs []float64
	for i, rep := range reports {
		mode, cpu := modes[i/nCPU], core.AllCPUModels[i%nCPU]
		occKB := float64(rep.LLCOccupancyBytes) / 1024
		occs = append(occs, occKB)
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("%s/%s", mode, cpu),
			Values: []float64{occKB, pct(rep.DRAMBandwidthUtil)},
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("LLC occupancy %.0f..%.0f KB (paper: 255KB..3.1MB, growing with CPU detail)", minf(occs), maxf(occs)),
		"paper: DRAM bandwidth utilization is negligible in both FS and SE modes",
	)
	return res, nil
}
