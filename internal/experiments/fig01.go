package experiments

import (
	"fmt"

	"gem5prof/internal/core"
	"gem5prof/internal/platform"
	"gem5prof/internal/uarch"
)

func init() {
	register("fig01", runFig01)
}

// fig01Scale returns the per-workload problem size for the Fig. 1 sweep
// (scaled-down simmedium).
func fig01Scale(name string, quick bool) int {
	full := map[string]int{
		"blackscholes":   128,
		"canneal":        128,
		"dedup":          1024,
		"streamcluster":  64,
		"water_nsquared": 32,
		"water_spatial":  48,
		"ocean_cp":       16,
		"ocean_ncp":      16,
		"fmm":            64,
	}
	s := full[name]
	if s == 0 {
		s = 64
	}
	return s
}

// fig01Workloads returns the workload list: all nine PARSEC/SPLASH-2x
// programs, or a three-benchmark subset in quick mode.
func fig01Workloads(quick bool) []string {
	if quick {
		return []string{"canneal", "dedup", "water_nsquared"}
	}
	return []string{
		"blackscholes", "canneal", "dedup", "streamcluster",
		"water_nsquared", "water_spatial", "ocean_cp", "ocean_ncp", "fmm",
	}
}

type fig01Config struct {
	label string
	mode  core.Mode
	cpu   core.CPUModel
}

func fig01Configs(quick bool) []fig01Config {
	if quick {
		return []fig01Config{
			{"SE/atomic", core.SE, core.Atomic},
			{"SE/o3", core.SE, core.O3},
		}
	}
	var out []fig01Config
	for _, cpu := range core.AllCPUModels {
		out = append(out, fig01Config{"SE/" + string(cpu), core.SE, cpu})
	}
	for _, cpu := range []core.CPUModel{core.Atomic, core.O3} {
		out = append(out, fig01Config{"FS/" + string(cpu), core.FS, cpu})
	}
	return out
}

// fig01Scenario is one sub-graph of Fig. 1.
type fig01Scenario struct {
	label string
	// procs returns the co-running process count per platform name, and
	// whether Xeon runs with SMT.
	procs map[string]platform.Scenario
}

func fig01Scenarios() []fig01Scenario {
	return []fig01Scenario{
		{"single gem5 process", map[string]platform.Scenario{
			"Intel_Xeon": {Procs: 1}, "M1_Pro": {Procs: 1}, "M1_Ultra": {Procs: 1},
		}},
		{"procs = physical cores (SMT off)", map[string]platform.Scenario{
			"Intel_Xeon": {Procs: platform.XeonPhysicalCores},
			"M1_Pro":     {Procs: platform.M1ProPerfCores},
			"M1_Ultra":   {Procs: platform.M1UltraPerfCores},
		}},
		{"procs = hardware threads (SMT on)", map[string]platform.Scenario{
			"Intel_Xeon": {Procs: platform.XeonHardwareThreads, SMT: true},
			"M1_Pro":     {Procs: platform.M1ProPerfCores},
			"M1_Ultra":   {Procs: platform.M1UltraPerfCores},
		}},
	}
}

// fig01Cell is one simulation run of the Fig. 1 sweep: a (scenario, config,
// workload, platform) tuple in the sequential sweep order.
type fig01Cell struct {
	sc   fig01Scenario
	cfg  fig01Config
	wl   string
	host string
}

// runFig01 reproduces Fig. 1: simulation time of M1_Pro and M1_Ultra
// normalized to Intel_Xeon across co-running scenarios, geomean over the
// PARSEC/SPLASH-2x workloads, plus the SMT on/off comparison. The sweep is
// flattened into independent cells that fan out on the worker pool; the
// geomeans are then folded over the collected times in cell order, so the
// result is identical at any worker count.
func runFig01(opt Options) (*Result, error) {
	hosts := map[string]uarch.Config{
		"Intel_Xeon": platform.IntelXeon(),
		"M1_Pro":     platform.M1Pro(),
		"M1_Ultra":   platform.M1Ultra(),
	}
	hostOrder := []string{"Intel_Xeon", "M1_Pro", "M1_Ultra"}
	res := &Result{
		ID:    "fig01",
		Title: "Simulation time normalized to Intel_Xeon (geomean; >1 means faster than Xeon)",
		Cols:  []string{"M1_Pro-speedup", "M1_Ultra-speedup"},
	}

	var cells []fig01Cell
	for _, sc := range fig01Scenarios() {
		for _, cfg := range fig01Configs(opt.Quick) {
			for _, wl := range fig01Workloads(opt.Quick) {
				for _, host := range hostOrder {
					cells = append(cells, fig01Cell{sc, cfg, wl, host})
				}
			}
		}
	}
	times, err := runAll(opt.runner, len(cells), func(i int) (float64, error) {
		c := cells[i]
		gc := core.GuestConfig{CPU: c.cfg.cpu, Mode: c.cfg.mode, Workload: c.wl,
			Scale: fig01Scale(c.wl, opt.Quick), Seed: core.DeriveSeed("fig01", i)}
		if c.cfg.mode == core.FS {
			gc.BootKBs = 8
		}
		r, err := core.RunSession(core.SessionConfig{
			Guest: gc, Host: hosts[c.host], Scenario: c.sc.procs[c.host]})
		if err != nil {
			return 0, fmt.Errorf("fig01 %s %s %s: %w", c.host, c.cfg.label, c.wl, err)
		}
		return r.SimSeconds(), nil
	})
	if err != nil {
		return nil, err
	}

	var smtOn, smtOff []float64
	i := 0
	for _, sc := range fig01Scenarios() {
		for _, cfg := range fig01Configs(opt.Quick) {
			var proRatios, ultraRatios []float64
			for range fig01Workloads(opt.Quick) {
				xeon, pro, ultra := times[i], times[i+1], times[i+2]
				i += len(hostOrder)
				proRatios = append(proRatios, xeon/pro)
				ultraRatios = append(ultraRatios, xeon/ultra)
				switch sc.label {
				case "procs = hardware threads (SMT on)":
					smtOn = append(smtOn, xeon)
				case "procs = physical cores (SMT off)":
					smtOff = append(smtOff, xeon)
				}
			}
			res.Rows = append(res.Rows, Row{
				Label:  sc.label + " | " + cfg.label,
				Values: []float64{geomean(proRatios), geomean(ultraRatios)},
			})
		}
	}

	best := 0.0
	for _, r := range res.Rows {
		if v := maxf(r.Values); v > best {
			best = v
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("max M1 advantage %.2fx (paper: 1.7x..3.02x single, up to 4.15x co-running)", best))
	if len(smtOn) == len(smtOff) && len(smtOn) > 0 {
		var ratios []float64
		for i := range smtOn {
			ratios = append(ratios, smtOn[i]/smtOff[i])
		}
		res.Notes = append(res.Notes,
			fmt.Sprintf("Xeon per-process time with SMT is %.0f%% higher than SMT-off (paper: ~47%% better with SMT disabled)",
				100*(geomean(ratios)-1)))
	}
	return res, nil
}
