package experiments

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"gem5prof/internal/simpoint"
)

// Runner executes the independent simulation runs of an experiment — and,
// via RunMany, whole experiments — on a bounded worker pool. Every run
// constructs its own core.Session/sim.System, so runs share no mutable
// state; determinism comes from collecting results by cell index and from
// deriving per-run seeds from (experiment id, cell index) rather than any
// shared RNG (core.DeriveSeed). A parallel schedule is therefore
// bit-identical to the sequential one: `-j 8` renders the same bytes as
// `-j 1`.
type Runner struct {
	workers int
	sem     chan struct{}
}

// NewRunner returns a runner whose pool admits n concurrent simulation runs;
// n <= 0 uses GOMAXPROCS.
func NewRunner(n int) *Runner {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: n, sem: make(chan struct{}, n)}
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// submit runs fn on the pool once a worker slot frees up. Only leaf
// simulation runs hold slots — experiment coordinators (RunMany) never do,
// which is what lets the nested fan-out proceed without deadlocking the
// pool at -j 1.
//
// Goroutine accounting with the co-simulation pipeline: a slot admits one
// session, and a pipelined session adds exactly one uarch-consumer
// goroutine for the duration of its run (core.RunSession starts it after
// admission and joins it before releasing the slot), so the harness runs
// at most 2*Jobs simulation goroutines no matter how many experiments are
// in flight.
//
// Workers carry the pprof label cosim-stage=experiment-worker; pipelined
// sessions re-label their producer span and consumer goroutine, so a
// -cpuprofile from cmd/experiments splits time across all three stages.
func (r *Runner) submit(wg *sync.WaitGroup, fn func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.sem <- struct{}{}
		defer func() { <-r.sem }()
		pprof.Do(context.Background(),
			pprof.Labels("cosim-stage", "experiment-worker"),
			func(context.Context) { fn() })
	}()
}

// runAll executes fn(i) for every cell i in [0,n) on the runner's pool and
// returns the results in index order, so the collected slice is identical to
// what the old sequential loops produced no matter how the pool interleaves
// the runs. On failure the lowest failing index wins — again deterministic.
// A nil runner runs inline (sequential, no goroutines).
func runAll[T any](r *Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if r == nil {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		r.submit(&wg, func() {
			out[i], errs[i] = fn(i)
		})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Outcome is one experiment's result from RunMany.
type Outcome struct {
	ID  string
	Res *Result
	Err error
}

// RunMany regenerates the given experiments concurrently — every experiment
// coordinator starts immediately, and the simulation runs inside all of them
// share one pool bounded by opt.Jobs — and returns a channel yielding one
// Outcome per id in ids order (not completion order), as each becomes
// available. Rendered output is byte-identical for any worker count.
func RunMany(ids []string, opt Options) <-chan Outcome {
	opt = opt.withRunner()
	pending := make([]chan Outcome, len(ids))
	for i, id := range ids {
		pending[i] = make(chan Outcome, 1)
		i, id := i, strings.TrimSpace(id)
		go func() {
			res, err := Run(id, opt)
			pending[i] <- Outcome{ID: id, Res: res, Err: err}
		}()
	}
	out := make(chan Outcome)
	go func() {
		for _, c := range pending {
			out <- <-c
		}
		close(out)
	}()
	return out
}

// ResetCaches drops the per-process measurement caches (the shared Fig. 2-6
// Top-Down set and the simpoint analysis memo). Benchmarks and determinism
// tests call it so that repeated regenerations re-measure instead of
// replaying the cache.
func ResetCaches() {
	tdMu.Lock()
	defer tdMu.Unlock()
	tdCache = map[bool]*tdSet{}
	simpoint.ResetMemo()
}
