// Package experiments regenerates every table and figure of the paper's
// evaluation from the co-simulation library. Each experiment returns a
// Result whose rows mirror the series the paper plots; EXPERIMENTS.md
// records the shape comparison against the published numbers.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"gem5prof/internal/ckptcache"
)

// Options tune experiment cost.
type Options struct {
	// Quick shrinks workload sets and problem sizes for use from unit
	// tests and benchmarks. The full harness (cmd/experiments) leaves it
	// false.
	Quick bool
	// Jobs bounds how many simulation runs execute concurrently (the
	// harness's -j flag). 0 means GOMAXPROCS; 1 reproduces the sequential
	// harness. The rendered output is byte-identical for every value: runs
	// are independent sessions, results are collected in cell order, and
	// per-run seeds derive from (experiment id, cell index), never from a
	// shared RNG.
	Jobs int

	// Cores caps the multicore scaling sweep (fig16) at the given guest
	// core count, rounded down to a power of two. 0 means the default
	// sweep (1, 2, 4 cores).
	Cores int

	// SimPoint switches the figures that opt in (the sweep-shaped figs
	// 10, 12, 13) to SimPoint-style sampled simulation: profile once per
	// config family on the Atomic model, then simulate only one
	// representative interval per phase on the detailed model and
	// extrapolate. Output stays byte-identical at any -j; the sampled
	// figures carry a note documenting the mode and its error bound.
	SimPoint bool
	// SimPointInterval overrides the profiling interval in committed
	// instructions (0 = the harness default).
	SimPointInterval uint64
	// CkptCacheDir, when non-empty, persists fast-forward checkpoints
	// across processes (content-addressed, self-verifying; see
	// internal/ckptcache).
	CkptCacheDir string

	// runner is the shared worker pool, created lazily from Jobs. RunMany
	// installs one runner across all its experiments so Jobs bounds the
	// whole harness, not each experiment separately.
	runner *Runner
	// ckptCache is opened lazily from CkptCacheDir alongside the runner.
	ckptCache *ckptcache.Cache
}

// withRunner returns opt with its worker pool (and checkpoint cache, if
// configured) materialized.
func (o Options) withRunner() Options {
	if o.runner == nil {
		o.runner = NewRunner(o.Jobs)
	}
	if o.ckptCache == nil && o.CkptCacheDir != "" {
		cache, err := ckptcache.Open(o.CkptCacheDir)
		if err == nil {
			o.ckptCache = cache
		}
		// An unopenable cache directory degrades to uncached sampling;
		// sampled results are identical either way.
	}
	return o
}

// Row is one labeled series of values.
type Row struct {
	Label  string
	Values []float64
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string
	Title string
	// Cols names Row values.
	Cols []string
	Rows []Row
	// Notes carries prose observations (the claims to compare with the
	// paper) and free-text renderings for the config tables.
	Notes []string
}

// Render formats the result as an aligned text table.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if len(r.Rows) > 0 {
		width := 26
		fmt.Fprintf(&b, "%-*s", width, "")
		for _, c := range r.Cols {
			fmt.Fprintf(&b, " %14s", c)
		}
		b.WriteString("\n")
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%-*s", width, row.Label)
			for _, v := range row.Values {
				fmt.Fprintf(&b, " %14.4f", v)
			}
			b.WriteString("\n")
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  # %s\n", n)
	}
	return b.String()
}

// generator produces one experiment.
type generator func(opt Options) (*Result, error)

var (
	mu       sync.Mutex
	registry = map[string]generator{}
)

func register(id string, r generator) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs returns all experiment identifiers in presentation order.
func IDs() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(registry))
	//lint:deterministic keys are sorted before use
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id. Its simulation runs fan out on the
// options' worker pool (see Options.Jobs).
func Run(id string, opt Options) (*Result, error) {
	mu.Lock()
	r, ok := registry[id]
	mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(opt.withRunner())
}

// geomean returns the geometric mean of vs.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// pct converts a fraction to percent.
func pct(v float64) float64 { return 100 * v }
