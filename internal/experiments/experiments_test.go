package experiments

import (
	"strings"
	"testing"
)

var quickOpt = Options{Quick: true}

func TestIDsComplete(t *testing.T) {
	want := []string{
		"ablations",
		"fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07",
		"fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "table1", "table2",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("fig99", quickOpt); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTables(t *testing.T) {
	for _, id := range []string{"table1", "table2"} {
		res, err := Run(id, quickOpt)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Notes) == 0 {
			t.Fatalf("%s empty", id)
		}
		if !strings.Contains(res.Render(), "===") {
			t.Fatal("render malformed")
		}
	}
}

// TestTopdownFigures runs the shared Fig. 2-6 set once (cached) and checks
// the paper's qualitative claims hold in quick mode.
func TestTopdownFigures(t *testing.T) {
	f2, err := Run("fig02", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Rows) != 11 {
		t.Fatalf("fig02 rows = %d", len(f2.Rows))
	}
	// Every gem5 config: front-end bound above back-end bound.
	for _, row := range f2.Rows[:8] {
		fe, be := row.Values[1], row.Values[3]
		if fe <= be {
			t.Errorf("%s: FE %.1f <= BE %.1f", row.Label, fe, be)
		}
	}
	// mcf: heavily back-end bound, lowest retiring.
	mcf := f2.Rows[10]
	if mcf.Values[3] < 40 {
		t.Errorf("mcf BE = %.1f, want heavy", mcf.Values[3])
	}

	f6, err := Run("fig06", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	// gem5 DSB coverage below x264's.
	var gem5Max float64
	for _, row := range f6.Rows[:8] {
		if row.Values[0] > gem5Max {
			gem5Max = row.Values[0]
		}
	}
	x264 := f6.Rows[8].Values[0]
	if gem5Max >= x264 {
		t.Errorf("gem5 DSB coverage (max %.1f) should be below x264's (%.1f)", gem5Max, x264)
	}

	f4, err := Run("fig04", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown branches grow with CPU detail (O3 vs Atomic, PARSEC rows).
	byLabel := map[string]Row{}
	for _, r := range f4.Rows {
		byLabel[r.Label] = r
	}
	if byLabel["O3_PARSEC"].Values[4] <= byLabel["ATOMIC_PARSEC"].Values[4] {
		t.Error("unknown-branch share should grow with model detail")
	}

	f3, err := Run("fig03", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Run("fig05", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	// MITE dominates gem5's bandwidth-bound cycles.
	for _, row := range f5.Rows[:8] {
		if row.Values[2] < 50 {
			t.Errorf("%s MITE share %.0f%%, want dominant", row.Label, row.Values[2])
		}
	}
	_ = f3
}

func TestFig13FrequencyScaling(t *testing.T) {
	res, err := Run("fig13", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Normalized time must decrease monotonically with frequency and the
	// 1.2GHz point must be roughly linear (between 2x and 2.6x).
	prev := res.Rows[0].Values[0]
	for _, row := range res.Rows[1:] {
		if row.Values[0] >= prev {
			t.Fatalf("time not decreasing with frequency: %+v", res.Rows)
		}
		prev = row.Values[0]
	}
	slow := res.Rows[0].Values[0]
	if slow < 1.8 || slow > 2.7 {
		t.Fatalf("1.2GHz slowdown %.2fx outside the near-linear band", slow)
	}
}

func TestFig10HugePages(t *testing.T) {
	res, err := Run("fig10", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Huge pages help the detailed models.
	o3 := res.Rows[3]
	if o3.Values[0] <= 0 && o3.Values[1] <= 0 {
		t.Fatalf("huge pages should help O3: %+v", o3)
	}
}

func TestFig15Profile(t *testing.T) {
	res, err := Run("fig15", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Function counts grow with CPU model detail.
	prev := 0.0
	for _, row := range res.Rows {
		called := row.Values[3]
		if called <= prev {
			t.Fatalf("functions-called not increasing: %+v", res.Rows)
		}
		prev = called
		// CDF sanity: top50 >= top10 >= hottest.
		if !(row.Values[2] >= row.Values[1] && row.Values[1] >= row.Values[0]) {
			t.Fatalf("CDF not monotone: %+v", row)
		}
	}
}

func TestAblationsExperiment(t *testing.T) {
	res, err := Run("ablations", quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byLabel := map[string]float64{}
	for _, r := range res.Rows {
		byLabel[r.Label] = r.Values[0]
	}
	if byLabel["baseline"] != 1 {
		t.Fatal("baseline not normalized")
	}
	if byLabel["A2 non-VIPT 128KB L1I"] >= 1 {
		t.Fatalf("a big L1I should be faster: %v", byLabel)
	}
	if byLabel["A3 no MLP overlap"] <= 1 {
		t.Fatalf("removing MLP overlap should be slower: %v", byLabel)
	}
	if a4 := byLabel["A4 packed layout"]; a4 < 0.90 || a4 > 1.05 {
		t.Fatalf("packed layout should be a small effect on total time: %v", byLabel)
	}
	a5 := byLabel["A5 calendar event queue"]
	if a5 < 0.99 || a5 > 1.01 {
		t.Fatalf("A5 must not change modeled time: %v", a5)
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{1, 4}); g != 2 {
		t.Fatalf("geomean = %v", g)
	}
	if geomean(nil) != 0 || geomean([]float64{0, 1}) != 0 {
		t.Fatal("degenerate geomean wrong")
	}
}
