package experiments

import (
	"strings"

	"gem5prof/internal/platform"
)

// runTable1 renders Table I from the FireSim host model's parameters.
func runTable1(opt Options) (*Result, error) {
	return &Result{
		ID:    "table1",
		Title: "Base Hardware Configuration on FireSim",
		Notes: strings.Split(strings.TrimRight(platform.TableI(), "\n"), "\n"),
	}, nil
}

// runTable2 renders Table II from the three platform models.
func runTable2(opt Options) (*Result, error) {
	return &Result{
		ID:    "table2",
		Title: "Evaluation platforms",
		Notes: strings.Split(strings.TrimRight(platform.TableII(), "\n"), "\n"),
	}, nil
}
