package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"gem5prof/internal/core"
)

// TestRunAllOrderAndBound checks the submit/collect primitive: results come
// back in index order regardless of completion order, the pool admits at
// most Workers() concurrent cells, and the lowest failing index wins.
func TestRunAllOrderAndBound(t *testing.T) {
	r := NewRunner(3)
	if r.Workers() != 3 {
		t.Fatalf("workers = %d", r.Workers())
	}
	var inFlight, maxInFlight atomic.Int64
	got, err := runAll(r, 64, func(i int) (int, error) {
		n := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if n <= m || maxInFlight.CompareAndSwap(m, n) {
				break
			}
		}
		defer inFlight.Add(-1)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	if m := maxInFlight.Load(); m > 3 {
		t.Fatalf("pool admitted %d concurrent cells, want <= 3", m)
	}

	_, err = runAll(r, 8, func(i int) (int, error) {
		if i >= 4 {
			return 0, fmt.Errorf("cell %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "cell 4 failed" {
		t.Fatalf("err = %v, want lowest failing cell", err)
	}

	// nil runner runs inline.
	got, err = runAll(nil, 3, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 3 {
		t.Fatalf("inline runAll: %v %v", got, err)
	}
}

// TestRunManyOrder checks that RunMany yields outcomes in ids order even
// though the experiments complete in arbitrary order, and that unknown ids
// surface as per-outcome errors.
func TestRunManyOrder(t *testing.T) {
	ids := []string{"table2", "nope", "table1"}
	var got []string
	var errs int
	for oc := range RunMany(ids, Options{Quick: true, Jobs: 2}) {
		got = append(got, oc.ID)
		if oc.Err != nil {
			errs++
			if oc.ID != "nope" {
				t.Errorf("unexpected error for %s: %v", oc.ID, oc.Err)
			}
		}
	}
	if strings.Join(got, ",") != "table2,nope,table1" {
		t.Fatalf("outcome order = %v", got)
	}
	if errs != 1 {
		t.Fatalf("errs = %d", errs)
	}
}

// TestDeriveSeedStable pins the seed-derivation contract: seeds depend only
// on (experiment id, cell index), are positive, and differ across cells.
func TestDeriveSeedStable(t *testing.T) {
	a := core.DeriveSeed("fig02", 3)
	if a != core.DeriveSeed("fig02", 3) {
		t.Fatal("seed not stable")
	}
	if a <= 0 {
		t.Fatalf("seed %d not positive", a)
	}
	if a == core.DeriveSeed("fig02", 4) || a == core.DeriveSeed("fig03", 3) {
		t.Fatal("seed collision across cells")
	}
}

// renderWithJobs regenerates one experiment from a cold cache under the
// given worker count and returns the rendered report.
func renderWithJobs(t *testing.T, id string, jobs int) string {
	t.Helper()
	ResetCaches()
	res, err := Run(id, Options{Quick: true, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	return res.Render()
}

// TestParallelDeterminism is the harness's core guarantee: running a
// multi-run experiment with -j 1 and -j 8 renders byte-identical output.
// fig02 exercises the shared Top-Down measurement set (11 cells), ablations
// the flattened probe cells including the calendar-queue run.
func TestParallelDeterminism(t *testing.T) {
	for _, id := range []string{"fig02", "ablations"} {
		seq := renderWithJobs(t, id, 1)
		par := renderWithJobs(t, id, 8)
		if seq != par {
			t.Errorf("%s: -j 1 and -j 8 output differs:\n--- j1 ---\n%s\n--- j8 ---\n%s", id, seq, par)
		}
	}
	// Leave a cold cache for whichever test runs next.
	ResetCaches()
}
