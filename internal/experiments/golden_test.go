package experiments

// Determinism witness for the hot-path data-structure work: the
// quick-mode fig02 (Top-Down breakdown), fig04, fig07, and fig08
// (miss-rate table) reports must stay byte-identical to their captured
// fixtures. Any modeled outcome drifting — one extra miss, one different
// victim — moves these tables.
//
// To regenerate after an *intentional* model change:
//
//	go test ./internal/experiments -run TestGoldenReports -update-golden

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden report fixtures")

func TestGoldenReports(t *testing.T) {
	for _, id := range []string{"fig02", "fig04", "fig07", "fig08", "fig10", "fig13", "fig16"} {
		t.Run(id, func(t *testing.T) {
			ResetCaches()
			res, err := Run(id, Options{Quick: true, Jobs: 1})
			if err != nil {
				t.Fatal(err)
			}
			got := res.Render()
			path := filepath.Join("testdata", id+"_quick.golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("%s quick report drifted from golden fixture:\n--- got ---\n%s\n--- want ---\n%s",
					id, got, want)
			}
		})
	}
	ResetCaches()
}
