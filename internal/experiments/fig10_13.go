package experiments

import (
	"fmt"

	"gem5prof/internal/core"
	"gem5prof/internal/hostmodel"
	"gem5prof/internal/platform"
	"gem5prof/internal/uarch"
)

func init() {
	register("fig10", runFig10)
	register("fig11", runFig11)
	register("fig12", runFig12)
	register("fig13", runFig13)
}

// hugePageSession is the PARSEC-representative cell with a text-backing
// mode; figs 10 and 11 share it.
func hugePageSession(opt Options, cpu core.CPUModel, hp uarch.HugePageMode, seed int64) core.SessionConfig {
	host := platform.IntelXeon()
	host.HugePages = hp
	return core.SessionConfig{
		Guest: core.GuestConfig{
			CPU: cpu, Mode: core.SE,
			Workload: "water_nsquared", Scale: parsecRepScale(opt),
			Seed: seed,
		},
		Host: host,
	}
}

// hugePageRun runs the cell as a full co-simulation (fig11 needs the
// complete Top-Down report, which sampling does not reconstruct).
func hugePageRun(opt Options, cpu core.CPUModel, hp uarch.HugePageMode, seed int64) (*core.SessionResult, error) {
	return core.RunSession(hugePageSession(opt, cpu, hp, seed))
}

// hugePageGrid fans the CPU-model x page-mode grid out on the worker pool
// and returns modeled seconds indexed [cpu][mode]. Cells consume only
// SimSeconds, so the grid samples under -simpoint.
func hugePageGrid(opt Options, id string, modes []uarch.HugePageMode) ([][]float64, error) {
	cpus := core.AllCPUModels
	times, err := runAll(opt.runner, len(cpus)*len(modes), func(i int) (float64, error) {
		cpu, hp := cpus[i/len(modes)], modes[i%len(modes)]
		return sessionSeconds(opt, hugePageSession(opt, cpu, hp, core.DeriveSeed(id, i)))
	})
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(cpus))
	for ci := range cpus {
		out[ci] = times[ci*len(modes) : (ci+1)*len(modes)]
	}
	return out, nil
}

// runFig10 reproduces Fig. 10: simulation speedup from backing gem5's code
// with transparent (THP) and explicit (EHP) huge pages.
func runFig10(opt Options) (*Result, error) {
	res := &Result{
		ID:    "fig10",
		Title: "Speedup from huge-page code backing on Intel_Xeon (%)",
		Cols:  []string{"THP-speedup-%", "EHP-speedup-%"},
	}
	grid, err := hugePageGrid(opt, "fig10",
		[]uarch.HugePageMode{uarch.PagesBase, uarch.PagesTHP, uarch.PagesEHP})
	if err != nil {
		return nil, err
	}
	var best float64
	for ci, cpu := range core.AllCPUModels {
		base, thp, ehp := grid[ci][0], grid[ci][1], grid[ci][2]
		thpGain := pct(base/thp - 1)
		ehpGain := pct(base/ehp - 1)
		if thpGain > best {
			best = thpGain
		}
		if ehpGain > best {
			best = ehpGain
		}
		res.Rows = append(res.Rows, Row{Label: string(cpu), Values: []float64{thpGain, ehpGain}})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("best huge-page speedup %.1f%% (paper: up to 5.9%%; larger for detailed CPU models)", best),
		"paper: no consistent winner between EHP and THP",
	)
	sampledNote(opt, res)
	return res, nil
}

// runFig11 reproduces Fig. 11: iTLB overhead and retiring improvement from
// THP.
func runFig11(opt Options) (*Result, error) {
	res := &Result{
		ID:    "fig11",
		Title: "THP effect on iTLB overhead and retiring cycles on Intel_Xeon",
		Cols:  []string{"iTLB-overhead-reduction-%", "retiring-improvement-%"},
	}
	modes := []uarch.HugePageMode{uarch.PagesBase, uarch.PagesTHP}
	runs, err := runAll(opt.runner, len(core.AllCPUModels)*len(modes), func(i int) (*core.SessionResult, error) {
		cpu, hp := core.AllCPUModels[i/len(modes)], modes[i%len(modes)]
		return hugePageRun(opt, cpu, hp, core.DeriveSeed("fig11", i))
	})
	if err != nil {
		return nil, err
	}
	var reductions []float64
	for ci, cpu := range core.AllCPUModels {
		base, thp := runs[ci*len(modes)], runs[ci*len(modes)+1]
		reduction := 0.0
		if b := base.Host.TopDown.FELatITLB; b > 0 {
			reduction = pct(1 - thp.Host.TopDown.FELatITLB/b)
		}
		retireGain := pct(thp.Host.Level1.Retiring/base.Host.Level1.Retiring - 1)
		reductions = append(reductions, reduction)
		res.Rows = append(res.Rows, Row{Label: string(cpu), Values: []float64{reduction, retireGain}})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("mean iTLB overhead reduction %.0f%% (paper: 63%% on average)", meanf(reductions)),
		"paper: 3..7%% improvement in retiring cycles for Minor/O3",
	)
	return res, nil
}

// runFig12 reproduces Fig. 12: speedup from compiling gem5 with -O3 (a
// smaller binary) on each platform.
func runFig12(opt Options) (*Result, error) {
	res := &Result{
		ID:    "fig12",
		Title: "Speedup from the -O3 build (smaller code) per platform (%)",
		Cols:  []string{"atomic-%", "o3-%", "mean-%"},
	}
	cpus := []core.CPUModel{core.Atomic, core.O3}
	hostList := platform.TableIIPlatforms()
	perHost := len(cpus) * 2 // (base, -O3 build) per CPU model
	times, err := runAll(opt.runner, len(hostList)*perHost, func(i int) (float64, error) {
		host := hostList[i/perHost]
		cpu := cpus[i%perHost/2]
		gc := core.GuestConfig{CPU: cpu, Mode: core.SE,
			Workload: "water_nsquared", Scale: parsecRepScale(opt),
			Seed: core.DeriveSeed("fig12", i)}
		sc := core.SessionConfig{Guest: gc, Host: host}
		if i%2 == 1 { // the -O3 (smaller binary) build
			sc.HostCode = hostmodel.Config{SizeFactor: 0.97}
		}
		return sessionSeconds(opt, sc)
	})
	if err != nil {
		return nil, err
	}
	for hi, host := range hostList {
		var gains []float64
		for ci := range cpus {
			base := times[hi*perHost+ci*2]
			o3b := times[hi*perHost+ci*2+1]
			gains = append(gains, pct(base/o3b-1))
		}
		res.Rows = append(res.Rows, Row{
			Label:  host.Name,
			Values: []float64{gains[0], gains[1], meanf(gains)},
		})
	}
	res.Notes = append(res.Notes,
		"paper: average speedups 1.38% (Xeon), 0.98% (M1_Pro), 0.78% (M1_Ultra); a few configurations regress",
	)
	sampledNote(opt, res)
	return res, nil
}

// runFig13 reproduces Fig. 13: simulation time versus the Xeon's operating
// frequency, normalized to 3.1 GHz.
func runFig13(opt Options) (*Result, error) {
	res := &Result{
		ID:    "fig13",
		Title: "Normalized simulation time vs Intel_Xeon frequency (3.1GHz = 1.0)",
		Cols:  []string{"normalized-time"},
	}
	freqs := []float64{1.2, 1.6, 2.1, 2.6, 3.1, 4.1} // 4.1 = Turbo Boost
	baseTime := 0.0
	times, err := runAll(opt.runner, len(freqs), func(i int) (float64, error) {
		gc := core.GuestConfig{CPU: core.Timing, Mode: core.SE,
			Workload: "water_nsquared", Scale: parsecRepScale(opt),
			Seed: core.DeriveSeed("fig13", i)}
		host := platform.IntelXeon()
		host.FreqGHz = freqs[i]
		return sessionSeconds(opt, core.SessionConfig{Guest: gc, Host: host})
	})
	if err != nil {
		return nil, err
	}
	for i, f := range freqs {
		if f == 3.1 {
			baseTime = times[i]
		}
	}
	for i, f := range freqs {
		label := fmt.Sprintf("%.1fGHz", f)
		if f == 4.1 {
			label += " (TurboBoost)"
		}
		res.Rows = append(res.Rows, Row{Label: label, Values: []float64{times[i] / baseTime}})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("1.2GHz runs %.2fx slower than 3.1GHz (paper: 2.67x; near-linear in frequency)",
			times[0]/baseTime),
	)
	sampledNote(opt, res)
	return res, nil
}
