package experiments

// Sampled-simulation witnesses for the -simpoint path: the per-cell
// modeled seconds of the figures that opt into sampling must stay inside
// the documented error bound against full simulation, and the sampled
// reports must be byte-identical at any parallelism (the same guarantee
// the full harness makes).

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"gem5prof/internal/core"
	"gem5prof/internal/hostmodel"
	"gem5prof/internal/platform"
	"gem5prof/internal/uarch"
)

// sampledErrorCells is a cross-figure slice of the sweep cells that run
// sampled under -simpoint: a CPU-model x page-mode spread from fig10, the
// build-size pairs from fig12, and the frequency endpoints (plus the
// normalization base) from fig13. Seeds reproduce each cell's position in
// its figure, so the measurement matches what the figures actually run.
func sampledErrorCells() []struct {
	name string
	sc   core.SessionConfig
} {
	type cell = struct {
		name string
		sc   core.SessionConfig
	}
	opt := Options{Quick: true}
	var cells []cell

	// fig10 grid: cell i = cpu*len(modes) + mode.
	modes := []uarch.HugePageMode{uarch.PagesBase, uarch.PagesTHP, uarch.PagesEHP}
	for _, pick := range []struct {
		cpu  int
		mode int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 0}, {3, 1}} {
		cpu := core.AllCPUModels[pick.cpu]
		i := pick.cpu*len(modes) + pick.mode
		cells = append(cells, cell{
			name: fmt.Sprintf("fig10/%s/mode%d", cpu, pick.mode),
			sc:   hugePageSession(opt, cpu, modes[pick.mode], core.DeriveSeed("fig10", i)),
		})
	}

	// fig12 cells: per host, (atomic|o3) x (base|-O3 build); i follows the
	// figure's flattening.
	hosts := platform.TableIIPlatforms()
	cpus := []core.CPUModel{core.Atomic, core.O3}
	for _, pick := range []struct{ host, cpu, build int }{{0, 0, 0}, {0, 1, 1}, {1, 0, 0}} {
		i := pick.host*4 + pick.cpu*2 + pick.build
		sc := core.SessionConfig{
			Guest: core.GuestConfig{CPU: cpus[pick.cpu], Mode: core.SE,
				Workload: "water_nsquared", Scale: parsecRepScale(opt),
				Seed: core.DeriveSeed("fig12", i)},
			Host: hosts[pick.host],
		}
		if pick.build == 1 {
			sc.HostCode = hostmodel.Config{SizeFactor: 0.97}
		}
		cells = append(cells, cell{
			name: fmt.Sprintf("fig12/%s/%s/build%d", hosts[pick.host].Name, cpus[pick.cpu], pick.build),
			sc:   sc,
		})
	}

	// fig13 cells: lowest frequency, the 3.1GHz normalization base, and
	// Turbo Boost.
	freqs := []float64{1.2, 1.6, 2.1, 2.6, 3.1, 4.1}
	for _, fi := range []int{0, 4, 5} {
		host := platform.IntelXeon()
		host.FreqGHz = freqs[fi]
		cells = append(cells, cell{
			name: fmt.Sprintf("fig13/%.1fGHz", freqs[fi]),
			sc: core.SessionConfig{
				Guest: core.GuestConfig{CPU: core.Timing, Mode: core.SE,
					Workload: "water_nsquared", Scale: parsecRepScale(opt),
					Seed: core.DeriveSeed("fig13", fi)},
				Host: host,
			},
		})
	}
	return cells
}

// TestSampledFiguresError holds the documented sampledErrorBoundPct: for a
// cross-figure set of sweep cells, the SimPoint extrapolation of modeled
// host seconds must land within the bound of the full co-simulation.
func TestSampledFiguresError(t *testing.T) {
	ResetCaches()
	defer ResetCaches()
	full := Options{Quick: true, Jobs: 1}.withRunner()
	sampled := full
	sampled.SimPoint = true
	worst := 0.0
	for _, c := range sampledErrorCells() {
		want, err := sessionSeconds(full, c.sc)
		if err != nil {
			t.Fatalf("%s: full: %v", c.name, err)
		}
		got, err := sessionSeconds(sampled, c.sc)
		if err != nil {
			t.Fatalf("%s: sampled: %v", c.name, err)
		}
		errPct := 100 * math.Abs(got-want) / want
		if errPct > worst {
			worst = errPct
		}
		if errPct > sampledErrorBoundPct {
			t.Errorf("%s: sampled %.6g vs full %.6g — error %.1f%% exceeds the documented %.0f%% bound",
				c.name, got, want, errPct, sampledErrorBoundPct)
		}
	}
	t.Logf("worst per-cell sampled error %.1f%% (documented bound %.0f%%)", worst, sampledErrorBoundPct)
}

// TestGoldenSampledReports pins the sampled quick reports of fig10 and
// fig13 to fixtures, and requires the rendering to be byte-identical at
// Jobs=1 and Jobs=4 — sampling must not cost the harness its determinism
// guarantee. Regenerate alongside the full goldens:
//
//	go test ./internal/experiments -run TestGoldenSampledReports -update-golden
func TestGoldenSampledReports(t *testing.T) {
	for _, id := range []string{"fig10", "fig13"} {
		t.Run(id, func(t *testing.T) {
			path := filepath.Join("testdata", id+"_quick_sampled.golden")
			var j1 string
			for _, jobs := range []int{1, 4} {
				ResetCaches()
				res, err := Run(id, Options{Quick: true, Jobs: jobs, SimPoint: true})
				if err != nil {
					t.Fatalf("jobs=%d: %v", jobs, err)
				}
				got := res.Render()
				if jobs == 1 {
					j1 = got
					continue
				}
				if got != j1 {
					t.Fatalf("%s sampled report differs between Jobs=1 and Jobs=4:\n--- j1 ---\n%s\n--- j4 ---\n%s",
						id, j1, got)
				}
			}
			if *updateGolden {
				if err := os.WriteFile(path, []byte(j1), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if j1 != string(want) {
				t.Errorf("%s sampled quick report drifted from golden fixture:\n--- got ---\n%s\n--- want ---\n%s",
					id, j1, want)
			}
		})
	}
	ResetCaches()
}
