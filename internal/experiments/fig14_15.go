package experiments

import (
	"fmt"

	"gem5prof/internal/core"
	"gem5prof/internal/platform"
	"gem5prof/internal/uarch"
)

func init() {
	register("fig14", runFig14)
	register("fig15", runFig15)
}

// fig14Geometries lists the FireSim host cache configurations the paper
// sweeps, in the figure's (iL1 size/ways : dL1 size/ways : L2 size/ways)
// notation. The first entry is the normalization baseline.
func fig14Geometries() []uarch.Config {
	return []uarch.Config{
		platform.FireSimRocket(8, 2, 8, 2, 512, 8), // baseline
		platform.FireSimRocket(16, 4, 16, 4, 512, 8),
		platform.FireSimRocket(32, 8, 32, 8, 512, 8),
		platform.FireSimRocket(8, 2, 8, 2, 1024, 8),
		platform.FireSimRocket(8, 2, 8, 2, 2048, 8),
		platform.FireSimRocket(32, 8, 32, 8, 1024, 8),
		platform.FireSimRocket(64, 16, 64, 16, 512, 8),
	}
}

// fig14CPUs are the gem5 CPU models run on FireSim.
var fig14CPUs = []core.CPUModel{core.Atomic, core.Timing, core.O3}

// runFig14 reproduces Fig. 14: gem5 simulation speedup on FireSim with
// varying host L1/L2 geometry (the Sieve of Eratosthenes workload, SE mode).
func runFig14(opt Options) (*Result, error) {
	scale := 4096
	if opt.Quick {
		scale = 1536
	}
	res := &Result{
		ID:    "fig14",
		Title: "gem5-on-FireSim speedup vs host cache configuration (baseline 8KB/2:8KB/2:512KB/8 = 1.0)",
		Cols:  []string{"atomic", "timing", "o3"},
	}
	geoms := fig14Geometries()
	nCPU := len(fig14CPUs)
	times, err := runAll(opt.runner, len(geoms)*nCPU, func(i int) (float64, error) {
		host, cpu := geoms[i/nCPU], fig14CPUs[i%nCPU]
		r, err := core.RunSession(core.SessionConfig{
			Guest: core.GuestConfig{CPU: cpu, Mode: core.SE, Workload: "sieve",
				Scale: scale, Seed: core.DeriveSeed("fig14", i)},
			Host: host,
		})
		if err != nil {
			return 0, fmt.Errorf("fig14 %s/%s: %w", host.Name, cpu, err)
		}
		return r.SimSeconds(), nil
	})
	if err != nil {
		return nil, err
	}
	for ci, host := range geoms {
		row := Row{Label: host.Name}
		for cj := range fig14CPUs {
			row.Values = append(row.Values, times[cj]/times[ci*nCPU+cj])
		}
		res.Rows = append(res.Rows, row)
	}
	l1Jump := res.Rows[1]
	bestRow := res.Rows[len(res.Rows)-1]
	l2Only := res.Rows[4]
	res.Notes = append(res.Notes,
		fmt.Sprintf("8KB→16KB L1s: atomic/timing/o3 speedups %.2fx/%.2fx/%.2fx (paper: time −30%%/−25%%/−18%%)",
			l1Jump.Values[0], l1Jump.Values[1], l1Jump.Values[2]),
		fmt.Sprintf("best config 64KB/16-way L1s: %.2fx/%.2fx/%.2fx (paper: +68.7%%/+68.2%%/+43.8%%)",
			bestRow.Values[0], bestRow.Values[1], bestRow.Values[2]),
		fmt.Sprintf("L2 512KB→2MB alone: %.2fx/%.2fx/%.2fx (paper: almost no impact)",
			l2Only.Values[0], l2Only.Values[1], l2Only.Values[2]),
		"paper: O3 benefits less from larger L1s (the TLB bottleneck limits the gain)",
	)
	return res, nil
}

// runFig15 reproduces Fig. 15: the CDF of CPU time over the 50 hottest
// gem5 functions per CPU type, plus the total number of functions called.
func runFig15(opt Options) (*Result, error) {
	res := &Result{
		ID:    "fig15",
		Title: "Hot-function concentration per CPU model (water_nsquared on Intel_Xeon)",
		Cols:  []string{"hottest-fn-%", "top10-cum-%", "top50-cum-%", "funcs-called", "funcs-total"},
	}
	paperHottest := map[core.CPUModel]float64{
		core.Atomic: 10.1, core.Timing: 8.5, core.Minor: 2.9, core.O3: 4.2,
	}
	paperCalled := map[core.CPUModel]int{
		core.Atomic: 1602, core.Timing: 2557, core.Minor: 3957, core.O3: 5209,
	}
	runs, err := runAll(opt.runner, len(core.AllCPUModels), func(i int) (*core.SessionResult, error) {
		return core.RunSession(core.SessionConfig{
			Guest: core.GuestConfig{CPU: core.AllCPUModels[i], Mode: core.SE,
				Workload: "water_nsquared", Scale: parsecRepScale(opt),
				Seed: core.DeriveSeed("fig15", i)},
			Host:    platform.IntelXeon(),
			Profile: true,
		})
	})
	if err != nil {
		return nil, err
	}
	var hottest []float64
	for ci, cpu := range core.AllCPUModels {
		r := runs[ci]
		cdf := r.Prof.CDF(50)
		top1 := pct(cdf[0])
		top10 := pct(cdf[min(9, len(cdf)-1)])
		top50 := pct(cdf[len(cdf)-1])
		hottest = append(hottest, top1)
		res.Rows = append(res.Rows, Row{
			Label:  string(cpu),
			Values: []float64{top1, top10, top50, float64(r.Prof.NumCalled()), float64(r.NumFuncs)},
		})
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: hottest %.1f%% (paper %.1f%%), functions called %d of %d in this scaled-down run (paper: %d called over a full-length simulation)",
			cpu, top1, paperHottest[cpu], r.Prof.NumCalled(), r.NumFuncs, paperCalled[cpu]))
	}
	res.Notes = append(res.Notes,
		"paper: no killer function; the CDF flattens as CPU-model complexity grows")
	_ = hottest
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
