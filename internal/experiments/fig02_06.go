package experiments

import "fmt"

func init() {
	register("table1", runTable1)
	register("table2", runTable2)
	register("fig02", runFig02)
	register("fig03", runFig03)
	register("fig04", runFig04)
	register("fig05", runFig05)
	register("fig06", runFig06)
}

// runFig02 reproduces Fig. 2: Top-Down level-1 breakdown of gem5 (eight
// configurations) versus three SPEC CPU2017 benchmarks on the Xeon.
func runFig02(opt Options) (*Result, error) {
	set, err := runTopdownSet(opt)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig02",
		Title: "Top-Down level-1 cycle breakdown on Intel_Xeon (%)",
		Cols:  []string{"retiring", "front-end", "bad-spec", "back-end"},
	}
	var gem5Retiring, gem5FE, gem5BE []float64
	for i, rep := range set.reports {
		l1 := rep.Level1
		res.Rows = append(res.Rows, Row{
			Label:  set.labels[i],
			Values: []float64{pct(l1.Retiring), pct(l1.FrontEndBound), pct(l1.BadSpeculation), pct(l1.BackEndBound)},
		})
		if i < 8 { // gem5 configurations
			gem5Retiring = append(gem5Retiring, pct(l1.Retiring))
			gem5FE = append(gem5FE, pct(l1.FrontEndBound))
			gem5BE = append(gem5BE, pct(l1.BackEndBound))
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("gem5 retiring %.1f%%..%.1f%% (paper: 43.5%%..64.7%%)", minf(gem5Retiring), maxf(gem5Retiring)),
		fmt.Sprintf("gem5 front-end bound %.1f%%..%.1f%% (paper: 30.1%%..41.5%%, above hyperscale workloads)", minf(gem5FE), maxf(gem5FE)),
		fmt.Sprintf("gem5 back-end bound %.1f%%..%.1f%% (paper: 0.9%%..11.3%%; 505.mcf_r much higher)", minf(gem5BE), maxf(gem5BE)),
	)
	return res, nil
}

// runFig03 reproduces Fig. 3: the front-end bound split into latency vs
// bandwidth.
func runFig03(opt Options) (*Result, error) {
	set, err := runTopdownSet(opt)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig03",
		Title: "Front-end bound cycles: latency vs bandwidth on Intel_Xeon (%)",
		Cols:  []string{"fe-latency", "fe-bandwidth"},
	}
	for i, rep := range set.reports {
		res.Rows = append(res.Rows, Row{
			Label:  set.labels[i],
			Values: []float64{pct(rep.Level1.FELatency), pct(rep.Level1.FEBandwidth)},
		})
	}
	res.Notes = append(res.Notes,
		"paper: simple CPU models skew bandwidth-bound; detail shifts the front end latency-bound",
		"paper: gem5 is more front-end bandwidth-bound than SPEC",
	)
	return res, nil
}

// runFig04 reproduces Fig. 4: the front-end latency breakdown.
func runFig04(opt Options) (*Result, error) {
	set, err := runTopdownSet(opt)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig04",
		Title: "Front-end latency-bound cycle breakdown on Intel_Xeon (%)",
		Cols:  []string{"icache", "itlb", "mispred-resteer", "clear-resteer", "unknown-branch"},
	}
	idx := map[string]int{}
	for i, rep := range set.reports {
		l1 := rep.Level1
		idx[set.labels[i]] = i
		res.Rows = append(res.Rows, Row{
			Label: set.labels[i],
			Values: []float64{
				pct(l1.ICacheMisses), pct(l1.ITLBMisses),
				pct(l1.MispredictResteer), pct(l1.ClearResteer), pct(l1.UnknownBranches),
			},
		})
	}
	branching := func(label string) float64 {
		l1 := set.reports[idx[label]].Level1
		return pct(l1.MispredictResteer + l1.ClearResteer + l1.UnknownBranches)
	}
	icache := func(label string) float64 {
		return pct(set.reports[idx[label]].Level1.ICacheMisses)
	}
	missRate := func(label string) float64 {
		return set.reports[idx[label]].ICacheMissRate
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("O3/Minor vs Atomic PARSEC iCache stall-share ratio: %.1fx / %.1fx; L1I miss-rate ratio %.1fx / %.1fx (paper: up to 11x higher iCache misses)",
			icache("O3_PARSEC")/icache("ATOMIC_PARSEC"), icache("MINOR_PARSEC")/icache("ATOMIC_PARSEC"),
			missRate("O3_PARSEC")/missRate("ATOMIC_PARSEC"), missRate("MINOR_PARSEC")/missRate("ATOMIC_PARSEC")),
		fmt.Sprintf("aggregated branching overhead O3/Minor vs Atomic: %.1fx / %.1fx (paper: 6.0x / 4.7x)",
			branching("O3_PARSEC")/branching("ATOMIC_PARSEC"), branching("MINOR_PARSEC")/branching("ATOMIC_PARSEC")),
		"paper: iTLB stalls are high across all gem5 executions; SPEC is neither iCache nor iTLB bound",
	)
	return res, nil
}

// runFig05 reproduces Fig. 5: the front-end bandwidth breakdown (MITE vs
// DSB).
func runFig05(opt Options) (*Result, error) {
	set, err := runTopdownSet(opt)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig05",
		Title: "Front-end bandwidth-bound cycle breakdown on Intel_Xeon (%)",
		Cols:  []string{"MITE", "DSB", "MITE-share-of-bw"},
	}
	var gem5MITEShare []float64
	for i, rep := range set.reports {
		l1 := rep.Level1
		share := 0.0
		if l1.FEBandwidth > 0 {
			share = l1.MITE / l1.FEBandwidth
		}
		res.Rows = append(res.Rows, Row{
			Label:  set.labels[i],
			Values: []float64{pct(l1.MITE), pct(l1.DSB), pct(share)},
		})
		if i < 8 {
			gem5MITEShare = append(gem5MITEShare, pct(share))
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("gem5 MITE share of bandwidth-bound cycles %.0f%%..%.0f%% (paper: 92%%..97%%)",
			minf(gem5MITEShare), maxf(gem5MITEShare)),
	)
	return res, nil
}

// runFig06 reproduces Fig. 6: DSB (uop cache) coverage of gem5 vs SPEC.
func runFig06(opt Options) (*Result, error) {
	set, err := runTopdownSet(opt)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig06",
		Title: "DSB (uop cache) coverage on Intel_Xeon (%)",
		Cols:  []string{"dsb-coverage"},
	}
	var gem5, specv []float64
	for i, rep := range set.reports {
		res.Rows = append(res.Rows, Row{Label: set.labels[i], Values: []float64{pct(rep.DSBCoverage)}})
		if i < 8 {
			gem5 = append(gem5, pct(rep.DSBCoverage))
		} else {
			specv = append(specv, pct(rep.DSBCoverage))
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("gem5 coverage mean %.0f%% vs SPEC mean %.0f%% (paper: gem5 far below SPEC regardless of CPU type)",
			meanf(gem5), meanf(specv)),
	)
	return res, nil
}

func minf(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxf(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func meanf(vs []float64) float64 {
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
