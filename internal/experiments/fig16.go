package experiments

import (
	"fmt"

	"gem5prof/internal/core"
)

func init() {
	register("fig16", runFig16)
}

// fig16Workloads are the mt-suite kernels: same checksum at every core
// count, so the scaling rows are verified runs, not just timings.
var fig16Workloads = []string{"dotprod_mt", "histogram_mt", "matmul_mt"}

// fig16CoreCounts returns the guest core counts the figure sweeps: powers
// of two from 1 up to Options.Cores (default 4). The 1-core column is the
// normalization baseline and runs the exact pre-multicore machine — no
// directory, no threading stats.
func fig16CoreCounts(opt Options) []int {
	max := opt.Cores
	if max <= 0 {
		max = 4
	}
	counts := []int{1}
	for c := 2; c <= max; c *= 2 {
		counts = append(counts, c)
	}
	return counts
}

// runFig16 extends the paper's evaluation to the multicore guest: simulated
// speedup of the mt kernels on the Timing model as the SE guest grows from
// 1 to N cores with MESI directory coherence at the shared L2. The directory
// transition counts land in the notes so coherence traffic is visible next
// to the speedup it buys.
func runFig16(opt Options) (*Result, error) {
	counts := fig16CoreCounts(opt)
	scale := 16384
	if opt.Quick {
		scale = 2048
	}
	res := &Result{
		ID:    "fig16",
		Title: "Multicore guest scaling, Timing model with directory coherence (1-core ticks = 1.0)",
	}
	for _, c := range counts {
		res.Cols = append(res.Cols, fmt.Sprintf("%d-core", c))
	}
	type cell struct {
		ticks  float64
		invals float64
		getS   float64
		getM   float64
	}
	nc := len(counts)
	cells, err := runAll(opt.runner, len(fig16Workloads)*nc, func(i int) (cell, error) {
		wl, cores := fig16Workloads[i/nc], counts[i%nc]
		r, err := core.RunGuest(core.GuestConfig{
			CPU: core.Timing, Mode: core.SE, Workload: wl, Scale: scale,
			Cores: cores, Seed: core.DeriveSeed("fig16", i),
		})
		if err != nil {
			return cell{}, fmt.Errorf("fig16 %s cores=%d: %w", wl, cores, err)
		}
		if !r.ChecksumOK {
			return cell{}, fmt.Errorf("fig16 %s cores=%d: checksum mismatch (got %#x want %#x)",
				wl, cores, r.ExitCode, r.Expected)
		}
		out := cell{ticks: float64(r.SimTicks)}
		if cores > 1 {
			// A 1-core guest builds the exact pre-multicore machine:
			// no directory, so no sys.dir.* stats to read.
			out.invals = r.Stats.Get("sys.dir.invals")
			out.getS = r.Stats.Get("sys.dir.getS")
			out.getM = r.Stats.Get("sys.dir.getM")
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for wi, wl := range fig16Workloads {
		base := cells[wi*nc].ticks
		row := Row{Label: wl}
		for ci := range counts {
			row.Values = append(row.Values, base/cells[wi*nc+ci].ticks)
		}
		res.Rows = append(res.Rows, row)
		top := cells[wi*nc+nc-1]
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s at %d cores: %.2fx, directory getS/getM/invals = %.0f/%.0f/%.0f",
			wl, counts[nc-1], row.Values[nc-1], top.getS, top.getM, top.invals))
	}
	res.Notes = append(res.Notes,
		"scaling is sublinear: the serial generate/join phases and coherence misses on shared blocks bound it (the guest-side mirror of the paper's host-side contention findings)")
	return res, nil
}
