package experiments

import (
	"fmt"

	"gem5prof/internal/core"
	"gem5prof/internal/hostmodel"
	"gem5prof/internal/platform"
	"gem5prof/internal/uarch"
)

func init() {
	register("ablations", runAblations)
}

// runAblations quantifies the design choices DESIGN.md §5 calls out, using
// the O3/water_nsquared configuration on the Xeon as the probe.
func runAblations(opt Options) (*Result, error) {
	scale := 40
	if !opt.Quick {
		scale = parsecRepScale(opt)
	}
	// The six probes are independent sessions; flatten them into cells and
	// fan out on the worker pool, normalizing against cell 0 afterwards.
	noDSB := platform.IntelXeon() // A1: no uop cache.
	noDSB.DSBUops = 0
	bigL1 := platform.IntelXeon() // A2: VIPT constraint lifted.
	bigL1.L1I = uarch.CacheGeom{SizeBytes: 128 << 10, Ways: 8, LineBytes: 64}
	bigL1.SkipVIPTCheck = true
	noMLP := platform.IntelXeon() // A3: no memory-level parallelism overlap.
	noMLP.MLPOverlap = 0
	packed := hostmodel.DefaultConfig() // A4: densely packed function layout.
	packed.TextSlots = 2                // forces sequential overflow placement

	cells := []struct {
		label    string
		host     uarch.Config
		hc       hostmodel.Config
		calendar bool // A5: calendar event queue (guest-side; host time via co-sim)
	}{
		{label: "baseline", host: platform.IntelXeon()},
		{label: "A1 no DSB", host: noDSB},
		{label: "A2 non-VIPT 128KB L1I", host: bigL1},
		{label: "A3 no MLP overlap", host: noMLP},
		{label: "A4 packed layout", host: platform.IntelXeon(), hc: packed},
		{label: "A5 calendar event queue", host: platform.IntelXeon(), calendar: true},
	}
	times, err := runAll(opt.runner, len(cells), func(i int) (float64, error) {
		r, err := core.RunSession(core.SessionConfig{
			Guest: core.GuestConfig{
				CPU: core.O3, Mode: core.SE,
				Workload: "water_nsquared", Scale: scale,
				CalendarQueue: cells[i].calendar,
				Seed:          core.DeriveSeed("ablations", i),
			},
			Host:     cells[i].host,
			HostCode: cells[i].hc,
		})
		if err != nil {
			return 0, err
		}
		return r.SimSeconds(), nil
	})
	if err != nil {
		return nil, err
	}
	base := times[0]

	res := &Result{
		ID:    "ablations",
		Title: "Design-choice ablations (O3/water_nsquared on Intel_Xeon; ratio vs baseline time)",
		Cols:  []string{"time-ratio"},
	}
	for i, c := range cells {
		res.Rows = append(res.Rows, Row{Label: c.label, Values: []float64{times[i] / base}})
	}

	res.Notes = append(res.Notes,
		"ratios > 1 mean slower than the baseline model",
		"A4's layout effect on *total* time is small once the hot path is cache-resident; its impact concentrates in iTLB stalls (compare fig11)",
		fmt.Sprintf("A2 shows what the VIPT page-size constraint costs the Xeon: %.2fx of baseline time with a 128KB L1I",
			res.Rows[2].Values[0]),
		"A5 must be ~1.0: the queue backend changes wall-clock, not modeled cycles",
	)
	return res, nil
}
