package experiments

import (
	"fmt"

	"gem5prof/internal/core"
	"gem5prof/internal/hostmodel"
	"gem5prof/internal/platform"
	"gem5prof/internal/uarch"
)

func init() {
	register("ablations", runAblations)
}

// runAblations quantifies the design choices DESIGN.md §5 calls out, using
// the O3/water_nsquared configuration on the Xeon as the probe.
func runAblations(opt Options) (*Result, error) {
	scale := 40
	if !opt.Quick {
		scale = parsecRepScale(opt)
	}
	probe := func(host uarch.Config, hc hostmodel.Config) (float64, error) {
		r, err := core.RunSession(core.SessionConfig{
			Guest: core.GuestConfig{
				CPU: core.O3, Mode: core.SE,
				Workload: "water_nsquared", Scale: scale,
			},
			Host:     host,
			HostCode: hc,
		})
		if err != nil {
			return 0, err
		}
		return r.SimSeconds(), nil
	}

	base, err := probe(platform.IntelXeon(), hostmodel.Config{})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:    "ablations",
		Title: "Design-choice ablations (O3/water_nsquared on Intel_Xeon; ratio vs baseline time)",
		Cols:  []string{"time-ratio"},
	}
	add := func(label string, t float64) {
		res.Rows = append(res.Rows, Row{Label: label, Values: []float64{t / base}})
	}
	add("baseline", base)

	// A1: no uop cache.
	noDSB := platform.IntelXeon()
	noDSB.DSBUops = 0
	if t, err := probe(noDSB, hostmodel.Config{}); err == nil {
		add("A1 no DSB", t)
	} else {
		return nil, err
	}

	// A2: VIPT constraint lifted — a 128KB 8-way L1I on 4KB pages.
	bigL1 := platform.IntelXeon()
	bigL1.L1I = uarch.CacheGeom{SizeBytes: 128 << 10, Ways: 8, LineBytes: 64}
	bigL1.SkipVIPTCheck = true
	if t, err := probe(bigL1, hostmodel.Config{}); err == nil {
		add("A2 non-VIPT 128KB L1I", t)
	} else {
		return nil, err
	}

	// A3: no memory-level parallelism overlap.
	noMLP := platform.IntelXeon()
	noMLP.MLPOverlap = 0
	if t, err := probe(noMLP, hostmodel.Config{}); err == nil {
		add("A3 no MLP overlap", t)
	} else {
		return nil, err
	}

	// A4: densely packed function layout instead of scattered.
	packed := hostmodel.DefaultConfig()
	packed.TextSlots = 2 // forces sequential overflow placement
	if t, err := probe(platform.IntelXeon(), packed); err == nil {
		add("A4 packed layout", t)
	} else {
		return nil, err
	}

	// A5: calendar event queue (guest-side; host time via co-sim).
	calRun, err := core.RunSession(core.SessionConfig{
		Guest: core.GuestConfig{
			CPU: core.O3, Mode: core.SE,
			Workload: "water_nsquared", Scale: scale, CalendarQueue: true,
		},
		Host: platform.IntelXeon(),
	})
	if err != nil {
		return nil, err
	}
	add("A5 calendar event queue", calRun.SimSeconds())

	res.Notes = append(res.Notes,
		"ratios > 1 mean slower than the baseline model",
		"A4's layout effect on *total* time is small once the hot path is cache-resident; its impact concentrates in iTLB stalls (compare fig11)",
		fmt.Sprintf("A2 shows what the VIPT page-size constraint costs the Xeon: %.2fx of baseline time with a 128KB L1I",
			res.Rows[2].Values[0]),
		"A5 must be ~1.0: the queue backend changes wall-clock, not modeled cycles",
	)
	return res, nil
}
