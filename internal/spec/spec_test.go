package spec

import (
	"testing"

	"gem5prof/internal/platform"
	"gem5prof/internal/uarch"
)

func TestNamesAndLookup(t *testing.T) {
	names := Names()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		p, err := ByName(n)
		if err != nil || p.Name != n {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("600.perlbench_s"); err == nil {
		t.Error("unknown benchmark resolved")
	}
}

func TestCharacterContrast(t *testing.T) {
	// The paper's reason for picking these three: x264 has the highest
	// IPC, mcf the lowest (heavily back-end bound), deepsjeng misses the
	// LLC hard.
	reports := RunAll(platform.IntelXeon(), 120_000)
	x264 := reports["525.x264_r"]
	mcf := reports["505.mcf_r"]
	djs := reports["531.deepsjeng_r"]

	if !(x264.IPC > djs.IPC && djs.IPC >= mcf.IPC) {
		t.Fatalf("IPC ordering wrong: x264 %.2f deepsjeng %.2f mcf %.2f",
			x264.IPC, djs.IPC, mcf.IPC)
	}
	if mcf.Level1.BackEndBound < 0.4 {
		t.Fatalf("mcf back-end bound %.2f, want heavy", mcf.Level1.BackEndBound)
	}
	if x264.Level1.Retiring < 0.4 {
		t.Fatalf("x264 retiring %.2f, want high", x264.Level1.Retiring)
	}
	if djs.DRAMBytes <= x264.DRAMBytes {
		t.Fatal("deepsjeng should move far more DRAM traffic than x264")
	}
	// SPEC loops live in the uop cache in a way gem5 never does.
	if x264.DSBCoverage < 0.8 {
		t.Fatalf("x264 DSB coverage %.2f, want high", x264.DSBCoverage)
	}
}

func TestDeterminism(t *testing.T) {
	p, _ := ByName("505.mcf_r")
	r1 := p.Run(uarch.NewMachine(platform.IntelXeon()), 50_000)
	r2 := p.Run(uarch.NewMachine(platform.IntelXeon()), 50_000)
	if r1.Cycles != r2.Cycles || r1.Uops != r2.Uops {
		t.Fatal("nondeterministic")
	}
}

func TestRunOnM1(t *testing.T) {
	// The generators must run on hosts without a uop cache.
	p, _ := ByName("525.x264_r")
	r := p.Run(uarch.NewMachine(platform.M1Pro()), 50_000)
	if r.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	if r.DSBCoverage != 0 {
		t.Fatal("M1 has no DSB")
	}
}
