// Package spec synthesizes the host-level instruction streams of the three
// SPEC CPU2017 reference benchmarks the paper runs bare-metal on the Xeon
// for comparison with gem5's profile: 525.x264_r (loopy, highest IPC),
// 531.deepsjeng_r (large footprint, LLC-missing), and 505.mcf_r (pointer
// chasing and mispredicting, lowest IPC).
//
// The generators feed the same uarch.Machine sink as the simulator's code
// model, so their Top-Down profiles are produced by the identical cycle
// model — exactly the comparison the paper draws.
package spec

import (
	"fmt"
	"sort"

	"gem5prof/internal/uarch"
)

// Profile parameterizes one synthetic host workload.
type Profile struct {
	Name string
	// CodeBytes is the static instruction footprint.
	CodeBytes uint64
	// LoopBytes is the size of the hot inner loop; hot fetches walk it
	// sequentially (so a loop that fits the DSB streams from it).
	LoopBytes uint64
	// HotFrac is the fraction of fetches served from the hot loop; the
	// rest walk the whole footprint.
	HotFrac float64
	// UopsPerBlock is the average decoded uops per 32-byte fetch block.
	UopsPerBlock uint32
	// BranchEvery emits one conditional branch per N blocks.
	BranchEvery int
	// BranchNoise is the fraction of branches with data-dependent
	// (unpredictable) direction.
	BranchNoise float64
	// IndirectEvery emits an indirect branch per N blocks (0 = none).
	IndirectEvery int
	// DataBytes is the data working-set size.
	DataBytes uint64
	// DataEvery emits one data access per N blocks.
	DataEvery int
	// DataRandom is the fraction of data accesses at random addresses
	// (the rest stream sequentially and prefetch well).
	DataRandom float64
	// WriteFrac is the store fraction of data accesses.
	WriteFrac float64
}

var profiles = map[string]Profile{
	// Loop-dominated video encoder: tiny hot loops, streaming data,
	// predictable branches → highest IPC in the suite.
	"525.x264_r": {
		Name: "525.x264_r", CodeBytes: 96 << 10, LoopBytes: 1280, HotFrac: 0.997,
		UopsPerBlock: 10, BranchEvery: 5, BranchNoise: 0.02,
		DataBytes: 6 << 20, DataEvery: 4, DataRandom: 0.02, WriteFrac: 0.3,
	},
	// Chess search: moderate code, big tables missing the LLC.
	"531.deepsjeng_r": {
		Name: "531.deepsjeng_r", CodeBytes: 420 << 10, LoopBytes: 1 << 10, HotFrac: 0.95,
		UopsPerBlock: 8, BranchEvery: 4, BranchNoise: 0.10,
		IndirectEvery: 96,
		DataBytes:     192 << 20, DataEvery: 3, DataRandom: 0.60, WriteFrac: 0.2,
	},
	// Vehicle scheduling: pointer chasing over a huge graph plus
	// hard-to-predict branches → lowest IPC, heavily back-end bound.
	"505.mcf_r": {
		Name: "505.mcf_r", CodeBytes: 48 << 10, LoopBytes: 1024, HotFrac: 0.95,
		UopsPerBlock: 7, BranchEvery: 3, BranchNoise: 0.25,
		DataBytes: 512 << 20, DataEvery: 4, DataRandom: 0.90, WriteFrac: 0.15,
	},
}

// Names returns the available benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	//lint:deterministic keys are sorted before use
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName returns the profile for one benchmark.
func ByName(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("spec: unknown benchmark %q", name)
	}
	return p, nil
}

// Run replays blocks fetch blocks of the profile into the machine and
// returns its report. The stream is deterministic.
func (p Profile) Run(m *uarch.Machine, blocks int) uarch.Report {
	const (
		textBase = uint64(0x40_0000)
		dataBase = uint64(0x7f00_0000_0000)
	)
	m.MapText(textBase, textBase+p.CodeBytes)
	m.MapData(dataBase, dataBase+p.DataBytes)

	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 11
	}
	loopPC := uint64(0)
	coldPC := uint64(0)
	seqData := uint64(0)
	for i := 0; i < blocks; i++ {
		r := next()
		var pc uint64
		if float64(r%1000)/1000 < p.HotFrac {
			// Hot inner loop: sequential walk, wrapping.
			loopPC = (loopPC + 32) % p.LoopBytes
			pc = textBase + loopPC
		} else {
			coldPC = (coldPC + 32 + r%480&^31) % p.CodeBytes
			pc = textBase + coldPC&^31
		}
		m.FetchBlock(pc, 32, p.UopsPerBlock)

		if p.BranchEvery > 0 && i%p.BranchEvery == 0 {
			taken := r&1 == 1
			if float64(next()%1000)/1000 >= p.BranchNoise {
				// Predictable: strongly biased taken per-pc.
				taken = pc>>5&1 == 0
			}
			m.Branch(pc+30, pc+64, taken, false)
		}
		if p.IndirectEvery > 0 && i%p.IndirectEvery == 0 {
			m.Branch(pc+28, textBase+next()%p.CodeBytes, true, true)
		}
		if p.DataEvery > 0 && i%p.DataEvery == 0 {
			var addr uint64
			if float64(next()%1000)/1000 < p.DataRandom {
				addr = dataBase + next()%p.DataBytes
			} else {
				seqData = (seqData + 64) % p.DataBytes
				addr = dataBase + seqData
			}
			write := float64(next()%1000)/1000 < p.WriteFrac
			m.Data(addr, 8, write)
		}
	}
	return m.Report()
}

// RunAll runs every benchmark on fresh machines built from cfg and returns
// reports keyed by name.
func RunAll(cfg uarch.Config, blocks int) map[string]uarch.Report {
	out := make(map[string]uarch.Report, len(profiles))
	// Run in sorted-name order: each Run drives a fresh machine, but any
	// future cross-benchmark state (shared caches, pooled allocations)
	// must not see map-ordered arrival.
	for _, name := range Names() {
		m := uarch.NewMachine(cfg)
		out[name] = profiles[name].Run(m, blocks)
	}
	return out
}
