package platform

import (
	"strings"
	"testing"

	"gem5prof/internal/uarch"
)

func TestAllPlatformsValidate(t *testing.T) {
	for _, cfg := range TableIIPlatforms() {
		cfg := cfg
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	fb := FireSimBase()
	if err := fb.Validate(); err != nil {
		t.Errorf("firesim base: %v", err)
	}
}

func TestTableIIValues(t *testing.T) {
	x := IntelXeon()
	if x.PageBytes != 4096 || x.L1I.SizeBytes != 32<<10 || x.L1I.LineBytes != 64 {
		t.Fatal("Xeon geometry wrong")
	}
	if x.DSBUops == 0 {
		t.Fatal("Xeon needs a uop cache")
	}
	p := M1Pro()
	if p.PageBytes != 16<<10 || p.L1I.SizeBytes != 192<<10 || p.L1D.SizeBytes != 128<<10 {
		t.Fatal("M1 L1 geometry wrong")
	}
	if p.L1I.LineBytes != 128 {
		t.Fatal("M1 line size wrong")
	}
	if p.DSBUops != 0 {
		t.Fatal("M1 has no uop cache")
	}
	u := M1Ultra()
	if u.LLC.SizeBytes != 96<<20 || u.L2.SizeBytes != 48<<20 {
		t.Fatal("M1 Ultra cache sizes wrong")
	}
	// The VIPT arithmetic of the paper: M1's 192KB L1I needs 12 ways with
	// 16KB pages; Xeon's 32KB needs 8 with 4KB pages.
	if int(p.L1I.SizeBytes)/p.L1I.Ways != int(p.PageBytes) {
		t.Fatal("M1 L1I way size != page size")
	}
	if int(x.L1I.SizeBytes)/x.L1I.Ways != int(x.PageBytes) {
		t.Fatal("Xeon L1I way size != page size")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Intel_Xeon", "xeon", "M1_Pro", "m1pro", "M1_Ultra", "m1ultra"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("power10"); err == nil {
		t.Error("unknown platform resolved")
	}
}

func TestFireSimSweepGeometriesValidate(t *testing.T) {
	// Every Fig. 14 geometry honors the VIPT constraint (sets fixed at 64).
	for _, g := range [][6]int{
		{8, 2, 8, 2, 512, 8},
		{16, 4, 16, 4, 512, 8},
		{32, 8, 32, 8, 512, 8},
		{64, 16, 64, 16, 512, 8},
		{8, 2, 8, 2, 1024, 8},
		{8, 2, 8, 2, 2048, 8},
	} {
		cfg := FireSimRocket(g[0], g[1], g[2], g[3], g[4], g[5])
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v: %v", g, err)
		}
		if cfg.L1I.Sets() != 64 {
			t.Errorf("%v: sets = %d, want 64 (VIPT)", g, cfg.L1I.Sets())
		}
		if cfg.LLC.SizeBytes != 0 {
			t.Errorf("%v: rocket host must not have an LLC", g)
		}
	}
}

func TestContendPartitionsLLC(t *testing.T) {
	x := IntelXeon()
	c := Contend(x, Scenario{Procs: 20})
	if c.LLC.SizeBytes >= x.LLC.SizeBytes {
		t.Fatal("LLC not partitioned")
	}
	if c.LLC.Sets() != x.LLC.Sets() {
		t.Fatal("partitioning must keep the set count")
	}
	if c.L1I.SizeBytes != x.L1I.SizeBytes {
		t.Fatal("co-running must not shrink private L1s without SMT")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContendSMT(t *testing.T) {
	x := IntelXeon()
	s := Contend(x, Scenario{Procs: 40, SMT: true})
	if s.L1I.SizeBytes != x.L1I.SizeBytes/2 || s.L1D.SizeBytes != x.L1D.SizeBytes/2 {
		t.Fatal("SMT must halve the L1s")
	}
	if s.ITLBEntries != x.ITLBEntries/2 || s.DSBUops != x.DSBUops/2 {
		t.Fatal("SMT must halve iTLB and DSB")
	}
	if s.DecodeWidth >= x.DecodeWidth {
		t.Fatal("SMT must share decode bandwidth")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Name, "SMT") {
		t.Fatal("name not annotated")
	}
}

func TestContendM1PartitionsClusterL2(t *testing.T) {
	p := M1Pro()
	c := Contend(p, Scenario{Procs: 4})
	if c.L2.SizeBytes >= p.L2.SizeBytes {
		t.Fatal("M1 cluster L2 not partitioned")
	}
}

func TestShrinkWaysFloor(t *testing.T) {
	g := uarch.CacheGeom{SizeBytes: 1 << 20, Ways: 4, LineBytes: 64}
	s := shrinkWays(g, 100)
	if s.Ways != 1 {
		t.Fatalf("ways = %d", s.Ways)
	}
	if s.Sets() != g.Sets() {
		t.Fatal("set count changed")
	}
}

func TestTables(t *testing.T) {
	t1 := TableI()
	for _, want := range []string{"4GHz", "8-width", "TournamentBP/4096", "48KB(I), 32KB(D)", "192/64/32/32"} {
		if !strings.Contains(t1, want) {
			t.Errorf("TableI missing %q:\n%s", want, t1)
		}
	}
	t2 := TableII()
	for _, want := range []string{"Intel_Xeon", "M1_Pro", "M1_Ultra", "192KB(I)+128KB(D)", "4KB", "16KB", "819.2 GB/s"} {
		if !strings.Contains(t2, want) {
			t.Errorf("TableII missing %q:\n%s", want, t2)
		}
	}
}
