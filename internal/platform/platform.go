// Package platform instantiates the host machines of the paper: the three
// evaluation platforms of Table II (Intel_Xeon, M1_Pro, M1_Ultra), the
// FireSim Rocket host of Table I with the cache geometries swept in
// Fig. 14, and the co-running/SMT contention model behind Fig. 1.
package platform

import (
	"fmt"

	"gem5prof/internal/uarch"
)

// Physical-core topology from Table II, used by the co-run scenarios.
const (
	XeonPhysicalCores   = 20
	XeonHardwareThreads = 40
	M1ProPerfCores      = 4
	M1UltraPerfCores    = 16
)

// IntelXeon returns the Dell Precision 7920's Xeon Gold 6242R (Cascade
// Lake) model: 3.1 GHz, 4KB pages, 64B lines, 32KB/8w L1s, a decoded-uop
// cache, and a large shared LLC (modeled as 32MB/16w; the real part's
// 35.75MB/11w is not a power-of-two set count).
func IntelXeon() uarch.Config {
	return uarch.Config{
		Name:          "Intel_Xeon",
		FreqGHz:       3.1,
		PageBytes:     4096,
		HugePageBytes: 2 << 20,
		THPCoverage:   0.45, // iodlr remaps only the hotter part of .text

		L1I: uarch.CacheGeom{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L1D: uarch.CacheGeom{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L2:  uarch.CacheGeom{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64},
		LLC: uarch.CacheGeom{SizeBytes: 32 << 20, Ways: 16, LineBytes: 64},

		L2Cycles:            14,
		LLCCycles:           44,
		DRAMNanos:           96,
		PeakDRAMBytesPerSec: 141e9,

		ITLBEntries: 128,
		DTLBEntries: 64,
		STLBEntries: 1536,
		STLBCycles:  9,
		WalkCycles:  45,

		IssueWidth:  4,
		DecodeWidth: 2.8, // effective MITE throughput on cold x86 code
		DSBUops:     1536,
		DSBWidth:    6,

		BPTableEntries:   16384,
		BTBEntries:       4096,
		MispredictCycles: 17,
		ResteerCycles:    9,
		BAClearCycles:    10,

		MLPOverlap: 0.70,
	}
}

// m1Common fills the fields shared by both Apple platforms (Firestorm
// performance cores: 16KB pages, 128B lines, 192KB/128KB L1s, 8-wide fixed
// length decode, no uop cache).
func m1Common(name string) uarch.Config {
	return uarch.Config{
		Name:          name,
		FreqGHz:       3.2,
		PageBytes:     16 << 10,
		HugePageBytes: 32 << 20, // 16KB-granule "huge" mappings

		L1I: uarch.CacheGeom{SizeBytes: 192 << 10, Ways: 12, LineBytes: 128},
		L1D: uarch.CacheGeom{SizeBytes: 128 << 10, Ways: 8, LineBytes: 128},

		L2Cycles:  18,
		LLCCycles: 50,
		DRAMNanos: 97,

		ITLBEntries: 192,
		DTLBEntries: 160,
		STLBEntries: 3072,
		STLBCycles:  7,
		WalkCycles:  30, // 16KB pages: shallower walks

		IssueWidth:  8,
		DecodeWidth: 8, // fixed-length AArch64 decode matches issue width
		DSBUops:     0, // no uop cache on Firestorm
		DSBWidth:    0,

		BPTableEntries:   65536,
		BTBEntries:       16384,
		MispredictCycles: 14,
		ResteerCycles:    8,
		BAClearCycles:    8,

		MLPOverlap: 0.78,
	}
}

// M1Pro returns the MacBook Pro (M1) model of Table II: 12MB P-cluster L2
// and an 8MB system-level cache.
func M1Pro() uarch.Config {
	c := m1Common("M1_Pro")
	c.L2 = uarch.CacheGeom{SizeBytes: 12 << 20, Ways: 12, LineBytes: 128}
	c.LLC = uarch.CacheGeom{SizeBytes: 8 << 20, Ways: 16, LineBytes: 128}
	c.PeakDRAMBytesPerSec = 68e9
	return c
}

// M1Ultra returns the Mac Studio (M1 Ultra) model of Table II: 48MB of
// cluster L2 and a 96MB system-level cache.
func M1Ultra() uarch.Config {
	c := m1Common("M1_Ultra")
	c.L2 = uarch.CacheGeom{SizeBytes: 48 << 20, Ways: 12, LineBytes: 128}
	c.LLC = uarch.CacheGeom{SizeBytes: 96 << 20, Ways: 12, LineBytes: 128}
	c.PeakDRAMBytesPerSec = 819.2e9
	return c
}

// FireSimRocket returns the FireSim host of Table I with explicit L1/L2
// geometry, the knob swept in Fig. 14: 4 GHz, 8-wide, TournamentBP with a
// 4096-entry BTB, 4KB pages, 64B lines, DDR3-1600.
func FireSimRocket(l1iKB, l1iWays, l1dKB, l1dWays, l2KB, l2Ways int) uarch.Config {
	return uarch.Config{
		Name:          fmt.Sprintf("FireSim(%dKB/%d:%dKB/%d:%dKB/%d)", l1iKB, l1iWays, l1dKB, l1dWays, l2KB, l2Ways),
		FreqGHz:       4.0,
		PageBytes:     4096,
		HugePageBytes: 2 << 20,

		L1I: uarch.CacheGeom{SizeBytes: uint64(l1iKB) << 10, Ways: l1iWays, LineBytes: 64},
		L1D: uarch.CacheGeom{SizeBytes: uint64(l1dKB) << 10, Ways: l1dWays, LineBytes: 64},
		L2:  uarch.CacheGeom{SizeBytes: uint64(l2KB) << 10, Ways: l2Ways, LineBytes: 64},
		// Two-level hierarchy: no LLC.

		L2Cycles:            20,
		DRAMNanos:           70, // DDR3-1600 on the simulated host
		PeakDRAMBytesPerSec: 12.8e9,

		ITLBEntries: 32,
		DTLBEntries: 32,
		STLBEntries: 512,
		STLBCycles:  8,
		WalkCycles:  60,

		IssueWidth:  8,
		DecodeWidth: 8,
		DSBUops:     0,

		BPTableEntries:   8192,
		BTBEntries:       4096,
		MispredictCycles: 12,
		ResteerCycles:    7,
		BAClearCycles:    7,

		MLPOverlap: 0.65,
	}
}

// FireSimBase returns Table I's base configuration (48KB L1I, 32KB L1D).
func FireSimBase() uarch.Config {
	return FireSimRocket(48, 12, 32, 8, 512, 8)
}

// ByName resolves the three Table II platforms.
func ByName(name string) (uarch.Config, error) {
	switch name {
	case "Intel_Xeon", "xeon":
		return IntelXeon(), nil
	case "M1_Pro", "m1pro":
		return M1Pro(), nil
	case "M1_Ultra", "m1ultra":
		return M1Ultra(), nil
	}
	return uarch.Config{}, fmt.Errorf("platform: unknown platform %q", name)
}

// TableIIPlatforms returns the paper's three evaluation platforms in order.
func TableIIPlatforms() []uarch.Config {
	return []uarch.Config{IntelXeon(), M1Pro(), M1Ultra()}
}

// Scenario describes how many gem5 processes co-run on a platform (Fig. 1).
type Scenario struct {
	// Procs is the number of simultaneously running gem5 processes
	// sharing the LLC.
	Procs int
	// SMT marks two processes per physical core (Intel only): the L1s,
	// TLBs, decoder, and uop cache are competitively shared.
	SMT bool
}

// Contend derives the per-process effective machine under a co-run
// scenario: the shared LLC is partitioned across processes, and SMT halves
// the per-thread front-end and L1/TLB resources.
func Contend(cfg uarch.Config, sc Scenario) uarch.Config {
	out := cfg
	if sc.Procs > 1 {
		out.Name = fmt.Sprintf("%s x%d", cfg.Name, sc.Procs)
		out.LLC = shrinkWays(cfg.LLC, sc.Procs)
		// The shared L2 clusters on M1 are also partitioned; Intel's L2 is
		// private per core and untouched.
		if cfg.DSBUops == 0 { // M1-style shared cluster L2
			out.L2 = shrinkWays(cfg.L2, sc.Procs)
		}
	}
	if sc.SMT {
		out.Name += " SMT"
		out.L1I = shrinkWays(cfg.L1I, 2)
		out.L1D = shrinkWays(cfg.L1D, 2)
		out.ITLBEntries = max(1, cfg.ITLBEntries/2)
		out.DTLBEntries = max(1, cfg.DTLBEntries/2)
		out.STLBEntries = max(1, cfg.STLBEntries/2)
		out.DSBUops = cfg.DSBUops / 2
		out.DecodeWidth = cfg.DecodeWidth * 0.72 // decode slots alternate
		out.IssueWidth = cfg.IssueWidth * 0.92   // shared retire bandwidth
	}
	return out
}

// shrinkWays partitions a cache by dividing associativity, keeping the set
// count (and therefore power-of-two indexing) intact.
func shrinkWays(g uarch.CacheGeom, factor int) uarch.CacheGeom {
	ways := g.Ways / factor
	if ways < 1 {
		ways = 1
	}
	out := g
	out.Ways = ways
	out.SizeBytes = uint64(ways) * g.Sets() * g.LineBytes
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
