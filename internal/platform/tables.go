package platform

import (
	"fmt"
	"strings"
)

// TableI renders the paper's Table I (base hardware configuration on
// FireSim) from the model's actual parameters.
func TableI() string {
	c := FireSimBase()
	var b strings.Builder
	b.WriteString("TABLE I: Base Hardware Configuration on FireSim\n")
	row := func(k, v string) { fmt.Fprintf(&b, "  %-28s %s\n", k, v) }
	row("Core Frequency", fmt.Sprintf("%.0fGHz", c.FreqGHz))
	row("Number of Cores", "4 Cores")
	row("Superscalar", fmt.Sprintf("%.0f-width wide", c.IssueWidth))
	row("ROB/IQ/LQ/SQ Entries", "192/64/32/32")
	row("Int & FP Registers", "128 & 192")
	row("Branch Predictor/BTB Entries", fmt.Sprintf("TournamentBP/%d", c.BTBEntries))
	row("Cache: L1I/L1D", fmt.Sprintf("%dKB(I), %dKB(D)", c.L1I.SizeBytes>>10, c.L1D.SizeBytes>>10))
	row("DRAM", "2GB, DDR3-1600-8x8")
	row("Operating System", "Linux Linaro (kernel 5.4.0)")
	return b.String()
}

// TableII renders the paper's Table II (evaluation platforms) from the
// three platform models.
func TableII() string {
	cfgs := TableIIPlatforms()
	var b strings.Builder
	b.WriteString("TABLE II: Evaluation platforms\n")
	row := func(k string, vals ...string) {
		fmt.Fprintf(&b, "  %-18s", k)
		for _, v := range vals {
			fmt.Fprintf(&b, " %-22s", v)
		}
		b.WriteString("\n")
	}
	row("Config Name", cfgs[0].Name, cfgs[1].Name, cfgs[2].Name)
	row("Max Freq", fmt.Sprintf("%.1fGHz", cfgs[0].FreqGHz),
		fmt.Sprintf("%.1fGHz(P)", cfgs[1].FreqGHz), fmt.Sprintf("%.1fGHz(P)", cfgs[2].FreqGHz))
	row("Cores",
		fmt.Sprintf("%dC/%dT", XeonPhysicalCores, XeonHardwareThreads),
		fmt.Sprintf("P:%dC", M1ProPerfCores),
		fmt.Sprintf("P:%dC", M1UltraPerfCores))
	l1 := func(c int) string {
		cfg := cfgs[c]
		return fmt.Sprintf("%dKB(I)+%dKB(D)", cfg.L1I.SizeBytes>>10, cfg.L1D.SizeBytes>>10)
	}
	row("L1 (per-core)", l1(0), l1(1), l1(2))
	row("L2", fmt.Sprintf("%dMB", cfgs[0].L2.SizeBytes>>20),
		fmt.Sprintf("%dMB", cfgs[1].L2.SizeBytes>>20),
		fmt.Sprintf("%dMB", cfgs[2].L2.SizeBytes>>20))
	row("L3/SLC", fmt.Sprintf("%dMB", cfgs[0].LLC.SizeBytes>>20),
		fmt.Sprintf("%dMB", cfgs[1].LLC.SizeBytes>>20),
		fmt.Sprintf("%dMB", cfgs[2].LLC.SizeBytes>>20))
	row("Cacheline", fmt.Sprintf("%dB", cfgs[0].L1I.LineBytes),
		fmt.Sprintf("%dB", cfgs[1].L1I.LineBytes), fmt.Sprintf("%dB", cfgs[2].L1I.LineBytes))
	row("DRAM BW", "141 GB/s", "68 GB/s", "819.2 GB/s")
	row("DRAM Latency", fmt.Sprintf("%.0fns", cfgs[0].DRAMNanos),
		fmt.Sprintf("%.0fns", cfgs[1].DRAMNanos), fmt.Sprintf("%.0fns", cfgs[2].DRAMNanos))
	row("VM page size", fmt.Sprintf("%dKB", cfgs[0].PageBytes>>10),
		fmt.Sprintf("%dKB", cfgs[1].PageBytes>>10), fmt.Sprintf("%dKB", cfgs[2].PageBytes>>10))
	return b.String()
}
