package lint_test

import (
	"testing"

	"gem5prof/internal/lint"
	"gem5prof/internal/lint/linttest"
)

func TestStatReg(t *testing.T) {
	linttest.Run(t, lint.StatReg, "gem5prof/internal/sr")
}
