package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// SinkDiscipline keeps hostmodel.Sink and the 32-byte ring.Record trace
// format in lockstep, so the pipelined co-simulation can never silently
// drop a class of micro-event (which would make pipelined and serial runs
// diverge only under -pipeline, the worst kind of heisen-divergence).
// Per package it checks, whichever of these apply:
//
//   - record format (the package that declares ring.Op/ring.Record):
//     Record must stay exactly 32 bytes under gc/amd64 sizes and hold no
//     pointers (it crosses goroutines by value in bulk batches);
//   - encoder coverage (any package building ring.Record literals, i.e.
//     the RingSink side): the Op constants used across those literals
//     must cover every declared Op — a Sink method without an encoding
//     is a record kind that exists only on the serial path;
//   - decoder exhaustiveness (any switch over a ring.Op value, i.e. the
//     uarch.ApplyRecord side): every declared Op constant needs a case
//     (or an explicit default) — a missing case drops records silently;
//   - interface lockstep (the package declaring a Sink interface next to
//     record encoders): Sink must have exactly one method per Op
//     constant, matched by name (OpFetch <-> FetchBlock, OpBranch <->
//     Branch, OpData <-> Data).
var SinkDiscipline = &Analyzer{
	Name: "sinkdiscipline",
	Doc: "keep hostmodel.Sink, the 32-byte ring.Record format, its encoders and its " +
		"switch-based decoders in lockstep",
	Run: runSinkDiscipline,
}

func runSinkDiscipline(pass *Pass) error {
	ringPkg := findRingPkg(pass)
	if ringPkg == nil {
		return nil
	}
	opType, recordType := ringTypes(ringPkg)
	if opType == nil {
		return nil
	}
	opNames := opConstants(ringPkg, opType)
	if len(opNames) == 0 {
		return nil
	}

	if ringPkg == pass.Pkg && recordType != nil {
		checkRecordFormat(pass, recordType)
	}
	checkEncoderCoverage(pass, recordType, opType, opNames)
	checkDecoderExhaustive(pass, opType, opNames)
	checkHandlerTables(pass, opType, opNames)
	checkSinkLockstep(pass, opNames)
	return nil
}

// findRingPkg locates the trace-record package: the package under
// analysis itself, or one of its direct imports, whose package name is
// "ring" and which declares an Op type.
func findRingPkg(pass *Pass) *types.Package {
	candidates := append([]*types.Package{pass.Pkg}, pass.Pkg.Imports()...)
	for _, p := range candidates {
		if p.Name() == "ring" {
			if obj := p.Scope().Lookup("Op"); obj != nil {
				if _, ok := obj.(*types.TypeName); ok {
					return p
				}
			}
		}
	}
	return nil
}

func ringTypes(ringPkg *types.Package) (op, record types.Type) {
	if o, ok := ringPkg.Scope().Lookup("Op").(*types.TypeName); ok {
		op = o.Type()
	}
	if r, ok := ringPkg.Scope().Lookup("Record").(*types.TypeName); ok {
		record = r.Type()
	}
	return op, record
}

// opConstants returns the names of ringPkg's Op-typed constants, in
// declaration-value order.
func opConstants(ringPkg *types.Package, opType types.Type) []string {
	var names []string
	scope := ringPkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && types.Identical(c.Type(), opType) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// checkRecordFormat enforces the 32-byte pointer-free record contract in
// the declaring package.
func checkRecordFormat(pass *Pass, recordType types.Type) {
	pos := pass.Pkg.Scope().Lookup("Record").Pos()
	st, ok := recordType.Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(pos, "ring.Record must be a struct (the batched trace-record format)")
		return
	}
	if size := pass.Sizes.Sizeof(recordType); size != 32 {
		pass.Reportf(pos,
			"ring.Record is %d bytes under gc/amd64, not 32: the batch geometry (512 records = 16KiB per slot) and every size comment depend on the 32-byte format", size)
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if hasPointers(f.Type()) {
			pass.Reportf(pos,
				"ring.Record field %s contains pointers; records cross goroutines by value in bulk and must stay pointer-free", f.Name())
		}
	}
}

func hasPointers(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.String || u.Kind() == types.UnsafePointer
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return hasPointers(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasPointers(u.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

// checkEncoderCoverage: if this package builds ring.Record literals, the
// set of Op constants in them must cover every declared Op.
func checkEncoderCoverage(pass *Pass, recordType, opType types.Type, opNames []string) {
	if recordType == nil {
		return
	}
	used := make(map[string]bool)
	var firstLit ast.Node
	inspect(pass, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(cl)
		if t == nil || !types.Identical(t, recordType) {
			return true
		}
		if firstLit == nil {
			firstLit = cl
		}
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Op" {
				continue
			}
			for _, c := range constNamesIn(pass, kv.Value, opType) {
				used[c] = true
			}
		}
		return true
	})
	if firstLit == nil {
		return
	}
	if missing := missingFrom(opNames, used); len(missing) > 0 {
		pass.Reportf(firstLit.Pos(),
			"this package encodes ring.Records but never emits %s: a Sink event class exists that the pipelined path cannot carry (serial and pipelined runs will diverge)",
			strings.Join(missing, ", "))
	}
}

// checkDecoderExhaustive: every switch over a ring.Op value must cover
// every Op constant or declare a default.
func checkDecoderExhaustive(pass *Pass, opType types.Type, opNames []string) {
	inspect(pass, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		tagType := pass.TypesInfo.TypeOf(sw.Tag)
		if tagType == nil || !types.Identical(tagType, opType) {
			return true
		}
		covered := make(map[string]bool)
		hasDefault := false
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				for _, c := range constNamesIn(pass, e, opType) {
					covered[c] = true
				}
			}
		}
		if hasDefault {
			return true
		}
		if missing := missingFrom(opNames, covered); len(missing) > 0 {
			pass.Reportf(sw.Pos(),
				"switch over ring.Op has no case for %s and no default: records of that kind are dropped silently on the pipelined path",
				strings.Join(missing, ", "))
		}
		return true
	})
}

// checkHandlerTables: a populated map literal keyed by ring.Op — the
// callback-table form of a decoder (map[ring.Op]func(...), handlers
// bound as closures or method values) — must cover every Op constant.
// A missing key is a nil handler: the callback-shaped version of a
// switch without a case, dropping records just as silently. Empty
// literals are exempt (tables filled dynamically register their
// handlers elsewhere).
func checkHandlerTables(pass *Pass, opType types.Type, opNames []string) {
	inspect(pass, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok || len(cl.Elts) == 0 {
			return true
		}
		t := pass.TypesInfo.TypeOf(cl)
		if t == nil {
			return true
		}
		m, ok := t.Underlying().(*types.Map)
		if !ok || !types.Identical(m.Key(), opType) {
			return true
		}
		covered := make(map[string]bool)
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			for _, c := range constNamesIn(pass, kv.Key, opType) {
				covered[c] = true
			}
		}
		if missing := missingFrom(opNames, covered); len(missing) > 0 {
			pass.Reportf(cl.Pos(),
				"ring.Op handler table has no entry for %s: records of that kind hit a nil handler on the pipelined path",
				strings.Join(missing, ", "))
		}
		return true
	})
}

// checkSinkLockstep: a Sink interface declared in this package must have
// exactly one method per Op constant, matched by name prefix
// (OpFetch <-> FetchBlock).
func checkSinkLockstep(pass *Pass, opNames []string) {
	obj, ok := pass.Pkg.Scope().Lookup("Sink").(*types.TypeName)
	if !ok {
		return
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	matched := make(map[string]bool)
	for i := 0; i < iface.NumExplicitMethods(); i++ {
		m := iface.ExplicitMethod(i)
		op := opForMethod(m.Name(), opNames)
		if op == "" {
			pass.Reportf(m.Pos(),
				"Sink method %s has no corresponding ring.Op constant (expected Op<prefix of %s>): the record format cannot carry this event — add the Op and its encoder/decoder in the same change",
				m.Name(), m.Name())
			continue
		}
		matched[op] = true
	}
	if missing := missingFrom(opNames, matched); len(missing) > 0 {
		pass.Reportf(obj.Pos(),
			"ring.Op constants %s have no corresponding Sink method: the record format carries events the Sink interface cannot deliver",
			strings.Join(missing, ", "))
	}
}

// opForMethod finds the Op constant matching a Sink method name:
// "Op"+P for some non-empty prefix P of the method name.
func opForMethod(method string, opNames []string) string {
	best := ""
	for _, op := range opNames {
		p := strings.TrimPrefix(op, "Op")
		if p != "" && strings.HasPrefix(method, p) && len(p) > len(strings.TrimPrefix(best, "Op")) {
			best = op
		}
	}
	return best
}

// constNamesIn returns the names of opType constants referenced in e.
func constNamesIn(pass *Pass, e ast.Expr, opType types.Type) []string {
	var out []string
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		c, ok := pass.TypesInfo.Uses[id].(*types.Const)
		if ok && types.Identical(c.Type(), opType) {
			out = append(out, c.Name())
		}
		return true
	})
	return out
}

func missingFrom(all []string, have map[string]bool) []string {
	var missing []string
	for _, name := range all {
		if !have[name] {
			missing = append(missing, name)
		}
	}
	return missing
}
