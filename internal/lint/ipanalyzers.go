package lint

// The three interprocedural analyzers. All real work happens in the
// shared engine (interproc.go); each analyzer filters the memoized
// IPResult by finding kind and renders messages, so the ordinary
// per-analyzer suppression machinery (//lint:allow detflow …) applies at
// the reported position.

// Detflow reports host nondeterminism — map iteration order, wall-clock
// time, global rand, environment reads, formatted pointers — flowing
// interprocedurally into a determinism-critical sink: stat registration,
// the trace arena, checkpoint encoders, or report writers. It subsumes
// the cross-call blind spot of detmap and nowallclock: taint survives any
// number of hops through helpers, closures, and struct fields within the
// module.
var Detflow = &Analyzer{
	Name: "detflow",
	Doc:  "nondeterministic value (map order, wall clock, rand, env, %p) reaches a stat, trace, checkpoint, or report sink",
	Run:  runDetflow,
}

// FloatOrder reports float accumulation whose iteration order is not
// provably deterministic — the Fig. 15 bug class (a map-range float sum
// made the Frac column host-dependent). Unlike detmap it ignores
// //lint:deterministic: that annotation claims the loop commutes, which
// float addition does not. Only //lint:allow floatorder waives it.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc:  "float accumulation ordered by map iteration; float addition does not commute",
	Run:  runFloatOrder,
}

// ShardEscape reports mutable state reachable from more than one sim
// shard domain without passing through the System mailbox or a barrier
// merge — the static happens-before complement to the race job. State is
// seeded from DomainView/DomainForCore roots and EventDomain tags; only
// mem↔coordinator crossings are flagged (the memory shard is the one
// worker goroutine; per-core shards are coordinator-affine).
var ShardEscape = &Analyzer{
	Name: "shardescape",
	Doc:  "mutable state shared across shard domains without a mailbox crossing",
	Run:  runShardEscape,
}

func runDetflow(p *Pass) error {
	for _, f := range ipFindings(p) {
		if f.Kind != "sink" {
			continue
		}
		p.Reportf(f.Pos, "value derived from %s reaches %s (%s); derive it from sim time/seed or sort before emitting",
			classNoun(f.Class), sinkNoun(f.Sink), f.Detail)
	}
	return nil
}

func runFloatOrder(p *Pass) error {
	for _, f := range ipFindings(p) {
		if f.Kind != "floatsum" {
			continue
		}
		detail := ""
		if f.Detail != "" {
			detail = " (via " + f.Detail + ")"
		}
		p.Reportf(f.Pos, "float accumulation ordered by map iteration%s; float addition does not commute, sort the keys first", detail)
	}
	return nil
}

func runShardEscape(p *Pass) error {
	for _, f := range ipFindings(p) {
		switch f.Kind {
		case "domjoin":
			p.Reportf(f.Pos, "%s is reachable from both the mem shard and a coordinator-side domain; share it through the System mailbox or a barrier merge", f.Detail)
		case "domglobal":
			p.Reportf(f.Pos, "mem-side method writes package-level %s, racing coordinator-side shards; post through the System mailbox instead", f.Detail)
		case "domcall":
			p.Reportf(f.Pos, "direct call of %s crosses shard domains; post an event through the System mailbox instead", f.Detail)
		}
	}
	return nil
}

// ipFindings returns the package's engine findings, or nil when the
// driver provided no engine (p.IP unset) or the package is out of scope.
func ipFindings(p *Pass) []IPFinding {
	if p.IP == nil || !pkgScope(p) {
		return nil
	}
	return p.IP.Result().Findings
}
