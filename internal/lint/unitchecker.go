package lint

// This file implements the command-line protocol `go vet -vettool=...`
// expects of an analysis tool, against the standard library only. It is a
// minimal reimplementation of the x/tools unitchecker contract (which is
// not importable here):
//
//	g5lint -V=full      print a content-addressed version (build caching)
//	g5lint -flags       describe flags as JSON (flag/package-pattern split)
//	g5lint unit.cfg     analyze one compilation unit described by JSON
//
// The config file supplies the unit's Go files plus a map from package
// path to compiled export data for every dependency, so type-checking one
// unit never re-parses its imports.
//
// Facts. The go command drives units in package-DAG order and hands each
// unit a facts file per dependency (Config.PackageVetx) plus a place to
// write its own (Config.VetxOutput). This driver uses that channel for
// the interprocedural summaries (see summary.go): module packages get a
// real PkgSummary computed even in VetxOnly mode (dependency-only
// visits), everything else gets an empty file. The go command caches the
// facts next to export data, so warm runs skip unchanged packages
// entirely.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// Config mirrors the JSON compilation-unit description the go command
// writes for a vettool. Fields this driver does not consume are listed for
// decode compatibility.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// SuppressionPrefix starts every audit line the unit driver emits in
// -suppressions mode; the standalone parent greps for it.
const SuppressionPrefix = "g5lint-suppression:"

// Main implements the vettool protocol over the given analyzers and
// exits. os.Args must hold exactly one of -V=full, -flags, or a *.cfg
// path, plus optional analyzer enable flags (accepted and ignored: the
// suite always runs whole) and the -suppressions=<nonce> audit flag.
func Main(analyzers []*Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("g5lint: ")

	var cfgFile string
	suppMode := false
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			printFlags(analyzers)
			os.Exit(0)
		case strings.HasPrefix(arg, "-suppressions=") || strings.HasPrefix(arg, "--suppressions="):
			// The value is a nonce whose only job is to change the go
			// command's cache key, forcing every unit to actually run.
			suppMode = true
		case len(arg) > 4 && arg[len(arg)-4:] == ".cfg":
			cfgFile = arg
		}
	}
	if cfgFile == "" {
		log.Fatalf("usage: g5lint [packages]  (standalone)  |  go vet -vettool=g5lint [packages]")
	}

	cfg, err := readConfig(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	// Dependency units are visited for facts only: module packages still
	// get their interprocedural summary computed (callers need it); for
	// everything else the facts file is empty.
	if cfg.VetxOnly {
		var facts []byte
		if summariesWanted(cfg.ImportPath) {
			unit, err := typecheckUnit(cfg)
			if err == nil {
				ip := NewIP(unit.fset, unit.files, unit.pkg, unit.info, depLoader(cfg))
				facts, err = EncodeSummary(ip.Result().Summary)
			}
			if err != nil && !cfg.SucceedOnTypecheckFailure {
				log.Fatal(err)
			}
		}
		writeFacts(cfg, facts)
		os.Exit(0)
	}

	unit, err := typecheckUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}
	audit := NewSuppressionAudit()
	var ip *IP
	if summariesWanted(cfg.ImportPath) {
		ip = NewIP(unit.fset, unit.files, unit.pkg, unit.info, depLoader(cfg))
		ip.SetAudit(audit)
	}
	diags := runAnalyzers(unit.fset, unit.files, unit.pkg, unit.info, analyzers, ip, audit)

	var facts []byte
	if ip != nil {
		if facts, err = EncodeSummary(ip.Result().Summary); err != nil {
			log.Fatal(err)
		}
	}
	writeFacts(cfg, facts)

	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	fail := len(diags) > 0
	// Debug aid: dump the unit's summary (failing so go vet shows it).
	if os.Getenv("G5LINT_DUMP_SUMMARY") != "" && len(facts) > 0 {
		fmt.Fprintf(os.Stderr, "summary %s:\n%s\n", cfg.ImportPath, facts)
		fail = true
	}
	if suppMode {
		// Report every annotation in non-test files with its fired/stale
		// status. Emitting anything must fail the unit: the go command
		// only surfaces a vettool's stderr when it exits nonzero.
		for _, e := range audit.CollectSuppressions(unit.fset, nonTestFiles(unit.fset, unit.files)) {
			status := "stale"
			if e.Used {
				status = "used"
			}
			fmt.Fprintf(os.Stderr, "%s\t%s:%d\t%s\t%s\t%s\n",
				SuppressionPrefix, e.File, e.Line, e.Analyzer, status, e.Reason)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
	os.Exit(0)
}

// summariesWanted reports whether the unit belongs to the module set the
// interprocedural engine covers (mirrors pkgScope, plus linttest fixture
// paths which also start with gem5prof/).
func summariesWanted(path string) bool {
	if path == "gem5prof" {
		return true
	}
	if !strings.HasPrefix(path, "gem5prof/") {
		return false
	}
	return !strings.HasPrefix(path, "gem5prof/internal/lint") &&
		!strings.HasPrefix(path, "gem5prof/cmd/g5lint")
}

// writeFacts stores the unit's facts (summary or empty) where the go
// command caches them.
func writeFacts(cfg *Config, facts []byte) {
	if cfg.VetxOutput == "" {
		return
	}
	if facts == nil {
		facts = []byte{}
	}
	if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
		log.Fatal(err)
	}
}

// depLoader resolves dependency import paths to their decoded summaries
// through the facts files the go command provided, memoized.
func depLoader(cfg *Config) func(path string) *PkgSummary {
	cache := make(map[string]*PkgSummary)
	seen := make(map[string]bool)
	return func(path string) *PkgSummary {
		if seen[path] {
			return cache[path]
		}
		seen[path] = true
		file, ok := cfg.PackageVetx[path]
		if !ok {
			return nil
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return nil
		}
		ps, err := DecodeSummary(data)
		if err != nil {
			return nil
		}
		cache[path] = ps
		return ps
	}
}

func nonTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	out := make([]*ast.File, 0, len(files))
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// printVersion emits the -V=full line the go command uses as a cache key:
// it must change whenever the tool binary changes, so it hashes the
// executable itself.
func printVersion() {
	progname, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}

// printFlags describes the tool's flags as JSON; the go command queries
// this to split its own command line into flags and package patterns.
func printFlags(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := make([]jsonFlag, 0, len(analyzers)+1)
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: "enable " + a.Name + " analysis (always on)"})
	}
	// Non-bool so the nonce value rides into each unit invocation (and
	// into the go command's cache key, defeating warm-cache silence).
	flags = append(flags, jsonFlag{Name: "suppressions", Bool: false,
		Usage: "audit //lint: annotations; value is a cache-busting nonce"})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// unit is one parsed and type-checked compilation unit.
type unit struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// typecheckUnit parses and type-checks one compilation unit.
func typecheckUnit(cfg *Config) (*unit, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// Dependencies type-check from the export data the go command already
	// compiled, via the import map (which resolves vendoring).
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersionFor(cfg.GoVersion),
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &unit{fset: fset, files: files, pkg: pkg, info: info}, nil
}

// goVersionFor sanitizes the config's language version for types.Config
// (which rejects malformed strings rather than ignoring them).
func goVersionFor(v string) string {
	if regexp.MustCompile(`^go[0-9]+(\.[0-9]+)*$`).MatchString(v) {
		return v
	}
	return ""
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// runAnalyzers executes every analyzer over one type-checked package and
// renders the findings as "file:line:col: message [g5lint/name]" lines.
// ip (may be nil) and audit are shared across the analyzers' passes.
func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, ip *IP, audit *SuppressionAudit) []string {
	type posDiag struct {
		pos token.Position
		msg string
	}
	var all []posDiag
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Sizes:     types.SizesFor("gc", "amd64"),
			IP:        ip,
			Audit:     audit,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			all = append(all, posDiag{fset.Position(d.Pos), d.Message + " [g5lint/" + name + "]"})
		}
		if err := a.Run(pass); err != nil {
			all = append(all, posDiag{token.Position{}, fmt.Sprintf("analyzer %s: %v", a.Name, err)})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].pos.Filename != all[j].pos.Filename {
			return all[i].pos.Filename < all[j].pos.Filename
		}
		return all[i].pos.Offset < all[j].pos.Offset
	})
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = fmt.Sprintf("%s: %s", d.pos, d.msg)
	}
	return out
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
