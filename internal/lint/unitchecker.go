package lint

// This file implements the command-line protocol `go vet -vettool=...`
// expects of an analysis tool, against the standard library only. It is a
// minimal reimplementation of the x/tools unitchecker contract (which is
// not importable here):
//
//	g5lint -V=full      print a content-addressed version (build caching)
//	g5lint -flags       describe flags as JSON (flag/package-pattern split)
//	g5lint unit.cfg     analyze one compilation unit described by JSON
//
// The config file supplies the unit's Go files plus a map from package
// path to compiled export data for every dependency, so type-checking one
// unit never re-parses its imports.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"regexp"
	"runtime"
	"sort"
)

// Config mirrors the JSON compilation-unit description the go command
// writes for a vettool. Fields this driver does not consume are listed for
// decode compatibility.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main implements the vettool protocol over the given analyzers and
// exits. os.Args must hold exactly one of -V=full, -flags, or a *.cfg
// path (plus optional analyzer enable flags, which are accepted and
// ignored: the suite always runs whole).
func Main(analyzers []*Analyzer) {
	log.SetFlags(0)
	log.SetPrefix("g5lint: ")

	var cfgFile string
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			printFlags(analyzers)
			os.Exit(0)
		case len(arg) > 4 && arg[len(arg)-4:] == ".cfg":
			cfgFile = arg
		}
	}
	if cfgFile == "" {
		log.Fatalf("usage: g5lint [packages]  (standalone)  |  go vet -vettool=g5lint [packages]")
	}

	cfg, err := readConfig(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	// Dependency units are analyzed only for facts, and this suite
	// exports none: emit the (empty) facts file without parsing anything.
	if cfg.VetxOnly {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				log.Fatal(err)
			}
		}
		os.Exit(0)
	}
	diags, err := runUnit(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}
	// The go command caches the (empty) facts file as this unit's output.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if len(diags) == 0 {
		os.Exit(0)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	os.Exit(1)
}

// printVersion emits the -V=full line the go command uses as a cache key:
// it must change whenever the tool binary changes, so it hashes the
// executable itself.
func printVersion() {
	progname, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}

// printFlags describes the tool's flags as JSON; the go command queries
// this to split its own command line into flags and package patterns.
func printFlags(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := make([]jsonFlag, 0, len(analyzers))
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: "enable " + a.Name + " analysis (always on)"})
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// runUnit parses and type-checks one compilation unit and runs every
// analyzer over it, returning rendered diagnostics sorted by position.
func runUnit(cfg *Config, analyzers []*Analyzer) ([]string, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// Dependencies type-check from the export data the go command already
	// compiled, via the import map (which resolves vendoring).
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersionFor(cfg.GoVersion),
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return runAnalyzers(fset, files, pkg, info, analyzers), nil
}

// goVersionFor sanitizes the config's language version for types.Config
// (which rejects malformed strings rather than ignoring them).
func goVersionFor(v string) string {
	if regexp.MustCompile(`^go[0-9]+(\.[0-9]+)*$`).MatchString(v) {
		return v
	}
	return ""
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// runAnalyzers executes every analyzer over one type-checked package and
// renders the findings as "file:line:col: message [g5lint/name]" lines.
func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []string {
	type posDiag struct {
		pos token.Position
		msg string
	}
	var all []posDiag
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Sizes:     types.SizesFor("gc", "amd64"),
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			all = append(all, posDiag{fset.Position(d.Pos), d.Message + " [g5lint/" + name + "]"})
		}
		if err := a.Run(pass); err != nil {
			all = append(all, posDiag{token.Position{}, fmt.Sprintf("analyzer %s: %v", a.Name, err)})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].pos.Filename != all[j].pos.Filename {
			return all[i].pos.Filename < all[j].pos.Filename
		}
		return all[i].pos.Offset < all[j].pos.Offset
	})
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = fmt.Sprintf("%s: %s", d.pos, d.msg)
	}
	return out
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
