package lint_test

import (
	"testing"

	"gem5prof/internal/lint"
	"gem5prof/internal/lint/linttest"
)

func TestSinkDiscipline(t *testing.T) {
	// ring (clean declaring package) and hm (clean consumer) double as
	// negative fixtures; ringbad and hmbad hold the violations.
	linttest.Run(t, lint.SinkDiscipline,
		"gem5prof/internal/ring",
		"gem5prof/internal/ringbad",
		"gem5prof/internal/hm",
		"gem5prof/internal/hmbad",
	)
}
