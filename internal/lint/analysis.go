// Package lint is g5lint: a suite of static analyzers encoding this
// repository's determinism and simulator contracts, so that the classes of
// bugs the dynamic layers (differential tests, conformance fuzzing,
// stats-invariant walking) keep catching at runtime — map-iteration-order
// leaks, wall-clock/global-rand seepage, events scheduled into the past,
// torn atomics, dead stats, Sink/record-format drift — are caught at
// compile time instead.
//
// The package deliberately depends only on the standard library (go/ast,
// go/types): golang.org/x/tools is not vendored here, so it provides its
// own minimal analogue of the go/analysis Analyzer/Pass contract plus a
// driver speaking the `go vet -vettool` unitchecker protocol (see
// unitchecker.go) and an analysistest-style fixture loader (see the
// linttest subpackage).
//
// Analyzers report on production code only: files named *_test.go are
// parsed and type-checked (the package would not compile without them) but
// never walked for diagnostics.
//
// Suppression. A finding can be waived with a comment on the offending
// line or the line directly above it:
//
//	//lint:deterministic <reason>   waives detmap (the loop provably
//	                                commutes or its output is sorted)
//	//lint:allow <analyzer> <reason>  waives any named analyzer
//
// Both forms require a non-empty reason; an annotation without one is
// itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer so the suite could migrate to
// the real framework wholesale if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow annotations.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's parsed and type-checked representation
// through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // every file of the unit, tests included
	Pkg       *types.Package
	TypesInfo *types.Info
	// Sizes is fixed to gc/amd64 regardless of host so size contracts
	// (e.g. the 32-byte trace record) are checked deterministically.
	Sizes types.Sizes
	// Report receives every non-suppressed diagnostic.
	Report func(Diagnostic)
	// IP is the package's shared interprocedural result, set by the
	// driver; nil when the driver did not compute summaries (then the
	// interprocedural analyzers are silently inert).
	IP *IP
	// Audit, when non-nil, collects which suppression annotations
	// actually fired (see SuppressionAudit). Shared across the analyzers
	// of one unit so -suppressions can report stale entries.
	Audit *SuppressionAudit

	suppressions map[string][]suppression // filename -> entries, lazily built
}

// suppression is one parsed //lint: annotation.
type suppression struct {
	line     int
	analyzer string // "" means detmap (//lint:deterministic)
	reason   string
}

// SuppressionAudit records, across every analyzer of one unit, which
// //lint: annotations suppressed at least one diagnostic. Annotations
// that never fire are stale: the code they excused no longer trips the
// analyzer, so the excuse (and its reason) is rot.
type SuppressionAudit struct {
	// Used maps filename -> annotation line -> true once any analyzer
	// was suppressed by the annotation on that line.
	Used map[string]map[int]bool
}

// NewSuppressionAudit returns an empty audit.
func NewSuppressionAudit() *SuppressionAudit {
	return &SuppressionAudit{Used: make(map[string]map[int]bool)}
}

func (a *SuppressionAudit) mark(file string, line int) {
	if a == nil {
		return
	}
	m := a.Used[file]
	if m == nil {
		m = make(map[int]bool)
		a.Used[file] = m
	}
	m[line] = true
}

// AuditEntry is one annotation with its fired/stale status, as reported
// by CollectSuppressions.
type AuditEntry struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"` // "detmap" for //lint:deterministic
	Reason   string `json:"reason"`
	Used     bool   `json:"used"`
}

// CollectSuppressions lists every annotation in the files with whether it
// suppressed anything in this audit, sorted by file then line. fset must
// be the FileSet the files were parsed with.
func (a *SuppressionAudit) CollectSuppressions(fset *token.FileSet, files []*ast.File) []AuditEntry {
	var out []AuditEntry
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s, ok := parseAnnotation(c.Text)
				if !ok || s.reason == "" {
					continue
				}
				posn := fset.Position(c.Pos())
				name := s.analyzer
				if name == "" {
					name = "detmap"
				}
				out = append(out, AuditEntry{
					File:     posn.Filename,
					Line:     posn.Line,
					Analyzer: name,
					Reason:   s.reason,
					Used:     a.Used[posn.Filename][posn.Line],
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// SourceFiles returns the files analyzers should walk: every file of the
// package except *_test.go files.
func (p *Pass) SourceFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		name := p.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Reportf reports a finding at pos unless a suppression annotation covers
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// suppressed reports whether a //lint: annotation on the diagnostic's line
// or the line above waives this analyzer there.
func (p *Pass) suppressed(pos token.Pos) bool {
	if p.suppressions == nil {
		p.buildSuppressions()
	}
	posn := p.Fset.Position(pos)
	for _, s := range p.suppressions[posn.Filename] {
		if s.line != posn.Line && s.line != posn.Line-1 {
			continue
		}
		switch s.analyzer {
		case p.Analyzer.Name:
			p.Audit.mark(posn.Filename, s.line)
			return true
		case "":
			if p.Analyzer.Name == "detmap" {
				p.Audit.mark(posn.Filename, s.line)
				return true
			}
		}
	}
	return false
}

func (p *Pass) buildSuppressions() {
	p.suppressions = make(map[string][]suppression)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s, ok := parseAnnotation(c.Text)
				if !ok {
					continue
				}
				posn := p.Fset.Position(c.Pos())
				s.line = posn.Line
				if s.reason == "" {
					// A bare annotation documents nothing; make the
					// missing reason itself a finding (not suppressible).
					p.Report(Diagnostic{Pos: c.Pos(),
						Message: "lint annotation without a reason; write //lint:" + annotationVerb(s) + " <why this is safe>"})
					continue
				}
				p.suppressions[posn.Filename] = append(p.suppressions[posn.Filename], s)
			}
		}
	}
}

func annotationVerb(s suppression) string {
	if s.analyzer == "" {
		return "deterministic"
	}
	return "allow " + s.analyzer
}

// parseAnnotation recognizes //lint:deterministic and //lint:allow forms.
func parseAnnotation(text string) (suppression, bool) {
	body, ok := strings.CutPrefix(text, "//lint:")
	if !ok {
		return suppression{}, false
	}
	if rest, ok := strings.CutPrefix(body, "deterministic"); ok {
		return suppression{reason: strings.TrimSpace(rest)}, true
	}
	if rest, ok := strings.CutPrefix(body, "allow"); ok {
		fields := strings.Fields(rest)
		s := suppression{}
		if len(fields) > 0 {
			s.analyzer = fields[0]
			s.reason = strings.Join(fields[1:], " ")
		}
		return s, true
	}
	return suppression{}, false
}

// inspect walks every node of every non-test file, calling fn; fn
// returning false prunes the subtree.
func inspect(p *Pass, fn func(ast.Node) bool) {
	for _, f := range p.SourceFiles() {
		ast.Inspect(f, fn)
	}
}

// pkgScope reports whether the package under analysis belongs to this
// module's determinism-checked set: everything under gem5prof/ except the
// linter itself. Fixture packages used by linttest mimic these paths.
func pkgScope(p *Pass) bool {
	path := p.Pkg.Path()
	if path == "gem5prof" {
		return true
	}
	if !strings.HasPrefix(path, "gem5prof/") {
		return false
	}
	return !strings.HasPrefix(path, "gem5prof/internal/lint") &&
		!strings.HasPrefix(path, "gem5prof/cmd/g5lint")
}

// simScope reports whether the package is part of the simulator core, where
// host entropy is forbidden outright (nowallclock): seeds and time must
// flow from core.DeriveSeed and sim.Tick.
func simScope(p *Pass) bool {
	path := p.Pkg.Path()
	const pre = "gem5prof/internal/"
	if !strings.HasPrefix(path, pre) {
		return false
	}
	head, _, _ := strings.Cut(path[len(pre):], "/")
	switch head {
	case "lint":
		return false
	}
	return true
}

// typeIsMap reports whether t's core type is a map.
func typeIsMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// namedType returns t's *types.Named after stripping pointers, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isPkgFunc reports whether call is a call of the package-level function
// pkgPath.name (e.g. "time".Now).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isMethod reports whether fn has a receiver.
func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// calleeFunc resolves the called function object, or nil (e.g. for a call
// of a function value or a type conversion).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
