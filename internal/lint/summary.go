package lint

// This file defines the interprocedural fact model: per-function taint
// summaries computed bottom-up over the package DAG and serialized through
// the unitchecker facts path (Config.PackageVetx in, Config.VetxOutput
// out), so `go vet -vettool=g5lint` carries cross-package dataflow exactly
// the way x/tools analyzers carry facts — one JSON document per package,
// cached by the go command alongside export data.
//
// Slot numbering. Every summary indexes function operands by "slot":
// slot 0 is the receiver (unused for plain functions), slot i+1 is
// parameter i. A call site maps its receiver expression to slot 0 and its
// argument expressions to slots 1..n, so method and function summaries
// share one shape.
//
// Taint classes are short strings (see interproc.go): "maporder",
// "fporder", "wallclock", "rand", "env", "ptrfmt", "dom:mem", "dom:group",
// plus the internal pseudo-classes "param:N" / "rloop:N" that never leave
// the summarizer.

import (
	"encoding/json"
	"fmt"
	"sort"
)

// FuncSummary is the interprocedural abstract of one function: how taint
// moves through it and which determinism-critical sinks its parameters
// reach. The zero value is the sound default for an unknown function
// ("propagates nothing, sinks nothing") — callers that need conservatism
// for bodiless callees (interface methods, func values) apply it at the
// call site instead.
type FuncSummary struct {
	// Prop[slot] reports that taint on the operand in slot flows into at
	// least one result of the call.
	Prop []bool `json:",omitempty"`
	// Sources lists taint classes the results carry regardless of the
	// arguments (the function manufactures the taint, e.g. wraps
	// time.Now or ranges a map into its return value).
	Sources []string `json:",omitempty"`
	// Sinks[slot] lists the sink kinds ("stat", "trace", "ckpt",
	// "report") the operand in slot reaches inside the callee,
	// transitively.
	Sinks map[int][]string `json:",omitempty"`
	// Taints[slot] lists classes the callee writes into the object the
	// operand in slot refers to (receiver/pointer stores).
	Taints map[int][]string `json:",omitempty"`
	// Flows lists [src, dst] slot pairs: taint on operand src is stored
	// into the object operand dst refers to (e.g. a constructor storing
	// its System argument into the returned object's field).
	Flows [][2]int `json:",omitempty"`
	// FloatAcc[slot] reports that the operand in slot is accumulated
	// into a float (x += v with float x) inside the callee: calling it
	// with a map-order-tainted argument is order-sensitive.
	FloatAcc []bool `json:",omitempty"`
	// RangeSum[slot] reports that the callee iterates the collection in
	// slot in its given order while accumulating floats: passing a
	// map-ordered collection reproduces the Fig. 15 bug class.
	RangeSum []bool `json:",omitempty"`
}

// PkgSummary is the serialized fact set of one package.
type PkgSummary struct {
	// Path is the package import path the summary describes.
	Path string
	// Funcs maps types.Func.FullName() to its summary. Only functions
	// with a non-zero summary are present.
	Funcs map[string]*FuncSummary `json:",omitempty"`
	// TypeDomains maps a named type's full name (pkgpath.Name) to the
	// shard side its instances live on: "mem" or "group". Types earn a
	// tag from an EventDomain method returning a constant domain, or
	// from a constructor whose result carries a domain-view taint.
	TypeDomains map[string]string `json:",omitempty"`
	// Globals maps a package-level variable's full name to the taint
	// classes its value carries after package analysis.
	Globals map[string][]string `json:",omitempty"`
}

// empty reports whether the summary carries no information (and can be
// dropped from the package table).
func (s *FuncSummary) empty() bool {
	return s == nil || (!anyTrue(s.Prop) && len(s.Sources) == 0 && len(s.Sinks) == 0 &&
		len(s.Taints) == 0 && len(s.Flows) == 0 && !anyTrue(s.FloatAcc) && !anyTrue(s.RangeSum))
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// normalize sorts every unordered field so two equivalent summaries
// serialize identically — the fixpoint loop and the facts cache both
// compare serialized forms.
func (s *FuncSummary) normalize() {
	sort.Strings(s.Sources)
	s.Sources = dedup(s.Sources)
	for k, v := range s.Sinks {
		sort.Strings(v)
		s.Sinks[k] = dedup(v)
	}
	for k, v := range s.Taints {
		sort.Strings(v)
		s.Taints[k] = dedup(v)
	}
	sort.Slice(s.Flows, func(i, j int) bool {
		if s.Flows[i][0] != s.Flows[j][0] {
			return s.Flows[i][0] < s.Flows[j][0]
		}
		return s.Flows[i][1] < s.Flows[j][1]
	})
	out := s.Flows[:0]
	for i, f := range s.Flows {
		if i == 0 || f != s.Flows[i-1] {
			out = append(out, f)
		}
	}
	s.Flows = out
}

func dedup(ss []string) []string {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// EncodeSummary renders a package summary as deterministic JSON (the facts
// wire format written to Config.VetxOutput).
func EncodeSummary(ps *PkgSummary) ([]byte, error) {
	for _, fs := range ps.Funcs {
		fs.normalize()
	}
	for k, v := range ps.Globals {
		sort.Strings(v)
		ps.Globals[k] = dedup(v)
	}
	return json.MarshalIndent(ps, "", "\t")
}

// DecodeSummary parses a facts file written by EncodeSummary. Empty input
// (the facts file of a package outside the module, or one written by an
// older tool) decodes to nil: no cross-package information.
func DecodeSummary(data []byte) (*PkgSummary, error) {
	if len(data) == 0 {
		return nil, nil
	}
	ps := new(PkgSummary)
	if err := json.Unmarshal(data, ps); err != nil {
		return nil, fmt.Errorf("decoding package summary: %v", err)
	}
	return ps, nil
}
