package lint

// All returns the full g5lint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Detmap,
		NoWallClock,
		PastSched,
		AtomicRing,
		StatReg,
		SinkDiscipline,
		ShardPost,
		Detflow,
		FloatOrder,
		ShardEscape,
	}
}
