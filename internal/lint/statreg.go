package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// StatReg enforces the statistics-registration discipline around
// sim.Registry (whose runtime half is the duplicate-name panic in
// Registry.add):
//
//   - registrations (Registry.Scalar/Counter/Formula/Histogram) must
//     happen during construction — in a New*/new* function or a
//     *stats*/*register* helper — never mid-simulation, where a partially
//     populated registry would make two same-seed runs dump different
//     stat sets;
//   - two registrations in one function must not use syntactically
//     identical name arguments (the compile-time half of the runtime
//     duplicate panic);
//   - a Scalar/Counter/Histogram whose result is discarded is dead: no
//     code can ever update it, so it pollutes every dump with a
//     constant zero (a Formula result may be discarded — it computes
//     through its closure);
//   - a stat assigned to a variable or field that is never mentioned
//     again in the package is equally dead: registered, dumped, never
//     driven by the model;
//   - a registration inside a loop whose name argument is a compile-time
//     constant is a guaranteed second-iteration panic: per-instance stat
//     families (per-core caches, per-bank DRAM counters, the directory's
//     per-core presence stats) must derive the name from the loop
//     variable.
var StatReg = &Analyzer{
	Name: "statreg",
	Doc: "stat registrations must happen in constructors with unique names, and every " +
		"registered stat must be reachable by the model (no discarded or never-used stats)",
	Run: runStatReg,
}

// registryMethods maps method name -> whether a discarded result is dead.
var registryMethods = map[string]bool{
	"Scalar":    true,
	"Counter":   true,
	"Histogram": true,
	"Formula":   false,
}

func runStatReg(pass *Pass) error {
	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkStatFunc(pass, fd)
			}
		}
	}
	return nil
}

// isRegistryCall matches calls of the registration methods on sim.Registry
// (by type name and package name, so linttest fixtures can supply a stub).
func isRegistryCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, known := registryMethods[sel.Sel.Name]; !known {
		return "", false
	}
	recv := namedType(pass.TypesInfo.TypeOf(sel.X))
	if recv == nil || recv.Obj().Name() != "Registry" ||
		recv.Obj().Pkg() == nil || recv.Obj().Pkg().Name() != "sim" {
		return "", false
	}
	return sel.Sel.Name, true
}

func checkStatFunc(pass *Pass, fd *ast.FuncDecl) {
	nameArgs := make(map[string]ast.Expr) // rendered name arg -> first site
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := isRegistryCall(pass, call)
		if !ok {
			return true
		}

		if !isConstructorish(fd) {
			pass.Reportf(call.Pos(),
				"stat %s registration outside a constructor (%s): register stats in New* so every same-seed run dumps the same stat set", method, fd.Name.Name)
		}

		if len(call.Args) > 0 {
			key := types.ExprString(call.Args[0])
			if first, dup := nameArgs[key]; dup {
				pass.Reportf(call.Pos(),
					"duplicate stat name %s (first registered at %s); Registry.add will panic at run time", key, pass.Fset.Position(first.Pos()))
			} else {
				nameArgs[key] = call.Args[0]
			}
		}
		return true
	})

	checkStatUse(pass, fd)
	checkStatLoop(pass, fd)
}

// checkStatLoop flags registrations inside a for/range body whose name
// argument is a compile-time constant. The per-function duplicate check
// above cannot see these — one syntactic site, many dynamic
// registrations — but the second iteration re-registers the same name and
// Registry.add panics at run time. This is the multicore trap: replicating
// a cache or TLB per core replicates its constructor calls in a loop, and
// every stat name inside must vary with the instance.
func checkStatLoop(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			body = n.Body
		case *ast.RangeStmt:
			body = n.Body
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			switch m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				// A nested loop is visited by the outer Inspect in its
				// own right; stopping here attributes each call to its
				// innermost enclosing loop exactly once.
				return false
			case *ast.FuncLit:
				// A closure built in the loop need not run per
				// iteration; flagging its body would be speculative.
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := isRegistryCall(pass, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
				pass.Reportf(call.Pos(),
					"stat %s registered inside a loop with constant name %s: the second iteration re-registers it and Registry.add panics (derive the name from the loop variable, e.g. fmt.Sprintf)",
					method, types.ExprString(call.Args[0]))
			}
			return true
		})
		return true
	})
}

func isConstructorish(fd *ast.FuncDecl) bool {
	name := strings.ToLower(fd.Name.Name)
	return strings.HasPrefix(name, "new") ||
		strings.Contains(name, "stat") || strings.Contains(name, "register")
}

// checkStatUse implements the dead-stat rules: discarded results and
// assigned-but-never-referenced stats.
func checkStatUse(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if method, ok := isRegistryCall(pass, call); ok && registryMethods[method] {
					pass.Reportf(call.Pos(),
						"registered %s is discarded: nothing can ever update it, so it dumps as a constant zero (assign it, or use a Formula)", method)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				method, ok := isRegistryCall(pass, call)
				if !ok {
					continue
				}
				lhs := ast.Unparen(n.Lhs[i])
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && registryMethods[method] {
					pass.Reportf(call.Pos(),
						"registered %s is assigned to _: nothing can ever update it (assign it, or use a Formula)", method)
					continue
				}
				if obj := assignedObj(pass, lhs); obj != nil && !usedElsewhere(pass, obj, lhs) {
					pass.Reportf(call.Pos(),
						"stat assigned to %s is never referenced again in this package: registered but never driven by the model", obj.Name())
				}
			}
		}
		return true
	})
}

// assignedObj resolves the variable or field an assignment writes.
func assignedObj(pass *Pass, lhs ast.Expr) types.Object {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Defs[lhs]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Uses[lhs]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[lhs.Sel]
	}
	return nil
}

// usedElsewhere reports whether obj is referenced anywhere in the package
// other than the registering assignment's own LHS.
func usedElsewhere(pass *Pass, obj types.Object, registeringLHS ast.Expr) bool {
	var lhsIdent *ast.Ident
	switch l := registeringLHS.(type) {
	case *ast.Ident:
		lhsIdent = l
	case *ast.SelectorExpr:
		lhsIdent = l.Sel
	}
	used := false
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id == lhsIdent {
				return true
			}
			if pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj {
				// The field's declaration does not count as a use.
				if _, isDecl := pass.TypesInfo.Defs[id]; !isDecl {
					used = true
				}
			}
			return !used
		})
		if used {
			break
		}
	}
	return used
}
