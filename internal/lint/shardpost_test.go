package lint_test

import (
	"testing"

	"gem5prof/internal/lint"
	"gem5prof/internal/lint/linttest"
)

func TestShardPost(t *testing.T) {
	linttest.Run(t, lint.ShardPost, "gem5prof/internal/sp")
}
