package lint_test

import (
	"testing"

	"gem5prof/internal/lint"
	"gem5prof/internal/lint/linttest"
)

func TestPastSched(t *testing.T) {
	linttest.Run(t, lint.PastSched, "gem5prof/internal/ps")
}
