package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicRing checks the two SPSC-ring concurrency disciplines that the
// pipelined co-simulation's bit-identical-stats argument rests on
// (DESIGN.md §10):
//
//  1. Mixed access: a struct field that is read or written through
//     sync/atomic anywhere in the package must never be touched with a
//     plain load or store elsewhere (outside its New* constructor, where
//     the value is not yet shared). A single torn read of the ring's
//     indices silently reorders the record stream.
//
//  2. False sharing: two hot atomic counters (atomic.Uint64/Int64/
//     Uint32/Int32/Uintptr fields, the head/tail index idiom) declared
//     adjacently in one struct share a cache line; they must be
//     separated by >= 64 bytes of padding (the `_ pad` idiom). Parked
//     flags (atomic.Bool) are edge-path-only and exempt.
var AtomicRing = &Analyzer{
	Name: "atomicring",
	Doc: "flag plain access to fields accessed via sync/atomic elsewhere, and adjacent " +
		"hot typed-atomic counters without cache-line padding",
	Run: runAtomicRing,
}

func runAtomicRing(pass *Pass) error {
	checkMixedAccess(pass)
	checkPadding(pass)
	return nil
}

// checkMixedAccess implements rule 1 for raw sync/atomic function use
// (typed atomics — atomic.Uint64 fields — cannot be accessed plainly, so
// they need no rule).
func checkMixedAccess(pass *Pass) {
	// Fields whose address is taken for a sync/atomic call.
	atomicFields := make(map[types.Object]bool)
	// &x.f expressions that ARE those call arguments (not plain access).
	blessed := make(map[*ast.SelectorExpr]bool)

	inspect(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op.String() != "&" {
				continue
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil {
				atomicFields[obj] = true
				blessed[sel] = true
			}
		}
		return true
	})
	if len(atomicFields) == 0 {
		return
	}

	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isConstructor(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || blessed[sel] {
					return true
				}
				if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && atomicFields[obj] {
					pass.Reportf(sel.Pos(),
						"field %s is accessed via sync/atomic elsewhere in this package; this plain access can tear — use the atomic API (or move the access into the constructor)",
						sel.Sel.Name)
				}
				return true
			})
		}
	}
}

func isConstructor(fd *ast.FuncDecl) bool {
	return strings.HasPrefix(fd.Name.Name, "New") || strings.HasPrefix(fd.Name.Name, "new")
}

// hotAtomicTypes are the typed atomics used as high-rate shared counters.
var hotAtomicTypes = map[string]bool{
	"Uint64": true, "Int64": true, "Uint32": true, "Int32": true, "Uintptr": true,
}

// checkPadding implements rule 2.
func checkPadding(pass *Pass) {
	inspect(pass, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		var prevHot *ast.Field // last hot atomic seen with no padding since
		for _, field := range st.Fields.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			switch {
			case isHotAtomic(t):
				if prevHot != nil {
					pass.Reportf(field.Pos(),
						"hot atomic fields %s and %s in %s share a cache line (false sharing between producer and consumer); separate them with >= 64 bytes of padding",
						fieldLabel(prevHot), fieldLabel(field), ts.Name.Name)
				}
				prevHot = field
			case fieldSize(pass, t)*int64(max(1, len(field.Names))) >= 64:
				prevHot = nil
			}
		}
		return true
	})
}

func fieldLabel(f *ast.Field) string {
	if len(f.Names) > 0 {
		return f.Names[0].Name
	}
	return "(embedded)"
}

func isHotAtomic(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync/atomic" {
		return false
	}
	return hotAtomicTypes[n.Obj().Name()]
}

func fieldSize(pass *Pass, t types.Type) (size int64) {
	if t == nil {
		return 0
	}
	// Sizeof panics on type parameters and other unsized types
	// (encountered when a build driver feeds generic code through the
	// suite); treat those as size 0 — they are never padding.
	defer func() {
		if recover() != nil {
			size = 0
		}
	}()
	return pass.Sizes.Sizeof(t)
}
