package lint_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfApplication is the acceptance bar of the suite: g5lint, run as
// a vet tool over this repository, must be clean — all ten analyzers,
// including the interprocedural ones (detflow, floatorder, shardescape)
// whose summaries flow through the vet facts path. Every real violation
// has been fixed and every benign one carries a reasoned annotation; a
// regression in either direction fails here. The suppression audit runs
// too: an annotation whose diagnostic no longer fires is dead weight
// that would silently excuse a future, different bug at the same line.
func TestSelfApplication(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "g5lint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/g5lint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building g5lint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool=g5lint ./... is not clean: %v\n%s", err, out)
	}

	audit := exec.Command(tool, "-suppressions", "./...")
	audit.Dir = root
	out, err := audit.CombinedOutput()
	if err != nil {
		t.Errorf("g5lint -suppressions ./... found stale annotations: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), ", 0 stale") {
		t.Errorf("suppression audit did not report zero stale:\n%s", out)
	}
}
