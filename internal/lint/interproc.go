package lint

// This file is the interprocedural dataflow engine behind detflow,
// floatorder and shardescape: a package-at-a-time summarizer that walks
// every function body over go/ast + go/types, tracks taint through
// assignments, calls, closures and struct fields, and condenses each
// function into a FuncSummary (summary.go). Summaries of dependency
// packages arrive through the unitchecker facts path (or are computed
// recursively by linttest), so the whole-program analysis is the
// composition of per-package fixpoints in package-DAG order — the same
// shape as x/tools facts-based analyzers, with the go command providing
// the DAG ordering and the cache.
//
// Precision policy (see DESIGN.md §16 for the full argument):
//
//   - Context: summaries are context-insensitive (one summary per named
//     function); function literals are analyzed inline at their lexical
//     position sharing the enclosing environment, which makes captures
//     precise without any context cloning.
//   - Fields: field-insensitive. A store of a tainted value through a
//     selector taints the base object; a read through a selector reads
//     the base object's taint. Domain classes ("dom:*") are the
//     exception: they never propagate upward through field stores or
//     composite literals, so a registry struct holding objects of two
//     domains is not itself "reachable from both domains".
//   - Flow: statements are walked in order; loop bodies are walked twice
//     so taint introduced late in a body reaches uses earlier in the
//     next iteration. There is no kill on reassignment (a variable only
//     accumulates taint); the one deliberate kill is sanitization —
//     sorting a collection removes the order classes.
//   - Unknowns: callees without a summary (stdlib, interface methods,
//     func values) conservatively propagate the union of their operands'
//     taint to their results, and sink/source intrinsics (below) pin
//     down the stdlib entry points that matter.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Taint classes. The "param:" and "rloop:" prefixes mark summarizer
// pseudo-classes that never appear in serialized summaries or findings.
const (
	classMapOrder = "maporder"  // value depends on map iteration order (annotation-respecting)
	classFPOrder  = "fporder"   // collection whose ELEMENT ORDER is map-iteration-derived (killed by sorting, survives //lint:deterministic)
	classMRange   = "mrange"    // pseudo: value varies per iteration of an enclosing order-sensitive loop
	classWall     = "wallclock" // derived from host wall-clock time
	classRand     = "rand"      // drawn from host-seeded global rand state
	classEnv      = "env"       // read from the process environment / host identity
	classPtrFmt   = "ptrfmt"    // formatted host pointer value (ASLR-dependent)
	classDomMem   = "dom:mem"   // reachable from the memory shard domain
	classDomGroup = "dom:group" // reachable from a coordinator-side (CPU/core/dev) domain
)

// Sink kinds: the determinism-critical outputs detflow guards.
const (
	sinkStat   = "stat"   // statistic registration or update
	sinkTrace  = "trace"  // trace arena / Tracer call
	sinkCkpt   = "ckpt"   // checkpoint encoder
	sinkReport = "report" // report writer
)

// entropyClasses are the classes detflow reports when they reach a sink.
var entropyClasses = []string{classEnv, classMapOrder, classPtrFmt, classRand, classWall}

// classNoun renders a taint class for diagnostics.
func classNoun(class string) string {
	switch class {
	case classMapOrder, classFPOrder:
		return "map iteration order"
	case classWall:
		return "wall-clock time"
	case classRand:
		return "host-seeded global rand"
	case classEnv:
		return "the process environment"
	case classPtrFmt:
		return "a formatted host pointer"
	}
	return class
}

// sinkNoun renders a sink kind for diagnostics.
func sinkNoun(kind string) string {
	switch kind {
	case sinkStat:
		return "stat registration"
	case sinkTrace:
		return "the trace arena"
	case sinkCkpt:
		return "a checkpoint encoder"
	case sinkReport:
		return "a report writer"
	}
	return kind
}

// IPFinding is one candidate finding recorded by the engine. The three
// interprocedural analyzers filter by Kind and render the message; the
// ordinary per-analyzer suppression machinery applies at Pos.
type IPFinding struct {
	Pos    token.Pos
	Kind   string // "sink", "floatsum", "domjoin", "domglobal", "domcall"
	Class  string // taint class involved (sink, floatsum)
	Sink   string // sink kind (Kind == "sink")
	Detail string // callee or object name for the message
}

// IPResult is the engine's output for one package.
type IPResult struct {
	Summary  *PkgSummary
	Findings []IPFinding
}

// IP computes and memoizes one package's interprocedural result, shared
// by every analyzer Pass over that package.
type IP struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	dep   func(path string) *PkgSummary
	audit *SuppressionAudit // optional; marks source-level waivers as used
	res   *IPResult
}

// SetAudit attaches a suppression audit so annotations consumed at taint
// sources (inside the engine, before any Reportf) count as used.
func (ip *IP) SetAudit(a *SuppressionAudit) { ip.audit = a }

// NewIP prepares (lazily) the interprocedural analysis of one package.
// dep resolves a dependency import path to its summary, or nil when none
// is available (outside the module); it may be nil when no dependency
// summaries exist at all.
func NewIP(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, dep func(path string) *PkgSummary) *IP {
	return &IP{fset: fset, files: files, pkg: pkg, info: info, dep: dep}
}

// Result runs the summarizer on first use.
func (ip *IP) Result() *IPResult {
	if ip.res == nil {
		s := newSummarizer(ip)
		s.run()
		ip.res = &IPResult{Summary: s.packageSummary(), Findings: s.finalFindings()}
	}
	return ip.res
}

const maxFixpointRounds = 6

type summarizer struct {
	ip      *IP
	info    *types.Info
	annots  map[string]map[int][]string // filename -> line -> suppressed analyzer names ("" = deterministic)
	table   map[string]*FuncSummary     // FullName -> summary under construction
	typeDom map[string]string           // named type full name -> "mem" | "group" | "mixed"
	globals map[types.Object]taintSet   // package-level vars
	sanit   map[types.Object]bool       // objects sanitized (sorted) in the current function
	find    map[IPFinding]bool
	persist map[IPFinding]bool // findings gated on global-taint growth, which happens once
	changed bool
}

type taintSet map[string]bool

func (t taintSet) union(o taintSet) taintSet {
	if len(o) == 0 {
		return t
	}
	if t == nil {
		t = make(taintSet, len(o))
	}
	for c := range o {
		t[c] = true
	}
	return t
}

func (t taintSet) with(classes ...string) taintSet {
	if t == nil {
		t = make(taintSet, len(classes))
	}
	for _, c := range classes {
		t[c] = true
	}
	return t
}

func (t taintSet) clone() taintSet {
	c := make(taintSet, len(t))
	for k := range t {
		c[k] = true
	}
	return c
}

// withoutOrder strips the iteration-order classes (the sanitizer effect).
func (t taintSet) withoutOrder() taintSet {
	if !t[classMapOrder] && !t[classFPOrder] && !t[classMRange] {
		return t
	}
	c := t.clone()
	delete(c, classMapOrder)
	delete(c, classFPOrder)
	delete(c, classMRange)
	return c
}

// withoutDomains strips the shard-domain classes (applied at field stores
// and composite literals: containers do not inherit their members' shard
// side).
func (t taintSet) withoutDomains() taintSet {
	if !t[classDomMem] && !t[classDomGroup] {
		return t
	}
	c := t.clone()
	delete(c, classDomMem)
	delete(c, classDomGroup)
	return c
}

func newSummarizer(ip *IP) *summarizer {
	s := &summarizer{
		ip:      ip,
		info:    ip.info,
		annots:  make(map[string]map[int][]string),
		table:   make(map[string]*FuncSummary),
		typeDom: make(map[string]string),
		globals: make(map[types.Object]taintSet),
		find:    make(map[IPFinding]bool),
		persist: make(map[IPFinding]bool),
	}
	for _, f := range ip.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				a, ok := parseAnnotation(c.Text)
				if !ok || a.reason == "" {
					continue
				}
				posn := ip.fset.Position(c.Pos())
				m := s.annots[posn.Filename]
				if m == nil {
					m = make(map[int][]string)
					s.annots[posn.Filename] = m
				}
				m[posn.Line] = append(m[posn.Line], a.analyzer)
			}
		}
	}
	return s
}

// sourceWaived reports whether an annotation at pos's line (or the line
// above) names one of the given analyzers, waiving a taint source there.
func (s *summarizer) sourceWaived(pos token.Pos, names ...string) bool {
	posn := s.ip.fset.Position(pos)
	for _, line := range []int{posn.Line, posn.Line - 1} {
		for _, got := range s.annots[posn.Filename][line] {
			for _, want := range names {
				if got == want {
					s.ip.audit.mark(posn.Filename, line)
					return true
				}
			}
		}
	}
	return false
}

// run drives the per-package fixpoint: functions are walked in call-graph
// postorder (callees first) and re-walked until no summary grows.
func (s *summarizer) run() {
	decls := s.sourceFuncDecls()
	order := s.callGraphOrder(decls)
	for round := 0; round < maxFixpointRounds; round++ {
		s.changed = false
		s.find = make(map[IPFinding]bool)
		s.walkPackageVars()
		for _, d := range order {
			s.walkFunc(d)
		}
		if !s.changed {
			break
		}
	}
}

// sourceFuncDecls returns every function declaration with a body in the
// package's non-test files.
func (s *summarizer) sourceFuncDecls() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range s.ip.files {
		name := s.ip.fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// CallGraph is the package-local call graph: for each declared function,
// the declared functions it calls directly (including through method
// expressions and closures in its body). It exists to order the fixpoint
// (callees before callers) and is exported for the engine's tests.
type CallGraph struct {
	Nodes map[string]*ast.FuncDecl // FullName -> decl
	Edges map[string][]string      // caller FullName -> callee FullNames (package-local)
}

// BuildCallGraph constructs the package-local call graph over decls.
func (s *summarizer) buildCallGraph(decls []*ast.FuncDecl) *CallGraph {
	g := &CallGraph{Nodes: make(map[string]*ast.FuncDecl), Edges: make(map[string][]string)}
	for _, d := range decls {
		if fn := s.declFunc(d); fn != nil {
			g.Nodes[fn.FullName()] = d
		}
	}
	for _, d := range decls {
		fn := s.declFunc(d)
		if fn == nil {
			continue
		}
		caller := fn.FullName()
		seen := make(map[string]bool)
		ast.Inspect(d.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(s.info, call)
			if callee == nil || callee.Pkg() != s.ip.pkg {
				return true
			}
			name := callee.FullName()
			if _, declared := g.Nodes[name]; declared && !seen[name] {
				seen[name] = true
				g.Edges[caller] = append(g.Edges[caller], name)
			}
			return true
		})
	}
	return g
}

// callGraphOrder returns decls in callee-first (DFS postorder) order, so
// most summaries are complete before their callers are walked and the
// fixpoint converges in one round for acyclic call structure.
func (s *summarizer) callGraphOrder(decls []*ast.FuncDecl) []*ast.FuncDecl {
	g := s.buildCallGraph(decls)
	visited := make(map[string]bool)
	var order []*ast.FuncDecl
	var visit func(name string)
	visit = func(name string) {
		if visited[name] {
			return
		}
		visited[name] = true
		for _, callee := range g.Edges[name] {
			visit(callee)
		}
		order = append(order, g.Nodes[name])
	}
	for _, d := range decls {
		if fn := s.declFunc(d); fn != nil {
			visit(fn.FullName())
		} else {
			order = append(order, d) // no object (blank name); walk for findings anyway
		}
	}
	return order
}

func (s *summarizer) declFunc(d *ast.FuncDecl) *types.Func {
	fn, _ := s.info.Defs[d.Name].(*types.Func)
	return fn
}

// packageSummary condenses the fixpoint into the serializable form.
func (s *summarizer) packageSummary() *PkgSummary {
	ps := &PkgSummary{Path: s.ip.pkg.Path()}
	for name, fs := range s.table {
		if !fs.empty() {
			if ps.Funcs == nil {
				ps.Funcs = make(map[string]*FuncSummary)
			}
			ps.Funcs[name] = fs
		}
	}
	for name, d := range s.typeDom {
		if d == "mem" || d == "group" {
			if ps.TypeDomains == nil {
				ps.TypeDomains = make(map[string]string)
			}
			ps.TypeDomains[name] = d
		}
	}
	for obj, t := range s.globals {
		var classes []string
		for c := range t {
			if c == classMRange {
				continue // loop-scoped pseudo-class
			}
			if !strings.Contains(c, ":") || c == classDomMem || c == classDomGroup {
				classes = append(classes, c)
			}
		}
		if len(classes) > 0 {
			if ps.Globals == nil {
				ps.Globals = make(map[string][]string)
			}
			ps.Globals[s.ip.pkg.Path()+"."+obj.Name()] = classes
		}
	}
	return ps
}

func (s *summarizer) finalFindings() []IPFinding {
	var out []IPFinding
	for f := range s.find {
		out = append(out, f)
	}
	for f := range s.persist {
		if !s.find[f] {
			out = append(out, f)
		}
	}
	// Deterministic order for the analyzers' reports.
	sortFindings(out)
	return out
}

func sortFindings(fs []IPFinding) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && lessFinding(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func lessFinding(a, b IPFinding) bool {
	if a.Pos != b.Pos {
		return a.Pos < b.Pos
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.Sink < b.Sink
}

// walkPackageVars seeds the global environment from package-level var
// initializers.
func (s *summarizer) walkPackageVars() {
	for _, f := range s.ip.files {
		name := s.ip.fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			w := s.newWalker(nil, nil)
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					t := w.eval(val)
					if i < len(vs.Names) {
						if obj := s.info.Defs[vs.Names[i]]; obj != nil {
							w.addTaint(obj, t, vs.Names[i].Pos())
						}
					}
				}
			}
		}
	}
}

// walkFunc (re)analyzes one declared function, folding what it learns
// into the function's summary.
func (s *summarizer) walkFunc(d *ast.FuncDecl) {
	fn := s.declFunc(d)
	var sum *FuncSummary
	if fn != nil {
		sum = s.table[fn.FullName()]
		if sum == nil {
			sum = &FuncSummary{}
			s.table[fn.FullName()] = sum
		}
	} else {
		sum = &FuncSummary{}
	}
	s.sanit = make(map[types.Object]bool)
	w := s.newWalker(fn, sum)
	w.resultTypes = resultTypes(fn)

	// Seed parameter slots with their pseudo-classes.
	if d.Recv != nil && len(d.Recv.List) == 1 && len(d.Recv.List[0].Names) == 1 {
		if obj := s.info.Defs[d.Recv.List[0].Names[0]]; obj != nil {
			w.slots[obj] = 0
			w.env[obj] = taintSet{}.with("param:0")
		}
	}
	slot := 1
	for _, field := range d.Type.Params.List {
		if len(field.Names) == 0 {
			slot++
			continue
		}
		for _, name := range field.Names {
			if obj := s.info.Defs[name]; obj != nil {
				w.slots[obj] = slot
				w.env[obj] = taintSet{}.with("param:" + strconv.Itoa(slot))
			}
			slot++
		}
	}

	// detectEventDomain tags the receiver type from an EventDomain
	// method returning a constant domain.
	if d.Recv != nil && d.Name.Name == "EventDomain" {
		s.tagEventDomain(d, fn)
	}

	w.stmt(d.Body)
}

// tagEventDomain records the shard side of a type declaring
// `func (x *T) EventDomain() sim.Domain { return <const> }`.
func (s *summarizer) tagEventDomain(d *ast.FuncDecl, fn *types.Func) {
	if fn == nil || len(d.Body.List) != 1 {
		return
	}
	ret, ok := d.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return
	}
	dom := domainConstSide(s.info, ret.Results[0])
	if dom == "" {
		return
	}
	if t := recvNamedType(fn); t != nil {
		s.setTypeDomain(t, dom)
	}
}

func (s *summarizer) setTypeDomain(t *types.Named, dom string) {
	name := typeFullName(t)
	if name == "" {
		return
	}
	if old, ok := s.typeDom[name]; ok && old != dom {
		dom = "mixed"
	}
	if s.typeDom[name] != dom {
		s.typeDom[name] = dom
		s.changed = true
	}
}

// typeDomainOf resolves a named type's shard side across packages.
func (s *summarizer) typeDomainOf(t *types.Named) string {
	name := typeFullName(t)
	if name == "" {
		return ""
	}
	if d, ok := s.typeDom[name]; ok {
		if d == "mixed" {
			return ""
		}
		return d
	}
	if p := t.Obj().Pkg(); p != nil && p != s.ip.pkg && s.ip.dep != nil {
		if ps := s.ip.dep(p.Path()); ps != nil {
			return ps.TypeDomains[name]
		}
	}
	return ""
}

func typeFullName(t *types.Named) string {
	obj := t.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func recvNamedType(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedType(sig.Recv().Type())
}

func resultTypes(fn *types.Func) []types.Type {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make([]types.Type, sig.Results().Len())
	for i := range out {
		out[i] = sig.Results().At(i).Type()
	}
	return out
}

// record registers a finding (deduplicated; the fixpoint re-walks bodies).
func (s *summarizer) record(f IPFinding) {
	s.find[f] = true
}

// recordPersist registers a finding that survives the per-round reset of
// s.find. Findings triggered by a global taint set growing fire exactly
// once — globals persist across rounds — so a later round's reset would
// silently drop them.
func (s *summarizer) recordPersist(f IPFinding) {
	s.persist[f] = true
}
