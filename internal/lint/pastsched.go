package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// PastSched flags Schedule/Reschedule call sites whose tick argument is
// not provably derived from the current simulation time. Scheduling into
// the past corrupts a calendar queue's bucket invariants — the PR 1 bug
// class — so the runtime panics on it (sim.CalendarQueue.ServiceOne
// "time running backwards"); this analyzer moves the common cases of that
// contract to compile time with a syntactic dataflow over the enclosing
// function.
//
// A tick expression is accepted when it is
//   - a call of a method named Now or CurTick, possibly plus other terms,
//   - a parameter of the enclosing function (wrappers re-delegate the
//     obligation to their callers),
//   - a local variable every assignment of which is itself accepted,
//   - compared against Now() somewhere in the enclosing function (the
//     guard idiom: `if when <= sys.Now() { ...; return }`), or
//   - a non-negative literal inside a Startup method, where sim time is
//     by construction still 0.
//
// Everything else — struct fields, literals, subtraction from Now —
// is reported. The approximation is deliberately local and one-sided:
// it can demand an annotation for safe code (//lint:allow pastsched),
// but accepted code still has the runtime panic behind it.
var PastSched = &Analyzer{
	Name: "pastsched",
	Doc: "flag Schedule/Reschedule tick arguments not provably >= the current tick " +
		"(Now()-derived, parameter-forwarded, or Now()-guarded in the enclosing function)",
	Run: runPastSched,
}

func runPastSched(pass *Pass) error {
	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkSchedFunc(pass, fd)
			}
		}
	}
	return nil
}

func checkSchedFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Schedule" && sel.Sel.Name != "Reschedule") {
			return true
		}
		if len(call.Args) != 2 || !isTickType(pass.TypesInfo.TypeOf(call.Args[1])) {
			return true
		}
		tick := ast.Unparen(call.Args[1])
		if !tickDerived(pass, fd, tick, 0) {
			pass.Reportf(call.Args[1].Pos(),
				"%s tick argument is not provably derived from the current tick (Now()); scheduling into the past corrupts the event queue — derive it from Now(), guard it against Now(), or annotate //lint:allow pastsched <reason>",
				sel.Sel.Name)
		}
		return true
	})
}

// isTickType matches the sim.Tick named type (by name and package name, so
// linttest fixtures can supply a stub).
func isTickType(t types.Type) bool {
	n := namedType(t)
	return n != nil && n.Obj().Name() == "Tick" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "sim"
}

// tickDerived is the accept predicate described on PastSched.
func tickDerived(pass *Pass, fd *ast.FuncDecl, e ast.Expr, depth int) bool {
	if depth > 8 {
		return false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Now" || sel.Sel.Name == "CurTick" {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "+":
			// now + anything: latencies are unsigned by convention; a
			// negative delta is the caller's bug and still panics at run
			// time.
			return tickDerived(pass, fd, e.X, depth+1) || tickDerived(pass, fd, e.Y, depth+1)
		default:
			// now - x, now * x, ...: can run backwards.
			return false
		}
	case *ast.Ident:
		if isParamOf(pass, fd, e) {
			return true
		}
		if guardedAgainstNow(fd, e) {
			return true
		}
		return assignmentsDerived(pass, fd, e, depth)
	case *ast.BasicLit:
		return fd.Name.Name == "Startup" && nonNegativeLit(e)
	}
	return false
}

func nonNegativeLit(l *ast.BasicLit) bool {
	v, err := strconv.ParseInt(l.Value, 0, 64)
	return err == nil && v >= 0
}

// isParamOf reports whether id resolves to a parameter of fd.
func isParamOf(pass *Pass, fd *ast.FuncDecl, id *ast.Ident) bool {
	return paramOf(pass, fd.Type.Params, id)
}

// paramOf reports whether id resolves to a parameter in params (of a
// FuncDecl or a FuncLit — closures carry delegated obligations too).
func paramOf(pass *Pass, params *ast.FieldList, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || params == nil {
		return false
	}
	for _, field := range params.List {
		for _, name := range field.Names {
			if pass.TypesInfo.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}

// assignmentsDerived checks that id has at least one assignment in fd and
// that every assignment's RHS is itself tick-derived.
func assignmentsDerived(pass *Pass, fd *ast.FuncDecl, id *ast.Ident, depth int) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	found, allOK := false, true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				li, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if pass.TypesInfo.Defs[li] == obj || pass.TypesInfo.Uses[li] == obj {
					found = true
					if !tickDerived(pass, fd, n.Rhs[i], depth+1) {
						allOK = false
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.Defs[name] == obj && i < len(n.Values) {
					found = true
					if !tickDerived(pass, fd, n.Values[i], depth+1) {
						allOK = false
					}
				}
			}
		}
		return true
	})
	return found && allOK
}

// guardedAgainstNow reports whether fd contains a comparison between id's
// object and a Now()/CurTick() call — the deschedule-or-fire-immediately
// guard idiom that establishes when >= Now() on the scheduling path.
func guardedAgainstNow(fd *ast.FuncDecl, id *ast.Ident) bool {
	guarded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op.String() {
		case "<", "<=", ">", ">=":
		default:
			return true
		}
		if (mentionsIdent(be.X, id.Name) && mentionsNow(be.Y)) ||
			(mentionsIdent(be.Y, id.Name) && mentionsNow(be.X)) {
			guarded = true
			return false
		}
		return true
	})
	return guarded
}

func mentionsIdent(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

func mentionsNow(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Now" || sel.Sel.Name == "CurTick") {
			found = true
		}
		return !found
	})
	return found
}
