package lint_test

import (
	"testing"

	"gem5prof/internal/lint"
	"gem5prof/internal/lint/linttest"
)

func TestAtomicRing(t *testing.T) {
	linttest.Run(t, lint.AtomicRing, "gem5prof/internal/ar")
}
