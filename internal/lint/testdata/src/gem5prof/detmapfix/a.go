// Fixtures for the detmap analyzer: map-order-dependent iteration inside
// the determinism-checked import path.
package detmapfix

import (
	"maps"
	"slices"
	"sort"
)

// Bad folds over a map in iteration order.
func Bad(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `range over a map`
		total += v
	}
	return total
}

// BadKeys walks maps.Keys without sorting.
func BadKeys(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) { // want `maps\.Keys without an immediate sort`
		out = append(out, k)
	}
	return out
}

// GoodSorted sorts the keys in the same expression.
func GoodSorted(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

// GoodAnnotated waives a collect-then-sort loop.
func GoodAnnotated(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//lint:deterministic keys are sorted before use
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MissingReason carries a bare annotation: the annotation itself is
// reported and it suppresses nothing.
func MissingReason(m map[string]int) int {
	n := 0
	// want+1 "lint annotation without a reason"
	//lint:deterministic
	for range m { // want `range over a map`
		n++
	}
	return n
}
