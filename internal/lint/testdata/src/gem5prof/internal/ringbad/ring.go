// A broken trace-record package (directory ringbad, package name ring so
// sinkdiscipline recognizes it): Record is undersized and carries a
// pointer.
package ring

// Op tags what a Record describes.
type Op uint8

// The record kinds.
const (
	OpFetch Op = iota
	OpBranch
	OpData
)

// Record is 24 bytes and holds a string header.
type Record struct { // want `is 24 bytes under gc/amd64, not 32` `field Name contains pointers`
	Op   Op
	Name string
}
