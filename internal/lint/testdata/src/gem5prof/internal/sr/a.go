// Fixtures for the statreg analyzer: the stats-registration discipline
// around sim.Registry.
package sr

import "gem5prof/internal/sim"

type model struct {
	insts *sim.Counter
	ipc   *sim.Scalar
}

// New registers stats during construction and drives them later: clean.
func New(r *sim.Registry) *model {
	m := &model{}
	m.insts = r.Counter("insts", "retired instructions")
	m.ipc = r.Scalar("ipc", "instructions per cycle")
	r.Formula("frac", "retired fraction", func() float64 { return 0 })
	return m
}

func (m *model) retire(n uint64) {
	m.insts.Inc(n)
	m.ipc.Set(float64(n))
}

// tick registers mid-simulation and drops the result.
func (m *model) tick(r *sim.Registry) {
	r.Counter("late", "registered mid-run") // want `outside a constructor` `is discarded`
}

// newDup registers two stats under one name.
func newDup(r *sim.Registry) (*sim.Counter, *sim.Counter) {
	a := r.Counter("hits", "cache hits")
	b := r.Counter("hits", "cache hits again") // want `duplicate stat name`
	return a, b
}

// newDiscard throws registrations away.
func newDiscard(r *sim.Registry) {
	r.Histogram("lat", "latency")   // want `is discarded`
	_ = r.Scalar("drop", "dropped") // want `assigned to _`
}

type dead struct{ s *sim.Scalar }

// newDead assigns a stat to a field nothing ever drives.
func newDead(r *sim.Registry) *dead {
	d := &dead{}
	d.s = r.Scalar("dead", "never driven") // want `never referenced again`
	return d
}
