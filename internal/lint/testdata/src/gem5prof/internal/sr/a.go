// Fixtures for the statreg analyzer: the stats-registration discipline
// around sim.Registry.
package sr

import (
	"fmt"

	"gem5prof/internal/sim"
)

type model struct {
	insts *sim.Counter
	ipc   *sim.Scalar
}

// New registers stats during construction and drives them later: clean.
func New(r *sim.Registry) *model {
	m := &model{}
	m.insts = r.Counter("insts", "retired instructions")
	m.ipc = r.Scalar("ipc", "instructions per cycle")
	r.Formula("frac", "retired fraction", func() float64 { return 0 })
	return m
}

func (m *model) retire(n uint64) {
	m.insts.Inc(n)
	m.ipc.Set(float64(n))
}

// tick registers mid-simulation and drops the result.
func (m *model) tick(r *sim.Registry) {
	r.Counter("late", "registered mid-run") // want `outside a constructor` `is discarded`
}

// newDup registers two stats under one name.
func newDup(r *sim.Registry) (*sim.Counter, *sim.Counter) {
	a := r.Counter("hits", "cache hits")
	b := r.Counter("hits", "cache hits again") // want `duplicate stat name`
	return a, b
}

// newDiscard throws registrations away.
func newDiscard(r *sim.Registry) {
	r.Histogram("lat", "latency")   // want `is discarded`
	_ = r.Scalar("drop", "dropped") // want `assigned to _`
}

// newPerCore replicates a stat family per core, the directory shape: the
// name must derive from the loop variable or the second iteration panics
// in Registry.add.
func newPerCore(r *sim.Registry, cores int) []*sim.Counter {
	getS := make([]*sim.Counter, cores)
	for i := range getS {
		getS[i] = r.Counter(fmt.Sprintf("core%d.getS", i), "per-core GetS") // clean: name varies per iteration
	}
	const name = "dir." + "getS"
	for i := range getS {
		getS[i] = r.Counter(name, "directory GetS") // want `registered inside a loop with constant name`
	}
	for i := 0; i < cores; i++ {
		getS[i] = r.Counter("dir.getM", "directory GetM") // want `registered inside a loop with constant name`
	}
	return getS
}

// newLoopClosure builds a per-core constructor closure in a loop; the
// closure body is not flagged (it need not run once per iteration), and
// calling it with a varying name is clean.
func newLoopClosure(r *sim.Registry, cores int) []*sim.Counter {
	out := make([]*sim.Counter, cores)
	for i := range out {
		mk := func(name string) *sim.Counter { return r.Counter(name, "per-core") }
		out[i] = mk(fmt.Sprintf("core%d.invals", i))
	}
	return out
}

type dead struct{ s *sim.Scalar }

// newDead assigns a stat to a field nothing ever drives.
func newDead(r *sim.Registry) *dead {
	d := &dead{}
	d.s = r.Scalar("dead", "never driven") // want `never referenced again`
	return d
}
