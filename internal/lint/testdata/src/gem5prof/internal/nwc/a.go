// Fixtures for the nowallclock analyzer: host entropy inside the
// simulator core.
package nwc

import (
	"math/rand"
	"os"
	"time"
)

// Bad reaches for every kind of host entropy.
func Bad() int64 {
	t := time.Now()                // want `time\.Now injects wall-clock time`
	_ = os.Getenv("HOME")          // want `os\.Getenv injects process environment`
	return t.Unix() + rand.Int63() // want `global math/rand\.Int63 draws from host-seeded shared state`
}

// Good derives all variation from an explicit seed.
func Good(seed int64) int64 {
	r := rand.New(rand.NewSource(seed))
	return r.Int63()
}

// Allowed waives a wall-clock read with an annotation.
func Allowed() time.Time {
	//lint:allow nowallclock progress logging only, never simulated state
	return time.Now()
}

// Durations are data, not clock reads.
func Good2(d time.Duration) time.Duration {
	return d * 2
}
