// Fixtures for the pastsched analyzer: Schedule/Reschedule tick
// arguments that are or are not provably current-tick-derived.
package ps

import "gem5prof/internal/sim"

type waiter struct {
	ev   *sim.Event
	when sim.Tick
}

// Good schedules at Now plus a latency.
func Good(sys *sim.System, e *sim.Event) {
	sys.Schedule(e, sys.Now()+5)
}

// GoodParam forwards the obligation to its caller.
func GoodParam(sys *sim.System, e *sim.Event, when sim.Tick) {
	sys.Schedule(e, when)
}

// GoodLocal derives a local from Now.
func GoodLocal(sys *sim.System, e *sim.Event) {
	t := sys.Now() + 10
	sys.Schedule(e, t)
}

// GoodGuard establishes when >= Now with the deschedule-or-fire guard.
func GoodGuard(sys *sim.System, e *sim.Event, w *waiter) {
	when := w.when
	if when < sys.Now() {
		return
	}
	sys.Schedule(e, when)
}

// Startup may schedule absolute ticks: sim time is still 0.
func (w *waiter) Startup(sys *sim.System) {
	sys.Schedule(w.ev, 0)
}

// BadLiteral schedules an absolute tick mid-run.
func BadLiteral(sys *sim.System, e *sim.Event) {
	sys.Schedule(e, 100) // want `not provably derived from the current tick`
}

// BadSub subtracts from Now: can run backwards.
func BadSub(sys *sim.System, e *sim.Event) {
	sys.Schedule(e, sys.Now()-1) // want `not provably derived from the current tick`
}

// BadField reschedules at an unguarded struct field.
func BadField(sys *sim.System, e *sim.Event, w *waiter) {
	sys.Reschedule(e, w.when) // want `not provably derived from the current tick`
}

// Allowed waives an absolute tick with an annotation.
func Allowed(sys *sim.System, e *sim.Event) {
	//lint:allow pastsched checkpoint restore replays a recorded absolute tick
	sys.Schedule(e, 100)
}
