// Package ipflowneg mirrors ipflow's call shapes with deterministic
// inputs: sim time instead of wall clock, constants instead of env
// reads, sorted keys instead of raw map order. It asserts the
// summaries do not over-taint — the package must stay diagnostic-free.
package ipflowneg

import (
	"fmt"
	"os"
	"sort"

	"gem5prof/internal/sim"
)

// --- sim time through the same two-helper chain ---

func now(s *sim.System) float64 { return float64(s.Now()) }

func scaled(s *sim.System) float64 { return now(s) / 1e9 }

func recordTime(r *sim.Registry, s *sim.System) {
	r.Scalar("boot", "boot time").Set(scaled(s))
}

// --- constant from a closure ---

func recordConst(r *sim.Registry) {
	name := func() string { return "node0" }
	r.Counter(name(), "per-node events")
}

// --- map keys sorted before the interface hop ---

type chooser interface{ Pick(s string) string }

func recordSorted(r *sim.Registry, m map[string]int, c chooser) {
	keys := make([]string, 0, len(m))
	//lint:deterministic keys are sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 0 {
		r.Histogram(c.Pick(keys[0]), "per-key latency")
	}
}

// --- deterministic symbol naming into the trace arena ---

func symName(i int) string { return fmt.Sprintf("fn_%d", i) }

func registerSym(tr *sim.Tracer, i int) int {
	return tr.RegisterFunc(symName(i), 64, 0)
}

// --- value-formatted (not pointer-formatted) report line ---

func dump(v int, path string) error {
	line := fmt.Sprintf("cursor at %d\n", v)
	return os.WriteFile(path, []byte(line), 0o644)
}
