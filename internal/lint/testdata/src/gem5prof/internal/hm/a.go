// Clean fixture for the sinkdiscipline analyzer: a Sink interface, an
// encoder, and decoders fully in lockstep with gem5prof/internal/ring.
package hm

import "gem5prof/internal/ring"

// Sink mirrors ring.Op one method per constant.
type Sink interface {
	FetchBlock(addr uint64, size uint16, uops uint32)
	Branch(pc, target uint64, taken bool)
	Data(addr uint64, write bool)
}

type enc struct{ out []ring.Record }

func (e *enc) FetchBlock(addr uint64, size uint16, uops uint32) {
	e.out = append(e.out, ring.Record{Op: ring.OpFetch, Addr: addr, Size: size, Uops: uops})
}

func (e *enc) Branch(pc, target uint64, taken bool) {
	e.out = append(e.out, ring.Record{Op: ring.OpBranch, Addr: pc, Aux: target})
}

func (e *enc) Data(addr uint64, write bool) {
	e.out = append(e.out, ring.Record{Op: ring.OpData, Addr: addr})
}

// Apply covers every Op explicitly.
func Apply(rec ring.Record) int {
	switch rec.Op {
	case ring.OpFetch:
		return 1
	case ring.OpBranch:
		return 2
	case ring.OpData:
		return 3
	}
	return 0
}

// Kind covers the rest with a default.
func Kind(op ring.Op) string {
	switch op {
	case ring.OpFetch:
		return "fetch"
	default:
		return "other"
	}
}

// Dispatch is the callback-table form of a decoder: handlers bound as
// closures over the encoder, one per Op.
func Dispatch(e *enc) map[ring.Op]func(ring.Record) {
	return map[ring.Op]func(ring.Record){
		ring.OpFetch:  func(r ring.Record) { e.FetchBlock(r.Addr, r.Size, r.Uops) },
		ring.OpBranch: func(r ring.Record) { e.Branch(r.Addr, r.Aux, true) },
		ring.OpData:   func(r ring.Record) { e.Data(r.Addr, false) },
	}
}

// registry is filled dynamically: an empty table carries no coverage
// claim and must not be flagged.
var registry = map[ring.Op]func(ring.Record){}

// Register installs one handler at runtime.
func Register(op ring.Op, h func(ring.Record)) {
	registry[op] = h
}
