// Fixtures for the shardpost analyzer: direct queue-backend scheduling
// (rule 1) and EnableSharding quanta without QuantumFor provenance (rule 2).
package sp

import "gem5prof/internal/sim"

type rig struct {
	cfg sim.ShardConfig
}

// GoodSystemPost schedules through the System: routed per domain.
func GoodSystemPost(sys *sim.System, e *sim.Event) {
	sys.Schedule(e, 100)
	sys.Reschedule(e, 200)
}

// BadQueuePost schedules directly on the backend, skipping mailbox routing.
func BadQueuePost(sys *sim.System, e *sim.Event) {
	sys.Queue().Schedule(e, 100) // want `bypasses the System's cross-shard mailbox routing`
}

// BadConcretePost hits a concrete backend type.
func BadConcretePost(q *sim.HeapQueue, cq *sim.CalendarQueue, e *sim.Event) {
	q.Schedule(e, 5)    // want `bypasses the System's cross-shard mailbox routing`
	cq.Reschedule(e, 7) // want `bypasses the System's cross-shard mailbox routing`
}

// AllowedQueuePost waives a direct insert with an annotation.
func AllowedQueuePost(q sim.Queue, e *sim.Event) {
	//lint:allow shardpost single-shard replay harness owns the whole queue
	q.Schedule(e, 5)
}

// GoodQuantumLiteral derives the quantum at the call site.
func GoodQuantumLiteral(sys *sim.System, rowHit sim.Tick) {
	sys.EnableSharding(sim.ShardConfig{Shards: 2, Quantum: sim.QuantumFor(rowHit)})
}

// GoodQuantumLocal derives a local first.
func GoodQuantumLocal(sys *sim.System, rowHit sim.Tick) {
	q := sim.QuantumFor(rowHit)
	sys.EnableSharding(sim.ShardConfig{Shards: 2, Quantum: q})
}

// GoodQuantumParam forwards the obligation to the caller.
func GoodQuantumParam(sys *sim.System, quantum sim.Tick) {
	sys.EnableSharding(sim.ShardConfig{Shards: 2, Quantum: quantum})
}

// GoodConfigParam delegates the whole config.
func GoodConfigParam(sys *sim.System, cfg sim.ShardConfig) {
	sys.EnableSharding(cfg)
}

// GoodConfigVar builds a local config with a derived quantum.
func GoodConfigVar(sys *sim.System, rowHit sim.Tick) {
	cfg := sim.ShardConfig{Shards: 2, Quantum: sim.QuantumFor(rowHit)}
	sys.EnableSharding(cfg)
}

// GoodFieldWrite assigns the quantum field from QuantumFor.
func GoodFieldWrite(sys *sim.System, rowHit sim.Tick) {
	var cfg sim.ShardConfig
	cfg = sim.ShardConfig{Shards: 2}
	cfg.Quantum = sim.QuantumFor(rowHit)
	sys.EnableSharding(cfg)
}

// BadQuantumLiteral hardcodes a raw tick count.
func BadQuantumLiteral(sys *sim.System) {
	sys.EnableSharding(sim.ShardConfig{Shards: 2, Quantum: 15000}) // want `not provably derived from sim.QuantumFor`
}

// BadQuantumLocal launders the raw constant through a local.
func BadQuantumLocal(sys *sim.System) {
	q := sim.Tick(15000)
	sys.EnableSharding(sim.ShardConfig{Shards: 2, Quantum: q}) // want `not provably derived from sim.QuantumFor`
}

// BadConfigVar builds a local config with a raw quantum.
func BadConfigVar(sys *sim.System) {
	cfg := sim.ShardConfig{Shards: 2, Quantum: 15000} // want `not provably derived from sim.QuantumFor`
	sys.EnableSharding(cfg)
}

// BadFieldWrite overwrites a derived quantum with a raw one.
func BadFieldWrite(sys *sim.System, rowHit sim.Tick) {
	cfg := sim.ShardConfig{Shards: 2, Quantum: sim.QuantumFor(rowHit)}
	cfg.Quantum = 15000 // want `not provably derived from sim.QuantumFor`
	sys.EnableSharding(cfg)
}

// BadOpaqueConfig pulls the config from a struct field: provenance invisible.
func BadOpaqueConfig(sys *sim.System, r *rig) {
	cfg := r.cfg
	sys.EnableSharding(cfg) // want `Quantum is not visible in this function`
}

// AllowedQuantum waives a raw quantum with an annotation.
func AllowedQuantum(sys *sim.System) {
	//lint:allow shardpost barrier safety proven offline for this fixed config
	sys.EnableSharding(sim.ShardConfig{Shards: 2, Quantum: 15000})
}

// GoodBusLookahead derives both per-edge floors at the call site.
func GoodBusLookahead(sys *sim.System, rowHit, busLat sim.Tick) {
	sys.EnableSharding(sim.ShardConfig{
		Shards:       5,
		Quantum:      sim.QuantumFor(rowHit),
		BusLookahead: sim.QuantumFor(busLat),
	})
}

// GoodBusLookaheadZero leaves the group-to-mem edge unfloored via the
// conditional sim.Tick(0) idiom: a zero floor grants nothing, always safe.
func GoodBusLookaheadZero(sys *sim.System, rowHit, busLat sim.Tick) {
	look := sim.Tick(0)
	if busLat > 0 {
		look = sim.QuantumFor(busLat)
	}
	sys.EnableSharding(sim.ShardConfig{
		Shards:       5,
		Quantum:      sim.QuantumFor(rowHit),
		BusLookahead: look,
	})
}

// BadBusLookahead hardcodes a raw group-to-mem floor.
func BadBusLookahead(sys *sim.System, rowHit sim.Tick) {
	sys.EnableSharding(sim.ShardConfig{
		Shards:       5,
		Quantum:      sim.QuantumFor(rowHit),
		BusLookahead: 2000, // want `BusLookahead is not provably derived from sim.QuantumFor`
	})
}

// BadBusLookaheadWrite overwrites a derived floor with a raw one.
func BadBusLookaheadWrite(sys *sim.System, rowHit, busLat sim.Tick) {
	cfg := sim.ShardConfig{Shards: 5, Quantum: sim.QuantumFor(rowHit)}
	cfg.BusLookahead = 2000 // want `BusLookahead is not provably derived from sim.QuantumFor`
	sys.EnableSharding(cfg)
}

// BadClosurePost hides the backend post inside a returned callback.
func BadClosurePost(sys *sim.System, e *sim.Event) func() {
	return func() {
		sys.Queue().Schedule(e, 100) // want `bypasses the System's cross-shard mailbox routing`
	}
}

// BadMethodValue captures the backend's Schedule as a callback value:
// every later invocation bypasses the mailbox.
func BadMethodValue(q *sim.HeapQueue) func(*sim.Event, sim.Tick) {
	return q.Schedule // want `capturing Schedule of a sim queue backend as a method value`
}

// GoodMethodValue captures the System's method: still mailbox-routed.
func GoodMethodValue(sys *sim.System) func(*sim.Event, sim.Tick) {
	return sys.Schedule
}

// AllowedMethodValue waives a backend capture with an annotation.
func AllowedMethodValue(q *sim.HeapQueue) func(*sim.Event, sim.Tick) {
	//lint:allow shardpost replay harness owns the whole queue
	return q.Schedule
}

// hook is a package-level callback: rule 1 must reach initializer
// closures that belong to no FuncDecl.
var hook = func(q *sim.CalendarQueue, e *sim.Event) {
	q.Schedule(e, 9) // want `bypasses the System's cross-shard mailbox routing`
}

// GoodClosureQuantum delegates the floor to the closure's own parameter:
// the obligation moves to whoever invokes the callback.
func GoodClosureQuantum(sys *sim.System) func(sim.Tick) {
	return func(quantum sim.Tick) {
		sys.EnableSharding(sim.ShardConfig{Shards: 2, Quantum: quantum})
	}
}

// BadClosureQuantum hardcodes the floor inside the callback.
func BadClosureQuantum(sys *sim.System) func() {
	return func() {
		sys.EnableSharding(sim.ShardConfig{Shards: 2, Quantum: 4096}) // want `not provably derived from sim.QuantumFor`
	}
}

// GoodClosureQuantumLocal derives a local inside the closure.
func GoodClosureQuantumLocal(sys *sim.System, rowHit sim.Tick) func() {
	return func() {
		q := sim.QuantumFor(rowHit)
		sys.EnableSharding(sim.ShardConfig{Shards: 2, Quantum: q})
	}
}
