// Package fpsum exercises the floatorder analyzer: float accumulation
// whose iteration order is map-derived — directly, under a
// //lint:deterministic annotation (which claims commutativity that
// float addition does not have), split across a call into a persistent
// accumulator, and laundered through a slice built in map order.
package fpsum

import "gem5prof/internal/sim"

// Direct form: the Fig. 15 bug.
func fracSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation ordered by map iteration"
	}
	return sum
}

// The annotation waives detmap/detflow, not floatorder: it claims the
// loop body commutes, and float addition does not.
func fracSumAnnotated(m map[string]float64) float64 {
	var sum float64
	//lint:deterministic all values positive, total is what matters
	for _, v := range m {
		sum += v // want "float accumulation ordered by map iteration"
	}
	return sum
}

// Split across a call: Histogram.Observe accumulates into a persistent
// float (the callee's FloatAcc bit), and the caller supplies the
// map-ordered iteration context.
func observeAll(h *sim.Histogram, m map[uint64]float64) {
	for _, v := range m {
		h.Observe(v) // want "float accumulation ordered by map iteration"
	}
}

// total is order-sensitive over its argument (RangeSum): handing it a
// slice whose element order is map-derived reproduces the bug inside
// the callee.
func total(vals []float64) float64 {
	var t float64
	for _, v := range vals {
		t += v
	}
	return t
}

func orderedTotal(m map[string]float64) float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	return total(vals) // want "float accumulation ordered by map iteration"
}
