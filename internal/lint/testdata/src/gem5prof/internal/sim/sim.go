// Package sim is a linttest stub of the real simulator core: just enough
// surface (Tick, System scheduling, Registry stats) for the pastsched and
// statreg fixtures to type-check. The analyzers match these by package
// and type name, exactly as they match the real package.
package sim

// Tick is simulated time.
type Tick uint64

// Event is a schedulable event.
type Event struct{ Name string }

// System owns the event queue.
type System struct{ now Tick }

// Now returns the current simulated time.
func (s *System) Now() Tick { return s.now }

// Schedule enqueues e at absolute tick when.
func (s *System) Schedule(e *Event, when Tick) {}

// Reschedule moves e to absolute tick when.
func (s *System) Reschedule(e *Event, when Tick) {}

// Scalar is a settable stat.
type Scalar struct{ v float64 }

// Set updates the stat.
func (s *Scalar) Set(v float64) { s.v = v }

// Add accumulates into the stat.
func (s *Scalar) Add(v float64) { s.v += v }

// Counter is a monotonically increasing stat.
type Counter struct{ n uint64 }

// Inc adds d.
func (c *Counter) Inc(d uint64) { c.n += d }

// Histogram is a distribution stat.
type Histogram struct {
	sum float64
	n   int
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.sum += v
	h.n++
}

// Formula is a derived stat computed at dump time.
type Formula struct{}

// Registry names and owns stats.
type Registry struct{}

// Scalar registers a scalar stat.
func (r *Registry) Scalar(name, desc string) *Scalar { return &Scalar{} }

// Counter registers a counter stat.
func (r *Registry) Counter(name, desc string) *Counter { return &Counter{} }

// Histogram registers a histogram stat.
func (r *Registry) Histogram(name, desc string) *Histogram { return &Histogram{} }

// Formula registers a derived stat.
func (r *Registry) Formula(name, desc string, f func() float64) *Formula { return &Formula{} }
