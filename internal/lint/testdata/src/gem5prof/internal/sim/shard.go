package sim

// Queue is the event-queue backend interface (stubbed for shardpost).
type Queue interface {
	Schedule(e *Event, when Tick)
	Reschedule(e *Event, when Tick)
}

// HeapQueue is the binary-heap backend.
type HeapQueue struct{}

// Schedule enqueues e at absolute tick when.
func (q *HeapQueue) Schedule(e *Event, when Tick) {}

// Reschedule moves e to absolute tick when.
func (q *HeapQueue) Reschedule(e *Event, when Tick) {}

// CalendarQueue is the calendar backend.
type CalendarQueue struct{}

// Schedule enqueues e at absolute tick when.
func (q *CalendarQueue) Schedule(e *Event, when Tick) {}

// Reschedule moves e to absolute tick when.
func (q *CalendarQueue) Reschedule(e *Event, when Tick) {}

// ShardConfig configures sharded execution.
type ShardConfig struct {
	Shards       int
	Quantum      Tick
	BusLookahead Tick
	Cores        int
	NewQueue     func() Queue
	Log          func(string)
}

// QuantumFor blesses a cross-domain latency as a barrier quantum.
func QuantumFor(minLatency Tick) Tick { return minLatency }

// EnableSharding switches the system to the sharded engine.
func (s *System) EnableSharding(cfg ShardConfig) {}

// Queue exposes the backend (test/debug surface).
func (s *System) Queue() Queue { return &HeapQueue{} }

// Domain identifies one shard domain.
type Domain uint8

// Shard domains: the memory side runs on the worker goroutine, everything
// else is coordinator-affine.
const (
	DomainCPU Domain = iota
	DomainMem
	DomainDev
)

// DomainForCore maps a core index to its private domain.
func DomainForCore(i int) Domain { return Domain(3 + i%3) }

// DomainView returns a scheduling facade pinned to domain d.
func (s *System) DomainView(d Domain) *System { return s }

// Tracer records execution into the trace arena (stub).
type Tracer struct{}

// RegisterFunc interns a guest function symbol.
func (t *Tracer) RegisterFunc(name string, size uint32, flags int) int { return 0 }

// Call records one call event.
func (t *Tracer) Call(fn int) {}

// Data records one memory access.
func (t *Tracer) Data(addr uint64, size uint32, write bool) {}
