package sim

// Queue is the event-queue backend interface (stubbed for shardpost).
type Queue interface {
	Schedule(e *Event, when Tick)
	Reschedule(e *Event, when Tick)
}

// HeapQueue is the binary-heap backend.
type HeapQueue struct{}

// Schedule enqueues e at absolute tick when.
func (q *HeapQueue) Schedule(e *Event, when Tick) {}

// Reschedule moves e to absolute tick when.
func (q *HeapQueue) Reschedule(e *Event, when Tick) {}

// CalendarQueue is the calendar backend.
type CalendarQueue struct{}

// Schedule enqueues e at absolute tick when.
func (q *CalendarQueue) Schedule(e *Event, when Tick) {}

// Reschedule moves e to absolute tick when.
func (q *CalendarQueue) Reschedule(e *Event, when Tick) {}

// ShardConfig configures sharded execution.
type ShardConfig struct {
	Shards       int
	Quantum      Tick
	BusLookahead Tick
	Cores        int
	NewQueue     func() Queue
	Log          func(string)
}

// QuantumFor blesses a cross-domain latency as a barrier quantum.
func QuantumFor(minLatency Tick) Tick { return minLatency }

// EnableSharding switches the system to the sharded engine.
func (s *System) EnableSharding(cfg ShardConfig) {}

// Queue exposes the backend (test/debug surface).
func (s *System) Queue() Queue { return &HeapQueue{} }
