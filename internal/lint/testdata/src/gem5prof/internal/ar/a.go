// Fixtures for the atomicring analyzer: torn mixed access and false
// sharing between hot atomic counters.
package ar

import "sync/atomic"

// unpadded puts producer and consumer indices on one cache line.
type unpadded struct {
	head atomic.Uint64
	tail atomic.Uint64 // want `share a cache line`
}

// padded separates them with a cache line of padding.
type padded struct {
	head atomic.Uint64
	_    [64]byte
	tail atomic.Uint64
}

// coldBool is exempt: parked flags are edge-path-only.
type coldBool struct {
	head   atomic.Uint64
	parked atomic.Bool
	done   atomic.Bool
}

// counter mixes atomic and plain access to n.
type counter struct {
	n    uint64
	name string
}

// NewCounter may touch n plainly: the value is not yet shared.
func NewCounter(name string) *counter {
	c := &counter{name: name}
	c.n = 0
	return c
}

// Inc is the atomic writer.
func (c *counter) Inc() {
	atomic.AddUint64(&c.n, 1)
}

// Read tears.
func (c *counter) Read() uint64 {
	return c.n // want `plain access can tear`
}

// Peek waives the plain read with an annotation.
func (c *counter) Peek() uint64 {
	//lint:allow atomicring single-threaded snapshot taken after the join
	return c.n
}

// Name never conflicts: name is not atomically accessed.
func (c *counter) Name() string {
	return c.name
}
