// Broken fixture for the sinkdiscipline analyzer: the Sink interface,
// the encoder, and a decoder have all drifted from ring.Op.
package hmbad

import "gem5prof/internal/ring"

// Sink is missing a Data method and grew one with no Op behind it.
type Sink interface { // want `OpData have no corresponding Sink method`
	FetchBlock(addr uint64)
	Branch(pc uint64)
	Flush() // want `no corresponding ring\.Op constant`
}

type enc struct{ out []ring.Record }

// FetchBlock is the only encoder: OpBranch and OpData records can never
// be produced here.
func (e *enc) FetchBlock(addr uint64) {
	e.out = append(e.out, ring.Record{Op: ring.OpFetch, Addr: addr}) // want `never emits OpBranch, OpData`
}

// Apply drops OpData records silently.
func Apply(rec ring.Record) int {
	switch rec.Op { // want `no case for OpData`
	case ring.OpFetch:
		return 1
	case ring.OpBranch:
		return 2
	}
	return 0
}

// handlers is a callback-table decoder with a hole: OpData records hit a
// nil handler.
var handlers = map[ring.Op]func(ring.Record){ // want `handler table has no entry for OpData`
	ring.OpFetch:  func(ring.Record) {},
	ring.OpBranch: func(ring.Record) {},
}
