// Package shescneg is shesc's negative twin: the same topology with
// every crossing routed through the System mailbox, plus same-side
// interactions that must not be mistaken for escapes.
package shescneg

import "gem5prof/internal/sim"

// DRAM lives on the memory shard.
type DRAM struct {
	rows int
	done *sim.Event
}

// EventDomain announces DRAM's shard side.
func (d *DRAM) EventDomain() sim.Domain { return sim.DomainMem }

// Tick mutates only mem-side state and posts completion through the
// mailbox — the sanctioned crossing.
func (d *DRAM) Tick(s *sim.System, when sim.Tick) {
	d.rows++
	s.Schedule(d.done, when)
}

// Core is coordinator-side.
type Core struct{ issued int }

// EventDomain announces Core's shard side.
func (c *Core) EventDomain() sim.Domain { return sim.DomainCPU }

// Decoder shares Core's side; calling it directly is fine.
type Decoder struct{ width int }

// EventDomain announces Decoder's shard side.
func (dec *Decoder) EventDomain() sim.Domain { return sim.DomainCPU }

// Decode is a same-side helper call.
func (dec *Decoder) Decode(x uint64) uint64 { return x >> uint(dec.width) }

// Issue posts the memory request through the mailbox instead of
// touching DRAM directly.
func (c *Core) Issue(s *sim.System, dec *Decoder, req *sim.Event, addr uint64) {
	c.issued++
	_ = dec.Decode(addr)
	s.Schedule(req, sim.Tick(addr))
}

// coordinator views on separate variables never join domains.
func split(s *sim.System) (*sim.System, *sim.System) {
	cpu := s.DomainView(sim.DomainCPU)
	dev := s.DomainView(sim.DomainDev)
	return cpu, dev
}
