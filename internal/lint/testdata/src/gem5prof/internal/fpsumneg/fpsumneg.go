// Package fpsumneg is fpsum's negative twin: the same accumulation
// shapes made deterministic by sorting, by a pure (local-accumulator)
// helper, or by an explicit //lint:allow floatorder waiver. It must
// stay diagnostic-free — over-tainting any of these is a precision
// regression.
package fpsumneg

import "sort"

// Keys sorted before the sum: the canonical fix for Fig. 15.
func sortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	//lint:deterministic keys are sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// dot keeps its accumulator local: it is a pure function of its
// arguments, so per-iteration calls from a map range are fine.
func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func nearest(m map[int][]float64, probe []float64) int {
	best := -1
	bestD := 1e300
	//lint:deterministic distances are distinct by construction, min commutes
	for id, vec := range m {
		if d := dot(vec, probe); d < bestD {
			best, bestD = id, d
		}
	}
	return best
}

// An explicit waiver is the only annotation floatorder honors.
func waivedSum(m map[string]float64) float64 {
	var sum float64
	//lint:allow floatorder fixture exercises the waiver path
	for _, v := range m {
		sum += v
	}
	return sum
}

// Summing a slice whose order the caller fixed is fine even through the
// order-sensitive helper.
func sortedTotal(m map[string]float64) float64 {
	var vals []float64
	//lint:deterministic values are sorted before summing
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	var t float64
	for _, v := range vals {
		t += v
	}
	return t
}
