// Package shesc exercises the shardescape analyzer: mutable state
// reachable from more than one shard domain without passing through the
// System mailbox. Domain roots come from EventDomain tags and
// DomainView calls, exactly as in the real engine.
package shesc

import "gem5prof/internal/sim"

// lastAddr is coordinator-visible package state.
var lastAddr uint64

// DRAM lives on the memory shard.
type DRAM struct{ rows int }

// EventDomain announces DRAM's shard side.
func (d *DRAM) EventDomain() sim.Domain { return sim.DomainMem }

// Tick runs on the mem worker; writing package state from it races
// every coordinator-side reader.
func (d *DRAM) Tick(addr uint64) {
	lastAddr = addr // want "mem-side method writes package-level lastAddr"
}

// Core is coordinator-side.
type Core struct{ issued int }

// EventDomain announces Core's shard side.
func (c *Core) EventDomain() sim.Domain { return sim.DomainCPU }

// Fetch calls straight across the shard boundary.
func (c *Core) Fetch(d *DRAM, addr uint64) {
	d.Tick(addr) // want "direct call of DRAM.Tick"
}

// route binds views of both sides to one variable.
func route(s *sim.System, useMem bool) *sim.System {
	v := s.DomainView(sim.DomainCPU)
	if useMem {
		v = s.DomainView(sim.DomainMem) // want "v is reachable from both the mem shard and a coordinator-side domain"
	}
	return v
}
