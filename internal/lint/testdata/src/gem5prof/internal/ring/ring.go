// Package ring is a linttest stub of the trace-record ring: the Op and
// Record declarations the sinkdiscipline fixtures encode, decode, and
// check against. Record is exactly 32 bytes under gc/amd64 and
// pointer-free, like the real one.
package ring

// Op tags what a Record describes.
type Op uint8

// The record kinds.
const (
	OpFetch Op = iota
	OpBranch
	OpData
)

// Record is one trace record: 1+1+2+4+8+8+8 = 32 bytes.
type Record struct {
	Op    Op
	Flags uint8
	Size  uint16
	Uops  uint32
	Addr  uint64
	Aux   uint64
	Tick  uint64
}
