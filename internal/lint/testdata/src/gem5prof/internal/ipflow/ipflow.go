// Package ipflow launders each nondeterminism class through two to
// three call hops — plain helpers, a closure, an interface method —
// into a determinism-critical sink. Every diagnostic here requires the
// interprocedural summaries: no single function contains both the
// source and the sink.
package ipflow

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"gem5prof/internal/sim"
)

// --- wallclock laundered through two helpers into a stat ---

func now() float64 { return float64(time.Now().UnixNano()) }

func scaled() float64 { return now() / 1e9 }

func recordWall(r *sim.Registry) {
	s := r.Scalar("boot", "boot time")
	s.Set(scaled()) // want "value derived from wall-clock time reaches stat registration"
}

// --- environment read inside a closure, called at a stat registration ---

func recordEnv(r *sim.Registry) {
	name := func() string { return os.Getenv("G5_NODE") }
	r.Counter(name(), "per-node events") // want "value derived from the process environment reaches stat registration"
}

// --- map iteration order through an interface method hop ---

type chooser interface{ Pick(s string) string }

func recordMap(r *sim.Registry, m map[string]int, c chooser) {
	first := ""
	for k := range m {
		first = k
		break
	}
	r.Histogram(c.Pick(first), "per-key latency") // want "value derived from map iteration order reaches stat registration"
}

// --- global rand through a helper into the trace arena ---

func symName() string { return fmt.Sprint(rand.Int()) }

func registerSym(tr *sim.Tracer) int {
	return tr.RegisterFunc(symName(), 64, 0) // want "value derived from host-seeded global rand reaches the trace arena"
}

// --- formatted pointer into a report writer ---

func dump(v *int, path string) error {
	line := fmt.Sprintf("cursor at %p\n", v)
	return os.WriteFile(path, []byte(line), 0o644) // want "value derived from a formatted host pointer reaches a report writer"
}

// --- environment into a checkpoint encoder (module-local sink name) ---

type image struct{ data []byte }

// Serialize writes the image; the name marks it a checkpoint encoder.
func (im *image) Serialize(tag string) error { return nil }

func envSuffix() string { return os.Getenv("G5_HOST") }

func snapshot(im *image, host string) error {
	return im.Serialize(host + envSuffix()) // want "value derived from the process environment reaches a checkpoint encoder"
}
