// A package outside the gem5prof module path: detmap and nowallclock
// must both stay silent here regardless of content.
package othermod

import "time"

// Sum ranges over a map and reads the wall clock; neither is in scope.
func Sum(m map[string]int) int64 {
	n := int64(0)
	for _, v := range m {
		n += int64(v)
	}
	return n + time.Now().Unix()
}
