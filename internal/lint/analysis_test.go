package lint

import "testing"

func TestParseAnnotation(t *testing.T) {
	cases := []struct {
		text     string
		ok       bool
		analyzer string
		reason   string
	}{
		{"//lint:deterministic keys are sorted before use", true, "", "keys are sorted before use"},
		{"//lint:deterministic", true, "", ""},
		{"//lint:allow pastsched restore replays an absolute tick", true, "pastsched", "restore replays an absolute tick"},
		{"//lint:allow pastsched", true, "pastsched", ""},
		{"//lint:allow", true, "", ""},
		{"// lint:deterministic spaced prefix does not parse", false, "", ""},
		{"// plain comment", false, "", ""},
		{"//nolint:unrelated", false, "", ""},
	}
	for _, c := range cases {
		s, ok := parseAnnotation(c.text)
		if ok != c.ok || s.analyzer != c.analyzer || s.reason != c.reason {
			t.Errorf("parseAnnotation(%q) = {analyzer:%q reason:%q}, %v; want {analyzer:%q reason:%q}, %v",
				c.text, s.analyzer, s.reason, ok, c.analyzer, c.reason, c.ok)
		}
	}
}

func TestGoVersionFor(t *testing.T) {
	cases := map[string]string{
		"go1.24":       "go1.24",
		"go1.24.1":     "go1.24.1",
		"go1":          "go1",
		"":             "",
		"devel":        "",
		"go1.24-beta1": "",
	}
	for in, want := range cases {
		if got := goVersionFor(in); got != want {
			t.Errorf("goVersionFor(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAllAnalyzersNamed(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) != 10 {
		t.Errorf("expected 10 analyzers, have %d", len(seen))
	}
}
