package lint

// Call handling for the interprocedural engine: stdlib source/sink/
// sanitizer intrinsics, summary application with the slot convention
// (slot 0 = receiver, slot i+1 = parameter i), and the shardescape
// cross-domain call check.

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// evalCall models one call expression and returns the taint of its
// results.
func (w *fnWalker) evalCall(call *ast.CallExpr) taintSet {
	// Conversions: T(x) keeps x's taint.
	if tv, ok := w.s.info.Types[call.Fun]; ok && tv.IsType() {
		var t taintSet
		for _, a := range call.Args {
			t = t.union(w.eval(a))
		}
		return t
	}

	fn := calleeFunc(w.s.info, call)

	// Builtins and unresolvable callees (func values, closures stored in
	// variables): conservatively propagate operands plus the callee
	// value's own taint (a closure returning wall-clock time carries
	// "wallclock" as a value).
	if fn == nil {
		t := w.eval(call.Fun).clone()
		for _, a := range call.Args {
			t = t.union(w.eval(a))
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "len", "cap", "new", "make":
				if w.s.info.Uses[id] == nil || w.s.info.Uses[id].Pkg() == nil {
					return nil // len(m) etc. are order-independent
				}
			}
		}
		return t
	}

	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}

	// Sanitizers: sorting fixes an iteration order.
	if t, ok := w.sanitizerCall(fn, path, call); ok {
		return t
	}

	// Intrinsic entropy sources.
	if class := intrinsicSourceClass(fn, path); class != "" {
		return taintSet{}.with(class)
	}
	if path == "fmt" && formatArgsContain(call, "%p") {
		t := taintSet{}.with(classPtrFmt)
		for _, a := range call.Args {
			t = t.union(w.eval(a))
		}
		return t
	}

	// maps.Keys / maps.Values mint the order classes (sorting strips
	// them again, which is the slices.Sorted(maps.Keys(m)) idiom).
	if path == "maps" && (fn.Name() == "Keys" || fn.Name() == "Values") {
		t := taintSet{}.with(classFPOrder)
		if !w.s.sourceWaived(call.Pos(), "", "detmap", "detflow") {
			t = t.with(classMapOrder)
		}
		if w.s.sourceWaived(call.Pos(), "floatorder") {
			delete(t, classFPOrder)
		}
		for _, a := range call.Args {
			t = t.union(w.eval(a))
		}
		return t
	}

	// Shard-domain roots: sys.DomainView(d).
	if fn.Name() == "DomainView" && isSimPackageFunc(fn) {
		if len(call.Args) == 1 && domainConstSide(w.s.info, call.Args[0]) == "mem" {
			return taintSet{}.with(classDomMem)
		}
		return taintSet{}.with(classDomGroup)
	}
	if fn.Name() == "DomainForCore" && isSimPackageFunc(fn) {
		return taintSet{}.with(classDomGroup)
	}

	ops := w.operands(call)

	// The System's scheduling surface is the mailbox: domain taint does
	// not cross it, and its arguments reach no sink. Evaluate operands
	// for their side effects only.
	if isSystemScheduleCall(fn) {
		for _, op := range ops {
			if op != nil {
				w.eval(op)
			}
		}
		return nil
	}

	// Intrinsic sinks (stat registration, tracer, checkpoint encoders,
	// report writers).
	if kinds := intrinsicSinkSlots(fn, path); kinds != nil {
		w.applySinks(call, ops, kinds, fn)
	}

	// Cross-domain direct call (shardescape): a method of a mem-side
	// type invoked from a group-side method body, or vice versa.
	w.checkDomCall(call, fn)

	// Summary application.
	if sum := w.lookupSummary(fn); sum != nil {
		return w.applySummary(call, ops, sum, fn)
	}

	// No summary. Within the module (and its fixture mirrors) an absent
	// entry means the fixpoint found nothing: the call propagates no
	// taint. Outside it — stdlib helpers, interface methods — propagate
	// every operand conservatively.
	if strings.HasPrefix(path, "gem5prof") && !isInterfaceMethod(fn) && w.summaryKnown(fn) {
		for _, op := range ops {
			if op != nil {
				w.eval(op)
			}
		}
		return nil
	}
	var t taintSet
	for _, op := range ops {
		if op != nil {
			t = t.union(w.eval(op))
		}
	}
	return t.withoutDomains()
}

// operands maps a call to the slot convention: index 0 is the receiver
// expression (nil for plain calls), index i+1 is argument i.
func (w *fnWalker) operands(call *ast.CallExpr) []ast.Expr {
	ops := make([]ast.Expr, 1, len(call.Args)+1)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && !isPkgQualifier(w.s.info, sel.X) {
		if s, ok := w.s.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			ops[0] = sel.X
		}
	}
	ops = append(ops, call.Args...)
	return ops
}

// lookupSummary resolves a callee's summary: the current package's
// fixpoint table, or a dependency's facts.
func (w *fnWalker) lookupSummary(fn *types.Func) *FuncSummary {
	name := fn.FullName()
	if fn.Pkg() == w.s.ip.pkg {
		return w.s.table[name]
	}
	if w.s.ip.dep == nil || fn.Pkg() == nil {
		return nil
	}
	if ps := w.s.ip.dep(fn.Pkg().Path()); ps != nil {
		return ps.Funcs[name]
	}
	return nil
}

// summaryKnown reports whether the callee's package has been summarized
// at all (its own package, or a dependency with facts present) — the
// distinction between "summary says clean" and "never analyzed".
func (w *fnWalker) summaryKnown(fn *types.Func) bool {
	if fn.Pkg() == w.s.ip.pkg {
		return true
	}
	return w.s.ip.dep != nil && fn.Pkg() != nil && w.s.ip.dep(fn.Pkg().Path()) != nil
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// applySummary folds a callee summary into the caller: result taint from
// Sources and Prop slots, stores via Taints and Flows, sink hits via
// Sinks, order-sensitive float accumulation via FloatAcc/RangeSum.
func (w *fnWalker) applySummary(call *ast.CallExpr, ops []ast.Expr, sum *FuncSummary, fn *types.Func) taintSet {
	opTaint := make([]taintSet, len(ops))
	for i, op := range ops {
		if op != nil {
			opTaint[i] = w.eval(op)
		}
	}
	res := taintSet{}.with(sum.Sources...)
	for slot, p := range sum.Prop {
		if p && slot < len(opTaint) {
			res = res.union(opTaint[slot])
		}
	}
	for slot, kinds := range sum.Sinks {
		if slot < len(opTaint) {
			w.sinkHit(call, kinds, opTaint[slot], fn)
		}
	}
	for slot, classes := range sum.Taints {
		if slot < len(ops) && ops[slot] != nil {
			if obj := rootObj(w.s.info, ops[slot]); obj != nil {
				w.addTaint(obj, taintSet{}.with(classes...), call.Pos())
			}
		}
	}
	for _, f := range sum.Flows {
		src, dst := f[0], f[1]
		if src < len(opTaint) && dst < len(ops) && ops[dst] != nil {
			if obj := rootObj(w.s.info, ops[dst]); obj != nil {
				w.addTaint(obj, opTaint[src], call.Pos())
			}
		}
	}
	for slot, acc := range sum.FloatAcc {
		if acc && slot < len(opTaint) {
			w.floatAccHit(call, opTaint[slot], fn)
		}
	}
	for slot, rs := range sum.RangeSum {
		if rs && slot < len(opTaint) {
			w.rangeSumHit(call, opTaint[slot], fn)
		}
	}
	return res
}

// floatAccHit handles an operand reaching a persistent float accumulator
// inside the callee (FloatAcc). Calling it from an order-sensitive loop
// with a per-iteration value is the Fig. 15 bug split across a call
// (h.Observe(v) inside a map range). Param-derived operands propagate the
// FloatAcc bit; rloop-derived operands mean the callee completes an
// ordered accumulation over a caller-supplied collection (RangeSum).
func (w *fnWalker) floatAccHit(call *ast.CallExpr, t taintSet, fn *types.Func) {
	if t[classMRange] && len(w.mapLoops) > 0 {
		w.s.record(IPFinding{Pos: call.Pos(), Kind: "floatsum", Class: classFPOrder,
			Detail: calleeLabel(fn)})
	}
	if w.sum == nil {
		return
	}
	for c := range t {
		if n, ok := strings.CutPrefix(c, "param:"); ok {
			w.markSlot(&w.sum.FloatAcc, n)
		}
		if n, ok := strings.CutPrefix(c, "rloop:"); ok {
			w.markSlot(&w.sum.RangeSum, n)
		}
	}
}

// rangeSumHit handles an operand whose collection the callee iterates in
// order while float-accumulating (RangeSum). Passing a collection whose
// element order is map-derived (fporder) reproduces Fig. 15 inside the
// callee; a param-derived collection propagates the bit.
func (w *fnWalker) rangeSumHit(call *ast.CallExpr, t taintSet, fn *types.Func) {
	if t[classFPOrder] {
		w.s.record(IPFinding{Pos: call.Pos(), Kind: "floatsum", Class: classFPOrder,
			Detail: calleeLabel(fn)})
	}
	if w.sum == nil {
		return
	}
	for c := range t {
		if n, ok := strings.CutPrefix(c, "param:"); ok {
			w.markSlot(&w.sum.RangeSum, n)
		}
	}
}

// sinkHit records findings for entropy classes reaching a sink, and
// propagates sinkness to the caller's summary for param-derived
// operands.
func (w *fnWalker) sinkHit(call *ast.CallExpr, kinds []string, t taintSet, fn *types.Func) {
	if len(t) == 0 {
		return
	}
	for _, class := range entropyClasses {
		if !t[class] {
			continue
		}
		for _, kind := range kinds {
			w.s.record(IPFinding{Pos: call.Pos(), Kind: "sink", Class: class, Sink: kind,
				Detail: calleeLabel(fn)})
		}
	}
	if w.sum != nil {
		for c := range t {
			if n, ok := strings.CutPrefix(c, "param:"); ok {
				if slot, err := strconv.Atoi(n); err == nil {
					w.addSlotSink(slot, kinds)
				}
			}
		}
	}
}

// applySinks handles an intrinsic sink callee: every listed slot is a
// sink of the given kinds.
func (w *fnWalker) applySinks(call *ast.CallExpr, ops []ast.Expr, kinds map[int][]string, fn *types.Func) {
	for slot, ks := range kinds {
		if slot < len(ops) && ops[slot] != nil {
			w.sinkHit(call, ks, w.eval(ops[slot]), fn)
		}
	}
	// Variadic tail: a sink taking ... (fmt-style report writers) sinks
	// every remaining argument under the last declared slot's kinds.
	if tail, ok := kinds[-1]; ok {
		for i := 1; i < len(ops); i++ {
			if ops[i] != nil {
				w.sinkHit(call, tail, w.eval(ops[i]), fn)
			}
		}
	}
}

// checkDomCall flags a direct method call crossing shard sides: caller
// receiver tagged one side, callee receiver tagged the other, outside
// package sim (whose System is the sanctioned crossing).
func (w *fnWalker) checkDomCall(call *ast.CallExpr, fn *types.Func) {
	callerDom := w.recvDomain()
	if callerDom == "" {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Name() == "sim" {
		return
	}
	t := recvNamedType(fn)
	if t == nil {
		return
	}
	calleeDom := w.s.typeDomainOf(t)
	if calleeDom == "" || calleeDom == callerDom {
		return
	}
	w.s.record(IPFinding{Pos: call.Pos(), Kind: "domcall",
		Detail: calleeLabel(fn) + " (" + calleeDom + "-side) from a " + callerDom + "-side method"})
}

func calleeLabel(fn *types.Func) string {
	if recv := recvNamedType(fn); recv != nil {
		return recv.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// sanitizerCall recognizes the sorting functions that fix an iteration
// order: in-place sorters kill the order classes on their argument's
// object; sorted-copy constructors return the input minus the order
// classes.
func (w *fnWalker) sanitizerCall(fn *types.Func, path string, call *ast.CallExpr) (taintSet, bool) {
	name := fn.Name()
	switch path {
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
			w.sanitizeArg(call, 0)
			return nil, true
		case "Sorted", "SortedFunc", "SortedStableFunc":
			var t taintSet
			for _, a := range call.Args {
				t = t.union(w.eval(a))
			}
			return t.withoutOrder(), true
		}
	case "sort":
		switch name {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			w.sanitizeArg(call, 0)
			return nil, true
		}
	}
	return nil, false
}

func (w *fnWalker) sanitizeArg(call *ast.CallExpr, i int) {
	if i >= len(call.Args) {
		return
	}
	obj := rootObj(w.s.info, call.Args[i])
	if obj == nil {
		return
	}
	w.s.sanit[obj] = true
	cur := w.env[obj]
	if isPackageLevel(obj) {
		cur = w.s.globals[obj]
	}
	if cur == nil {
		return
	}
	cleaned := cur.withoutOrder()
	if isPackageLevel(obj) {
		w.s.globals[obj] = cleaned
	} else {
		w.env[obj] = cleaned
	}
}

// intrinsicSourceClass classifies stdlib entropy entry points, reusing
// the nowallclock tables.
func intrinsicSourceClass(fn *types.Func, path string) string {
	if isMethod(fn) {
		return ""
	}
	name := fn.Name()
	switch path {
	case "time":
		if _, ok := bannedFuncs["time"][name]; ok {
			return classWall
		}
	case "os":
		if _, ok := bannedFuncs["os"][name]; ok {
			return classEnv
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[name] {
			return classRand
		}
	}
	return ""
}

// formatArgsContain reports whether any constant string argument of the
// call contains the given verb.
func formatArgsContain(call *ast.CallExpr, verb string) bool {
	for _, a := range call.Args {
		if lit, ok := ast.Unparen(a).(*ast.BasicLit); ok && strings.Contains(lit.Value, verb) {
			return true
		}
	}
	return false
}

// isSimPackageFunc reports whether fn belongs to a package named "sim"
// (the real simulator core or its fixture mirror).
func isSimPackageFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Name() == "sim"
}

// isSystemScheduleCall matches the System mailbox surface.
func isSystemScheduleCall(fn *types.Func) bool {
	if !isSimPackageFunc(fn) {
		return false
	}
	switch fn.Name() {
	case "Schedule", "ScheduleIn", "Reschedule":
	default:
		return false
	}
	recv := recvNamedType(fn)
	return recv != nil && recv.Obj().Name() == "System"
}

// intrinsicSinkSlots returns the sink kinds per slot for the known
// determinism-critical entry points, nil when fn is not one. Slot -1
// marks a variadic tail sink.
func intrinsicSinkSlots(fn *types.Func, path string) map[int][]string {
	name := fn.Name()
	if isSimPackageFunc(fn) && isMethod(fn) {
		if recv := recvNamedType(fn); recv != nil && recv.Obj().Name() == "Registry" {
			switch name {
			case "Scalar", "Counter", "Formula", "Histogram":
				return map[int][]string{1: {sinkStat}, 2: {sinkStat}}
			}
		}
		switch name {
		case "Set", "Add", "Addn", "Inc", "Observe":
			if recv := recvNamedType(fn); recv != nil {
				switch recv.Obj().Name() {
				case "Scalar", "Counter", "Histogram":
					return map[int][]string{1: {sinkStat}}
				}
			}
		case "RegisterFunc", "AllocData", "Data", "Call":
			// The Tracer surface (interface and implementations alike).
			return map[int][]string{1: {sinkTrace}, 2: {sinkTrace}, 3: {sinkTrace}}
		}
	}
	if strings.HasPrefix(path, "gem5prof") {
		switch name {
		case "TakeCheckpoint", "EncodeCheckpoint", "Serialize":
			return map[int][]string{0: {sinkCkpt}, 1: {sinkCkpt}, 2: {sinkCkpt}}
		case "Render":
			if isMethod(fn) {
				return map[int][]string{0: {sinkReport}, 1: {sinkReport}}
			}
		}
	}
	if path == "os" && name == "WriteFile" {
		return map[int][]string{1: {sinkReport}, 2: {sinkReport}}
	}
	return nil
}
