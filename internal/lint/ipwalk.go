package lint

// The per-function abstract walker of the interprocedural engine: one
// environment (object -> taint classes) per declared function, shared by
// every function literal inside it so closures capture precisely. See
// interproc.go for the overall policy.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

type fnWalker struct {
	s   *summarizer
	fn  *types.Func               // nil when walking package-level var initializers
	sum *FuncSummary              // nil iff fn has no object
	env map[types.Object]taintSet // params, locals, captured vars

	slots       map[types.Object]int // param/receiver object -> summary slot
	resultTypes []types.Type
	litReturns  taintSet // collects return taints of the innermost FuncLit being evaluated

	// mapLoops is the stack of enclosing order-sensitive range statements
	// (map ranges, or ranges over fporder-tainted collections): float
	// accumulation is order-sensitive exactly when it executes under one
	// of these and its addend varies per iteration (carries classMRange).
	mapLoops []token.Pos
}

func (s *summarizer) newWalker(fn *types.Func, sum *FuncSummary) *fnWalker {
	return &fnWalker{
		s:     s,
		fn:    fn,
		sum:   sum,
		env:   make(map[types.Object]taintSet),
		slots: make(map[types.Object]int),
	}
}

// --- statements ---

func (w *fnWalker) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, s := range st.List {
			w.stmt(s)
		}
	case *ast.ExprStmt:
		w.eval(st.X)
	case *ast.AssignStmt:
		w.assignStmt(st)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, val := range vs.Values {
						t := w.eval(val)
						if i < len(vs.Names) {
							if obj := w.s.info.Defs[vs.Names[i]]; obj != nil {
								w.addTaint(obj, t, vs.Names[i].Pos())
							}
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for i, res := range st.Results {
			w.ret(i, w.eval(res), res.Pos())
		}
	case *ast.IfStmt:
		w.stmt(st.Init)
		w.eval(st.Cond)
		w.stmt(st.Body)
		w.stmt(st.Else)
	case *ast.ForStmt:
		w.stmt(st.Init)
		if st.Cond != nil {
			w.eval(st.Cond)
		}
		w.stmt(st.Post)
		// Twice: taint introduced late in the body reaches earlier uses.
		w.stmt(st.Body)
		w.stmt(st.Body)
	case *ast.RangeStmt:
		w.rangeStmt(st)
	case *ast.SwitchStmt:
		w.stmt(st.Init)
		if st.Tag != nil {
			w.eval(st.Tag)
		}
		for _, cc := range st.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.eval(e)
				}
				for _, s := range cc.Body {
					w.stmt(s)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init)
		w.stmt(st.Assign)
		for _, cc := range st.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					w.stmt(s)
				}
			}
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				w.stmt(cc.Comm)
				for _, s := range cc.Body {
					w.stmt(s)
				}
			}
		}
	case *ast.GoStmt:
		w.eval(st.Call)
	case *ast.DeferStmt:
		w.eval(st.Call)
	case *ast.SendStmt:
		// Channel send: taint the channel object (coarse).
		if obj := rootObj(w.s.info, st.Chan); obj != nil {
			w.addTaint(obj, w.eval(st.Value), st.Arrow)
		}
	case *ast.IncDecStmt:
		w.eval(st.X)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	}
}

func (w *fnWalker) assignStmt(st *ast.AssignStmt) {
	// Multi-value RHS (call or comma-ok): every LHS gets the union.
	var ts []taintSet
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		t := w.eval(st.Rhs[0])
		for range st.Lhs {
			ts = append(ts, t)
		}
	} else {
		for _, r := range st.Rhs {
			ts = append(ts, w.eval(r))
		}
	}
	for i, lhs := range st.Lhs {
		if i >= len(ts) {
			break
		}
		t := ts[i]
		// Float-order accumulation: x op= e, or x = x + e.
		if isFloatAccum(w.s.info, st, i) {
			w.floatAccum(lhs, t, st.TokPos)
		}
		w.store(lhs, t, st.TokPos)
	}
}

// floatAccum handles `acc += v`-shaped statements on float accumulators.
// The direct Fig.15 finding fires when the addend varies per iteration of
// an enclosing order-sensitive loop (classMRange) and the accumulator
// outlives that loop — a loop-local accumulator resets each iteration and
// sums nothing across the ordered sequence. Summary consequences: a
// param-derived addend marks FloatAcc only when the accumulator outlives
// the CALL (receiver/pointer-param/global target) — a function summing a
// param into a local is a pure function of its arguments, not an ordered
// accumulation the caller completes; an rloop-derived addend always marks
// RangeSum (the ordered loop is here, the collection is the caller's).
func (w *fnWalker) floatAccum(lhs ast.Expr, t taintSet, pos token.Pos) {
	if t[classMRange] && len(w.mapLoops) > 0 && w.outlivesLoop(lhs) {
		w.s.record(IPFinding{Pos: pos, Kind: "floatsum", Class: classFPOrder,
			Detail: exprString(lhs)})
	}
	persistent := w.persistentTarget(lhs)
	for c := range t {
		if n, ok := strings.CutPrefix(c, "param:"); ok && persistent {
			w.markSlot(&w.sum.FloatAcc, n)
		}
		if n, ok := strings.CutPrefix(c, "rloop:"); ok {
			w.markSlot(&w.sum.RangeSum, n)
		}
	}
}

// outlivesLoop reports whether the accumulation target exists across
// iterations of the innermost order-sensitive loop: declared before it,
// reachable from a parameter/receiver, package-level, or a field/element
// of any of those.
func (w *fnWalker) outlivesLoop(lhs ast.Expr) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := identObj(w.s.info, x)
		if obj == nil {
			return false
		}
		if _, isSlot := w.slots[obj]; isSlot || isPackageLevel(obj) {
			return true
		}
		return obj.Pos() < w.mapLoops[len(w.mapLoops)-1]
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if base := rootObj(w.s.info, lhs); base != nil {
			if _, isSlot := w.slots[base]; isSlot || isPackageLevel(base) {
				return true
			}
			return base.Pos() < w.mapLoops[len(w.mapLoops)-1]
		}
		return true
	}
	return true
}

// persistentTarget reports whether the accumulation target survives the
// function call: a receiver/parameter-reachable object or a package-level
// variable.
func (w *fnWalker) persistentTarget(lhs ast.Expr) bool {
	base := rootObj(w.s.info, lhs)
	if base == nil {
		return false
	}
	if _, isSlot := w.slots[base]; isSlot {
		return true
	}
	return isPackageLevel(base)
}

func (w *fnWalker) markSlot(field *[]bool, slotStr string) {
	if w.sum == nil {
		return
	}
	slot, err := strconv.Atoi(slotStr)
	if err != nil {
		return
	}
	for len(*field) <= slot {
		*field = append(*field, false)
	}
	if !(*field)[slot] {
		(*field)[slot] = true
		w.s.changed = true
	}
}

// isFloatAccum reports whether assignment index i accumulates into a
// float: `x += e` (or -=, *=, /=) with float x, or `x = x + e`.
func isFloatAccum(info *types.Info, st *ast.AssignStmt, i int) bool {
	if i >= len(st.Lhs) {
		return false
	}
	lhs := st.Lhs[i]
	if !isFloat(info.TypeOf(lhs)) {
		return false
	}
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		if i >= len(st.Rhs) {
			return false
		}
		be, ok := ast.Unparen(st.Rhs[i]).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch be.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			ls := exprString(lhs)
			return exprString(be.X) == ls || exprString(be.Y) == ls
		}
	}
	return false
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isOrderedCollection reports whether t can carry a map-derived element
// order (slices and arrays; maps re-mint order at their own ranges).
func isOrderedCollection(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

// store writes taint through an lvalue. Identifier targets take the full
// set; selector/index targets taint the base object, minus the domain
// classes (containers do not inherit shard sides) — except the Domain
// field, which is exactly how SimObjects announce their shard side.
func (w *fnWalker) store(lhs ast.Expr, t taintSet, pos token.Pos) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		if obj := identObj(w.s.info, lhs); obj != nil {
			w.addTaint(obj, t, pos)
		}
	case *ast.SelectorExpr:
		base := rootObj(w.s.info, lhs.X)
		if base == nil {
			return
		}
		if lhs.Sel.Name == "Domain" {
			w.addTaint(base, t, pos)
			return
		}
		w.addTaint(base, t.withoutDomains(), pos)
	case *ast.IndexExpr:
		if base := rootObj(w.s.info, lhs.X); base != nil {
			w.addTaint(base, t.withoutDomains(), pos)
		}
	case *ast.StarExpr:
		if base := rootObj(w.s.info, lhs.X); base != nil {
			w.addTaint(base, t, pos)
		}
	}
}

// addTaint grows an object's taint set, recording summary consequences:
// stores into parameter-reachable objects become Taints/Flows entries,
// stores into package-level variables persist (and, from a mem-side
// method, are a shardescape finding), and a set acquiring both shard
// sides is a domain join.
func (w *fnWalker) addTaint(obj types.Object, t taintSet, pos token.Pos) {
	if len(t) == 0 {
		return
	}
	var cur taintSet
	global := isPackageLevel(obj)
	if global {
		cur = w.s.globals[obj]
	} else {
		cur = w.env[obj]
	}
	// Checked before the growth gate: the receiver's shard tag can land a
	// fixpoint round after the global's taint saturates, and globals (unlike
	// locals) are not re-derived from scratch each round.
	if global && w.recvDomain() == "mem" {
		w.s.recordPersist(IPFinding{Pos: pos, Kind: "domglobal", Detail: obj.Name()})
	}
	hadBoth := cur[classDomMem] && cur[classDomGroup]
	grew := false
	for c := range t {
		if !cur[c] {
			if cur == nil {
				cur = make(taintSet)
			}
			cur[c] = true
			grew = true
		}
	}
	if !grew {
		return
	}
	if global {
		w.s.globals[obj] = cur
		w.s.changed = true
	} else {
		w.env[obj] = cur
	}
	if cur[classDomMem] && cur[classDomGroup] && !hadBoth {
		if global {
			w.s.recordPersist(IPFinding{Pos: pos, Kind: "domjoin", Detail: obj.Name()})
		} else {
			w.s.record(IPFinding{Pos: pos, Kind: "domjoin", Detail: obj.Name()})
		}
	}
	// Store into a parameter slot's object: summary consequence.
	if slot, ok := w.slots[obj]; ok && w.sum != nil {
		for c := range t {
			if n, okk := strings.CutPrefix(c, "param:"); okk {
				if src, err := strconv.Atoi(n); err == nil && src != slot {
					w.addFlow(src, slot)
				}
				continue
			}
			if strings.HasPrefix(c, "rloop:") || c == classMRange {
				continue
			}
			w.addSlotTaint(slot, c)
		}
	}
}

func (w *fnWalker) addFlow(src, dst int) {
	for _, f := range w.sum.Flows {
		if f == [2]int{src, dst} {
			return
		}
	}
	w.sum.Flows = append(w.sum.Flows, [2]int{src, dst})
	w.s.changed = true
}

func (w *fnWalker) addSlotTaint(slot int, class string) {
	if w.sum.Taints == nil {
		w.sum.Taints = make(map[int][]string)
	}
	for _, c := range w.sum.Taints[slot] {
		if c == class {
			return
		}
	}
	w.sum.Taints[slot] = append(w.sum.Taints[slot], class)
	w.s.changed = true
}

func (w *fnWalker) addSlotSink(slot int, kinds []string) {
	if w.sum == nil {
		return
	}
	if w.sum.Sinks == nil {
		w.sum.Sinks = make(map[int][]string)
	}
outer:
	for _, k := range kinds {
		for _, have := range w.sum.Sinks[slot] {
			if have == k {
				continue outer
			}
		}
		w.sum.Sinks[slot] = append(w.sum.Sinks[slot], k)
		w.s.changed = true
	}
}

// ret folds one returned expression's taint into the summary (or into
// the enclosing function literal's value taint).
func (w *fnWalker) ret(i int, t taintSet, pos token.Pos) {
	if w.litReturns != nil {
		w.litReturns = w.litReturns.union(t)
	}
	if w.sum == nil {
		return
	}
	for c := range t {
		if n, ok := strings.CutPrefix(c, "param:"); ok {
			w.markSlot(&w.sum.Prop, n)
			continue
		}
		if n, ok := strings.CutPrefix(c, "rloop:"); ok {
			// Result depends on a collection's iteration order: plain
			// propagation from that slot.
			w.markSlot(&w.sum.Prop, n)
			continue
		}
		if c == classMRange {
			continue // loop-iteration pseudo-class never leaves the function
		}
		found := false
		for _, have := range w.sum.Sources {
			if have == c {
				found = true
				break
			}
		}
		if !found {
			w.sum.Sources = append(w.sum.Sources, c)
			w.s.changed = true
		}
	}
	// A constructor returning a domain-tagged value tags its result type.
	if (t[classDomMem] || t[classDomGroup]) && i < len(w.resultTypes) {
		if named := namedType(w.resultTypes[i]); named != nil && named.Obj().Pkg() == w.s.ip.pkg {
			dom := "group"
			if t[classDomMem] {
				dom = "mem"
			}
			w.s.setTypeDomain(named, dom)
		}
	}
	_ = pos
}

// recvDomain resolves the shard side of the walked function's receiver
// type, if tagged.
func (w *fnWalker) recvDomain() string {
	if w.fn == nil {
		return ""
	}
	t := recvNamedType(w.fn)
	if t == nil {
		return ""
	}
	return w.s.typeDomainOf(t)
}

// rangeStmt models iteration. Ranging a map mints, on the loop
// variables: classMapOrder (value taint for detflow; waived by an
// annotation claiming the loop commutes), classFPOrder (killed only by
// sorting or //lint:allow floatorder — append/store into a slice makes
// its element order map-derived), and the classMRange pseudo-class
// (per-iteration variation; the loop body becomes an order-sensitive
// accumulation context). Ranging an fporder-tainted collection re-arms
// the same context: its element order is map-derived, so ordered float
// accumulation over it is the Fig. 15 bug split across a call. Ranging
// any other collection hands the collection's taint to the loop
// variables, plus the rloop pseudo-class when the collection is a
// parameter (so float accumulation over it becomes a RangeSum bit).
func (w *fnWalker) rangeStmt(st *ast.RangeStmt) {
	xt := w.eval(st.X)
	loopTaint := xt.clone()
	sanitized := false
	if base := rootObj(w.s.info, st.X); base != nil && w.s.sanit[base] {
		sanitized = true
	}
	orderLoop := false
	if typeIsMap(w.s.info.TypeOf(st.X)) {
		if !w.s.sourceWaived(st.Range, "", "detmap", "detflow") {
			loopTaint = loopTaint.with(classMapOrder, classFPOrder)
		}
		if !w.s.sourceWaived(st.Range, "floatorder") {
			loopTaint = loopTaint.with(classMRange)
			orderLoop = true
		}
	} else if !sanitized {
		for c := range xt {
			if n, ok := strings.CutPrefix(c, "param:"); ok {
				loopTaint = loopTaint.with("rloop:" + n)
			}
		}
		if xt[classFPOrder] && !w.s.sourceWaived(st.Range, "floatorder") {
			loopTaint = loopTaint.with(classMRange)
			orderLoop = true
		}
	}
	if sanitized {
		loopTaint = loopTaint.withoutOrder()
		delete(loopTaint, classMRange)
		orderLoop = false
	}
	for _, v := range []ast.Expr{st.Key, st.Value} {
		if v == nil {
			continue
		}
		if id, ok := ast.Unparen(v).(*ast.Ident); ok && id.Name != "_" {
			if obj := identObj(w.s.info, id); obj != nil {
				w.addTaint(obj, loopTaint, id.Pos())
			}
		} else {
			w.store(v, loopTaint, st.Range)
		}
	}
	if orderLoop {
		w.mapLoops = append(w.mapLoops, st.Range)
	}
	w.stmt(st.Body)
	w.stmt(st.Body)
	if orderLoop {
		w.mapLoops = w.mapLoops[:len(w.mapLoops)-1]
	}
}

// --- expressions ---

func (w *fnWalker) eval(e ast.Expr) taintSet {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		return w.objTaint(identObj(w.s.info, e))
	case *ast.SelectorExpr:
		// Package-qualified name: the named object itself.
		if isPkgQualifier(w.s.info, e.X) {
			return w.objTaint(identObj(w.s.info, e.Sel))
		}
		t := w.eval(e.X).clone()
		return t.union(w.objTaint(identObj(w.s.info, e.Sel)))
	case *ast.CallExpr:
		return w.evalCall(e)
	case *ast.BinaryExpr:
		return w.eval(e.X).clone().union(w.eval(e.Y))
	case *ast.UnaryExpr:
		return w.eval(e.X)
	case *ast.StarExpr:
		return w.eval(e.X)
	case *ast.ParenExpr:
		return w.eval(e.X)
	case *ast.IndexExpr:
		// Instantiated generic function/type: just the operand.
		if tv, ok := w.s.info.Types[e.Index]; ok && tv.IsType() {
			return w.eval(e.X)
		}
		t := w.eval(e.X).clone().union(w.eval(e.Index))
		// Reading one element out of an order-tainted collection yields a
		// value, not an ordered sequence: fporder stays on the collection.
		if !isOrderedCollection(w.s.info.TypeOf(e)) {
			delete(t, classFPOrder)
		}
		return t
	case *ast.IndexListExpr:
		return w.eval(e.X)
	case *ast.SliceExpr:
		return w.eval(e.X)
	case *ast.TypeAssertExpr:
		return w.eval(e.X)
	case *ast.CompositeLit:
		var t taintSet
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t = t.union(w.eval(kv.Value))
			} else {
				t = t.union(w.eval(el))
			}
		}
		return t.withoutDomains()
	case *ast.FuncLit:
		return w.evalFuncLit(e)
	case *ast.KeyValueExpr:
		return w.eval(e.Value)
	}
	return nil
}

// evalFuncLit walks a function literal inline, sharing the enclosing
// environment (captures are the same objects), and returns the union of
// its return-statement taints as the literal's value taint.
func (w *fnWalker) evalFuncLit(lit *ast.FuncLit) taintSet {
	saved := w.litReturns
	w.litReturns = taintSet{}
	w.stmt(lit.Body)
	t := w.litReturns
	w.litReturns = saved
	if w.litReturns != nil {
		// Nested literals: the inner literal's value feeds the outer walk,
		// not the outer literal's returns.
		_ = saved
	}
	return t
}

func (w *fnWalker) objTaint(obj types.Object) taintSet {
	if obj == nil {
		return nil
	}
	// Domain constants: sim.DomainMem tags the mem side; every other
	// Domain constant (and DomainForCore's result, handled at the call)
	// is coordinator-side.
	if c, ok := obj.(*types.Const); ok {
		if side := domainSideOfConst(c); side != "" {
			return taintSet{}.with(side)
		}
		return nil
	}
	if isPackageLevel(obj) {
		if obj.Pkg() == w.s.ip.pkg {
			return w.s.globals[obj]
		}
		if w.s.ip.dep != nil && obj.Pkg() != nil {
			if ps := w.s.ip.dep(obj.Pkg().Path()); ps != nil {
				if classes, ok := ps.Globals[obj.Pkg().Path()+"."+obj.Name()]; ok {
					return taintSet{}.with(classes...)
				}
			}
		}
		return nil
	}
	return w.env[obj]
}

// --- helpers ---

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func isPkgQualifier(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := info.Uses[id].(*types.PkgName)
	return isPkg
}

// rootObj resolves an expression to the object whose taint it addresses:
// the base variable of a selector/index/star chain.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return identObj(info, x)
		case *ast.SelectorExpr:
			if isPkgQualifier(info, x.X) {
				return identObj(info, x.Sel)
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

func isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// domainSideOfConst classifies a sim.Domain constant by name.
func domainSideOfConst(c *types.Const) string {
	named := namedType(c.Type())
	if named == nil || named.Obj().Name() != "Domain" {
		return ""
	}
	if p := named.Obj().Pkg(); p == nil || p.Name() != "sim" {
		return ""
	}
	if c.Name() == "DomainMem" {
		return classDomMem
	}
	if strings.HasPrefix(c.Name(), "Domain") {
		return classDomGroup
	}
	return ""
}

// domainConstSide classifies the domain constant an expression denotes
// ("mem"/"group"), empty when it is not a recognizable constant.
func domainConstSide(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if c, ok := identObj(info, e).(*types.Const); ok {
			switch domainSideOfConst(c) {
			case classDomMem:
				return "mem"
			case classDomGroup:
				return "group"
			}
		}
	case *ast.SelectorExpr:
		return domainConstSide(info, e.Sel)
	case *ast.CallExpr:
		if fn := calleeFunc(info, e); fn != nil && fn.Name() == "DomainForCore" {
			return "group"
		}
	}
	return ""
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return "?"
}
