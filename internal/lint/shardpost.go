package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ShardPost enforces the sharded-execution scheduling discipline added with
// the per-domain event queues (sim.System.EnableSharding). Two rules:
//
//  1. Outside package sim, events must be scheduled through a System
//     (Schedule/ScheduleIn/Reschedule), never directly on a Queue backend
//     (sys.Queue().Schedule(...)). The System is where cross-domain events
//     are routed into the engine's mailboxes; a direct queue insert lands
//     the event on the caller's shard regardless of its domain, silently
//     breaking bit-identity — and only under sharding, which is the worst
//     way to find out. Package sim itself (queue internals, the shard
//     engine, their tests) is exempt.
//
//  2. The Quantum and BusLookahead fields passed to EnableSharding must be
//     provably derived from sim.QuantumFor — a call of it, a parameter of
//     the enclosing function (wrappers re-delegate the obligation), or a
//     local whose assignments all derive. QuantumFor is where the
//     conservative-barrier safety argument lives (each per-edge lookahead
//     floor <= the minimum latency crossing that edge); a raw constant may
//     be silently larger than a latency someone later tunes down, and the
//     runtime's per-edge violation panic would then fire deep in a run
//     instead of the mistake being visible at the call site. A literal zero
//     is also accepted: a zero floor grants nothing, which is always safe
//     (and for Quantum the runtime rejects it at startup).
//
// Both rules are syntactic and one-sided: safe-but-unprovable code can be
// annotated with //lint:allow shardpost <reason>.
var ShardPost = &Analyzer{
	Name: "shardpost",
	Doc: "flag direct Queue scheduling outside package sim (bypasses cross-shard mailbox " +
		"routing) and EnableSharding lookahead floors (Quantum, BusLookahead) not provably " +
		"derived from sim.QuantumFor",
	Run: runShardPost,
}

// fnScope is the function whose parameters carry delegated provenance
// obligations: a FuncDecl, or — for callbacks — the innermost enclosing
// FuncLit. Rule 2's "take it as a parameter" escape must resolve against
// the closure actually receiving the value, not the declaration it
// happens to be nested in.
type fnScope struct {
	params *ast.FieldList
	body   *ast.BlockStmt
}

func runShardPost(pass *Pass) error {
	if !pkgScope(pass) {
		return nil
	}
	inSim := pass.Pkg.Path() == "gem5prof/internal/sim" ||
		strings.HasSuffix(pass.Pkg.Path(), "/internal/sim")
	for _, file := range pass.SourceFiles() {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					shardPostWalk(pass, inSim, fnScope{d.Type.Params, d.Body}, d.Body)
				}
			case *ast.GenDecl:
				// Package-level callback hooks: var hook = func(...) {...}.
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						ast.Inspect(v, func(n ast.Node) bool {
							if fl, ok := n.(*ast.FuncLit); ok {
								shardPostWalk(pass, inSim, fnScope{fl.Type.Params, fl.Body}, fl.Body)
								return false
							}
							return true
						})
					}
				}
			}
		}
	}
	return nil
}

// shardPostWalk checks one function body, recursing into nested function
// literals with their own scope (their parameters, not the outer
// function's, absorb delegated quanta).
func shardPostWalk(pass *Pass, inSim bool, sc fnScope, body *ast.BlockStmt) {
	// Selectors in call position — everything else selecting a queue
	// method is a captured method value.
	callFuns := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(c.Fun)] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			shardPostWalk(pass, inSim, fnScope{n.Type.Params, n.Body}, n.Body)
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !inSim {
				checkQueuePost(pass, n, sel)
			}
			if sel.Sel.Name == "EnableSharding" && len(n.Args) == 1 {
				checkQuantum(pass, sc, n)
			}
		case *ast.SelectorExpr:
			if !inSim && !callFuns[n] {
				checkQueueMethodValue(pass, n)
			}
		}
		return true
	})
}

// checkQueueMethodValue flags q.Schedule captured as a value (a callback
// bound to the backend): invoking it later bypasses the System exactly
// like the direct call form, but the old call-site check never saw it.
func checkQueueMethodValue(pass *Pass, sel *ast.SelectorExpr) {
	if sel.Sel.Name != "Schedule" && sel.Sel.Name != "Reschedule" {
		return
	}
	if s, ok := pass.TypesInfo.Selections[sel]; !ok || s.Kind() != types.MethodVal {
		return
	}
	n := namedType(pass.TypesInfo.TypeOf(sel.X))
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Name() != "sim" {
		return
	}
	switch n.Obj().Name() {
	case "Queue", "HeapQueue", "CalendarQueue":
		pass.Reportf(sel.Pos(),
			"capturing %s of a sim queue backend as a method value bypasses the System's cross-shard mailbox routing; capture the System's method instead (or annotate //lint:allow shardpost <reason>)",
			sel.Sel.Name)
	}
}

// checkQueuePost flags Schedule/Reschedule called on a sim queue backend
// (the Queue interface or a concrete implementation) rather than a System.
func checkQueuePost(pass *Pass, call *ast.CallExpr, sel *ast.SelectorExpr) {
	if sel.Sel.Name != "Schedule" && sel.Sel.Name != "Reschedule" {
		return
	}
	n := namedType(pass.TypesInfo.TypeOf(sel.X))
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Name() != "sim" {
		return
	}
	switch n.Obj().Name() {
	case "Queue", "HeapQueue", "CalendarQueue":
		pass.Reportf(call.Pos(),
			"direct %s on a sim queue backend bypasses the System's cross-shard mailbox routing; schedule through the System (or annotate //lint:allow shardpost <reason>)",
			sel.Sel.Name)
	}
}

// lookaheadFields are the ShardConfig fields that grant cross-shard
// scheduling slack and therefore carry the rule-2 provenance obligation:
// Quantum floors every mem-to-group edge, BusLookahead every group-to-mem
// edge of the per-edge lookahead matrix.
var lookaheadFields = []string{"Quantum", "BusLookahead"}

// checkQuantum locates each lookahead-floor expression flowing into an
// EnableSharding call and demands QuantumFor provenance.
func checkQuantum(pass *Pass, sc fnScope, call *ast.CallExpr) {
	arg := ast.Unparen(call.Args[0])
	for _, field := range lookaheadFields {
		q, found := quantumExpr(pass, sc, arg, field)
		if !found {
			// Invisibility is a property of the whole config value, not of
			// one field: report it once.
			pass.Reportf(call.Args[0].Pos(),
				"EnableSharding config's Quantum is not visible in this function; derive it with sim.QuantumFor at the call site, take it as a parameter, or annotate //lint:allow shardpost <reason>")
			return
		}
		if q != nil && !quantumDerived(pass, sc, q, 0) {
			pass.Reportf(q.Pos(),
				"EnableSharding %s is not provably derived from sim.QuantumFor; the conservative barrier is only safe for lookahead floors bounded by the minimum latency crossing the edge — derive it with QuantumFor (or use zero) or annotate //lint:allow shardpost <reason>",
				fieldNoun(field))
		}
	}
}

// fieldNoun renders the field name for diagnostics (Quantum keeps its
// historical lowercase spelling so existing annotations and fixtures match).
func fieldNoun(field string) string {
	if field == "Quantum" {
		return "quantum"
	}
	return field
}

// quantumExpr extracts the named lookahead field expression from the
// EnableSharding argument: directly from a composite literal, or from local
// assignments of the config variable (composite-literal RHS or a cfg.<field>
// write). A nil expression with found=true means the value is delegated (the
// arg is a parameter of the enclosing function) or the field is absent (zero
// value: no slack granted, nothing to prove). found=false means the config's
// provenance is not visible in this function at all.
func quantumExpr(pass *Pass, sc fnScope, arg ast.Expr, field string) (ast.Expr, bool) {
	if cl, ok := arg.(*ast.CompositeLit); ok {
		return lookaheadField(cl, field), true
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil, false
	}
	if paramOf(pass, sc.params, id) {
		return nil, true
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil, false
	}
	var q ast.Expr
	found := false
	ast.Inspect(sc.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					continue
				}
				// cfg = sim.ShardConfig{...}
				if li, ok := lhs.(*ast.Ident); ok &&
					(pass.TypesInfo.Defs[li] == obj || pass.TypesInfo.Uses[li] == obj) {
					if cl, ok := ast.Unparen(n.Rhs[i]).(*ast.CompositeLit); ok {
						found = true
						if f := lookaheadField(cl, field); f != nil {
							q = f
						}
					}
				}
				// cfg.<field> = X
				if se, ok := lhs.(*ast.SelectorExpr); ok && se.Sel.Name == field {
					if base, ok := ast.Unparen(se.X).(*ast.Ident); ok && pass.TypesInfo.Uses[base] == obj {
						found = true
						q = n.Rhs[i]
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.Defs[name] == obj && i < len(n.Values) {
					if cl, ok := ast.Unparen(n.Values[i]).(*ast.CompositeLit); ok {
						found = true
						if f := lookaheadField(cl, field); f != nil {
							q = f
						}
					}
				}
			}
		}
		return true
	})
	return q, found
}

// lookaheadField returns the named field value of a composite literal, nil
// if absent (a zero floor grants no slack; nothing to prove).
func lookaheadField(cl *ast.CompositeLit, field string) ast.Expr {
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if k, ok := kv.Key.(*ast.Ident); ok && k.Name == field {
			return kv.Value
		}
	}
	return nil
}

// quantumDerived is the accept predicate of rule 2.
func quantumDerived(pass *Pass, sc fnScope, e ast.Expr, depth int) bool {
	if depth > 8 {
		return false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		// An explicit zero floor grants no scheduling slack: always safe.
		return e.Kind == token.INT && e.Value == "0"
	case *ast.CallExpr:
		name := ""
		switch fn := e.Fun.(type) {
		case *ast.SelectorExpr:
			name = fn.Sel.Name
		case *ast.Ident:
			name = fn.Name
		}
		if name == "QuantumFor" {
			return true
		}
		// A sim.Tick(x) conversion derives iff x does (sim.Tick(0) is the
		// idiomatic spelling of the zero floor).
		if name == "Tick" && len(e.Args) == 1 {
			return quantumDerived(pass, sc, e.Args[0], depth+1)
		}
		return false
	case *ast.Ident:
		if paramOf(pass, sc.params, e) {
			return true
		}
		return quantumAssignmentsDerived(pass, sc, e, depth)
	}
	return false
}

// quantumAssignmentsDerived checks that id has at least one assignment in
// fd and every assignment's RHS is itself QuantumFor-derived.
func quantumAssignmentsDerived(pass *Pass, sc fnScope, id *ast.Ident, depth int) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	found, allOK := false, true
	ast.Inspect(sc.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				li, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if pass.TypesInfo.Defs[li] == obj || pass.TypesInfo.Uses[li] == obj {
					found = true
					if !quantumDerived(pass, sc, n.Rhs[i], depth+1) {
						allOK = false
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.Defs[name] == obj && i < len(n.Values) {
					found = true
					if !quantumDerived(pass, sc, n.Values[i], depth+1) {
						allOK = false
					}
				}
			}
		}
		return true
	})
	return found && allOK
}
