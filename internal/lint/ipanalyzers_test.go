package lint_test

import (
	"testing"

	"gem5prof/internal/lint"
	"gem5prof/internal/lint/linttest"
)

// The meta-fixtures launder each taint class through 2–3 call hops
// (helper, closure, interface method); the *neg twins repeat the same
// call shapes with deterministic inputs and must stay silent — they
// pin the precision side of the summaries, not just the recall side.

func TestDetflow(t *testing.T) {
	linttest.Run(t, lint.Detflow,
		"gem5prof/internal/ipflow",
		"gem5prof/internal/ipflowneg")
}

func TestFloatOrder(t *testing.T) {
	linttest.Run(t, lint.FloatOrder,
		"gem5prof/internal/fpsum",
		"gem5prof/internal/fpsumneg")
}

func TestShardEscape(t *testing.T) {
	linttest.Run(t, lint.ShardEscape,
		"gem5prof/internal/shesc",
		"gem5prof/internal/shescneg")
}
