package lint

import (
	"go/ast"
)

// Detmap flags iteration whose order is Go's randomized map order inside
// any package of the determinism-checked set (everything under gem5prof/
// except the linter): `range` over a map, and maps.Keys/maps.Values calls
// whose result is not immediately sorted. Every report, trace, checkpoint
// and encoding path in this repository promises byte-identical output for
// a given seed, and map iteration order is the one language feature that
// silently breaks that promise. Loops that provably commute (pure set
// union, building another map, collect-then-sort) are waived with
// //lint:deterministic <reason>.
var Detmap = &Analyzer{
	Name: "detmap",
	Doc: "flag map-order-dependent iteration (range over a map, unsorted maps.Keys) " +
		"in determinism-critical packages; waive provably commuting loops with //lint:deterministic",
	Run: runDetmap,
}

func runDetmap(pass *Pass) error {
	if !pkgScope(pass) {
		return nil
	}

	// First pass: collect maps.Keys/Values calls that are immediately
	// sorted (slices.Sorted*(maps.Keys(m))): those are deterministic.
	sorted := make(map[*ast.CallExpr]bool)
	inspect(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgFunc(pass.TypesInfo, call, "slices", "Sorted") ||
			isPkgFunc(pass.TypesInfo, call, "slices", "SortedFunc") ||
			isPkgFunc(pass.TypesInfo, call, "slices", "SortedStableFunc") {
			for _, arg := range call.Args {
				if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					sorted[inner] = true
				}
			}
		}
		return true
	})

	inspect(pass, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if typeIsMap(pass.TypesInfo.TypeOf(n.X)) {
				pass.Reportf(n.Range,
					"range over a map: iteration order leaks into behavior; sort the keys first, or annotate //lint:deterministic <reason> if the loop commutes")
			}
		case *ast.CallExpr:
			for _, fn := range []string{"Keys", "Values"} {
				if isPkgFunc(pass.TypesInfo, n, "maps", fn) && !sorted[n] {
					pass.Reportf(n.Pos(),
						"maps.%s without an immediate sort yields map-ordered results; wrap in slices.Sorted or sort before use", fn)
				}
			}
		}
		return true
	})
	return nil
}
