package lint_test

import (
	"testing"

	"gem5prof/internal/lint"
	"gem5prof/internal/lint/linttest"
)

func TestNoWallClock(t *testing.T) {
	// othermod is outside the simulator core: nowallclock must stay
	// silent there even though it calls time.Now.
	linttest.Run(t, lint.NoWallClock, "gem5prof/internal/nwc", "othermod")
}
