package lint_test

import (
	"testing"

	"gem5prof/internal/lint"
	"gem5prof/internal/lint/linttest"
)

func TestDetmap(t *testing.T) {
	// othermod is outside the module path: detmap must stay silent there.
	linttest.Run(t, lint.Detmap, "gem5prof/detmapfix", "othermod")
}
