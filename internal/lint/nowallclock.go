package lint

import (
	"go/ast"
)

// NoWallClock forbids host entropy inside the simulator core
// (gem5prof/internal/...): wall-clock time, the global math/rand state,
// and the process environment. Every source of variation must flow from
// core.DeriveSeed(experiment, cell) through sim.System's seeded RNG and
// the event queue's Tick domain — that is what makes a run replayable
// bit-for-bit on any host and what the golden fixtures, the conformance
// campaigns, and the pipelined-equals-serial differential all rest on.
// Command binaries under cmd/ may time themselves; the model may not.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc: "forbid time.Now/global math-rand/os.Getenv-style host entropy in internal " +
		"simulator packages; seeds must flow from core.DeriveSeed",
	Run: runNoWallClock,
}

// bannedFuncs maps package path -> function name -> what to say.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":       "wall-clock time",
		"Since":     "wall-clock time",
		"Until":     "wall-clock time",
		"After":     "wall-clock timing",
		"Tick":      "wall-clock timing",
		"NewTimer":  "wall-clock timing",
		"NewTicker": "wall-clock timing",
		"Sleep":     "wall-clock timing",
	},
	"os": {
		"Getenv":    "process environment",
		"LookupEnv": "process environment",
		"Environ":   "process environment",
		"Getpid":    "host process identity",
		"Hostname":  "host identity",
	},
}

// randConstructors are the math/rand functions that build an explicitly
// seeded generator and are therefore fine; every other package-level
// rand function draws from the shared, host-seeded global state.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runNoWallClock(pass *Pass) error {
	if !simScope(pass) {
		return nil
	}
	inspect(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		// Methods on explicitly seeded values (e.g. (*rand.Rand).Int63)
		// are fine; only package-level functions are host entropy.
		if isMethod(fn) {
			return true
		}
		path, name := fn.Pkg().Path(), fn.Name()
		if kind, ok := bannedFuncs[path][name]; ok {
			pass.Reportf(call.Pos(),
				"%s.%s injects %s into the simulator; derive variation from core.DeriveSeed and sim ticks", path, name, kind)
			return true
		}
		if (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name] {
			pass.Reportf(call.Pos(),
				"global %s.%s draws from host-seeded shared state; use a rand.New(rand.NewSource(seed)) fed from core.DeriveSeed", path, name)
		}
		return true
	})
	return nil
}
