// Package linttest is a minimal analogue of
// golang.org/x/tools/go/analysis/analysistest (which is not importable
// here): it loads fixture packages from testdata/src/<importpath>, runs
// one lint.Analyzer over each, and compares the diagnostics against
// `// want "regexp"` comments in the fixture sources.
//
// Expectations. A comment of the form
//
//	// want "regexp" `another regexp`
//
// demands one diagnostic per quoted pattern on the comment's own line. A
// signed offset applies the expectation to a nearby line instead:
//
//	// want+1 "lint annotation without a reason"
//
// is satisfied by a diagnostic on the next line (needed when the flagged
// line is itself a comment, which cannot carry a second comment). A
// fixture package containing no want comments asserts the analyzer stays
// silent on it.
//
// Imports inside fixtures resolve against testdata/src first (so fixtures
// can share stub packages like gem5prof/internal/sim), then against the
// standard library, type-checked from GOROOT source — no network, no
// export-data installation required.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"gem5prof/internal/lint"
)

// Run loads each fixture package rooted at testdata/src/<path> (relative
// to the calling test's working directory), applies the analyzer, and
// reports every mismatch between actual diagnostics and want comments as
// a test error.
func Run(t *testing.T, a *lint.Analyzer, paths ...string) {
	t.Helper()
	l := newLoader(t)
	for _, path := range paths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("%s: load fixture: %v", path, err)
		}
		checkPackage(t, l, a, pkg)
	}
}

// loadedPkg is one type-checked fixture package.
type loadedPkg struct {
	path  string
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves fixture and stdlib imports, memoized, over one FileSet.
type loader struct {
	t    *testing.T
	fset *token.FileSet
	root string // testdata/src
	pkgs map[string]*loadedPkg
	sums map[string]*lint.PkgSummary
	std  types.Importer
}

func newLoader(t *testing.T) *loader {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	return &loader{
		t:    t,
		fset: fset,
		root: root,
		pkgs: make(map[string]*loadedPkg),
		sums: make(map[string]*lint.PkgSummary),
		std:  importer.ForCompiler(fset, "source", nil),
	}
}

// summary computes (memoized) one fixture package's interprocedural
// summary, recursing through fixture imports — the linttest analogue of
// the facts files go vet hands each unit. Unknown paths (stdlib) yield
// nil, exactly like an absent facts file.
func (l *loader) summary(path string) *lint.PkgSummary {
	if s, ok := l.sums[path]; ok {
		return s
	}
	l.sums[path] = nil // break accidental cycles
	if st, err := os.Stat(filepath.Join(l.root, path)); err != nil || !st.IsDir() {
		return nil
	}
	p, err := l.load(path)
	if err != nil {
		return nil
	}
	s := lint.NewIP(l.fset, p.files, p.pkg, p.info, l.summary).Result().Summary
	l.sums[path] = s
	return s
}

// Import implements types.Importer over the fixture tree with a stdlib
// fallback, so fixture packages can import both stubs and real packages.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if st, err := os.Stat(filepath.Join(l.root, path)); err == nil && st.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one fixture package.
func (l *loader) load(path string) (*loadedPkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{
		Importer: l,
		// Fixed sizes match the driver (unitchecker.go), so size-sensitive
		// fixtures (the 32-byte record) behave the same on every host.
		Sizes: types.SizesFor("gc", "amd64"),
	}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loadedPkg{path: path, pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}

// checkPackage runs the analyzer and diffs diagnostics against wants.
func checkPackage(t *testing.T, l *loader, a *lint.Analyzer, p *loadedPkg) {
	t.Helper()
	fset := l.fset
	dep := func(path string) *lint.PkgSummary {
		if path == p.path {
			return nil
		}
		return l.summary(path)
	}
	var diags []lint.Diagnostic
	pass := &lint.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     p.files,
		Pkg:       p.pkg,
		TypesInfo: p.info,
		Sizes:     types.SizesFor("gc", "amd64"),
		IP:        lint.NewIP(fset, p.files, p.pkg, p.info, dep),
		Report:    func(d lint.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %s: %v", p.path, a.Name, err)
	}

	exps := expectations(t, fset, p.files)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		matched := false
		for _, e := range exps {
			if !e.used && e.file == posn.Filename && e.line == posn.Line && e.re.MatchString(d.Message) {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, e := range exps {
		if !e.used {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.text)
		}
	}
}

// expect is one want pattern pinned to a file and line.
type expect struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	used bool
}

var wantRe = regexp.MustCompile(`^//\s*want([+-][0-9]+)?\s+(.*)$`)
var patRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectations collects every want comment of the package, sorted by
// position so matching is deterministic.
func expectations(t *testing.T, fset *token.FileSet, files []*ast.File) []*expect {
	t.Helper()
	var out []*expect
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				offset := 0
				if m[1] != "" {
					offset, _ = strconv.Atoi(m[1])
				}
				posn := fset.Position(c.Pos())
				pats := patRe.FindAllString(m[2], -1)
				if len(pats) == 0 {
					t.Fatalf("%s: want comment has no quoted pattern: %s", posn, c.Text)
				}
				for _, raw := range pats {
					pat, err := strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", posn, raw, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, pat, err)
					}
					out = append(out, &expect{
						file: posn.Filename,
						line: posn.Line + offset,
						re:   re,
						text: pat,
					})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}
