package sim

import (
	"testing"
	"testing/quick"
)

func backends() map[string]func() Queue {
	return map[string]func() Queue{
		"heap":     func() Queue { return NewHeapQueue() },
		"calendar": func() Queue { return NewCalendarQueue(16, 100) },
	}
}

func TestQueueFiresInOrder(t *testing.T) {
	for name, mk := range backends() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			var got []Tick
			ticks := []Tick{500, 10, 10, 9999, 0, 123, 77, 500}
			for i, when := range ticks {
				w := when
				e := NewEvent("e", 0, func() { got = append(got, w) })
				_ = i
				q.Schedule(e, w)
			}
			for q.ServiceOne() {
			}
			if len(got) != len(ticks) {
				t.Fatalf("fired %d events, want %d", len(got), len(ticks))
			}
			for i := 1; i < len(got); i++ {
				if got[i] < got[i-1] {
					t.Fatalf("out of order at %d: %v", i, got)
				}
			}
			if q.Now() != 9999 {
				t.Errorf("Now() = %d, want 9999", q.Now())
			}
		})
	}
}

func TestQueueSameTickPriorityAndStability(t *testing.T) {
	for name, mk := range backends() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			var got []string
			add := func(id string, prio int) {
				e := NewEventPrio(id, 0, prio, func() { got = append(got, id) })
				q.Schedule(e, 100)
			}
			add("b1", PrioDefault)
			add("a", PrioCPUTick) // lower priority value fires first
			add("b2", PrioDefault)
			add("z", PrioSerialize)
			for q.ServiceOne() {
			}
			want := []string{"a", "b1", "b2", "z"}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("got %v, want %v", got, want)
				}
			}
		})
	}
}

func TestQueueDeschedule(t *testing.T) {
	for name, mk := range backends() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			fired := 0
			e1 := NewEvent("e1", 0, func() { fired++ })
			e2 := NewEvent("e2", 0, func() { fired += 10 })
			q.Schedule(e1, 50)
			q.Schedule(e2, 60)
			q.Deschedule(e1)
			if e1.Scheduled() {
				t.Fatal("e1 still scheduled after Deschedule")
			}
			for q.ServiceOne() {
			}
			if fired != 10 {
				t.Fatalf("fired = %d, want 10", fired)
			}
		})
	}
}

func TestQueueReschedule(t *testing.T) {
	for name, mk := range backends() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			var order []string
			e1 := NewEvent("e1", 0, func() { order = append(order, "e1") })
			e2 := NewEvent("e2", 0, func() { order = append(order, "e2") })
			q.Schedule(e1, 50)
			q.Schedule(e2, 60)
			q.Reschedule(e1, 70) // move e1 after e2
			for q.ServiceOne() {
			}
			if order[0] != "e2" || order[1] != "e1" {
				t.Fatalf("order = %v", order)
			}
		})
	}
}

func TestQueueScheduleDuringFire(t *testing.T) {
	for name, mk := range backends() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			var got []Tick
			var chain func()
			e := NewEvent("chain", 0, nil)
			chain = func() {
				got = append(got, q.Now())
				if q.Now() < 500 {
					q.Schedule(e, q.Now()+100)
				}
			}
			e.fire = chain
			q.Schedule(e, 100)
			for q.ServiceOne() {
			}
			if len(got) != 5 || got[4] != 500 {
				t.Fatalf("chain = %v", got)
			}
		})
	}
}

func TestQueuePanics(t *testing.T) {
	for name, mk := range backends() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			e := NewEvent("e", 0, func() {})
			q.Schedule(e, 10)
			mustPanic(t, "double schedule", func() { q.Schedule(e, 20) })
			q.Deschedule(e)
			mustPanic(t, "double deschedule", func() { q.Deschedule(e) })
			other := NewEvent("o", 0, func() {})
			q.Schedule(other, 100)
			for q.ServiceOne() {
			}
			mustPanic(t, "schedule in past", func() { q.Schedule(e, 10) })
			mustPanic(t, "NextTick empty", func() { q.NextTick() })
		})
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

// TestQueueEquivalence property-checks that the calendar queue services any
// schedule in exactly the same order as the heap queue.
func TestQueueEquivalence(t *testing.T) {
	run := func(q Queue, ticks []uint16, prios []int8) []int {
		var order []int
		for i := range ticks {
			id := i
			p := PrioDefault
			if i < len(prios) {
				p = int(prios[i])
			}
			q.Schedule(NewEventPrio("e", 0, p, func() { order = append(order, id) }), Tick(ticks[i]))
		}
		for q.ServiceOne() {
		}
		return order
	}
	f := func(ticks []uint16, prios []int8) bool {
		h := run(NewHeapQueue(), ticks, prios)
		c := run(NewCalendarQueue(8, 37), ticks, prios)
		if len(h) != len(c) {
			return false
		}
		for i := range h {
			if h[i] != c[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueEquivalenceDynamic was promoted to the native fuzz target
// FuzzQueueEquivalence (queue_fuzz_test.go); the seed corpus there covers the
// random mixed schedule/deschedule/reschedule streams this test used to
// drive, plus the window-slide regressions below.

// TestCalendarScheduleAfterWindowJump is a regression test: NextTick on a
// queue whose ring is empty jumps the window (q.base) to the earliest
// overflow event without firing anything, so q.base can land far past
// q.Now(). Scheduling at Now() immediately afterwards is legal, but the
// bucket index (when-base)/width underflowed and filed the event into a
// garbage bucket, firing it out of order.
func TestCalendarScheduleAfterWindowJump(t *testing.T) {
	q := NewCalendarQueue(4, 10) // horizon of 40 ticks
	var got []Tick
	add := func(when Tick) {
		q.Schedule(NewEvent("e", 0, func() { got = append(got, when) }), when)
	}
	add(1_000_000) // far future: overflow area
	if nt := q.NextTick(); nt != 1_000_000 {
		t.Fatalf("NextTick = %d, want 1000000", nt)
	}
	// The jump moved the window to t=1M while Now() is still 0.
	if q.Now() != 0 {
		t.Fatalf("Now = %d, want 0", q.Now())
	}
	add(q.Now()) // schedule at Now() right after the jump
	add(5)
	if err := q.checkInvariant(); err != nil {
		t.Fatal(err)
	}
	for q.ServiceOne() {
		if err := q.checkInvariant(); err != nil {
			t.Fatal(err)
		}
	}
	want := []Tick{0, 5, 1_000_000}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestCalendarScheduleAfterWindowSlide is the sliding variant of the jump
// regression: NextTick slides the window bucket-by-bucket past Now() to reach
// a ring event, then a schedule below the new q.base must still fire first.
func TestCalendarScheduleAfterWindowSlide(t *testing.T) {
	q := NewCalendarQueue(4, 10)
	var got []Tick
	add := func(when Tick) {
		q.Schedule(NewEvent("e", 0, func() { got = append(got, when) }), when)
	}
	add(35) // three buckets ahead: NextTick slides base to 30
	if nt := q.NextTick(); nt != 35 {
		t.Fatalf("NextTick = %d, want 35", nt)
	}
	add(2) // below the slid window start, above Now()
	if err := q.checkInvariant(); err != nil {
		t.Fatal(err)
	}
	for q.ServiceOne() {
		if err := q.checkInvariant(); err != nil {
			t.Fatal(err)
		}
	}
	want := []Tick{2, 35}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("fired %v, want %v", got, want)
	}
}

func TestCalendarOverflowAndJump(t *testing.T) {
	q := NewCalendarQueue(4, 10) // horizon of 40 ticks
	var got []Tick
	add := func(when Tick) {
		q.Schedule(NewEvent("e", 0, func() { got = append(got, when) }), when)
	}
	add(1_000_000) // far future, lands in overflow
	add(5)
	add(39)
	add(4000)
	for q.ServiceOne() {
	}
	want := []Tick{5, 39, 4000, 1_000_000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if q.Now() != 1_000_000 {
		t.Errorf("Now = %d", q.Now())
	}
}
