package sim

import (
	"math/rand"
	"testing"
)

// queueStream replays one fuzz-generated op stream against a queue. Each
// fired event consumes one follow-on op from the same stream, so schedules,
// deschedules, and reschedules are also issued from inside event callbacks —
// the access pattern the CPU models generate.
type queueStream struct {
	q      Queue
	data   []byte
	pos    int
	events []*Event
	log    []firedRec
	check  func() error // structural invariant, nil for the heap
	err    error
}

type firedRec struct {
	id int
	at Tick
}

func (s *queueStream) next() (byte, bool) {
	if s.pos >= len(s.data) {
		return 0, false
	}
	b := s.data[s.pos]
	s.pos++
	return b, true
}

// perform runs one non-servicing op (ops 0-5). It is called both from the
// main loop and from inside fire callbacks.
func (s *queueStream) perform(op byte) {
	switch op % 6 {
	case 0, 1: // schedule near: delta in [0, 255]
		i, ok := s.next()
		d, ok2 := s.next()
		if !ok || !ok2 {
			return
		}
		e := s.events[int(i)%len(s.events)]
		if !e.Scheduled() {
			s.q.Schedule(e, s.q.Now()+Tick(d))
		}
	case 2: // deschedule
		i, ok := s.next()
		if !ok {
			return
		}
		e := s.events[int(i)%len(s.events)]
		if e.Scheduled() {
			s.q.Deschedule(e)
		}
	case 3: // reschedule (schedules if currently unscheduled)
		i, ok := s.next()
		d, ok2 := s.next()
		if !ok || !ok2 {
			return
		}
		s.q.Reschedule(s.events[int(i)%len(s.events)], s.q.Now()+Tick(d)*3)
	case 4: // schedule far: up to ~458k ticks ahead, forcing overflow + jumps
		i, ok := s.next()
		hi, ok2 := s.next()
		lo, ok3 := s.next()
		if !ok || !ok2 || !ok3 {
			return
		}
		e := s.events[int(i)%len(s.events)]
		if !e.Scheduled() {
			d := Tick(hi)<<8 | Tick(lo)
			s.q.Schedule(e, s.q.Now()+d*7)
		}
	case 5: // peek without firing: this is what moves the window past Now()
		if !s.q.Empty() {
			_ = s.q.NextTick()
		}
	}
	if s.check != nil && s.err == nil {
		s.err = s.check()
	}
}

// run replays the whole stream, then drains the queue.
func (s *queueStream) run() {
	for i := range s.events {
		id := i
		s.events[i] = NewEvent("f", 0, func() {
			s.log = append(s.log, firedRec{id, s.q.Now()})
			if op, ok := s.next(); ok {
				s.perform(op)
			}
		})
	}
	for {
		op, ok := s.next()
		if !ok {
			break
		}
		if op%8 < 6 {
			s.perform(op)
		} else {
			s.q.ServiceOne()
			if s.check != nil && s.err == nil {
				s.err = s.check()
			}
		}
	}
	for n := 0; n < 1<<16 && s.q.ServiceOne(); n++ {
		if s.check != nil && s.err == nil {
			s.err = s.check()
		}
	}
}

func replay(q Queue, data []byte, check func() error) *queueStream {
	s := &queueStream{q: q, data: data, events: make([]*Event, 12), check: check}
	s.run()
	return s
}

// FuzzQueueEquivalence drives HeapQueue and CalendarQueue with the same
// schedule/deschedule/reschedule/peek stream and asserts an identical fire
// order, plus the calendar queue's structural invariant after every step.
// The geometry (8 buckets x 16 ticks) is small so near-future schedules slide
// the window and far ones overflow and jump it.
func FuzzQueueEquivalence(f *testing.F) {
	// Window-jump regression (TestCalendarScheduleAfterWindowJump as a
	// stream): far schedule, NextTick jump, schedule at Now(), drain.
	f.Add([]byte{
		4, 0, 0xff, 0xff, // schedule e0 ~458k ticks out (overflow)
		5,       // NextTick: empty ring, window jumps past Now()
		0, 1, 0, // schedule e1 at Now()+0
		6, 6, // service both
	})
	// Window-slide regression: near schedule a few buckets out, NextTick
	// slides base past Now(), then schedule below the new base.
	f.Add([]byte{
		0, 0, 120, // schedule e0 at 120 (bucket 7 of 8x16)
		5,       // NextTick slides the window to t=112
		0, 1, 2, // schedule e1 at 2 < base
		6, 6,
	})
	// Mixed stream with reschedules and callback-driven follow-ons.
	f.Add([]byte{
		0, 0, 50, 1, 1, 60, 3, 0, 10, 6, 2, 1, 4, 2, 1, 100, 6, 5, 0, 3, 0, 6, 6,
	})
	// Deterministic random streams stand in for the retired
	// TestQueueEquivalenceDynamic seeds.
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 8; k++ {
		buf := make([]byte, 96+32*k)
		rng.Read(buf)
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h := replay(NewHeapQueue(), data, nil)
		c := replay(NewCalendarQueue(8, 16), data, nil)
		cal := c.q.(*CalendarQueue)
		if err := cal.checkInvariant(); err != nil {
			t.Fatalf("calendar invariant: %v", err)
		}
		if len(h.log) != len(c.log) {
			t.Fatalf("heap fired %d events, calendar fired %d", len(h.log), len(c.log))
		}
		for i := range h.log {
			if h.log[i] != c.log[i] {
				t.Fatalf("divergence at %d: heap %+v, calendar %+v", i, h.log[i], c.log[i])
			}
		}
	})
}

// TestFuzzInvariantChecked replays the regression seeds with the per-step
// invariant check enabled (the fuzz body checks only at the end to keep the
// fuzzing loop fast).
func TestFuzzInvariantChecked(t *testing.T) {
	seeds := [][]byte{
		{4, 0, 0xff, 0xff, 5, 0, 1, 0, 6, 6},
		{0, 0, 120, 5, 0, 1, 2, 6, 6},
		{0, 0, 50, 1, 1, 60, 3, 0, 10, 6, 2, 1, 4, 2, 1, 100, 6, 5, 0, 3, 0, 6, 6},
	}
	for i, data := range seeds {
		q := NewCalendarQueue(8, 16)
		s := replay(q, data, q.checkInvariant)
		if s.err != nil {
			t.Errorf("seed %d: invariant violated: %v", i, s.err)
		}
	}
}
