package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// seqTracer records the exact sequence of Call/Data records it receives.
// Under sharded execution it is fed by the replayer, so its recorded order
// is precisely the order the host model would see — the thing that must be
// bit-identical to the serial run.
type seqTracer struct {
	NopTracer
	log   []string
	hints []int // shard hints interleaved positions (diagnostic only)
}

func (t *seqTracer) Call(fn FuncID) { t.log = append(t.log, fmt.Sprintf("C%d", fn)) }
func (t *seqTracer) Data(addr uint64, size uint32, write bool) {
	t.log = append(t.log, fmt.Sprintf("D%x/%d/%v", addr, size, write))
}
func (t *seqTracer) SetShardHint(shard int) { t.hints = append(t.hints, shard) }

// splitmix is a tiny deterministic PRNG for workload generation.
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b289
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

const testQuantum = Tick(15000)

// shardWorkload drives a synthetic two-domain system shaped like the real
// one: CPU tick events that issue memory accesses across the domain
// boundary, memory events that respond at least a quantum later, and
// deliberate same-tick collisions between the domains to stress the
// provenance-stamp ordering.
type shardWorkload struct {
	sys    *System // root (cpu+dev shard)
	msys   *System // DomainMem view (== sys when serial)
	fnCPU  FuncID
	fnMem  FuncID
	fnResp FuncID
	rng    splitmix
	issued int
	maxOps int
	retire uint64
	exitAt int // retire count at which to RequestExit (0 = never)
}

func newShardWorkload(sys *System, seed uint64, maxOps, exitAt int) *shardWorkload {
	w := &shardWorkload{
		sys:    sys,
		msys:   sys.DomainView(DomainMem),
		rng:    splitmix(seed),
		maxOps: maxOps,
		exitAt: exitAt,
	}
	tr := sys.Tracer()
	w.fnCPU = tr.RegisterFunc("test::cpuTick", 100, FuncHot)
	w.fnMem = tr.RegisterFunc("test::memAccess", 200, 0)
	w.fnResp = tr.RegisterFunc("test::resp", 50, FuncHot)
	return w
}

// start schedules the initial CPU tick chain.
func (w *shardWorkload) start() {
	tick := NewEventPrio("cpu.tick", w.fnCPU, PrioCPUTick, nil)
	var body func()
	body = func() {
		w.sys.Tracer().Call(w.fnCPU)
		w.sys.Tracer().Data(uint64(w.sys.Now())<<8|uint64(w.issued&0xff), 8, false)
		if w.issued < w.maxOps {
			w.issued++
			id := w.issued
			// Issue a memory access across the domain boundary. Delays are
			// multiples of the clock period so cross-domain same-tick
			// collisions actually happen.
			d := Tick(1000 * (1 + w.rng.next()%40))
			acc := NewEvent(fmt.Sprintf("mem.acc.%d", id), w.fnMem, nil).SetDomain(DomainMem)
			acc.fire = func() { w.memFire(id) }
			w.sys.ScheduleIn(acc, d)
			w.sys.ScheduleIn(tick, 1000)
		}
	}
	tick.fire = body
	w.sys.Schedule(tick, 1000)
}

// memFire runs on the memory shard: record work, respond >= quantum later.
// It derives its delay from a pure per-id hash, not the shared rng stream —
// under sharding it runs concurrently with the CPU-side generator.
func (w *shardWorkload) memFire(id int) {
	tr := w.msys.Tracer()
	tr.Call(w.fnMem)
	tr.Data(uint64(w.msys.Now())<<8|uint64(id&0xff), 64, true)
	h := splitmix(uint64(id) * 0x5851f42d4c957f2d)
	extra := Tick(1000 * (h.next() % 8))
	resp := NewEvent(fmt.Sprintf("mem.resp.%d", id), w.fnResp, nil) // DomainCPU
	resp.fire = func() { w.respFire(id) }
	w.msys.ScheduleIn(resp, testQuantum+1000+extra)
}

// respFire runs back on the CPU shard.
func (w *shardWorkload) respFire(id int) {
	tr := w.sys.Tracer()
	tr.Call(w.fnResp)
	tr.Data(uint64(w.sys.Now())<<8|uint64(id&0xff), 8, false)
	w.retire++
	if w.exitAt > 0 && w.retire == uint64(w.exitAt) {
		w.sys.RequestExit("test exit", 7)
	}
}

type shardRunOut struct {
	res     RunResult
	log     []string
	evServ  uint64
	retired uint64
}

// runWorkload builds and runs one workload; shards<2 runs serial.
func runWorkload(t *testing.T, shards int, calendar bool, seed uint64, maxOps, exitAt int, limit Tick) shardRunOut {
	t.Helper()
	var q Queue
	if calendar {
		q = NewCalendarQueue(256, 1000)
	} else {
		q = NewHeapQueue()
	}
	tr := &seqTracer{}
	sys := NewSystemWith(q, tr, 42)
	newQ := func() Queue {
		if calendar {
			return NewCalendarQueue(256, 1000)
		}
		return NewHeapQueue()
	}
	sys.EnableSharding(ShardConfig{Shards: shards, Quantum: QuantumFor(testQuantum), NewQueue: newQ})
	if shards >= 2 && !sys.Sharded() {
		t.Fatal("EnableSharding did not take effect")
	}
	w := newShardWorkload(sys, seed, maxOps, exitAt)
	w.start()
	res := sys.Run(limit, 0)
	return shardRunOut{res: res, log: tr.log, evServ: sys.EventsServiced(), retired: w.retire}
}

// TestShardedBitIdentical is the core contract: the sharded run's result,
// host-visible trace order, and event counts are identical to the serial
// run's, for both queue backends and across seeds.
func TestShardedBitIdentical(t *testing.T) {
	for _, calendar := range []bool{false, true} {
		for seed := uint64(1); seed <= 8; seed++ {
			serial := runWorkload(t, 1, calendar, seed, 300, 0, MaxTick)
			sharded := runWorkload(t, 2, calendar, seed, 300, 0, MaxTick)
			name := fmt.Sprintf("calendar=%v/seed=%d", calendar, seed)
			if serial.res != sharded.res {
				t.Fatalf("%s: RunResult diverged: serial %+v sharded %+v", name, serial.res, sharded.res)
			}
			if serial.evServ != sharded.evServ {
				t.Fatalf("%s: EventsServiced diverged: %d vs %d", name, serial.evServ, sharded.evServ)
			}
			if serial.retired != sharded.retired {
				t.Fatalf("%s: retire count diverged: %d vs %d", name, serial.retired, sharded.retired)
			}
			if !reflect.DeepEqual(serial.log, sharded.log) {
				i := 0
				for i < len(serial.log) && i < len(sharded.log) && serial.log[i] == sharded.log[i] {
					i++
				}
				t.Fatalf("%s: trace diverged at record %d (of %d/%d): serial %q sharded %q",
					name, i, len(serial.log), len(sharded.log),
					tail(serial.log, i), tail(sharded.log, i))
			}
		}
	}
}

func tail(log []string, i int) []string {
	if i >= len(log) {
		return nil
	}
	end := i + 5
	if end > len(log) {
		end = len(log)
	}
	return log[i:end]
}

// TestShardedExitTruncation: a component-requested exit must leave results
// identical to serial, including the partial tick's event set.
func TestShardedExitTruncation(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		for _, exitAt := range []int{1, 17, 100} {
			serial := runWorkload(t, 1, false, seed, 300, exitAt, MaxTick)
			sharded := runWorkload(t, 2, false, seed, 300, exitAt, MaxTick)
			name := fmt.Sprintf("seed=%d/exitAt=%d", seed, exitAt)
			if serial.res != sharded.res {
				t.Fatalf("%s: RunResult diverged: serial %+v sharded %+v", name, serial.res, sharded.res)
			}
			if serial.res.Status != ExitRequested || serial.res.ExitCode != 7 {
				t.Fatalf("%s: unexpected serial exit %+v", name, serial.res)
			}
			if !reflect.DeepEqual(serial.log, sharded.log) {
				t.Fatalf("%s: trace diverged (%d vs %d records)", name, len(serial.log), len(sharded.log))
			}
		}
	}
}

// TestShardedTickLimit: limit-bounded runs agree too.
func TestShardedTickLimit(t *testing.T) {
	for _, limit := range []Tick{10_000, 123_000, 1_000_000} {
		serial := runWorkload(t, 1, false, 3, 300, 0, limit)
		sharded := runWorkload(t, 2, false, 3, 300, 0, limit)
		if serial.res != sharded.res {
			t.Fatalf("limit=%d: RunResult diverged: serial %+v sharded %+v", limit, serial.res, sharded.res)
		}
		if !reflect.DeepEqual(serial.log, sharded.log) {
			t.Fatalf("limit=%d: trace diverged (%d vs %d records)", limit, len(serial.log), len(sharded.log))
		}
	}
}

// TestShardedMultiRun: Run may be called repeatedly with growing limits
// (how the experiment drivers advance in intervals).
func TestShardedMultiRun(t *testing.T) {
	run := func(shards int) ([]RunResult, []string, uint64) {
		tr := &seqTracer{}
		sys := NewSystemWith(NewHeapQueue(), tr, 42)
		sys.EnableSharding(ShardConfig{Shards: shards, Quantum: testQuantum})
		w := newShardWorkload(sys, 5, 200, 0)
		w.start()
		var rs []RunResult
		for _, lim := range []Tick{50_000, 150_000, MaxTick} {
			rs = append(rs, sys.Run(lim, 0))
		}
		return rs, tr.log, sys.EventsServiced()
	}
	sr, slog, sev := run(1)
	pr, plog, pev := run(2)
	if !reflect.DeepEqual(sr, pr) {
		t.Fatalf("multi-run results diverged:\nserial  %+v\nsharded %+v", sr, pr)
	}
	if sev != pev {
		t.Fatalf("EventsServiced diverged: %d vs %d", sev, pev)
	}
	if !reflect.DeepEqual(slog, plog) {
		t.Fatalf("trace diverged (%d vs %d records)", len(slog), len(plog))
	}
}

// TestShardedQuantumViolationPanics: a memory-side cross post below the
// quantum floor must fail loudly, identifying the shard and window.
func TestShardedQuantumViolationPanics(t *testing.T) {
	sys := NewSystem(42)
	sys.EnableSharding(ShardConfig{Shards: 2, Quantum: testQuantum})
	msys := sys.DomainView(DomainMem)
	bad := NewEvent("bad.acc", 0, nil).SetDomain(DomainMem)
	bad.fire = func() {
		resp := NewEvent("bad.resp", 0, func() {})
		msys.ScheduleIn(resp, testQuantum-1) // below the floor
	}
	sys.Schedule(bad, 5000)
	kick := NewEvent("cpu.kick", 0, func() {})
	sys.Schedule(kick, 100_000)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a quantum-barrier panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "quantum barrier") || !strings.Contains(msg, "shard 1 (mem)") {
			t.Fatalf("panic message lacks shard/window context: %q", msg)
		}
	}()
	sys.Run(MaxTick, 0)
}

// TestShardedDomainViewIdentity: without sharding every view is the root;
// with sharding the memory view is distinct and shares the registry.
func TestShardedDomainViewIdentity(t *testing.T) {
	sys := NewSystem(1)
	if sys.DomainView(DomainMem) != sys || sys.Sharded() {
		t.Fatal("unsharded system should be its own view")
	}
	sys.EnableSharding(ShardConfig{Shards: 2, Quantum: testQuantum})
	mv := sys.DomainView(DomainMem)
	if mv == sys {
		t.Fatal("sharded mem view should be distinct")
	}
	if sys.DomainView(DomainDev) != sys || sys.DomainView(DomainCPU) != sys {
		t.Fatal("cpu/dev domains should fuse onto the root shard")
	}
	if mv.Stats() != sys.Stats() || mv.Rand() != sys.Rand() {
		t.Fatal("views must share registry state")
	}
	mv.Register(named("behind-the-bus"))
	if sys.Object("behind-the-bus") == nil {
		t.Fatal("registration through a view must land in the shared namespace")
	}
	// Shards > 2 clamp to the two partitionable domains.
	s2 := NewSystem(1)
	s2.EnableSharding(ShardConfig{Shards: 8, Quantum: testQuantum})
	if !s2.Sharded() {
		t.Fatal("shards=8 should clamp to 2, not disable")
	}
}

type named string

func (n named) Name() string { return string(n) }

// TestShardedShardHints: the replayer annotates shard transitions for
// diagnostic consumers without perturbing the record stream.
func TestShardedShardHints(t *testing.T) {
	tr := &seqTracer{}
	sys := NewSystemWith(NewHeapQueue(), tr, 42)
	sys.EnableSharding(ShardConfig{Shards: 2, Quantum: testQuantum})
	w := newShardWorkload(sys, 9, 50, 0)
	w.start()
	sys.Run(MaxTick, 0)
	if len(tr.hints) == 0 {
		t.Fatal("expected shard hints from the replayer")
	}
	seen := map[int]bool{}
	for _, h := range tr.hints {
		seen[h] = true
	}
	if !seen[1] {
		t.Fatal("memory shard never hinted")
	}
}
