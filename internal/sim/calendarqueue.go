package sim

import "fmt"

const overflowPos = 1 << 30

// CalendarQueue is an alternative event-queue backend: a sliding ring of
// fixed-width time buckets with an overflow area for far-future events
// (a ladder/calendar queue). It exists to support the event-queue ablation
// (DESIGN.md A5); behaviour is identical to HeapQueue.
type CalendarQueue struct {
	stamper
	now     Tick
	seq     uint64
	width   Tick
	base    Tick // start of the window covered by buckets[cur]
	cur     int
	buckets [][]*Event
	over    []*Event
	size    int
	fired   uint64
}

// NewCalendarQueue returns a calendar queue with nb buckets of the given
// tick width. Typical values: 256 buckets of 1000 ticks (one guest cycle).
func NewCalendarQueue(nb int, width Tick) *CalendarQueue {
	if nb < 2 || width == 0 {
		panic("sim: calendar queue needs >=2 buckets and nonzero width")
	}
	return &CalendarQueue{width: width, buckets: make([][]*Event, nb)}
}

// Now implements Queue.
func (q *CalendarQueue) Now() Tick { return q.now }

// syncNow advances the clock without firing (see clockSyncer). Bucket state
// is untouched: the sharded engine only syncs to the merged group's minimum
// pending tick, so no pending event falls behind the new clock.
func (q *CalendarQueue) syncNow(t Tick) {
	if t > q.now {
		q.now = t
	}
}

// Len implements Queue.
func (q *CalendarQueue) Len() int { return q.size }

// Empty implements Queue.
func (q *CalendarQueue) Empty() bool { return q.size == 0 }

// Fired returns the total number of events serviced.
func (q *CalendarQueue) Fired() uint64 { return q.fired }

func (q *CalendarQueue) horizon() Tick {
	return q.base + Tick(len(q.buckets))*q.width
}

// Schedule implements Queue.
func (q *CalendarQueue) Schedule(e *Event, when Tick) {
	if e.pos >= 0 {
		panic(fmt.Sprintf("sim: event %s scheduled twice%s", e.name, q.context()))
	}
	if when < q.now {
		panic(fmt.Sprintf("sim: event %s scheduled at %d before now %d%s", e.name, when, q.now, q.context()))
	}
	e.when = when
	e.seq = q.seq
	q.seq++
	q.stampFor(e, q.now)
	q.size++
	if when >= q.horizon() {
		e.pos = overflowPos
		q.over = append(q.over, e)
		return
	}
	// A NextTick-driven slide or jump can move the window start past Now()
	// without firing anything, so a legal schedule (when >= q.now) may still
	// land below q.base; (when-q.base)/q.width would underflow into a garbage
	// bucket. Clamp such events into the current bucket: peek min-scans it,
	// so an earlier-than-window event still fires first.
	idx := q.cur
	if when >= q.base {
		idx = (q.cur + int((when-q.base)/q.width)) % len(q.buckets)
	}
	e.pos = idx
	q.buckets[idx] = append(q.buckets[idx], e)
}

// Deschedule implements Queue.
func (q *CalendarQueue) Deschedule(e *Event) {
	if e.pos < 0 {
		panic(fmt.Sprintf("sim: descheduling unscheduled event %s", e.name))
	}
	var list *[]*Event
	if e.pos == overflowPos {
		list = &q.over
	} else {
		list = &q.buckets[e.pos]
	}
	for i, ev := range *list {
		if ev == e {
			last := len(*list) - 1
			(*list)[i] = (*list)[last]
			(*list)[last] = nil
			*list = (*list)[:last]
			e.pos = -1
			q.size--
			return
		}
	}
	panic(fmt.Sprintf("sim: event %s not found in its bucket", e.name))
}

// Reschedule implements Queue.
func (q *CalendarQueue) Reschedule(e *Event, when Tick) {
	if e.pos >= 0 {
		q.Deschedule(e)
	}
	q.Schedule(e, when)
}

// NextTick implements Queue.
func (q *CalendarQueue) NextTick() Tick {
	e := q.peek()
	if e == nil {
		panic("sim: NextTick on empty queue")
	}
	return e.when
}

// Peek implements Queue.
func (q *CalendarQueue) Peek() *Event { return q.peek() }

// ServiceOne implements Queue.
func (q *CalendarQueue) ServiceOne() bool {
	e := q.peek()
	if e == nil {
		return false
	}
	if e.when < q.now {
		// Guards Now() monotonicity against filing bugs: peek's window
		// slide/jump rewrites q.base/q.cur without consulting q.now, so a
		// mis-bucketed event would surface here as time running backwards.
		panic(fmt.Sprintf("sim: calendar queue time ran backwards: event %s at %d, now %d%s",
			e.name, e.when, q.now, q.context()))
	}
	q.beginDispatch(e)
	q.Deschedule(e)
	q.now = e.when
	q.fired++
	e.fire()
	return true
}

// peek advances buckets as needed and returns the earliest event without
// removing it, or nil if the queue is empty.
func (q *CalendarQueue) peek() *Event {
	if q.size == 0 {
		return nil
	}
	for {
		if b := q.buckets[q.cur]; len(b) > 0 {
			min := b[0]
			for _, ev := range b[1:] {
				if ev.before(min) {
					min = ev
				}
			}
			return min
		}
		if q.size == len(q.over) {
			// Ring is empty: jump the window to the earliest overflow event.
			min := q.over[0]
			for _, ev := range q.over[1:] {
				if ev.before(min) {
					min = ev
				}
			}
			q.base = (min.when / q.width) * q.width
			q.cur = 0
			q.redistribute()
			continue
		}
		// Slide the window forward by one bucket; the vacated bucket now
		// covers the newly opened far window, so pull matching overflow in.
		q.base += q.width
		far := q.cur // vacated bucket becomes the farthest window
		q.cur = (q.cur + 1) % len(q.buckets)
		q.pullOverflow(far, q.horizon()-q.width, q.horizon())
	}
}

// pullOverflow moves overflow events with lo <= when < hi into bucket idx.
func (q *CalendarQueue) pullOverflow(idx int, lo, hi Tick) {
	kept := q.over[:0]
	for _, ev := range q.over {
		if ev.when >= lo && ev.when < hi {
			ev.pos = idx
			q.buckets[idx] = append(q.buckets[idx], ev)
		} else {
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(q.over); i++ {
		q.over[i] = nil
	}
	q.over = kept
}

// checkInvariant validates the queue's structural invariants; the tests and
// the equivalence fuzz target call it after every mutation. The window base
// may legitimately sit ahead of Now() — a NextTick-driven slide or jump moves
// q.base without firing anything — so the monotonicity invariant takes its
// fixed form: whenever q.base > q.now, any ring event below the window start
// must be clamped into the current bucket (see Schedule), which is what keeps
// the service order correct.
func (q *CalendarQueue) checkInvariant() error {
	n := len(q.over)
	for _, ev := range q.over {
		if ev.pos != overflowPos {
			return fmt.Errorf("calendar: overflow event %s has pos %d", ev.name, ev.pos)
		}
		if ev.when < q.horizon() {
			return fmt.Errorf("calendar: overflow event %s at %d is below the horizon %d", ev.name, ev.when, q.horizon())
		}
	}
	for i, b := range q.buckets {
		n += len(b)
		for _, ev := range b {
			if ev.pos != i {
				return fmt.Errorf("calendar: event %s in bucket %d has pos %d", ev.name, i, ev.pos)
			}
			if ev.when >= q.horizon() {
				return fmt.Errorf("calendar: event %s at %d in bucket %d is past the horizon %d", ev.name, ev.when, i, q.horizon())
			}
			if ev.when >= q.base {
				want := (q.cur + int((ev.when-q.base)/q.width)) % len(q.buckets)
				if i != want {
					return fmt.Errorf("calendar: event %s at %d filed in bucket %d, want %d (base %d width %d cur %d)",
						ev.name, ev.when, i, want, q.base, q.width, q.cur)
				}
			} else if i != q.cur {
				return fmt.Errorf("calendar: event %s at %d is below the window start %d but filed in bucket %d, not the current bucket %d",
					ev.name, ev.when, q.base, i, q.cur)
			}
		}
	}
	if n != q.size {
		return fmt.Errorf("calendar: size %d but %d events filed", q.size, n)
	}
	return nil
}

// redistribute re-files every overflow event that now falls inside the window.
func (q *CalendarQueue) redistribute() {
	kept := q.over[:0]
	for _, ev := range q.over {
		if ev.when < q.horizon() {
			idx := (q.cur + int((ev.when-q.base)/q.width)) % len(q.buckets)
			ev.pos = idx
			q.buckets[idx] = append(q.buckets[idx], ev)
		} else {
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(q.over); i++ {
		q.over[i] = nil
	}
	q.over = kept
}
