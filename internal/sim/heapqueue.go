package sim

import "fmt"

// HeapQueue is the default event queue: a binary min-heap ordered by
// (tick, priority, provenance stamp, insertion sequence). All operations are
// O(log n).
type HeapQueue struct {
	stamper
	now   Tick
	seq   uint64
	heap  []*Event
	fired uint64
}

// NewHeapQueue returns an empty heap-backed event queue at tick 0.
func NewHeapQueue() *HeapQueue { return &HeapQueue{} }

// Now implements Queue.
func (q *HeapQueue) Now() Tick { return q.now }

// syncNow advances the clock without firing (see clockSyncer). The sharded
// engine only calls it with the merged group's minimum pending tick, which
// can never undercut a pending local event.
func (q *HeapQueue) syncNow(t Tick) {
	if t > q.now {
		q.now = t
	}
}

// Len implements Queue.
func (q *HeapQueue) Len() int { return len(q.heap) }

// Empty implements Queue.
func (q *HeapQueue) Empty() bool { return len(q.heap) == 0 }

// Fired returns the total number of events serviced.
func (q *HeapQueue) Fired() uint64 { return q.fired }

// Schedule implements Queue.
func (q *HeapQueue) Schedule(e *Event, when Tick) {
	if e.pos >= 0 {
		panic(fmt.Sprintf("sim: event %s scheduled twice%s", e.name, q.context()))
	}
	if when < q.now {
		panic(fmt.Sprintf("sim: event %s scheduled at %d before now %d%s", e.name, when, q.now, q.context()))
	}
	e.when = when
	e.seq = q.seq
	q.seq++
	q.stampFor(e, q.now)
	e.pos = len(q.heap)
	q.heap = append(q.heap, e)
	q.up(e.pos)
}

// Deschedule implements Queue.
func (q *HeapQueue) Deschedule(e *Event) {
	if e.pos < 0 {
		panic(fmt.Sprintf("sim: descheduling unscheduled event %s", e.name))
	}
	q.remove(e.pos)
	e.pos = -1
}

// Reschedule implements Queue.
func (q *HeapQueue) Reschedule(e *Event, when Tick) {
	if e.pos >= 0 {
		q.Deschedule(e)
	}
	q.Schedule(e, when)
}

// NextTick implements Queue.
func (q *HeapQueue) NextTick() Tick {
	if len(q.heap) == 0 {
		panic("sim: NextTick on empty queue")
	}
	return q.heap[0].when
}

// Peek implements Queue.
func (q *HeapQueue) Peek() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// ServiceOne implements Queue.
func (q *HeapQueue) ServiceOne() bool {
	if len(q.heap) == 0 {
		return false
	}
	e := q.heap[0]
	q.beginDispatch(e)
	q.remove(0)
	e.pos = -1
	q.now = e.when
	q.fired++
	e.fire()
	return true
}

func (q *HeapQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.heap[i].before(q.heap[parent]) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *HeapQueue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.heap[l].before(q.heap[small]) {
			small = l
		}
		if r < n && q.heap[r].before(q.heap[small]) {
			small = r
		}
		if small == i {
			return
		}
		q.swap(i, small)
		i = small
	}
}

func (q *HeapQueue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].pos = i
	q.heap[j].pos = j
}

func (q *HeapQueue) remove(i int) {
	n := len(q.heap) - 1
	q.swap(i, n)
	q.heap[n] = nil
	q.heap = q.heap[:n]
	if i < n {
		q.up(i)
		q.down(i)
	}
}
