package sim

import "fmt"

// Domain classifies SimObjects (and the events they schedule) into the
// coarse simulation domains that can advance in parallel under sharded
// execution: the CPU complex (cores, caches, TLBs, syscall emulation), the
// memory system behind the shared bus (DRAM), and platform devices.
//
// Domains exist independently of sharding: every event carries one, and the
// tag is inert (all events share the single queue) until EnableSharding maps
// domains onto shards.
type Domain uint8

// Simulation domains.
const (
	// DomainCPU covers the CPU cores and everything they call
	// synchronously: caches, TLBs, the bus front end, and OS emulation.
	DomainCPU Domain = iota
	// DomainMem covers DRAM behind the shared memory bus — the only
	// components separated from the CPU complex by a latency large enough
	// to make a conservative quantum barrier worthwhile.
	DomainMem
	// DomainDev covers platform devices (UART, timer). Devices interact
	// with the CPUs at zero latency (MMIO, interrupt wires), so their
	// shard is always fused with DomainCPU.
	DomainDev
	// DomainCore1..DomainCore3 tag the private events of guest cores 1..3
	// in a multicore guest (core 0 stays DomainCPU, which also covers the
	// shared memory-side complex the cores reach synchronously). Under the
	// per-core layouts (Shards > 2) each gets its own affine shard — a
	// private queue, clock, and trace arena merged on the coordinator's
	// executor — because cores couple at zero latency through the syscall
	// threading surface (spawn/join/futex wake mutate a sibling core
	// directly) and through synchronous directory invalidations, so no
	// conservative window separating their execution would be safe; the
	// zero-floor core↔core edges encode exactly that. Narrower layouts
	// fuse them back onto shard 0 without touching the core models.
	DomainCore1
	DomainCore2
	DomainCore3
	// NumDomains is the number of simulation domains.
	NumDomains = 6
)

func (d Domain) String() string {
	switch d {
	case DomainCPU:
		return "cpu"
	case DomainMem:
		return "mem"
	case DomainDev:
		return "dev"
	case DomainCore1, DomainCore2, DomainCore3:
		return fmt.Sprintf("cpu%d", 1+uint8(d-DomainCore1))
	}
	return fmt.Sprintf("Domain(%d)", uint8(d))
}

// DomainForCore returns the domain tagging guest core i's private events:
// DomainCPU for core 0 and DomainCore1..DomainCore3 for cores 1..3. Cores
// past 3 fold onto DomainCore3 — still correct under any layout (a domain
// may hold any number of SimObjects), merely coarser.
func DomainForCore(i int) Domain {
	switch {
	case i <= 0:
		return DomainCPU
	case i >= 3:
		return DomainCore3
	}
	return DomainCore1 + Domain(i-1)
}

// QuantumFor derives the conservative barrier quantum from the minimum
// cross-domain event latency: the smallest delta, in ticks, at which any
// event fired on the memory shard may schedule an event onto another
// domain's shard. For the classic hierarchy this is the DRAM row-hit
// latency — every DRAM response is scheduled at least a row hit (plus
// transfer) in the future. The engine lets the CPU shard run up to
// Quantum ticks past the memory shard's earliest pending event, which is
// safe exactly because no memory-side event can make anything happen
// sooner than that. Cross-domain posts below the quantum panic at post
// time, so a config whose real latencies violate the derivation fails
// loudly instead of diverging. It panics on zero: a zero quantum would
// serialize the shards tick by tick and indicates a broken derivation.
func QuantumFor(minCrossLatency Tick) Tick {
	if minCrossLatency == 0 {
		panic("sim: QuantumFor(0): quantum must derive from a nonzero cross-domain latency")
	}
	return minCrossLatency
}

// LookInf marks an absent edge in a lookahead matrix: the source shard
// never schedules events onto the destination, so the barrier ignores the
// pair entirely (the conservative window computation treats it as an
// infinite floor, and a post across it fails loudly).
const LookInf = MaxTick

// MaxShards bounds the shard count of any plan. It exists so per-shard
// engine state (replay marks in flight to the replayer) can live in fixed
// arrays instead of per-batch allocations; 8 covers the widest derived
// layout (cpu+dev, three split core shards, mem) with headroom for
// synthetic test topologies.
const MaxShards = 8

// NewLookahead returns an n-shard lookahead matrix with no edges: every
// entry is LookInf and the diagonal (local scheduling, which never crosses
// a mailbox) is zero. Callers open the edges their topology actually has,
// deriving each floor from the minimum latency of the component path it
// models — QuantumFor for latency-backed edges, zero for edges with no
// floor (which fuse the pair's execution onto the coordinator).
func NewLookahead(n int) [][]Tick {
	m := make([][]Tick, n)
	for i := range m {
		m[i] = make([]Tick, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = LookInf
			}
		}
	}
	return m
}

// ShardPlan is an explicit shard topology: the domain→shard layout, the
// executor class of every shard, and the per-directed-edge lookahead
// matrix. EnableSharding derives a plan from ShardConfig's scalar fields
// for the standard guest layouts; tests and synthetic topologies may pass
// one directly.
//
// Shard 0 is always the coordinator (executed by the goroutine that calls
// Run). Shards with Worker[i] false are "affine": they keep their own
// queue, clock, and trace arena, but execute on the coordinator goroutine
// in globally merged deterministic order — the right class for shards
// connected by a zero-lookahead edge (guest cores coupling through shared
// functional memory, threading syscalls, and synchronous directory
// invalidations). Shards with Worker[i] true execute on their own
// goroutine under conservative CMB windows derived from Look.
type ShardPlan struct {
	// Layout maps each Domain to its shard index (0..len(Worker)-1).
	Layout [NumDomains]int
	// Worker marks the shards that run on their own goroutine. Worker[0]
	// must be false: the coordinator executes shard 0.
	Worker []bool
	// Look[src][dst] is the conservative floor, in ticks, below which no
	// event fired on shard src may schedule an event onto shard dst
	// (LookInf = no such edge exists). The barrier advances each worker
	// shard to the minimum over its incoming edges of the neighbor's
	// window frontier plus the edge lookahead; a uniform matrix degrades
	// to the single-quantum behavior of the original two-shard engine.
	Look [][]Tick
}

// ShardInfo reports the effective layout EnableSharding settled on, so
// callers can validate and log it once at startup instead of discovering a
// silent clamp later.
type ShardInfo struct {
	// Requested is the shard count asked for (ShardConfig.Shards).
	Requested int
	// Shards is the effective shard count after clamping to the
	// partitionable domains.
	Shards int
	// Workers is how many shards run on their own goroutine.
	Workers int
	// Clamped reports Requested != Shards.
	Clamped bool
	// Layout renders the effective topology, e.g. "cpu+dev|cpu1|cpu2|mem".
	Layout string
}

// ShardConfig configures sharded execution of one System (see
// System.EnableSharding).
type ShardConfig struct {
	// Shards is the requested shard count. Values below 2 leave the system
	// serial; values above the number of partitionable domains are clamped
	// (DomainDev is always fused with DomainCPU). With Cores <= 1 the
	// maximum is 2 (cpu+dev | mem); with Cores > 1 and Shards > 2 the
	// derived plan un-fuses the per-core domains, one shard per extra core
	// domain, up to 2+min(Cores-1, 3).
	Shards int
	// Quantum is the conservative barrier quantum in ticks, derived with
	// QuantumFor from the slowest cross-domain latency floor. In the
	// derived plans it is the mem→group edge lookahead (the minimum delta at
	// which a memory-side event may schedule back onto a CPU-side shard).
	Quantum Tick
	// BusLookahead is the group→mem edge floor: the minimum delta, in
	// ticks, at which any CPU-side event may schedule an event onto the
	// memory shard — the bus forward latency in the classic hierarchy,
	// derived with QuantumFor. Zero leaves the edge unfloored (always safe,
	// merely conservative: the engine then never extends a memory window
	// past the CPU side's next pending event). Posts below a nonzero floor
	// panic at post time naming the edge.
	BusLookahead Tick
	// NewQueue builds the event-queue backend for each additional shard;
	// it should match the primary queue's backend (heap or calendar).
	NewQueue func() Queue
	// Cores is the guest core count. With Shards > 2 it selects the
	// per-core layout: core i's private domain (DomainForCore) gets its
	// own coordinator-fused shard next to the memory worker shard.
	Cores int
	// Plan, when non-nil, overrides the derived topology entirely
	// (Shards/Quantum/Cores are ignored except for validation).
	Plan *ShardPlan
	// Log, when non-nil, receives one line describing the effective
	// layout at EnableSharding time — the startup visibility hook for
	// clamped requests.
	Log func(string)
}

// String renders the effective layout for the startup log line, e.g.
// "5 shards (1 worker, requested 8, clamped): cpu+dev|cpu1|cpu2|cpu3|mem".
func (i ShardInfo) String() string {
	s := fmt.Sprintf("%d shards (%d worker", i.Shards, i.Workers)
	if i.Clamped {
		s += fmt.Sprintf(", requested %d, clamped", i.Requested)
	}
	return s + "): " + i.Layout
}

// derivePlan builds the standard guest topology for one ShardConfig: shard 0
// is the coordinator (DomainCPU + DomainDev and any core domains left
// fused), the last shard is the memory worker, and — with Cores > 1 and
// Shards > 2 — up to min(Shards-2, Cores-1, 3) per-core domains get their
// own affine shard between them. The lookahead matrix opens group→mem edges
// at BusLookahead, mem→group edges at Quantum, and group↔group edges at
// zero: guest cores couple at zero latency (threading syscalls mutate
// sibling cores at the same tick), so no conservative window could separate
// them — they merge onto the coordinator's executor instead, which is the
// merge-order meaning of the "core↔core needs no mailbox" claim.
func derivePlan(cfg ShardConfig) *ShardPlan {
	cores := cfg.Cores
	if cores < 1 {
		cores = 1
	}
	perCore := 0
	if cfg.Shards > 2 && cores > 1 {
		perCore = cfg.Shards - 2
		if m := cores - 1; perCore > m {
			perCore = m
		}
		if perCore > 3 {
			perCore = 3
		}
	}
	n := 2 + perCore
	memShard := n - 1
	p := &ShardPlan{Worker: make([]bool, n), Look: NewLookahead(n)}
	p.Worker[memShard] = true
	p.Layout[DomainMem] = memShard
	for c := 1; c <= perCore; c++ {
		p.Layout[DomainCore1+Domain(c-1)] = c
	}
	for src := 0; src < memShard; src++ {
		p.Look[src][memShard] = cfg.BusLookahead
		p.Look[memShard][src] = cfg.Quantum
		for dst := 0; dst < memShard; dst++ {
			if src != dst {
				p.Look[src][dst] = 0
			}
		}
	}
	return p
}

// validate checks a plan's structural invariants, panicking with a
// configuration-time message on violation.
func (p *ShardPlan) validate() {
	n := len(p.Worker)
	if n < 2 {
		panic("sim: ShardPlan needs at least 2 shards")
	}
	if n > MaxShards {
		panic(fmt.Sprintf("sim: ShardPlan has %d shards, max %d", n, MaxShards))
	}
	if p.Worker[0] {
		panic("sim: ShardPlan shard 0 must be the coordinator (Worker[0] false)")
	}
	workers := 0
	for _, w := range p.Worker {
		if w {
			workers++
		}
	}
	if workers != 1 {
		panic(fmt.Sprintf("sim: ShardPlan has %d worker shards; the engine runs exactly one (the memory system) — affine shards cover zero-lookahead topologies", workers))
	}
	if len(p.Look) != n {
		panic(fmt.Sprintf("sim: ShardPlan lookahead matrix is %dx? for %d shards", len(p.Look), n))
	}
	for i, row := range p.Look {
		if len(row) != n {
			panic(fmt.Sprintf("sim: ShardPlan lookahead row %d has %d entries for %d shards", i, len(row), n))
		}
		if row[i] != 0 {
			panic(fmt.Sprintf("sim: ShardPlan lookahead diagonal [%d][%d] must be 0", i, i))
		}
	}
	for d, sh := range p.Layout {
		if sh < 0 || sh >= n {
			panic(fmt.Sprintf("sim: ShardPlan maps domain %s to shard %d (have %d)", Domain(d), sh, n))
		}
	}
}

// layoutString renders a plan as the stable shard-layout notation: shard 0
// is "cpu+dev" — or "cpuxN+dev" for a multicore guest whose core domains
// ALL fuse onto it, making the fusing visible in the startup log — and
// every other shard lists its domains joined by "+". Partially-fused
// layouts keep the plain "cpu+dev" spelling (extra cores folded onto shard
// 0 or a shared per-core shard ride along implicitly). The rendering must
// stay in lockstep with core.ShardLayout, the checkpoint-cache-key mirror
// (core's TestShardLayoutMatchesEngine pins the two together).
func (p *ShardPlan) layoutString(cores int) string {
	s := "cpu+dev"
	if cores > 1 &&
		p.Layout[DomainCore1] == 0 && p.Layout[DomainCore2] == 0 && p.Layout[DomainCore3] == 0 {
		s = fmt.Sprintf("cpux%d+dev", cores)
	}
	for sh := 1; sh < len(p.Worker); sh++ {
		s += "|"
		sep := ""
		for d := Domain(0); d < NumDomains; d++ {
			if p.Layout[d] == sh {
				s += sep + d.String()
				sep = "+"
			}
		}
	}
	return s
}
