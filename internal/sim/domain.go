package sim

import "fmt"

// Domain classifies SimObjects (and the events they schedule) into the
// coarse simulation domains that can advance in parallel under sharded
// execution: the CPU complex (cores, caches, TLBs, syscall emulation), the
// memory system behind the shared bus (DRAM), and platform devices.
//
// Domains exist independently of sharding: every event carries one, and the
// tag is inert (all events share the single queue) until EnableSharding maps
// domains onto shards.
type Domain uint8

// Simulation domains.
const (
	// DomainCPU covers the CPU cores and everything they call
	// synchronously: caches, TLBs, the bus front end, and OS emulation.
	DomainCPU Domain = iota
	// DomainMem covers DRAM behind the shared memory bus — the only
	// components separated from the CPU complex by a latency large enough
	// to make a conservative quantum barrier worthwhile.
	DomainMem
	// DomainDev covers platform devices (UART, timer). Devices interact
	// with the CPUs at zero latency (MMIO, interrupt wires), so their
	// shard is always fused with DomainCPU.
	DomainDev
	// DomainCore1..DomainCore3 tag the private events of guest cores 1..3
	// in a multicore guest (core 0 stays DomainCPU, which also covers the
	// shared memory-side complex the cores reach synchronously). Like
	// DomainDev, the core domains are fused onto the coordinator shard in
	// the current layout: cores couple at zero latency through the syscall
	// threading surface (spawn/join/futex wake mutate a sibling core
	// directly) and at L1 latency through the coherence directory, so no
	// conservative quantum separating them would be both safe and
	// worthwhile. The tags still route through the engine's layout, so a
	// future layout can split them without touching the core models.
	DomainCore1
	DomainCore2
	DomainCore3
	// NumDomains is the number of simulation domains.
	NumDomains = 6
)

func (d Domain) String() string {
	switch d {
	case DomainCPU:
		return "cpu"
	case DomainMem:
		return "mem"
	case DomainDev:
		return "dev"
	case DomainCore1, DomainCore2, DomainCore3:
		return fmt.Sprintf("cpu%d", 1+uint8(d-DomainCore1))
	}
	return fmt.Sprintf("Domain(%d)", uint8(d))
}

// DomainForCore returns the domain tagging guest core i's private events:
// DomainCPU for core 0 and DomainCore1..DomainCore3 for cores 1..3. Cores
// past 3 fold onto DomainCore3 — still correct under any layout (a domain
// may hold any number of SimObjects), merely coarser.
func DomainForCore(i int) Domain {
	switch {
	case i <= 0:
		return DomainCPU
	case i >= 3:
		return DomainCore3
	}
	return DomainCore1 + Domain(i-1)
}

// QuantumFor derives the conservative barrier quantum from the minimum
// cross-domain event latency: the smallest delta, in ticks, at which any
// event fired on the memory shard may schedule an event onto another
// domain's shard. For the classic hierarchy this is the DRAM row-hit
// latency — every DRAM response is scheduled at least a row hit (plus
// transfer) in the future. The engine lets the CPU shard run up to
// Quantum ticks past the memory shard's earliest pending event, which is
// safe exactly because no memory-side event can make anything happen
// sooner than that. Cross-domain posts below the quantum panic at post
// time, so a config whose real latencies violate the derivation fails
// loudly instead of diverging. It panics on zero: a zero quantum would
// serialize the shards tick by tick and indicates a broken derivation.
func QuantumFor(minCrossLatency Tick) Tick {
	if minCrossLatency == 0 {
		panic("sim: QuantumFor(0): quantum must derive from a nonzero cross-domain latency")
	}
	return minCrossLatency
}

// ShardConfig configures sharded execution of one System (see
// System.EnableSharding).
type ShardConfig struct {
	// Shards is the requested shard count. Values below 2 leave the system
	// serial; values above the number of partitionable domains are clamped
	// (DomainDev is always fused with DomainCPU, so the current maximum is
	// 2: cpu+dev | mem).
	Shards int
	// Quantum is the conservative barrier quantum in ticks, derived with
	// QuantumFor from the slowest cross-domain latency floor.
	Quantum Tick
	// NewQueue builds the event-queue backend for each additional shard;
	// it should match the primary queue's backend (heap or calendar).
	NewQueue func() Queue
}
