package sim

import "sync"

// Deferred tracer replay for sharded execution.
//
// Under sharded execution every shard's tracer activity (Call/Data records)
// is appended to a per-shard log instead of being fed to the real Tracer
// inline: the real Tracer is a stateful host model (or its ring encoder)
// whose record order must equal the serial simulation's byte for byte, and
// two shards firing concurrently cannot share it. A replayer goroutine
// k-way-merges the per-shard logs below the published safe frontier — in
// exactly the event order the single-queue simulation would have used — and
// feeds the merged stream to the real Tracer. This also moves the entire
// host-model/encoder cost off the simulation-critical shards, which is
// where the sharded wall-clock win comes from on top of the DRAM-event
// offload.

// recKind distinguishes deferred tracer records.
type recKind uint8

const (
	recCall recKind = iota
	recData
)

// traceRec is one deferred Tracer call.
type traceRec struct {
	kind  recKind
	write bool
	size  uint32
	fn    FuncID
	addr  uint64
}

// groupKey is the full queue-ordering key of one dispatched event: the
// deterministic merge position of its trace group. It mirrors Event.before
// (minus the per-queue seq, which is not comparable across shards; residual
// full-key ties merge lower shard first).
type groupKey struct {
	when  Tick
	prio  int
	stamp schedStamp
}

// less orders group keys like Event.before.
func (k groupKey) less(o groupKey) bool {
	if k.when != o.when {
		return k.when < o.when
	}
	if k.prio != o.prio {
		return k.prio < o.prio
	}
	l, _ := k.stamp.less(o.stamp)
	return l
}

// segment is a flushable chunk of one shard's trace log: a flat record
// arena indexed by per-group offsets, so appends never copy per record.
type segment struct {
	shard int
	keys  []groupKey
	offs  []int // offs[i] = start of group i in recs; len(keys)+1 entries
	recs  []traceRec
}

// segPool recycles drained trace segments (and their backing arenas)
// between the replayer and the shard logs: a simulation flushes one segment
// per active shard per barrier round, and without reuse the arena batches
// dominated allocation (~300 allocs/op and 3x bytes/op in the sharded
// co-sim benchmark). Pooling is invisible to determinism — a recycled
// segment is length-reset before reuse and carries no ordering state.
var segPool = sync.Pool{New: func() any { return new(segment) }}

// recycleSegment resets a fully replayed segment and returns it to the pool,
// keeping the arena capacity.
func recycleSegment(s *segment) {
	s.keys = s.keys[:0]
	s.offs = s.offs[:0]
	s.recs = s.recs[:0]
	segPool.Put(s)
}

// segsSlicePool recycles the small per-batch segment-pointer slices handed
// from the coordinator to the replayer (boxed behind a pointer so the pool
// round-trip itself does not allocate).
var segsSlicePool = sync.Pool{New: func() any {
	s := make([]*segment, 0, MaxShards)
	return &s
}}

func takeSegsSlice() []*segment { return (*segsSlicePool.Get().(*[]*segment))[:0] }

func putSegsSlice(s []*segment) {
	s = s[:0]
	segsSlicePool.Put(&s)
}

// shardLog accumulates trace groups for one shard. It is written only by
// the goroutine currently executing that shard and handed over (flushed)
// only at barrier points, so it needs no locking.
type shardLog struct {
	shard int
	seg   *segment
}

func newShardLog(shard int) *shardLog {
	seg := segPool.Get().(*segment)
	seg.shard = shard
	return &shardLog{shard: shard, seg: seg}
}

// begin opens a new trace group for the event with the given key: offs[i]
// records where group i's records start. take appends the terminator.
func (l *shardLog) begin(k groupKey) {
	l.seg.keys = append(l.seg.keys, k)
	l.seg.offs = append(l.seg.offs, len(l.seg.recs))
}

func (l *shardLog) call(fn FuncID) {
	l.seg.recs = append(l.seg.recs, traceRec{kind: recCall, fn: fn})
}

func (l *shardLog) data(addr uint64, size uint32, write bool) {
	l.seg.recs = append(l.seg.recs, traceRec{kind: recData, addr: addr, size: size, write: write})
}

// take detaches the filled segment, replacing it from the segment pool (a
// recycled arena in steady state, so barrier rounds stop allocating).
func (l *shardLog) take() *segment {
	s := l.seg
	// Terminate: offs gets len(keys)+1 entries, the last one len(recs), so
	// group i's records are recs[offs[i]:offs[i+1]].
	s.offs = append(s.offs, len(s.recs))
	ns := segPool.Get().(*segment)
	ns.shard = l.shard
	l.seg = ns
	return s
}

// empty reports whether the current segment holds no groups.
func (l *shardLog) empty() bool { return len(l.seg.keys) == 0 }

// replayBatch is one hand-off from the coordinator to the replayer: newly
// completed segments plus the per-shard safe marks. mark[s] guarantees that
// shard s will never log another group with key.when < mark[s]. The mark
// array is sized by MaxShards so batches carry it inline, allocation-free.
type replayBatch struct {
	segs  []*segment
	mark  [MaxShards]Tick
	final bool // no further batches: drain everything
}

// shardTracer is the per-view Tracer shim installed by EnableSharding. While
// the engine is not running (construction, startup, between Run calls) it is
// a transparent passthrough to the real tracer; during a sharded run Call and
// Data append to the view's shard log for deferred replay. RegisterFunc and
// AllocData mutate tracer state that cannot be replayed and are construction-
// time operations everywhere in the tree, so mid-run use panics.
type shardTracer struct {
	eng   *shardEngine
	shard int
	under Tracer
}

func (t *shardTracer) RegisterFunc(name string, codeBytes int, flags FuncFlags) FuncID {
	if t.eng.running {
		panic("sim: RegisterFunc during a sharded run (register host functions at construction time)")
	}
	return t.under.RegisterFunc(name, codeBytes, flags)
}

// logShard resolves which shard log records emitted through this view belong
// to: the worker logs to its own shard, while group views log to the shard
// whose event the coordinator is currently dispatching (a group callback
// reaches synchronously across group views, and its records belong to the
// dispatched event's group — see shardEngine.cur).
func (t *shardTracer) logShard() int {
	if t.shard == t.eng.mem {
		return t.shard
	}
	return t.eng.cur
}

func (t *shardTracer) Call(fn FuncID) {
	if !t.eng.running {
		t.under.Call(fn)
		return
	}
	if t.eng.traceOff {
		return
	}
	t.eng.log[t.logShard()].call(fn)
}

func (t *shardTracer) Data(addr uint64, size uint32, write bool) {
	if !t.eng.running {
		t.under.Data(addr, size, write)
		return
	}
	if t.eng.traceOff {
		return
	}
	t.eng.log[t.logShard()].data(addr, size, write)
}

func (t *shardTracer) AllocData(name string, bytes uint64) uint64 {
	if t.eng.running {
		panic("sim: AllocData during a sharded run (allocate host data at construction time)")
	}
	return t.under.AllocData(name, bytes)
}

// ShardHinter is optionally implemented by Tracers that want to know which
// shard produced the records that follow (a diagnostic annotation; it must
// not influence modeled outcomes, which are bit-identical at every shard
// count).
type ShardHinter interface {
	SetShardHint(shard int)
}

// replayStream is the replayer's view of one shard's ordered group stream.
type replayStream struct {
	segs []*segment
	si   int // current segment
	gi   int // current group within it
}

func (st *replayStream) head() (groupKey, bool) {
	for st.si < len(st.segs) {
		if st.gi < len(st.segs[st.si].keys) {
			return st.segs[st.si].keys[st.gi], true
		}
		// Fully replayed: recycle the segment's arenas. Consumed entries are
		// also dropped from the slice head once it is fully drained (the
		// stream keeps absolute indices otherwise).
		recycleSegment(st.segs[st.si])
		st.segs[st.si] = nil
		st.si++
		st.gi = 0
	}
	st.segs = st.segs[:0]
	st.si = 0
	return groupKey{}, false
}

// pop replays the current head group into tr and advances.
func (st *replayStream) pop(tr Tracer) {
	seg := st.segs[st.si]
	lo, hi := seg.offs[st.gi], seg.offs[st.gi+1]
	for i := lo; i < hi; i++ {
		r := &seg.recs[i]
		if r.kind == recCall {
			tr.Call(r.fn)
		} else {
			tr.Data(r.addr, r.size, r.write)
		}
	}
	st.gi++
}

// replayLoop drains replayBatches, k-way-merging the per-shard streams in
// deterministic key order (ties: lower shard first) and feeding the real
// tracer. The merge order is a pure function of the logs; batch boundaries
// and marks only affect when groups become eligible, never their order.
func (eng *shardEngine) replayLoop() {
	defer close(eng.replayDone)
	tr := eng.under
	hinter, _ := tr.(ShardHinter)
	curShard := 0
	streams := make([]replayStream, len(eng.views))
	var mark [MaxShards]Tick
	final := false
	for !final {
		batch, ok := <-eng.replayCh
		if !ok {
			break
		}
		for _, seg := range batch.segs {
			streams[seg.shard].segs = append(streams[seg.shard].segs, seg)
		}
		if batch.segs != nil {
			putSegsSlice(batch.segs)
		}
		mark = batch.mark
		final = batch.final
		for {
			// The minimum visible head is the serial-next group among the
			// streams that have one: each stream lists its shard's
			// dispatches in shard pop order, which equals the serial order
			// restricted to that shard, so the serial-next event is always
			// some stream's head and the key comparison (full ties: lower
			// shard first) decides which. Emitting it is safe once every
			// stream with NO visible head provably cannot log anything
			// below it (its mark, or the final batch).
			s := -1
			var k groupKey
			for i := range streams {
				ki, ok := streams[i].head()
				if !ok {
					continue
				}
				if s < 0 || ki.less(k) {
					s, k = i, ki
				}
			}
			if s < 0 {
				break
			}
			if !final {
				safe := true
				for i := range streams {
					if i == s {
						continue
					}
					if _, has := streams[i].head(); has {
						continue // a visible head is >= k by selection
					}
					if k.when >= mark[i] {
						safe = false
						break
					}
				}
				if !safe {
					break
				}
			}
			if hinter != nil && s != curShard {
				hinter.SetShardHint(s)
				curShard = s
			}
			streams[s].pop(tr)
		}
	}
}
