package sim

// Deferred tracer replay for sharded execution.
//
// Under sharded execution every shard's tracer activity (Call/Data records)
// is appended to a per-shard log instead of being fed to the real Tracer
// inline: the real Tracer is a stateful host model (or its ring encoder)
// whose record order must equal the serial simulation's byte for byte, and
// two shards firing concurrently cannot share it. A replayer goroutine
// k-way-merges the per-shard logs below the published safe frontier — in
// exactly the event order the single-queue simulation would have used — and
// feeds the merged stream to the real Tracer. This also moves the entire
// host-model/encoder cost off the simulation-critical shards, which is
// where the sharded wall-clock win comes from on top of the DRAM-event
// offload.

// recKind distinguishes deferred tracer records.
type recKind uint8

const (
	recCall recKind = iota
	recData
)

// traceRec is one deferred Tracer call.
type traceRec struct {
	kind  recKind
	write bool
	size  uint32
	fn    FuncID
	addr  uint64
}

// groupKey is the full queue-ordering key of one dispatched event: the
// deterministic merge position of its trace group. It mirrors Event.before
// (minus the per-queue seq, which is not comparable across shards; residual
// full-key ties merge lower shard first).
type groupKey struct {
	when  Tick
	prio  int
	stamp schedStamp
}

// less orders group keys like Event.before.
func (k groupKey) less(o groupKey) bool {
	if k.when != o.when {
		return k.when < o.when
	}
	if k.prio != o.prio {
		return k.prio < o.prio
	}
	l, _ := k.stamp.less(o.stamp)
	return l
}

// segment is a flushable chunk of one shard's trace log: a flat record
// arena indexed by per-group offsets, so appends never copy per record.
type segment struct {
	shard int
	keys  []groupKey
	offs  []int // offs[i] = start of group i in recs; len(keys)+1 entries
	recs  []traceRec
}

// shardLog accumulates trace groups for one shard. It is written only by
// the goroutine currently executing that shard and handed over (flushed)
// only at barrier points, so it needs no locking.
type shardLog struct {
	shard int
	seg   *segment
}

func newShardLog(shard int) *shardLog {
	return &shardLog{shard: shard, seg: &segment{shard: shard}}
}

// begin opens a new trace group for the event with the given key: offs[i]
// records where group i's records start. take appends the terminator.
func (l *shardLog) begin(k groupKey) {
	l.seg.keys = append(l.seg.keys, k)
	l.seg.offs = append(l.seg.offs, len(l.seg.recs))
}

func (l *shardLog) call(fn FuncID) {
	l.seg.recs = append(l.seg.recs, traceRec{kind: recCall, fn: fn})
}

func (l *shardLog) data(addr uint64, size uint32, write bool) {
	l.seg.recs = append(l.seg.recs, traceRec{kind: recData, addr: addr, size: size, write: write})
}

// take detaches the filled segment, leaving a fresh one sized by hindsight.
func (l *shardLog) take() *segment {
	s := l.seg
	// Terminate: offs gets len(keys)+1 entries, the last one len(recs), so
	// group i's records are recs[offs[i]:offs[i+1]].
	s.offs = append(s.offs, len(s.recs))
	l.seg = &segment{
		shard: l.shard,
		keys:  make([]groupKey, 0, cap(s.keys)),
		offs:  make([]int, 0, cap(s.offs)),
		recs:  make([]traceRec, 0, cap(s.recs)),
	}
	return s
}

// empty reports whether the current segment holds no groups.
func (l *shardLog) empty() bool { return len(l.seg.keys) == 0 }

// replayBatch is one hand-off from the coordinator to the replayer: newly
// completed segments plus the per-shard safe marks. mark[s] guarantees that
// shard s will never log another group with key.when < mark[s].
type replayBatch struct {
	segs  []*segment
	mark  [2]Tick
	final bool // no further batches: drain everything
}

// shardTracer is the per-view Tracer shim installed by EnableSharding. While
// the engine is not running (construction, startup, between Run calls) it is
// a transparent passthrough to the real tracer; during a sharded run Call and
// Data append to the view's shard log for deferred replay. RegisterFunc and
// AllocData mutate tracer state that cannot be replayed and are construction-
// time operations everywhere in the tree, so mid-run use panics.
type shardTracer struct {
	eng   *shardEngine
	shard int
	under Tracer
}

func (t *shardTracer) RegisterFunc(name string, codeBytes int, flags FuncFlags) FuncID {
	if t.eng.running {
		panic("sim: RegisterFunc during a sharded run (register host functions at construction time)")
	}
	return t.under.RegisterFunc(name, codeBytes, flags)
}

func (t *shardTracer) Call(fn FuncID) {
	if !t.eng.running {
		t.under.Call(fn)
		return
	}
	if t.eng.traceOff {
		return
	}
	t.eng.log[t.shard].call(fn)
}

func (t *shardTracer) Data(addr uint64, size uint32, write bool) {
	if !t.eng.running {
		t.under.Data(addr, size, write)
		return
	}
	if t.eng.traceOff {
		return
	}
	t.eng.log[t.shard].data(addr, size, write)
}

func (t *shardTracer) AllocData(name string, bytes uint64) uint64 {
	if t.eng.running {
		panic("sim: AllocData during a sharded run (allocate host data at construction time)")
	}
	return t.under.AllocData(name, bytes)
}

// ShardHinter is optionally implemented by Tracers that want to know which
// shard produced the records that follow (a diagnostic annotation; it must
// not influence modeled outcomes, which are bit-identical at every shard
// count).
type ShardHinter interface {
	SetShardHint(shard int)
}

// replayStream is the replayer's view of one shard's ordered group stream.
type replayStream struct {
	segs []*segment
	si   int // current segment
	gi   int // current group within it
}

func (st *replayStream) head() (groupKey, bool) {
	for st.si < len(st.segs) {
		if st.gi < len(st.segs[st.si].keys) {
			return st.segs[st.si].keys[st.gi], true
		}
		st.si++
		st.gi = 0
	}
	return groupKey{}, false
}

// pop replays the current head group into tr and advances.
func (st *replayStream) pop(tr Tracer) {
	seg := st.segs[st.si]
	lo, hi := seg.offs[st.gi], seg.offs[st.gi+1]
	for i := lo; i < hi; i++ {
		r := &seg.recs[i]
		if r.kind == recCall {
			tr.Call(r.fn)
		} else {
			tr.Data(r.addr, r.size, r.write)
		}
	}
	st.gi++
}

// replayLoop drains replayBatches, merging the two shard streams in
// deterministic key order (ties: lower shard first) and feeding the real
// tracer. The merge order is a pure function of the logs; batch boundaries
// and marks only affect when groups become eligible, never their order.
func (eng *shardEngine) replayLoop() {
	defer close(eng.replayDone)
	tr := eng.under
	hinter, _ := tr.(ShardHinter)
	curShard := 0
	var streams [2]replayStream
	var mark [2]Tick
	final := false
	for !final {
		batch, ok := <-eng.replayCh
		if !ok {
			break
		}
		for _, seg := range batch.segs {
			streams[seg.shard].segs = append(streams[seg.shard].segs, seg)
		}
		mark = batch.mark
		final = batch.final
		for {
			k0, ok0 := streams[0].head()
			k1, ok1 := streams[1].head()
			// With both heads visible the smaller key is the serial-next
			// group: each stream lists its shard's dispatches in shard pop
			// order, which equals the serial order restricted to that shard,
			// so the serial-next event is always one of the two heads and the
			// key comparison (full ties: lower shard first) decides which.
			// With only one head visible, emitting is safe once the other
			// shard provably cannot log anything below it (its mark, or the
			// final batch).
			s := -1
			switch {
			case ok0 && ok1:
				if k1.less(k0) {
					s = 1
				} else {
					s = 0
				}
			case ok0 && (final || k0.when < mark[1]):
				s = 0
			case ok1 && (final || k1.when < mark[0]):
				s = 1
			}
			if s < 0 {
				break
			}
			if hinter != nil && s != curShard {
				hinter.SetShardHint(s)
				curShard = s
			}
			streams[s].pop(tr)
		}
	}
}
