package sim

import "fmt"

// Sharded per-domain event queues under a conservative quantum barrier.
//
// EnableSharding splits one System across two event queues that advance in
// parallel: shard 0 (DomainCPU + DomainDev, executed by the goroutine that
// called Run — the coordinator) and shard 1 (DomainMem, executed by a worker
// goroutine). The protocol is conservative PDES specialized to the memory
// hierarchy's latency structure:
//
//   - Cross-shard Schedule calls never touch the other queue directly; they
//     are appended to a per-direction outbox (mailbox) and merged into the
//     destination queue at barrier points, in posting order, carrying the
//     poster's provenance stamp. Merge points and order are pure functions
//     of simulation state, so event seq assignment — and with it every stat,
//     trace, and report — is bit-identical at every shard count.
//
//   - The memory shard may fire events strictly below the earliest tick any
//     future cross post onto it can target: the CPU queue's next event tick
//     (a CPU event's posts land no earlier than the event itself), capped by
//     its own next event plus the quantum (response chains bounce back no
//     sooner). The window [floor, horizon) is handed to the worker as a
//     grant.
//
//   - The CPU shard may fire events strictly below the earliest possible
//     memory-side post onto it: the memory shard's earliest pending or
//     in-flight event — including posts sitting in the CPU→mem outbox —
//     plus the quantum. The bound tightens live as the burst itself posts
//     to memory, so no configured bus-latency floor is needed.
//
// The quantum is derived from the minimum cross-domain latency (QuantumFor);
// a runtime assertion panics on any memory-side post below it, so a config
// that violates the derivation fails loudly instead of diverging.
type shardEngine struct {
	views    [2]*System
	layout   [NumDomains]int
	quantum  Tick
	under    Tracer // the real tracer, fed only by the replayer
	traceOff bool   // under is a NopTracer: skip logging entirely
	running  bool

	outbox [2]outboxT // outbox[src]: posts bound for the other shard
	log    [2]*shardLog

	grantCh    chan grant
	joinCh     chan joinMsg
	replayCh   chan replayBatch
	replayDone chan struct{}

	// Coordinator-owned state; the worker reads grantFloor/grantHorizon only
	// inside a granted window (the grant send/join receive order the access).
	workerBusy   bool
	grantFloor   Tick
	grantHorizon Tick
	mark         [2]Tick // per-shard replay marks (see replayBatch)
}

// post is one cross-shard Schedule waiting in a mailbox.
type post struct {
	e     *Event
	when  Tick
	stamp schedStamp
}

type outboxT struct {
	posts   []post
	minWhen Tick // min when of pending posts; MaxTick when empty
}

// grant hands the worker one firing window: events with when < horizon and
// when <= limit.
type grant struct {
	horizon Tick
	limit   Tick
}

// joinMsg reports a completed window back to the coordinator.
type joinMsg struct {
	panicv any // recovered panic to re-raise on the coordinator, or nil
}

// addSat is saturating tick addition.
func addSat(a, b Tick) Tick {
	if c := a + b; c >= a {
		return c
	}
	return MaxTick
}

// describe renders a shard for panic messages.
func (eng *shardEngine) describe(shard int) string {
	if shard == eng.layout[DomainMem] {
		return fmt.Sprintf("shard %d (mem), window [%d, %d), quantum %d",
			shard, eng.grantFloor, eng.grantHorizon, eng.quantum)
	}
	return fmt.Sprintf("shard %d (cpu+dev)", shard)
}

// post routes a cross-shard Schedule into the source shard's outbox. The
// fnSchedule trace call and the provenance stamp are taken on the posting
// side, exactly where the single-queue run would take them.
func (eng *shardEngine) post(src *System, dst int, e *Event, when Tick) {
	src.tracer.Call(src.fnSchedule)
	if !eng.running {
		// Construction/startup time: insert directly into the owning queue,
		// which validates when against its own clock (still 0 pre-run).
		//lint:allow pastsched destination queue validates when >= its Now()
		eng.views[dst].queue.Schedule(e, when)
		return
	}
	if e.pos >= 0 {
		panic(fmt.Sprintf("sim: event %s scheduled twice [%s]", e.name, eng.describe(src.shard)))
	}
	now := src.queue.Now()
	if when < now {
		panic(fmt.Sprintf("sim: event %s scheduled at %d before now %d [%s]",
			e.name, when, now, eng.describe(src.shard)))
	}
	if src.shard == eng.layout[DomainMem] && when < addSat(now, eng.quantum) {
		panic(fmt.Sprintf(
			"sim: cross-shard post of %s at %d violates the quantum barrier: %s is at %d, floor %d",
			e.name, when, eng.describe(src.shard), now, addSat(now, eng.quantum)))
	}
	stp := schedStamp{at: now}
	if st, ok := src.queue.(stampTaker); ok {
		stp = st.takeStamp(now)
	}
	ob := &eng.outbox[src.shard]
	ob.posts = append(ob.posts, post{e: e, when: when, stamp: stp})
	if when < ob.minWhen {
		ob.minWhen = when
	}
}

// stampTaker is satisfied by every queue backend via the embedded stamper.
type stampTaker interface {
	takeStamp(now Tick) schedStamp
}

// panicContexter is satisfied by every queue backend via the embedded stamper.
type panicContexter interface {
	SetPanicContext(fn func() string)
}

// deliver merges one outbox into its destination queue in posting order —
// a deterministic order at a deterministic barrier point, so destination
// seq assignment matches across shard counts.
func (eng *shardEngine) deliver(src, dst int) {
	ob := &eng.outbox[src]
	if len(ob.posts) == 0 {
		return
	}
	dq := eng.views[dst].queue
	for i := range ob.posts {
		p := &ob.posts[i]
		p.e.stamp = p.stamp
		p.e.stampSet = true
		// The barrier protocol guarantees posted ticks are at or beyond the
		// destination's clock (quantum floor on mem->cpu, grant horizon cap
		// on cpu->mem); the queue's own Schedule guard still enforces it.
		//lint:allow pastsched conservative barrier bounds posted ticks; destination queue re-validates
		dq.Schedule(p.e, p.when)
		ob.posts[i] = post{}
	}
	ob.posts = ob.posts[:0]
	ob.minWhen = MaxTick
}

// dispatchOne fires the head event e of v's queue, logging its trace group.
func (eng *shardEngine) dispatchOne(v *System, e *Event) {
	if !eng.traceOff {
		eng.log[v.shard].begin(groupKey{when: e.when, prio: e.prio, stamp: e.stamp})
	}
	// Count before firing so an event that requests exit is counted, exactly
	// as the serial loop counts it.
	v.serviced++
	v.tracer.Call(v.fnDispatch)
	v.queue.ServiceOne()
}

// dispatchOneCatching is dispatchOne with RequestExit translation; CPU shard
// only (exit-capable components all live there).
func (eng *shardEngine) dispatchOneCatching(v *System, e *Event, res *RunResult) (stop bool) {
	defer func() {
		if r := recover(); r != nil {
			if ex, ok := r.(*exitRequest); ok {
				res.Status = ExitRequested
				res.ExitReason = ex.reason
				res.ExitCode = ex.code
				stop = true
				return
			}
			panic(r)
		}
	}()
	eng.dispatchOne(v, e)
	return false
}

// worker executes granted memory-shard windows until the grant channel
// closes. Panics are captured and re-raised on the coordinator.
func (eng *shardEngine) worker() {
	mv := eng.views[1]
	for g := range eng.grantCh {
		var msg joinMsg
		func() {
			defer func() {
				if r := recover(); r != nil {
					msg.panicv = r
				}
			}()
			for {
				e := mv.queue.Peek()
				if e == nil || e.when >= g.horizon || e.when > g.limit {
					return
				}
				eng.dispatchOne(mv, e)
			}
		}()
		eng.joinCh <- msg
	}
}

// joinWorker waits out the in-flight window and re-raises worker panics.
// A RequestExit from the memory shard (no such component exists today) is
// honored as a clean stop.
func (eng *shardEngine) joinWorker(res *RunResult) (stopped bool) {
	msg := <-eng.joinCh
	eng.workerBusy = false
	if msg.panicv == nil {
		return false
	}
	if ex, ok := msg.panicv.(*exitRequest); ok {
		res.Status = ExitRequested
		res.ExitReason = ex.reason
		res.ExitCode = ex.code
		return true
	}
	panic(msg.panicv)
}

// flushReplay hands completed log segments (and updated marks) to the
// replayer. Only called while the worker is idle — the memory shard's log is
// single-writer. The final flush closes the stream and waits for the replay
// to drain, so the real tracer has consumed every record before Run returns.
func (eng *shardEngine) flushReplay(final bool) {
	if eng.traceOff {
		return
	}
	var segs []*segment
	if !eng.log[0].empty() {
		segs = append(segs, eng.log[0].take())
	}
	if !eng.log[1].empty() {
		segs = append(segs, eng.log[1].take())
	}
	if len(segs) == 0 && !final {
		return
	}
	eng.replayCh <- replayBatch{segs: segs, mark: eng.mark, final: final}
	if final {
		close(eng.replayCh)
		<-eng.replayDone
	}
}

// run is the sharded equivalent of System.Run. The caller's goroutine is the
// coordinator and executes the CPU shard itself.
//
// maxEvents is honored at burst granularity on the CPU shard and at window
// granularity on the memory shard, so under sharding ExitEventLimit may stop
// slightly past the requested count (it is a safety valve, not a precise
// budget; callers needing exactness run serial).
func (eng *shardEngine) run(s *System, limit Tick, maxEvents uint64) (res RunResult) {
	cv, mv := eng.views[0], eng.views[1]
	s.startup()
	c0, m0 := cv.serviced, mv.serviced
	memJoined := uint64(0) // mv.serviced-m0 as of the last join (race-free copy)

	eng.running = true
	eng.workerBusy = false
	eng.mark = [2]Tick{}
	eng.outbox[0].minWhen = MaxTick
	eng.outbox[1].minWhen = MaxTick
	if !eng.traceOff {
		eng.replayCh = make(chan replayBatch, 8)
		eng.replayDone = make(chan struct{})
		go eng.replayLoop()
	}
	eng.grantCh = make(chan grant)
	eng.joinCh = make(chan joinMsg, 1)
	go eng.worker()

	defer func() {
		// Runs on clean returns and on propagating panics alike: retire the
		// worker, seal and drain the trace replay, restore bookkeeping.
		if eng.workerBusy {
			<-eng.joinCh // a coordinator panic outranks the worker's result
			eng.workerBusy = false
		}
		close(eng.grantCh)
		eng.flushReplay(true)
		eng.running = false
		res.Events = (cv.serviced - c0) + (mv.serviced - m0)
		res.Now = cv.queue.Now()
		if n := mv.queue.Now(); n > res.Now {
			res.Now = n
		}
	}()

	cq, mq := cv.queue, mv.queue
	for {
		// Coordination point: the worker is idle. Merge both mailboxes, then
		// hand completed trace segments to the replayer.
		eng.deliver(1, 0)
		eng.deliver(0, 1)
		if !eng.traceOff {
			// Memory-shard mark: future arrivals are posts from CPU events at
			// or above the last burst bound (mark[0]); pending ones are in
			// the queue now.
			m := eng.mark[0]
			if e := mq.Peek(); e != nil && e.when < m {
				m = e.when
			}
			if m > eng.mark[1] {
				eng.mark[1] = m
			}
			eng.flushReplay(false)
		}

		if maxEvents > 0 && (cv.serviced-c0)+memJoined >= maxEvents {
			res.Status = ExitEventLimit
			return
		}

		var memNext, cpuNext Tick
		memHas, cpuHas := false, false
		if e := mq.Peek(); e != nil {
			memHas, memNext = true, e.when
		}
		if e := cq.Peek(); e != nil {
			cpuHas, cpuNext = true, e.when
		}
		if !memHas && !cpuHas {
			res.Status = ExitQueueEmpty
			return
		}
		if (!memHas || memNext > limit) && (!cpuHas || cpuNext > limit) {
			res.Status = ExitLimit
			return
		}

		// Grant the memory shard its window, if it has eligible work.
		if memHas && memNext <= limit {
			horizon := addSat(memNext, eng.quantum)
			if cpuHas && cpuNext < horizon {
				horizon = cpuNext
			}
			if memNext < horizon {
				eng.grantFloor, eng.grantHorizon = memNext, horizon
				eng.workerBusy = true
				eng.grantCh <- grant{horizon: horizon, limit: limit}
			}
		}

		// Run the CPU burst concurrently with the window. The bound is the
		// earliest possible memory-side activity plus the quantum; it
		// tightens live as the burst posts to memory.
		memEarliest := MaxTick
		if eng.workerBusy {
			memEarliest = eng.grantFloor
		} else if memHas {
			memEarliest = memNext
		}
		exited := false
		var exitKey groupKey
		for {
			e := cq.Peek()
			if e == nil || e.when > limit {
				break
			}
			me := memEarliest
			if ob := eng.outbox[0].minWhen; ob < me {
				me = ob
			}
			if e.when >= addSat(me, eng.quantum) {
				break
			}
			k := groupKey{when: e.when, prio: e.prio, stamp: e.stamp}
			if eng.dispatchOneCatching(cv, e, &res) {
				exited, exitKey = true, k
				break
			}
			if maxEvents > 0 && (cv.serviced-c0)+memJoined >= maxEvents {
				break // status set at the top of the next round
			}
		}
		// Publish the CPU replay mark: every CPU event below the final live
		// bound has fired, and future CPU events (local or response-spawned)
		// are at or above it.
		if !exited {
			me := memEarliest
			if ob := eng.outbox[0].minWhen; ob < me {
				me = ob
			}
			if b := addSat(me, eng.quantum); b > eng.mark[0] {
				eng.mark[0] = b
			}
		}

		if eng.workerBusy {
			if eng.joinWorker(&res) {
				return
			}
			memJoined = mv.serviced - m0
		}

		if exited {
			// Exact truncation: the serial run fires, before the exit event
			// E, every memory event strictly below E's full ordering key.
			// The worker has only fired events below the granted horizon,
			// which is <= E's tick, so no overshoot is possible; drain the
			// remainder single-threaded. Posts generated by the drain target
			// at least quantum past E and are dropped unfired, exactly the
			// events the serial run leaves in its queue at exit.
			eng.deliver(0, 1)
			for {
				e := mq.Peek()
				if e == nil {
					break
				}
				k := groupKey{when: e.when, prio: e.prio, stamp: e.stamp}
				if !k.less(exitKey) {
					break
				}
				eng.dispatchOne(mv, e)
			}
			eng.mark = [2]Tick{MaxTick, MaxTick}
			return
		}
	}
}
