package sim

import "fmt"

// Sharded per-domain event queues under a conservative per-edge lookahead
// barrier.
//
// EnableSharding splits one System across N event queues that advance in
// parallel under a ShardPlan: shard 0 plus every other non-worker shard form
// the affine "group" (each keeps its own queue, clock, and trace arena, but
// all execute on the goroutine that called Run, merged in deterministic
// order), and the single worker shard — the memory system — executes on its
// own goroutine inside granted windows. The protocol is conservative PDES
// (a null-message-free CMB variant) specialized to the plan's per-edge
// lookahead matrix:
//
//   - Cross-executor Schedule calls never touch the other executor's queues
//     directly; they are appended to a per-direction outbox (mailbox) and
//     merged into the destination queue at barrier points, in posting order,
//     carrying the poster's provenance stamp. Merge points and order are
//     pure functions of simulation state, so event seq assignment — and with
//     it every stat, trace, and report — is bit-identical at every shard
//     count and layout. Each post is validated against its directed edge's
//     declared lookahead floor (Look[src][dst]); a post below the floor, or
//     over an absent edge (LookInf), panics naming the edge and window.
//
//   - Schedules between two group shards are direct inserts into the
//     destination queue: both shards execute on the coordinator goroutine in
//     merged order, and the shared provenance stamper makes the insert
//     indistinguishable from a single-queue one. This is how the plan
//     encodes edges with no latency floor (guest cores coupling at zero
//     latency through threading syscalls and shared functional memory): a
//     zero-lookahead edge admits no conservative window, so the pair fuses
//     onto one executor instead.
//
//   - The memory shard may fire events strictly below the earliest tick any
//     future cross post onto it can target: the group's next pending event
//     plus the minimum group→mem edge floor, the bounce-back path (its own
//     next event plus the round-trip mem→group→mem floor), and — while the
//     group has eligible work — the group's next event tick itself, because
//     any group event may RequestExit and exit truncation must never have
//     overshot it. The window [floor, horizon) is handed to the worker as a
//     grant.
//
//   - The group may fire events strictly below the earliest possible
//     memory-side post onto it: the memory shard's earliest pending or
//     in-flight event — including posts sitting in the group→mem outbox —
//     plus the minimum mem→group edge floor. The bound tightens live as the
//     burst itself posts to memory.
//
// With one worker shard the per-edge shortest-path closure collapses: the
// group shards form a zero-floor clique, so the effective group→mem floor is
// the minimum over group shards of Look[g][mem] and symmetrically for
// mem→group. A uniform matrix therefore degrades exactly to the original
// two-shard quantum barrier (Quantum = the mem→group floor).
type shardEngine struct {
	views  []*System
	layout [NumDomains]int
	look   [][]Tick // per-directed-edge lookahead floors (ShardPlan.Look)
	lookGM Tick     // min group→mem edge floor (closure over the group clique)
	lookMG Tick     // min mem→group edge floor (the classic quantum)
	mem    int      // the worker shard index
	group  []int    // non-worker shard indices, ascending (group[0] == 0)
	names  []string // per-shard domain names for messages
	info   ShardInfo

	under    Tracer // the real tracer, fed only by the replayer
	traceOff bool   // under is a NopTracer: skip logging entirely
	running  bool

	obToMem   outboxT // posts from any group shard bound for the worker
	obFromMem outboxT // posts from the worker bound for group shards
	log       []*shardLog
	syncers   []clockSyncer // group queues' clock syncers, resolved once
	synced    Tick          // last tick syncGroup fanned out (skip duplicates)

	grantCh    chan grant
	joinCh     chan joinMsg
	replayCh   chan replayBatch
	replayDone chan struct{}

	// Coordinator-owned state; the worker reads grantFloor/grantHorizon only
	// inside a granted window (the grant send/join receive order the access).
	workerBusy   bool
	grantFloor   Tick
	grantHorizon Tick
	mark         [MaxShards]Tick // per-shard replay marks (see replayBatch)
	// cur is the group shard whose event the coordinator is currently
	// dispatching. A group event's callback reaches synchronously into
	// components constructed against other group views (a core's tick event
	// drives the shared L2 through the root view; an L1 fill closure drives
	// the core), and every trace record they emit belongs to the dispatched
	// event's group — so group-shard tracers route through cur, not their
	// own view's shard. Coordinator-owned: the worker's dispatches (the
	// memory shard) log to their own shard and never read it.
	cur int
}

// post is one cross-executor Schedule waiting in a mailbox.
type post struct {
	e     *Event
	when  Tick
	dst   int // destination shard (mem→group posts; group→mem is always mem)
	stamp schedStamp
}

type outboxT struct {
	posts   []post
	minWhen Tick // min when of pending posts; MaxTick when empty
}

// grant hands the worker one firing window: events with when < horizon and
// when <= limit.
type grant struct {
	horizon Tick
	limit   Tick
}

// joinMsg reports a completed window back to the coordinator.
type joinMsg struct {
	panicv any // recovered panic to re-raise on the coordinator, or nil
}

// addSat is saturating tick addition.
func addSat(a, b Tick) Tick {
	if c := a + b; c >= a {
		return c
	}
	return MaxTick
}

// describe renders a shard for panic messages.
func (eng *shardEngine) describe(shard int) string {
	if shard == eng.mem {
		return fmt.Sprintf("shard %d (%s), window [%d, %d), quantum %d",
			shard, eng.names[shard], eng.grantFloor, eng.grantHorizon, eng.lookMG)
	}
	return fmt.Sprintf("shard %d (%s)", shard, eng.names[shard])
}

// isGroup reports whether shard executes on the coordinator goroutine.
func (eng *shardEngine) isGroup(shard int) bool { return shard != eng.mem }

// post routes a cross-shard Schedule. Group→group schedules insert directly
// into the destination queue (same executor, shared stamper — exactly a
// single-queue insert); schedules crossing the worker boundary go through
// the mailboxes after validation against the directed edge's lookahead
// floor. The fnSchedule trace call and the provenance stamp are taken on the
// posting side, exactly where the single-queue run would take them.
func (eng *shardEngine) post(src *System, dst int, e *Event, when Tick) {
	src.tracer.Call(src.fnSchedule)
	if !eng.running || (eng.isGroup(src.shard) && eng.isGroup(dst)) {
		// Construction/startup time, or an intra-group schedule: insert
		// directly into the owning queue, which validates when against its
		// own clock (synced to the merged group time before every dispatch).
		eng.views[dst].queue.Schedule(e, when)
		return
	}
	if e.pos >= 0 {
		panic(fmt.Sprintf("sim: event %s scheduled twice [%s]", e.name, eng.describe(src.shard)))
	}
	now := src.queue.Now()
	if when < now {
		panic(fmt.Sprintf("sim: event %s scheduled at %d before now %d [%s]",
			e.name, when, now, eng.describe(src.shard)))
	}
	lk := eng.look[src.shard][dst]
	if lk == LookInf {
		panic(fmt.Sprintf(
			"sim: cross-shard post of %s at %d over absent edge %s→%s (lookahead ∞): no such event traffic was declared [%s]",
			e.name, when, eng.names[src.shard], eng.names[dst], eng.describe(src.shard)))
	}
	if when < addSat(now, lk) {
		panic(fmt.Sprintf(
			"sim: cross-shard post of %s at %d violates the %s→%s edge lookahead %d (quantum barrier): %s is at %d, floor %d",
			e.name, when, eng.names[src.shard], eng.names[dst], lk, eng.describe(src.shard), now, addSat(now, lk)))
	}
	stp := schedStamp{at: now}
	if st, ok := src.queue.(stampTaker); ok {
		stp = st.takeStamp(now)
	}
	ob := &eng.obToMem
	if src.shard == eng.mem {
		ob = &eng.obFromMem
	}
	ob.posts = append(ob.posts, post{e: e, when: when, dst: dst, stamp: stp})
	if when < ob.minWhen {
		ob.minWhen = when
	}
}

// stampTaker is satisfied by every queue backend via the embedded stamper.
type stampTaker interface {
	takeStamp(now Tick) schedStamp
}

// panicContexter is satisfied by every queue backend via the embedded stamper.
type panicContexter interface {
	SetPanicContext(fn func() string)
}

// deliver merges one outbox into its destination queues in posting order —
// a deterministic order at a deterministic barrier point, so destination
// seq assignment matches across shard counts and layouts.
func (eng *shardEngine) deliver(ob *outboxT) {
	if len(ob.posts) == 0 {
		return
	}
	for i := range ob.posts {
		p := &ob.posts[i]
		p.e.stamp = p.stamp
		p.e.stampSet = true
		// The barrier protocol guarantees posted ticks are at or beyond the
		// destination's clock (per-edge lookahead floor on mem→group, grant
		// horizon cap on group→mem); the queue's own Schedule guard still
		// enforces it.
		//lint:allow pastsched conservative barrier bounds posted ticks; destination queue re-validates
		eng.views[p.dst].queue.Schedule(p.e, p.when)
		ob.posts[i] = post{}
	}
	ob.posts = ob.posts[:0]
	ob.minWhen = MaxTick
}

// dispatchOne fires the head event e of v's queue, logging its trace group.
func (eng *shardEngine) dispatchOne(v *System, e *Event) {
	if v.shard != eng.mem {
		eng.cur = v.shard
	}
	if !eng.traceOff {
		eng.log[v.shard].begin(groupKey{when: e.when, prio: e.prio, stamp: e.stamp})
	}
	// Count before firing so an event that requests exit is counted, exactly
	// as the serial loop counts it.
	v.serviced++
	v.tracer.Call(v.fnDispatch)
	v.queue.ServiceOne()
}

// dispatchOneCatching is dispatchOne with RequestExit translation; group
// shards only (exit-capable components all live there).
func (eng *shardEngine) dispatchOneCatching(v *System, e *Event, res *RunResult) (stop bool) {
	defer func() {
		if r := recover(); r != nil {
			if ex, ok := r.(*exitRequest); ok {
				res.Status = ExitRequested
				res.ExitReason = ex.reason
				res.ExitCode = ex.code
				stop = true
				return
			}
			panic(r)
		}
	}()
	eng.dispatchOne(v, e)
	return false
}

// groupPeek returns the view holding the merged group's earliest pending
// event, and that event. Iteration ascends shard indices, so residual
// full-key ties resolve to the lower shard — the same tie rule the trace
// replayer uses. This runs once per dispatched group event, so the common
// case — ticks differ — compares raw ticks without building full keys.
func (eng *shardEngine) groupPeek() (*System, *Event) {
	if len(eng.group) == 1 {
		v := eng.views[eng.group[0]]
		return v, v.queue.Peek()
	}
	var bv *System
	var be *Event
	for _, g := range eng.group {
		e := eng.views[g].queue.Peek()
		if e == nil {
			continue
		}
		if be == nil {
			bv, be = eng.views[g], e
			continue
		}
		if e.when != be.when {
			if e.when < be.when {
				bv, be = eng.views[g], e
			}
			continue
		}
		if (groupKey{when: e.when, prio: e.prio, stamp: e.stamp}).less(
			groupKey{when: be.when, prio: be.prio, stamp: be.stamp}) {
			bv, be = eng.views[g], e
		}
	}
	return bv, be
}

// syncGroup advances every group queue's clock to t, so the dispatched
// event's callback reads a consistent Now() — and schedules at correct
// absolute ticks — through whichever group view it holds. The syncers are
// resolved once at EnableSharding time (one interface assertion per shard
// per event showed up in the per-core profile), and consecutive events at
// one tick — the overwhelmingly common case inside a core's cycle — skip
// the fan-out entirely.
func (eng *shardEngine) syncGroup(t Tick) {
	if t == eng.synced {
		return
	}
	eng.synced = t
	for _, cs := range eng.syncers {
		cs.syncNow(t)
	}
}

// groupServiced sums the group shards' event counters.
func (eng *shardEngine) groupServiced() uint64 {
	var n uint64
	for _, g := range eng.group {
		n += eng.views[g].serviced
	}
	return n
}

// worker executes granted memory-shard windows until the grant channel
// closes. Panics are captured and re-raised on the coordinator.
func (eng *shardEngine) worker() {
	mv := eng.views[eng.mem]
	for g := range eng.grantCh {
		var msg joinMsg
		func() {
			defer func() {
				if r := recover(); r != nil {
					msg.panicv = r
				}
			}()
			for {
				e := mv.queue.Peek()
				if e == nil || e.when >= g.horizon || e.when > g.limit {
					return
				}
				eng.dispatchOne(mv, e)
			}
		}()
		eng.joinCh <- msg
	}
}

// joinWorker waits out the in-flight window and re-raises worker panics.
// A RequestExit from the memory shard (no such component exists today) is
// honored as a clean stop.
func (eng *shardEngine) joinWorker(res *RunResult) (stopped bool) {
	msg := <-eng.joinCh
	eng.workerBusy = false
	if msg.panicv == nil {
		return false
	}
	if ex, ok := msg.panicv.(*exitRequest); ok {
		res.Status = ExitRequested
		res.ExitReason = ex.reason
		res.ExitCode = ex.code
		return true
	}
	panic(msg.panicv)
}

// flushReplay hands completed log segments (and updated marks) to the
// replayer. Only called while the worker is idle — the memory shard's log is
// single-writer. The final flush closes the stream and waits for the replay
// to drain, so the real tracer has consumed every record before Run returns.
func (eng *shardEngine) flushReplay(final bool) {
	if eng.traceOff {
		return
	}
	var segs []*segment
	for _, l := range eng.log {
		if !l.empty() {
			if segs == nil {
				segs = takeSegsSlice()
			}
			segs = append(segs, l.take())
		}
	}
	if segs == nil && !final {
		return
	}
	eng.replayCh <- replayBatch{segs: segs, mark: eng.mark, final: final}
	if final {
		close(eng.replayCh)
		<-eng.replayDone
	}
}

// run is the sharded equivalent of System.Run. The caller's goroutine is the
// coordinator and executes every group shard itself, in merged deterministic
// order.
//
// maxEvents is honored at burst granularity on the group and at window
// granularity on the memory shard, so under sharding ExitEventLimit may stop
// slightly past the requested count (it is a safety valve, not a precise
// budget; callers needing exactness run serial).
func (eng *shardEngine) run(s *System, limit Tick, maxEvents uint64) (res RunResult) {
	mv := eng.views[eng.mem]
	s.startup()
	g0, m0 := eng.groupServiced(), mv.serviced
	memJoined := uint64(0) // mv.serviced-m0 as of the last join (race-free copy)

	eng.running = true
	eng.workerBusy = false
	eng.mark = [MaxShards]Tick{}
	// All group clocks are equal at every barrier point (syncGroup advances
	// them in lockstep and only the synced-to tick is ever dispatched), so
	// the duplicate-sync skip can seed from the coordinator's clock.
	eng.synced = s.queue.Now()
	eng.obToMem.minWhen = MaxTick
	eng.obFromMem.minWhen = MaxTick
	if !eng.traceOff {
		eng.replayCh = make(chan replayBatch, 8)
		eng.replayDone = make(chan struct{})
		go eng.replayLoop()
	}
	eng.grantCh = make(chan grant)
	eng.joinCh = make(chan joinMsg, 1)
	go eng.worker()

	defer func() {
		// Runs on clean returns and on propagating panics alike: retire the
		// worker, seal and drain the trace replay, restore bookkeeping.
		if eng.workerBusy {
			<-eng.joinCh // a coordinator panic outranks the worker's result
			eng.workerBusy = false
		}
		close(eng.grantCh)
		eng.flushReplay(true)
		eng.running = false
		res.Events = (eng.groupServiced() - g0) + (mv.serviced - m0)
		for _, v := range eng.views {
			if n := v.queue.Now(); n > res.Now {
				res.Now = n
			}
		}
	}()

	mq := mv.queue
	for {
		// Coordination point: the worker is idle. Merge both mailboxes, then
		// hand completed trace segments to the replayer.
		eng.deliver(&eng.obFromMem)
		eng.deliver(&eng.obToMem)
		if !eng.traceOff {
			// Memory-shard mark: future arrivals are posts from group events
			// at or above the last burst bound (the shared group mark);
			// pending ones are in the queue now.
			m := eng.mark[0]
			if e := mq.Peek(); e != nil && e.when < m {
				m = e.when
			}
			if m > eng.mark[eng.mem] {
				eng.mark[eng.mem] = m
			}
			eng.flushReplay(false)
		}

		if maxEvents > 0 && (eng.groupServiced()-g0)+memJoined >= maxEvents {
			res.Status = ExitEventLimit
			return
		}

		var memNext, groupNext Tick
		memHas := false
		if e := mq.Peek(); e != nil {
			memHas, memNext = true, e.when
		}
		_, ge := eng.groupPeek()
		groupHas := ge != nil
		if groupHas {
			groupNext = ge.when
		}
		if !memHas && !groupHas {
			res.Status = ExitQueueEmpty
			return
		}
		if (!memHas || memNext > limit) && (!groupHas || groupNext > limit) {
			res.Status = ExitLimit
			return
		}

		// Grant the memory shard its window, if it has eligible work: the
		// horizon is the earliest tick a future arrival could target — the
		// bounce-back path through its own posts (its next event plus the
		// round-trip mem→group→mem floor) — capped by the group's next
		// pending event: any group event may RequestExit at its tick (in
		// this Run call or a later one with a higher limit), and exit
		// truncation must never find the memory shard past it.
		if memHas && memNext <= limit {
			horizon := addSat(memNext, addSat(eng.lookMG, eng.lookGM))
			if groupHas && groupNext < horizon {
				horizon = groupNext
			}
			if memNext < horizon {
				eng.grantFloor, eng.grantHorizon = memNext, horizon
				eng.workerBusy = true
				eng.grantCh <- grant{horizon: horizon, limit: limit}
			}
		}

		// Run the merged group burst concurrently with the window. The bound
		// is the earliest possible memory-side activity plus the mem→group
		// floor; it tightens live as the burst posts to memory.
		memEarliest := MaxTick
		if eng.workerBusy {
			memEarliest = eng.grantFloor
		} else if memHas {
			memEarliest = memNext
		}
		exited := false
		var exitKey groupKey
		for {
			bv, e := eng.groupPeek()
			if e == nil || e.when > limit {
				break
			}
			me := memEarliest
			if ob := eng.obToMem.minWhen; ob < me {
				me = ob
			}
			if e.when >= addSat(me, eng.lookMG) {
				break
			}
			k := groupKey{when: e.when, prio: e.prio, stamp: e.stamp}
			eng.syncGroup(e.when)
			if eng.dispatchOneCatching(bv, e, &res) {
				exited, exitKey = true, k
				break
			}
			if maxEvents > 0 && (eng.groupServiced()-g0)+memJoined >= maxEvents {
				break // status set at the top of the next round
			}
		}
		// Publish the group replay mark: every group event below the final
		// live bound has fired, and future group events (local or
		// response-spawned) are at or above it. All group shards share one
		// merged frontier, so they share one mark.
		if !exited {
			me := memEarliest
			if ob := eng.obToMem.minWhen; ob < me {
				me = ob
			}
			if b := addSat(me, eng.lookMG); b > eng.mark[0] {
				for _, g := range eng.group {
					eng.mark[g] = b
				}
			}
		}

		if eng.workerBusy {
			if eng.joinWorker(&res) {
				return
			}
			memJoined = mv.serviced - m0
		}

		if exited {
			// Exact truncation: the serial run fires, before the exit event
			// E, every memory event strictly below E's full ordering key.
			// The worker has only fired events below the granted horizon,
			// which is <= E's tick (the grant never extends past the group's
			// next event while the group has eligible work), so no overshoot
			// is possible; drain the remainder single-threaded. Posts
			// generated by the drain target at least the mem→group floor
			// past E and are dropped unfired, exactly the events the serial
			// run leaves in its queue at exit.
			eng.deliver(&eng.obToMem)
			for {
				e := mq.Peek()
				if e == nil {
					break
				}
				k := groupKey{when: e.when, prio: e.prio, stamp: e.stamp}
				if !k.less(exitKey) {
					break
				}
				eng.dispatchOne(mv, e)
			}
			for i := range eng.mark {
				eng.mark[i] = MaxTick
			}
			return
		}
	}
}
