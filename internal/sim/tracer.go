package sim

// FuncID identifies a simulator function in the host code model. IDs are
// dense and assigned by the Tracer at registration time. ID 0 is reserved
// for the scheduler/dispatch loop itself.
type FuncID uint32

// FuncFlags describe properties of a registered simulator function that
// matter to the host model.
type FuncFlags uint8

const (
	// FuncVirtual marks a function reached through virtual dispatch
	// (an indirect call/branch on the host).
	FuncVirtual FuncFlags = 1 << iota
	// FuncHot marks a small function expected to be called in tight
	// succession (eligible for uop-cache residency).
	FuncHot
	// FuncLeaf marks a function that calls no further simulator functions.
	FuncLeaf
	// FuncCold marks a function on a rarely executed path (error handling,
	// configuration); it shares code pages with other cold code.
	FuncCold
	// FuncPoly marks a megamorphic virtual call site: many dynamic types
	// flow through it, so its indirect branches defeat the host BTB.
	FuncPoly
)

// Tracer receives host-level execution annotations from the guest simulator.
// The production implementation (internal/hostmodel) converts these into a
// micro-event stream for the host micro-architecture model; NopTracer makes
// pure guest simulation free of host-modeling overhead.
type Tracer interface {
	// RegisterFunc declares a simulator function of approximately codeBytes
	// bytes of host machine code and returns its ID. Registration typically
	// happens at component construction time.
	RegisterFunc(name string, codeBytes int, flags FuncFlags) FuncID
	// Call models the host executing one invocation of fn (body + return).
	Call(fn FuncID)
	// Data models a host-level access of size bytes at host address addr.
	Data(addr uint64, size uint32, write bool)
	// AllocData reserves bytes of host heap for a component's state and
	// returns its base host address; used to derive Data addresses.
	AllocData(name string, bytes uint64) uint64
}

// NopTracer is a Tracer that does nothing but hand out IDs and addresses.
// It is the zero-cost default for pure guest simulation and for tests.
type NopTracer struct {
	nextFn   FuncID
	nextAddr uint64
}

// NewNopTracer returns a fresh NopTracer.
func NewNopTracer() *NopTracer {
	return &NopTracer{nextFn: 1, nextAddr: 0x10_0000_0000}
}

// RegisterFunc implements Tracer.
func (t *NopTracer) RegisterFunc(name string, codeBytes int, flags FuncFlags) FuncID {
	id := t.nextFn
	t.nextFn++
	return id
}

// Call implements Tracer.
func (t *NopTracer) Call(fn FuncID) {}

// Data implements Tracer.
func (t *NopTracer) Data(addr uint64, size uint32, write bool) {}

// AllocData implements Tracer.
func (t *NopTracer) AllocData(name string, bytes uint64) uint64 {
	base := t.nextAddr
	// Keep allocations 64-byte aligned like a real allocator would.
	t.nextAddr += (bytes + 63) &^ 63
	return base
}
