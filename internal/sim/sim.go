// Package sim provides the discrete-event simulation core used by the g5
// guest simulator: simulation time (ticks), events, event queues, the System
// container that owns every simulated object, and the Tracer interface
// through which simulator activity is mirrored onto a host-machine model.
//
// The design deliberately follows the skeleton of the gem5 simulator that the
// reproduced paper profiles: a single global event queue ordered by
// (tick, priority, insertion order), polymorphic SimObjects whose methods run
// inside event callbacks, and a statistics registry populated at the end of
// simulation.
package sim

import "fmt"

// Tick is the unit of simulated guest time. As in gem5, one tick is one
// picosecond, so a 1 GHz guest clock advances 1000 ticks per cycle.
type Tick uint64

// Common durations expressed in ticks.
const (
	Picosecond  Tick = 1
	Nanosecond  Tick = 1000
	Microsecond Tick = 1000 * Nanosecond
	Millisecond Tick = 1000 * Microsecond
	Second      Tick = 1000 * Millisecond
)

// MaxTick is the largest representable simulation time.
const MaxTick = Tick(^uint64(0))

// Event priorities. Lower values fire first among events scheduled for the
// same tick. The values mirror gem5's event priority bands.
const (
	PrioMinimum      = -100
	PrioDebug        = -20
	PrioCPUSwitch    = -11
	PrioDelayedWrite = -8
	PrioCPUTick      = -1
	PrioDefault      = 0
	PrioSerialize    = 31
	PrioMaximum      = 100
)

// schedStamp records the scheduling provenance of an event: when it was
// inserted and by whom. The stamp extends the queue ordering key so that the
// relative order of same-(tick, priority) events is decided by information
// that is identical whether the simulation runs on one event queue or on
// sharded per-domain queues (see ShardConfig): the insertion tick, the
// identity of the dispatching event (its priority and own insertion tick),
// and the insertion's index within that dispatch class. Within a single
// queue the stamp is provably monotone in insertion order (each field is
// nondecreasing along seq), so adding it to the comparator refines nothing:
// serial event order — and therefore every stat, trace, and report — is
// bit-identical to the pre-stamp ordering.
type schedStamp struct {
	at    Tick   // queue time at insertion
	pPrio int    // priority of the dispatching event (0 outside dispatch)
	pAt   Tick   // insertion tick of the dispatching event
	pIdx  uint32 // insertion index within the (at, pPrio, pAt) dispatch class
}

// less orders stamps lexicographically.
func (s schedStamp) less(o schedStamp) (bool, bool) {
	if s.at != o.at {
		return s.at < o.at, true
	}
	if s.pPrio != o.pPrio {
		return s.pPrio < o.pPrio, true
	}
	if s.pAt != o.pAt {
		return s.pAt < o.pAt, true
	}
	if s.pIdx != o.pIdx {
		return s.pIdx < o.pIdx, true
	}
	return false, false
}

// Event is a schedulable callback. Events are created once and may be
// scheduled, descheduled, and rescheduled many times, but never scheduled
// twice concurrently.
type Event struct {
	name   string
	prio   int
	fire   func()
	fn     FuncID // host-model function attributed to this event's work
	domain Domain // owning shard domain under sharded execution

	when     Tick
	seq      uint64
	pos      int // index in the owning heap, -1 when unscheduled
	stamp    schedStamp
	stampSet bool // next insertion keeps the pre-assigned stamp (mailbox post)
}

// NewEvent returns an event with the given debug name, host-function
// attribution and callback. A zero FuncID attributes the event to the
// scheduler itself.
func NewEvent(name string, fn FuncID, fire func()) *Event {
	return &Event{name: name, prio: PrioDefault, fire: fire, fn: fn, pos: -1}
}

// NewEventPrio is NewEvent with an explicit same-tick priority.
func NewEventPrio(name string, fn FuncID, prio int, fire func()) *Event {
	return &Event{name: name, prio: prio, fire: fire, fn: fn, pos: -1}
}

// SetDomain assigns the event to a simulation domain and returns the event
// for chaining. Events default to DomainCPU; only events whose callback must
// execute on another domain's shard (the DRAM side of the memory bus) are
// tagged. The tag is inert unless sharded execution is enabled. It panics if
// the event is currently scheduled.
func (e *Event) SetDomain(d Domain) *Event {
	if e.pos >= 0 {
		panic(fmt.Sprintf("sim: SetDomain on scheduled event %s", e.name))
	}
	e.domain = d
	return e
}

// Domain returns the event's simulation domain.
func (e *Event) Domain() Domain { return e.domain }

// Name returns the event's debug name.
func (e *Event) Name() string { return e.name }

// Scheduled reports whether the event is currently in a queue.
func (e *Event) Scheduled() bool { return e.pos >= 0 }

// When returns the tick the event is scheduled for. It is only meaningful
// while Scheduled() is true.
func (e *Event) When() Tick { return e.when }

// Priority returns the event's same-tick priority.
func (e *Event) Priority() int { return e.prio }

func (e *Event) String() string {
	if e.Scheduled() {
		return fmt.Sprintf("%s@%d", e.name, e.when)
	}
	return e.name + "@unscheduled"
}

// before reports whether e must fire before o: earlier tick first, then lower
// priority, then the scheduling provenance stamp, then earlier insertion
// (seq) for stability. The stamp is redundant within one queue (it is
// monotone in seq, see schedStamp) but makes the order of same-(tick,
// priority) events from different shards match the single-queue order
// without a shared insertion counter.
func (e *Event) before(o *Event) bool {
	if e.when != o.when {
		return e.when < o.when
	}
	if e.prio != o.prio {
		return e.prio < o.prio
	}
	if less, decided := e.stamp.less(o.stamp); decided {
		return less
	}
	return e.seq < o.seq
}

// Queue is the scheduling backend interface. Two implementations exist: the
// default binary-heap queue and a calendar queue (see DESIGN.md ablation A5).
type Queue interface {
	// Now returns the current simulation time.
	Now() Tick
	// Schedule inserts e at tick when. It panics if e is already scheduled
	// or when is in the past.
	Schedule(e *Event, when Tick)
	// Deschedule removes a scheduled event. It panics if e is not scheduled.
	Deschedule(e *Event)
	// Reschedule moves a (possibly unscheduled) event to tick when.
	Reschedule(e *Event, when Tick)
	// Empty reports whether no events are pending.
	Empty() bool
	// NextTick returns the tick of the earliest pending event. It panics if
	// the queue is empty.
	NextTick() Tick
	// ServiceOne advances time to the earliest event and fires it. It
	// returns false if the queue was empty.
	ServiceOne() bool
	// Peek returns the earliest pending event without firing it, or nil if
	// the queue is empty.
	Peek() *Event
	// Len returns the number of pending events.
	Len() int
}

// stamper is the shared scheduling-provenance bookkeeping embedded by every
// Queue implementation: it assigns each inserted event its schedStamp and
// tracks the dispatch class of the event currently firing.
type stamper struct {
	dispWhen Tick // tick of the event being dispatched
	dispPrio int  // priority of the event being dispatched
	dispAt   Tick // insertion tick of the event being dispatched
	dispIdx  uint32
	// del, when set, is the stamper all provenance operations delegate to.
	// The sharded engine points every affine group shard's queue at the
	// coordinator queue's stamper, so insertions across the whole group mint
	// stamps from one monotone sequence — the group's merged dispatch order
	// then equals the single-queue order restricted to group events, exactly
	// as if they shared one queue.
	del *stamper
	// panicCtx, when set, is appended to queue panic messages (sharded
	// execution installs a shard/window description here). It is never
	// delegated: each queue describes its own shard.
	panicCtx func() string
}

// target returns the stamper provenance operations act on (the delegate for
// affine group queues, st itself otherwise).
func (st *stamper) target() *stamper {
	if st.del != nil {
		return st.del
	}
	return st
}

// shareStamper redirects this queue's provenance bookkeeping to with's
// stamper. Installed by EnableSharding before any event is inserted.
func (st *stamper) shareStamper(with *stamper) { st.del = with.target() }

// stamperPtr exposes the embedded stamper for sharing (see shareStamper).
func (st *stamper) stamperPtr() *stamper { return st }

// stampFor assigns e its insertion stamp unless a pre-assigned stamp (a
// cross-shard mailbox post carrying the poster's provenance) is pending.
func (st *stamper) stampFor(e *Event, now Tick) {
	if e.stampSet {
		e.stampSet = false
		return
	}
	e.stamp = st.target().takeStamp(now)
}

// takeStamp mints the next insertion stamp for the current dispatch context.
// Cross-shard posts consume a stamp from the posting queue exactly like a
// local insertion would, so local and remote children of one dispatch share
// a single index sequence — the same order a single queue would produce.
func (st *stamper) takeStamp(now Tick) schedStamp {
	t := st.target()
	s := schedStamp{at: now, pPrio: t.dispPrio, pAt: t.dispAt, pIdx: t.dispIdx}
	t.dispIdx++
	return s
}

// beginDispatch notes the event about to fire. Insertion indices keep
// counting across consecutive dispatches of the same (tick, priority,
// insertion-tick) class — such dispatches pop adjacently, since the class is
// a key prefix under the lexicographic comparator — so children of
// equal-stamped parents still sort in overall insertion order.
func (st *stamper) beginDispatch(e *Event) {
	t := st.target()
	if e.when != t.dispWhen || e.prio != t.dispPrio || e.stamp.at != t.dispAt {
		t.dispWhen, t.dispPrio, t.dispAt = e.when, e.prio, e.stamp.at
		t.dispIdx = 0
	}
}

// stampSharer is satisfied by every queue backend via the embedded stamper;
// the sharded engine uses it to fuse the provenance sequences of affine
// group shards onto the coordinator queue's stamper.
type stampSharer interface {
	shareStamper(with *stamper)
	stamperPtr() *stamper
}

// clockSyncer is implemented by queue backends whose clock the sharded
// engine can advance without firing an event. Before dispatching the merged
// group's next event at tick t, the coordinator syncs every affine group
// queue to t so that components constructed against any group view read a
// consistent Now() (and ScheduleIn computes correct absolute ticks) no
// matter which shard's queue the fired event came from.
type clockSyncer interface {
	syncNow(t Tick)
}

// context renders the installed panic context, or "".
func (st *stamper) context() string {
	if st.panicCtx == nil {
		return ""
	}
	return " [" + st.panicCtx() + "]"
}

// SetPanicContext installs a description appended to queue panic messages.
func (st *stamper) SetPanicContext(fn func() string) { st.panicCtx = fn }
