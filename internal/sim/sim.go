// Package sim provides the discrete-event simulation core used by the g5
// guest simulator: simulation time (ticks), events, event queues, the System
// container that owns every simulated object, and the Tracer interface
// through which simulator activity is mirrored onto a host-machine model.
//
// The design deliberately follows the skeleton of the gem5 simulator that the
// reproduced paper profiles: a single global event queue ordered by
// (tick, priority, insertion order), polymorphic SimObjects whose methods run
// inside event callbacks, and a statistics registry populated at the end of
// simulation.
package sim

import "fmt"

// Tick is the unit of simulated guest time. As in gem5, one tick is one
// picosecond, so a 1 GHz guest clock advances 1000 ticks per cycle.
type Tick uint64

// Common durations expressed in ticks.
const (
	Picosecond  Tick = 1
	Nanosecond  Tick = 1000
	Microsecond Tick = 1000 * Nanosecond
	Millisecond Tick = 1000 * Microsecond
	Second      Tick = 1000 * Millisecond
)

// MaxTick is the largest representable simulation time.
const MaxTick = Tick(^uint64(0))

// Event priorities. Lower values fire first among events scheduled for the
// same tick. The values mirror gem5's event priority bands.
const (
	PrioMinimum      = -100
	PrioDebug        = -20
	PrioCPUSwitch    = -11
	PrioDelayedWrite = -8
	PrioCPUTick      = -1
	PrioDefault      = 0
	PrioSerialize    = 31
	PrioMaximum      = 100
)

// Event is a schedulable callback. Events are created once and may be
// scheduled, descheduled, and rescheduled many times, but never scheduled
// twice concurrently.
type Event struct {
	name string
	prio int
	fire func()
	fn   FuncID // host-model function attributed to this event's work

	when Tick
	seq  uint64
	pos  int // index in the owning heap, -1 when unscheduled
}

// NewEvent returns an event with the given debug name, host-function
// attribution and callback. A zero FuncID attributes the event to the
// scheduler itself.
func NewEvent(name string, fn FuncID, fire func()) *Event {
	return &Event{name: name, prio: PrioDefault, fire: fire, fn: fn, pos: -1}
}

// NewEventPrio is NewEvent with an explicit same-tick priority.
func NewEventPrio(name string, fn FuncID, prio int, fire func()) *Event {
	return &Event{name: name, prio: prio, fire: fire, fn: fn, pos: -1}
}

// Name returns the event's debug name.
func (e *Event) Name() string { return e.name }

// Scheduled reports whether the event is currently in a queue.
func (e *Event) Scheduled() bool { return e.pos >= 0 }

// When returns the tick the event is scheduled for. It is only meaningful
// while Scheduled() is true.
func (e *Event) When() Tick { return e.when }

// Priority returns the event's same-tick priority.
func (e *Event) Priority() int { return e.prio }

func (e *Event) String() string {
	if e.Scheduled() {
		return fmt.Sprintf("%s@%d", e.name, e.when)
	}
	return e.name + "@unscheduled"
}

// before reports whether e must fire before o: earlier tick first, then lower
// priority, then earlier insertion (seq) for stability.
func (e *Event) before(o *Event) bool {
	if e.when != o.when {
		return e.when < o.when
	}
	if e.prio != o.prio {
		return e.prio < o.prio
	}
	return e.seq < o.seq
}

// Queue is the scheduling backend interface. Two implementations exist: the
// default binary-heap queue and a calendar queue (see DESIGN.md ablation A5).
type Queue interface {
	// Now returns the current simulation time.
	Now() Tick
	// Schedule inserts e at tick when. It panics if e is already scheduled
	// or when is in the past.
	Schedule(e *Event, when Tick)
	// Deschedule removes a scheduled event. It panics if e is not scheduled.
	Deschedule(e *Event)
	// Reschedule moves a (possibly unscheduled) event to tick when.
	Reschedule(e *Event, when Tick)
	// Empty reports whether no events are pending.
	Empty() bool
	// NextTick returns the tick of the earliest pending event. It panics if
	// the queue is empty.
	NextTick() Tick
	// ServiceOne advances time to the earliest event and fires it. It
	// returns false if the queue was empty.
	ServiceOne() bool
	// Len returns the number of pending events.
	Len() int
}
