package sim

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Stat is a named statistic that can render its value.
type Stat interface {
	StatName() string
	Desc() string
	Value() float64
}

// Scalar is a settable floating-point statistic.
type Scalar struct {
	name, desc string
	v          float64
}

// StatName implements Stat.
func (s *Scalar) StatName() string { return s.name }

// Desc implements Stat.
func (s *Scalar) Desc() string { return s.desc }

// Value implements Stat.
func (s *Scalar) Value() float64 { return s.v }

// Set assigns the scalar.
func (s *Scalar) Set(v float64) { s.v = v }

// Add increments the scalar by v.
func (s *Scalar) Add(v float64) { s.v += v }

// Counter is a monotonically increasing integer statistic.
type Counter struct {
	name, desc string
	n          uint64
}

// StatName implements Stat.
func (c *Counter) StatName() string { return c.name }

// Desc implements Stat.
func (c *Counter) Desc() string { return c.desc }

// Value implements Stat.
func (c *Counter) Value() float64 { return float64(c.n) }

// Count returns the raw count.
func (c *Counter) Count() uint64 { return c.n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Addn increments the counter by n.
func (c *Counter) Addn(n uint64) { c.n += n }

// Formula is a statistic computed on demand from other statistics.
type Formula struct {
	name, desc string
	f          func() float64
}

// StatName implements Stat.
func (f *Formula) StatName() string { return f.name }

// Desc implements Stat.
func (f *Formula) Desc() string { return f.desc }

// Value implements Stat.
func (f *Formula) Value() float64 {
	if f.f == nil {
		return 0
	}
	return f.f()
}

// Histogram is a fixed-bucket distribution statistic.
type Histogram struct {
	name, desc string
	bounds     []float64 // ascending upper bounds; last bucket is overflow
	counts     []uint64
	samples    uint64
	sum        float64
	min, max   float64
}

// StatName implements Stat.
func (h *Histogram) StatName() string { return h.name }

// Desc implements Stat.
func (h *Histogram) Desc() string { return h.desc }

// Value implements Stat; it returns the mean sample.
func (h *Histogram) Value() float64 {
	if h.samples == 0 {
		return 0
	}
	return h.sum / float64(h.samples)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h.samples == 0 || v < h.min {
		h.min = v
	}
	if h.samples == 0 || v > h.max {
		h.max = v
	}
	h.samples++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.counts)-1]++
}

// Samples returns the number of observations.
func (h *Histogram) Samples() uint64 { return h.samples }

// Sum returns the running sum of all observed samples.
func (h *Histogram) Sum() float64 { return h.sum }

// BucketCount returns the number of buckets including the overflow bucket,
// so valid Bucket indices are 0..BucketCount()-1.
func (h *Histogram) BucketCount() int { return len(h.counts) }

// Min returns the smallest observed sample (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observed sample (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Bucket returns the count of bucket i; bucket len(bounds) is overflow.
func (h *Histogram) Bucket(i int) uint64 { return h.counts[i] }

// Registry holds every statistic of a System in registration order, with
// unique dotted names (e.g. "cpu0.numInsts").
type Registry struct {
	stats  []Stat
	byName map[string]Stat
}

// NewRegistry returns an empty statistics registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Stat)}
}

func (r *Registry) add(s Stat) {
	name := s.StatName()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("sim: duplicate stat %q", name))
	}
	r.byName[name] = s
	r.stats = append(r.stats, s)
}

// Scalar registers and returns a new scalar statistic.
func (r *Registry) Scalar(name, desc string) *Scalar {
	s := &Scalar{name: name, desc: desc}
	r.add(s)
	return s
}

// Counter registers and returns a new counter statistic.
func (r *Registry) Counter(name, desc string) *Counter {
	c := &Counter{name: name, desc: desc}
	r.add(c)
	return c
}

// Formula registers and returns a new derived statistic.
func (r *Registry) Formula(name, desc string, f func() float64) *Formula {
	fo := &Formula{name: name, desc: desc, f: f}
	r.add(fo)
	return fo
}

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds plus an implicit overflow bucket.
func (r *Registry) Histogram(name, desc string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("sim: histogram %q bounds not ascending", name))
	}
	h := &Histogram{
		name:   name,
		desc:   desc,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.add(h)
	return h
}

// Lookup returns the stat with the given name, or nil.
func (r *Registry) Lookup(name string) Stat { return r.byName[name] }

// All returns every registered stat in registration order. The returned
// slice is shared; callers must not mutate it. The invariant walker
// (internal/conformance) uses it to type-switch over the whole registry.
func (r *Registry) All() []Stat { return r.stats }

// Get returns the value of the named stat; it panics if the stat is missing.
func (r *Registry) Get(name string) float64 {
	s := r.byName[name]
	if s == nil {
		panic(fmt.Sprintf("sim: unknown stat %q", name))
	}
	return s.Value()
}

// Names returns all stat names in registration order.
func (r *Registry) Names() []string {
	names := make([]string, len(r.stats))
	for i, s := range r.stats {
		names[i] = s.StatName()
	}
	return names
}

// JSON renders the registry as a flat name→value JSON object, for tooling.
func (r *Registry) JSON() ([]byte, error) {
	m := make(map[string]float64, len(r.stats))
	for _, s := range r.stats {
		m[s.StatName()] = s.Value()
	}
	return json.MarshalIndent(m, "", " ")
}

// Dump renders the registry in gem5's stats.txt style.
func (r *Registry) Dump() string {
	var b strings.Builder
	b.WriteString("---------- Begin Simulation Statistics ----------\n")
	for _, s := range r.stats {
		fmt.Fprintf(&b, "%-44s %14.6g  # %s\n", s.StatName(), s.Value(), s.Desc())
	}
	b.WriteString("---------- End Simulation Statistics   ----------\n")
	return b.String()
}
