package sim

import (
	"fmt"
	"math/rand"
)

// SimObject is any named component of the simulated system. Mirroring gem5,
// everything from CPUs to caches to devices is a SimObject registered with
// the owning System.
type SimObject interface {
	Name() string
}

// Startable is implemented by SimObjects that need a callback once the whole
// system is constructed, before the first event fires (gem5's startup()).
type Startable interface {
	Startup()
}

// System owns the event queue, the statistics registry, the host tracer, and
// every SimObject of one simulated machine. It is the root object handed to
// all components.
type System struct {
	queue   Queue
	objects []SimObject
	byName  map[string]SimObject
	stats   *Registry
	tracer  Tracer
	rng     *rand.Rand

	fnDispatch FuncID // host function for the event service loop
	fnSchedule FuncID // host function for queue insertion
	serviced   uint64
	started    bool
}

// NewSystem returns a System with a heap event queue, a NopTracer, and a
// deterministic RNG seeded with seed.
func NewSystem(seed int64) *System {
	return NewSystemWith(NewHeapQueue(), NewNopTracer(), seed)
}

// NewSystemWith returns a System using the provided queue backend and tracer.
func NewSystemWith(q Queue, tr Tracer, seed int64) *System {
	s := &System{
		queue:  q,
		byName: make(map[string]SimObject),
		stats:  NewRegistry(),
		tracer: tr,
		rng:    rand.New(rand.NewSource(seed)),
	}
	s.fnDispatch = tr.RegisterFunc("EventQueue::serviceOne", 480, FuncHot)
	s.fnSchedule = tr.RegisterFunc("EventQueue::schedule", 320, FuncHot)
	return s
}

// Queue returns the system's event queue backend.
func (s *System) Queue() Queue { return s.queue }

// Tracer returns the host tracer.
func (s *System) Tracer() Tracer { return s.tracer }

// Stats returns the statistics registry.
func (s *System) Stats() *Registry { return s.stats }

// Rand returns the system's deterministic random source.
func (s *System) Rand() *rand.Rand { return s.rng }

// Now returns the current simulation time.
func (s *System) Now() Tick { return s.queue.Now() }

// EventsServiced returns the number of events fired so far.
func (s *System) EventsServiced() uint64 { return s.serviced }

// Register adds a SimObject. Names must be unique within the system.
func (s *System) Register(obj SimObject) {
	name := obj.Name()
	if _, dup := s.byName[name]; dup {
		panic(fmt.Sprintf("sim: duplicate SimObject name %q", name))
	}
	s.byName[name] = obj
	s.objects = append(s.objects, obj)
}

// Object returns the SimObject with the given name, or nil.
func (s *System) Object(name string) SimObject { return s.byName[name] }

// Objects returns all registered SimObjects in registration order.
func (s *System) Objects() []SimObject { return s.objects }

// Schedule inserts e at absolute tick when, attributing the queue work to
// the host model.
func (s *System) Schedule(e *Event, when Tick) {
	s.tracer.Call(s.fnSchedule)
	s.queue.Schedule(e, when)
}

// ScheduleIn inserts e delta ticks in the future.
func (s *System) ScheduleIn(e *Event, delta Tick) {
	s.Schedule(e, s.queue.Now()+delta)
}

// Deschedule removes a scheduled event.
func (s *System) Deschedule(e *Event) { s.queue.Deschedule(e) }

// Reschedule moves e to absolute tick when, scheduling it if necessary.
func (s *System) Reschedule(e *Event, when Tick) {
	s.tracer.Call(s.fnSchedule)
	s.queue.Reschedule(e, when)
}

// startup runs Startup on every object exactly once.
func (s *System) startup() {
	if s.started {
		return
	}
	s.started = true
	for _, obj := range s.objects {
		if st, ok := obj.(Startable); ok {
			st.Startup()
		}
	}
}

// ExitStatus describes why a simulation run returned.
type ExitStatus int

const (
	// ExitQueueEmpty means no events remained.
	ExitQueueEmpty ExitStatus = iota
	// ExitLimit means the tick limit was reached.
	ExitLimit
	// ExitEventLimit means the maximum event count was reached.
	ExitEventLimit
	// ExitRequested means a component called RequestExit.
	ExitRequested
)

func (e ExitStatus) String() string {
	switch e {
	case ExitQueueEmpty:
		return "queue empty"
	case ExitLimit:
		return "tick limit"
	case ExitEventLimit:
		return "event limit"
	case ExitRequested:
		return "exit requested"
	}
	return fmt.Sprintf("ExitStatus(%d)", int(e))
}

// exitRequest carries a component-initiated simulation exit.
type exitRequest struct {
	reason string
	code   int
}

// RequestExit stops the current Run call after the current event completes.
func (s *System) RequestExit(reason string, code int) {
	panic(&exitRequest{reason: reason, code: code})
}

// RunResult describes a completed Run call.
type RunResult struct {
	Status     ExitStatus
	ExitReason string
	ExitCode   int
	Now        Tick
	Events     uint64
}

// Run services events until the queue empties, limit ticks is exceeded,
// maxEvents events have fired (0 = unlimited), or a component requests exit.
func (s *System) Run(limit Tick, maxEvents uint64) RunResult {
	s.startup()
	res := RunResult{Status: ExitQueueEmpty}
	for {
		if s.queue.Empty() {
			res.Status = ExitQueueEmpty
			break
		}
		if s.queue.NextTick() > limit {
			res.Status = ExitLimit
			break
		}
		if maxEvents > 0 && res.Events >= maxEvents {
			res.Status = ExitEventLimit
			break
		}
		stop := s.serviceOneCatching(&res)
		res.Events++
		s.serviced++
		if stop {
			break
		}
	}
	res.Now = s.queue.Now()
	return res
}

// serviceOneCatching fires one event, translating RequestExit panics into a
// clean stop. Returns true when the run should stop.
func (s *System) serviceOneCatching(res *RunResult) (stop bool) {
	defer func() {
		if r := recover(); r != nil {
			if ex, ok := r.(*exitRequest); ok {
				res.Status = ExitRequested
				res.ExitReason = ex.reason
				res.ExitCode = ex.code
				stop = true
				return
			}
			panic(r)
		}
	}()
	s.tracer.Call(s.fnDispatch)
	s.queue.ServiceOne()
	return false
}
