package sim

import (
	"fmt"
	"math/rand"
)

// SimObject is any named component of the simulated system. Mirroring gem5,
// everything from CPUs to caches to devices is a SimObject registered with
// the owning System.
type SimObject interface {
	Name() string
}

// Startable is implemented by SimObjects that need a callback once the whole
// system is constructed, before the first event fires (gem5's startup()).
type Startable interface {
	Startup()
}

// System owns the event queue, the statistics registry, the host tracer, and
// every SimObject of one simulated machine. It is the root object handed to
// all components.
type System struct {
	queue   Queue
	objects []SimObject
	byName  map[string]SimObject
	stats   *Registry
	tracer  Tracer
	rng     *rand.Rand

	fnDispatch FuncID // host function for the event service loop
	fnSchedule FuncID // host function for queue insertion
	serviced   uint64
	started    bool

	// Sharded execution (see EnableSharding). prim points at the root System
	// from a domain view (nil on the root); shard is this view's shard index;
	// eng is non-nil on the root and every view once sharding is enabled.
	prim  *System
	shard int
	eng   *shardEngine
}

// root returns the primary System (itself, unless s is a domain view).
func (s *System) root() *System {
	if s.prim != nil {
		return s.prim
	}
	return s
}

// NewSystem returns a System with a heap event queue, a NopTracer, and a
// deterministic RNG seeded with seed.
func NewSystem(seed int64) *System {
	return NewSystemWith(NewHeapQueue(), NewNopTracer(), seed)
}

// NewSystemWith returns a System using the provided queue backend and tracer.
func NewSystemWith(q Queue, tr Tracer, seed int64) *System {
	s := &System{
		queue:  q,
		byName: make(map[string]SimObject),
		stats:  NewRegistry(),
		tracer: tr,
		rng:    rand.New(rand.NewSource(seed)),
	}
	s.fnDispatch = tr.RegisterFunc("EventQueue::serviceOne", 480, FuncHot)
	s.fnSchedule = tr.RegisterFunc("EventQueue::schedule", 320, FuncHot)
	return s
}

// Queue returns the system's event queue backend.
func (s *System) Queue() Queue { return s.queue }

// Tracer returns the host tracer.
func (s *System) Tracer() Tracer { return s.tracer }

// Stats returns the statistics registry.
func (s *System) Stats() *Registry { return s.stats }

// Rand returns the system's deterministic random source.
func (s *System) Rand() *rand.Rand { return s.rng }

// Now returns the current simulation time.
func (s *System) Now() Tick { return s.queue.Now() }

// EventsServiced returns the number of events fired so far, summed over all
// shards. Each shard's counter has a single writer and the sum is read
// between runs, so the aggregate is deterministic.
func (s *System) EventsServiced() uint64 {
	r := s.root()
	n := r.serviced
	if r.eng != nil {
		for _, v := range r.eng.views {
			if v != r {
				n += v.serviced
			}
		}
	}
	return n
}

// Register adds a SimObject. Names must be unique within the system; views
// and the root share one namespace and registration order.
func (s *System) Register(obj SimObject) {
	r := s.root()
	name := obj.Name()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("sim: duplicate SimObject name %q", name))
	}
	r.byName[name] = obj
	r.objects = append(r.objects, obj)
}

// Object returns the SimObject with the given name, or nil.
func (s *System) Object(name string) SimObject { return s.root().byName[name] }

// Objects returns all registered SimObjects in registration order.
func (s *System) Objects() []SimObject { return s.root().objects }

// Schedule inserts e at absolute tick when, attributing the queue work to
// the host model. Under sharded execution an event whose domain lives on
// another shard is routed through the engine's mailbox instead of the local
// queue (see shardEngine.post).
func (s *System) Schedule(e *Event, when Tick) {
	if s.eng != nil {
		if dst := s.eng.layout[e.domain]; dst != s.shard {
			s.eng.post(s, dst, e, when)
			return
		}
	}
	s.tracer.Call(s.fnSchedule)
	s.queue.Schedule(e, when)
}

// ScheduleIn inserts e delta ticks in the future.
func (s *System) ScheduleIn(e *Event, delta Tick) {
	s.Schedule(e, s.queue.Now()+delta)
}

// Deschedule removes a scheduled event. Under sharding an event owned by
// another affine group shard may be descheduled directly (both shards
// execute on the coordinator goroutine — guest cores park and wake each
// other through the threading syscalls); descheduling across the worker
// boundary is not supported.
func (s *System) Deschedule(e *Event) {
	if s.eng != nil {
		if dst := s.eng.layout[e.domain]; dst != s.shard {
			if s.eng.isGroup(dst) && s.eng.isGroup(s.shard) {
				s.eng.views[dst].queue.Deschedule(e)
				return
			}
			panic(fmt.Sprintf("sim: cross-shard Deschedule of %s (domain %s)", e.name, e.domain))
		}
	}
	s.queue.Deschedule(e)
}

// Reschedule moves e to absolute tick when, scheduling it if necessary.
// Like Deschedule, reschedules between affine group shards are direct;
// across the worker boundary they are not supported (no component moves an
// event it does not own, and supporting it would need a cancellation
// protocol).
func (s *System) Reschedule(e *Event, when Tick) {
	if s.eng != nil {
		if dst := s.eng.layout[e.domain]; dst != s.shard {
			if s.eng.isGroup(dst) && s.eng.isGroup(s.shard) {
				s.tracer.Call(s.fnSchedule)
				s.eng.views[dst].queue.Reschedule(e, when)
				return
			}
			panic(fmt.Sprintf("sim: cross-shard Reschedule of %s (domain %s)", e.name, e.domain))
		}
	}
	s.tracer.Call(s.fnSchedule)
	s.queue.Reschedule(e, when)
}

// startup runs Startup on every object exactly once.
func (s *System) startup() {
	if s.started {
		return
	}
	s.started = true
	for _, obj := range s.objects {
		if st, ok := obj.(Startable); ok {
			st.Startup()
		}
	}
}

// ExitStatus describes why a simulation run returned.
type ExitStatus int

const (
	// ExitQueueEmpty means no events remained.
	ExitQueueEmpty ExitStatus = iota
	// ExitLimit means the tick limit was reached.
	ExitLimit
	// ExitEventLimit means the maximum event count was reached.
	ExitEventLimit
	// ExitRequested means a component called RequestExit.
	ExitRequested
)

func (e ExitStatus) String() string {
	switch e {
	case ExitQueueEmpty:
		return "queue empty"
	case ExitLimit:
		return "tick limit"
	case ExitEventLimit:
		return "event limit"
	case ExitRequested:
		return "exit requested"
	}
	return fmt.Sprintf("ExitStatus(%d)", int(e))
}

// exitRequest carries a component-initiated simulation exit.
type exitRequest struct {
	reason string
	code   int
}

// RequestExit stops the current Run call after the current event completes.
func (s *System) RequestExit(reason string, code int) {
	panic(&exitRequest{reason: reason, code: code})
}

// RunResult describes a completed Run call.
type RunResult struct {
	Status     ExitStatus
	ExitReason string
	ExitCode   int
	Now        Tick
	Events     uint64
}

// Run services events until the queue empties, limit ticks is exceeded,
// maxEvents events have fired (0 = unlimited), or a component requests exit.
// With sharding enabled the run executes on per-domain queues in parallel;
// results are bit-identical to the serial run (see shardedqueue.go).
func (s *System) Run(limit Tick, maxEvents uint64) RunResult {
	if s.eng != nil {
		if s.prim != nil {
			panic("sim: Run on a domain view")
		}
		return s.eng.run(s, limit, maxEvents)
	}
	s.startup()
	res := RunResult{Status: ExitQueueEmpty}
	for {
		if s.queue.Empty() {
			res.Status = ExitQueueEmpty
			break
		}
		if s.queue.NextTick() > limit {
			res.Status = ExitLimit
			break
		}
		if maxEvents > 0 && res.Events >= maxEvents {
			res.Status = ExitEventLimit
			break
		}
		stop := s.serviceOneCatching(&res)
		res.Events++
		s.serviced++
		if stop {
			break
		}
	}
	res.Now = s.queue.Now()
	return res
}

// EnableSharding splits the system onto per-domain event queues executed in
// parallel under a conservative per-edge lookahead barrier (see
// shardedqueue.go). It must be called on the root System before any
// component that schedules cross-domain events is constructed, and before
// simulation begins. With cfg.Shards < 2 (and no explicit Plan) it is a
// no-op and the system stays serial. The topology comes from cfg.Plan when
// given, otherwise from the derived guest layout: shard 0 is the
// coordinator (DomainCPU + DomainDev), the last shard is the memory worker,
// and with Cores > 1 and Shards > 2 up to min(Shards-2, Cores-1, 3)
// per-core domains get affine shards of their own. Requests beyond the
// partitionable domains clamp; the returned ShardInfo reports the effective
// layout and cfg.Log (when set) receives it as one line, so a clamp is
// visible at startup instead of discovered later.
func (s *System) EnableSharding(cfg ShardConfig) ShardInfo {
	if s.prim != nil {
		panic("sim: EnableSharding on a domain view")
	}
	if s.eng != nil {
		panic("sim: EnableSharding called twice")
	}
	if cfg.Plan == nil && cfg.Shards < 2 {
		return ShardInfo{Requested: cfg.Shards, Shards: 1, Layout: "serial"}
	}
	if s.started || s.serviced > 0 {
		panic("sim: EnableSharding after simulation began")
	}
	plan := cfg.Plan
	if plan == nil {
		if cfg.Quantum == 0 {
			panic("sim: EnableSharding requires a nonzero quantum (derive it with QuantumFor)")
		}
		plan = derivePlan(cfg)
	}
	plan.validate()
	n := len(plan.Worker)
	newQ := cfg.NewQueue
	if newQ == nil {
		newQ = func() Queue { return NewHeapQueue() }
	}
	eng := &shardEngine{
		layout: plan.Layout,
		look:   plan.Look,
		under:  s.tracer,
		lookGM: LookInf,
		lookMG: LookInf,
	}
	for i, w := range plan.Worker {
		if w {
			eng.mem = i
		} else {
			eng.group = append(eng.group, i)
		}
	}
	for _, g := range eng.group {
		if lk := plan.Look[g][eng.mem]; lk < eng.lookGM {
			eng.lookGM = lk
		}
		if lk := plan.Look[eng.mem][g]; lk < eng.lookMG {
			eng.lookMG = lk
		}
	}
	if _, nop := s.tracer.(*NopTracer); nop {
		eng.traceOff = true
	}
	eng.views = make([]*System, n)
	eng.log = make([]*shardLog, n)
	eng.names = make([]string, n)
	eng.views[0] = s
	for i := 1; i < n; i++ {
		v := &System{
			queue:      newQ(),
			byName:     s.byName,
			stats:      s.stats,
			rng:        s.rng,
			fnDispatch: s.fnDispatch,
			fnSchedule: s.fnSchedule,
			prim:       s,
			shard:      i,
			eng:        eng,
		}
		v.tracer = &shardTracer{eng: eng, shard: i, under: eng.under}
		eng.views[i] = v
	}
	s.tracer = &shardTracer{eng: eng, shard: 0, under: eng.under}
	s.eng = eng
	// Affine group shards share the coordinator queue's provenance stamper
	// (their merged dispatch order must mint stamps like one queue) and must
	// support clock syncing; the worker keeps its own stamper.
	rootSharer, rootOK := s.queue.(stampSharer)
	for i, v := range eng.views {
		eng.log[i] = newShardLog(i)
		if i != 0 && eng.isGroup(i) {
			sh, shOK := v.queue.(stampSharer)
			_, csOK := v.queue.(clockSyncer)
			if !rootOK || !shOK || !csOK {
				panic(fmt.Sprintf("sim: queue backend %T does not support affine group shards (needs shared stamping and clock sync)", v.queue))
			}
			sh.shareStamper(rootSharer.stamperPtr())
		}
		if pc, ok := v.queue.(panicContexter); ok {
			shard := i
			pc.SetPanicContext(func() string { return eng.describe(shard) })
		}
	}
	// Resolve the group clock syncers once: syncGroup runs per dispatched
	// event and must not re-assert the interface each time.
	for _, g := range eng.group {
		if cs, ok := eng.views[g].queue.(clockSyncer); ok {
			eng.syncers = append(eng.syncers, cs)
		}
	}
	layout := plan.layoutString(cfg.Cores)
	for i := range eng.names {
		eng.names[i] = shardDomains(plan, i)
	}
	requested := cfg.Shards
	if cfg.Plan != nil {
		requested = n
	}
	eng.info = ShardInfo{
		Requested: requested,
		Shards:    n,
		Workers:   1,
		Clamped:   requested != n,
		Layout:    layout,
	}
	if cfg.Log != nil {
		cfg.Log("sharding: " + eng.info.String())
	}
	return eng.info
}

// ShardInfo returns the effective layout settled on by EnableSharding (the
// zero value when the system is serial).
func (s *System) ShardInfo() ShardInfo {
	if r := s.root(); r.eng != nil {
		return r.eng.info
	}
	return ShardInfo{Shards: 1, Layout: "serial"}
}

// shardDomains names one shard for messages: "cpu+dev" for the coordinator,
// the "+"-joined domain names otherwise.
func shardDomains(p *ShardPlan, shard int) string {
	if shard == 0 {
		return "cpu+dev"
	}
	s, sep := "", ""
	for d := Domain(0); d < NumDomains; d++ {
		if p.Layout[d] == shard {
			s += sep + d.String()
			sep = "+"
		}
	}
	return s
}

// Sharded reports whether sharded execution is enabled.
func (s *System) Sharded() bool { return s.root().eng != nil }

// DomainView returns the System facade owning the given domain's events:
// components constructed against it schedule and read time on that domain's
// shard. Without sharding (or for domains fused onto the primary shard) it
// returns the root System itself. Views share the root's object registry,
// statistics, RNG, and tracer identity.
func (s *System) DomainView(d Domain) *System {
	r := s.root()
	if r.eng == nil {
		return r
	}
	return r.eng.views[r.eng.layout[d]]
}

// serviceOneCatching fires one event, translating RequestExit panics into a
// clean stop. Returns true when the run should stop.
func (s *System) serviceOneCatching(res *RunResult) (stop bool) {
	defer func() {
		if r := recover(); r != nil {
			if ex, ok := r.(*exitRequest); ok {
				res.Status = ExitRequested
				res.ExitReason = ex.reason
				res.ExitCode = ex.code
				stop = true
				return
			}
			panic(r)
		}
	}()
	s.tracer.Call(s.fnDispatch)
	s.queue.ServiceOne()
	return false
}
