package sim

import (
	"encoding/json"
	"strings"
	"testing"
)

type tickerObj struct {
	name  string
	sys   *System
	ev    *Event
	count int
	limit int
}

func newTicker(sys *System, name string, limit int) *tickerObj {
	o := &tickerObj{name: name, sys: sys, limit: limit}
	o.ev = NewEvent(name+".tick", 0, o.tick)
	sys.Register(o)
	return o
}

func (o *tickerObj) Name() string { return o.name }

func (o *tickerObj) Startup() { o.sys.Schedule(o.ev, 0) }

func (o *tickerObj) tick() {
	o.count++
	if o.count < o.limit {
		o.sys.ScheduleIn(o.ev, 1000)
	}
}

func TestSystemRunToEmpty(t *testing.T) {
	sys := NewSystem(1)
	tk := newTicker(sys, "ticker", 10)
	res := sys.Run(MaxTick, 0)
	if res.Status != ExitQueueEmpty {
		t.Fatalf("status = %v", res.Status)
	}
	if tk.count != 10 {
		t.Fatalf("count = %d, want 10", tk.count)
	}
	if res.Now != 9000 {
		t.Fatalf("Now = %d, want 9000", res.Now)
	}
	if res.Events != 10 {
		t.Fatalf("events = %d, want 10", res.Events)
	}
}

func TestSystemTickLimit(t *testing.T) {
	sys := NewSystem(1)
	tk := newTicker(sys, "ticker", 1000)
	res := sys.Run(4500, 0)
	if res.Status != ExitLimit {
		t.Fatalf("status = %v", res.Status)
	}
	if tk.count != 5 { // events at 0,1000,2000,3000,4000
		t.Fatalf("count = %d, want 5", tk.count)
	}
	// The pending event must remain schedulable; resuming continues the run.
	res = sys.Run(9500, 0)
	if tk.count != 10 {
		t.Fatalf("after resume count = %d, want 10", tk.count)
	}
}

func TestSystemEventLimit(t *testing.T) {
	sys := NewSystem(1)
	newTicker(sys, "ticker", 1000)
	res := sys.Run(MaxTick, 7)
	if res.Status != ExitEventLimit || res.Events != 7 {
		t.Fatalf("status = %v events = %d", res.Status, res.Events)
	}
}

func TestSystemRequestExit(t *testing.T) {
	sys := NewSystem(1)
	e := NewEvent("boom", 0, func() { sys.RequestExit("m5 exit", 42) })
	sys.Schedule(e, 123)
	res := sys.Run(MaxTick, 0)
	if res.Status != ExitRequested || res.ExitCode != 42 || res.ExitReason != "m5 exit" {
		t.Fatalf("res = %+v", res)
	}
	if res.Now != 123 {
		t.Fatalf("Now = %d", res.Now)
	}
}

func TestSystemDuplicateObjectPanics(t *testing.T) {
	sys := NewSystem(1)
	newTicker(sys, "x", 1)
	mustPanic(t, "duplicate object", func() { newTicker(sys, "x", 1) })
}

func TestSystemObjectLookup(t *testing.T) {
	sys := NewSystem(1)
	tk := newTicker(sys, "cpu0", 1)
	if sys.Object("cpu0") != SimObject(tk) {
		t.Fatal("lookup failed")
	}
	if sys.Object("nope") != nil {
		t.Fatal("phantom object")
	}
	if len(sys.Objects()) != 1 {
		t.Fatal("Objects() wrong length")
	}
}

func TestSystemDeterminism(t *testing.T) {
	runOnce := func() (Tick, uint64) {
		sys := NewSystem(42)
		for i := 0; i < 5; i++ {
			tk := newTicker(sys, "t"+string(rune('a'+i)), 20+i)
			_ = tk
		}
		res := sys.Run(MaxTick, 0)
		return res.Now, res.Events
	}
	n1, e1 := runOnce()
	n2, e2 := runOnce()
	if n1 != n2 || e1 != e2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", n1, e1, n2, e2)
	}
}

func TestStatsRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cpu.numInsts", "instructions committed")
	s := r.Scalar("cpu.ipc", "instructions per cycle")
	f := r.Formula("cpu.double", "twice the counter", func() float64 { return 2 * c.Value() })
	c.Addn(5)
	c.Inc()
	s.Set(1.5)
	s.Add(0.25)
	if c.Count() != 6 {
		t.Fatalf("counter = %d", c.Count())
	}
	if got := r.Get("cpu.ipc"); got != 1.75 {
		t.Fatalf("scalar = %v", got)
	}
	if f.Value() != 12 {
		t.Fatalf("formula = %v", f.Value())
	}
	if r.Lookup("nope") != nil {
		t.Fatal("phantom stat")
	}
	mustPanic(t, "unknown stat", func() { r.Get("nope") })
	mustPanic(t, "duplicate stat", func() { r.Counter("cpu.numInsts", "") })
	dump := r.Dump()
	for _, want := range []string{"cpu.numInsts", "cpu.ipc", "Begin Simulation"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q", want)
		}
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "cpu.numInsts" {
		t.Fatalf("names = %v", names)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{10, 20, 30})
	for _, v := range []float64{5, 15, 25, 35, 100, 10} {
		h.Observe(v)
	}
	if h.Samples() != 6 {
		t.Fatalf("samples = %d", h.Samples())
	}
	if h.Min() != 5 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	wantBuckets := []uint64{2, 1, 1, 2} // <=10:{5,10} <=20:{15} <=30:{25} over:{35,100}
	for i, w := range wantBuckets {
		if h.Bucket(i) != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.Bucket(i), w)
		}
	}
	if h.Value() != (5+15+25+35+100+10)/6.0 {
		t.Fatalf("mean = %v", h.Value())
	}
	mustPanic(t, "unsorted bounds", func() { r.Histogram("bad", "", []float64{3, 1}) })
}

func TestNopTracer(t *testing.T) {
	tr := NewNopTracer()
	a := tr.RegisterFunc("f", 100, 0)
	b := tr.RegisterFunc("g", 100, FuncHot)
	if a == b || a == 0 {
		t.Fatalf("ids a=%d b=%d", a, b)
	}
	p := tr.AllocData("x", 100)
	q := tr.AllocData("y", 100)
	if q <= p {
		t.Fatal("alloc not advancing")
	}
	if q%64 != 0 || p%64 != 0 {
		t.Fatal("alloc not aligned")
	}
	tr.Call(a)
	tr.Data(p, 8, true)
}

func TestEventAccessors(t *testing.T) {
	e := NewEventPrio("ev", 3, PrioCPUTick, func() {})
	if e.Name() != "ev" || e.Priority() != PrioCPUTick || e.Scheduled() {
		t.Fatalf("accessors wrong: %v %v %v", e.Name(), e.Priority(), e.Scheduled())
	}
	if !strings.Contains(e.String(), "unscheduled") {
		t.Fatalf("String = %q", e.String())
	}
	q := NewHeapQueue()
	q.Schedule(e, 77)
	if !e.Scheduled() || e.When() != 77 {
		t.Fatal("scheduled state wrong")
	}
	if !strings.Contains(e.String(), "77") {
		t.Fatalf("String = %q", e.String())
	}
	if q.NextTick() != 77 {
		t.Fatal("NextTick wrong")
	}
}

func TestExitStatusString(t *testing.T) {
	cases := map[ExitStatus]string{
		ExitQueueEmpty: "queue empty",
		ExitLimit:      "tick limit",
		ExitEventLimit: "event limit",
		ExitRequested:  "exit requested",
		ExitStatus(99): "ExitStatus(99)",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(st), st.String(), want)
		}
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b", "").Addn(3)
	r.Scalar("c.d", "").Set(1.5)
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["a.b"] != 3 || m["c.d"] != 1.5 {
		t.Fatalf("json = %v", m)
	}
}
