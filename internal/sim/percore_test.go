package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// mcWorkload drives a synthetic multicore system shaped like the real
// per-core layouts: one tick chain per guest core on its own domain, memory
// accesses crossing to the worker shard and responding onto the issuing
// core's shard, cross-core pokes (group→group schedules, including same-tick
// collisions and relaxed Reschedules), and — deliberately — trace records
// emitted through *other* cores' views mid-dispatch, the way a core's event
// reaches synchronously into the shared L2 through the root view. Everything
// must stay byte-identical to the serial run at every layout.
type mcWorkload struct {
	views  []*System // per-core group views (views[0] == root)
	msys   *System
	fnCPU  FuncID
	fnMem  FuncID
	fnResp FuncID
	fnPoke FuncID
	rng    splitmix
	cores  int
	issued int
	maxOps int
	retire uint64
	poked  uint64
	exitAt int
	pokeEv []*Event // per-core reschedulable poke targets
}

// newMCWorkload builds the workload against sys (sharded or serial). The
// shared rng is safe: every group event executes on the coordinator in
// merged deterministic order, which equals the serial order.
func newMCWorkload(sys *System, cores int, seed uint64, maxOps, exitAt int) *mcWorkload {
	w := &mcWorkload{
		msys:   sys.DomainView(DomainMem),
		rng:    splitmix(seed),
		cores:  cores,
		maxOps: maxOps,
		exitAt: exitAt,
	}
	for i := 0; i < cores; i++ {
		w.views = append(w.views, sys.DomainView(DomainForCore(i)))
	}
	tr := sys.Tracer()
	w.fnCPU = tr.RegisterFunc("test::mcTick", 100, FuncHot)
	w.fnMem = tr.RegisterFunc("test::mcMem", 200, 0)
	w.fnResp = tr.RegisterFunc("test::mcResp", 50, FuncHot)
	w.fnPoke = tr.RegisterFunc("test::mcPoke", 30, 0)
	return w
}

func (w *mcWorkload) start() {
	for i := 0; i < w.cores; i++ {
		core := i
		poke := NewEvent(fmt.Sprintf("cpu%d.poke", core), w.fnPoke, nil).SetDomain(DomainForCore(core))
		poke.fire = func() {
			w.poked++
			// Log through this core's view AND the root view: records from
			// one dispatch may arrive through several group views and must
			// replay contiguously in dispatch order.
			w.views[core].Tracer().Call(w.fnPoke)
			w.views[0].Tracer().Data(uint64(core)<<32|uint64(w.views[0].Now()), 4, true)
		}
		w.pokeEv = append(w.pokeEv, poke)

		tick := NewEventPrio(fmt.Sprintf("cpu%d.tick", core), w.fnCPU, PrioCPUTick, nil).
			SetDomain(DomainForCore(core))
		var body func()
		body = func() {
			v := w.views[core]
			v.Tracer().Call(w.fnCPU)
			// Reach "across the hierarchy": a record through the root view
			// while another core's shard is dispatching.
			w.views[0].Tracer().Data(uint64(v.Now())<<8|uint64(core), 8, false)
			if w.issued >= w.maxOps {
				return
			}
			w.issued++
			id := w.issued
			r := w.rng.next()
			// Memory access across the worker boundary: delay is at least
			// 1000 ticks, the BusLookahead floor the tests configure.
			d := Tick(1000 * (1 + r%40))
			acc := NewEvent(fmt.Sprintf("mem.acc.%d", id), w.fnMem, nil).SetDomain(DomainMem)
			acc.fire = func() { w.memFire(id, core) }
			v.ScheduleIn(acc, d)
			// Cross-core poke: a group→group Reschedule through this core's
			// view onto a sibling's domain, sometimes at the very same tick.
			if w.cores > 1 && r%3 == 0 {
				sib := (core + 1 + int(r>>8)%(w.cores-1)) % w.cores
				delta := Tick(1000 * (r >> 16 % 3)) // 0, 1000, or 2000
				v.Reschedule(w.pokeEv[sib], v.Now()+delta)
			}
			v.ScheduleIn(tick, 1000)
		}
		tick.fire = body
		w.views[0].Schedule(tick, Tick(1000*(1+core)))
	}
}

// memFire runs on the worker shard; the response targets the issuing core's
// shard at least a quantum later. Its delay derives from a pure per-id hash:
// under sharding it runs concurrently with the group.
func (w *mcWorkload) memFire(id, core int) {
	tr := w.msys.Tracer()
	tr.Call(w.fnMem)
	tr.Data(uint64(w.msys.Now())<<8|uint64(id&0xff), 64, true)
	h := splitmix(uint64(id) * 0x5851f42d4c957f2d)
	extra := Tick(1000 * (h.next() % 8))
	resp := NewEvent(fmt.Sprintf("mem.resp.%d", id), w.fnResp, nil).SetDomain(DomainForCore(core))
	resp.fire = func() { w.respFire(id, core) }
	w.msys.ScheduleIn(resp, testQuantum+1000+extra)
}

func (w *mcWorkload) respFire(id, core int) {
	tr := w.views[core].Tracer()
	tr.Call(w.fnResp)
	tr.Data(uint64(w.views[core].Now())<<8|uint64(id&0xff), 8, false)
	w.retire++
	if w.exitAt > 0 && w.retire == uint64(w.exitAt) {
		w.views[0].RequestExit("mc test exit", 9)
	}
}

// mcConfig selects the sharding of one differential leg.
type mcConfig struct {
	shards int        // used when plan is nil; <2 = serial
	plan   *ShardPlan // explicit topology override
}

func runMC(t *testing.T, cfg mcConfig, cores int, calendar bool, seed uint64, maxOps, exitAt int, limit Tick) shardRunOut {
	t.Helper()
	newQ := func() Queue {
		if calendar {
			return NewCalendarQueue(256, 1000)
		}
		return NewHeapQueue()
	}
	tr := &seqTracer{}
	sys := NewSystemWith(newQ(), tr, 42)
	sys.EnableSharding(ShardConfig{
		Shards:       cfg.shards,
		Quantum:      QuantumFor(testQuantum),
		BusLookahead: QuantumFor(1000),
		NewQueue:     newQ,
		Cores:        cores,
		Plan:         cfg.plan,
	})
	w := newMCWorkload(sys, cores, seed, maxOps, exitAt)
	w.start()
	res := sys.Run(limit, 0)
	return shardRunOut{res: res, log: tr.log, evServ: sys.EventsServiced(), retired: w.retire + w.poked}
}

func diffMC(t *testing.T, name string, serial, sharded shardRunOut) {
	t.Helper()
	if serial.res != sharded.res {
		t.Fatalf("%s: RunResult diverged: serial %+v sharded %+v", name, serial.res, sharded.res)
	}
	if serial.evServ != sharded.evServ {
		t.Fatalf("%s: EventsServiced diverged: %d vs %d", name, serial.evServ, sharded.evServ)
	}
	if serial.retired != sharded.retired {
		t.Fatalf("%s: retire/poke count diverged: %d vs %d", name, serial.retired, sharded.retired)
	}
	if !reflect.DeepEqual(serial.log, sharded.log) {
		i := 0
		for i < len(serial.log) && i < len(sharded.log) && serial.log[i] == sharded.log[i] {
			i++
		}
		t.Fatalf("%s: trace diverged at record %d (of %d/%d): serial %q sharded %q",
			name, i, len(serial.log), len(sharded.log), tail(serial.log, i), tail(sharded.log, i))
	}
}

// TestPerCoreBitIdentical is the per-core layout's core contract: for 2- and
// 4-core workloads, the fused layout (shards=2), every per-core layout up to
// the widest, and an over-asked clamped request all reproduce the serial
// run's results, event counts, and host-visible trace order byte for byte —
// on both queue backends.
func TestPerCoreBitIdentical(t *testing.T) {
	for _, calendar := range []bool{false, true} {
		for _, cores := range []int{2, 4} {
			for seed := uint64(1); seed <= 4; seed++ {
				serial := runMC(t, mcConfig{shards: 1}, cores, calendar, seed, 200, 0, MaxTick)
				for _, shards := range []int{2, 3, 1 + cores, 8} {
					sharded := runMC(t, mcConfig{shards: shards}, cores, calendar, seed, 200, 0, MaxTick)
					diffMC(t, fmt.Sprintf("calendar=%v/cores=%d/seed=%d/shards=%d", calendar, cores, seed, shards),
						serial, sharded)
				}
			}
		}
	}
}

// TestPerCoreExitTruncation: a component-requested exit from a per-core
// shard leaves results identical to serial, including the partial tick.
func TestPerCoreExitTruncation(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		for _, exitAt := range []int{1, 13, 80} {
			serial := runMC(t, mcConfig{shards: 1}, 4, false, seed, 200, exitAt, MaxTick)
			if serial.res.Status != ExitRequested || serial.res.ExitCode != 9 {
				t.Fatalf("seed=%d/exitAt=%d: unexpected serial exit %+v", seed, exitAt, serial.res)
			}
			for _, shards := range []int{2, 5} {
				sharded := runMC(t, mcConfig{shards: shards}, 4, false, seed, 200, exitAt, MaxTick)
				diffMC(t, fmt.Sprintf("seed=%d/exitAt=%d/shards=%d", seed, exitAt, shards), serial, sharded)
			}
		}
	}
}

// TestPerCoreMultiRun: repeated Run calls with growing limits (the interval
// runner's pattern) agree across layouts.
func TestPerCoreMultiRun(t *testing.T) {
	run := func(shards int) ([]RunResult, []string, uint64) {
		tr := &seqTracer{}
		sys := NewSystemWith(NewHeapQueue(), tr, 42)
		sys.EnableSharding(ShardConfig{
			Shards: shards, Quantum: testQuantum, BusLookahead: 1000, Cores: 4,
		})
		w := newMCWorkload(sys, 4, 11, 150, 0)
		w.start()
		var rs []RunResult
		for _, lim := range []Tick{50_000, 150_000, MaxTick} {
			rs = append(rs, sys.Run(lim, 0))
		}
		return rs, tr.log, sys.EventsServiced()
	}
	sr, slog, sev := run(1)
	for _, shards := range []int{2, 5} {
		pr, plog, pev := run(shards)
		if !reflect.DeepEqual(sr, pr) {
			t.Fatalf("shards=%d: multi-run results diverged:\nserial  %+v\nsharded %+v", shards, sr, pr)
		}
		if sev != pev {
			t.Fatalf("shards=%d: EventsServiced diverged: %d vs %d", shards, sev, pev)
		}
		if !reflect.DeepEqual(slog, plog) {
			t.Fatalf("shards=%d: trace diverged (%d vs %d records)", shards, len(slog), len(plog))
		}
	}
}

// TestShardInfoClampAndLog pins the clamp behavior and the startup
// visibility hook: the effective layout is validated once, reported in the
// returned ShardInfo (and via System.ShardInfo), and rendered to cfg.Log as
// exactly one line naming the clamp.
func TestShardInfoClampAndLog(t *testing.T) {
	cases := []struct {
		name  string
		cfg   ShardConfig
		want  ShardInfo
		inLog []string
	}{
		{
			name: "single_core_overask_clamps",
			cfg:  ShardConfig{Shards: 8, Quantum: testQuantum},
			want: ShardInfo{Requested: 8, Shards: 2, Workers: 1, Clamped: true, Layout: "cpu+dev|mem"},
			inLog: []string{
				"sharding: 2 shards (1 worker, requested 8, clamped): cpu+dev|mem",
			},
		},
		{
			name: "quad_percore_exact",
			cfg:  ShardConfig{Shards: 5, Quantum: testQuantum, BusLookahead: 1000, Cores: 4},
			want: ShardInfo{Requested: 5, Shards: 5, Workers: 1, Clamped: false, Layout: "cpu+dev|cpu1|cpu2|cpu3|mem"},
			inLog: []string{
				"sharding: 5 shards (1 worker): cpu+dev|cpu1|cpu2|cpu3|mem",
			},
		},
		{
			name: "quad_partial_percore",
			cfg:  ShardConfig{Shards: 4, Quantum: testQuantum, Cores: 4},
			want: ShardInfo{Requested: 4, Shards: 4, Workers: 1, Clamped: false, Layout: "cpu+dev|cpu1|cpu2|mem"},
		},
		{
			name: "dual_overask_clamps",
			cfg:  ShardConfig{Shards: 8, Quantum: testQuantum, Cores: 2},
			want: ShardInfo{Requested: 8, Shards: 3, Workers: 1, Clamped: true, Layout: "cpu+dev|cpu1|mem"},
		},
		{
			name: "many_cores_fold",
			cfg:  ShardConfig{Shards: 16, Quantum: testQuantum, Cores: 6},
			want: ShardInfo{Requested: 16, Shards: 5, Workers: 1, Clamped: true, Layout: "cpu+dev|cpu1|cpu2|cpu3|mem"},
		},
		{
			name: "fused_multicore",
			cfg:  ShardConfig{Shards: 2, Quantum: testQuantum, Cores: 4},
			want: ShardInfo{Requested: 2, Shards: 2, Workers: 1, Clamped: false, Layout: "cpux4+dev|mem"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var lines []string
			c.cfg.Log = func(s string) { lines = append(lines, s) }
			sys := NewSystem(1)
			info := sys.EnableSharding(c.cfg)
			if info != c.want {
				t.Fatalf("ShardInfo = %+v, want %+v", info, c.want)
			}
			if got := sys.ShardInfo(); got != info {
				t.Fatalf("System.ShardInfo = %+v, EnableSharding returned %+v", got, info)
			}
			if len(lines) != 1 {
				t.Fatalf("Log called %d times, want exactly once: %q", len(lines), lines)
			}
			for _, want := range c.inLog {
				if lines[0] != want {
					t.Fatalf("log line = %q, want %q", lines[0], want)
				}
			}
		})
	}

	// A serial system still answers ShardInfo with the serial layout, and a
	// below-threshold request reports serial without enabling anything.
	sys := NewSystem(1)
	if got := sys.ShardInfo(); got.Shards != 1 || got.Layout != "serial" {
		t.Fatalf("serial ShardInfo = %+v", got)
	}
	if info := sys.EnableSharding(ShardConfig{Shards: 1}); info.Shards != 1 || info.Layout != "serial" || sys.Sharded() {
		t.Fatalf("Shards=1 should stay serial, got %+v (sharded=%v)", info, sys.Sharded())
	}
}

// TestPerEdgeViolationPanics: a cross post below its directed edge's
// declared floor — or over an edge the plan never declared — must fail
// loudly, naming the edge and the floor.
func TestPerEdgeViolationPanics(t *testing.T) {
	t.Run("below_group_to_mem_floor", func(t *testing.T) {
		sys := NewSystem(42)
		sys.EnableSharding(ShardConfig{Shards: 2, Quantum: testQuantum, BusLookahead: 1000})
		bad := NewEvent("cpu.bad", 0, nil)
		bad.fire = func() {
			acc := NewEvent("bad.acc", 0, func() {}).SetDomain(DomainMem)
			sys.ScheduleIn(acc, 500) // below the 1000-tick group→mem floor
		}
		sys.Schedule(bad, 5000)
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected a per-edge lookahead panic")
			}
			msg := fmt.Sprint(r)
			for _, want := range []string{"cpu+dev→mem edge lookahead 1000", "floor 6000"} {
				if !strings.Contains(msg, want) {
					t.Fatalf("panic message %q lacks %q", msg, want)
				}
			}
		}()
		sys.Run(MaxTick, 0)
	})

	t.Run("absent_edge", func(t *testing.T) {
		// A custom plan where cpu1 has no edge to mem: posting across it is
		// undeclared traffic and must panic regardless of the tick.
		plan := &ShardPlan{Worker: []bool{false, false, true}, Look: NewLookahead(3)}
		plan.Layout[DomainMem] = 2
		plan.Layout[DomainCore1] = 1
		plan.Look[0][1], plan.Look[1][0] = 0, 0
		plan.Look[0][2] = 1000
		plan.Look[2][0], plan.Look[2][1] = testQuantum, testQuantum
		// plan.Look[1][2] stays LookInf: cpu1 never talks to mem.
		sys := NewSystem(42)
		sys.EnableSharding(ShardConfig{Plan: plan})
		v1 := sys.DomainView(DomainCore1)
		bad := NewEvent("cpu1.bad", 0, nil).SetDomain(DomainCore1)
		bad.fire = func() {
			acc := NewEvent("bad.acc", 0, func() {}).SetDomain(DomainMem)
			v1.ScheduleIn(acc, testQuantum*4) // far future, still undeclared
		}
		sys.Schedule(bad, 5000)
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected an absent-edge panic")
			}
			msg := fmt.Sprint(r)
			if !strings.Contains(msg, "absent edge cpu1→mem (lookahead ∞)") {
				t.Fatalf("panic message %q lacks the edge description", msg)
			}
		}()
		sys.Run(MaxTick, 0)
	})
}

// randomPlan derives a valid synthetic topology from r: 2..5 shards, the
// core domains scattered over the group shards (some fused, some alone),
// random group→mem floors at or below the workload's minimum cross delay
// (1000) and random mem→group floors at or below its minimum response delay
// (testQuantum+1000). The barrier must produce byte-identical results for
// every such matrix.
func randomPlan(r *splitmix) *ShardPlan {
	n := 2 + int(r.next()%4) // 2..5 shards
	mem := n - 1
	p := &ShardPlan{Worker: make([]bool, n), Look: NewLookahead(n)}
	p.Worker[mem] = true
	p.Layout[DomainMem] = mem
	for d := DomainCore1; d <= DomainCore3; d++ {
		if mem > 1 {
			p.Layout[d] = int(r.next() % uint64(mem))
		}
	}
	for g := 0; g < mem; g++ {
		p.Look[g][mem] = Tick(500 * (r.next() % 3))     // 0, 500, or 1000
		p.Look[mem][g] = Tick(1000 * (1 + r.next()%15)) // 1000..15000
		for h := 0; h < mem; h++ {
			if g != h {
				p.Look[g][h] = 0
			}
		}
	}
	return p
}

// TestRandomLookaheadMatrices drives seeded random per-edge lookahead
// matrices (and random core→shard scatters) through the barrier invariants:
// every topology must reproduce the serial run exactly.
func TestRandomLookaheadMatrices(t *testing.T) {
	for seed := uint64(1); seed <= 24; seed++ {
		r := splitmix(seed * 0x9e3779b97f4a7c15)
		plan := randomPlan(&r)
		cores := 1 + int(r.next()%4)
		serial := runMC(t, mcConfig{shards: 1}, cores, false, seed, 150, 0, MaxTick)
		sharded := runMC(t, mcConfig{plan: plan}, cores, false, seed, 150, 0, MaxTick)
		diffMC(t, fmt.Sprintf("seed=%d/cores=%d/layout=%v", seed, cores, plan.Layout), serial, sharded)
	}
}

// FuzzPerEdgeLookahead lets the fuzzer hunt for (topology, workload) pairs
// whose sharded run diverges from serial — random per-edge floors, core
// scatters, core counts, and workload seeds through the full barrier.
func FuzzPerEdgeLookahead(f *testing.F) {
	f.Add(uint64(1), uint64(7), uint8(2), uint8(0))
	f.Add(uint64(42), uint64(3), uint8(4), uint8(1))
	f.Add(uint64(99), uint64(11), uint8(3), uint8(20))
	f.Fuzz(func(t *testing.T, planSeed, wlSeed uint64, cores, exitAt uint8) {
		nc := 1 + int(cores%4)
		r := splitmix(planSeed)
		plan := randomPlan(&r)
		exit := int(exitAt % 40)
		serial := runMC(t, mcConfig{shards: 1}, nc, false, wlSeed, 120, exit, MaxTick)
		sharded := runMC(t, mcConfig{plan: plan}, nc, false, wlSeed, 120, exit, MaxTick)
		diffMC(t, fmt.Sprintf("plan=%d/wl=%d/cores=%d/exit=%d", planSeed, wlSeed, nc, exit), serial, sharded)
	})
}
