package cpu

import (
	"strings"
	"testing"

	"gem5prof/internal/guest"
	"gem5prof/internal/isa"
	"gem5prof/internal/mem"
	"gem5prof/internal/sim"
)

// haltEnv exits the simulation on ecall/ebreak; a0 carries the exit code.
type haltEnv struct{ sys *sim.System }

func (e *haltEnv) Ecall(c *Core) {
	c.Halt()
	e.sys.RequestExit("ecall exit", int(c.ReadReg(10)))
}

func (e *haltEnv) Ebreak(c *Core) {
	c.Halt()
	e.sys.RequestExit("ebreak exit", int(c.ReadReg(10)))
}

// memAdapter exposes guest.Memory as FuncMem.
type memAdapter struct{ m *guest.Memory }

func (a memAdapter) Read(addr uint32, size int) (uint64, error)  { return a.m.Read(addr, size) }
func (a memAdapter) Write(addr uint32, size int, v uint64) error { return a.m.Write(addr, size, v) }
func (a memAdapter) HostAddr(addr uint32) uint64                 { return a.m.HostAddr(addr) }

type rig struct {
	sys  *sim.System
	mem  *guest.Memory
	cpu  CPU
	hier *mem.Hierarchy
}

// buildRig assembles src and constructs a CPU of the given model
// ("atomic", "timing", "minor", "o3"), optionally with a real cache
// hierarchy ("caches") or ideal memory.
func buildRig(t *testing.T, model, src string, caches bool) *rig {
	t.Helper()
	sys := sim.NewSystem(7)
	gm := guest.NewMemory(16 * 1024 * 1024)
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := gm.Load(prog); err != nil {
		t.Fatalf("load: %v", err)
	}
	cfg := Config{
		Name: "cpu0",
		Mem:  memAdapter{gm},
		Env:  &haltEnv{sys},
	}
	r := &rig{sys: sys, mem: gm}
	if caches {
		r.hier = mem.NewHierarchy(sys, mem.DefaultHierarchyConfig("sys"))
		cfg.IPort = r.hier.L1I
		cfg.DPort = r.hier.L1D
	}
	switch model {
	case "atomic":
		r.cpu = NewAtomicCPU(sys, cfg)
	case "timing":
		r.cpu = NewTimingCPU(sys, cfg)
	case "minor":
		r.cpu = NewMinorCPU(sys, cfg, DefaultMinorConfig())
	case "o3":
		r.cpu = NewO3CPU(sys, cfg, DefaultO3Config())
	default:
		t.Fatalf("unknown model %q", model)
	}
	r.cpu.Start(prog.Entry)
	return r
}

func runRig(t *testing.T, r *rig) sim.RunResult {
	t.Helper()
	res := r.sys.Run(10*sim.Second, 50_000_000)
	if res.Status != sim.ExitRequested {
		t.Fatalf("run ended with %v (reason %q) after %d events at tick %d",
			res.Status, res.ExitReason, res.Events, res.Now)
	}
	return res
}

var allModels = []string{"atomic", "timing", "minor", "o3"}

const sumProgram = `
_start:
	li   a0, 0
	li   t0, 1
	li   t1, 101
loop:
	add  a0, a0, t0
	addi t0, t0, 1
	bne  t0, t1, loop
	ecall
`

func TestAllModelsComputeSum(t *testing.T) {
	for _, model := range allModels {
		for _, caches := range []bool{false, true} {
			name := model
			if caches {
				name += "+caches"
			}
			t.Run(name, func(t *testing.T) {
				r := buildRig(t, model, sumProgram, caches)
				res := runRig(t, r)
				if got := r.cpu.Core().ReadReg(10); got != 5050 {
					t.Fatalf("a0 = %d, want 5050", got)
				}
				if res.ExitCode != 5050 {
					t.Fatalf("exit code = %d", res.ExitCode)
				}
			})
		}
	}
}

func TestAllModelsSameInstCount(t *testing.T) {
	var counts []uint64
	for _, model := range allModels {
		r := buildRig(t, model, sumProgram, true)
		runRig(t, r)
		counts = append(counts, r.cpu.Core().CommittedInsts())
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("inst counts diverge: %v (models %v)", counts, allModels)
		}
	}
	// 6 setup (3 li = 6 insts) + 100 iterations * 3. The final ecall
	// terminates the run before it is counted as committed.
	if counts[0] != 6+300 {
		t.Fatalf("inst count = %d", counts[0])
	}
}

const memProgram = `
_start:
	la   t0, array
	li   t1, 0        # i
	li   t2, 64       # n
fill:
	mul  t3, t1, t1   # i*i
	slli t4, t1, 2
	add  t4, t4, t0
	sw   t3, 0(t4)
	addi t1, t1, 1
	bne  t1, t2, fill
	# sum them back
	li   a0, 0
	li   t1, 0
sum:
	slli t4, t1, 2
	add  t4, t4, t0
	lw   t3, 0(t4)
	add  a0, a0, t3
	addi t1, t1, 1
	bne  t1, t2, sum
	ecall
array:
	.space 256
`

func TestAllModelsMemory(t *testing.T) {
	want := uint32(0)
	for i := uint32(0); i < 64; i++ {
		want += i * i
	}
	for _, model := range allModels {
		t.Run(model, func(t *testing.T) {
			r := buildRig(t, model, memProgram, true)
			runRig(t, r)
			if got := r.cpu.Core().ReadReg(10); got != want {
				t.Fatalf("a0 = %d, want %d", got, want)
			}
			if r.hier.L1D.Misses() == 0 {
				t.Fatal("no L1D misses recorded")
			}
			if r.cpu.Core().numLoads.Count() != 64 || r.cpu.Core().numStores.Count() != 64 {
				t.Fatalf("loads/stores = %d/%d",
					r.cpu.Core().numLoads.Count(), r.cpu.Core().numStores.Count())
			}
		})
	}
}

const fpProgram = `
_start:
	la   t0, vals
	fld  f1, 0(t0)
	fld  f2, 8(t0)
	fadd f3, f1, f2
	fmul f4, f3, f3
	fsqrt f5, f4
	fsd  f5, 16(t0)
	fld  f6, 16(t0)
	fcvt.w.d a0, f6
	ecall
vals:
	.double 1.5
	.double 2.5
	.space 8
`

func TestAllModelsFloat(t *testing.T) {
	for _, model := range allModels {
		t.Run(model, func(t *testing.T) {
			r := buildRig(t, model, fpProgram, false)
			runRig(t, r)
			// sqrt((1.5+2.5)^2) = 4
			if got := r.cpu.Core().ReadReg(10); got != 4 {
				t.Fatalf("a0 = %d, want 4", got)
			}
		})
	}
}

func TestAtomicIPCIsOne(t *testing.T) {
	r := buildRig(t, "atomic", sumProgram, true)
	runRig(t, r)
	a := r.cpu.(*AtomicCPU)
	if ipc := a.IPC(); ipc != 1 {
		t.Fatalf("atomic IPC = %v, want exactly 1", ipc)
	}
}

func TestTimingSlowerThanAtomic(t *testing.T) {
	ra := buildRig(t, "atomic", memProgram, true)
	runRig(t, ra)
	atomicTime := ra.sys.Now()
	rt := buildRig(t, "timing", memProgram, true)
	runRig(t, rt)
	timingTime := rt.sys.Now()
	if timingTime <= atomicTime {
		t.Fatalf("timing (%d) should be slower than atomic (%d)", timingTime, atomicTime)
	}
}

func TestO3FasterThanTimingWithCaches(t *testing.T) {
	rt := buildRig(t, "timing", memProgram, true)
	runRig(t, rt)
	ro := buildRig(t, "o3", memProgram, true)
	runRig(t, ro)
	if ro.sys.Now() >= rt.sys.Now() {
		t.Fatalf("o3 (%d) should beat timing simple (%d)", ro.sys.Now(), rt.sys.Now())
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	r := buildRig(t, "minor", sumProgram, false)
	runRig(t, r)
	bp := r.cpu.(*MinorCPU).BP()
	if bp.Lookups() == 0 {
		t.Fatal("no predictor lookups")
	}
	if rate := bp.MispredictRate(); rate > 0.10 {
		t.Fatalf("mispredict rate %v too high for a simple loop", rate)
	}
}

func TestO3BranchHeavyStillCorrect(t *testing.T) {
	// Data-dependent branches (parity of a simple LCG) defeat prediction;
	// results must stay architecturally exact.
	src := `
_start:
	li   a0, 0
	li   t0, 12345    # lcg state
	li   t1, 0        # i
	li   t2, 200      # n
loop:
	li   t4, 1103515245
	mul  t0, t0, t4
	addi t0, t0, 12345
	andi t3, t0, 1
	beq  t3, x0, even
	addi a0, a0, 1
even:
	addi t1, t1, 1
	bne  t1, t2, loop
	ecall
`
	want := func() uint32 {
		var a, s uint32 = 0, 12345
		for i := 0; i < 200; i++ {
			s = s*1103515245 + 12345
			if s&1 == 1 {
				a++
			}
		}
		return a
	}()
	for _, model := range []string{"minor", "o3"} {
		r := buildRig(t, model, src, true)
		runRig(t, r)
		if got := r.cpu.Core().ReadReg(10); got != want {
			t.Fatalf("%s: a0 = %d, want %d", model, got, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, model := range allModels {
		r1 := buildRig(t, model, memProgram, true)
		runRig(t, r1)
		r2 := buildRig(t, model, memProgram, true)
		runRig(t, r2)
		if r1.sys.Now() != r2.sys.Now() {
			t.Fatalf("%s nondeterministic: %d vs %d", model, r1.sys.Now(), r2.sys.Now())
		}
	}
}

func TestFetchFaultTerminates(t *testing.T) {
	// Jump far outside physical memory.
	src := `
_start:
	li  t0, 0x00F00000
	slli t0, t0, 4
	jalr x0, 0(t0)
`
	for _, model := range allModels {
		t.Run(model, func(t *testing.T) {
			r := buildRig(t, model, src, false)
			res := r.sys.Run(1*sim.Second, 10_000_000)
			if res.Status != sim.ExitRequested || res.ExitCode != 255 {
				t.Fatalf("res = %+v", res)
			}
			if !strings.Contains(res.ExitReason, "cpu") && !strings.Contains(res.ExitReason, "guest") {
				t.Fatalf("reason = %q", res.ExitReason)
			}
		})
	}
}

func TestDataFaultTerminates(t *testing.T) {
	src := `
_start:
	li  t0, 0x00F00000
	slli t0, t0, 4
	lw  t1, 0(t0)
	ecall
`
	for _, model := range allModels {
		r := buildRig(t, model, src, false)
		res := r.sys.Run(1*sim.Second, 10_000_000)
		if res.Status != sim.ExitRequested || res.ExitCode != 255 {
			t.Fatalf("%s: res = %+v", model, res)
		}
	}
}

func TestWFIAndTimerInterrupt(t *testing.T) {
	// Program: install a handler, enable MIE, wfi; handler sets a0 and exits.
	src := `
_start:
	la   t0, handler
	csrrw x0, 0x305, t0    # mtvec
	li   t1, 8
	csrrs x0, 0x300, t1    # mstatus.MIE
	wfi
	nop
	nop
spin:
	j    spin
handler:
	li   a0, 77
	ecall
`
	for _, model := range allModels {
		t.Run(model, func(t *testing.T) {
			r := buildRig(t, model, src, false)
			// Raise a timer interrupt at 1us.
			core := r.cpu.Core()
			r.sys.Schedule(sim.NewEvent("timer", 0, func() { core.RaiseInterrupt() }), 1*sim.Microsecond)
			res := runRig(t, r)
			if res.ExitCode != 77 {
				t.Fatalf("exit code = %d", res.ExitCode)
			}
			if res.Now < 1*sim.Microsecond {
				t.Fatalf("woke too early: %d", res.Now)
			}
		})
	}
}

func TestMretReturnsFromTrap(t *testing.T) {
	src := `
_start:
	la   t0, handler
	csrrw x0, 0x305, t0
	li   t1, 8
	csrrs x0, 0x300, t1
	wfi
	li   a0, 11          # resumes here after mret
	ecall
handler:
	addi s0, s0, 1
	mret
`
	for _, model := range allModels {
		r := buildRig(t, model, src, false)
		core := r.cpu.Core()
		r.sys.Schedule(sim.NewEvent("timer", 0, func() { core.RaiseInterrupt() }), 500*sim.Nanosecond)
		res := runRig(t, r)
		if res.ExitCode != 11 {
			t.Fatalf("%s: exit = %d", model, res.ExitCode)
		}
		if core.ReadReg(8) != 1 {
			t.Fatalf("%s: handler ran %d times", model, core.ReadReg(8))
		}
	}
}

func TestCSRCycleAndInstret(t *testing.T) {
	src := `
_start:
	csrrs a1, 0xC02, x0   # instret
	nop
	nop
	nop
	csrrs a2, 0xC02, x0
	sub   a0, a2, a1
	ecall
`
	r := buildRig(t, "atomic", src, false)
	runRig(t, r)
	if got := r.cpu.Core().ReadReg(10); got != 4 {
		t.Fatalf("instret delta = %d, want 4", got)
	}
}

func TestHaltStopsScheduling(t *testing.T) {
	r := buildRig(t, "atomic", sumProgram, false)
	runRig(t, r)
	if !r.cpu.Core().Halted() {
		t.Fatal("core not halted")
	}
	// Queue should drain completely after halt.
	res := r.sys.Run(10*sim.Second, 0)
	if res.Status != sim.ExitQueueEmpty {
		t.Fatalf("leftover events: %+v", res)
	}
}

func TestTournamentBPDirectionLearning(t *testing.T) {
	st := sim.NewRegistry()
	bp := NewTournamentBP(st, "bp", DefaultTournamentConfig())
	br := isa.Inst{Op: isa.OpBne, Rs1: 1, Rs2: 2, Imm: -4}
	pc := uint32(0x1000)
	// Train: always taken.
	for i := 0; i < 32; i++ {
		bp.Update(pc, br, true, pc-16)
	}
	if p := bp.Predict(pc, br); !p.Taken || p.Target != pc-16 {
		t.Fatalf("prediction after training = %+v", p)
	}
	// RAS: call then return.
	call := isa.Inst{Op: isa.OpJal, Rd: 1, Imm: 100}
	bp.Update(pc, call, true, pc+400)
	ret := isa.Inst{Op: isa.OpJalr, Rd: 0, Rs1: 1}
	if p := bp.Predict(pc+400, ret); !p.Taken || p.Target != pc+4 {
		t.Fatalf("RAS prediction = %+v", p)
	}
	// Indirect via BTB.
	ind := isa.Inst{Op: isa.OpJalr, Rd: 0, Rs1: 5}
	bp.Update(0x2000, ind, true, 0x3000)
	if p := bp.Predict(0x2000, ind); p.Target != 0x3000 {
		t.Fatalf("BTB prediction = %+v", p)
	}
}

func TestIdealPort(t *testing.T) {
	sys := sim.NewSystem(1)
	p := IdealPort{Sys: sys, Latency: 5}
	if p.AtomicLatency(mem.Access{}) != 5 {
		t.Fatal("atomic latency")
	}
	var at sim.Tick
	p.SendTiming(mem.Access{}, func() { at = sys.Now() })
	p.SendTiming(mem.Access{}, nil) // nil done must not panic
	sys.Run(sim.MaxTick, 0)
	if at != 5 {
		t.Fatalf("timing completion at %d", at)
	}
}
