package cpu

import (
	"gem5prof/internal/isa"
	"gem5prof/internal/mem"
	"gem5prof/internal/sim"
)

// O3Config sets the geometry of the out-of-order core. Defaults follow the
// paper's Table I (8-wide, 192-entry ROB, 64-entry IQ, 32/32 LQ/SQ,
// tournament predictor with a 4096-entry BTB).
type O3Config struct {
	Width             int // fetch/rename/issue/commit width
	ROBEntries        int
	IQEntries         int
	LQEntries         int
	SQEntries         int
	FetchBytes        uint32
	MispredictPenalty int
	BP                TournamentConfig
}

// DefaultO3Config returns the Table I configuration.
func DefaultO3Config() O3Config {
	return O3Config{
		Width:             8,
		ROBEntries:        192,
		IQEntries:         64,
		LQEntries:         32,
		SQEntries:         32,
		FetchBytes:        64,
		MispredictPenalty: 10,
		BP:                DefaultTournamentConfig(),
	}
}

type robEntry struct {
	seq      uint64
	pc       uint32
	in       isa.Inst
	deps     [3]uint64 // producer sequence numbers (0 = none)
	numDeps  int
	issued   bool
	complete bool
	doneAt   sim.Tick
	memAddr  uint32
	hasMem   bool
	mispred  bool
}

// O3CPU is the out-of-order model. Instructions execute architecturally in
// program order at dispatch (the one-pass execution-driven style documented
// in DESIGN.md); an out-of-order timing engine with a ROB, issue queue,
// load/store queues, and a tournament predictor then determines when cycles
// elapse. Wrong-path work appears as front-end squash bubbles.
type O3CPU struct {
	core *Core
	ocfg O3Config
	bp   *TournamentBP

	tick *sim.Event

	// Front end.
	fetchPC    uint32
	fetchEpoch uint64
	fetchBusy  bool
	buffer     []minorInst
	stallUntil sim.Tick
	// resolveSeq, when nonzero, stalls fetch until that entry completes.
	resolveSeq uint64

	// Back end.
	rob      []robEntry
	headSeq  uint64 // oldest in-flight sequence number
	nextSeq  uint64
	inROB    int
	unissued int
	lqUsed   int
	sqUsed   int
	renameTo [isa.NumArchRegs]uint64

	// Host-model stage functions.
	fnRename sim.FuncID
	fnIEW    sim.FuncID
	fnCommit sim.FuncID
	fnLSQ    sim.FuncID
	fnROB    sim.FuncID

	numCycles    *sim.Counter
	robFullStall *sim.Counter
	iqFullStall  *sim.Counter
	lsqFullStall *sim.Counter
	squashes     *sim.Counter
}

// NewO3CPU builds an out-of-order core.
func NewO3CPU(sys *sim.System, cfg Config, ocfg O3Config) *O3CPU {
	if ocfg.Width <= 0 || ocfg.ROBEntries <= 0 || ocfg.IQEntries <= 0 ||
		ocfg.LQEntries <= 0 || ocfg.SQEntries <= 0 {
		panic("cpu: bad O3 config")
	}
	c := &O3CPU{
		core: newCore(sys, "O3CPU", cfg),
		ocfg: ocfg,
		bp:   NewTournamentBP(sys.Stats(), cfg.Name, ocfg.BP),
		rob:  make([]robEntry, ocfg.ROBEntries),
	}
	c.nextSeq = 1
	c.headSeq = 1
	tr := sys.Tracer()
	c.fnRename = tr.RegisterFunc("O3CPU::Rename::renameInsts", 6200, sim.FuncVirtual|sim.FuncPoly)
	c.fnIEW = tr.RegisterFunc("O3CPU::IEW::executeInsts", 7400, sim.FuncVirtual|sim.FuncPoly)
	c.fnCommit = tr.RegisterFunc("O3CPU::Commit::commitInsts", 5800, sim.FuncVirtual|sim.FuncPoly)
	c.fnLSQ = tr.RegisterFunc("O3CPU::LSQUnit::executeLoad", 4600, sim.FuncVirtual|sim.FuncPoly)
	c.fnROB = tr.RegisterFunc("O3CPU::ROB::insertInst", 2800, sim.FuncVirtual|sim.FuncHot)
	st := sys.Stats()
	c.numCycles = st.Counter(cfg.Name+".numCycles", "pipeline cycles evaluated")
	c.robFullStall = st.Counter(cfg.Name+".robFullStalls", "dispatch stalls: ROB full")
	c.iqFullStall = st.Counter(cfg.Name+".iqFullStalls", "dispatch stalls: IQ full")
	c.lsqFullStall = st.Counter(cfg.Name+".lsqFullStalls", "dispatch stalls: LQ/SQ full")
	c.squashes = st.Counter(cfg.Name+".squashes", "front-end squashes")
	c.tick = sim.NewEventPrio(cfg.Name+".tick", c.fnIEW, sim.PrioCPUTick, c.evaluate).SetDomain(cfg.Domain)
	c.core.wakeup = func() { c.schedule() }
	c.core.redirect = func(pc uint32) { c.squashFrontEnd(pc, 0) }
	sys.Register(c)
	return c
}

// Name implements sim.SimObject.
func (c *O3CPU) Name() string { return c.core.name }

// Core implements CPU.
func (c *O3CPU) Core() *Core { return c.core }

// BP returns the branch predictor.
func (c *O3CPU) BP() *TournamentBP { return c.bp }

// IPC implements CPU.
func (c *O3CPU) IPC() float64 {
	elapsed := c.core.sys.Now() / c.core.clock
	if elapsed == 0 {
		return 0
	}
	return float64(c.core.numInsts.Count()) / float64(elapsed)
}

// Start implements CPU.
func (c *O3CPU) Start(entry uint32) {
	c.core.pc = entry
	c.fetchPC = entry
	c.schedule()
}

func (c *O3CPU) schedule() {
	if c.core.halted || c.tick.Scheduled() {
		return
	}
	c.core.sys.ScheduleIn(c.tick, c.core.clock)
}

func (c *O3CPU) entry(seq uint64) *robEntry {
	return &c.rob[seq%uint64(len(c.rob))]
}

// live reports whether seq names an in-flight ROB entry.
func (c *O3CPU) live(seq uint64) bool {
	return seq >= c.headSeq && seq < c.nextSeq && c.entry(seq).seq == seq
}

// squashFrontEnd discards fetched-but-not-dispatched instructions and
// redirects fetch to pc once the resolving instruction completes.
func (c *O3CPU) squashFrontEnd(pc uint32, resolveSeq uint64) {
	c.squashes.Inc()
	c.fetchEpoch++
	c.buffer = c.buffer[:0]
	c.fetchPC = pc
	c.resolveSeq = resolveSeq
	if resolveSeq == 0 {
		c.stallUntil = c.core.sys.Now() + sim.Tick(c.ocfg.MispredictPenalty)*c.core.clock
	}
}

// evaluate advances commit, issue, dispatch, and fetch by one cycle.
func (c *O3CPU) evaluate() {
	core := c.core
	if core.halted {
		return
	}
	c.numCycles.Inc()
	now := core.sys.Now()

	c.commit(now)
	c.issue(now)
	if core.waiting {
		return // WFI drain; wakeup() re-arms
	}
	if !c.dispatch(now) {
		return // fault terminated the run
	}
	c.tryFetch()

	switch {
	case c.inROB > 0 || len(c.buffer) > 0:
		c.schedule()
	case !c.fetchBusy && c.resolveSeq == 0 && now < c.stallUntil:
		// Idle only because of a redirect penalty: resume exactly then.
		c.scheduleAt(c.stallUntil)
	}
	// Otherwise fetch response or memory callbacks re-arm the pipeline.
}

// scheduleAt arms the pipeline event at an absolute tick.
func (c *O3CPU) scheduleAt(when sim.Tick) {
	if c.core.halted {
		return
	}
	if c.tick.Scheduled() {
		if c.tick.When() <= when {
			return
		}
		c.core.sys.Deschedule(c.tick)
	}
	c.core.sys.Reschedule(c.tick, when)
}

// commit retires completed instructions in order.
func (c *O3CPU) commit(now sim.Tick) {
	core := c.core
	for n := 0; n < c.ocfg.Width && c.inROB > 0; n++ {
		e := c.entry(c.headSeq)
		if !e.complete || e.doneAt > now {
			return
		}
		core.sys.Tracer().Call(c.fnCommit)
		if e.in.IsStore() {
			// The store leaves the SQ when the cache accepts it.
			core.sys.Tracer().Call(c.fnLSQ)
			acc := mem.Access{Addr: e.memAddr, Size: uint8(e.in.MemSize()), Write: true}
			core.cfg.DPort.SendTiming(acc, func() {
				c.sqUsed--
				c.schedule()
			})
		}
		if e.in.IsLoad() {
			c.lqUsed--
		}
		c.headSeq++
		c.inROB--
	}
}

// issue wakes up ready instructions out of order.
func (c *O3CPU) issue(now sim.Tick) {
	core := c.core
	issued := 0
	for seq := c.headSeq; seq < c.nextSeq && issued < c.ocfg.Width; seq++ {
		e := c.entry(seq)
		if e.issued {
			continue
		}
		if !c.depsReady(e, now) {
			continue
		}
		core.sys.Tracer().Call(c.fnIEW)
		e.issued = true
		c.unissued--
		issued++
		if e.in.IsLoad() {
			core.sys.Tracer().Call(c.fnLSQ)
			seqCopy := seq
			acc := mem.Access{Addr: e.memAddr, Size: uint8(e.in.MemSize())}
			core.cfg.DPort.SendTiming(acc, func() {
				if c.live(seqCopy) {
					le := c.entry(seqCopy)
					le.complete = true
					le.doneAt = core.sys.Now()
					c.resolved(le)
				}
				c.schedule()
			})
			continue
		}
		e.complete = true
		e.doneAt = now + sim.Tick(fuLatency(e.in.Class()))*core.clock
		c.resolved(e)
	}
}

// resolved releases a mispredict fetch stall once its branch completes.
func (c *O3CPU) resolved(e *robEntry) {
	if c.resolveSeq != 0 && e.seq == c.resolveSeq {
		c.resolveSeq = 0
		c.stallUntil = e.doneAt + sim.Tick(c.ocfg.MispredictPenalty)*c.core.clock
	}
}

func (c *O3CPU) depsReady(e *robEntry, now sim.Tick) bool {
	for i := 0; i < e.numDeps; i++ {
		dep := e.deps[i]
		if !c.live(dep) {
			continue // producer already retired
		}
		p := c.entry(dep)
		if !p.complete || p.doneAt > now {
			return false
		}
	}
	return true
}

// dispatch renames and architecturally executes instructions in program
// order. Returns false if a fault ended the simulation.
func (c *O3CPU) dispatch(now sim.Tick) bool {
	core := c.core
	for n := 0; n < c.ocfg.Width && len(c.buffer) > 0; n++ {
		if core.waiting {
			return true
		}
		if c.inROB >= c.ocfg.ROBEntries {
			c.robFullStall.Inc()
			return true
		}
		if c.unissued >= c.ocfg.IQEntries {
			c.iqFullStall.Inc()
			return true
		}
		// Interrupts are taken at dispatch once the machine drains to a
		// precise PC (matching gem5's drain-then-trap); while one is
		// pending, dispatch stalls so the ROB can empty.
		if core.InterruptReady() {
			if c.inROB > 0 {
				return true
			}
			if core.takeInterruptIfPending() {
				c.squashFrontEnd(core.pc, 0)
				return true
			}
		}
		mi := c.buffer[0]
		if mi.pc != core.pc {
			c.buffer = c.buffer[1:]
			continue
		}
		if mi.in.IsLoad() && c.lqUsed >= c.ocfg.LQEntries ||
			mi.in.IsStore() && c.sqUsed >= c.ocfg.SQEntries {
			c.lsqFullStall.Inc()
			return true
		}
		core.sys.Tracer().Call(c.fnRename)
		c.buffer = c.buffer[1:]

		pc := mi.pc
		out, err := core.execute(mi.in)
		if err != nil {
			core.sys.RequestExit(err.Error(), 255)
			return false
		}
		redirected := core.pc != pc
		if !redirected {
			core.pc = out.NextPC(pc)
		}

		// Allocate the ROB entry.
		core.sys.Tracer().Call(c.fnROB)
		seq := c.nextSeq
		c.nextSeq++
		c.inROB++
		c.unissued++
		e := c.entry(seq)
		*e = robEntry{seq: seq, pc: pc, in: mi.in}
		var srcs [3]isa.RegID
		for _, r := range mi.in.Srcs(srcs[:0]) {
			if p := c.renameTo[r]; p != 0 && c.live(p) {
				e.deps[e.numDeps] = p
				e.numDeps++
			}
		}
		if d := mi.in.Dest(); d != isa.InvalidReg {
			c.renameTo[d] = seq
		}
		if out.HasMem {
			e.hasMem = true
			e.memAddr = out.MemAddr
			if mi.in.IsLoad() {
				c.lqUsed++
			} else {
				c.sqUsed++
			}
		}

		// Control resolution: squash the front end on any redirect the
		// fetch-time prediction did not anticipate.
		realNext := core.pc
		if mi.in.IsControl() {
			c.bp.Update(pc, mi.in, out.ControlTaken, out.ControlTarget)
		}
		if redirected {
			// Trap/environment redirect: refetch immediately after resolve.
			e.mispred = true
			c.squashFrontEnd(realNext, seq)
			return true
		}
		if mi.predNext != realNext {
			c.bp.RecordMispredict()
			e.mispred = true
			c.squashFrontEnd(realNext, seq)
			return true
		}
	}
	return true
}

// tryFetch mirrors the Minor front end: fetch one block, pre-decode, follow
// predictions.
func (c *O3CPU) tryFetch() {
	core := c.core
	if c.fetchBusy || core.halted || len(c.buffer) >= 4*c.ocfg.Width {
		return
	}
	now := core.sys.Now()
	if c.resolveSeq != 0 || now < c.stallUntil {
		return // waiting on a branch resolution or redirect penalty
	}
	epoch := c.fetchEpoch
	start := c.fetchPC
	c.fetchBusy = true
	core.sys.Tracer().Call(core.fnFetch)
	core.cfg.IPort.SendTiming(mem.Access{Addr: start, Size: isa.InstBytes, Inst: true}, func() {
		c.fetchBusy = false
		if core.halted {
			return
		}
		if epoch != c.fetchEpoch {
			// Squashed while in flight: re-arm so the redirected stream is
			// fetched instead of the pipeline going idle.
			c.schedule()
			return
		}
		c.fillBuffer(start)
		c.schedule()
	})
}

// fillBuffer decodes one fetched block into the dispatch buffer.
func (c *O3CPU) fillBuffer(start uint32) {
	core := c.core
	blockEnd := (start &^ (c.ocfg.FetchBytes - 1)) + c.ocfg.FetchBytes
	pc := start
	max := 4 * c.ocfg.Width
	for pc < blockEnd && len(c.buffer) < max {
		w, err := core.fetchWord(pc)
		if err != nil {
			if pc == start && len(c.buffer) == 0 {
				c.buffer = append(c.buffer, minorInst{pc: pc, in: isa.Inst{Op: isa.OpInvalid}, predNext: pc})
			}
			break
		}
		core.sys.Tracer().Call(core.fnDecode)
		in := isa.Decode(w)
		next := pc + isa.InstBytes
		if in.IsControl() {
			pred := c.bp.Predict(pc, in)
			if pred.Taken {
				next = pred.Target
			}
		}
		c.buffer = append(c.buffer, minorInst{pc: pc, in: in, predNext: next})
		pc = next
		if next < start || next >= blockEnd {
			break
		}
		if in.IsSystem() {
			break
		}
	}
	c.fetchPC = pc
}
