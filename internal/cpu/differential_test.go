package cpu

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"gem5prof/internal/guest"
	"gem5prof/internal/isa"
	"gem5prof/internal/sim"
)

// genProgram emits a random but guaranteed-terminating KISA program:
// straight-line arithmetic/memory blocks interleaved with bounded counted
// loops, ending in an ecall. Data lives in a scratch region; every memory
// access is generated in range and naturally aligned.
func genProgram(rng *rand.Rand, blocks int) string {
	src := "_start:\n\tli sp, 0xF00000\n\tla s11, scratch\n"
	loopID := 0
	for b := 0; b < blocks; b++ {
		// A few random register ops. Registers x5..x17 are fair game.
		reg := func() int { return 5 + rng.Intn(13) }
		for i := 0; i < 4+rng.Intn(8); i++ {
			rd, r1, r2 := reg(), reg(), reg()
			switch rng.Intn(10) {
			case 0:
				src += fmt.Sprintf("\tadd x%d, x%d, x%d\n", rd, r1, r2)
			case 1:
				src += fmt.Sprintf("\tsub x%d, x%d, x%d\n", rd, r1, r2)
			case 2:
				src += fmt.Sprintf("\txor x%d, x%d, x%d\n", rd, r1, r2)
			case 3:
				src += fmt.Sprintf("\tmul x%d, x%d, x%d\n", rd, r1, r2)
			case 4:
				src += fmt.Sprintf("\tslli x%d, x%d, %d\n", rd, r1, rng.Intn(31))
			case 5:
				src += fmt.Sprintf("\taddi x%d, x%d, %d\n", rd, r1, rng.Intn(2000)-1000)
			case 6:
				src += fmt.Sprintf("\tsltu x%d, x%d, x%d\n", rd, r1, r2)
			case 7:
				// Aligned store + load within the scratch region.
				off := rng.Intn(64) * 4
				src += fmt.Sprintf("\tsw x%d, %d(s11)\n", r1, off)
				src += fmt.Sprintf("\tlw x%d, %d(s11)\n", rd, off)
			case 8:
				src += fmt.Sprintf("\tdiv x%d, x%d, x%d\n", rd, r1, r2)
			case 9:
				src += fmt.Sprintf("\tsra x%d, x%d, x%d\n", rd, r1, r2)
			}
		}
		// A bounded loop: for t6 = K..0 { body }.
		iter := 1 + rng.Intn(6)
		src += fmt.Sprintf("\tli t6, %d\nloop%d:\n", iter, loopID)
		src += fmt.Sprintf("\tadd x%d, x%d, t6\n", reg(), reg())
		src += fmt.Sprintf("\taddi t6, t6, -1\n\tbne t6, x0, loop%d\n", loopID)
		loopID++
	}
	// Fold the register file into a0 and exit.
	src += "\tli a0, 0\n"
	for r := 5; r <= 17; r++ {
		src += fmt.Sprintf("\tadd a0, a0, x%d\n", r)
		src += fmt.Sprintf("\txor a0, a0, x%d\n", r)
	}
	src += "\tli a7, 93\n\tecall\nscratch:\n\t.space 256\n"
	return src
}

// refCtx is a bare interpreter context over real guest memory: the oracle
// the pipeline models are compared against.
type refCtx struct {
	regs  [32]uint32
	fregs [32]float64
	pc    uint32
	csrs  map[uint32]uint32
	mem   *guest.Memory
}

func (c *refCtx) ReadReg(r uint8) uint32 {
	if r == 0 {
		return 0
	}
	return c.regs[r]
}

func (c *refCtx) WriteReg(r uint8, v uint32) {
	if r != 0 {
		c.regs[r] = v
	}
}
func (c *refCtx) ReadFReg(r uint8) float64                 { return c.fregs[r] }
func (c *refCtx) WriteFReg(r uint8, v float64)             { c.fregs[r] = v }
func (c *refCtx) PC() uint32                               { return c.pc }
func (c *refCtx) ReadMem(a uint32, s int) (uint64, error)  { return c.mem.Read(a, s) }
func (c *refCtx) WriteMem(a uint32, s int, v uint64) error { return c.mem.Write(a, s, v) }
func (c *refCtx) ReadCSR(num uint32) uint32                { return c.csrs[num] }
func (c *refCtx) WriteCSR(num uint32, v uint32)            { c.csrs[num] = v }
func (c *refCtx) Ecall()                                   {}
func (c *refCtx) Ebreak()                                  {}
func (c *refCtx) Wfi()                                     {}
func (c *refCtx) Mret() uint32                             { return c.csrs[CSRMEPC] }

// refRun executes the program with the bare interpreter (no pipeline, no
// events) and returns the exit value in a0.
func refRun(t *testing.T, prog *isa.Program) uint32 {
	t.Helper()
	mem := guest.NewMemory(16 << 20)
	if err := mem.Load(prog); err != nil {
		t.Fatal(err)
	}
	ctx := &refCtx{csrs: map[uint32]uint32{}, mem: mem, pc: prog.Entry}
	for steps := 0; steps < 5_000_000; steps++ {
		w, err := mem.FetchWord(ctx.pc)
		if err != nil {
			t.Fatalf("ref fetch: %v", err)
		}
		in := isa.Decode(w)
		if in.Op == isa.OpEcall {
			return ctx.ReadReg(10)
		}
		out, err := isa.Execute(in, ctx)
		if err != nil {
			t.Fatalf("ref exec at %#x: %v", ctx.pc, err)
		}
		ctx.pc = out.NextPC(ctx.pc)
	}
	t.Fatal("reference interpreter did not terminate")
	return 0
}

// TestDifferentialRandomPrograms cross-checks the four pipeline models
// against the bare interpreter on randomly generated programs. Any
// divergence is a pipeline correctness bug (wrong-path leakage, hazard
// mishandling, lost redirects).
func TestDifferentialRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			src := genProgram(rng, 3+rng.Intn(5))
			prog, err := isa.Assemble(src)
			if err != nil {
				t.Fatalf("assemble: %v\n%s", err, src)
			}
			want := refRun(t, prog)
			for _, model := range allModels {
				for _, caches := range []bool{false, true} {
					r := buildRig(t, model, src, caches)
					res := r.sys.Run(10*sim.Second, 100_000_000)
					if res.Status != sim.ExitRequested {
						t.Fatalf("%s caches=%v: did not exit: %+v", model, caches, res)
					}
					if got := uint32(res.ExitCode); got != want {
						t.Fatalf("%s caches=%v: a0 = %#x, want %#x (seed %d)",
							model, caches, got, want, seed)
					}
				}
			}
		})
	}
}

// TestDifferentialEncodeStability pins the generator: the same seed must
// produce the same program bytes (so failures are reproducible).
func TestDifferentialEncodeStability(t *testing.T) {
	p1, err := isa.Assemble(genProgram(rand.New(rand.NewSource(7)), 4))
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := isa.Assemble(genProgram(rand.New(rand.NewSource(7)), 4))
	if string(p1.Data) != string(p2.Data) {
		t.Fatal("generator nondeterministic")
	}
	// And decodes to valid instructions throughout the text section.
	for off := 0; off+4 <= len(p1.Data); off += 4 {
		w := isa.Word(binary.LittleEndian.Uint32(p1.Data[off:]))
		_ = isa.Decode(w)
	}
}
