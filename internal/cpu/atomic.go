package cpu

import (
	"gem5prof/internal/isa"
	"gem5prof/internal/mem"
	"gem5prof/internal/sim"
)

// AtomicCPU is the AtomicSimpleCPU model: CPI = 1, memory accesses complete
// atomically with no contention or queuing. Caches are still exercised
// atomically so that tag state and statistics stay warm, matching gem5.
type AtomicCPU struct {
	core *Core
	tick *sim.Event

	// batch bounds instructions executed per event, trading event-queue
	// pressure against interrupt latency.
	batch int

	numCycles *sim.Counter
}

// NewAtomicCPU builds an AtomicSimpleCPU.
func NewAtomicCPU(sys *sim.System, cfg Config) *AtomicCPU {
	c := &AtomicCPU{core: newCore(sys, "AtomicSimpleCPU", cfg), batch: 64}
	c.numCycles = sys.Stats().Counter(cfg.Name+".numCycles", "guest cycles simulated")
	c.tick = sim.NewEventPrio(cfg.Name+".tick", c.core.fnFetch, sim.PrioCPUTick, c.doTick).SetDomain(cfg.Domain)
	c.core.wakeup = func() {
		// The tick may still be queued: a core parked at build time keeps
		// its Start event until it first fires, and a spawn can unpark it
		// within the spawner's same-tick batch.
		if !c.tick.Scheduled() {
			sys.ScheduleIn(c.tick, c.core.clock)
		}
	}
	sys.Register(c)
	return c
}

// Name implements sim.SimObject.
func (c *AtomicCPU) Name() string { return c.core.name }

// Core implements CPU.
func (c *AtomicCPU) Core() *Core { return c.core }

// IPC implements CPU. AtomicSimpleCPU retires one instruction per cycle.
func (c *AtomicCPU) IPC() float64 {
	if c.numCycles.Count() == 0 {
		return 0
	}
	return float64(c.core.numInsts.Count()) / float64(c.numCycles.Count())
}

// Start implements CPU.
func (c *AtomicCPU) Start(entry uint32) {
	c.core.pc = entry
	c.core.sys.Schedule(c.tick, c.core.sys.Now())
}

func (c *AtomicCPU) doTick() {
	core := c.core
	for i := 0; i < c.batch; i++ {
		if core.halted {
			return
		}
		if core.takeInterruptIfPending() {
			// Redirect applied; keep executing from the vector.
			continue
		}
		if core.waiting {
			return // parked until RaiseInterrupt reschedules
		}
		pc := core.pc
		// Exercise the instruction port atomically (tag warming + stats);
		// the returned latency is deliberately ignored: CPI stays 1.
		core.sys.Tracer().Call(core.fnFetch)
		core.cfg.IPort.AtomicLatency(mem.Access{Addr: pc, Size: isa.InstBytes, Inst: true})
		w, err := core.fetchWord(pc)
		if err != nil {
			core.sys.RequestExit(err.Error(), 255)
		}
		core.sys.Tracer().Call(core.fnDecode)
		in := isa.Decode(w)
		out, err := core.execute(in)
		if err != nil {
			core.sys.RequestExit(err.Error(), 255)
		}
		if out.HasMem {
			core.cfg.DPort.AtomicLatency(mem.Access{
				Addr: out.MemAddr, Size: uint8(in.MemSize()), Write: in.IsStore(),
			})
		}
		c.numCycles.Inc()
		if core.pc == pc {
			// Only advance when the instruction did not redirect the PC
			// itself (traps/syscalls may have).
			core.pc = out.NextPC(pc)
		}
		if core.halted {
			return
		}
	}
	core.sys.ScheduleIn(c.tick, sim.Tick(c.batch)*core.clock)
}
