package cpu

import (
	"gem5prof/internal/isa"
	"gem5prof/internal/sim"
)

// Prediction is one branch predictor decision.
type Prediction struct {
	Taken  bool
	Target uint32
}

// Predictor is the direction+target predictor interface used by the Minor
// and O3 models. Implementations are deterministic.
type Predictor interface {
	// Predict returns the predicted outcome for the control instruction in
	// at pc. The decoded instruction is available (decode-assisted BTB).
	Predict(pc uint32, in isa.Inst) Prediction
	// Update trains the predictor with the resolved outcome.
	Update(pc uint32, in isa.Inst, taken bool, target uint32)
}

// counter2 is a 2-bit saturating counter.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) inc() counter2 {
	if c < 3 {
		return c + 1
	}
	return c
}

func (c counter2) dec() counter2 {
	if c > 0 {
		return c - 1
	}
	return c
}

type btbEntry struct {
	tag    uint32
	target uint32
	valid  bool
}

// TournamentBP is a gem5-style tournament predictor: a local 2-bit table, a
// global-history table, a choice table, a branch target buffer, and a
// return-address stack.
type TournamentBP struct {
	local  []counter2
	global []counter2
	choice []counter2
	ghr    uint32
	btb    []btbEntry
	ras    []uint32

	lookups     *sim.Counter
	mispredicts *sim.Counter
	btbMisses   *sim.Counter
}

// TournamentConfig sizes a TournamentBP.
type TournamentConfig struct {
	LocalEntries  int
	GlobalEntries int
	BTBEntries    int
	RASDepth      int
}

// DefaultTournamentConfig mirrors the paper's FireSim configuration
// (TournamentBP with a 4096-entry BTB).
func DefaultTournamentConfig() TournamentConfig {
	return TournamentConfig{LocalEntries: 2048, GlobalEntries: 8192, BTBEntries: 4096, RASDepth: 16}
}

// NewTournamentBP builds a tournament predictor, registering its statistics
// under prefix.
func NewTournamentBP(st *sim.Registry, prefix string, cfg TournamentConfig) *TournamentBP {
	if cfg.LocalEntries <= 0 || cfg.GlobalEntries <= 0 || cfg.BTBEntries <= 0 {
		panic("cpu: bad tournament predictor config")
	}
	b := &TournamentBP{
		local:  make([]counter2, cfg.LocalEntries),
		global: make([]counter2, cfg.GlobalEntries),
		choice: make([]counter2, cfg.GlobalEntries),
		btb:    make([]btbEntry, cfg.BTBEntries),
		ras:    make([]uint32, 0, cfg.RASDepth),
	}
	// Weakly taken initial state converges faster on loopy code.
	for i := range b.local {
		b.local[i] = 2
	}
	b.lookups = st.Counter(prefix+".bpLookups", "branch predictor lookups")
	b.mispredicts = st.Counter(prefix+".bpMispredicts", "mispredicted control instructions")
	b.btbMisses = st.Counter(prefix+".btbMisses", "indirect targets missing in BTB")
	return b
}

// Lookups returns the number of predictions made.
func (b *TournamentBP) Lookups() uint64 { return b.lookups.Count() }

// Mispredicts returns the resolved misprediction count. Users call
// RecordMispredict when a prediction proves wrong.
func (b *TournamentBP) Mispredicts() uint64 { return b.mispredicts.Count() }

// RecordMispredict accounts one resolved misprediction.
func (b *TournamentBP) RecordMispredict() { b.mispredicts.Inc() }

// MispredictRate returns mispredicts/lookups.
func (b *TournamentBP) MispredictRate() float64 {
	if b.lookups.Count() == 0 {
		return 0
	}
	return float64(b.mispredicts.Count()) / float64(b.lookups.Count())
}

func (b *TournamentBP) localIdx(pc uint32) int {
	return int(pc/isa.InstBytes) & (len(b.local) - 1)
}

func (b *TournamentBP) globalIdx(pc uint32) int {
	return int((pc/isa.InstBytes)^b.ghr) & (len(b.global) - 1)
}

func (b *TournamentBP) btbIdx(pc uint32) int {
	return int(pc/isa.InstBytes) & (len(b.btb) - 1)
}

// isCall reports a JAL/JALR that links into ra.
func isCall(in isa.Inst) bool { return in.IsJump() && in.Rd == 1 }

// isReturn reports the canonical jalr x0, 0(ra).
func isReturn(in isa.Inst) bool {
	return in.Op == isa.OpJalr && in.Rd == 0 && in.Rs1 == 1
}

// Predict implements Predictor.
func (b *TournamentBP) Predict(pc uint32, in isa.Inst) Prediction {
	b.lookups.Inc()
	switch {
	case isReturn(in):
		if n := len(b.ras); n > 0 {
			return Prediction{Taken: true, Target: b.ras[n-1]}
		}
		b.btbMisses.Inc()
		return Prediction{Taken: true, Target: pc + isa.InstBytes}
	case in.Op == isa.OpJal:
		return Prediction{Taken: true, Target: pc + uint32(in.Imm)*isa.InstBytes}
	case in.IsIndirect():
		e := b.btb[b.btbIdx(pc)]
		if e.valid && e.tag == pc {
			return Prediction{Taken: true, Target: e.target}
		}
		b.btbMisses.Inc()
		return Prediction{Taken: true, Target: pc + isa.InstBytes} // unknown target
	default: // conditional branch
		taken := b.direction(pc)
		target := pc + isa.InstBytes
		if taken {
			target = pc + uint32(in.Imm)*isa.InstBytes
		}
		return Prediction{Taken: taken, Target: target}
	}
}

func (b *TournamentBP) direction(pc uint32) bool {
	l := b.local[b.localIdx(pc)]
	g := b.global[b.globalIdx(pc)]
	if b.choice[b.globalIdx(pc)].taken() {
		return g.taken()
	}
	return l.taken()
}

// Update implements Predictor.
func (b *TournamentBP) Update(pc uint32, in isa.Inst, taken bool, target uint32) {
	switch {
	case isCall(in):
		if len(b.ras) < cap(b.ras) {
			b.ras = append(b.ras, pc+isa.InstBytes)
		}
		if in.IsIndirect() {
			b.updateBTB(pc, target)
		}
	case isReturn(in):
		if n := len(b.ras); n > 0 {
			b.ras = b.ras[:n-1]
		}
	case in.IsIndirect():
		b.updateBTB(pc, target)
	case in.IsBranch():
		li, gi := b.localIdx(pc), b.globalIdx(pc)
		lCorrect := b.local[li].taken() == taken
		gCorrect := b.global[gi].taken() == taken
		// Train the choice table toward whichever component was right.
		if gCorrect && !lCorrect {
			b.choice[gi] = b.choice[gi].inc()
		} else if lCorrect && !gCorrect {
			b.choice[gi] = b.choice[gi].dec()
		}
		if taken {
			b.local[li] = b.local[li].inc()
			b.global[gi] = b.global[gi].inc()
		} else {
			b.local[li] = b.local[li].dec()
			b.global[gi] = b.global[gi].dec()
		}
		b.ghr = b.ghr<<1 | btoi(taken)
	}
}

func (b *TournamentBP) updateBTB(pc, target uint32) {
	b.btb[b.btbIdx(pc)] = btbEntry{tag: pc, target: target, valid: true}
}

func btoi(v bool) uint32 {
	if v {
		return 1
	}
	return 0
}

// AlwaysNotTakenBP is the trivial predictor used as a baseline in tests.
type AlwaysNotTakenBP struct{}

// Predict implements Predictor.
func (AlwaysNotTakenBP) Predict(pc uint32, in isa.Inst) Prediction {
	if in.IsJump() && !in.IsIndirect() {
		return Prediction{Taken: true, Target: pc + uint32(in.Imm)*isa.InstBytes}
	}
	return Prediction{Taken: false, Target: pc + isa.InstBytes}
}

// Update implements Predictor.
func (AlwaysNotTakenBP) Update(pc uint32, in isa.Inst, taken bool, target uint32) {}
