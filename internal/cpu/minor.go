package cpu

import (
	"gem5prof/internal/isa"
	"gem5prof/internal/mem"
	"gem5prof/internal/sim"
)

// MinorConfig sets the geometry of the in-order pipeline.
type MinorConfig struct {
	// FetchBytes is the width of one instruction-cache fetch.
	FetchBytes uint32
	// IssueWidth is the maximum instructions issued per cycle.
	IssueWidth int
	// BufferDepth bounds the decoded-instruction queue.
	BufferDepth int
	// MispredictPenalty is the redirect bubble in cycles.
	MispredictPenalty int
	// BP sizes the branch predictor.
	BP TournamentConfig
}

// DefaultMinorConfig mirrors gem5's MinorCPU defaults: 2-wide with a
// 4-stage front end.
func DefaultMinorConfig() MinorConfig {
	return MinorConfig{
		FetchBytes:        64,
		IssueWidth:        2,
		BufferDepth:       16,
		MispredictPenalty: 4,
		BP:                DefaultTournamentConfig(),
	}
}

type minorInst struct {
	pc       uint32
	in       isa.Inst
	predNext uint32
}

// MinorCPU is the in-order pipelined model: strict in-order issue, a
// scoreboard for register hazards, branch prediction with redirect
// penalties, and timing memory accesses.
type MinorCPU struct {
	core *Core
	mcfg MinorConfig
	bp   *TournamentBP

	tick *sim.Event

	fetchPC       uint32
	fetchEpoch    uint64
	fetchBusy     bool
	buffer        []minorInst
	regReadyAt    [isa.NumArchRegs]sim.Tick
	stallUntil    sim.Tick
	outstandingLd int

	// Host-model stage functions beyond the common core set.
	fnFetch2 sim.FuncID
	fnIssue  sim.FuncID
	fnLSQ    sim.FuncID

	numCycles   *sim.Counter
	fetchStalls *sim.Counter
	issueStalls *sim.Counter
	squashes    *sim.Counter
}

// NewMinorCPU builds a Minor in-order CPU.
func NewMinorCPU(sys *sim.System, cfg Config, mcfg MinorConfig) *MinorCPU {
	if mcfg.IssueWidth <= 0 || mcfg.BufferDepth <= 0 || mcfg.FetchBytes == 0 {
		panic("cpu: bad minor config")
	}
	c := &MinorCPU{
		core: newCore(sys, "MinorCPU", cfg),
		mcfg: mcfg,
		bp:   NewTournamentBP(sys.Stats(), cfg.Name, mcfg.BP),
	}
	tr := sys.Tracer()
	c.fnFetch2 = tr.RegisterFunc("MinorCPU::Fetch2::evaluate", 4200, sim.FuncVirtual|sim.FuncPoly)
	c.fnIssue = tr.RegisterFunc("MinorCPU::Execute::issue", 5100, sim.FuncVirtual|sim.FuncPoly)
	c.fnLSQ = tr.RegisterFunc("MinorCPU::LSQ::pushRequest", 3600, sim.FuncVirtual|sim.FuncPoly)
	st := sys.Stats()
	c.numCycles = st.Counter(cfg.Name+".numCycles", "pipeline cycles evaluated")
	c.fetchStalls = st.Counter(cfg.Name+".fetchStallCycles", "cycles with an empty decode buffer")
	c.issueStalls = st.Counter(cfg.Name+".issueStallCycles", "cycles blocked on hazards")
	c.squashes = st.Counter(cfg.Name+".squashes", "pipeline squashes (mispredicts + traps)")
	c.tick = sim.NewEventPrio(cfg.Name+".tick", c.fnIssue, sim.PrioCPUTick, c.evaluate).SetDomain(cfg.Domain)
	c.core.wakeup = func() { c.schedule() }
	c.core.redirect = func(pc uint32) { c.squash(pc) }
	sys.Register(c)
	return c
}

// Name implements sim.SimObject.
func (c *MinorCPU) Name() string { return c.core.name }

// Core implements CPU.
func (c *MinorCPU) Core() *Core { return c.core }

// BP returns the branch predictor for inspection.
func (c *MinorCPU) BP() *TournamentBP { return c.bp }

// IPC implements CPU.
func (c *MinorCPU) IPC() float64 {
	elapsed := c.core.sys.Now() / c.core.clock
	if elapsed == 0 {
		return 0
	}
	return float64(c.core.numInsts.Count()) / float64(elapsed)
}

// Start implements CPU.
func (c *MinorCPU) Start(entry uint32) {
	c.core.pc = entry
	c.fetchPC = entry
	c.schedule()
}

// schedule arms the pipeline event for the next cycle if it is not pending.
func (c *MinorCPU) schedule() {
	if c.core.halted || c.tick.Scheduled() {
		return
	}
	c.core.sys.ScheduleIn(c.tick, c.core.clock)
}

// scheduleAt arms the pipeline event at an absolute tick.
func (c *MinorCPU) scheduleAt(when sim.Tick) {
	if c.core.halted {
		return
	}
	if c.tick.Scheduled() {
		if c.tick.When() <= when {
			return
		}
		c.core.sys.Deschedule(c.tick)
	}
	c.core.sys.Reschedule(c.tick, when)
}

// squash flushes all fetched state and redirects fetch to pc.
func (c *MinorCPU) squash(pc uint32) {
	c.squashes.Inc()
	c.fetchEpoch++
	c.buffer = c.buffer[:0]
	c.fetchPC = pc
	c.stallUntil = c.core.sys.Now() + sim.Tick(c.mcfg.MispredictPenalty)*c.core.clock
}

// evaluate advances the whole pipeline by one cycle.
func (c *MinorCPU) evaluate() {
	core := c.core
	if core.halted {
		return
	}
	c.numCycles.Inc()
	now := core.sys.Now()

	if core.waiting {
		return // WFI: wakeup() re-arms
	}
	if core.takeInterruptIfPending() {
		c.squash(core.pc)
	}

	// Execute stage: in-order issue of up to IssueWidth ready instructions.
	issued := 0
	blockedUntil := sim.Tick(0)
	for issued < c.mcfg.IssueWidth && now >= c.stallUntil && len(c.buffer) > 0 {
		mi := c.buffer[0]
		if mi.pc != core.pc {
			// Stale wrong-path instruction (post-redirect); drop it.
			c.buffer = c.buffer[1:]
			continue
		}
		if ready := c.srcsReadyAt(mi.in); ready > now {
			c.issueStalls.Inc()
			blockedUntil = ready
			break
		}
		core.sys.Tracer().Call(c.fnIssue)
		c.buffer = c.buffer[1:]
		if !c.issueOne(mi, now) {
			return // fault ended the simulation
		}
		issued++
		if core.halted || core.waiting {
			return
		}
		now = core.sys.Now()
	}
	if len(c.buffer) == 0 && !c.fetchBusy {
		c.fetchStalls.Inc()
	}

	// Fetch stage: keep the decode buffer full.
	c.tryFetch()

	// Re-arm policy: avoid spinning while blocked on memory responses (the
	// response callbacks re-arm the pipeline).
	switch {
	case len(c.buffer) > 0 && blockedUntil == sim.MaxTick:
		// Head blocked on an outstanding load; its callback schedules.
	case len(c.buffer) > 0 && blockedUntil > now:
		c.scheduleAt(blockedUntil)
	case len(c.buffer) > 0:
		c.schedule()
	case c.fetchBusy:
		// Fetch response callback schedules.
	default:
		if !c.tick.Scheduled() && c.fetchPC != 0 {
			c.schedule()
		}
	}
}

// srcsReadyAt returns the tick at which every source register is available.
func (c *MinorCPU) srcsReadyAt(in isa.Inst) sim.Tick {
	var buf [3]isa.RegID
	ready := sim.Tick(0)
	for _, r := range in.Srcs(buf[:0]) {
		if c.regReadyAt[r] > ready {
			ready = c.regReadyAt[r]
		}
	}
	return ready
}

// fuLatency returns the functional-unit latency in cycles for a class.
func fuLatency(cl isa.Class) int {
	switch cl {
	case isa.ClassIntMult:
		return 3
	case isa.ClassIntDiv:
		return 12
	case isa.ClassFloatAdd:
		return 3
	case isa.ClassFloatMult:
		return 4
	case isa.ClassFloatDiv:
		return 12
	case isa.ClassFloatSqrt:
		return 16
	case isa.ClassFloatCvt:
		return 2
	default:
		return 1
	}
}

// issueOne architecturally executes one instruction and models its latency.
// It returns false if the simulation was terminated by a fault.
func (c *MinorCPU) issueOne(mi minorInst, now sim.Tick) bool {
	core := c.core
	in := mi.in
	pc := mi.pc
	out, err := core.execute(in)
	if err != nil {
		core.sys.RequestExit(err.Error(), 255)
		return false
	}
	if core.pc == pc {
		core.pc = out.NextPC(pc)
	} else {
		// A trap or environment call redirected the stream.
		c.squash(core.pc)
	}

	// Register result latency.
	if d := in.Dest(); d != isa.InvalidReg {
		c.regReadyAt[d] = now + sim.Tick(fuLatency(in.Class()))*core.clock
	}

	// Memory timing.
	if out.HasMem {
		core.sys.Tracer().Call(c.fnLSQ)
		acc := mem.Access{Addr: out.MemAddr, Size: uint8(in.MemSize()), Write: in.IsStore()}
		if in.IsLoad() {
			d := in.Dest()
			c.outstandingLd++
			if d != isa.InvalidReg {
				c.regReadyAt[d] = sim.MaxTick // unknown until response
			}
			core.cfg.DPort.SendTiming(acc, func() {
				c.outstandingLd--
				if d != isa.InvalidReg {
					c.regReadyAt[d] = core.sys.Now()
				}
				c.schedule()
			})
		} else {
			core.cfg.DPort.SendTiming(acc, nil) // stores drain via the cache
		}
	}

	// Control flow: resolve against the fetch-time prediction.
	if in.IsControl() {
		realNext := out.NextPC(pc)
		c.bp.Update(pc, in, out.ControlTaken, out.ControlTarget)
		if mi.predNext != realNext {
			c.bp.RecordMispredict()
			c.squash(realNext)
		}
	}
	return true
}

// tryFetch issues an instruction-cache fetch when the buffer has space.
func (c *MinorCPU) tryFetch() {
	core := c.core
	if c.fetchBusy || core.halted || len(c.buffer) >= c.mcfg.BufferDepth {
		return
	}
	if core.sys.Now() < c.stallUntil {
		c.scheduleAt(c.stallUntil)
		return
	}
	epoch := c.fetchEpoch
	start := c.fetchPC
	c.fetchBusy = true
	core.sys.Tracer().Call(core.fnFetch)
	core.cfg.IPort.SendTiming(mem.Access{Addr: start, Size: isa.InstBytes, Inst: true}, func() {
		c.fetchBusy = false
		if core.halted {
			return
		}
		if epoch != c.fetchEpoch {
			// Squashed while in flight: the redirected stream still needs
			// fetching, so re-arm the pipeline rather than going idle.
			c.schedule()
			return
		}
		c.fillBuffer(start)
		c.schedule()
	})
}

// fillBuffer decodes straight-line instructions from one fetched block,
// following predicted-taken control flow.
func (c *MinorCPU) fillBuffer(start uint32) {
	core := c.core
	blockEnd := (start &^ (c.mcfg.FetchBytes - 1)) + c.mcfg.FetchBytes
	pc := start
	for pc < blockEnd && len(c.buffer) < c.mcfg.BufferDepth {
		core.sys.Tracer().Call(c.fnFetch2)
		w, err := core.fetchWord(pc)
		if err != nil {
			if pc == start && len(c.buffer) == 0 {
				// Fetch fault with an empty pipeline: inject an illegal
				// instruction so execute reports the fault instead of the
				// front end spinning forever.
				c.buffer = append(c.buffer, minorInst{pc: pc, in: isa.Inst{Op: isa.OpInvalid}, predNext: pc})
			}
			break
		}
		core.sys.Tracer().Call(core.fnDecode)
		in := isa.Decode(w)
		next := pc + isa.InstBytes
		if in.IsControl() {
			pred := c.bp.Predict(pc, in)
			if pred.Taken {
				next = pred.Target
			}
		}
		c.buffer = append(c.buffer, minorInst{pc: pc, in: in, predNext: next})
		pc = next
		if next < start || next >= blockEnd {
			break // control flow left the fetched block
		}
		if in.IsSystem() {
			break // serialize after system instructions
		}
	}
	c.fetchPC = pc
}
