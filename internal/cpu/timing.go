package cpu

import (
	"gem5prof/internal/isa"
	"gem5prof/internal/mem"
	"gem5prof/internal/sim"
)

// TimingCPU is the TimingSimpleCPU model: CPI = 1 plus real memory timing.
// Every instruction fetch and data access travels through the timing memory
// system; the CPU blocks on each access like gem5's TimingSimpleCPU.
type TimingCPU struct {
	core *Core

	fetchEv *sim.Event
	busy    bool

	numCycles  *sim.Counter
	fetchStall *sim.Counter
	dataStall  *sim.Counter

	lastActive sim.Tick
}

// NewTimingCPU builds a TimingSimpleCPU.
func NewTimingCPU(sys *sim.System, cfg Config) *TimingCPU {
	c := &TimingCPU{core: newCore(sys, "TimingSimpleCPU", cfg)}
	st := sys.Stats()
	c.numCycles = st.Counter(cfg.Name+".numCycles", "active guest cycles")
	c.fetchStall = st.Counter(cfg.Name+".icacheStallTicks", "ticks stalled on instruction fetch")
	c.dataStall = st.Counter(cfg.Name+".dcacheStallTicks", "ticks stalled on data access")
	c.fetchEv = sim.NewEventPrio(cfg.Name+".fetch", c.core.fnFetch, sim.PrioCPUTick, c.startFetch).SetDomain(cfg.Domain)
	c.core.wakeup = func() {
		// The fetch may still be queued: a core parked at build time keeps
		// its Start event until it first fires, and a spawn can unpark it
		// within the spawner's same-tick batch.
		if !c.fetchEv.Scheduled() {
			sys.ScheduleIn(c.fetchEv, c.core.clock)
		}
	}
	sys.Register(c)
	return c
}

// Name implements sim.SimObject.
func (c *TimingCPU) Name() string { return c.core.name }

// Core implements CPU.
func (c *TimingCPU) Core() *Core { return c.core }

// IPC implements CPU: instructions per elapsed cycle including stalls.
func (c *TimingCPU) IPC() float64 {
	elapsed := c.core.sys.Now() / c.core.clock
	if elapsed == 0 {
		return 0
	}
	return float64(c.core.numInsts.Count()) / float64(elapsed)
}

// Start implements CPU.
func (c *TimingCPU) Start(entry uint32) {
	c.core.pc = entry
	c.core.sys.Schedule(c.fetchEv, c.core.sys.Now())
}

// startFetch begins one instruction: interrupt check, then a timing fetch.
func (c *TimingCPU) startFetch() {
	core := c.core
	if core.halted {
		return
	}
	core.takeInterruptIfPending()
	if core.waiting {
		return
	}
	pc := core.pc
	core.sys.Tracer().Call(core.fnFetch)
	sent := core.sys.Now()
	core.cfg.IPort.SendTiming(mem.Access{Addr: pc, Size: isa.InstBytes, Inst: true}, func() {
		c.fetchStall.Addn(uint64(core.sys.Now() - sent))
		c.completeFetch(pc)
	})
}

// completeFetch decodes and executes after the icache responds.
func (c *TimingCPU) completeFetch(pc uint32) {
	core := c.core
	if core.halted {
		return
	}
	w, err := core.fetchWord(pc)
	if err != nil {
		core.sys.RequestExit(err.Error(), 255)
	}
	core.sys.Tracer().Call(core.fnDecode)
	in := isa.Decode(w)
	out, err := core.execute(in)
	if err != nil {
		core.sys.RequestExit(err.Error(), 255)
	}
	c.numCycles.Inc()
	if core.pc == pc {
		core.pc = out.NextPC(pc)
	}
	if out.HasMem {
		// The architectural access already happened in execute; model the
		// timing by blocking until the data port responds.
		sent := core.sys.Now()
		core.cfg.DPort.SendTiming(mem.Access{
			Addr: out.MemAddr, Size: uint8(in.MemSize()), Write: in.IsStore(),
		}, func() {
			c.dataStall.Addn(uint64(core.sys.Now() - sent))
			c.instDone()
		})
		return
	}
	c.instDone()
}

// instDone schedules the next fetch one cycle later.
func (c *TimingCPU) instDone() {
	core := c.core
	if core.halted || core.waiting {
		return
	}
	core.sys.ScheduleIn(c.fetchEv, core.clock)
}
