package cpu

import (
	"testing"

	"gem5prof/internal/guest"
	"gem5prof/internal/isa"
	"gem5prof/internal/mem"
	"gem5prof/internal/sim"
)

// Structural tests for the detailed pipeline models: resource limits must
// actually bound the machine, squashes must be counted, and the stat
// registry must expose it all.

// longDepChain is a program whose every instruction depends on the previous
// one: no ILP at all.
const longDepChain = `
_start:
	li   t0, 1
	li   t1, 2000
chain:
	mul  t0, t0, t0
	addi t0, t0, 3
	mul  t0, t0, t0
	addi t0, t0, 7
	addi t1, t1, -1
	bne  t1, x0, chain
	mv   a0, t0
	ecall
`

// wideILP has eight independent accumulator streams (x18..x25) and a
// dedicated counter (x31) — no ABI-alias overlap.
const wideILP = `
_start:
	li   x31, 2000
wloop:
	addi x18, x18, 1
	addi x19, x19, 2
	addi x20, x20, 3
	addi x21, x21, 4
	addi x22, x22, 5
	addi x23, x23, 6
	addi x24, x24, 7
	addi x25, x25, 8
	addi x31, x31, -1
	bne  x31, x0, wloop
	add  a0, x18, x25
	ecall
`

func TestO3ExploitsILP(t *testing.T) {
	dep := buildRig(t, "o3", longDepChain, false)
	runRig(t, dep)
	depIPC := dep.cpu.IPC()
	ilp := buildRig(t, "o3", wideILP, false)
	runRig(t, ilp)
	ilpIPC := ilp.cpu.IPC()
	if ilpIPC < depIPC*1.5 {
		t.Fatalf("O3 should exploit ILP: dep chain IPC %.2f vs wide %.2f", depIPC, ilpIPC)
	}
	if ilpIPC < 2 {
		t.Fatalf("8-wide O3 on pure ILP should exceed IPC 2, got %.2f", ilpIPC)
	}
}

func TestMinorBoundedByWidth(t *testing.T) {
	ilp := buildRig(t, "minor", wideILP, false)
	runRig(t, ilp)
	if ipc := ilp.cpu.IPC(); ipc > 2.05 {
		t.Fatalf("2-wide Minor cannot exceed IPC 2, got %.2f", ipc)
	}
}

func TestO3SquashCounting(t *testing.T) {
	// Data-dependent branches mispredict; squashes must be recorded.
	r := buildRig(t, "o3", `
_start:
	li   t0, 99991
	li   t1, 3000
sloop:
	li   t4, 1103515245
	mul  t0, t0, t4
	addi t0, t0, 12345
	andi t2, t0, 1
	beq  t2, x0, even
	addi a0, a0, 1
even:
	addi t1, t1, -1
	bne  t1, x0, sloop
	ecall
`, false)
	runRig(t, r)
	o3 := r.cpu.(*O3CPU)
	if o3.squashes.Count() == 0 {
		t.Fatal("no squashes recorded for mispredicting branches")
	}
	if o3.bp.Mispredicts() == 0 {
		t.Fatal("no mispredicts recorded")
	}
	// A sanity bound: can't mispredict more often than branches resolve.
	if o3.bp.Mispredicts() > o3.bp.Lookups() {
		t.Fatal("mispredicts exceed lookups")
	}
}

func TestO3LSQBoundsOutstandingLoads(t *testing.T) {
	// A burst of independent loads: the LQ (32 entries) plus dispatch
	// stalls must bound what is in flight; lsqFullStalls should trigger
	// with a tiny LQ.
	src := `
_start:
	la   t0, arr
	li   t1, 512
lloop:
	lw   t2, 0(t0)
	lw   t3, 4(t0)
	lw   t4, 8(t0)
	lw   t5, 12(t0)
	addi t0, t0, 16
	addi t1, t1, -1
	bne  t1, x0, lloop
	ecall
arr:
	.space 8192
`
	rig := buildRig(t, "o3", src, true)
	runRig(t, rig)

	// Rebuild with a 2-entry LQ and verify the stall counter fires.
	tiny := DefaultO3Config()
	tiny.LQEntries = 2
	tiny.SQEntries = 2
	r2 := buildRigO3(t, src, tiny)
	runRig(t, r2)
	o3 := r2.cpu.(*O3CPU)
	if o3.lsqFullStall.Count() == 0 {
		t.Fatal("tiny LQ never caused a dispatch stall")
	}
}

// buildRigO3 mirrors buildRig for the O3 model with a custom geometry.
func buildRigO3(t *testing.T, src string, ocfg O3Config) *rig {
	t.Helper()
	sys := sim.NewSystem(7)
	gm := guest.NewMemory(16 * 1024 * 1024)
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := gm.Load(prog); err != nil {
		t.Fatalf("load: %v", err)
	}
	hier := mem.NewHierarchy(sys, mem.DefaultHierarchyConfig("sys"))
	cfg := Config{
		Name: "cpu0", Mem: memAdapter{gm}, Env: &haltEnv{sys},
		IPort: hier.L1I, DPort: hier.L1D,
	}
	r := &rig{sys: sys, mem: gm, hier: hier}
	c := NewO3CPU(sys, cfg, ocfg)
	r.cpu = c
	c.Start(prog.Entry)
	return r
}

func TestO3TinyROBStalls(t *testing.T) {
	tiny := DefaultO3Config()
	tiny.ROBEntries = 4
	tiny.IQEntries = 2
	r := buildRigO3(t, wideILP, tiny)
	runRig(t, r)
	o3 := r.cpu.(*O3CPU)
	if o3.robFullStall.Count() == 0 && o3.iqFullStall.Count() == 0 {
		t.Fatal("tiny ROB/IQ never stalled dispatch")
	}
	// And the machine still computes the right answer: x18=2000, x25=16000.
	if got := r.cpu.Core().ReadReg(10); got != 2000+16000 {
		t.Fatalf("a0 = %d", got)
	}
}

func TestStatsRegistryExposesPipelineCounters(t *testing.T) {
	r := buildRig(t, "o3", wideILP, true)
	runRig(t, r)
	for _, name := range []string{
		"cpu0.committedInsts", "cpu0.numCycles", "cpu0.squashes",
		"cpu0.robFullStalls", "cpu0.bpLookups", "cpu0.bpMispredicts",
		"sys.l1i.hits", "sys.l2.misses", "sys.dram.reads",
	} {
		if r.sys.Stats().Lookup(name) == nil {
			t.Errorf("stat %q missing", name)
		}
	}
}
