// Package cpu implements the g5 guest CPU models profiled by the paper:
// AtomicSimpleCPU, TimingSimpleCPU, the Minor in-order pipeline, and the O3
// out-of-order core, together with the branch predictors they share.
//
// All models retire bit-identical architectural results because they share
// the isa package's executor. The models differ in how they account guest
// time and — critically for the reproduced paper — in how much *host-side*
// work (functions touched, data structures walked) each simulated
// instruction generates.
package cpu

import (
	"fmt"
	"io"

	"gem5prof/internal/isa"
	"gem5prof/internal/mem"
	"gem5prof/internal/sim"
)

// FuncMem is the functional memory interface a core executes against. It is
// implemented by guest.Memory and by sysemu's MMIO-aware wrapper.
type FuncMem interface {
	Read(addr uint32, size int) (uint64, error)
	Write(addr uint32, size int, v uint64) error
	// HostAddr translates a guest address into the synthetic host address of
	// its backing storage, for the host data-traffic model.
	HostAddr(addr uint32) uint64
}

// Env handles environment interactions of a core: system calls in SE mode,
// traps in FS mode, and breakpoints.
type Env interface {
	// Ecall services an environment call. The handler reads and writes the
	// core's registers and may halt the core or redirect its PC.
	Ecall(c *Core)
	// Ebreak services a breakpoint; bare-metal programs use it to exit.
	Ebreak(c *Core)
}

// Machine CSR numbers implemented by the cores.
const (
	CSRMStatus  = 0x300
	CSRMTVec    = 0x305
	CSRMEPC     = 0x341
	CSRMCause   = 0x342
	CSRMScratch = 0x340
	CSRCycle    = 0xC00
	CSRInstret  = 0xC02
	CSRHartID   = 0xF14
)

// MStatusMIE is the machine-interrupt-enable bit in mstatus.
const MStatusMIE = 1 << 3

// Trap causes written to mcause.
const (
	CauseEcall          = 11
	CauseTimerInterrupt = 0x8000_0007
	CauseExternalIntr   = 0x8000_000B
)

// Config carries the construction parameters shared by all CPU models.
type Config struct {
	Name string
	// ClockPeriod is the guest clock period in ticks (1000 = 1 GHz).
	ClockPeriod sim.Tick
	// Mem is the functional memory (possibly MMIO-wrapped).
	Mem FuncMem
	// Env handles ecall/ebreak. Required.
	Env Env
	// IPort and DPort are the timing/atomic memory ports. A nil port is
	// replaced by an ideal single-cycle memory.
	IPort mem.Port
	DPort mem.Port
	// HartID distinguishes cores in a multi-core guest.
	HartID uint32
	// Domain tags the model's root tick/fetch event for sharded execution
	// (sim.DomainForCore). The zero value is DomainCPU, the single-core
	// behaviour.
	Domain sim.Domain
	// ExecTrace, when non-nil, receives one line per committed instruction
	// (gem5's --debug-flags=Exec).
	ExecTrace io.Writer
}

func (c *Config) fill(sys *sim.System) {
	if c.Name == "" {
		panic("cpu: config needs a name")
	}
	if c.ClockPeriod == 0 {
		c.ClockPeriod = sim.Nanosecond // 1 GHz
	}
	if c.Mem == nil {
		panic("cpu: config needs functional memory")
	}
	if c.Env == nil {
		panic("cpu: config needs an environment")
	}
	if c.IPort == nil {
		c.IPort = IdealPort{Sys: sys, Latency: c.ClockPeriod}
	}
	if c.DPort == nil {
		c.DPort = IdealPort{Sys: sys, Latency: c.ClockPeriod}
	}
}

// IdealPort is a perfect memory port with a fixed latency.
type IdealPort struct {
	Sys     *sim.System
	Latency sim.Tick
}

// SendTiming implements mem.Port.
func (p IdealPort) SendTiming(acc mem.Access, done func()) {
	if done != nil {
		p.Sys.ScheduleIn(sim.NewEvent("ideal.resp", 0, done), p.Latency)
	}
}

// AtomicLatency implements mem.Port.
func (p IdealPort) AtomicLatency(acc mem.Access) sim.Tick { return p.Latency }

// Core is the architectural state and bookkeeping shared by all CPU models.
// It implements isa.Context.
type Core struct {
	name  string
	sys   *sim.System
	cfg   Config
	fmem  FuncMem
	env   Env
	clock sim.Tick

	regs  [32]uint32
	fregs [32]float64
	pc    uint32
	csrs  map[uint32]uint32

	halted     bool
	intPending bool
	waiting    bool // parked in WFI
	wakeup     func()
	// redirect, when set, tells a buffered-frontend model (Minor, O3)
	// that a parked core's architectural PC moved, so stale fetch state
	// must be squashed before the core resumes. Only fired by SetPC
	// while the core is parked: a running core's redirects are already
	// handled by the models' own pc-mismatch checks, and adding a squash
	// there would change single-core statistics.
	redirect func(pc uint32)

	// Statistics common to every model.
	numInsts    *sim.Counter
	numBranches *sim.Counter
	numLoads    *sim.Counter
	numStores   *sim.Counter
	numEcalls   *sim.Counter

	// Host-model function attribution.
	fnFetch   sim.FuncID
	fnDecode  sim.FuncID
	fnAdvance sim.FuncID
	fnExec    [12]sim.FuncID // indexed by isa.Class
	fnTrap    sim.FuncID

	// libFns is the model's long tail of cold simulator code (stat
	// callbacks, decode tables, SimObject plumbing); one is touched every
	// libStride instructions, reproducing gem5's flat hot-function CDF.
	libFns    []sim.FuncID
	libRotor  int
	libStride uint64

	// commitHook, when non-nil, observes every architecturally committed
	// instruction. The conformance subsystem uses it for lockstep trace
	// hashing and first-divergence capture.
	commitHook func(pc uint32, in isa.Inst)
}

func newCore(sys *sim.System, model string, cfg Config) *Core {
	cfg.fill(sys)
	c := &Core{
		name:  cfg.Name,
		sys:   sys,
		cfg:   cfg,
		fmem:  cfg.Mem,
		env:   cfg.Env,
		clock: cfg.ClockPeriod,
		csrs:  make(map[uint32]uint32),
	}
	c.csrs[CSRHartID] = cfg.HartID
	st := sys.Stats()
	c.numInsts = st.Counter(cfg.Name+".committedInsts", "instructions committed")
	c.numBranches = st.Counter(cfg.Name+".branches", "control instructions committed")
	c.numLoads = st.Counter(cfg.Name+".loads", "loads committed")
	c.numStores = st.Counter(cfg.Name+".stores", "stores committed")
	c.numEcalls = st.Counter(cfg.Name+".ecalls", "environment calls")

	// Host code footprint and dispatch polymorphism scale strongly with
	// model detail: AtomicSimpleCPU is a tight, nearly monomorphic loop
	// while O3 touches far more (and megamorphic) code per instruction —
	// the root of the paper's Fig. 4 contrast.
	factor := 1.0
	libStride := uint64(16)
	execFlags := sim.FuncVirtual
	switch model {
	case "AtomicSimpleCPU":
		factor = 0.35
		libStride = 26
	case "TimingSimpleCPU":
		factor = 0.80
		libStride = 18
	case "MinorCPU":
		factor = 1.15
		libStride = 12
		execFlags |= sim.FuncPoly
	case "O3CPU":
		factor = 1.40
		libStride = 10
		execFlags |= sim.FuncPoly
	}
	sz := func(base int) int { return int(float64(base) * factor) }

	tr := sys.Tracer()
	c.fnFetch = tr.RegisterFunc(model+"::fetch", sz(2200), sim.FuncVirtual|sim.FuncHot)
	c.fnDecode = tr.RegisterFunc(model+"::decodeInst", sz(3800), sim.FuncVirtual|sim.FuncHot)
	c.fnAdvance = tr.RegisterFunc(model+"::advancePC", sz(900), sim.FuncVirtual|sim.FuncHot)
	c.fnTrap = tr.RegisterFunc(model+"::trap", sz(2600), sim.FuncVirtual|sim.FuncCold)
	classSizes := [...]struct {
		cls  isa.Class
		size int
	}{
		{isa.ClassIntAlu, 1900},
		{isa.ClassIntMult, 1100},
		{isa.ClassIntDiv, 1100},
		{isa.ClassMemRead, 3400},
		{isa.ClassMemWrite, 3200},
		{isa.ClassBranch, 2100},
		{isa.ClassFloatAdd, 1500},
		{isa.ClassFloatMult, 1300},
		{isa.ClassFloatDiv, 900},
		{isa.ClassFloatSqrt, 700},
		{isa.ClassFloatCvt, 800},
		{isa.ClassSystem, 2400},
	}
	for _, cs := range classSizes {
		c.fnExec[cs.cls] = tr.RegisterFunc(fmt.Sprintf("%s::execute<%s>", model, cs.cls), sz(cs.size), execFlags)
	}
	c.registerLib(model, libFuncCount(model))
	c.libStride = libStride
	return c
}

// libFuncCount sizes the cold-code tail per model. With the default helper
// fanout these produce total function counts matching the paper's Fig. 15
// (1602/2557/3957/5209 for Atomic/Timing/Minor/O3).
func libFuncCount(model string) int {
	switch model {
	case "AtomicSimpleCPU":
		return 85
	case "TimingSimpleCPU":
		return 155
	case "MinorCPU":
		return 260
	case "O3CPU":
		return 354
	}
	return 60
}

// registerLib registers n cold library functions touched round-robin during
// execution.
func (c *Core) registerLib(model string, n int) {
	tr := c.sys.Tracer()
	for i := 0; i < n; i++ {
		size := 180 + (i*137)%900
		c.libFns = append(c.libFns,
			tr.RegisterFunc(fmt.Sprintf("%s::lib%d", model, i), size, sim.FuncVirtual|sim.FuncCold))
	}
}

// Name returns the core's SimObject name.
func (c *Core) Name() string { return c.name }

// System returns the owning system.
func (c *Core) System() *sim.System { return c.sys }

// Clock returns the clock period in ticks.
func (c *Core) Clock() sim.Tick { return c.clock }

// CommittedInsts returns the number of retired instructions.
func (c *Core) CommittedInsts() uint64 { return c.numInsts.Count() }

// SetCommitHook installs fn on the core's retire path: it fires once per
// architecturally committed instruction with the pre-execution PC and the
// decoded form, in commit order, on every CPU model. A nil fn disables the
// hook. Speculative (squashed) instructions never reach it.
func (c *Core) SetCommitHook(fn func(pc uint32, in isa.Inst)) { c.commitHook = fn }

// Halted reports whether the core has stopped permanently.
func (c *Core) Halted() bool { return c.halted }

// Halt stops the core permanently (e.g. SE-mode exit).
func (c *Core) Halt() { c.halted = true }

// Waiting reports whether the core is parked in WFI.
func (c *Core) Waiting() bool { return c.waiting }

// HartID returns the core's hart id (CSRHartID).
func (c *Core) HartID() uint32 { return c.cfg.HartID }

// Park stops the core at the next instruction boundary without halting it,
// reusing the WFI wait machinery every model already honours: the model's
// tick loop sees waiting and lets its events drain. The threading syscall
// surface parks secondary cores before first spawn and blocked joiners /
// futex waiters; Unpark resumes them.
func (c *Core) Park() { c.waiting = true }

// Unpark resumes a parked core one clock later (via the model's wakeup
// event). A core that is not parked is left untouched, so a spurious wake
// is harmless.
func (c *Core) Unpark() {
	if !c.waiting {
		return
	}
	c.waiting = false
	if c.wakeup != nil {
		c.wakeup()
	}
}

// SetPC redirects the core (used by environments during traps, and by
// the threading syscalls to aim a parked core at a spawned thread's
// entry). Redirecting a parked core also squashes the model's fetch
// state: a buffered frontend would otherwise resume fetching the old
// stream and drop every instruction as wrong-path — forever, if the old
// stream's predicted control flow loops.
func (c *Core) SetPC(pc uint32) {
	c.pc = pc
	if c.waiting && c.redirect != nil {
		c.redirect(pc)
	}
}

// RaiseInterrupt marks an interrupt pending and wakes a WFI'd core.
func (c *Core) RaiseInterrupt() {
	c.intPending = true
	if c.waiting {
		c.waiting = false
		if c.wakeup != nil {
			c.wakeup()
		}
	}
}

// ClearInterrupt clears the pending interrupt line.
func (c *Core) ClearInterrupt() { c.intPending = false }

// InterruptReady reports whether an interrupt is pending and enabled.
func (c *Core) InterruptReady() bool {
	return c.intPending && c.csrs[CSRMStatus]&MStatusMIE != 0
}

// takeInterruptIfPending redirects to the trap vector when an interrupt is
// pending and enabled. It returns true if a trap was taken.
func (c *Core) takeInterruptIfPending() bool {
	if !c.intPending || c.csrs[CSRMStatus]&MStatusMIE == 0 {
		return false
	}
	c.sys.Tracer().Call(c.fnTrap)
	c.intPending = false
	c.csrs[CSRMEPC] = c.pc
	c.csrs[CSRMCause] = CauseTimerInterrupt
	c.csrs[CSRMStatus] &^= MStatusMIE
	c.pc = c.csrs[CSRMTVec]
	return true
}

// Trap enters the machine trap vector with the given cause, saving epc.
// Environments use it for ECALL traps in FS mode.
func (c *Core) Trap(cause uint32, epc uint32) {
	c.sys.Tracer().Call(c.fnTrap)
	c.csrs[CSRMEPC] = epc
	c.csrs[CSRMCause] = cause
	c.csrs[CSRMStatus] &^= MStatusMIE
	c.pc = c.csrs[CSRMTVec]
}

// --- isa.Context implementation ---

// ReadReg implements isa.Context.
func (c *Core) ReadReg(r uint8) uint32 {
	if r == 0 {
		return 0
	}
	return c.regs[r]
}

// WriteReg implements isa.Context.
func (c *Core) WriteReg(r uint8, v uint32) {
	if r != 0 {
		c.regs[r] = v
	}
}

// ReadFReg implements isa.Context.
func (c *Core) ReadFReg(r uint8) float64 { return c.fregs[r] }

// WriteFReg implements isa.Context.
func (c *Core) WriteFReg(r uint8, v float64) { c.fregs[r] = v }

// PC implements isa.Context.
func (c *Core) PC() uint32 { return c.pc }

// ReadMem implements isa.Context: a functional read plus host data tracing.
func (c *Core) ReadMem(addr uint32, size int) (uint64, error) {
	c.sys.Tracer().Data(c.fmem.HostAddr(addr), uint32(size), false)
	return c.fmem.Read(addr, size)
}

// WriteMem implements isa.Context.
func (c *Core) WriteMem(addr uint32, size int, v uint64) error {
	c.sys.Tracer().Data(c.fmem.HostAddr(addr), uint32(size), true)
	return c.fmem.Write(addr, size, v)
}

// ReadCSR implements isa.Context.
func (c *Core) ReadCSR(num uint32) uint32 {
	switch num {
	case CSRCycle:
		return uint32(c.sys.Now() / c.clock)
	case CSRInstret:
		return uint32(c.numInsts.Count())
	}
	return c.csrs[num]
}

// WriteCSR implements isa.Context.
func (c *Core) WriteCSR(num uint32, v uint32) { c.csrs[num] = v }

// Ecall implements isa.Context.
func (c *Core) Ecall() {
	c.numEcalls.Inc()
	c.env.Ecall(c)
}

// Ebreak implements isa.Context.
func (c *Core) Ebreak() { c.env.Ebreak(c) }

// Wfi implements isa.Context.
func (c *Core) Wfi() {
	if c.intPending {
		return // interrupt already pending; WFI falls through
	}
	c.waiting = true
}

// Mret implements isa.Context.
func (c *Core) Mret() uint32 {
	c.csrs[CSRMStatus] |= MStatusMIE
	return c.csrs[CSRMEPC]
}

// fetchWord reads the instruction at pc functionally and traces the host
// access to the guest image.
func (c *Core) fetchWord(pc uint32) (isa.Word, error) {
	if pc%isa.InstBytes != 0 {
		return 0, fmt.Errorf("cpu: %s misaligned fetch at %#x", c.name, pc)
	}
	c.sys.Tracer().Data(c.fmem.HostAddr(pc), isa.InstBytes, false)
	v, err := c.fmem.Read(pc, isa.InstBytes)
	if err != nil {
		return 0, err
	}
	return isa.Word(v), nil
}

// execute runs one instruction architecturally, tracing the host-side
// execute function for its class, and updates commit statistics.
func (c *Core) execute(in isa.Inst) (isa.Outcome, error) {
	tr := c.sys.Tracer()
	tr.Call(c.fnExec[in.Class()])
	if len(c.libFns) > 0 && c.numInsts.Count()%c.libStride == 0 {
		tr.Call(c.libFns[c.libRotor%len(c.libFns)])
		c.libRotor++
	}
	pcBefore := c.pc
	out, err := isa.Execute(in, c)
	if err != nil {
		return out, fmt.Errorf("cpu: %s at pc %#x: %w", c.name, c.pc, err)
	}
	c.numInsts.Inc()
	if c.commitHook != nil {
		c.commitHook(pcBefore, in)
	}
	if c.cfg.ExecTrace != nil {
		fmt.Fprintf(c.cfg.ExecTrace, "%10d: %s: %#08x: %s\n",
			c.sys.Now(), c.name, pcBefore, in)
	}
	if in.IsControl() {
		c.numBranches.Inc()
	}
	if in.IsLoad() {
		c.numLoads.Inc()
	}
	if in.IsStore() {
		c.numStores.Inc()
	}
	tr.Call(c.fnAdvance)
	return out, nil
}

// ArchState is the serializable architectural state of one core, the
// per-CPU portion of a checkpoint.
type ArchState struct {
	Regs  [32]uint32        `json:"regs"`
	FRegs [32]float64       `json:"fregs"`
	PC    uint32            `json:"pc"`
	CSRs  map[uint32]uint32 `json:"csrs"`
}

// SaveArchState captures the core's architectural state. Only meaningful at
// an instruction boundary (a quiesced core).
func (c *Core) SaveArchState() ArchState {
	s := ArchState{Regs: c.regs, FRegs: c.fregs, PC: c.pc, CSRs: map[uint32]uint32{}}
	//lint:deterministic map-to-map copy commutes; JSON encoding sorts the keys
	for k, v := range c.csrs {
		s.CSRs[k] = v
	}
	return s
}

// LoadArchState overwrites the core's architectural state from a
// checkpoint.
func (c *Core) LoadArchState(s ArchState) {
	c.regs = s.Regs
	c.fregs = s.FRegs
	c.pc = s.PC
	c.csrs = make(map[uint32]uint32, len(s.CSRs))
	//lint:deterministic map-to-map copy commutes
	for k, v := range s.CSRs {
		c.csrs[k] = v
	}
}

// CPU is the interface every model satisfies.
type CPU interface {
	sim.SimObject
	// Core returns the shared architectural core.
	Core() *Core
	// Start begins execution at entry once the simulation runs.
	Start(entry uint32)
	// IPC returns committed instructions per cycle so far.
	IPC() float64
}
