// Package profiler provides the function-level CPU-time profiler used for
// the paper's hot-function analysis (Fig. 15): per-function exclusive host
// cycles, call counts, top-N tables, and the cumulative distribution of the
// hottest functions.
package profiler

import (
	"fmt"
	"sort"
	"strings"

	"gem5prof/internal/sim"
)

// CycleSource exposes the host machine's running cycle count.
type CycleSource interface {
	Cycles() float64
}

// NameSource resolves function IDs to names (implemented by
// hostmodel.CodeModel).
type NameSource interface {
	FuncName(fn sim.FuncID) string
}

type frame struct {
	fn       sim.FuncID
	enter    float64
	children float64
}

// Profiler accumulates exclusive cycles per function. It implements
// hostmodel.Profiler.
type Profiler struct {
	src   CycleSource
	names NameSource

	stack []frame
	self  map[sim.FuncID]float64
	calls map[sim.FuncID]uint64
}

// New builds a profiler reading cycles from src.
func New(src CycleSource, names NameSource) *Profiler {
	return &Profiler{
		src:   src,
		names: names,
		self:  make(map[sim.FuncID]float64),
		calls: make(map[sim.FuncID]uint64),
	}
}

// Enter implements hostmodel.Profiler.
func (p *Profiler) Enter(fn sim.FuncID) {
	p.calls[fn]++
	p.stack = append(p.stack, frame{fn: fn, enter: p.src.Cycles()})
}

// Leave implements hostmodel.Profiler.
func (p *Profiler) Leave(fn sim.FuncID) {
	n := len(p.stack)
	if n == 0 {
		return
	}
	f := p.stack[n-1]
	p.stack = p.stack[:n-1]
	if f.fn != fn {
		// Unbalanced (should not happen); drop the frame.
		return
	}
	total := p.src.Cycles() - f.enter
	self := total - f.children
	if self < 0 {
		self = 0
	}
	p.self[fn] += self
	if n >= 2 {
		p.stack[n-2].children += total
	}
}

// Entry is one row of the hot-function table.
type Entry struct {
	Fn     sim.FuncID
	Name   string
	Cycles float64
	Calls  uint64
	Frac   float64 // share of all attributed cycles
}

// sortedFns returns the profiled function IDs in ascending order. Every
// aggregation below iterates in this order: float64 addition does not
// commute, so summing in map order would make TotalCycles — and through
// it every Frac — differ between same-seed runs.
func (p *Profiler) sortedFns() []sim.FuncID {
	fns := make([]sim.FuncID, 0, len(p.self))
	//lint:deterministic keys are sorted before use
	for fn := range p.self {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i] < fns[j] })
	return fns
}

// TotalCycles returns the sum of attributed exclusive cycles.
func (p *Profiler) TotalCycles() float64 {
	var t float64
	for _, fn := range p.sortedFns() {
		t += p.self[fn]
	}
	return t
}

// NumCalled returns how many distinct functions executed (the paper's
// Fig. 15 "functions called" count).
func (p *Profiler) NumCalled() int { return len(p.calls) }

// Top returns the n hottest functions by exclusive cycles.
func (p *Profiler) Top(n int) []Entry {
	total := p.TotalCycles()
	if total == 0 {
		total = 1
	}
	out := make([]Entry, 0, len(p.self))
	for _, fn := range p.sortedFns() {
		cyc := p.self[fn]
		name := fmt.Sprintf("fn%d", fn)
		if p.names != nil {
			name = p.names.FuncName(fn)
		}
		out = append(out, Entry{Fn: fn, Name: name, Cycles: cyc, Calls: p.calls[fn], Frac: cyc / total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Fn < out[j].Fn
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// CDF returns the cumulative CPU-time share of the n hottest functions:
// element i is the share of the top i+1 functions (Fig. 15).
func (p *Profiler) CDF(n int) []float64 {
	top := p.Top(n)
	out := make([]float64, len(top))
	sum := 0.0
	for i, e := range top {
		sum += e.Frac
		out[i] = sum
	}
	return out
}

// Render prints a perf-report-style table of the top n functions.
func (p *Profiler) Render(n int) string {
	var b strings.Builder
	b.WriteString("  %CPU      cycles      calls  function\n")
	for _, e := range p.Top(n) {
		fmt.Fprintf(&b, "%6.2f%% %11.0f %10d  %s\n", 100*e.Frac, e.Cycles, e.Calls, e.Name)
	}
	return b.String()
}
