package profiler

import (
	"strings"
	"testing"
	"testing/quick"

	"gem5prof/internal/sim"
)

// fakeClock is a controllable cycle source.
type fakeClock struct{ c float64 }

func (f *fakeClock) Cycles() float64 { return f.c }

type fakeNames struct{}

func (fakeNames) FuncName(fn sim.FuncID) string {
	return map[sim.FuncID]string{1: "alpha", 2: "beta", 3: "gamma"}[fn]
}

func TestExclusiveAttribution(t *testing.T) {
	clk := &fakeClock{}
	p := New(clk, fakeNames{})
	// alpha runs 10 cycles, calls beta which runs 30, then 5 more in alpha.
	p.Enter(1)
	clk.c += 10
	p.Enter(2)
	clk.c += 30
	p.Leave(2)
	clk.c += 5
	p.Leave(1)

	top := p.Top(10)
	if len(top) != 2 {
		t.Fatalf("entries = %d", len(top))
	}
	if top[0].Name != "beta" || top[0].Cycles != 30 {
		t.Fatalf("hottest = %+v", top[0])
	}
	if top[1].Name != "alpha" || top[1].Cycles != 15 {
		t.Fatalf("second = %+v", top[1])
	}
	if p.TotalCycles() != 45 {
		t.Fatalf("total = %v", p.TotalCycles())
	}
	if p.NumCalled() != 2 {
		t.Fatalf("called = %d", p.NumCalled())
	}
}

func TestCDFMonotoneAndBounded(t *testing.T) {
	// Property: the CDF is nondecreasing and ends at <= 1.
	f := func(durations []uint8) bool {
		clk := &fakeClock{}
		p := New(clk, nil)
		for i, d := range durations {
			fn := sim.FuncID(i%17 + 1)
			p.Enter(fn)
			clk.c += float64(d) + 1
			p.Leave(fn)
		}
		cdf := p.CDF(50)
		prev := 0.0
		for _, v := range cdf {
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return len(cdf) == 0 || cdf[len(cdf)-1] <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTopNTruncates(t *testing.T) {
	clk := &fakeClock{}
	p := New(clk, nil)
	for i := 1; i <= 100; i++ {
		p.Enter(sim.FuncID(i))
		clk.c += float64(i)
		p.Leave(sim.FuncID(i))
	}
	if len(p.Top(10)) != 10 {
		t.Fatal("Top(10) wrong length")
	}
	if p.Top(10)[0].Cycles != 100 {
		t.Fatal("not sorted by cycles")
	}
	if len(p.Top(0)) != 100 {
		t.Fatal("Top(0) should return all")
	}
}

func TestUnbalancedLeaveIsIgnored(t *testing.T) {
	clk := &fakeClock{}
	p := New(clk, nil)
	p.Leave(5) // no matching enter: must not panic
	p.Enter(1)
	clk.c += 3
	p.Leave(2) // mismatched id: frame dropped
	if p.TotalCycles() != 0 {
		t.Fatal("mismatched leave attributed cycles")
	}
}

func TestRender(t *testing.T) {
	clk := &fakeClock{}
	p := New(clk, fakeNames{})
	p.Enter(1)
	clk.c += 7
	p.Leave(1)
	out := p.Render(5)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "100.00%") {
		t.Fatalf("render = %q", out)
	}
}

func TestNestedSameFunction(t *testing.T) {
	clk := &fakeClock{}
	p := New(clk, nil)
	// Recursion: f calls f.
	p.Enter(1)
	clk.c += 2
	p.Enter(1)
	clk.c += 3
	p.Leave(1)
	clk.c += 1
	p.Leave(1)
	if p.TotalCycles() != 6 {
		t.Fatalf("total = %v", p.TotalCycles())
	}
	if p.Top(1)[0].Calls != 2 {
		t.Fatal("call count wrong")
	}
}
