package guest

import (
	"encoding/base64"
	"fmt"
	"sort"
	"strconv"
)

// MemoryImage is the serializable form of a Memory: only touched pages are
// stored, base64-encoded, keyed by page index. It matches gem5's readable
// checkpoint philosophy (the paper relies on checkpoints taken on one
// platform being restored on another).
type MemoryImage struct {
	Size  uint32            `json:"size"`
	Pages map[string]string `json:"pages"`
}

// Snapshot captures all touched pages.
func (m *Memory) Snapshot() MemoryImage {
	img := MemoryImage{Size: m.size, Pages: make(map[string]string, len(m.pages))}
	//lint:deterministic map-to-map copy commutes; JSON encoding sorts the keys
	for idx, page := range m.pages {
		img.Pages[fmt.Sprintf("%d", idx)] = base64.StdEncoding.EncodeToString(page[:])
	}
	return img
}

// decodePage validates one snapshot entry and returns its page index and
// raw contents. Keys must be canonical decimal (a non-canonical spelling
// like "07" or "7x" could alias another entry's page, making the restored
// contents depend on map-iteration order), and payloads must decode to
// exactly one page.
func decodePage(key, data string, size uint32) (uint32, []byte, error) {
	idx64, err := strconv.ParseUint(key, 10, 32)
	if err != nil || strconv.FormatUint(idx64, 10) != key {
		return 0, nil, fmt.Errorf("guest: bad page key %q", key)
	}
	idx := uint32(idx64)
	if idx64*PageBytes >= uint64(size) {
		return 0, nil, fmt.Errorf("guest: page %d outside memory", idx)
	}
	raw, err := base64.StdEncoding.DecodeString(data)
	if err != nil {
		return 0, nil, fmt.Errorf("guest: page %d: %w", idx, err)
	}
	if len(raw) != PageBytes {
		return 0, nil, fmt.Errorf("guest: page %d has %d bytes, want %d", idx, len(raw), PageBytes)
	}
	return idx, raw, nil
}

// Validate checks the image's structural invariants without materializing
// a Memory: a nonzero size, canonical page keys inside the declared size,
// and page payloads of exactly one page each. RestoreMemory re-applies the
// same checks; Validate lets checkpoint decoding fail closed before any
// state is touched.
func (img MemoryImage) Validate() error {
	if img.Size == 0 {
		return fmt.Errorf("guest: snapshot has zero size")
	}
	keys := make([]string, 0, len(img.Pages))
	//lint:deterministic keys are sorted before use
	for k := range img.Pages {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if _, _, err := decodePage(key, img.Pages[key], img.Size); err != nil {
			return err
		}
	}
	return nil
}

// RestoreMemory rebuilds a Memory from a snapshot.
func RestoreMemory(img MemoryImage) (*Memory, error) {
	if img.Size == 0 {
		return nil, fmt.Errorf("guest: snapshot has zero size")
	}
	m := NewMemory(img.Size)
	//lint:deterministic canonical keys make per-page writes disjoint, so they commute
	for key, data := range img.Pages {
		idx, raw, err := decodePage(key, data, m.size)
		if err != nil {
			return nil, err
		}
		p := new([PageBytes]byte)
		copy(p[:], raw)
		m.pages[idx] = p
	}
	return m, nil
}

// LoadImage replaces this memory's contents in place with the snapshot.
// Sizes must match (the snapshot was taken from an identically configured
// machine).
func (m *Memory) LoadImage(img MemoryImage) error {
	restored, err := RestoreMemory(img)
	if err != nil {
		return err
	}
	if restored.size != m.size {
		return fmt.Errorf("guest: snapshot size %d != memory size %d", restored.size, m.size)
	}
	m.pages = restored.pages
	return nil
}

// Equal reports whether two memories have identical contents (zero pages
// compare equal to absent pages). Used by checkpoint tests.
func (m *Memory) Equal(o *Memory) bool {
	if m.size != o.size {
		return false
	}
	keys := map[uint32]bool{}
	//lint:deterministic pure set union
	for k := range m.pages {
		keys[k] = true
	}
	//lint:deterministic pure set union
	for k := range o.pages {
		keys[k] = true
	}
	idxs := make([]uint32, 0, len(keys))
	//lint:deterministic keys are sorted before use
	for k := range keys {
		idxs = append(idxs, k)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	zero := [PageBytes]byte{}
	get := func(mm *Memory, k uint32) *[PageBytes]byte {
		if p := mm.pages[k]; p != nil {
			return p
		}
		return &zero
	}
	for _, k := range idxs {
		if *get(m, k) != *get(o, k) {
			return false
		}
	}
	return true
}
