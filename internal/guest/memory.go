// Package guest provides the simulated machine's physical memory and the
// program loader. Data lives here functionally; the timing of accesses is
// modeled separately by internal/mem.
package guest

import (
	"fmt"
	"sort"

	"gem5prof/internal/isa"
)

// PageBytes is the granularity of the sparse backing store.
const PageBytes = 4096

// Memory is a sparse physical memory of a fixed size. The zero page is
// shared implicitly: unwritten pages read as zero.
type Memory struct {
	size  uint32
	pages map[uint32]*[PageBytes]byte

	// hostBase is the synthetic host address of the backing store, used to
	// attribute host-level data traffic to guest memory.
	hostBase uint64
}

// NewMemory returns a memory of size bytes (rounded up to a whole page).
func NewMemory(size uint32) *Memory {
	if size == 0 {
		panic("guest: zero-size memory")
	}
	size = (size + PageBytes - 1) &^ (PageBytes - 1)
	return &Memory{size: size, pages: make(map[uint32]*[PageBytes]byte)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint32 { return m.size }

// SetHostBase records the synthetic host address of the backing store.
func (m *Memory) SetHostBase(base uint64) { m.hostBase = base }

// HostAddr translates a guest physical address to its synthetic host
// address for the host data-traffic model.
func (m *Memory) HostAddr(addr uint32) uint64 { return m.hostBase + uint64(addr) }

// AccessError reports an out-of-range guest access.
type AccessError struct {
	Addr  uint32
	Size  int
	Write bool
}

func (e *AccessError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("guest: %s of %d bytes at %#x outside physical memory", kind, e.Size, e.Addr)
}

func (m *Memory) check(addr uint32, size int, write bool) error {
	if size <= 0 || size > 8 {
		return &AccessError{Addr: addr, Size: size, Write: write}
	}
	end := uint64(addr) + uint64(size)
	if end > uint64(m.size) {
		return &AccessError{Addr: addr, Size: size, Write: write}
	}
	return nil
}

func (m *Memory) page(addr uint32, alloc bool) *[PageBytes]byte {
	idx := addr / PageBytes
	p := m.pages[idx]
	if p == nil && alloc {
		p = new([PageBytes]byte)
		m.pages[idx] = p
	}
	return p
}

// Read loads size bytes (1..8) little-endian at addr, zero-extended.
func (m *Memory) Read(addr uint32, size int) (uint64, error) {
	if err := m.check(addr, size, false); err != nil {
		return 0, err
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		a := addr + uint32(i)
		var b byte
		if p := m.page(a, false); p != nil {
			b = p[a%PageBytes]
		}
		v = v<<8 | uint64(b)
	}
	return v, nil
}

// Write stores the low size bytes (1..8) of v little-endian at addr.
func (m *Memory) Write(addr uint32, size int, v uint64) error {
	if err := m.check(addr, size, true); err != nil {
		return err
	}
	for i := 0; i < size; i++ {
		a := addr + uint32(i)
		m.page(a, true)[a%PageBytes] = byte(v >> (8 * i))
	}
	return nil
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (m *Memory) ReadBytes(addr uint32, dst []byte) error {
	if uint64(addr)+uint64(len(dst)) > uint64(m.size) {
		return &AccessError{Addr: addr, Size: len(dst)}
	}
	for i := range dst {
		a := addr + uint32(i)
		if p := m.page(a, false); p != nil {
			dst[i] = p[a%PageBytes]
		} else {
			dst[i] = 0
		}
	}
	return nil
}

// WriteBytes copies src into memory starting at addr.
func (m *Memory) WriteBytes(addr uint32, src []byte) error {
	if uint64(addr)+uint64(len(src)) > uint64(m.size) {
		return &AccessError{Addr: addr, Size: len(src), Write: true}
	}
	for i, b := range src {
		a := addr + uint32(i)
		m.page(a, true)[a%PageBytes] = b
	}
	return nil
}

// FetchWord reads one aligned instruction word at pc.
func (m *Memory) FetchWord(pc uint32) (isa.Word, error) {
	if pc%isa.InstBytes != 0 {
		return 0, fmt.Errorf("guest: misaligned fetch at %#x", pc)
	}
	v, err := m.Read(pc, isa.InstBytes)
	if err != nil {
		return 0, err
	}
	return isa.Word(v), nil
}

// TouchedPages returns how many distinct pages have been written.
func (m *Memory) TouchedPages() int { return len(m.pages) }

// Checksum returns an FNV-1a hash of the memory contents, independent of
// page-allocation history: pages are hashed in address order and all-zero
// pages (allocated or not) contribute nothing, so two memories with equal
// byte contents hash equal even if one touched extra pages with zeroes.
// The conformance lockstep runner diffs final memory images with it.
func (m *Memory) Checksum() uint64 {
	idxs := make([]uint32, 0, len(m.pages))
	//lint:deterministic keys are sorted before use
	for idx := range m.pages {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, idx := range idxs {
		p := m.pages[idx]
		zero := true
		for _, b := range p {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		// Mix the page address so equal contents at different addresses
		// hash differently.
		for shift := 0; shift < 32; shift += 8 {
			h = (h ^ uint64(byte(idx>>shift))) * prime64
		}
		for _, b := range p {
			h = (h ^ uint64(b)) * prime64
		}
	}
	return h
}

// Load copies an assembled program image into memory.
func (m *Memory) Load(p *isa.Program) error {
	return m.WriteBytes(p.Base, p.Data)
}

// ReadCString reads a NUL-terminated string of at most max bytes at addr.
func (m *Memory) ReadCString(addr uint32, max int) (string, error) {
	var out []byte
	for i := 0; i < max; i++ {
		b, err := m.Read(addr+uint32(i), 1)
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, byte(b))
	}
	return string(out), nil
}
