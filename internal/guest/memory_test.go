package guest

import (
	"testing"
	"testing/quick"

	"gem5prof/internal/isa"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := NewMemory(64 * 1024)
	// Property: any (addr, size, value) in range round-trips.
	f := func(addr uint16, size uint8, v uint64) bool {
		s := int(size)%8 + 1
		a := uint32(addr)
		if uint64(a)+uint64(s) > uint64(m.Size()) {
			// Straddles the end of memory: the write must be rejected.
			return m.Write(a, s, v) != nil
		}
		if err := m.Write(a, s, v); err != nil {
			return false
		}
		got, err := m.Read(a, s)
		if err != nil {
			return false
		}
		mask := uint64(1)<<(8*s) - 1
		if s == 8 {
			mask = ^uint64(0)
		}
		return got == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsChecking(t *testing.T) {
	m := NewMemory(4096)
	if _, err := m.Read(4095, 4); err == nil {
		t.Error("straddling read accepted")
	}
	if err := m.Write(4096, 1, 0); err == nil {
		t.Error("out-of-range write accepted")
	}
	if _, err := m.Read(0, 0); err == nil {
		t.Error("zero-size read accepted")
	}
	if _, err := m.Read(0, 9); err == nil {
		t.Error("oversize read accepted")
	}
	var ae *AccessError
	_, err := m.Read(5000, 4)
	if ae, _ = err.(*AccessError); ae == nil || ae.Addr != 5000 {
		t.Errorf("error type: %v", err)
	}
	if ae.Error() == "" {
		t.Error("empty error string")
	}
}

func TestSparsePagesReadZero(t *testing.T) {
	m := NewMemory(1 << 20)
	v, err := m.Read(0x8000, 8)
	if err != nil || v != 0 {
		t.Fatalf("untouched memory = %#x, %v", v, err)
	}
	if m.TouchedPages() != 0 {
		t.Fatal("read allocated pages")
	}
	_ = m.Write(0x8000, 1, 0xFF)
	if m.TouchedPages() != 1 {
		t.Fatal("write did not allocate exactly one page")
	}
}

func TestBytesAcrossPageBoundary(t *testing.T) {
	m := NewMemory(64 * 1024)
	data := make([]byte, 3*PageBytes)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := m.WriteBytes(PageBytes/2, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.ReadBytes(PageBytes/2, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
	if err := m.WriteBytes(64*1024-2, []byte{1, 2, 3}); err == nil {
		t.Fatal("overflowing WriteBytes accepted")
	}
	if err := m.ReadBytes(64*1024-2, got[:3]); err == nil {
		t.Fatal("overflowing ReadBytes accepted")
	}
}

func TestFetchWord(t *testing.T) {
	m := NewMemory(4096)
	w := isa.MustEncode(isa.Inst{Op: isa.OpAddi, Rd: 1, Imm: 7})
	_ = m.Write(0x100, 4, uint64(w))
	got, err := m.FetchWord(0x100)
	if err != nil || got != w {
		t.Fatalf("fetch = %#x, %v", got, err)
	}
	if _, err := m.FetchWord(0x102); err == nil {
		t.Fatal("misaligned fetch accepted")
	}
}

func TestLoadProgram(t *testing.T) {
	m := NewMemory(1 << 20)
	p, err := isa.Assemble("_start:\n nop\n ecall\ndata:\n .word 0xCAFEBABE")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(p); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Read(p.Symbol("data"), 4)
	if v != 0xCAFEBABE {
		t.Fatalf("data = %#x", v)
	}
}

func TestReadCString(t *testing.T) {
	m := NewMemory(4096)
	_ = m.WriteBytes(100, []byte("hello\x00world"))
	s, err := m.ReadCString(100, 64)
	if err != nil || s != "hello" {
		t.Fatalf("cstring = %q, %v", s, err)
	}
	// Unterminated within max: returns what it saw.
	s, err = m.ReadCString(106, 3)
	if err != nil || s != "wor" {
		t.Fatalf("truncated = %q, %v", s, err)
	}
}

func TestHostAddr(t *testing.T) {
	m := NewMemory(4096)
	m.SetHostBase(0x7000_0000)
	if m.HostAddr(0x123) != 0x7000_0123 {
		t.Fatal("host addr wrong")
	}
}

func TestSizeRounding(t *testing.T) {
	m := NewMemory(5000)
	if m.Size() != 8192 {
		t.Fatalf("size = %d", m.Size())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero size accepted")
		}
	}()
	NewMemory(0)
}
