package simpoint

import "gem5prof/internal/core"

// BuildProfileForTest exposes the profile builder to the external test
// package.
func BuildProfileForTest(gc core.GuestConfig, interval, warmup uint64, dims int) (*Profile, error) {
	return buildProfile(gc, interval, warmup, dims)
}
