package simpoint

import (
	"math"
	"math/rand"
	"sort"
)

// Cluster is one execution phase: a set of similar intervals, one of which
// (Rep) is simulated in detail on behalf of the whole set.
type Cluster struct {
	// Rep is the index (into Profile.Intervals) of the representative —
	// the member closest to the cluster centroid.
	Rep int
	// Members lists the member interval indices in ascending order.
	Members []int
	// Insts is the total instruction count across all members.
	Insts uint64
	// Weight is Insts over the profile's total instructions.
	Weight float64
}

// Phases is the result of clustering a profile.
type Phases struct {
	K        int
	Clusters []Cluster
}

// clusterIntervals groups interval BBVs into phases. It runs seeded
// k-means for every k in 1..maxK and picks k by the SimPoint rule: the
// smallest k whose BIC reaches 90% of the best score's range. Everything
// is deterministic: seeded initialization, fixed iteration order, and
// lowest-index tie-breaks throughout.
func clusterIntervals(ivs []Interval, maxK int, seed int64) Phases {
	n := len(ivs)
	vecs := make([][]float64, n)
	for i, iv := range ivs {
		vecs[i] = iv.Vec
	}
	if maxK > n {
		maxK = n
	}
	if maxK < 1 {
		maxK = 1
	}
	assigns := make([][]int, maxK+1)
	cents := make([][][]float64, maxK+1)
	bics := make([]float64, maxK+1)
	minBIC, maxBIC := math.Inf(1), math.Inf(-1)
	for k := 1; k <= maxK; k++ {
		assign, cent, distortion := kmeansOnce(vecs, k, seed+int64(k)*1009)
		assigns[k], cents[k] = assign, cent
		bics[k] = bic(vecs, assign, k, distortion)
		minBIC = math.Min(minBIC, bics[k])
		maxBIC = math.Max(maxBIC, bics[k])
	}
	chosen := maxK
	threshold := minBIC + 0.9*(maxBIC-minBIC)
	for k := 1; k <= maxK; k++ {
		if bics[k] >= threshold {
			chosen = k
			break
		}
	}
	return buildPhases(ivs, vecs, assigns[chosen], cents[chosen])
}

// kmeansOnce is deterministic Lloyd's with k-means++ seeding.
func kmeansOnce(vecs [][]float64, k int, seed int64) (assign []int, cents [][]float64, distortion float64) {
	n := len(vecs)
	rng := rand.New(rand.NewSource(seed))
	cents = seedCentroids(vecs, k, rng)
	assign = make([]int, n)
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, math.Inf(1)
			for c, cent := range cents {
				if d := sqDist(v, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if iter > 0 && !changed {
			break
		}
		// Recompute centroids in fixed point order; an emptied centroid
		// keeps its position (it simply attracts nothing).
		dims := len(vecs[0])
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dims)
		}
		for i, v := range vecs {
			c := assign[i]
			counts[c]++
			for d, x := range v {
				sums[c][d] += x
			}
		}
		for c := range cents {
			if counts[c] == 0 {
				continue
			}
			for d := range sums[c] {
				sums[c][d] /= float64(counts[c])
			}
			cents[c] = sums[c]
		}
	}
	for i, v := range vecs {
		distortion += sqDist(v, cents[assign[i]])
	}
	return assign, cents, distortion
}

// seedCentroids is k-means++: the first centroid is drawn uniformly, each
// further one with probability proportional to squared distance from the
// nearest already-chosen centroid.
func seedCentroids(vecs [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(vecs)
	cents := make([][]float64, 0, k)
	cents = append(cents, vecs[rng.Intn(n)])
	d2 := make([]float64, n)
	for len(cents) < k {
		var sum float64
		for i, v := range vecs {
			d2[i] = sqDist(v, cents[0])
			for _, c := range cents[1:] {
				if d := sqDist(v, c); d < d2[i] {
					d2[i] = d
				}
			}
			sum += d2[i]
		}
		if sum == 0 {
			// All points coincide with centroids; duplicate the first.
			cents = append(cents, vecs[0])
			continue
		}
		r := rng.Float64() * sum
		pick := n - 1
		acc := 0.0
		for i := range d2 {
			acc += d2[i]
			if r < acc {
				pick = i
				break
			}
		}
		cents = append(cents, vecs[pick])
	}
	return cents
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// bic is the spherical-Gaussian Bayesian information criterion SimPoint
// uses to pick k: log-likelihood of the clustering minus a model-size
// penalty. Higher is better.
func bic(vecs [][]float64, assign []int, k int, distortion float64) float64 {
	n := len(vecs)
	d := len(vecs[0])
	if n <= k {
		// Saturated model: perfect fit, maximal penalty.
		return -float64(k*(d+1)) / 2 * math.Log(float64(n))
	}
	variance := distortion / float64(d*(n-k))
	if variance < 1e-12 {
		variance = 1e-12
	}
	counts := make([]int, k)
	for _, c := range assign {
		counts[c]++
	}
	var loglik float64
	for _, nc := range counts {
		if nc == 0 {
			continue
		}
		fn := float64(nc)
		loglik += fn*math.Log(fn) -
			fn*math.Log(float64(n)) -
			fn*float64(d)/2*math.Log(2*math.Pi*variance) -
			(fn-1)*float64(d)/2
	}
	params := float64(k * (d + 1))
	return loglik - params/2*math.Log(float64(n))
}

// buildPhases converts an assignment into ordered clusters: members
// ascending, representative = member closest to the centroid (lowest index
// on ties), clusters ordered by their smallest member so downstream
// iteration — and therefore float accumulation order — is a pure function
// of the clustering.
func buildPhases(ivs []Interval, vecs [][]float64, assign []int, cents [][]float64) Phases {
	groups := make(map[int][]int)
	for i, c := range assign {
		groups[c] = append(groups[c], i) // ascending: i increases
	}
	var total uint64
	for _, iv := range ivs {
		total += iv.Insts()
	}
	var clusters []Cluster
	//lint:deterministic clusters are sorted by smallest member below
	for c, members := range groups {
		rep, repD := members[0], math.Inf(1)
		var insts uint64
		for _, m := range members {
			insts += ivs[m].Insts()
			if d := sqDist(vecs[m], cents[c]); d < repD {
				rep, repD = m, d
			}
		}
		clusters = append(clusters, Cluster{
			Rep: rep, Members: members, Insts: insts,
			Weight: float64(insts) / float64(total),
		})
	}
	sort.Slice(clusters, func(i, j int) bool {
		return clusters[i].Members[0] < clusters[j].Members[0]
	})
	return Phases{K: len(clusters), Clusters: clusters}
}
