package simpoint

import (
	"fmt"
	"sort"
	"sync"

	"gem5prof/internal/ckptcache"
	"gem5prof/internal/core"
	"gem5prof/internal/sim"
)

// Config parameterizes sampled simulation.
type Config struct {
	// IntervalInsts is the profiling interval length in committed
	// instructions (gem5's --simpoint-interval; default 1000, minimum 128
	// so an interval always spans several Atomic event batches).
	IntervalInsts uint64
	// WarmupInsts is how many instructions before each representative the
	// checkpoint is placed, re-warming caches/predictors before the
	// measured window. 0 means IntervalInsts/4. Must stay below
	// IntervalInsts.
	WarmupInsts uint64
	// MeasureInsts caps the measured window of each representative at this
	// many instructions (0 = measure the whole interval). Intervals are
	// BBV-homogeneous by construction, so a prefix of the interval carries
	// the same rate as the whole; capping the window cuts detailed-model
	// cost without moving the extrapolation, which already works from
	// seconds-per-instruction (RepRun.Rate), never from raw window totals.
	MeasureInsts uint64
	// MaxK bounds the number of phases (default 6).
	MaxK int
	// Dims is the BBV projection dimensionality (default 16).
	Dims int
	// Seed drives the k-means initialization (default 1). It is part of
	// the analysis, not the guest: checkpoints are seed-independent.
	Seed int64
	// Cache, when non-nil, persists fast-forward checkpoints across
	// processes. A nil cache still memoizes within the process.
	Cache *ckptcache.Cache
}

func (c Config) withDefaults() Config {
	if c.IntervalInsts == 0 {
		c.IntervalInsts = 1000
	}
	if c.IntervalInsts < 128 {
		c.IntervalInsts = 128
	}
	if c.WarmupInsts == 0 {
		c.WarmupInsts = c.IntervalInsts / 4
	}
	if c.WarmupInsts >= c.IntervalInsts {
		c.WarmupInsts = c.IntervalInsts - 1
	}
	if c.MaxK <= 0 {
		c.MaxK = 6
	}
	if c.Dims <= 0 {
		c.Dims = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RepRun is the measurement of one representative interval.
type RepRun struct {
	// Rep is the representative's interval index; Weight and ClusterInsts
	// come from its cluster.
	Rep          int
	Weight       float64
	ClusterInsts uint64
	// Insts/Seconds are the measured window on the target model.
	Insts   uint64
	Seconds float64
	// Rate is the seconds-per-instruction the extrapolation used: the
	// steady-state estimate for restored windows (see steadyRate), the
	// plain window average for a fresh-start representative.
	Rate float64
}

// Result is one sampled co-simulation.
type Result struct {
	// Seconds is the extrapolated modeled host time of the full run — the
	// sampled stand-in for SessionResult.SimSeconds().
	Seconds float64
	// K and NumIntervals describe the clustering that produced it.
	K            int
	NumIntervals int
	// TotalInsts is the profiled full-run instruction count.
	TotalInsts uint64
	// Reps holds the per-phase measurements in cluster order.
	Reps []RepRun
}

// ConfigPrefix renders every GuestConfig field that can alter guest
// execution into a canonical string. It deliberately excludes Seed (the
// guest never consumes the system RNG — pinned by
// TestCheckpointSeedInvariance), ExecTrace (observation only), and CPU
// (instruction streams are model-invariant; the profile and checkpoints
// always come from the Atomic model regardless of the measured target).
//
// The resolved shard layout IS included, defensively: sharded execution is
// bit-identical to serial by design, but that is an invariant the
// differential suites test, not an axiom the cache may assume. If a
// layout-dependent divergence bug ever slipped in, shared cache keys would
// launder a serial-engine checkpoint into a sharded run (or vice versa)
// and hide the divergence from exactly the suites meant to catch it.
func ConfigPrefix(gc core.GuestConfig) string {
	gc = gc.Normalized()
	hier := "default"
	if gc.Hierarchy != nil {
		hier = fmt.Sprintf("%+v", *gc.Hierarchy)
	}
	return fmt.Sprintf("mode=%s workload=%s scale=%d bootexit=%v bootkbs=%d ncpu=%d mem=%d clk=%d hier=%s ideal=%v gtlb=%v calq=%v shards=%s",
		gc.Mode, gc.Workload, gc.Scale, gc.BootExit, gc.BootKBs, gc.NumCPUs,
		gc.MemBytes, gc.ClockPeriod, hier, gc.IdealMemory, gc.GuestTLBs, gc.CalendarQueue,
		core.ShardLayout(gc))
}

// analysis is the per-(config family, sampling params) work shared by
// every cell of a sweep: the BBV profile, the clustering, and the restore
// checkpoints. It is computed once per process (and its checkpoints once
// per cache lifetime) no matter how many cells or goroutines ask.
type analysis struct {
	once   sync.Once
	prof   *Profile
	phases Phases
	ckpts  []*core.Checkpoint // per cluster; nil for a fresh-start rep
	err    error
}

var (
	memoMu sync.Mutex
	memo   = map[string]*analysis{}
)

// ResetMemo drops all memoized profiles and clusterings (test hook; the
// experiment runner's ResetCaches calls it between figures-in-isolation
// runs).
func ResetMemo() {
	memoMu.Lock()
	memo = map[string]*analysis{}
	memoMu.Unlock()
}

func memoFor(prefix string, cfg Config) *analysis {
	key := fmt.Sprintf("%s|iv=%d warm=%d k=%d dims=%d seed=%d cache=%s",
		prefix, cfg.IntervalInsts, cfg.WarmupInsts, cfg.MaxK, cfg.Dims, cfg.Seed, cfg.Cache.Dir())
	memoMu.Lock()
	a, ok := memo[key]
	if !ok {
		a = &analysis{}
		memo[key] = a
	}
	memoMu.Unlock()
	return a
}

// RunSampled runs one co-simulation in sampled mode and returns the
// extrapolated result. It is safe for concurrent use; concurrent calls
// sharing a config family block on one shared analysis, then measure
// their own representative intervals independently.
func RunSampled(sc core.SessionConfig, cfg Config) (*Result, error) {
	if sc.Profile {
		return nil, fmt.Errorf("simpoint: sampled mode cannot host the function profiler (its report would cover only representative intervals)")
	}
	if sc.Guest.Cores > 1 {
		return nil, fmt.Errorf("simpoint: sampled mode is single-core only (BBV profiles and checkpoints capture one architectural thread); run the multicore guest full-length")
	}
	cfg = cfg.withDefaults()
	gc := sc.Guest.Normalized()
	prefix := ConfigPrefix(gc)
	a := memoFor(prefix, cfg)
	a.once.Do(func() { a.compute(gc, prefix, cfg) })
	if a.err != nil {
		return nil, a.err
	}

	out := &Result{
		K:            a.phases.K,
		NumIntervals: len(a.prof.Intervals),
		TotalInsts:   a.prof.TotalInsts,
	}
	// Measure each representative, then extrapolate. The windows run
	// serially on one IntervalRunner, so the modeled host machine stays
	// warm across them (as it would across one long full run), and the
	// sum runs in cluster-index order — a fixed, clustering-derived order
	// — because float addition is non-commutative and the report must be
	// byte-identical at any -j.
	runner := core.NewIntervalRunner(sc)
	for ci, cl := range a.phases.Clusters {
		iv := a.prof.Intervals[cl.Rep]
		var ivr *core.IntervalResult
		var err error
		if a.ckpts[ci] == nil {
			// The representative starts at (or is) the first interval:
			// run fresh from the workload entry.
			ivr, err = runner.Run(nil, iv.StartInsts, capBudget(iv.Insts(), cfg))
		} else {
			ck := a.ckpts[ci]
			// The checkpoint lands on an Atomic event boundary at or
			// shortly after the warm mark, so budgets derive from the
			// actual checkpointed instruction count, not the mark.
			warm := uint64(0)
			if iv.StartInsts > ck.Insts {
				warm = iv.StartInsts - ck.Insts
			}
			start := iv.StartInsts
			if ck.Insts > start {
				start = ck.Insts
			}
			ivr, err = runner.Run(ck, warm, capBudget(iv.EndInsts-start, cfg))
		}
		if err != nil {
			return nil, fmt.Errorf("simpoint: interval %d (cluster %d): %w", cl.Rep, ci, err)
		}
		rep := RepRun{
			Rep: cl.Rep, Weight: cl.Weight, ClusterInsts: cl.Insts,
			Insts: ivr.Insts, Seconds: ivr.Seconds,
			Rate: steadyRate(ivr, a.ckpts[ci] != nil),
		}
		out.Reps = append(out.Reps, rep)
		out.Seconds += float64(rep.ClusterInsts) * rep.Rate
	}
	return out, nil
}

// capBudget applies Config.MeasureInsts to one window's instruction
// budget.
func capBudget(budget uint64, cfg Config) uint64 {
	if cfg.MeasureInsts > 0 && cfg.MeasureInsts < budget {
		return cfg.MeasureInsts
	}
	return budget
}

// steadyRate returns the modeled seconds-per-instruction of one measured
// window, extrapolated to steady state when the window was restored from a
// checkpoint. A checkpoint carries architectural state only, so the target
// model starts the window with cold caches, TLBs and predictors; the
// warmup absorbs part of that transient and the rest decays across the
// window, inflating its average rate. The residual shows up as a
// geometric-looking decay across the window's three sub-window rates, so
// Aitken Δ² extrapolation (steady = r3 − Δ2·ρ/(1−ρ), ρ = Δ2/Δ1) removes
// it at zero extra simulation cost. When the decay assumption does not
// hold — rates not strictly decreasing, or the projection non-positive —
// the plain window average is used unchanged. A slow decay (ρ near 1)
// makes the projection explode, so a projected residual larger than half
// the final sub-window's rate is distrusted and the final sub-window —
// the least transient-polluted direct observation — is used instead.
// Fresh-start windows always use the plain average: their cold start is
// the run's real one.
func steadyRate(ivr *core.IntervalResult, restored bool) float64 {
	avg := ivr.Seconds / float64(ivr.Insts)
	if !restored || len(ivr.SubSeconds) != 3 {
		return avg
	}
	var r [3]float64
	for i := range r {
		if ivr.SubInsts[i] == 0 {
			return avg
		}
		r[i] = ivr.SubSeconds[i] / float64(ivr.SubInsts[i])
	}
	d1, d2 := r[0]-r[1], r[1]-r[2]
	if d1 <= 0 || d2 <= 0 || d2 >= d1 {
		return avg // not a decaying transient
	}
	rho := d2 / d1
	tail := d2 * rho / (1 - rho)
	if tail > r[2]/2 {
		return r[2] // projection overshoots; trust the last observation
	}
	steady := r[2] - tail
	if steady <= 0 || steady > avg {
		return avg
	}
	return steady
}

// compute runs the shared analysis: profile, cluster, acquire checkpoints.
func (a *analysis) compute(gc core.GuestConfig, prefix string, cfg Config) {
	a.prof, a.err = buildProfile(gc, cfg.IntervalInsts, cfg.WarmupInsts, cfg.Dims)
	if a.err != nil {
		return
	}
	a.phases = clusterIntervals(a.prof.Intervals, cfg.MaxK, cfg.Seed)
	a.ckpts, a.err = acquireCheckpoints(gc, prefix, cfg, a.prof, a.phases)
}

// cacheKey derives the content address of the checkpoint at warmTick.
func cacheKey(gc core.GuestConfig, prefix string, warmTick sim.Tick) ckptcache.Key {
	return ckptcache.Key{
		Workload:      fmt.Sprintf("%s@%d", gc.Workload, gc.Scale),
		ConfigPrefix:  prefix,
		FormatVersion: core.CheckpointVersion,
		Tick:          uint64(warmTick),
	}
}

// acquireCheckpoints returns one restore checkpoint per cluster (nil for
// representatives that start the run fresh). Cache hits are verified twice
// — content hash in the cache layer, then DecodeCheckpoint + a tick match
// here — so a corrupted or version-skewed entry degrades to re-simulation,
// never to restoring garbage. All misses are filled by a single Atomic
// fast-forward pass visiting the missing warm ticks in ascending order.
func acquireCheckpoints(gc core.GuestConfig, prefix string, cfg Config, prof *Profile, phases Phases) ([]*core.Checkpoint, error) {
	ckpts := make([]*core.Checkpoint, len(phases.Clusters))
	var missing []int // cluster indices
	for ci, cl := range phases.Clusters {
		iv := prof.Intervals[cl.Rep]
		if iv.StartInsts == 0 {
			continue // fresh start; no checkpoint needed
		}
		if data, ok := cfg.Cache.Get(cacheKey(gc, prefix, iv.WarmTick)); ok {
			ck, err := core.DecodeCheckpoint(data)
			if err == nil && ck.Tick == iv.WarmTick {
				ckpts[ci] = ck
				continue
			}
			// Hash-valid but semantically unusable (e.g. written by an
			// incompatible build): treat as a miss.
		}
		missing = append(missing, ci)
	}
	if len(missing) == 0 {
		return ckpts, nil
	}
	sort.Slice(missing, func(i, j int) bool {
		return prof.Intervals[phases.Clusters[missing[i]].Rep].WarmTick <
			prof.Intervals[phases.Clusters[missing[j]].Rep].WarmTick
	})

	ffCfg := gc
	ffCfg.CPU = core.Atomic
	ffCfg.ExecTrace = nil
	g, err := core.BuildGuest(ffCfg, sim.NewNopTracer())
	if err != nil {
		return nil, err
	}
	for _, ci := range missing {
		iv := prof.Intervals[phases.Clusters[ci].Rep]
		if res := g.RunTo(iv.WarmTick); res.Status != sim.ExitLimit {
			return nil, fmt.Errorf("simpoint: fast-forward ended at tick %d before warm tick %d (%v)",
				res.Now, iv.WarmTick, res.Status)
		}
		ck, err := g.TakeCheckpoint()
		if err != nil {
			return nil, fmt.Errorf("simpoint: checkpoint at tick %d: %w", iv.WarmTick, err)
		}
		ckpts[ci] = ck
		if cfg.Cache != nil {
			if data, err := ck.Encode(); err == nil {
				// Best-effort: a failed Put only costs a future
				// re-simulation.
				_ = cfg.Cache.Put(cacheKey(gc, prefix, iv.WarmTick), data)
			}
		}
	}
	return ckpts, nil
}
