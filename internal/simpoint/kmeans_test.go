package simpoint

import (
	"math"
	"reflect"
	"testing"
)

// blobIntervals builds synthetic intervals whose vectors form well
// separated blobs; instruction weights are uniform.
func blobIntervals(centers [][]float64, perBlob int) []Interval {
	var ivs []Interval
	n := uint64(0)
	for b, c := range centers {
		for i := 0; i < perBlob; i++ {
			vec := make([]float64, len(c))
			for d := range c {
				// Small deterministic jitter, different per point.
				vec[d] = c[d] + 0.01*float64((i+b*perBlob)%7)/7
			}
			ivs = append(ivs, Interval{
				StartInsts: n * 100, EndInsts: (n + 1) * 100, Vec: vec,
			})
			n++
		}
	}
	return ivs
}

func TestKMeansFindsBlobs(t *testing.T) {
	centers := [][]float64{
		{10, 0, 0}, {0, 10, 0}, {0, 0, 10},
	}
	ivs := blobIntervals(centers, 5)
	ph := clusterIntervals(ivs, 6, 1)
	if ph.K != 3 {
		t.Fatalf("found %d phases, want 3 well-separated blobs", ph.K)
	}
	// Each cluster must hold one complete blob.
	for _, cl := range ph.Clusters {
		if len(cl.Members) != 5 {
			t.Fatalf("cluster size %d, want 5: %+v", len(cl.Members), cl)
		}
		blob := cl.Members[0] / 5
		for _, m := range cl.Members {
			if m/5 != blob {
				t.Fatalf("cluster mixes blobs: %+v", cl.Members)
			}
		}
		if cl.Rep/5 != blob {
			t.Fatalf("representative %d outside its blob %d", cl.Rep, blob)
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	ivs := blobIntervals([][]float64{{1, 2}, {8, 1}, {4, 9}, {0, 0}}, 4)
	a := clusterIntervals(ivs, 6, 7)
	b := clusterIntervals(ivs, 6, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same inputs, same seed, different clustering")
	}
}

func TestKMeansSinglePhase(t *testing.T) {
	// All-identical vectors: one phase, full weight.
	ivs := blobIntervals([][]float64{{3, 3}}, 1)
	ivs = append(ivs, ivs[0], ivs[0], ivs[0])
	for i := range ivs {
		ivs[i].StartInsts = uint64(i) * 100
		ivs[i].EndInsts = uint64(i+1) * 100
	}
	ph := clusterIntervals(ivs, 6, 1)
	if ph.K != 1 {
		t.Fatalf("identical intervals split into %d phases", ph.K)
	}
	if w := ph.Clusters[0].Weight; math.Abs(w-1) > 1e-12 {
		t.Fatalf("single phase weight %g, want 1", w)
	}
}

func TestClusterWeights(t *testing.T) {
	ivs := blobIntervals([][]float64{{10, 0}, {0, 10}}, 3)
	// Make the tail interval short, like a real profile's.
	ivs[len(ivs)-1].EndInsts = ivs[len(ivs)-1].StartInsts + 40
	ph := clusterIntervals(ivs, 4, 1)
	var sum float64
	var insts uint64
	for _, cl := range ph.Clusters {
		sum += cl.Weight
		insts += cl.Insts
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %g, want 1", sum)
	}
	if want := uint64(5*100 + 40); insts != want {
		t.Fatalf("cluster insts total %d, want %d", insts, want)
	}
}

func TestMaxKClamp(t *testing.T) {
	ivs := blobIntervals([][]float64{{1, 1}}, 2)
	ph := clusterIntervals(ivs, 10, 1)
	if ph.K > 2 {
		t.Fatalf("more phases (%d) than intervals (2)", ph.K)
	}
}

func TestProjectDeterministicOrder(t *testing.T) {
	// The projection must not depend on map insertion order.
	a := map[uint32]uint64{4096: 10, 8192: 5, 12288: 1}
	b := map[uint32]uint64{12288: 1, 8192: 5, 4096: 10}
	va, vb := project(a, 16), project(b, 16)
	if !reflect.DeepEqual(va, vb) {
		t.Fatal("projection depends on map order")
	}
	if reflect.DeepEqual(va, make([]float64, 16)) {
		t.Fatal("projection is identically zero")
	}
}
