package simpoint_test

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gem5prof/internal/ckptcache"
	"gem5prof/internal/core"
	"gem5prof/internal/platform"
	"gem5prof/internal/simpoint"
)

func testGuest() core.GuestConfig {
	return core.GuestConfig{CPU: core.Timing, Mode: core.SE, Workload: "sieve", Scale: 1024}
}

func testSession() core.SessionConfig {
	return core.SessionConfig{Guest: testGuest(), Host: platform.IntelXeon()}
}

// testConfig mirrors the shape of the harness's sampling config: a long
// warmup relative to the interval, because the modeled host machine's
// cold start after a restore otherwise inflates every measured window.
func testConfig(cache *ckptcache.Cache) simpoint.Config {
	return simpoint.Config{IntervalInsts: 2000, WarmupInsts: 1900, MaxK: 4, Seed: 1, Cache: cache}
}

// TestSampledMatchesFull is the headline accuracy property: the
// extrapolated modeled seconds must land within a documented bound of the
// full co-simulation. The bound (15%) is tighter than the experiments
// layer documents for its quick sweeps; SimPoint itself reports low
// single-digit CPI error on SPEC, and the short quick-mode workloads here
// are harder to sample, not easier.
func TestSampledMatchesFull(t *testing.T) {
	simpoint.ResetMemo()
	sc := testSession()
	full, err := core.RunSession(sc)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := simpoint.RunSampled(sc, testConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Seconds <= 0 {
		t.Fatalf("sampled seconds %g", sampled.Seconds)
	}
	rel := math.Abs(sampled.Seconds-full.SimSeconds()) / full.SimSeconds()
	if rel > 0.15 {
		t.Fatalf("sampled %.6g vs full %.6g: %.1f%% error exceeds the 15%% bound",
			sampled.Seconds, full.SimSeconds(), 100*rel)
	}
	if sampled.K < 1 || sampled.K > 4 {
		t.Fatalf("implausible phase count %d", sampled.K)
	}
	if sampled.TotalInsts == 0 || sampled.NumIntervals == 0 {
		t.Fatalf("empty profile behind result: %+v", sampled)
	}
	// Extrapolation must account for every profiled instruction.
	var covered uint64
	for _, r := range sampled.Reps {
		covered += r.ClusterInsts
	}
	if covered != sampled.TotalInsts {
		t.Fatalf("clusters cover %d of %d instructions", covered, sampled.TotalInsts)
	}
}

// TestMeasureInstsCapsWindows: the MeasureInsts knob bounds every measured
// window without touching the analysis (same clustering, same coverage).
func TestMeasureInstsCapsWindows(t *testing.T) {
	simpoint.ResetMemo()
	sc := testSession()
	cfg := testConfig(nil)
	cfg.MeasureInsts = 300
	res, err := simpoint.RunSampled(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Reps {
		if r.Insts > cfg.MeasureInsts {
			t.Fatalf("rep %d measured %d insts, above the %d cap", r.Rep, r.Insts, cfg.MeasureInsts)
		}
		if r.Insts == 0 || r.Rate <= 0 {
			t.Fatalf("degenerate capped measurement: %+v", r)
		}
	}
	var covered uint64
	for _, r := range res.Reps {
		covered += r.ClusterInsts
	}
	if covered != res.TotalInsts {
		t.Fatalf("capped run covers %d of %d instructions", covered, res.TotalInsts)
	}
}

// TestSampledDeterministicAcrossCacheStates: a cold in-process memo with
// an empty disk cache, a warm disk cache, and no disk cache at all must
// produce bit-identical results — the cache is a pure performance layer.
func TestSampledDeterministicAcrossCacheStates(t *testing.T) {
	sc := testSession()

	simpoint.ResetMemo()
	noCache, err := simpoint.RunSampled(sc, testConfig(nil))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cache, err := ckptcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	simpoint.ResetMemo()
	cold, err := simpoint.RunSampled(sc, testConfig(cache))
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 0 {
		t.Fatalf("cold cache reported hits: %+v", st)
	}

	simpoint.ResetMemo() // force re-analysis; checkpoints now come from disk
	warm, err := simpoint.RunSampled(sc, testConfig(cache))
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("warm cache missed: %+v", st)
	}

	if !reflect.DeepEqual(noCache, cold) || !reflect.DeepEqual(cold, warm) {
		t.Fatalf("results differ across cache states:\nno-cache %+v\ncold     %+v\nwarm     %+v",
			noCache, cold, warm)
	}
}

// TestSampledCorruptCacheFallsBack is the acceptance-criteria property: a
// bit-flipped cache entry must be detected and re-simulated, and the
// result must equal the clean run's bit for bit.
func TestSampledCorruptCacheFallsBack(t *testing.T) {
	dir := t.TempDir()
	cache, _ := ckptcache.Open(dir)
	sc := testSession()

	simpoint.ResetMemo()
	clean, err := simpoint.RunSampled(sc, testConfig(cache))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written (err=%v)", err)
	}
	for _, path := range entries {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x01
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	simpoint.ResetMemo()
	recovered, err := simpoint.RunSampled(sc, testConfig(cache))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, recovered) {
		t.Fatalf("corrupt-cache run differs from clean run:\nclean     %+v\nrecovered %+v", clean, recovered)
	}
	if st := cache.Stats(); st.Corrupt == 0 {
		t.Fatalf("corruption not counted: %+v", st)
	}
}

// TestSampledVersionSkewFallsBack: entries written under a different
// checkpoint format version key differently, so a version bump simply
// misses; and an entry whose payload decodes but carries the wrong tick is
// rejected by the semantic check. Both degrade to re-simulation.
func TestSampledVersionSkewFallsBack(t *testing.T) {
	dir := t.TempDir()
	cache, _ := ckptcache.Open(dir)
	sc := testSession()

	simpoint.ResetMemo()
	clean, err := simpoint.RunSampled(sc, testConfig(cache))
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite every entry with a hash-valid frame whose payload is a
	// checkpoint of the wrong version: DecodeCheckpoint must reject it and
	// the runner must re-simulate.
	entries, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(entries) == 0 {
		t.Fatal("no cache entries written")
	}
	skewed := []byte(`{"version":99,"tick":1,"insts":1,"arch":[{}],"mem":{"size":4096,"pages":{}}}`)
	for _, path := range entries {
		raw, _ := os.ReadFile(path)
		// Re-frame: keep magic+keyID, recompute nothing — simplest is to
		// remove the entry and Put the skewed payload under a key we don't
		// know. Instead, truncate to force the framing check to fail.
		_ = raw
		if err := os.WriteFile(path, skewed, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	simpoint.ResetMemo()
	recovered, err := simpoint.RunSampled(sc, testConfig(cache))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, recovered) {
		t.Fatal("version-skewed cache changed the result")
	}
}

// TestSampledRejectsProfiler: the function profiler's report would cover
// only the representative windows, so sampled mode refuses it.
func TestSampledRejectsProfiler(t *testing.T) {
	sc := testSession()
	sc.Profile = true
	if _, err := simpoint.RunSampled(sc, testConfig(nil)); err == nil {
		t.Fatal("profiled sampled session accepted")
	}
}

// TestProfileDeterminismAndSeedInvariance: the BBV profile is a pure
// function of the workload and config family — including across guest
// seeds, which the cache key derivation relies on.
func TestProfileDeterminismAndSeedInvariance(t *testing.T) {
	gc := testGuest()
	a, err := simpoint.BuildProfileForTest(gc, 1000, 250, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := simpoint.BuildProfileForTest(gc, 1000, 250, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("profile not deterministic")
	}
	gc.Seed = 99991
	c, err := simpoint.BuildProfileForTest(gc, 1000, 250, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("profile depends on guest seed; ConfigPrefix must include Seed")
	}
	// Structural sanity: contiguous intervals covering the whole run.
	last := uint64(0)
	for i, iv := range a.Intervals {
		if iv.StartInsts != last {
			t.Fatalf("interval %d starts at %d, previous ended at %d", i, iv.StartInsts, last)
		}
		if iv.EndInsts <= iv.StartInsts {
			t.Fatalf("interval %d empty: %+v", i, iv)
		}
		if iv.StartInsts > 0 && (iv.WarmInsts >= iv.StartInsts || iv.WarmInsts == 0) {
			t.Fatalf("interval %d warm mark %d not before start %d", i, iv.WarmInsts, iv.StartInsts)
		}
		last = iv.EndInsts
	}
	if last != a.TotalInsts {
		t.Fatalf("intervals cover %d of %d instructions", last, a.TotalInsts)
	}
}

func TestConfigPrefixExcludesSeedIncludesExecution(t *testing.T) {
	a := testGuest()
	b := testGuest()
	b.Seed = 77
	if simpoint.ConfigPrefix(a) != simpoint.ConfigPrefix(b) {
		t.Fatal("prefix depends on seed")
	}
	c := testGuest()
	c.Scale = 2048
	if simpoint.ConfigPrefix(a) == simpoint.ConfigPrefix(c) {
		t.Fatal("prefix ignores scale")
	}
	d := testGuest()
	d.IdealMemory = true
	if simpoint.ConfigPrefix(a) == simpoint.ConfigPrefix(d) {
		t.Fatal("prefix ignores memory model")
	}
	// Zero fields and their spelled-out defaults share a prefix.
	e := testGuest()
	e.MemBytes = 16 * 1024 * 1024
	e.NumCPUs = 1
	if simpoint.ConfigPrefix(a) != simpoint.ConfigPrefix(e) {
		t.Fatal("prefix distinguishes defaulted and explicit fields")
	}
}

// TestConfigPrefixShardLayout pins that checkpoint cache keys split on the
// resolved shard layout: a sharded and a serial run never exchange cached
// checkpoints, so a hypothetical layout-dependent divergence could not be
// laundered through the cache past the differential suites. Resolution —
// not the raw mode — is what's keyed: an Atomic guest clamps to serial, so
// requesting shards there must NOT split the key.
func TestConfigPrefixShardLayout(t *testing.T) {
	a := testGuest()
	s := testGuest()
	s.Shards = 2
	if simpoint.ConfigPrefix(a) == simpoint.ConfigPrefix(s) {
		t.Fatal("prefix ignores shard layout")
	}
	if !strings.Contains(simpoint.ConfigPrefix(s), "shards=cpu+dev|mem") {
		t.Fatalf("sharded prefix missing layout: %q", simpoint.ConfigPrefix(s))
	}
	at := testGuest()
	at.CPU = core.Atomic
	ats := at
	ats.Shards = 2
	if simpoint.ConfigPrefix(at) != simpoint.ConfigPrefix(ats) {
		t.Fatal("prefix splits on a shard request the Atomic model clamps away")
	}
}
