// Package simpoint implements SimPoint-style sampled simulation: profile a
// workload cheaply on the Atomic CPU collecting basic-block vectors (BBVs)
// per fixed-instruction interval, cluster the intervals into phases with
// deterministic k-means, then co-simulate only one representative interval
// per phase on the expensive target model and extrapolate full-run
// statistics by cluster weight. This reproduces the methodology gem5
// exposes through --simpoint-profile/--simpoint-interval and the
// take/restore checkpoint flow the paper's experiments lean on.
package simpoint

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"gem5prof/internal/core"
	"gem5prof/internal/isa"
	"gem5prof/internal/sim"
)

// Interval is one fixed-instruction slice of the profiled execution. Tick
// fields are Atomic-model guest times (used only to place checkpoints for
// the Atomic fast-forward); instruction counts are model-invariant and
// drive all warmup/measurement budgets.
type Interval struct {
	// StartInsts/StartTick mark the interval's first instruction.
	StartInsts uint64
	StartTick  sim.Tick
	// WarmInsts/WarmTick mark the warmup point WarmupInsts before the
	// interval starts — where the sampled runner places its checkpoint so
	// microarchitectural state re-warms before measurement. Zero for the
	// first interval (a fresh run needs no checkpoint).
	WarmInsts uint64
	WarmTick  sim.Tick
	// EndInsts/EndTick mark one past the interval's last instruction.
	EndInsts uint64
	EndTick  sim.Tick
	// Vec is the interval's dimension-reduced, frequency-normalized BBV.
	Vec []float64
}

// Insts returns the interval's instruction count (the tail interval may be
// shorter than the configured length).
func (iv Interval) Insts() uint64 { return iv.EndInsts - iv.StartInsts }

// Profile is the BBV profile of one complete workload execution.
type Profile struct {
	Intervals  []Interval
	TotalInsts uint64
	TotalTicks sim.Tick
	ExitCode   int
}

// bbvBuilder accumulates basic-block vectors from the commit hook. A basic
// block is identified by its leader PC: a new block starts after any
// control-flow or system instruction, or whenever the committed PC is not
// the sequential successor of the previous one (traps, interrupts).
type bbvBuilder struct {
	sys      *sim.System
	interval uint64
	warmup   uint64
	dims     int

	n        uint64 // committed instructions so far
	lastPC   uint32
	newBlock bool
	leader   uint32
	counts   map[uint32]uint64

	nextWarm  uint64
	nextEnd   uint64
	warmMark  Interval // WarmInsts/WarmTick staged for the next interval
	cur       Interval
	intervals []Interval
}

func newBBVBuilder(sys *sim.System, interval, warmup uint64, dims int) *bbvBuilder {
	return &bbvBuilder{
		sys: sys, interval: interval, warmup: warmup, dims: dims,
		counts:   make(map[uint32]uint64),
		nextWarm: interval - warmup,
		nextEnd:  interval,
	}
}

func (b *bbvBuilder) onCommit(pc uint32, in isa.Inst) {
	if b.n == 0 || b.newBlock || pc != b.lastPC+4 {
		b.leader = pc
	}
	b.newBlock = in.IsControl() || in.IsSystem()
	b.lastPC = pc
	b.counts[b.leader]++
	b.n++
	if b.n == b.nextWarm {
		b.warmMark = Interval{WarmInsts: b.n, WarmTick: b.sys.Now()}
		b.nextWarm += b.interval
	}
	if b.n == b.nextEnd {
		b.close()
		b.nextEnd += b.interval
	}
}

// close finishes the current interval at the present commit point and
// starts the next one.
func (b *bbvBuilder) close() {
	iv := b.cur
	iv.EndInsts = b.n
	iv.EndTick = b.sys.Now()
	iv.Vec = project(b.counts, b.dims)
	b.intervals = append(b.intervals, iv)
	b.cur = Interval{
		StartInsts: b.n, StartTick: b.sys.Now(),
		WarmInsts: b.warmMark.WarmInsts, WarmTick: b.warmMark.WarmTick,
	}
	b.counts = make(map[uint32]uint64)
}

// finish flushes a partial tail interval after the workload exits.
func (b *bbvBuilder) finish() []Interval {
	if b.n > b.cur.StartInsts {
		b.close()
	}
	return b.intervals
}

// project reduces a basic-block count map to a dims-dimensional vector via
// a deterministic pseudo-random projection: each block leader contributes
// its execution frequency along a direction derived by hashing (leader,
// dimension). Leaders are visited in sorted order so the float summation
// is identical on every run and host (same non-commutativity discipline as
// the stat extrapolation).
func project(counts map[uint32]uint64, dims int) []float64 {
	leaders := make([]uint32, 0, len(counts))
	//lint:deterministic keys are sorted before use
	for pc := range counts {
		leaders = append(leaders, pc)
	}
	sort.Slice(leaders, func(i, j int) bool { return leaders[i] < leaders[j] })
	var total uint64
	for _, pc := range leaders {
		total += counts[pc]
	}
	vec := make([]float64, dims)
	if total == 0 {
		return vec
	}
	for _, pc := range leaders {
		w := float64(counts[pc]) / float64(total)
		for d := 0; d < dims; d++ {
			vec[d] += w * projCoeff(pc, d)
		}
	}
	return vec
}

// projCoeff returns the deterministic projection coefficient in [-1, 1)
// for one (block leader, dimension) pair.
func projCoeff(pc uint32, d int) float64 {
	h := fnv.New64a()
	var b [12]byte
	binary.LittleEndian.PutUint32(b[:4], pc)
	binary.LittleEndian.PutUint64(b[4:], uint64(d))
	h.Write(b[:])
	return float64(int64(h.Sum64())) / float64(uint64(1)<<63)
}

// buildProfile runs the workload to completion on the Atomic CPU (the
// cheap model — this is the "fast" pass of fast-forward sampling) with the
// BBV hook attached, slicing execution into interval-sized pieces.
func buildProfile(gc core.GuestConfig, interval, warmup uint64, dims int) (*Profile, error) {
	gc = gc.Normalized()
	gc.CPU = core.Atomic
	gc.ExecTrace = nil
	g, err := core.BuildGuest(gc, sim.NewNopTracer())
	if err != nil {
		return nil, err
	}
	b := newBBVBuilder(g.Sys, interval, warmup, dims)
	for _, c := range g.CPUs {
		c.Core().SetCommitHook(b.onCommit)
	}
	res, err := g.Run()
	for _, c := range g.CPUs {
		c.Core().SetCommitHook(nil)
	}
	if err != nil {
		return nil, fmt.Errorf("simpoint: profile run: %w", err)
	}
	ivs := b.finish()
	if len(ivs) == 0 {
		return nil, fmt.Errorf("simpoint: workload committed no instructions")
	}
	return &Profile{
		Intervals:  ivs,
		TotalInsts: b.n,
		TotalTicks: res.SimTicks,
		ExitCode:   res.ExitCode,
	}, nil
}
