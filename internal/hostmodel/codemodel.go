// Package hostmodel implements the host code model: it maps the guest
// simulator's execution (function calls, data touches) onto a synthetic
// host-level instruction/branch/data stream that a host micro-architecture
// model consumes online.
//
// The model captures the properties of gem5-as-an-application that the
// reproduced paper identifies as decisive: a very large instruction
// footprint spread over thousands of functions, deep call chains with
// virtual (indirect) dispatch, little code reuse, and data traffic
// dominated by simulator metadata plus the guest memory image.
package hostmodel

import (
	"fmt"
	"hash/fnv"

	"gem5prof/internal/sim"
)

// Sink consumes the synthetic host micro-event stream. It is implemented by
// uarch.Machine and by test doubles.
type Sink interface {
	// FetchBlock models sequential execution of code at addr: bytes of
	// machine code decoding to uops micro-ops.
	FetchBlock(addr uint64, bytes uint32, uops uint32)
	// Branch models one executed branch at pc.
	Branch(pc, target uint64, taken, indirect bool)
	// Data models one data access.
	Data(addr uint64, size uint32, write bool)
}

// Profiler observes function-level execution (implemented by
// profiler.Profiler); may be nil.
type Profiler interface {
	// Enter is called when fn starts executing, Leave when it returns.
	Enter(fn sim.FuncID)
	Leave(fn sim.FuncID)
}

// Config parameterizes the code model.
type Config struct {
	// TextBase is the virtual address of the simulator's code segment.
	TextBase uint64
	// TextSlots and SlotBytes define the code arena: functions are placed
	// bit-reversed across TextSlots slots of SlotBytes each, modeling how
	// a gem5-sized binary scatters a dynamic path across a huge text
	// segment (the root of the paper's iTLB findings). TextSlots must be a
	// power of two.
	TextSlots int
	SlotBytes uint64
	// HeapBase is where AllocData regions start; HeapPoolBytes is the
	// allocator-churn pool the simulator walks while building packets and
	// events.
	HeapBase      uint64
	HeapPoolBytes uint64
	// StackBase is the host stack region (hot).
	StackBase uint64
	// SizeFactor scales every function's code size (0.93 models the
	// paper's -O3 build shrinking the binary; 1.0 is the default build).
	// Static shrinkage mostly reduces the footprint; the dynamic uop count
	// moves far less (dead code elimination does not run), which is why
	// the paper's -O3 gains are only ~1%.
	SizeFactor float64
	// DynFactor scales dynamic uops independently of SizeFactor; 0 derives
	// it as 1 - (1-SizeFactor)/4.
	DynFactor float64
	// CalleeFanout is how many synthetic helper callees a primary function
	// owns (accessors, std:: internals, packet plumbing). The paper's
	// Fig. 15 function counts are reached through these.
	CalleeFanout int
	// CalleesPerCall is how many helpers one invocation actually calls.
	CalleesPerCall int
	// BytesPerUop converts code bytes to decoded micro-ops.
	BytesPerUop float64
}

// DefaultConfig mirrors a gem5.opt-like binary layout: a 128MB text arena
// and tens of MB of allocator-churned heap.
func DefaultConfig() Config {
	return Config{
		TextBase:       0x0000_0000_0040_0000,
		TextSlots:      8192,
		SlotBytes:      16 << 10,
		HeapBase:       0x0000_7f00_0000_0000,
		HeapPoolBytes:  24 << 20,
		StackBase:      0x0000_7fff_ff00_0000,
		SizeFactor:     1.0,
		CalleeFanout:   12,
		CalleesPerCall: 2,
		BytesPerUop:    3.6,
	}
}

// traceStep is one step of a function's dynamic execution path.
type traceStep struct {
	addr  uint64
	bytes uint32
	uops  uint32
	// branch terminating the block (brTarget==0 means fallthrough only).
	brTarget   uint64
	brTakenPat uint8 // taken pattern bits, rotated per call
	indirect   bool
	// callee index to invoke after this block (-1 = none).
	callee int
}

// fnMeta is the static model of one registered function.
type fnMeta struct {
	name    string
	addr    uint64
	size    uint32
	flags   sim.FuncFlags
	traces  [3][]traceStep
	callees []sim.FuncID
	rotor   uint32 // per-call trace/pattern rotation
	// polymorphic marks virtual functions whose indirect call sites flip
	// between targets (distinct dynamic types), defeating the BTB.
	polymorphic bool
	isHelper    bool
}

// CodeModel implements sim.Tracer, translating simulator activity into host
// micro-events.
type CodeModel struct {
	cfg      Config
	sink     Sink
	prof     Profiler
	funcs    []fnMeta
	slotBits uint
	nextSlot int
	overflow uint64 // sequential placement once the arena is full
	heapEnd  uint64

	calls     uint64
	statCalls uint64 // calls retired before the last ResetRun
	stackHot  uint64
	heapPool  uint64
	callsByFn []uint64

	// curShard and shardRecs are pure diagnostics fed by SetShardHint (the
	// sharded engine's trace replayer announces which shard produced the
	// records that follow). They are deliberately kept out of the modeled
	// statistics: shard attribution depends on the shard count, and every
	// modeled outcome must be bit-identical at all of them.
	curShard  int
	shardRecs []uint64

	// byName dedups repeat registrations: successive guest builds feeding
	// one persistent code model (core.IntervalRunner) declare the same
	// component functions again, and those must resolve to the first
	// build's layout — re-placing them would diverge the text segment from
	// the address map already handed to the machine's TLBs.
	byName map[string]regRecord
}

// regRecord remembers one primary registration for dedup.
type regRecord struct {
	id        sim.FuncID
	codeBytes int
	flags     sim.FuncFlags
}

// New builds a code model feeding sink.
func New(cfg Config, sink Sink) *CodeModel {
	if cfg.SizeFactor <= 0 {
		cfg.SizeFactor = 1.0
	}
	if cfg.DynFactor <= 0 {
		cfg.DynFactor = 1 - (1-cfg.SizeFactor)/4
	}
	if cfg.BytesPerUop <= 0 {
		cfg.BytesPerUop = 3.6
	}
	if cfg.TextSlots <= 0 {
		cfg.TextSlots = 8192
	}
	if cfg.TextSlots&(cfg.TextSlots-1) != 0 {
		panic("hostmodel: TextSlots must be a power of two")
	}
	if cfg.SlotBytes == 0 {
		cfg.SlotBytes = 16 << 10
	}
	if cfg.HeapPoolBytes == 0 {
		cfg.HeapPoolBytes = 48 << 20
	}
	m := &CodeModel{
		cfg:      cfg,
		sink:     sink,
		stackHot: cfg.StackBase,
		byName:   map[string]regRecord{},
	}
	for s := cfg.TextSlots; s > 1; s >>= 1 {
		m.slotBits++
	}
	m.overflow = cfg.TextBase + uint64(cfg.TextSlots)*cfg.SlotBytes
	// The allocator pool sits at the start of the heap, followed by a 1MB
	// reservation for the resident SimObject set.
	m.heapPool = cfg.HeapBase
	m.heapEnd = cfg.HeapBase + cfg.HeapPoolBytes + (1 << 20)
	// FuncID 0 is the reserved scheduler entry; register a placeholder so
	// indexes line up.
	m.funcs = append(m.funcs, fnMeta{name: "<dispatch>"})
	m.callsByFn = append(m.callsByFn, 0)
	return m
}

// placeFunc returns the address for the next function of size bytes,
// scattering sequential registrations across the arena by bit-reversing the
// slot index (a deterministic stand-in for link-order dispersion).
func (m *CodeModel) placeFunc(size uint32) uint64 {
	// Stagger start offsets within the slot so that slot-aligned placement
	// does not alias every function onto the same cache sets.
	stagger := (uint64(m.nextSlot) * 2654435761 >> 7) & (m.cfg.SlotBytes/2 - 1) &^ 63
	if uint64(size)+stagger > m.cfg.SlotBytes || m.nextSlot >= m.cfg.TextSlots {
		addr := m.overflow
		m.overflow += uint64(size+15) &^ 15
		return addr
	}
	slot := bitReverse(uint64(m.nextSlot), m.slotBits)
	m.nextSlot++
	return m.cfg.TextBase + slot*m.cfg.SlotBytes + stagger
}

func bitReverse(v uint64, bits uint) uint64 {
	var out uint64
	for i := uint(0); i < bits; i++ {
		out = out<<1 | (v>>i)&1
	}
	return out
}

// SetProfiler attaches a function profiler.
func (m *CodeModel) SetProfiler(p Profiler) { m.prof = p }

// TextBytes returns the total size of the synthetic text segment.
func (m *CodeModel) TextBytes() uint64 { return m.textEnd() - m.cfg.TextBase }

// TextRange returns the [base,end) of the text segment for page mapping.
func (m *CodeModel) TextRange() (uint64, uint64) { return m.cfg.TextBase, m.textEnd() }

// textEnd covers the whole arena: bit-reversed placement scatters even the
// first registrations across it.
func (m *CodeModel) textEnd() uint64 {
	arenaEnd := m.cfg.TextBase + uint64(m.cfg.TextSlots)*m.cfg.SlotBytes
	if m.overflow > arenaEnd {
		return m.overflow
	}
	return arenaEnd
}

// NumFuncs returns the number of registered functions (including helpers).
func (m *CodeModel) NumFuncs() int { return len(m.funcs) }

// FuncName returns the name of fn.
func (m *CodeModel) FuncName(fn sim.FuncID) string {
	if int(fn) >= len(m.funcs) {
		return fmt.Sprintf("fn%d", fn)
	}
	return m.funcs[fn].name
}

// Calls returns the total function invocations replayed, across ResetRun
// boundaries.
func (m *CodeModel) Calls() uint64 { return m.statCalls + m.calls }

// CalledFuncs returns how many distinct functions have executed at least
// once (the paper's Fig. 15 metric).
func (m *CodeModel) CalledFuncs() int {
	n := 0
	for _, c := range m.callsByFn {
		if c > 0 {
			n++
		}
	}
	return n
}

// RegisterFunc implements sim.Tracer. Registering an identical (name,
// size, flags) triple again returns the original function: a simulator
// binary has one copy of each function no matter how many guest systems
// trace into it.
func (m *CodeModel) RegisterFunc(name string, codeBytes int, flags sim.FuncFlags) sim.FuncID {
	if prev, ok := m.byName[name]; ok && prev.codeBytes == codeBytes && prev.flags == flags {
		return prev.id
	}
	id := m.registerOne(name, codeBytes, flags, false)
	if _, ok := m.byName[name]; !ok {
		m.byName[name] = regRecord{id: id, codeBytes: codeBytes, flags: flags}
	}
	// Primary functions bring a retinue of helper callees: parameter
	// checks, accessors, allocator shims — the reason gem5 touches
	// thousands of distinct functions per simulation.
	fanout := m.cfg.CalleeFanout
	if flags&sim.FuncLeaf != 0 {
		fanout = 0
	}
	h := hashName(name)
	for i := 0; i < fanout; i++ {
		// Helpers scale with their owner: big dispatch hubs (pipeline
		// stages) fan work out into substantial subroutines, which is what
		// flattens gem5's hot-function CDF for detailed CPU models.
		helperSize := 90 + codeBytes/20 + int(h>>uint(i%24)&0x7F)
		// Helpers are direct-called leaves: no indirect branches.
		hflags := (flags &^ (sim.FuncVirtual | sim.FuncPoly)) | sim.FuncLeaf
		helper := m.registerOne(fmt.Sprintf("%s::helper%d", name, i), helperSize, hflags, true)
		m.funcs[id].callees = append(m.funcs[id].callees, helper)
	}
	return id
}

func (m *CodeModel) registerOne(name string, codeBytes int, flags sim.FuncFlags, helper bool) sim.FuncID {
	size := uint32(float64(codeBytes) * m.cfg.SizeFactor)
	if size < 32 {
		size = 32
	}
	id := sim.FuncID(len(m.funcs))
	addr := m.placeFunc(size)
	f := fnMeta{
		name:        name,
		addr:        addr,
		size:        size,
		flags:       flags,
		polymorphic: flags&sim.FuncPoly != 0,
		isHelper:    helper,
	}
	f.buildTraces(hashName(name), m.cfg.DynFactor/m.cfg.SizeFactor)
	m.funcs = append(m.funcs, f)
	m.callsByFn = append(m.callsByFn, 0)
	return id
}

// buildTraces precomputes three alternative dynamic paths through the
// function: basic blocks of 16-48 bytes, each ending in a branch, some with
// a call site. uopScale decouples dynamic work from static size (the -O3
// model).
func (f *fnMeta) buildTraces(seed uint64, uopScale float64) {
	for t := range f.traces {
		rng := seed*2654435761 + uint64(t)*0x9e3779b97f4a7c15
		frac := 0.12 + 0.05*float64(t)
		if f.size > 3000 && !f.isHelper {
			// Dispatch hubs mostly branch out to callees; their own body
			// contributes proportionally less.
			frac *= 0.55
		}
		covered := uint32(float64(f.size) * frac)
		// Blocks are at least 16 bytes, so covered/16+1 bounds the step
		// count: one allocation per trace instead of append regrowth
		// (which dominated session-construction allocations).
		f.traces[t] = make([]traceStep, 0, covered/16+1)
		pos := uint64(0)
		callSlot := 0
		for covered > 0 {
			rng = rng*6364136223846793005 + 1442695040888963407
			blk := 16 + uint32(rng>>33&0x1F) // 16..47 bytes
			if blk > covered {
				blk = covered
			}
			covered -= blk
			step := traceStep{
				addr:  f.addr + pos,
				bytes: blk,
				uops:  1 + uint32(float64(blk)/3.6*uopScale),
				// Branch to a point further into the function (or the next
				// block when not taken).
				brTarget: f.addr + pos + uint64(blk) + uint64(rng>>40&0xFF),
				indirect: false,
				callee:   -1,
			}
			// Most compiled branches are strongly biased; a minority carry
			// data-dependent patterns (gem5's measured mispredict rate on
			// the Xeon is only ~0.2%).
			switch {
			case rng>>13&0x3F < 62: // ~97%: always one way
				if rng>>9&1 == 1 {
					step.brTakenPat = 0xFF
				}
			case rng>>13&0x3F < 63: // ~1.5%: short repeating pattern
				step.brTakenPat = 0x66
			default: // ~1.5%: noisy
				step.brTakenPat = uint8(rng >> 17)
			}
			// Virtual-dispatch functions issue indirect branches.
			if f.flags&sim.FuncVirtual != 0 && pos == 0 {
				step.indirect = true
			}
			if len(f.traces[t]) > 0 && len(f.traces[t])%3 == 0 {
				step.callee = callSlot
				callSlot++
			}
			f.traces[t] = append(f.traces[t], step)
			// Dynamic paths jump around the function body.
			pos = (pos + uint64(blk) + (rng >> 21 & 0x3F)) % uint64(f.size)
		}
		if len(f.traces[t]) == 0 {
			f.traces[t] = append(f.traces[t], traceStep{
				addr: f.addr, bytes: 32, uops: 9, callee: -1,
			})
		}
	}
}

func hashName(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Call implements sim.Tracer: replay one invocation of fn into the sink.
func (m *CodeModel) Call(fn sim.FuncID) {
	if int(fn) >= len(m.funcs) {
		return
	}
	m.shardRec()
	m.call(fn, 0)
}

// SetShardHint implements sim.ShardHinter: records that follow were produced
// by the given shard. Diagnostic only — it must not (and does not) influence
// the replay fed to the sink.
func (m *CodeModel) SetShardHint(shard int) {
	if shard < 0 {
		shard = 0
	}
	m.curShard = shard
}

// shardRec attributes one incoming trace record to the current shard.
func (m *CodeModel) shardRec() {
	for len(m.shardRecs) <= m.curShard {
		m.shardRecs = append(m.shardRecs, 0)
	}
	m.shardRecs[m.curShard]++
}

// ShardRecords returns how many trace records each shard produced so far
// (index = shard; a serial run attributes everything to shard 0). The counts
// describe where simulator work ran, not anything the model's outputs depend
// on.
func (m *CodeModel) ShardRecords() []uint64 {
	out := make([]uint64, len(m.shardRecs))
	copy(out, m.shardRecs)
	return out
}

const maxCallDepth = 2

func (m *CodeModel) call(fn sim.FuncID, depth int) {
	f := &m.funcs[fn]
	m.calls++
	m.callsByFn[fn]++
	if m.prof != nil {
		m.prof.Enter(fn)
	}
	f.rotor++
	tr := f.traces[f.rotor%3]
	pat := f.rotor

	// Call overhead: push/pop on the (hot) host stack.
	m.sink.Data(m.stackHot-uint64(depth)*128, 16, true)
	if depth == 0 && m.calls%3 == 0 {
		// Simulator object state (SimObject fields, stat storage): a
		// ~96KB resident set that fits an M1-class L1D but thrashes a
		// 32KB one — a large part of the paper's Fig. 8 dCache contrast.
		off := (m.calls / 3 * 72) % (96 << 10) &^ 7
		m.sink.Data(m.heapPool+m.cfg.HeapPoolBytes+off, 8, m.calls%9 == 0)
	}
	if depth == 0 {
		// Allocator/object churn. Most simulator objects recycle through a
		// small hot arena (allocator freelists); a minority of accesses
		// chase long-lived state scattered across the big heap, which
		// keeps the dTLB and LLC lightly pressured without meaningful DRAM
		// bandwidth (paper Fig. 9).
		if m.calls%8 == 0 {
			off := (m.calls / 8 * 16) % (256 << 10)
			m.sink.Data(m.heapPool+off, 16, m.calls%24 == 0)
		}
		if m.calls%96 == 0 {
			off := (m.calls * 2654435761) % m.cfg.HeapPoolBytes &^ 7
			m.sink.Data(m.heapPool+off, 8, m.calls%128 == 0)
		}
	}

	calleeBudget := m.cfg.CalleesPerCall
	if f.size > 3000 {
		// Dispatch hubs call more subroutines per invocation.
		calleeBudget += int(f.size) / 3000
	}
	for i := range tr {
		st := &tr[i]
		m.sink.FetchBlock(st.addr, st.bytes, st.uops)
		if st.brTarget != 0 {
			taken := st.brTakenPat>>(pat%8)&1 == 1
			target := st.brTarget
			if st.indirect && f.polymorphic {
				// Megamorphic call site: rotate across dynamic types.
				target += uint64(pat&3) * 192
			}
			m.sink.Branch(st.addr+uint64(st.bytes)-2, target, taken, st.indirect)
		}
		if st.callee >= 0 && calleeBudget > 0 && depth < maxCallDepth && len(f.callees) > 0 {
			// Rotate through the helper set so successive calls touch
			// different helpers (low temporal reuse, like gem5).
			calleeBudget--
			// Helper selection rotates slowly: within a window of calls the
			// same helpers run (good iCache reuse, like a steady simulation
			// loop), while over a whole run every helper gets exercised.
			idx := (int(pat/8) + st.callee*7) % len(f.callees)
			m.call(f.callees[idx], depth+1)
		}
	}
	m.sink.Data(m.stackHot-uint64(depth)*128, 16, false)
	if m.prof != nil {
		m.prof.Leave(fn)
	}
}

// ResetRun rewinds the model's dynamic replay state — the call counter
// and per-function trace rotors that drive heap/branch access patterns,
// and the heap cursor that AllocData advances — to their initial values,
// while keeping every registered function and the text layout intact. A
// fresh guest build after ResetRun therefore replays the identical
// component allocations and access sequences of the first build, staying
// inside the address map already handed to the machine. core's
// IntervalRunner calls this between the measurement windows that share
// one code model; cumulative statistics (Calls, CalledFuncs) are
// deliberately not reset.
func (m *CodeModel) ResetRun() {
	m.statCalls += m.calls
	m.calls = 0
	m.heapEnd = m.cfg.HeapBase + m.cfg.HeapPoolBytes + (1 << 20)
	for i := range m.funcs {
		m.funcs[i].rotor = 0
	}
}

// Data implements sim.Tracer.
func (m *CodeModel) Data(addr uint64, size uint32, write bool) {
	m.shardRec()
	m.sink.Data(addr, size, write)
}

// AllocData implements sim.Tracer.
func (m *CodeModel) AllocData(name string, bytes uint64) uint64 {
	base := m.heapEnd
	m.heapEnd += (bytes + 63) &^ 63
	return base
}

// HeapRange returns the allocated heap span for page mapping.
func (m *CodeModel) HeapRange() (uint64, uint64) { return m.cfg.HeapBase, m.heapEnd }

var _ sim.Tracer = (*CodeModel)(nil)
