package hostmodel

import "gem5prof/internal/ring"

// RingSink is the producer half of the pipelined co-simulation: a Sink
// that encodes the micro-event stream into compact ring.Records, batched
// into the ring's in-place slots (no per-record allocation), for a
// consumer goroutine (uarch.Consumer) to drain in strict FIFO order.
//
// RingSink is not safe for concurrent use — it belongs to the single
// producer goroutine, exactly like the CodeModel that feeds it.
type RingSink struct {
	r   *ring.Ring
	cur *ring.Batch // reserved, partially filled slot; nil when none
	// down latches once the consumer aborts: every later event is dropped
	// so the producer can wind down instead of wedging on a dead ring.
	down bool
}

// NewRingSink returns a Sink encoding into r.
func NewRingSink(r *ring.Ring) *RingSink { return &RingSink{r: r} }

// put appends one record, reserving a fresh batch on demand and publishing
// full batches immediately.
func (s *RingSink) put(rec ring.Record) {
	if s.down {
		return
	}
	if s.cur == nil {
		if s.cur = s.r.Reserve(); s.cur == nil {
			s.down = true
			return
		}
	}
	if s.cur.Append(rec) {
		s.r.Commit()
		s.cur = nil
	}
}

// FetchBlock implements Sink.
func (s *RingSink) FetchBlock(addr uint64, bytes uint32, uops uint32) {
	s.put(ring.Record{Op: ring.OpFetch, Addr: addr, A: bytes, B: uops})
}

// Branch implements Sink.
func (s *RingSink) Branch(pc, target uint64, taken, indirect bool) {
	var flags uint8
	if taken {
		flags |= ring.FlagTaken
	}
	if indirect {
		flags |= ring.FlagIndirect
	}
	s.put(ring.Record{Op: ring.OpBranch, Addr: pc, Arg: target, Flags: flags})
}

// Data implements Sink.
func (s *RingSink) Data(addr uint64, size uint32, write bool) {
	var flags uint8
	if write {
		flags |= ring.FlagWrite
	}
	s.put(ring.Record{Op: ring.OpData, Addr: addr, A: size, Flags: flags})
}

// Flush publishes the current partially filled batch, if any.
func (s *RingSink) Flush() {
	if s.cur != nil {
		s.r.Commit()
		s.cur = nil
	}
}

// Close flushes and closes the ring: the consumer drains what was
// published and then its drain loop exits. Close is the first half of the
// flush-on-report barrier (the second half is waiting for the consumer).
func (s *RingSink) Close() {
	s.Flush()
	s.r.Close()
}

// Err surfaces a consumer-side abort, if any.
func (s *RingSink) Err() error { return s.r.Err() }

var _ Sink = (*RingSink)(nil)
