package hostmodel

import (
	"fmt"
	"testing"

	"gem5prof/internal/sim"
)

// recordSink counts micro-events.
type recordSink struct {
	fetches  int
	branches int
	datas    int
	uops     uint64
	indirect int
	minAddr  uint64
	maxAddr  uint64
}

func (s *recordSink) FetchBlock(addr uint64, bytes uint32, uops uint32) {
	s.fetches++
	s.uops += uint64(uops)
	if s.minAddr == 0 || addr < s.minAddr {
		s.minAddr = addr
	}
	if addr > s.maxAddr {
		s.maxAddr = addr
	}
}

func (s *recordSink) Branch(pc, target uint64, taken, indirect bool) {
	s.branches++
	if indirect {
		s.indirect++
	}
}

func (s *recordSink) Data(addr uint64, size uint32, write bool) { s.datas++ }

func TestRegisterAndCall(t *testing.T) {
	sink := &recordSink{}
	m := New(DefaultConfig(), sink)
	fn := m.RegisterFunc("Cache::access", 1400, sim.FuncVirtual)
	if fn == 0 {
		t.Fatal("zero id")
	}
	// Primary + helpers registered.
	if m.NumFuncs() < DefaultConfig().CalleeFanout {
		t.Fatalf("numFuncs = %d", m.NumFuncs())
	}
	m.Call(fn)
	if sink.fetches == 0 || sink.uops == 0 {
		t.Fatal("no fetch events emitted")
	}
	if sink.datas == 0 {
		t.Fatal("no stack/heap traffic")
	}
	if m.Calls() == 0 || m.CalledFuncs() == 0 {
		t.Fatal("call accounting empty")
	}
	if m.FuncName(fn) != "Cache::access" {
		t.Fatalf("name = %q", m.FuncName(fn))
	}
	if m.FuncName(sim.FuncID(60000)) == "" {
		t.Fatal("out-of-range name empty")
	}
}

func TestVirtualFunctionsEmitIndirectBranches(t *testing.T) {
	sink := &recordSink{}
	m := New(DefaultConfig(), sink)
	v := m.RegisterFunc("Virt::f", 2000, sim.FuncVirtual)
	d := m.RegisterFunc("Direct::f", 2000, 0)
	m.Call(v)
	withVirtual := sink.indirect
	if withVirtual == 0 {
		t.Fatal("virtual function emitted no indirect branch")
	}
	sink.indirect = 0
	m.Call(d)
	if sink.indirect != 0 {
		t.Fatal("direct function emitted indirect branches")
	}
}

func TestLayoutScattersAndDoesNotOverlap(t *testing.T) {
	m := New(DefaultConfig(), &recordSink{})
	type span struct{ lo, hi uint64 }
	var spans []span
	for i := 0; i < 200; i++ {
		id := m.registerOne(fmt.Sprintf("f%d", i), 1000+i*17, 0, false)
		f := &m.funcs[id]
		spans = append(spans, span{f.addr, f.addr + uint64(f.size)})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Fatalf("functions %d and %d overlap: %+v %+v", i, j, spans[i], spans[j])
			}
		}
	}
	// Consecutive registrations must land far apart (bit-reversed slots).
	adjacent := 0
	for i := 1; i < len(spans); i++ {
		d := spans[i].lo - spans[i-1].lo
		if d < (64 << 10) {
			adjacent++
		}
	}
	if adjacent > len(spans)/4 {
		t.Fatalf("layout too clustered: %d adjacent of %d", adjacent, len(spans))
	}
	lo, hi := m.TextRange()
	for _, s := range spans {
		if s.lo < lo || s.hi > hi {
			t.Fatal("function outside TextRange")
		}
	}
	if m.TextBytes() != hi-lo {
		t.Fatal("TextBytes inconsistent")
	}
}

func TestArenaOverflowFallsBackSequential(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TextSlots = 8
	cfg.SlotBytes = 8 << 10
	m := New(cfg, &recordSink{})
	for i := 0; i < 40; i++ {
		m.registerOne(fmt.Sprintf("f%d", i), 500, 0, false)
	}
	lo, hi := m.TextRange()
	if hi <= lo+uint64(cfg.TextSlots)*cfg.SlotBytes {
		t.Fatal("overflow area not used")
	}
}

func TestDeterministicStream(t *testing.T) {
	gen := func() (int, uint64) {
		sink := &recordSink{}
		m := New(DefaultConfig(), sink)
		a := m.RegisterFunc("a", 1500, sim.FuncVirtual)
		b := m.RegisterFunc("b", 900, sim.FuncHot)
		for i := 0; i < 100; i++ {
			m.Call(a)
			m.Call(b)
		}
		return sink.fetches, sink.uops
	}
	f1, u1 := gen()
	f2, u2 := gen()
	if f1 != f2 || u1 != u2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", f1, u1, f2, u2)
	}
}

func TestSizeFactorShrinksWork(t *testing.T) {
	count := func(factor float64) uint64 {
		cfg := DefaultConfig()
		cfg.SizeFactor = factor
		sink := &recordSink{}
		m := New(cfg, sink)
		fn := m.RegisterFunc("f", 4000, 0)
		for i := 0; i < 50; i++ {
			m.Call(fn)
		}
		return sink.uops
	}
	if o3, base := count(0.8), count(1.0); o3 >= base {
		t.Fatalf("smaller binary should execute fewer uops: %d vs %d", o3, base)
	}
}

func TestAllocData(t *testing.T) {
	m := New(DefaultConfig(), &recordSink{})
	a := m.AllocData("x", 100)
	b := m.AllocData("y", 100)
	if b <= a {
		t.Fatal("allocations not advancing")
	}
	lo, hi := m.HeapRange()
	if a < lo || b >= hi+200 {
		t.Fatal("allocation outside heap range")
	}
}

func TestCallRotatesHelpers(t *testing.T) {
	sink := &recordSink{}
	m := New(DefaultConfig(), sink)
	fn := m.RegisterFunc("parent", 3000, sim.FuncVirtual)
	// Helper selection rotates once per 8 calls; a few hundred calls must
	// exercise the whole retinue.
	for i := 0; i < 400; i++ {
		m.Call(fn)
	}
	// Over many calls, all helpers should eventually execute.
	called := m.CalledFuncs()
	want := 1 + DefaultConfig().CalleeFanout
	if called < want {
		t.Fatalf("called %d distinct funcs, want >= %d", called, want)
	}
}

func TestProfilerHook(t *testing.T) {
	sink := &recordSink{}
	m := New(DefaultConfig(), sink)
	var enters, leaves int
	m.SetProfiler(profFns{
		enter: func(fn sim.FuncID) { enters++ },
		leave: func(fn sim.FuncID) { leaves++ },
	})
	fn := m.RegisterFunc("f", 2000, 0)
	m.Call(fn)
	if enters == 0 || enters != leaves {
		t.Fatalf("enter/leave = %d/%d", enters, leaves)
	}
}

type profFns struct {
	enter func(sim.FuncID)
	leave func(sim.FuncID)
}

func (p profFns) Enter(fn sim.FuncID) { p.enter(fn) }
func (p profFns) Leave(fn sim.FuncID) { p.leave(fn) }

func TestBadSlotConfigPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TextSlots = 100 // not a power of two
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(cfg, &recordSink{})
}

func TestBitReverse(t *testing.T) {
	if bitReverse(1, 4) != 8 || bitReverse(8, 4) != 1 || bitReverse(0b1011, 4) != 0b1101 {
		t.Fatal("bitReverse wrong")
	}
	// Property: involution.
	for v := uint64(0); v < 256; v++ {
		if bitReverse(bitReverse(v, 8), 8) != v {
			t.Fatalf("not an involution at %d", v)
		}
	}
}

func TestShardHintAttribution(t *testing.T) {
	sink := &recordSink{}
	m := New(DefaultConfig(), sink)
	fn := m.RegisterFunc("EventQueue::serviceOne", 480, sim.FuncHot)

	// Attribution must follow the most recent hint, default to shard 0, and
	// never change what reaches the sink.
	m.Call(fn)
	m.SetShardHint(1)
	m.Data(0x1000, 8, false)
	m.Call(fn)
	m.SetShardHint(0)
	m.Call(fn)
	m.SetShardHint(-3) // defensive clamp
	m.Data(0x1008, 8, true)

	recs := m.ShardRecords()
	if len(recs) != 2 || recs[0] != 3 || recs[1] != 2 {
		t.Fatalf("ShardRecords() = %v, want [3 2]", recs)
	}
	if sink.datas == 0 || sink.fetches == 0 {
		t.Fatalf("sink starved: %+v", sink)
	}

	// The accessor returns a copy, not the live counters.
	recs[0] = 999
	if again := m.ShardRecords(); again[0] == 999 {
		t.Fatal("ShardRecords must copy")
	}
}
