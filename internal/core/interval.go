package core

import (
	"fmt"

	"gem5prof/internal/isa"
	"gem5prof/internal/sim"
)

// InstBudgetReason is the exit reason reported when an instruction-budgeted
// run (RunInsts, RunIntervalSession) stops the guest because its budget is
// exhausted rather than because the workload exited.
const InstBudgetReason = "instruction budget reached"

// hookInsts installs one shared commit hook across all cores that counts
// committed instructions, invokes mark(i) when the count reaches marks[i]
// (marks must be strictly increasing and positive), and requests a
// simulation exit when it reaches total. It returns a teardown function
// that removes the hooks and reports the final count. The countdown is
// shared across cores: the budget is a whole-guest instruction total,
// matching how Checkpoint.Insts and the BBV profiler count.
func (g *GuestSystem) hookInsts(marks []uint64, total uint64, mark func(i int)) func() uint64 {
	executed := uint64(0)
	next := 0
	hook := func(_ uint32, _ isa.Inst) {
		executed++
		if next < len(marks) && executed == marks[next] {
			mark(next)
			next++
		}
		if executed == total {
			g.Sys.RequestExit(InstBudgetReason, 0)
		}
	}
	for _, c := range g.CPUs {
		c.Core().SetCommitHook(hook)
	}
	return func() uint64 {
		for _, c := range g.CPUs {
			c.Core().SetCommitHook(nil)
		}
		return executed
	}
}

// RunInsts services events until budget further instructions have committed
// across all cores, or the workload exits, whichever comes first. The
// result's ExitReason distinguishes the two (InstBudgetReason vs. the
// workload's own reason).
//
// The stop is abrupt: it fires from the commit hook of the budget's last
// instruction, before the owning CPU model has advanced its PC or
// rescheduled its next event, so the guest must NOT be resumed with further
// Run calls afterwards. Statistics and memory state up to and including
// that instruction are valid; that is all an interval measurement needs.
func (g *GuestSystem) RunInsts(budget uint64) (*GuestResult, error) {
	if budget == 0 {
		return nil, fmt.Errorf("core: instruction budget must be positive")
	}
	done := g.hookInsts(nil, budget, nil)
	defer done()
	return g.finish(g.Sys.Run(sim.MaxTick, 0))
}

// IntervalResult is one measured interval of a sampled co-simulation.
type IntervalResult struct {
	// Session carries the full session state (guest result, host report)
	// for callers that want more than the headline numbers. Its Host
	// report covers warmup and the measured window together — cumulative
	// across windows when the IntervalRunner's machine is reused; Seconds
	// below covers this window alone.
	Session *SessionResult
	// Seconds is the modeled host time spent inside the measured window
	// (warmup excluded).
	Seconds float64
	// Insts is the number of instructions committed inside the window.
	Insts uint64
	// SubSeconds and SubInsts split the window into up to three
	// consecutive sub-windows (thirds of the budget). A window restored
	// from a checkpoint starts with cold microarchitectural state, so its
	// early sub-windows run slower than its late ones; samplers use the
	// decay across the sub-windows to extrapolate that transient away
	// (see internal/simpoint). Sums equal Seconds and Insts exactly.
	SubSeconds []float64
	SubInsts   []uint64
	// Completed reports whether the full budget was consumed; false means
	// the workload exited first, which is normal for a tail interval.
	Completed bool
}

// IntervalRunner measures successive interval sessions of one sweep cell
// on a single persistent host machine. Each Run builds a fresh guest
// (restored from its checkpoint), but the modeled machine — caches, TLBs,
// predictors, clock — carries over from the previous Run, the way it would
// across the same instructions of one long full run. Without this, every
// measured window pays the machine's full cold start, which no affordable
// per-window warmup can absorb. Runs are serial by construction; a runner
// must not be shared across goroutines.
type IntervalRunner struct {
	cfg  SessionConfig
	prev *cosim
}

// NewIntervalRunner returns a runner for one session configuration. The
// host machine is created on the first Run and reused afterwards.
func NewIntervalRunner(cfg SessionConfig) *IntervalRunner {
	return &IntervalRunner{cfg: cfg}
}

// RunIntervalSession co-simulates one slice of a guest on a fresh host
// machine: it builds the session (restoring from ck when non-nil, else
// running from the start), executes warmup instructions to re-warm
// microarchitectural state that a checkpoint does not carry, then measures
// the modeled host time of the next budget instructions. This is the
// SimPoint leg of the paper's fast-forward→restore flow: cfg.Guest.CPU
// selects the detailed target model, while the checkpoint itself was taken
// by the Atomic model. Samplers measuring several windows of the same cell
// should use one IntervalRunner instead so the machine stays warm across
// windows.
func RunIntervalSession(cfg SessionConfig, ck *Checkpoint, warmup, budget uint64) (*IntervalResult, error) {
	return NewIntervalRunner(cfg).Run(ck, warmup, budget)
}

// Run measures one interval window; see RunIntervalSession.
//
// Interval sessions always run serially (never pipelined, never sharded):
// the warmup→measure boundary reads the host machine's clock mid-run, which
// neither a decoupled ring consumer nor the sharded engine's deferred trace
// replay can serve — the same constraint that forces Profile sessions
// serial. The function profiler is rejected outright because its reports
// would mix warmup with measurement.
func (r *IntervalRunner) Run(ck *Checkpoint, warmup, budget uint64) (*IntervalResult, error) {
	cfg := r.cfg
	cfg.Guest.Shards = ShardSerial
	if cfg.Profile {
		return nil, fmt.Errorf("core: interval sessions do not support the function profiler")
	}
	if budget == 0 {
		return nil, fmt.Errorf("core: interval budget must be positive")
	}
	total := warmup + budget
	if total < budget {
		return nil, fmt.Errorf("core: warmup %d + budget %d overflows", warmup, budget)
	}
	cs, err := newCosimOn(r.prev, cfg, false, func(tr sim.Tracer) (*GuestSystem, error) {
		if ck == nil {
			return BuildGuest(cfg.Guest, tr)
		}
		return RestoreGuest(cfg.Guest, ck, tr)
	})
	if err != nil {
		return nil, err
	}
	r.prev = cs
	g := cs.guest

	// Clock-read boundaries: the warmup→measure edge, plus interior marks
	// at thirds of the budget that delimit the sub-windows.
	bounds := []uint64{warmup}
	if sub := budget / 3; sub > 0 {
		bounds = append(bounds, warmup+sub, warmup+2*sub)
	}
	times := make([]float64, len(bounds))
	reached := 0
	markAt := func(i int) {
		times[i] = cs.machine.TimeSeconds()
		reached = i + 1
	}
	hookBounds, off := bounds, 0
	if warmup == 0 { // executed never equals 0, so pre-mark the first edge
		markAt(0)
		hookBounds, off = bounds[1:], 1
	}
	done := g.hookInsts(hookBounds, total, func(i int) { markAt(i + off) })
	gres, err := g.finish(g.Sys.Run(sim.MaxTick, 0))
	executed := done()
	if err != nil {
		return nil, err
	}
	if reached == 0 || executed <= warmup {
		return nil, fmt.Errorf("core: workload exited after %d instructions, before the measured window (warmup %d)",
			executed, warmup)
	}
	end := cs.machine.TimeSeconds()
	var subSecs []float64
	var subInsts []uint64
	for i := 1; i < reached; i++ {
		subSecs = append(subSecs, times[i]-times[i-1])
		subInsts = append(subInsts, bounds[i]-bounds[i-1])
	}
	if executed > bounds[reached-1] { // close the final (possibly partial) sub-window
		subSecs = append(subSecs, end-times[reached-1])
		subInsts = append(subInsts, executed-bounds[reached-1])
	}
	return &IntervalResult{
		Session:    cs.result(gres),
		Seconds:    end - times[0],
		Insts:      executed - warmup,
		SubSeconds: subSecs,
		SubInsts:   subInsts,
		Completed:  gres.ExitReason == InstBudgetReason,
	}, nil
}
