package core_test

import (
	"encoding/base64"
	"fmt"
	"strings"
	"testing"

	"gem5prof/internal/core"
	"gem5prof/internal/platform"
	"gem5prof/internal/sim"
)

// TestRunForOverflowClamp pins the satellite bugfix: a delta that would
// wrap the tick counter (including a negative duration cast to Tick) must
// clamp to MaxTick and run the workload out, not schedule into the past.
func TestRunForOverflowClamp(t *testing.T) {
	g, err := core.BuildGuest(core.GuestConfig{
		CPU: core.Atomic, Mode: core.SE, Workload: "sieve", Scale: 1024,
	}, sim.NewNopTracer())
	if err != nil {
		t.Fatal(err)
	}
	// Advance a little so Now() > 0, making Now()+MaxTick wrap.
	if res := g.RunFor(sim.Microsecond); res.Status != sim.ExitLimit {
		t.Fatalf("warm-up run ended early: %+v", res)
	}
	res := g.RunFor(sim.MaxTick) // would wrap unguarded
	if res.Status != sim.ExitRequested {
		t.Fatalf("clamped fast-forward did not run the workload out: %+v", res)
	}
}

// TestRunForNegativeDelta covers the same clamp for a negative duration
// forced into the unsigned Tick type.
func TestRunForNegativeDelta(t *testing.T) {
	g, err := core.BuildGuest(core.GuestConfig{
		CPU: core.Atomic, Mode: core.SE, Workload: "sieve", Scale: 1024,
	}, sim.NewNopTracer())
	if err != nil {
		t.Fatal(err)
	}
	if res := g.RunFor(sim.Microsecond); res.Status != sim.ExitLimit {
		t.Fatalf("warm-up run ended early: %+v", res)
	}
	five := 5 * sim.Microsecond
	neg := -five // -5µs wrapped through the unsigned Tick type
	res := g.RunFor(neg)
	if res.Status != sim.ExitRequested {
		t.Fatalf("negative delta not clamped: %+v", res)
	}
}

// TestRunInsts checks the instruction-budgeted run: it stops after exactly
// the budgeted instruction count with InstBudgetReason, and a budget beyond
// the workload's length falls through to a normal exit.
func TestRunInsts(t *testing.T) {
	g, err := core.BuildGuest(core.GuestConfig{
		CPU: core.Atomic, Mode: core.SE, Workload: "sieve", Scale: 1024,
	}, sim.NewNopTracer())
	if err != nil {
		t.Fatal(err)
	}
	const budget = 500
	res, err := g.RunInsts(budget)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitReason != core.InstBudgetReason {
		t.Fatalf("exit reason %q, want %q", res.ExitReason, core.InstBudgetReason)
	}
	if res.Insts != budget {
		t.Fatalf("committed %d instructions, want exactly %d", res.Insts, budget)
	}
	if !res.ChecksumOK {
		t.Fatal("budget stop must not be reported as a checksum failure")
	}

	// A budget larger than the whole workload: normal exit wins.
	g2, err := core.BuildGuest(core.GuestConfig{
		CPU: core.Atomic, Mode: core.SE, Workload: "sieve", Scale: 1024,
	}, sim.NewNopTracer())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := g2.RunInsts(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ExitReason == core.InstBudgetReason {
		t.Fatal("oversized budget fired before workload exit")
	}
	if !res2.ChecksumOK {
		t.Fatalf("workload checksum failed under budgeted run: %+v", res2)
	}

	if _, err := g.RunInsts(0); err == nil {
		t.Fatal("zero budget accepted")
	}
}

// TestRunIntervalSession exercises the sampled-simulation leg end to end:
// fresh-start and checkpoint-restored intervals must both measure a
// positive modeled time over exactly the budgeted window.
func TestRunIntervalSession(t *testing.T) {
	sc := core.SessionConfig{
		Guest: core.GuestConfig{CPU: core.Timing, Mode: core.SE, Workload: "sieve", Scale: 1024},
		Host:  platform.IntelXeon(),
	}
	iv, err := core.RunIntervalSession(sc, nil, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Insts != 1000 || !iv.Completed {
		t.Fatalf("measured %d instructions (completed=%v), want 1000", iv.Insts, iv.Completed)
	}
	if iv.Seconds <= 0 {
		t.Fatalf("measured window has non-positive modeled time: %g", iv.Seconds)
	}
	if iv.Session == nil || iv.Session.Guest.ExitReason != core.InstBudgetReason {
		t.Fatalf("unexpected session state: %+v", iv.Session)
	}

	// Restored variant: checkpoint with Atomic, measure under Timing.
	data, _ := ffAndCheckpoint(t, "sieve", 1024, 2*sim.Microsecond)
	ck, err := core.DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	iv2, err := core.RunIntervalSession(sc, ck, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if iv2.Insts != 1000 || iv2.Seconds <= 0 {
		t.Fatalf("restored interval: insts=%d seconds=%g", iv2.Insts, iv2.Seconds)
	}

	// Determinism: the same interval twice is bit-identical.
	iv3, err := core.RunIntervalSession(sc, ck, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if iv3.Seconds != iv2.Seconds || iv3.Insts != iv2.Insts {
		t.Fatalf("interval not deterministic: %g/%d vs %g/%d",
			iv2.Seconds, iv2.Insts, iv3.Seconds, iv3.Insts)
	}

	// The profiler reads are incompatible with interval measurement.
	bad := sc
	bad.Profile = true
	if _, err := core.RunIntervalSession(bad, nil, 0, 100); err == nil {
		t.Fatal("profiled interval session accepted")
	}
}

// TestRunIntervalSessionExitDuringWarmup: a warmup longer than the whole
// workload must surface as an error, not a zero-length measurement.
func TestRunIntervalSessionExitDuringWarmup(t *testing.T) {
	sc := core.SessionConfig{
		Guest: core.GuestConfig{CPU: core.Atomic, Mode: core.SE, Workload: "sieve", Scale: 1024},
		Host:  platform.IntelXeon(),
	}
	if _, err := core.RunIntervalSession(sc, nil, 1<<40, 100); err == nil {
		t.Fatal("workload exit inside warmup not reported")
	}
}

// validCheckpointJSON returns one real encoded checkpoint for mutation.
func validCheckpointJSON(t *testing.T) []byte {
	t.Helper()
	data, _ := ffAndCheckpoint(t, "sieve", 1024, 2*sim.Microsecond)
	return data
}

// TestCheckpointDecodeFailsClosed is the satellite-bugfix table: every
// class of corruption must produce a clear error from DecodeCheckpoint —
// never a panic and never a checkpoint that would restore partial state.
func TestCheckpointDecodeFailsClosed(t *testing.T) {
	valid := validCheckpointJSON(t)
	if _, err := core.DecodeCheckpoint(valid); err != nil {
		t.Fatalf("control: valid checkpoint rejected: %v", err)
	}

	page := base64.StdEncoding.EncodeToString(make([]byte, 4096))
	shortPage := base64.StdEncoding.EncodeToString(make([]byte, 100))
	doc := func(version int, size uint32, key, payload string) string {
		return fmt.Sprintf(`{"version":%d,"tick":1,"insts":1,"arch":[{"pc":4096}],"mem":{"size":%d,"pages":{%q:%q}}}`,
			version, size, key, payload)
	}
	cases := []struct {
		name string
		data string
	}{
		{"truncated JSON", string(valid[:len(valid)/2])},
		{"empty", ""},
		{"future version", doc(core.CheckpointVersion+1, 1<<20, "0", page)},
		{"zero version", doc(0, 1<<20, "0", page)},
		{"zero memory size", doc(core.CheckpointVersion, 0, "0", page)},
		{"page outside memory", doc(core.CheckpointVersion, 1<<20, "999999", page)},
		{"short page payload", doc(core.CheckpointVersion, 1<<20, "0", shortPage)},
		{"bad base64 payload", doc(core.CheckpointVersion, 1<<20, "0", "!!not-base64!!")},
		{"non-numeric page key", doc(core.CheckpointVersion, 1<<20, "abc", page)},
		{"trailing-garbage page key", doc(core.CheckpointVersion, 1<<20, "7abc", page)},
		{"non-canonical page key", doc(core.CheckpointVersion, 1<<20, "07", page)},
		{"no arch state", `{"version":1,"mem":{"size":1048576,"pages":{}}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ck, err := core.DecodeCheckpoint([]byte(tc.data))
			if err == nil {
				t.Fatalf("corruption accepted, got checkpoint %+v", ck)
			}
			if strings.TrimSpace(err.Error()) == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

// TestCheckpointSeedInvariance pins the property the checkpoint cache's key
// derivation relies on: the guest never consumes the system RNG, so two
// runs differing only in Seed take byte-identical checkpoints. If a future
// guest component starts drawing randomness, this fails and the cache key
// must learn a Seed component.
func TestCheckpointSeedInvariance(t *testing.T) {
	take := func(seed int64) []byte {
		g, err := core.BuildGuest(core.GuestConfig{
			CPU: core.Atomic, Mode: core.SE, Workload: "sieve", Scale: 1024, Seed: seed,
		}, sim.NewNopTracer())
		if err != nil {
			t.Fatal(err)
		}
		if res := g.RunFor(2 * sim.Microsecond); res.Status != sim.ExitLimit {
			t.Fatalf("fast-forward ended early: %+v", res)
		}
		ck, err := g.TakeCheckpoint()
		if err != nil {
			t.Fatal(err)
		}
		data, err := ck.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if string(take(7)) != string(take(99991)) {
		t.Fatal("checkpoint depends on Seed; ckptcache.Key must include it")
	}
}

// FuzzCheckpointDecode feeds arbitrary bytes (seeded with a real checkpoint
// and targeted mutations) to DecodeCheckpoint: it must never panic, and
// anything it accepts must re-encode and restore without error.
func FuzzCheckpointDecode(f *testing.F) {
	g, err := core.BuildGuest(core.GuestConfig{
		CPU: core.Atomic, Mode: core.SE, Workload: "sieve", Scale: 1024,
	}, sim.NewNopTracer())
	if err != nil {
		f.Fatal(err)
	}
	if res := g.RunFor(2 * sim.Microsecond); res.Status != sim.ExitLimit {
		f.Fatalf("fast-forward ended early: %+v", res)
	}
	ck, err := g.TakeCheckpoint()
	if err != nil {
		f.Fatal(err)
	}
	valid, err := ck.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(strings.Replace(string(valid), `"version": 1`, `"version": 2`, 1)))
	f.Add([]byte(`{"version":1,"arch":[{}],"mem":{"size":4096,"pages":{"0":"AAAA"}}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := core.DecodeCheckpoint(data)
		if err != nil {
			return // rejected cleanly: fine
		}
		// Accepted documents must be fully usable.
		if _, err := ck.Encode(); err != nil {
			t.Fatalf("accepted checkpoint fails to re-encode: %v", err)
		}
		if _, err := core.RestoreGuest(core.GuestConfig{
			CPU: core.Atomic, NumCPUs: len(ck.Arch), Mode: ck.Mode,
			Workload: ck.Workload, Scale: ck.Scale,
		}, ck, sim.NewNopTracer()); err != nil {
			// Restore may reject for config reasons (e.g. unknown
			// workload), but must not panic.
			t.Logf("restore rejected accepted checkpoint: %v", err)
		}
	})
}
