package core

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"io"
	"runtime"
	"runtime/pprof"
	"sync/atomic"

	"gem5prof/internal/hostmodel"
	"gem5prof/internal/platform"
	"gem5prof/internal/profiler"
	"gem5prof/internal/ring"
	"gem5prof/internal/sim"
	"gem5prof/internal/uarch"
)

// PipelineMode selects whether a co-simulation runs its two stages — the
// guest simulator + hostmodel trace synthesis (producer) and the
// uarch.Machine (consumer) — on one goroutine or two, decoupled by a
// batched SPSC ring (internal/ring). Strict FIFO delivery makes the
// modeled statistics bit-identical either way (see DESIGN.md §10), so the
// mode is purely a performance knob.
type PipelineMode int

// Pipeline modes.
const (
	// PipelineAuto (the zero value) defers to the process-wide default set
	// by SetDefaultPipeline; if that too is auto, the pipeline is on
	// exactly when GOMAXPROCS > 1.
	PipelineAuto PipelineMode = iota
	// PipelineOff forces the serial path (the pre-pipeline behaviour).
	PipelineOff
	// PipelineOn forces the pipelined path even on a single-processor
	// runtime (useful for differential tests; on one core it only costs).
	PipelineOn
)

// String renders the mode as its flag spelling.
func (m PipelineMode) String() string {
	switch m {
	case PipelineOff:
		return "off"
	case PipelineOn:
		return "on"
	default:
		return "auto"
	}
}

// ParsePipelineMode parses "auto", "on" or "off".
func ParsePipelineMode(s string) (PipelineMode, bool) {
	switch s {
	case "auto", "":
		return PipelineAuto, true
	case "on", "true", "1":
		return PipelineOn, true
	case "off", "false", "0":
		return PipelineOff, true
	}
	return PipelineAuto, false
}

// defaultPipeline is the process-wide mode that PipelineAuto sessions
// resolve against (cmd/experiments' -pipeline flag sets it once at
// startup). Atomic so concurrent sessions may read it freely.
var defaultPipeline atomic.Int32

// SetDefaultPipeline sets the process-wide pipeline mode used by sessions
// whose SessionConfig.Pipeline is PipelineAuto.
func SetDefaultPipeline(m PipelineMode) { defaultPipeline.Store(int32(m)) }

// DefaultPipeline returns the process-wide pipeline mode.
func DefaultPipeline() PipelineMode { return PipelineMode(defaultPipeline.Load()) }

// enabled resolves the mode for one session. The function profiler reads
// the machine's running cycle count synchronously from the producer side
// (profiler.Enter/Leave → Machine.Cycles), which a decoupled consumer
// cannot serve, so Profile always forces the serial path.
func (m PipelineMode) enabled(profile bool) bool {
	if profile {
		return false
	}
	if m == PipelineAuto {
		m = DefaultPipeline()
	}
	switch m {
	case PipelineOn:
		return true
	case PipelineOff:
		return false
	default:
		return runtime.GOMAXPROCS(0) > 1
	}
}

// ringSlots is the per-session ring capacity in batches. 8 slots of 16 KiB
// batches bound the producer's lead at 128 KiB of trace — enough slack
// that neither side parks in steady state, small enough to stay resident
// in a shared L2/LLC while crossing cores.
const ringSlots = 8

// SessionConfig describes one co-simulation: a guest g5 simulation executed
// on a modeled host platform — the paper's unit of measurement.
type SessionConfig struct {
	Guest GuestConfig
	// Host is the host machine model (see internal/platform).
	Host uarch.Config
	// Scenario applies co-run/SMT contention (Fig. 1).
	Scenario platform.Scenario
	// HostCode overrides the code-model parameters; zero value = defaults.
	// SizeFactor < 1 models the -O3 build (Fig. 12).
	HostCode hostmodel.Config
	// Profile attaches the function profiler (Fig. 15). It adds overhead,
	// so it is off by default. Profiling forces PipelineOff: the profiler
	// reads the host machine's cycle counter synchronously at every
	// function entry/exit.
	Profile bool
	// Pipeline selects serial or producer/consumer execution of the
	// co-simulation (bit-identical statistics either way). The zero value
	// is PipelineAuto.
	Pipeline PipelineMode
}

// guestConfig returns the session's guest config with session-level
// constraints applied: profiling forces the single-queue path because the
// profiler reads the host machine's cycle counter synchronously at every
// function entry/exit, which the sharded engine's deferred trace replay
// cannot serve. (It forces PipelineOff for the same reason.)
func (c SessionConfig) guestConfig() GuestConfig {
	g := c.Guest
	if c.Profile {
		g.Shards = ShardSerial
	}
	return g
}

// SessionResult is one completed co-simulation.
type SessionResult struct {
	// Guest is the guest-side result (simulated ticks, instructions).
	Guest *GuestResult
	// Host is the host machine's profile; Host.TimeSeconds is the paper's
	// "simulation time (host seconds)" metric.
	Host uarch.Report
	// Prof is the function profiler when SessionConfig.Profile was set.
	Prof *profiler.Profiler
	// Code summarizes the synthetic simulator binary.
	TextBytes   uint64
	NumFuncs    int
	CalledFuncs int
}

// SimSeconds returns the modeled host wall-clock of the simulation.
func (r *SessionResult) SimSeconds() float64 { return r.Host.TimeSeconds }

// DeriveSeed returns the deterministic RNG seed for one independent run
// (cell) of a named experiment. Seeds are a pure function of the experiment
// id and the cell's position in the experiment's sequential cell order —
// never of a shared RNG or of run scheduling — so a parallel harness draws
// exactly the seeds a sequential one would, cell for cell.
func DeriveSeed(experiment string, cell int) int64 {
	h := fnv.New64a()
	io.WriteString(h, experiment)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(cell))
	h.Write(b[:])
	s := int64(h.Sum64() >> 1) // keep it positive; Seed==0 means "default"
	if s == 0 {
		s = 1
	}
	return s
}

// cosim bundles the host side of one co-simulation — the modeled machine,
// the synthetic simulator binary, and (when pipelined) the ring stages —
// together with the guest it traces. RunSession and RunIntervalSession
// share this assembly; only how (and how much of) the guest runs differs.
type cosim struct {
	cfg       SessionConfig
	machine   *uarch.Machine
	cm        *hostmodel.CodeModel
	prof      *profiler.Profiler
	enc       *hostmodel.RingSink
	cons      *uarch.Consumer
	guest     *GuestSystem
	pipelined bool
}

// newCosim builds the host machine and code model, constructs the guest via
// build (BuildGuest for fresh runs, RestoreGuest for checkpoint resumes),
// and hands the finished address map to the machine's TLBs.
func newCosim(cfg SessionConfig, pipelined bool, build func(tr sim.Tracer) (*GuestSystem, error)) (*cosim, error) {
	return newCosimOn(nil, cfg, pipelined, build)
}

// newCosimOn is newCosim with an optional previous cosim whose host side —
// the modeled machine and the code model — is reused. IntervalRunner uses
// this so successive interval measurements of one cell keep the machine's
// caches, TLBs and predictors warm (the way one long full run would) and
// skip re-laying-out the synthetic simulator binary. The reused guest
// build re-registers its component functions, which the code model dedups
// back to the first build's layout, so the address map already handed to
// the machine's TLBs stays correct; re-adding the same regions would push
// lookups onto the slow overlapping-region path, hence the fresh guard.
// Reuse implies the serial path (prev != nil requires pipelined false).
func newCosimOn(prev *cosim, cfg SessionConfig, pipelined bool, build func(tr sim.Tracer) (*GuestSystem, error)) (*cosim, error) {
	if prev != nil {
		cs := &cosim{cfg: cfg, machine: prev.machine, cm: prev.cm}
		// Rewind the replay state so this build's allocations and access
		// patterns land on the first build's addresses — the ones the
		// machine's map covers and its warm caches hold.
		cs.cm.ResetRun()
		g, err := build(cs.cm)
		if err != nil {
			return nil, err
		}
		cs.guest = g
		return cs, nil
	}
	machine := uarch.NewMachine(platform.Contend(cfg.Host, cfg.Scenario))
	cs := &cosim{cfg: cfg, machine: machine, pipelined: pipelined}

	// Pipelined mode interposes a batch encoder between the code model and
	// the machine; the machine then consumes the identical event stream on
	// its own goroutine (uarch.Consumer), started only after the address
	// map below is final.
	var sink hostmodel.Sink = machine
	if pipelined {
		rg := ring.New(ringSlots)
		cs.enc = hostmodel.NewRingSink(rg)
		cs.cons = uarch.NewConsumer(machine, rg)
		sink = cs.enc
	}

	hc := cfg.HostCode
	if hc.TextBase == 0 {
		def := hostmodel.DefaultConfig()
		if hc.SizeFactor > 0 {
			def.SizeFactor = hc.SizeFactor
		}
		hc = def
	}
	cs.cm = hostmodel.New(hc, sink)

	if cfg.Profile {
		cs.prof = profiler.New(machine, cs.cm)
		cs.cm.SetProfiler(cs.prof)
	}

	g, err := build(cs.cm)
	if err != nil {
		return nil, err
	}
	cs.guest = g

	// The simulator binary is now fully laid out; hand the address map to
	// the host machine so its TLBs know the page backing.
	tb, te := cs.cm.TextRange()
	machine.MapText(tb, te)
	hb, he := cs.cm.HeapRange()
	machine.MapData(hb, he)
	machine.MapData(hc.StackBase-(1<<20), hc.StackBase+(1<<12))
	return cs, nil
}

// run executes the guest through the session's pipeline arrangement.
// runGuest is the producer body (normally cs.guest.Run).
func (cs *cosim) run(runGuest func() (*GuestResult, error)) (*GuestResult, error) {
	if !cs.pipelined {
		return runGuest()
	}
	cs.cons.Start()
	var gres *GuestResult
	var err error
	// Label the producer stage so -cpuprofile output splits guest
	// simulation + trace synthesis from the consumer's uarch time.
	pprof.Do(context.Background(),
		pprof.Labels("cosim-stage", "guest-producer"),
		func(context.Context) { gres, err = runGuest() })
	// Flush-on-report barrier: publish the partial tail batch, close
	// the ring, and wait for the consumer to apply everything — on the
	// error path too, so no goroutine outlives its session.
	cs.enc.Close()
	cs.cons.Wait()
	if err == nil {
		err = cs.enc.Err()
	}
	return gres, err
}

// result assembles the SessionResult for a completed run.
func (cs *cosim) result(gres *GuestResult) *SessionResult {
	return &SessionResult{
		Guest:       gres,
		Host:        cs.machine.Report(),
		Prof:        cs.prof,
		TextBytes:   cs.cm.TextBytes(),
		NumFuncs:    cs.cm.NumFuncs(),
		CalledFuncs: cs.cm.CalledFuncs(),
	}
}

// RunSession builds and runs one co-simulation.
//
// RunSession is safe for concurrent use: every call constructs its own guest
// system, host machine, and code model, and the package-level state it reads
// (workload registry, platform tables, SPEC profiles) is immutable after
// init. The parallel experiment runner relies on this. In pipelined mode
// each session adds one consumer goroutine for the duration of its run, and
// a sharded guest adds one shard worker plus one trace replayer, so a
// harness admitting Jobs concurrent sessions runs at most
// Jobs x (1 + pipeline + 2 x sharded) simulation goroutines.
func RunSession(cfg SessionConfig) (*SessionResult, error) {
	gcfg := cfg.guestConfig()
	cs, err := newCosim(cfg, cfg.Pipeline.enabled(cfg.Profile),
		func(tr sim.Tracer) (*GuestSystem, error) { return BuildGuest(gcfg, tr) })
	if err != nil {
		return nil, err
	}
	gres, err := cs.run(cs.guest.Run)
	if err != nil {
		return nil, err
	}
	return cs.result(gres), nil
}
