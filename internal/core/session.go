package core

import (
	"encoding/binary"
	"hash/fnv"
	"io"

	"gem5prof/internal/hostmodel"
	"gem5prof/internal/platform"
	"gem5prof/internal/profiler"
	"gem5prof/internal/uarch"
)

// SessionConfig describes one co-simulation: a guest g5 simulation executed
// on a modeled host platform — the paper's unit of measurement.
type SessionConfig struct {
	Guest GuestConfig
	// Host is the host machine model (see internal/platform).
	Host uarch.Config
	// Scenario applies co-run/SMT contention (Fig. 1).
	Scenario platform.Scenario
	// HostCode overrides the code-model parameters; zero value = defaults.
	// SizeFactor < 1 models the -O3 build (Fig. 12).
	HostCode hostmodel.Config
	// Profile attaches the function profiler (Fig. 15). It adds overhead,
	// so it is off by default.
	Profile bool
}

// SessionResult is one completed co-simulation.
type SessionResult struct {
	// Guest is the guest-side result (simulated ticks, instructions).
	Guest *GuestResult
	// Host is the host machine's profile; Host.TimeSeconds is the paper's
	// "simulation time (host seconds)" metric.
	Host uarch.Report
	// Prof is the function profiler when SessionConfig.Profile was set.
	Prof *profiler.Profiler
	// Code summarizes the synthetic simulator binary.
	TextBytes   uint64
	NumFuncs    int
	CalledFuncs int
}

// SimSeconds returns the modeled host wall-clock of the simulation.
func (r *SessionResult) SimSeconds() float64 { return r.Host.TimeSeconds }

// DeriveSeed returns the deterministic RNG seed for one independent run
// (cell) of a named experiment. Seeds are a pure function of the experiment
// id and the cell's position in the experiment's sequential cell order —
// never of a shared RNG or of run scheduling — so a parallel harness draws
// exactly the seeds a sequential one would, cell for cell.
func DeriveSeed(experiment string, cell int) int64 {
	h := fnv.New64a()
	io.WriteString(h, experiment)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(cell))
	h.Write(b[:])
	s := int64(h.Sum64() >> 1) // keep it positive; Seed==0 means "default"
	if s == 0 {
		s = 1
	}
	return s
}

// RunSession builds and runs one co-simulation.
//
// RunSession is safe for concurrent use: every call constructs its own guest
// system, host machine, and code model, and the package-level state it reads
// (workload registry, platform tables, SPEC profiles) is immutable after
// init. The parallel experiment runner relies on this.
func RunSession(cfg SessionConfig) (*SessionResult, error) {
	host := platform.Contend(cfg.Host, cfg.Scenario)
	machine := uarch.NewMachine(host)

	hc := cfg.HostCode
	if hc.TextBase == 0 {
		def := hostmodel.DefaultConfig()
		if hc.SizeFactor > 0 {
			def.SizeFactor = hc.SizeFactor
		}
		hc = def
	}
	cm := hostmodel.New(hc, machine)

	var prof *profiler.Profiler
	if cfg.Profile {
		prof = profiler.New(machine, cm)
		cm.SetProfiler(prof)
	}

	guest, err := BuildGuest(cfg.Guest, cm)
	if err != nil {
		return nil, err
	}

	// The simulator binary is now fully laid out; hand the address map to
	// the host machine so its TLBs know the page backing.
	tb, te := cm.TextRange()
	machine.MapText(tb, te)
	hb, he := cm.HeapRange()
	machine.MapData(hb, he)
	machine.MapData(hc.StackBase-(1<<20), hc.StackBase+(1<<12))

	gres, err := guest.Run()
	if err != nil {
		return nil, err
	}
	return &SessionResult{
		Guest:       gres,
		Host:        machine.Report(),
		Prof:        prof,
		TextBytes:   cm.TextBytes(),
		NumFuncs:    cm.NumFuncs(),
		CalledFuncs: cm.CalledFuncs(),
	}, nil
}
