package core

import (
	"hash/fnv"
	"runtime"
	"strings"
	"testing"

	"gem5prof/internal/platform"
	"gem5prof/internal/sim"
)

// TestShardedDifferential is the sharded engine's end-to-end correctness
// proof at the session level: for every cell, co-simulations at shard counts
// 1, 2, and 4 (the layout clamps to 2) must produce a stat dump — host
// report, code-model summary, guest registry — byte-identical to the serial
// path's, and the committed-instruction exec trace must hash identically.
// The conservative quantum barrier never lets a shard fire an event another
// shard could still affect, and cross-shard posts carry their serial
// provenance stamps, so the merged event order is the single-queue order
// exactly.
func TestShardedDifferential(t *testing.T) {
	cells := []struct {
		name     string
		guest    GuestConfig
		pipeline PipelineMode
	}{
		{"o3_xeon", GuestConfig{CPU: O3, Mode: SE, Workload: "water_nsquared", Scale: 24}, PipelineOff},
		{"timing_calendar", GuestConfig{CPU: Timing, Mode: SE, Workload: "dedup", Scale: 2048, CalendarQueue: true}, PipelineOff},
		{"fs_boot_pipelined", GuestConfig{CPU: Timing, Mode: FS, BootExit: true, BootKBs: 8}, PipelineOn},
		// Multicore cells drive the per-core layouts: shards=4 un-fuses two
		// core domains (cpu+dev|cpu1|cpu2|mem) and shards=5 all of a quad's
		// (the shards=2 leg keeps every core fused, and shards > the
		// partitionable domains clamps — both still byte-identical).
		{"timing_mt_dual", GuestConfig{CPU: Timing, Mode: SE, Workload: "histogram_mt", Scale: 2048, Cores: 2}, PipelineOff},
		{"timing_mt_quad", GuestConfig{CPU: Timing, Mode: SE, Workload: "dotprod_mt", Scale: 2048, Cores: 4}, PipelineOff},
	}
	host := platform.IntelXeon()
	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			run := func(shards ShardMode) (string, uint64) {
				g := c.guest
				g.Shards = shards
				var trace strings.Builder
				g.ExecTrace = &trace
				res, err := RunSession(SessionConfig{Guest: g, Host: host, Pipeline: c.pipeline})
				if err != nil {
					t.Fatalf("shards %v: %v", shards, err)
				}
				h := fnv.New64a()
				h.Write([]byte(trace.String()))
				return fullStatDump(res), h.Sum64()
			}
			serial, serialTrace := run(ShardSerial)
			if !strings.Contains(serial, "stat ") || strings.Contains(serial, "Cycles:0") {
				t.Fatalf("suspiciously empty stat dump:\n%.400s", serial)
			}
			for _, shards := range []ShardMode{2, 4, 5} {
				dump, trace := run(shards)
				if dump != serial {
					t.Fatalf("stat dumps differ between serial and shards=%v:\n%s",
						shards, firstDiff(serial, dump))
				}
				if trace != serialTrace {
					t.Fatalf("exec trace hash differs between serial and shards=%v: %x vs %x",
						shards, serialTrace, trace)
				}
			}
		})
	}
}

// TestShardedHintReachesCodeModel checks the diagnostic plumbing: in a
// sharded co-simulation the trace replayer announces shard transitions to
// the code model (sim.ShardHinter), so the model attributes a nonzero share
// of its records to the memory shard.
func TestShardedHintReachesCodeModel(t *testing.T) {
	cfg := SessionConfig{
		Guest: GuestConfig{CPU: Timing, Workload: "sieve", Scale: 1024, Shards: 2},
		Host:  platform.IntelXeon(),
	}
	cs, err := newCosim(cfg, false, func(tr sim.Tracer) (*GuestSystem, error) {
		return BuildGuest(cfg.Guest, tr)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.run(cs.guest.Run); err != nil {
		t.Fatal(err)
	}
	recs := cs.cm.ShardRecords()
	if len(recs) < 2 || recs[1] == 0 {
		t.Fatalf("no records attributed to the memory shard: %v", recs)
	}
	if recs[0] == 0 {
		t.Fatalf("no records attributed to the cpu shard: %v", recs)
	}
}

// TestShardModeResolution pins the resolution rules: the Atomic CPU and
// IdealMemory force serial (no DRAM events to offload); explicit counts win
// over the process default; auto needs GOMAXPROCS >= 4; profiling forces
// serial at the session level.
func TestShardModeResolution(t *testing.T) {
	defer SetDefaultShards(ShardDefault)

	auto := 1
	if runtime.GOMAXPROCS(0) >= 4 {
		auto = 2
	}
	base := GuestConfig{CPU: Timing}.Normalized()
	cases := []struct {
		name string
		cfg  func() GuestConfig
		def  ShardMode
		want int
	}{
		{"default_off", func() GuestConfig { return base }, ShardDefault, 1},
		{"explicit_2", func() GuestConfig { g := base; g.Shards = 2; return g }, ShardDefault, 2},
		{"explicit_wins_over_default", func() GuestConfig { g := base; g.Shards = ShardSerial; return g }, 2, 1},
		{"default_fills_in", func() GuestConfig { return base }, 2, 2},
		{"auto", func() GuestConfig { g := base; g.Shards = ShardAuto; return g }, ShardDefault, auto},
		{"auto_via_default", func() GuestConfig { return base }, ShardAuto, auto},
		{"atomic_forces_serial", func() GuestConfig { g := base; g.CPU = Atomic; g.Shards = 2; return g }, ShardDefault, 1},
		{"ideal_memory_forces_serial", func() GuestConfig { g := base; g.IdealMemory = true; g.Shards = 2; return g }, ShardDefault, 1},
	}
	for _, c := range cases {
		SetDefaultShards(c.def)
		if got := resolveShards(c.cfg()); got != c.want {
			t.Errorf("%s: resolveShards = %d, want %d", c.name, got, c.want)
		}
	}

	SetDefaultShards(ShardDefault)
	prof := SessionConfig{
		Guest:   GuestConfig{CPU: Timing, Shards: 2},
		Profile: true,
	}
	if got := resolveShards(prof.guestConfig().Normalized()); got != 1 {
		t.Errorf("profiling session: resolveShards = %d, want 1", got)
	}
}

// TestShardParseMode pins the flag spellings.
func TestShardParseMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		mode ShardMode
		ok   bool
	}{
		{"auto", ShardAuto, true}, {"", ShardDefault, true},
		{"off", ShardSerial, true}, {"serial", ShardSerial, true},
		{"0", ShardSerial, true}, {"1", ShardSerial, true},
		{"2", 2, true}, {"4", 4, true},
		{"-3", ShardDefault, false}, {"bogus", ShardDefault, false},
	} {
		mode, ok := ParseShardMode(c.in)
		if mode != c.mode || ok != c.ok {
			t.Errorf("ParseShardMode(%q) = %v,%v want %v,%v", c.in, mode, ok, c.mode, c.ok)
		}
	}
	for _, m := range []ShardMode{ShardAuto, ShardSerial, 2} {
		back, ok := ParseShardMode(m.String())
		if !ok || back != m {
			t.Errorf("round-trip %v -> %q -> %v,%v", m, m.String(), back, ok)
		}
	}
}

// TestShardLayoutMatchesEngine pins core's layout mirror (ShardLayout, used
// for checkpoint cache keys) against the engine's own effective plan: the
// layout the guest logs at startup (sim.ShardInfo rendered through ShardLog)
// must equal what ShardLayout predicted for the same config, clamps and all.
func TestShardLayoutMatchesEngine(t *testing.T) {
	cells := []struct {
		cores  int
		shards ShardMode
	}{
		{1, 2}, {1, 8}, // single core: everything past the memory worker clamps
		{2, 2},         // fused multicore
		{2, 4}, {2, 8}, // per-core, clamped by core domains
		{4, 3}, {4, 5}, // partial and full per-core un-fusing
	}
	for _, c := range cells {
		g := GuestConfig{CPU: Timing, Mode: SE, Workload: "dotprod_mt", Scale: 64,
			Cores: c.cores, Shards: c.shards}
		var line string
		g.ShardLog = func(s string) { line = s }
		if _, err := RunGuest(g); err != nil {
			t.Fatalf("cores=%d shards=%v: %v", c.cores, c.shards, err)
		}
		i := strings.LastIndex(line, "): ")
		if i < 0 {
			t.Fatalf("cores=%d shards=%v: no layout in log line %q", c.cores, c.shards, line)
		}
		engine := line[i+len("): "):]
		if mirror := ShardLayout(g); engine != mirror {
			t.Errorf("cores=%d shards=%v: engine layout %q != ShardLayout %q",
				c.cores, c.shards, engine, mirror)
		}
	}

	// The serial path logs a fixed line and mirrors to "serial".
	g := GuestConfig{CPU: Timing, Mode: SE, Workload: "dotprod_mt", Scale: 64}
	var line string
	g.ShardLog = func(s string) { line = s }
	if _, err := RunGuest(g); err != nil {
		t.Fatal(err)
	}
	if line != "sharding: serial (single queue)" {
		t.Errorf("serial log line = %q", line)
	}
	if got := ShardLayout(g); got != "serial" {
		t.Errorf("serial mirror = %q", got)
	}
}

// TestShardLayout pins the layout strings the checkpoint cache keys embed.
func TestShardLayout(t *testing.T) {
	if got := ShardLayout(GuestConfig{CPU: Timing}); got != "serial" {
		t.Errorf("serial layout = %q", got)
	}
	if got := ShardLayout(GuestConfig{CPU: Timing, Shards: 2}); got != "cpu+dev|mem" {
		t.Errorf("sharded layout = %q", got)
	}
	// Atomic clamps to serial even when sharding is requested: the layout
	// string must reflect what actually runs, or cache keys would split.
	if got := ShardLayout(GuestConfig{CPU: Atomic, Shards: 2}); got != "serial" {
		t.Errorf("atomic layout = %q", got)
	}
}
