package core

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"gem5prof/internal/platform"
)

// fullStatDump renders every modeled statistic of a session at full float64
// precision: the complete host report struct (Top-Down cycle components,
// miss rates, occupancy, DRAM traffic — %v prints floats with the shortest
// round-trippable representation, so a single ULP of drift shows), the
// code-model summary, and the entire guest stats registry. Any divergence
// between two runs makes the dumps byte-unequal.
func fullStatDump(r *SessionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "host %+v\n", r.Host)
	fmt.Fprintf(&b, "code text=%d funcs=%d called=%d\n", r.TextBytes, r.NumFuncs, r.CalledFuncs)
	fmt.Fprintf(&b, "guest ticks=%d insts=%d exit=%d reason=%q events=%d checksum=%v\n",
		r.Guest.SimTicks, r.Guest.Insts, r.Guest.ExitCode, r.Guest.ExitReason,
		r.Guest.HostEvents, r.Guest.ChecksumOK)
	for _, name := range r.Guest.Stats.Names() {
		fmt.Fprintf(&b, "stat %s = %v\n", name, r.Guest.Stats.Get(name))
	}
	return b.String()
}

// TestPipelineDifferential is the tentpole's correctness proof: for every
// workload × host-config cell, the pipelined co-simulation (producer and
// consumer goroutines decoupled by the batch ring) must produce a stat dump
// byte-identical to the serial path's. Strict FIFO delivery through the
// SPSC ring means the Machine sees the exact event sequence the serial sink
// saw, so every float lands bit-for-bit in the same place.
func TestPipelineDifferential(t *testing.T) {
	cells := []struct {
		workload string
		scale    int
		cpu      CPUModel
		host     string
	}{
		{"water_nsquared", 24, O3, "Intel_Xeon"},
		{"water_nsquared", 24, O3, "M1_Pro"},
		{"dedup", 2048, Timing, "Intel_Xeon"},
		{"dedup", 2048, Timing, "M1_Pro"},
	}
	for _, c := range cells {
		c := c
		t.Run(fmt.Sprintf("%s_%s_%s", c.workload, c.cpu, c.host), func(t *testing.T) {
			host, err := platform.ByName(c.host)
			if err != nil {
				t.Fatal(err)
			}
			run := func(mode PipelineMode) string {
				res, err := RunSession(SessionConfig{
					Guest: GuestConfig{
						CPU: c.cpu, Mode: SE,
						Workload: c.workload, Scale: c.scale,
					},
					Host:     host,
					Pipeline: mode,
				})
				if err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
				return fullStatDump(res)
			}
			serial := run(PipelineOff)
			pipelined := run(PipelineOn)
			if serial != pipelined {
				t.Fatalf("stat dumps differ between serial and pipelined runs:\n%s",
					firstDiff(serial, pipelined))
			}
			// Guard against a vacuous pass: the dump must actually carry
			// modeled activity.
			if !strings.Contains(serial, "stat ") || strings.Contains(serial, "Cycles:0") {
				t.Fatalf("suspiciously empty stat dump:\n%.400s", serial)
			}
		})
	}
}

// firstDiff returns the first differing line pair of two dumps.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  serial:    %s\n  pipelined: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("dumps differ in length: %d vs %d lines", len(al), len(bl))
}

// TestPipelineModeResolution pins the auto-resolution rules: profiling
// always forces serial; explicit on/off win over the process default; auto
// defers to the default and then to GOMAXPROCS.
func TestPipelineModeResolution(t *testing.T) {
	defer SetDefaultPipeline(PipelineAuto)

	multi := runtime.GOMAXPROCS(0) > 1
	cases := []struct {
		mode    PipelineMode
		def     PipelineMode
		profile bool
		want    bool
	}{
		{PipelineOn, PipelineAuto, false, true},
		{PipelineOff, PipelineAuto, false, false},
		{PipelineOn, PipelineOff, false, true},   // per-session beats default
		{PipelineOff, PipelineOn, false, false},  // per-session beats default
		{PipelineAuto, PipelineOn, false, true},  // default fills in auto
		{PipelineAuto, PipelineOff, false, false},
		{PipelineAuto, PipelineAuto, false, multi}, // pure auto: GOMAXPROCS
		{PipelineOn, PipelineAuto, true, false},    // profiler forces serial
		{PipelineAuto, PipelineOn, true, false},
	}
	for i, c := range cases {
		SetDefaultPipeline(c.def)
		if got := c.mode.enabled(c.profile); got != c.want {
			t.Errorf("case %d: mode=%v default=%v profile=%v: enabled=%v, want %v",
				i, c.mode, c.def, c.profile, got, c.want)
		}
	}
}

// TestPipelineParseMode pins the flag spellings.
func TestPipelineParseMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		mode PipelineMode
		ok   bool
	}{
		{"auto", PipelineAuto, true}, {"", PipelineAuto, true},
		{"on", PipelineOn, true}, {"off", PipelineOff, true},
		{"1", PipelineOn, true}, {"0", PipelineOff, true},
		{"bogus", PipelineAuto, false},
	} {
		mode, ok := ParsePipelineMode(c.in)
		if mode != c.mode || ok != c.ok {
			t.Errorf("ParsePipelineMode(%q) = %v,%v want %v,%v", c.in, mode, ok, c.mode, c.ok)
		}
	}
	for _, m := range []PipelineMode{PipelineAuto, PipelineOn, PipelineOff} {
		back, ok := ParsePipelineMode(m.String())
		if !ok || back != m {
			t.Errorf("round-trip %v -> %q -> %v,%v", m, m.String(), back, ok)
		}
	}
}

// TestPipelineErrorPath checks a failing guest run still tears the
// pipeline down (no goroutine leak, error surfaced) — the consumer must
// not be left blocked on an open ring.
func TestPipelineErrorPath(t *testing.T) {
	before := runtime.NumGoroutine()
	_, err := RunSession(SessionConfig{
		Guest:    GuestConfig{CPU: O3, Mode: SE, Workload: "no_such_workload"},
		Host:     platform.IntelXeon(),
		Pipeline: PipelineOn,
	})
	if err == nil {
		t.Fatal("expected error for unknown workload")
	}
	// A failing BuildGuest never starts the consumer; also exercise a run
	// that starts and completes, then compare goroutine counts loosely.
	if _, err := RunSession(SessionConfig{
		Guest:    GuestConfig{CPU: Timing, Mode: SE, Workload: "sieve", Scale: 512},
		Host:     platform.IntelXeon(),
		Pipeline: PipelineOn,
	}); err != nil {
		t.Fatal(err)
	}
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Fatalf("goroutines leaked: %d -> %d", before, after)
	}
}
