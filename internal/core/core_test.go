package core_test

import (
	"math"
	"strings"
	"testing"

	"gem5prof/internal/core"
	"gem5prof/internal/hostmodel"
	"gem5prof/internal/platform"
)

func TestRunGuestDefaults(t *testing.T) {
	res, err := core.RunGuest(core.GuestConfig{Workload: "sieve", Scale: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ChecksumOK {
		t.Fatalf("checksum %#x want %#x", uint32(res.ExitCode), res.Expected)
	}
	if res.Stats == nil || res.HostEvents == 0 || res.SimTicks == 0 {
		t.Fatal("result incomplete")
	}
}

func TestRunGuestErrors(t *testing.T) {
	if _, err := core.RunGuest(core.GuestConfig{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := core.RunGuest(core.GuestConfig{Workload: "sieve", CPU: "vliw"}); err == nil {
		t.Fatal("unknown CPU accepted")
	}
	if _, err := core.RunGuest(core.GuestConfig{BootExit: true, Mode: core.SE}); err == nil {
		t.Fatal("SE boot-exit accepted")
	}
	if _, err := core.RunGuest(core.GuestConfig{Mode: core.FS, Workload: "nope"}); err == nil {
		t.Fatal("unknown FS workload accepted")
	}
}

func TestSessionProducesConsistentReport(t *testing.T) {
	res, err := core.RunSession(core.SessionConfig{
		Guest: core.GuestConfig{CPU: core.Timing, Workload: "sieve", Scale: 1024},
		Host:  platform.IntelXeon(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Guest.ChecksumOK {
		t.Fatal("guest result wrong under co-simulation")
	}
	if res.SimSeconds() <= 0 {
		t.Fatal("no host time")
	}
	l1 := res.Host.Level1
	sum := l1.Retiring + l1.FrontEndBound + l1.BadSpeculation + l1.BackEndBound
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("top-down sums to %v", sum)
	}
	if res.TextBytes == 0 || res.NumFuncs == 0 || res.CalledFuncs == 0 {
		t.Fatal("code model summary empty")
	}
	if res.CalledFuncs > res.NumFuncs {
		t.Fatal("called > registered")
	}
}

func TestSessionDeterminism(t *testing.T) {
	run := func() float64 {
		res, err := core.RunSession(core.SessionConfig{
			Guest: core.GuestConfig{CPU: core.Atomic, Workload: "canneal", Scale: 128},
			Host:  platform.M1Pro(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Host.Cycles
	}
	if run() != run() {
		t.Fatal("co-simulation nondeterministic")
	}
}

func TestSessionCosimDoesNotPerturbGuest(t *testing.T) {
	pure, err := core.RunGuest(core.GuestConfig{CPU: core.O3, Workload: "dedup", Scale: 2048})
	if err != nil {
		t.Fatal(err)
	}
	cosim, err := core.RunSession(core.SessionConfig{
		Guest: core.GuestConfig{CPU: core.O3, Workload: "dedup", Scale: 2048},
		Host:  platform.IntelXeon(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if pure.SimTicks != cosim.Guest.SimTicks || pure.Insts != cosim.Guest.Insts ||
		pure.ExitCode != cosim.Guest.ExitCode {
		t.Fatalf("host model perturbed the guest: %v/%v vs %v/%v",
			pure.SimTicks, pure.Insts, cosim.Guest.SimTicks, cosim.Guest.Insts)
	}
}

func TestSessionM1FasterThanXeon(t *testing.T) {
	gc := core.GuestConfig{CPU: core.O3, Workload: "water_nsquared", Scale: 40}
	xeon, err := core.RunSession(core.SessionConfig{Guest: gc, Host: platform.IntelXeon()})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := core.RunSession(core.SessionConfig{Guest: gc, Host: platform.M1Pro()})
	if err != nil {
		t.Fatal(err)
	}
	ratio := xeon.SimSeconds() / m1.SimSeconds()
	if ratio < 1.3 || ratio > 5 {
		t.Fatalf("M1 advantage %.2fx outside the paper's band", ratio)
	}
}

func TestSessionCoRunSlower(t *testing.T) {
	gc := core.GuestConfig{CPU: core.Atomic, Workload: "sieve", Scale: 1536}
	single, err := core.RunSession(core.SessionConfig{Guest: gc, Host: platform.IntelXeon()})
	if err != nil {
		t.Fatal(err)
	}
	corun, err := core.RunSession(core.SessionConfig{
		Guest: gc, Host: platform.IntelXeon(),
		Scenario: platform.Scenario{Procs: 40, SMT: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if corun.SimSeconds() <= single.SimSeconds() {
		t.Fatalf("SMT co-run (%.5f) should be slower than single (%.5f)",
			corun.SimSeconds(), single.SimSeconds())
	}
}

func TestSessionProfiler(t *testing.T) {
	res, err := core.RunSession(core.SessionConfig{
		Guest:   core.GuestConfig{CPU: core.Atomic, Workload: "sieve", Scale: 1024},
		Host:    platform.IntelXeon(),
		Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Prof == nil {
		t.Fatal("profiler missing")
	}
	top := res.Prof.Top(5)
	if len(top) != 5 || top[0].Cycles <= 0 {
		t.Fatalf("top = %+v", top)
	}
	if !strings.Contains(res.Prof.Render(3), "%CPU") {
		t.Fatal("render malformed")
	}
	cdf := res.Prof.CDF(50)
	if cdf[len(cdf)-1] > 1.000001 {
		t.Fatal("CDF exceeds 1")
	}
}

func TestSessionO3BuildFaster(t *testing.T) {
	gc := core.GuestConfig{CPU: core.Atomic, Workload: "sieve", Scale: 2048}
	base, err := core.RunSession(core.SessionConfig{Guest: gc, Host: platform.IntelXeon()})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.RunSession(core.SessionConfig{
		Guest: gc, Host: platform.IntelXeon(),
		HostCode: hostmodel.Config{SizeFactor: 0.97},
	})
	if err != nil {
		t.Fatal(err)
	}
	if opt.SimSeconds() >= base.SimSeconds() {
		t.Fatalf("-O3 build (%.5f) should beat baseline (%.5f)",
			opt.SimSeconds(), base.SimSeconds())
	}
}

func TestFSBootSession(t *testing.T) {
	res, err := core.RunSession(core.SessionConfig{
		Guest: core.GuestConfig{CPU: core.Timing, Mode: core.FS, BootExit: true, BootKBs: 8},
		Host:  platform.M1Ultra(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Guest.Stdout, "g5 kernel") {
		t.Fatal("no boot banner")
	}
	if res.Guest.ExitReason != "guest poweroff" {
		t.Fatalf("reason = %q", res.Guest.ExitReason)
	}
}
