package core_test

import (
	"fmt"
	"strings"
	"testing"

	"gem5prof/internal/core"
)

// mtStatDump renders the full registry so two runs can be compared
// byte-for-byte, not just on a handful of headline counters.
func mtStatDump(res *core.GuestResult) string {
	var b strings.Builder
	for _, name := range res.Stats.Names() {
		fmt.Fprintf(&b, "%s = %v\n", name, res.Stats.Get(name))
	}
	return b.String()
}

// TestMTSmoke runs the mt kernels on every CPU model across core counts:
// the checksum must hold everywhere (the kernels verify their own result,
// so a coherence bug shows up as a wrong answer, not just odd stats), two
// identical runs must be bit-equal, and the directory's stat surface must
// exist exactly when a directory was built (cores > 1).
func TestMTSmoke(t *testing.T) {
	type combo struct {
		model core.CPUModel
		cores int
	}
	var combos []combo
	for _, cores := range []int{1, 2, 4} {
		combos = append(combos,
			combo{core.Atomic, cores}, combo{core.Timing, cores})
	}
	// The detailed models are ~10x slower per instruction; the 1- and
	// 4-core endpoints cover the no-directory and full-sharing shapes.
	for _, cores := range []int{1, 4} {
		combos = append(combos,
			combo{core.Minor, cores}, combo{core.O3, cores})
	}
	for _, wl := range []string{"dotprod_mt", "histogram_mt", "matmul_mt"} {
		for _, cb := range combos {
			res, err := core.RunGuest(core.GuestConfig{CPU: cb.model, Workload: wl, Cores: cb.cores})
			if err != nil {
				t.Fatalf("%s cores=%d %s: %v", wl, cb.cores, cb.model, err)
			}
			if !res.ChecksumOK {
				t.Fatalf("%s cores=%d %s: checksum got %d want %d", wl, cb.cores, cb.model, res.ExitCode, res.Expected)
			}

			// The directory and thread stats exist iff the machine has
			// more than one core; a 1-core guest must build the exact
			// pre-multicore machine.
			dump := mtStatDump(res)
			for _, stat := range []string{"sys.dir.getS", "se.threads.spawns"} {
				if got := strings.Contains(dump, stat+" "); got != (cb.cores > 1) {
					t.Errorf("%s cores=%d %s: stat %s present=%v, want %v",
						wl, cb.cores, cb.model, stat, got, cb.cores > 1)
				}
			}

			// Same config, same seed: the rerun must be bit-equal in
			// simulated time and in every stat.
			again, err := core.RunGuest(core.GuestConfig{CPU: cb.model, Workload: wl, Cores: cb.cores})
			if err != nil {
				t.Fatalf("%s cores=%d %s rerun: %v", wl, cb.cores, cb.model, err)
			}
			if again.SimTicks != res.SimTicks {
				t.Errorf("%s cores=%d %s: rerun ticks %d != %d", wl, cb.cores, cb.model, again.SimTicks, res.SimTicks)
			}
			if d2 := mtStatDump(again); d2 != dump {
				t.Errorf("%s cores=%d %s: rerun stats differ from first run", wl, cb.cores, cb.model)
			}

			t.Logf("%s cores=%d %s: ok insts=%d ticks=%d", wl, cb.cores, cb.model, res.Insts, res.SimTicks)
		}
	}
}
