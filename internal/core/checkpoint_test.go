package core_test

import (
	"strings"
	"testing"

	"gem5prof/internal/core"
	"gem5prof/internal/sim"
)

// ffAndCheckpoint fast-forwards a workload with the Atomic CPU for delta
// ticks and returns the encoded checkpoint plus the reference checksum.
func ffAndCheckpoint(t *testing.T, workload string, scale int, delta sim.Tick) ([]byte, uint32) {
	t.Helper()
	g, err := core.BuildGuest(core.GuestConfig{
		CPU: core.Atomic, Mode: core.SE, Workload: workload, Scale: scale,
	}, sim.NewNopTracer())
	if err != nil {
		t.Fatal(err)
	}
	res := g.RunFor(delta)
	if res.Status != sim.ExitLimit {
		t.Fatalf("fast-forward ended early: %+v", res)
	}
	ck, err := g.TakeCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Insts == 0 || ck.Tick == 0 {
		t.Fatalf("empty checkpoint: %+v", ck)
	}
	data, err := ck.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Readable means JSON.
	if !strings.HasPrefix(strings.TrimSpace(string(data)), "{") {
		t.Fatal("checkpoint not readable JSON")
	}
	// Expected checksum from an uninterrupted run.
	full, err := core.RunGuest(core.GuestConfig{
		CPU: core.Atomic, Mode: core.SE, Workload: workload, Scale: scale,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data, uint32(full.ExitCode)
}

// TestCheckpointRestoreIntoEveryModel is the paper's methodology: take a
// checkpoint with the Atomic CPU and recover it under every CPU model; the
// continued run must produce the identical result.
func TestCheckpointRestoreIntoEveryModel(t *testing.T) {
	data, want := ffAndCheckpoint(t, "dedup", 2048, 20*sim.Microsecond)
	ck, err := core.DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range core.AllCPUModels {
		t.Run(string(model), func(t *testing.T) {
			g, err := core.RestoreGuest(core.GuestConfig{
				CPU: model, Mode: core.SE, Workload: "dedup", Scale: 2048,
			}, ck, sim.NewNopTracer())
			if err != nil {
				t.Fatal(err)
			}
			res, err := g.Run()
			if err != nil {
				t.Fatal(err)
			}
			if uint32(res.ExitCode) != want {
				t.Fatalf("restored run checksum %#x, want %#x", uint32(res.ExitCode), want)
			}
			// The restored run must be a continuation, not a replay.
			if res.Insts >= ck.Insts+200_000 {
				t.Fatalf("suspiciously many instructions after restore: %d", res.Insts)
			}
		})
	}
}

// TestCheckpointCrossPlatformRestore mirrors the paper's footnote: take the
// checkpoint "on the Xeon" and recover it under an M1 co-simulation.
func TestCheckpointCrossPlatformRestore(t *testing.T) {
	data, want := ffAndCheckpoint(t, "sieve", 4096, 10*sim.Microsecond)
	ck, err := core.DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.RestoreGuest(core.GuestConfig{CPU: core.Timing}, ck, sim.NewNopTracer())
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if uint32(res.ExitCode) != want {
		t.Fatalf("cross-restore checksum %#x, want %#x", uint32(res.ExitCode), want)
	}
}

// TestCheckpointDeterminism is the conformance property behind the
// checkpoint workflow: restoring at tick T and running to completion must
// produce exactly the straight run's result on EVERY CPU model — same
// exit checksum and instruction conservation (insts before the cut plus
// insts after equals the uninterrupted total).
func TestCheckpointDeterminism(t *testing.T) {
	straight := map[core.CPUModel]*core.GuestResult{}
	for _, model := range core.AllCPUModels {
		res, err := core.RunGuest(core.GuestConfig{
			CPU: model, Mode: core.SE, Workload: "sieve", Scale: 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		straight[model] = res
	}
	data, _ := ffAndCheckpoint(t, "sieve", 1024, 2*sim.Microsecond)
	ck, err := core.DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range core.AllCPUModels {
		model := model
		t.Run(string(model), func(t *testing.T) {
			g, err := core.RestoreGuest(core.GuestConfig{
				CPU: model, Mode: core.SE, Workload: "sieve", Scale: 1024,
			}, ck, sim.NewNopTracer())
			if err != nil {
				t.Fatal(err)
			}
			res, err := g.Run()
			if err != nil {
				t.Fatal(err)
			}
			want := straight[model]
			if res.ExitCode != want.ExitCode {
				t.Errorf("restored exit %#x, straight %#x", res.ExitCode, want.ExitCode)
			}
			if !res.ChecksumOK {
				t.Errorf("restored run checksum mismatch")
			}
			if ck.Insts+res.Insts != want.Insts {
				t.Errorf("instruction conservation: %d (checkpoint) + %d (restored) != %d (straight)",
					ck.Insts, res.Insts, want.Insts)
			}
		})
	}
}

// FuzzCheckpointRoundTrip drives the checkpoint cut point and target model
// from fuzzer inputs: any reachable cut must encode to JSON that decodes
// and re-encodes byte-identically, and the restored run must finish with
// the straight run's checksum and instruction count.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(int64(2), uint8(0))
	f.Add(int64(5), uint8(1))
	f.Add(int64(9), uint8(2))
	f.Add(int64(13), uint8(3))
	f.Fuzz(func(t *testing.T, deltaUS int64, modelIdx uint8) {
		if deltaUS <= 0 || deltaUS > 50 {
			t.Skip()
		}
		model := core.AllCPUModels[int(modelIdx)%len(core.AllCPUModels)]
		cfg := core.GuestConfig{CPU: core.Atomic, Mode: core.SE, Workload: "sieve", Scale: 1024}
		g, err := core.BuildGuest(cfg, sim.NewNopTracer())
		if err != nil {
			t.Fatal(err)
		}
		if res := g.RunFor(sim.Tick(deltaUS) * sim.Microsecond); res.Status != sim.ExitLimit {
			t.Skip() // workload finished before the cut point
		}
		ck, err := g.TakeCheckpoint()
		if err != nil {
			t.Fatal(err)
		}
		data, err := ck.Encode()
		if err != nil {
			t.Fatal(err)
		}
		ck2, err := core.DecodeCheckpoint(data)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		data2, err := ck2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(data2) {
			t.Fatal("checkpoint encode/decode/encode not byte-identical")
		}
		straight, err := core.RunGuest(core.GuestConfig{
			CPU: model, Mode: core.SE, Workload: "sieve", Scale: 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		rg, err := core.RestoreGuest(core.GuestConfig{
			CPU: model, Mode: core.SE, Workload: "sieve", Scale: 1024,
		}, ck2, sim.NewNopTracer())
		if err != nil {
			t.Fatal(err)
		}
		res, err := rg.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitCode != straight.ExitCode {
			t.Errorf("%s: restored exit %#x, straight %#x", model, res.ExitCode, straight.ExitCode)
		}
		if ck2.Insts+res.Insts != straight.Insts {
			t.Errorf("%s: instruction conservation: %d + %d != %d", model, ck2.Insts, res.Insts, straight.Insts)
		}
	})
}

func TestCheckpointRequiresAtomic(t *testing.T) {
	g, err := core.BuildGuest(core.GuestConfig{
		CPU: core.Timing, Mode: core.SE, Workload: "sieve", Scale: 1024,
	}, sim.NewNopTracer())
	if err != nil {
		t.Fatal(err)
	}
	g.RunFor(2 * sim.Microsecond)
	if _, err := g.TakeCheckpoint(); err == nil {
		t.Fatal("checkpoint of a Timing CPU accepted")
	}
}

func TestCheckpointDecodeErrors(t *testing.T) {
	if _, err := core.DecodeCheckpoint([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := core.DecodeCheckpoint([]byte(`{"version":99,"arch":[{}]}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := core.DecodeCheckpoint([]byte(`{"version":1}`)); err == nil {
		t.Fatal("empty arch accepted")
	}
}

func TestRestoreCoreCountMismatch(t *testing.T) {
	data, _ := ffAndCheckpoint(t, "sieve", 1024, 2*sim.Microsecond)
	ck, _ := core.DecodeCheckpoint(data)
	if _, err := core.RestoreGuest(core.GuestConfig{CPU: core.Atomic, NumCPUs: 4, Mode: core.FS, BootExit: true}, ck, sim.NewNopTracer()); err == nil {
		t.Fatal("core-count mismatch accepted")
	}
}
