package core

import (
	"encoding/json"
	"fmt"

	"gem5prof/internal/cpu"
	"gem5prof/internal/guest"
	"gem5prof/internal/sim"
)

// Checkpoint is a readable (JSON) snapshot of a quiesced guest, mirroring
// gem5's checkpointing flow that the paper's methodology depends on:
// fast-forward with the Atomic CPU, checkpoint, then restore into any CPU
// model — including on a different host platform.
type Checkpoint struct {
	// Version guards the on-disk format.
	Version int `json:"version"`
	// Tick is the guest time at which the checkpoint was taken.
	Tick sim.Tick `json:"tick"`
	// Insts is the committed instruction count at the checkpoint.
	Insts uint64 `json:"insts"`
	// Workload/Mode/Scale describe what was running (metadata only).
	Workload string `json:"workload"`
	Mode     Mode   `json:"mode"`
	Scale    int    `json:"scale"`
	// Arch is per-core architectural state.
	Arch []cpu.ArchState `json:"arch"`
	// Mem is the physical memory image (touched pages only).
	Mem guest.MemoryImage `json:"mem"`
}

// CheckpointVersion is the current serialization format. Decoding fails
// closed on any other version: forward compatibility is explicitly not
// attempted, because restoring under a mismatched format could silently
// zero-fill state the writer meant to carry.
const CheckpointVersion = 1

// RunFor services events until the guest clock advances by delta ticks (or
// the workload exits). It returns the raw run result so callers can
// distinguish completion from the time limit.
//
// A delta that would overflow the tick counter — including a negative
// duration cast to the unsigned Tick — is clamped to MaxTick, so a huge
// fast-forward request runs the workload out instead of computing a
// wrapped deadline in the past (which the queue's time-runs-backward
// panic would only catch after the fact).
func (g *GuestSystem) RunFor(delta sim.Tick) sim.RunResult {
	now := g.Sys.Now()
	end := now + delta
	if end < now {
		end = sim.MaxTick
	}
	return g.Sys.Run(end, 0)
}

// RunTo services events until the guest clock reaches absolute tick when,
// inclusive: every event scheduled at or before when fires, so a
// checkpoint taken afterwards captures exactly the state a straight run
// has as it leaves that tick. A target at or before Now returns
// immediately with ExitLimit and is not an error.
func (g *GuestSystem) RunTo(when sim.Tick) sim.RunResult {
	return g.Sys.Run(when, 0)
}

// TakeCheckpoint serializes the guest. The guest must be quiesced at an
// instruction boundary, which is guaranteed between events only for the
// Atomic CPU model (gem5 has the same restriction in spirit: simple CPUs
// are the fast-forward/checkpoint vehicles).
func (g *GuestSystem) TakeCheckpoint() (*Checkpoint, error) {
	if g.Cfg.CPU != Atomic {
		return nil, fmt.Errorf("core: checkpoints require the Atomic CPU (got %s)", g.Cfg.CPU)
	}
	if g.Cfg.Cores > 1 {
		// The snapshot captures memory and per-core arch state but not
		// the coherence directory or the sysemu thread table (join
		// values, futex wait queues), so restoring a multicore guest
		// would be silently lossy. Fail loudly instead.
		return nil, fmt.Errorf("core: checkpoints are single-core only (directory and thread state are not captured)")
	}
	for _, c := range g.CPUs {
		if c.Core().Waiting() {
			return nil, fmt.Errorf("core: cannot checkpoint a core parked in WFI")
		}
	}
	ck := &Checkpoint{
		Version:  CheckpointVersion,
		Tick:     g.Sys.Now(),
		Workload: g.Cfg.Workload,
		Mode:     g.Cfg.Mode,
		Scale:    g.Cfg.Scale,
		Mem:      g.Mem.Snapshot(),
	}
	for _, c := range g.CPUs {
		ck.Arch = append(ck.Arch, c.Core().SaveArchState())
		ck.Insts += c.Core().CommittedInsts()
	}
	return ck, nil
}

// Encode renders the checkpoint as (readable) JSON.
func (c *Checkpoint) Encode() ([]byte, error) {
	return json.MarshalIndent(c, "", " ")
}

// DecodeCheckpoint parses an encoded checkpoint. It fails closed: a
// truncated document, a mismatched or future format version, or a memory
// image whose page payloads disagree with their declared sizes all return
// a clear error — never a panic, and never a checkpoint that would
// restore zeroed or partial state.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("core: bad checkpoint: %w", err)
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	return &ck, nil
}

// Validate checks everything RestoreGuest needs to rebuild the guest
// faithfully. DecodeCheckpoint applies it to every parsed document, so
// corruption surfaces at the decode boundary, before any state is built.
func (c *Checkpoint) Validate() error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("core: checkpoint version %d unsupported (want %d)", c.Version, CheckpointVersion)
	}
	if len(c.Arch) == 0 {
		return fmt.Errorf("core: checkpoint has no CPU state")
	}
	// Fail closed on implausible documents too: no supported guest exceeds
	// this, and an absurd count usually means corrupted or hostile input.
	if len(c.Arch) > 64 {
		return fmt.Errorf("core: checkpoint claims %d cores (limit 64)", len(c.Arch))
	}
	if c.Mem.Size == 0 {
		return fmt.Errorf("core: checkpoint has no memory image")
	}
	if err := c.Mem.Validate(); err != nil {
		return fmt.Errorf("core: checkpoint memory image: %w", err)
	}
	return nil
}

// RestoreGuest builds a guest from cfg and resumes it from the checkpoint.
// cfg may select a *different* CPU model than the one that took the
// checkpoint (the gem5 fast-forward-then-switch flow) and runs under any
// tracer/host platform. The core count must match.
func RestoreGuest(cfg GuestConfig, ck *Checkpoint, tracer sim.Tracer) (*GuestSystem, error) {
	cfg = cfg.withDefaults()
	if cfg.NumCPUs != len(ck.Arch) {
		return nil, fmt.Errorf("core: checkpoint has %d cores, config wants %d", len(ck.Arch), cfg.NumCPUs)
	}
	// Carry the workload identity so the restored run validates against the
	// same reference checksum.
	if cfg.Workload == "" {
		cfg.Workload = ck.Workload
	}
	if cfg.Scale == 0 {
		cfg.Scale = ck.Scale
	}
	if cfg.Mode == "" {
		cfg.Mode = ck.Mode
	}
	g, _, err := buildGuest(cfg, tracer)
	if err != nil {
		return nil, err
	}
	// Overwrite the freshly loaded image with the checkpointed memory and
	// register state, then start each core at its checkpointed PC (not the
	// workload entry).
	if err := g.Mem.LoadImage(ck.Mem); err != nil {
		return nil, err
	}
	for i, c := range g.CPUs {
		c.Core().LoadArchState(ck.Arch[i])
		c.Start(ck.Arch[i].PC)
	}
	return g, nil
}
