package core

import (
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"
)

// ShardMode selects how many event-queue shards a guest simulation runs on
// (see sim.System.EnableSharding). Sharding splits the simulated machine's
// event queue by domain — CPU and devices on the coordinating shard, the
// DRAM controller on a worker shard — advancing in parallel under a
// conservative quantum barrier. Statistics, traces, and reports are
// bit-identical at every shard count, so the mode is purely a performance
// knob, orthogonal to the job-level parallelism of the experiment runner and
// to the per-session producer/consumer pipeline (PipelineMode).
type ShardMode int

// Shard modes. Values >= 2 request that many shards; the layout clamps to
// the partitionable domains (2 for a single-core guest, 2+min(cores-1, 3)
// for a multicore one — see sim.ShardConfig).
const (
	// ShardAuto enables sharding exactly when the host has cores to spare
	// (GOMAXPROCS >= 4, leaving room for the pipeline consumer and the
	// trace replayer next to the shards). It resolves to the widest derived
	// layout for the guest: 2 shards (cpu+dev | mem) for a single core,
	// 1+cores shards (one per extra core domain, core 0 riding shard 0)
	// for a multicore guest.
	ShardAuto ShardMode = -1
	// ShardDefault (the zero value) defers to the process-wide default set
	// by SetDefaultShards; if that too is the zero value, it means serial.
	ShardDefault ShardMode = 0
	// ShardSerial forces the single-queue path (the pre-sharding behaviour).
	ShardSerial ShardMode = 1
)

// String renders the mode as its flag spelling.
func (m ShardMode) String() string {
	switch {
	case m == ShardAuto:
		return "auto"
	case m <= ShardSerial:
		return "off"
	default:
		return strconv.Itoa(int(m))
	}
}

// ParseShardMode parses "auto", "off" (or "serial"), or a shard count.
func ParseShardMode(s string) (ShardMode, bool) {
	switch s {
	case "auto":
		return ShardAuto, true
	case "off", "serial", "false", "0", "1":
		return ShardSerial, true
	case "":
		return ShardDefault, true
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return ShardDefault, false
	}
	return ShardMode(n), true
}

// defaultShards is the process-wide mode that ShardDefault configs resolve
// against (cmd/experiments' -shards flag sets it once at startup). Atomic so
// concurrent sessions may read it freely.
var defaultShards atomic.Int32

// SetDefaultShards sets the process-wide shard mode used by guests whose
// GuestConfig.Shards is ShardDefault.
func SetDefaultShards(m ShardMode) { defaultShards.Store(int32(m)) }

// DefaultShards returns the process-wide shard mode.
func DefaultShards() ShardMode { return ShardMode(defaultShards.Load()) }

// defaultShardLog is the process-wide fallback for GuestConfig.ShardLog:
// guests whose config leaves ShardLog nil report their effective layout
// here. cmd/experiments installs a deduplicating stderr logger once at
// startup so a sweep prints each distinct layout exactly once instead of
// once per simulation. Atomic so concurrent sessions may read it freely.
var defaultShardLog atomic.Value // func(string)

// SetDefaultShardLog sets the process-wide shard-layout logger used by
// guests whose GuestConfig.ShardLog is nil. A nil fn restores silence.
func SetDefaultShardLog(fn func(string)) { defaultShardLog.Store(shardLogBox{fn}) }

// shardLogBox wraps the function so atomic.Value accepts a nil fn (Store
// panics on a bare nil interface value).
type shardLogBox struct{ fn func(string) }

// resolveShardLog returns the effective layout logger for one guest config.
func resolveShardLog(cfg GuestConfig) func(string) {
	if cfg.ShardLog != nil {
		return cfg.ShardLog
	}
	box, _ := defaultShardLog.Load().(shardLogBox)
	return box.fn
}

// resolveShards returns the effective shard count for one (defaulted) guest
// config: 1 for the serial path, >= 2 for sharded execution. The Atomic CPU
// performs its memory accesses synchronously inline (no DRAM events to
// offload), and IdealMemory has no memory hierarchy at all, so both force
// the serial path regardless of the requested mode.
func resolveShards(cfg GuestConfig) int {
	if cfg.CPU == Atomic || cfg.IdealMemory {
		return 1
	}
	m := cfg.Shards
	if m == ShardDefault {
		m = DefaultShards()
	}
	if m == ShardAuto {
		if runtime.GOMAXPROCS(0) >= 4 {
			// Widest derived layout: per-core shards next to the memory
			// worker. Affine core shards execute on the coordinator
			// goroutine, so auto does not scale the request by host cores
			// beyond the GOMAXPROCS >= 4 gate.
			m = ShardMode(2 + clampPerCore(maxShardsRequest, cfg.NumCPUs))
		} else {
			m = ShardSerial
		}
	}
	if m < 2 {
		return 1
	}
	return int(m)
}

// maxShardsRequest is a shard request wide enough to never be the binding
// constraint in clampPerCore (the per-core count is bounded by the guest's
// core domains, min(cores-1, 3)).
const maxShardsRequest = 16

// clampPerCore returns how many per-core affine shards a request for n total
// shards yields on a guest with the given core count: min(n-2, cores-1, 3),
// floored at 0. It mirrors the derivation inside sim.EnableSharding so the
// layout string and checkpoint keys agree with the engine's effective plan
// (TestShardLayoutMatchesEngine pins the two together).
func clampPerCore(n, cores int) int {
	p := n - 2
	if m := cores - 1; p > m {
		p = m
	}
	if p > 3 {
		p = 3
	}
	if p < 0 {
		p = 0
	}
	return p
}

// ShardLayout renders the effective shard layout of a guest config as a
// stable string: "serial" for the single-queue path, "cpu+dev|mem" for the
// two-shard layout, "cpuxN+dev|mem" for a multicore guest whose per-core
// domains (sim.DomainForCore) all fuse onto the coordinator shard, and
// "cpu+dev|cpu1|...|mem" for the per-core layouts (matching the engine's
// own ShardInfo.Layout rendering). Checkpoint cache keys include it (see
// internal/simpoint) so checkpoints taken under different layouts never
// alias, even though their contents are bit-identical by construction.
func ShardLayout(cfg GuestConfig) string {
	d := cfg.withDefaults()
	n := resolveShards(d)
	if n < 2 {
		return "serial"
	}
	if perCore := clampPerCore(n, d.NumCPUs); perCore > 0 {
		s := "cpu+dev"
		for c := 1; c <= perCore; c++ {
			s += fmt.Sprintf("|cpu%d", c)
		}
		return s + "|mem"
	}
	if d.NumCPUs > 1 {
		return fmt.Sprintf("cpux%d+dev|mem", d.NumCPUs)
	}
	return "cpu+dev|mem"
}
