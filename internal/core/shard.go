package core

import (
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"
)

// ShardMode selects how many event-queue shards a guest simulation runs on
// (see sim.System.EnableSharding). Sharding splits the simulated machine's
// event queue by domain — CPU and devices on the coordinating shard, the
// DRAM controller on a worker shard — advancing in parallel under a
// conservative quantum barrier. Statistics, traces, and reports are
// bit-identical at every shard count, so the mode is purely a performance
// knob, orthogonal to the job-level parallelism of the experiment runner and
// to the per-session producer/consumer pipeline (PipelineMode).
type ShardMode int

// Shard modes. Values >= 2 request that many shards (the current layout
// clamps to 2: cpu+dev | mem).
const (
	// ShardAuto enables sharding exactly when the host has cores to spare
	// (GOMAXPROCS >= 4, leaving room for the pipeline consumer and the
	// trace replayer next to the two shards).
	ShardAuto ShardMode = -1
	// ShardDefault (the zero value) defers to the process-wide default set
	// by SetDefaultShards; if that too is the zero value, it means serial.
	ShardDefault ShardMode = 0
	// ShardSerial forces the single-queue path (the pre-sharding behaviour).
	ShardSerial ShardMode = 1
)

// String renders the mode as its flag spelling.
func (m ShardMode) String() string {
	switch {
	case m == ShardAuto:
		return "auto"
	case m <= ShardSerial:
		return "off"
	default:
		return strconv.Itoa(int(m))
	}
}

// ParseShardMode parses "auto", "off" (or "serial"), or a shard count.
func ParseShardMode(s string) (ShardMode, bool) {
	switch s {
	case "auto":
		return ShardAuto, true
	case "off", "serial", "false", "0", "1":
		return ShardSerial, true
	case "":
		return ShardDefault, true
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return ShardDefault, false
	}
	return ShardMode(n), true
}

// defaultShards is the process-wide mode that ShardDefault configs resolve
// against (cmd/experiments' -shards flag sets it once at startup). Atomic so
// concurrent sessions may read it freely.
var defaultShards atomic.Int32

// SetDefaultShards sets the process-wide shard mode used by guests whose
// GuestConfig.Shards is ShardDefault.
func SetDefaultShards(m ShardMode) { defaultShards.Store(int32(m)) }

// DefaultShards returns the process-wide shard mode.
func DefaultShards() ShardMode { return ShardMode(defaultShards.Load()) }

// resolveShards returns the effective shard count for one (defaulted) guest
// config: 1 for the serial path, >= 2 for sharded execution. The Atomic CPU
// performs its memory accesses synchronously inline (no DRAM events to
// offload), and IdealMemory has no memory hierarchy at all, so both force
// the serial path regardless of the requested mode.
func resolveShards(cfg GuestConfig) int {
	if cfg.CPU == Atomic || cfg.IdealMemory {
		return 1
	}
	m := cfg.Shards
	if m == ShardDefault {
		m = DefaultShards()
	}
	if m == ShardAuto {
		if runtime.GOMAXPROCS(0) >= 4 {
			m = 2
		} else {
			m = ShardSerial
		}
	}
	if m < 2 {
		return 1
	}
	return int(m)
}

// ShardLayout renders the effective shard layout of a guest config as a
// stable string: "serial" for the single-queue path, "cpu+dev|mem" for the
// current two-shard layout, and "cpuxN+dev|mem" for a multicore guest whose
// per-core domains (sim.DomainForCore) all fuse onto the coordinator shard.
// Checkpoint cache keys include it (see internal/simpoint) so checkpoints
// taken under different layouts never alias, even though their contents are
// bit-identical by construction.
func ShardLayout(cfg GuestConfig) string {
	d := cfg.withDefaults()
	if resolveShards(d) < 2 {
		return "serial"
	}
	if d.NumCPUs > 1 {
		return fmt.Sprintf("cpux%d+dev|mem", d.NumCPUs)
	}
	return "cpu+dev|mem"
}
