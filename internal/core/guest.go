// Package core is the paper's methodology as a library: it builds complete
// guest simulations (the g5 simulator) and co-simulates their execution on
// modeled host platforms, producing the profiling reports every experiment
// in the paper is derived from.
package core

import (
	"fmt"
	"io"

	"gem5prof/internal/cpu"
	"gem5prof/internal/guest"
	"gem5prof/internal/mem"
	"gem5prof/internal/sim"
	"gem5prof/internal/sysemu"
	"gem5prof/internal/workloads"
)

// CPUModel selects the guest CPU model, mirroring the paper's four types.
type CPUModel string

// Guest CPU models.
const (
	Atomic CPUModel = "atomic"
	Timing CPUModel = "timing"
	Minor  CPUModel = "minor"
	O3     CPUModel = "o3"
)

// AllCPUModels lists the models in the paper's order of increasing detail.
var AllCPUModels = []CPUModel{Atomic, Timing, Minor, O3}

// Mode selects the simulation mode.
type Mode string

// Simulation modes.
const (
	SE Mode = "se" // system-call emulation
	FS Mode = "fs" // full system with the mini-kernel
)

// GuestConfig describes one g5 simulation.
type GuestConfig struct {
	CPU      CPUModel
	Mode     Mode
	Workload string // workload name; ignored for boot-exit
	// Scale overrides the workload's default problem size when nonzero.
	Scale int
	// BootExit runs FS boot with no init app (paper's Boot-Exit workload).
	BootExit bool
	// BootKBs overrides how much memory the FS kernel initializes at boot
	// (scales boot length); 0 uses the kernel default.
	BootKBs int
	// NumCPUs is the simulated core count (FS only; extra harts park).
	NumCPUs int
	// Cores is the SE-mode multicore guest core count. Core 0 enters the
	// workload at its entry point; cores 1..Cores-1 start parked and are
	// dispatched by the SysSpawn threading syscall (internal/sysemu). More
	// than one core puts a MESI directory controller between the per-core
	// L1 data caches and the shared L2 and enables the threading syscall
	// surface; at the default of 1 the build is bit-identical to the
	// single-core path. FS mode uses NumCPUs instead.
	Cores int
	// MemBytes is guest DRAM size (default 16 MiB, like the paper's small
	// simulated memories relative to the host).
	MemBytes uint32
	// ClockPeriod is the guest clock (default 1 GHz).
	ClockPeriod sim.Tick
	// Hierarchy overrides the guest cache hierarchy (nil = defaults).
	Hierarchy *mem.HierarchyConfig
	// IdealMemory disables the cache model (ideal 1-cycle memory).
	IdealMemory bool
	// GuestTLBs inserts guest instruction/data TLBs in front of the L1s
	// (gem5's ARM FS configuration).
	GuestTLBs bool
	// Seed drives all deterministic randomness.
	Seed int64
	// CalendarQueue selects the alternative event-queue backend (A5).
	CalendarQueue bool
	// Shards selects sharded per-domain event-queue execution (bit-identical
	// at every shard count; see ShardMode). The zero value defers to the
	// process-wide default (SetDefaultShards).
	Shards ShardMode
	// ShardLog, when non-nil, receives one line describing the effective
	// shard layout at build time — requested vs clamped counts and the
	// domain placement (sim.ShardInfo.String). It is a visibility hook
	// only and never affects modeled outcomes; it is ignored (like Shards)
	// on configs that force the serial path.
	ShardLog func(string)
	// ExecTrace, when non-nil, receives one line per committed instruction
	// on every core (gem5's --debug-flags=Exec).
	ExecTrace io.Writer
}

// Normalized returns the config with every defaultable zero field replaced
// by its default — the exact config a build would run. Cache-key derivation
// (internal/simpoint) hashes the normalized form so that a zero field and
// its explicitly spelled default produce the same key.
func (c GuestConfig) Normalized() GuestConfig { return c.withDefaults() }

func (c *GuestConfig) withDefaults() GuestConfig {
	out := *c
	if out.CPU == "" {
		out.CPU = Atomic
	}
	if out.Mode == "" {
		out.Mode = SE
	}
	if out.NumCPUs <= 0 {
		out.NumCPUs = 1
	}
	if out.Cores <= 0 {
		out.Cores = 1
	}
	if out.Mode == SE && out.Cores > 1 {
		// The builder sizes the CPU array and memory system off NumCPUs;
		// folding Cores into it here also makes the checkpoint-cache key
		// (simpoint.ConfigPrefix's ncpu field) distinguish core counts.
		out.NumCPUs = out.Cores
	}
	if out.MemBytes == 0 {
		out.MemBytes = 16 * 1024 * 1024
	}
	if out.ClockPeriod == 0 {
		out.ClockPeriod = sim.Nanosecond
	}
	if out.Seed == 0 {
		out.Seed = 42
	}
	return out
}

// GuestResult reports one completed guest simulation.
type GuestResult struct {
	// SimTicks is the simulated guest time.
	SimTicks sim.Tick
	// Insts is the committed instruction count (all cores).
	Insts uint64
	// ExitCode is the workload's exit value (its checksum).
	ExitCode int
	// ExitReason describes how the run ended.
	ExitReason string
	// ChecksumOK reports whether ExitCode matched the workload's reference
	// model (always true for boot-exit).
	ChecksumOK bool
	// Expected is the reference checksum.
	Expected uint32
	// Stdout is SE-mode standard output or the FS UART transcript.
	Stdout string
	// Stats exposes the full guest statistics registry.
	Stats *sim.Registry
	// HostEvents is the number of simulator events serviced (the event
	// queue's workload).
	HostEvents uint64
}

// GuestSystem is a fully constructed, not-yet-run guest simulation.
type GuestSystem struct {
	Cfg    GuestConfig
	Sys    *sim.System
	Mem    *guest.Memory
	CPUs   []cpu.CPU
	Hier   *mem.MultiHierarchy // nil when IdealMemory
	SE     *sysemu.SEEnv       // SE mode only
	FS     *sysemu.Platform    // FS mode only
	expect uint32
	hasRef bool
}

// BuildGuest constructs the full guest system for cfg, mirrored onto tracer
// (use sim.NewNopTracer() for pure guest runs), with every CPU started at
// the workload entry point.
func BuildGuest(cfg GuestConfig, tracer sim.Tracer) (*GuestSystem, error) {
	g, entry, err := buildGuest(cfg, tracer)
	if err != nil {
		return nil, err
	}
	for _, c := range g.CPUs {
		c.Start(entry)
	}
	return g, nil
}

// buildGuest constructs the system without starting the CPUs, returning the
// workload entry point. RestoreGuest starts them at checkpointed PCs
// instead.
func buildGuest(cfg GuestConfig, tracer sim.Tracer) (*GuestSystem, uint32, error) {
	cfg = cfg.withDefaults()
	newQueue := func() sim.Queue {
		if cfg.CalendarQueue {
			return sim.NewCalendarQueue(1024, sim.Tick(cfg.ClockPeriod))
		}
		return sim.NewHeapQueue()
	}
	sys := sim.NewSystemWith(newQueue(), tracer, cfg.Seed)
	ram := guest.NewMemory(cfg.MemBytes)
	ram.SetHostBase(tracer.AllocData("guest.ram", uint64(cfg.MemBytes)))

	g := &GuestSystem{Cfg: cfg, Sys: sys, Mem: ram}

	// Resolve and load the workload image(s).
	var entry uint32
	if cfg.Mode == SE {
		if cfg.BootExit {
			return nil, 0, fmt.Errorf("core: boot-exit requires FS mode")
		}
	} else if cfg.Cores > 1 {
		return nil, 0, fmt.Errorf("core: Cores is SE-only; FS guests size with NumCPUs")
	}
	if cfg.Mode == SE {
		spec, ok := workloads.ByName(cfg.Workload)
		if !ok {
			return nil, 0, fmt.Errorf("core: unknown workload %q", cfg.Workload)
		}
		scale := cfg.Scale
		if scale == 0 {
			scale = spec.DefaultScale
		}
		prog, expect, err := spec.Build(scale)
		if err != nil {
			return nil, 0, err
		}
		if err := ram.Load(prog); err != nil {
			return nil, 0, err
		}
		entry = prog.Entry
		g.expect, g.hasRef = expect, true
	} else {
		kcfg := workloads.DefaultKernelConfig()
		kcfg.Harts = cfg.NumCPUs
		if cfg.BootKBs > 0 {
			kcfg.BootKBs = cfg.BootKBs
		}
		if !cfg.BootExit {
			spec, ok := workloads.ByName(cfg.Workload)
			if !ok {
				return nil, 0, fmt.Errorf("core: unknown workload %q", cfg.Workload)
			}
			scale := cfg.Scale
			if scale == 0 {
				scale = spec.DefaultScale
			}
			prog, expect, err := spec.Build(scale)
			if err != nil {
				return nil, 0, err
			}
			if err := ram.Load(prog); err != nil {
				return nil, 0, err
			}
			kcfg.AppEntry = prog.Entry
			g.expect, g.hasRef = expect, true
		}
		kern, err := workloads.BuildKernel(kcfg)
		if err != nil {
			return nil, 0, err
		}
		if err := ram.Load(kern); err != nil {
			return nil, 0, err
		}
		entry = kern.Entry
	}

	// Environment and functional memory.
	var env cpu.Env
	var fmem cpu.FuncMem
	var sink *sysemu.LateBindSink
	if cfg.Mode == SE {
		se := sysemu.NewSEEnv(sys, ram, workloads.HeapBase, workloads.MmapBase)
		g.SE = se
		env = se
		fmem = ram
	} else {
		sink = &sysemu.LateBindSink{}
		g.FS = sysemu.NewPlatform(sys, ram, sink)
		env = g.FS.Env
		fmem = g.FS.Mem
	}

	// Memory system. Sharding must be enabled before the hierarchy is built
	// so the DRAM controller constructs against the memory shard's view; the
	// quantum is the DRAM row-hit latency — no cross-domain response can
	// undercut it, which is what makes the barrier conservative.
	if !cfg.IdealMemory {
		hcfg := mem.DefaultHierarchyConfig("sys")
		if cfg.Hierarchy != nil {
			hcfg = *cfg.Hierarchy
		}
		if cfg.GuestTLBs {
			hcfg.GuestTLBs = true
		}
		if cfg.Cores > 1 {
			hcfg.Directory = true
		}
		shardLog := resolveShardLog(cfg)
		if shards := resolveShards(cfg); shards > 1 {
			// The only CPU-side events that land on the memory shard are
			// the bus's forward events, scheduled at least the bus latency
			// in the future — the group→mem edge floor. A zero-latency bus
			// override leaves the edge unfloored (safe, just conservative).
			busLook := sim.Tick(0)
			if hcfg.Bus.Latency > 0 {
				busLook = sim.QuantumFor(hcfg.Bus.Latency)
			}
			sys.EnableSharding(sim.ShardConfig{
				Shards:       shards,
				Quantum:      sim.QuantumFor(hcfg.DRAM.RowHitLatency),
				BusLookahead: busLook,
				NewQueue:     newQueue,
				Cores:        cfg.NumCPUs,
				Log:          shardLog,
			})
		} else if shardLog != nil {
			shardLog("sharding: serial (single queue)")
		}
		g.Hier = mem.NewMultiHierarchy(sys, hcfg, cfg.NumCPUs)
	}

	// CPUs.
	for i := 0; i < cfg.NumCPUs; i++ {
		ccfg := cpu.Config{
			Name:        fmt.Sprintf("cpu%d", i),
			ClockPeriod: cfg.ClockPeriod,
			Mem:         fmem,
			Env:         env,
			HartID:      uint32(i),
			Domain:      sim.DomainForCore(i),
			ExecTrace:   cfg.ExecTrace,
		}
		if g.Hier != nil {
			ccfg.IPort = g.Hier.IPort(i)
			ccfg.DPort = g.Hier.DPort(i)
		}
		var c cpu.CPU
		switch cfg.CPU {
		case Atomic:
			c = cpu.NewAtomicCPU(sys, ccfg)
		case Timing:
			c = cpu.NewTimingCPU(sys, ccfg)
		case Minor:
			c = cpu.NewMinorCPU(sys, ccfg, cpu.DefaultMinorConfig())
		case O3:
			c = cpu.NewO3CPU(sys, ccfg, cpu.DefaultO3Config())
		default:
			return nil, 0, fmt.Errorf("core: unknown CPU model %q", cfg.CPU)
		}
		g.CPUs = append(g.CPUs, c)
	}
	if sink != nil {
		sink.Sink = g.CPUs[0].Core()
	}
	if g.SE != nil && cfg.Cores > 1 {
		// Multicore SE guest: hand the threading syscalls their cores and
		// park the secondaries — only SysSpawn dispatches them.
		cores := make([]*cpu.Core, len(g.CPUs))
		for i, c := range g.CPUs {
			cores[i] = c.Core()
		}
		g.SE.AttachCores(cores)
		for _, c := range cores[1:] {
			c.Park()
		}
	}
	return g, entry, nil
}

// Run executes the guest to completion (or the configured limits) and
// returns the result.
func (g *GuestSystem) Run() (*GuestResult, error) {
	return g.finish(g.Sys.Run(sim.MaxTick, 0))
}

// finish converts a raw run result into a GuestResult, shared by Run and
// the instruction-budgeted runs (RunInsts, interval sessions).
func (g *GuestSystem) finish(res sim.RunResult) (*GuestResult, error) {
	out := &GuestResult{
		SimTicks:   res.Now,
		ExitCode:   res.ExitCode,
		ExitReason: res.ExitReason,
		Stats:      g.Sys.Stats(),
		HostEvents: g.Sys.EventsServiced(),
	}
	for _, c := range g.CPUs {
		out.Insts += c.Core().CommittedInsts()
	}
	if res.Status != sim.ExitRequested {
		return out, fmt.Errorf("core: guest did not exit cleanly: %v after %d events (reason %q)",
			res.Status, res.Events, res.ExitReason)
	}
	if g.SE != nil {
		out.Stdout = g.SE.Stdout()
	}
	if g.FS != nil {
		out.Stdout = g.FS.UART.Output()
	}
	out.Expected = g.expect
	// A budget stop ends the run mid-workload, so there is no checksum to
	// verify; report it as passing rather than comparing the budget code.
	if res.ExitReason == InstBudgetReason {
		out.ChecksumOK = true
		return out, nil
	}
	out.ChecksumOK = !g.hasRef || uint32(out.ExitCode) == g.expect
	return out, nil
}

// RunGuest builds and runs a guest in one call with no host tracing.
func RunGuest(cfg GuestConfig) (*GuestResult, error) {
	g, err := BuildGuest(cfg, sim.NewNopTracer())
	if err != nil {
		return nil, err
	}
	return g.Run()
}
