package mem

import (
	"testing"
	"testing/quick"

	"gem5prof/internal/sim"
)

// stubPort is a controllable downstream port recording traffic.
type stubPort struct {
	sys     *sim.System
	latency sim.Tick
	reqs    []Access
}

func (s *stubPort) SendTiming(acc Access, done func()) {
	s.reqs = append(s.reqs, acc)
	if done != nil {
		s.sys.ScheduleIn(sim.NewEvent("stub.resp", 0, done), s.latency)
	}
}

func (s *stubPort) AtomicLatency(acc Access) sim.Tick {
	s.reqs = append(s.reqs, acc)
	return s.latency
}

func testCacheCfg(name string) CacheConfig {
	return CacheConfig{
		Name:            name,
		SizeBytes:       1024, // 4 sets x 4 ways x 64B
		Ways:            4,
		BlockBytes:      64,
		HitLatency:      10,
		ResponseLatency: 5,
		MSHRs:           2,
	}
}

func newTestCache(t *testing.T) (*sim.System, *Cache, *stubPort) {
	t.Helper()
	sys := sim.NewSystem(1)
	stub := &stubPort{sys: sys, latency: 100}
	c := NewCache(sys, testCacheCfg("l1"), stub)
	return sys, c, stub
}

func TestCacheAtomicHitMiss(t *testing.T) {
	sys, c, stub := newTestCache(t)
	_ = sys
	lat := c.AtomicLatency(Access{Addr: 0x100, Size: 4})
	if lat != 10+100+5 {
		t.Fatalf("miss latency = %d", lat)
	}
	if c.Misses() != 1 || c.Hits() != 0 {
		t.Fatalf("counts: %d/%d", c.Hits(), c.Misses())
	}
	if len(stub.reqs) != 1 || stub.reqs[0].Addr != 0x100 || stub.reqs[0].Size != 64 {
		t.Fatalf("downstream req = %+v", stub.reqs)
	}
	// Same block now hits.
	lat = c.AtomicLatency(Access{Addr: 0x13C, Size: 4})
	if lat != 10 {
		t.Fatalf("hit latency = %d", lat)
	}
	if c.Hits() != 1 {
		t.Fatal("hit not counted")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	_, c, stub := newTestCache(t)
	// 4 ways in set 0: blocks at stride numSets*block = 4*64 = 256.
	for i := uint32(0); i < 4; i++ {
		c.AtomicLatency(Access{Addr: i * 256, Size: 4})
	}
	if c.Misses() != 4 {
		t.Fatalf("misses = %d", c.Misses())
	}
	// Touch block 0 to make block 1 the LRU victim.
	c.AtomicLatency(Access{Addr: 0, Size: 4})
	// A fifth block evicts block at 256 (LRU), not block 0.
	c.AtomicLatency(Access{Addr: 4 * 256, Size: 4})
	c.AtomicLatency(Access{Addr: 0, Size: 4})
	if c.Misses() != 5 {
		t.Fatalf("block 0 was evicted; misses = %d", c.Misses())
	}
	c.AtomicLatency(Access{Addr: 256, Size: 4})
	if c.Misses() != 6 {
		t.Fatalf("block 256 should have been evicted; misses = %d", c.Misses())
	}
	_ = stub
}

func TestCacheWriteback(t *testing.T) {
	_, c, stub := newTestCache(t)
	// Dirty a block in set 0.
	c.AtomicLatency(Access{Addr: 0, Size: 4, Write: true})
	// Fill the set, then evict the dirty block.
	for i := uint32(1); i <= 4; i++ {
		c.AtomicLatency(Access{Addr: i * 256, Size: 4})
	}
	if c.Writebacks() != 1 {
		t.Fatalf("writebacks = %d", c.Writebacks())
	}
	// The writeback must target block address 0.
	var wb *Access
	for i := range stub.reqs {
		if stub.reqs[i].Write {
			wb = &stub.reqs[i]
		}
	}
	if wb == nil || wb.Addr != 0 || wb.Size != 64 {
		t.Fatalf("writeback req = %+v", wb)
	}
}

func TestCacheTimingHit(t *testing.T) {
	sys, c, _ := newTestCache(t)
	c.AtomicLatency(Access{Addr: 0x40, Size: 4}) // prefill
	doneAt := sim.Tick(0)
	c.SendTiming(Access{Addr: 0x40, Size: 4}, func() { doneAt = sys.Now() })
	sys.Run(sim.MaxTick, 0)
	if doneAt != 10 {
		t.Fatalf("hit completion at %d, want 10", doneAt)
	}
}

func TestCacheTimingMissAndCoalesce(t *testing.T) {
	sys, c, stub := newTestCache(t)
	var done1, done2 sim.Tick
	c.SendTiming(Access{Addr: 0x80, Size: 4}, func() { done1 = sys.Now() })
	c.SendTiming(Access{Addr: 0x84, Size: 4, Write: true}, func() { done2 = sys.Now() })
	sys.Run(sim.MaxTick, 0)
	// Request path 10, downstream 100, response 5.
	if done1 != 115 || done2 != 115 {
		t.Fatalf("completions at %d/%d, want 115", done1, done2)
	}
	if c.Misses() != 1 {
		t.Fatalf("misses = %d (coalescing broken)", c.Misses())
	}
	if got := c.hits.Count(); got != 0 {
		t.Fatalf("hits = %d", got)
	}
	if c.mshrHits.Count() != 1 {
		t.Fatalf("mshrHits = %d", c.mshrHits.Count())
	}
	if len(stub.reqs) != 1 {
		t.Fatalf("downstream fetched %d times", len(stub.reqs))
	}
	// The coalesced write must have dirtied the line → later eviction writes back.
	for i := uint32(1); i <= 4; i++ {
		c.AtomicLatency(Access{Addr: 0x80 + i*256, Size: 4})
	}
	if c.Writebacks() != 1 {
		t.Fatal("coalesced store did not dirty the line")
	}
}

func TestCacheMSHRLimitQueues(t *testing.T) {
	sys, c, _ := newTestCache(t)
	var completions []sim.Tick
	record := func() { completions = append(completions, sys.Now()) }
	// 3 distinct blocks with only 2 MSHRs.
	c.SendTiming(Access{Addr: 0 * 64, Size: 4}, record)
	c.SendTiming(Access{Addr: 1 * 64, Size: 4}, record)
	c.SendTiming(Access{Addr: 2 * 64, Size: 4}, record)
	if c.OutstandingMisses() != 2 {
		t.Fatalf("outstanding = %d, want 2", c.OutstandingMisses())
	}
	sys.Run(sim.MaxTick, 0)
	if len(completions) != 3 {
		t.Fatalf("completions = %v", completions)
	}
	// The third must complete strictly after the first two.
	if completions[2] <= completions[0] {
		t.Fatalf("queued request completed too early: %v", completions)
	}
	if c.Misses() != 3 {
		t.Fatalf("misses = %d", c.Misses())
	}
}

func TestCacheNilDoneWriteback(t *testing.T) {
	sys, c, _ := newTestCache(t)
	c.SendTiming(Access{Addr: 0x200, Size: 64, Write: true}, nil)
	sys.Run(sim.MaxTick, 0) // must not panic
}

func TestCachePrefetcher(t *testing.T) {
	sys := sim.NewSystem(1)
	stub := &stubPort{sys: sys, latency: 100}
	cfg := testCacheCfg("l1p")
	cfg.NextLine = true
	cfg.MSHRs = 4
	c := NewCache(sys, cfg, stub)
	c.SendTiming(Access{Addr: 0x0, Size: 4}, func() {})
	sys.Run(sim.MaxTick, 0)
	if c.prefetches.Count() != 1 {
		t.Fatalf("prefetches = %d", c.prefetches.Count())
	}
	// The next line should now hit without a new miss.
	before := c.Misses()
	lat := c.AtomicLatency(Access{Addr: 0x40, Size: 4})
	if lat != 10 || c.Misses() != before {
		t.Fatalf("prefetched line missed (lat=%d)", lat)
	}
}

func TestCacheConfigValidation(t *testing.T) {
	sys := sim.NewSystem(1)
	stub := &stubPort{sys: sys}
	bad := []CacheConfig{
		{Name: "b1", SizeBytes: 0, Ways: 1, BlockBytes: 64, MSHRs: 1},
		{Name: "b2", SizeBytes: 1024, Ways: 1, BlockBytes: 60, MSHRs: 1},
		{Name: "b3", SizeBytes: 1000, Ways: 1, BlockBytes: 64, MSHRs: 1},
		{Name: "b4", SizeBytes: 1024, Ways: 1, BlockBytes: 64, MSHRs: 0},
		{Name: "b5", SizeBytes: 192 * 64, Ways: 1, BlockBytes: 64, MSHRs: 1}, // 192 sets
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %s did not panic", cfg.Name)
				}
			}()
			NewCache(sys, cfg, stub)
		}()
	}
}

// TestCacheWorkingSetProperty: any access pattern confined to a working set
// no larger than one way-set never misses twice on the same block (with LRU
// and a single set's capacity not exceeded).
func TestCacheWorkingSetProperty(t *testing.T) {
	f := func(seq []uint8) bool {
		sys := sim.NewSystem(2)
		stub := &stubPort{sys: sys, latency: 1}
		c := NewCache(sys, testCacheCfg("prop"), stub)
		// Working set: 4 blocks that all map to set 0 (= ways). LRU
		// guarantees they co-reside after first touch.
		blocks := []uint32{0, 256, 512, 768}
		seen := map[uint32]bool{}
		coldMisses := 0
		for _, s := range seq {
			b := blocks[int(s)%len(blocks)]
			if !seen[b] {
				seen[b] = true
				coldMisses++
			}
			c.AtomicLatency(Access{Addr: b, Size: 4})
		}
		return c.Misses() == uint64(coldMisses)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBusTiming(t *testing.T) {
	sys := sim.NewSystem(1)
	stub := &stubPort{sys: sys, latency: 50}
	bus := NewBus(sys, BusConfig{Name: "bus", Latency: 10, TicksPerByte: 1}, stub)
	var d1, d2 sim.Tick
	bus.SendTiming(Access{Addr: 0, Size: 64}, func() { d1 = sys.Now() })
	bus.SendTiming(Access{Addr: 64, Size: 64}, func() { d2 = sys.Now() })
	sys.Run(sim.MaxTick, 0)
	// First: 10 + 64 + 50 = 124. Second waits 64 ticks of occupancy.
	if d1 != 124 {
		t.Fatalf("d1 = %d", d1)
	}
	if d2 != 124+64 {
		t.Fatalf("d2 = %d, want %d", d2, 124+64)
	}
	if bus.BytesMoved() != 128 {
		t.Fatalf("bytes = %d", bus.BytesMoved())
	}
}

func TestBusAtomic(t *testing.T) {
	sys := sim.NewSystem(1)
	stub := &stubPort{sys: sys, latency: 50}
	bus := NewBus(sys, BusConfig{Name: "bus", Latency: 10, TicksPerByte: 2}, stub)
	lat := bus.AtomicLatency(Access{Addr: 0, Size: 8})
	if lat != 10+16+50 {
		t.Fatalf("atomic = %d", lat)
	}
}

func TestDRAMRowBuffer(t *testing.T) {
	sys := sim.NewSystem(1)
	d := NewDRAM(sys, DRAMConfig{
		Name: "dram", Banks: 2, RowBytes: 1024,
		RowHitLatency: 15, RowMissLatency: 45, TicksPerByte: 0,
	})
	// First access to a row: conflict.
	if lat := d.AtomicLatency(Access{Addr: 0, Size: 64}); lat != 45 {
		t.Fatalf("first = %d", lat)
	}
	// Same row: hit.
	if lat := d.AtomicLatency(Access{Addr: 512, Size: 64}); lat != 15 {
		t.Fatalf("same row = %d", lat)
	}
	// Different row, same bank (rows 0 and 2 both map to bank 0).
	if lat := d.AtomicLatency(Access{Addr: 2048, Size: 64}); lat != 45 {
		t.Fatalf("conflict = %d", lat)
	}
	if d.RowHitRate() != 1.0/3.0 {
		t.Fatalf("hit rate = %v", d.RowHitRate())
	}
	if d.Reads() != 3 || d.Writes() != 0 || d.BytesMoved() != 192 {
		t.Fatal("dram accounting wrong")
	}
}

func TestDRAMTimingQueueing(t *testing.T) {
	sys := sim.NewSystem(1)
	d := NewDRAM(sys, DRAMConfig{
		Name: "dram", Banks: 2, RowBytes: 1024,
		RowHitLatency: 10, RowMissLatency: 30, TicksPerByte: 0,
	})
	var d1, d2, d3 sim.Tick
	d.SendTiming(Access{Addr: 0, Size: 64}, func() { d1 = sys.Now() })    // bank 0, miss: 30
	d.SendTiming(Access{Addr: 512, Size: 64}, func() { d2 = sys.Now() })  // bank 0, hit, queued: 30+10
	d.SendTiming(Access{Addr: 1024, Size: 64}, func() { d3 = sys.Now() }) // bank 1, miss, parallel: 30
	sys.Run(sim.MaxTick, 0)
	if d1 != 30 || d2 != 40 || d3 != 30 {
		t.Fatalf("completions = %d %d %d", d1, d2, d3)
	}
}

func TestDefaultHierarchy(t *testing.T) {
	sys := sim.NewSystem(1)
	h := NewHierarchy(sys, DefaultHierarchyConfig("sys"))
	// A demand load misses L1D and L2, reaches DRAM.
	lat := h.L1D.AtomicLatency(Access{Addr: 0x1000, Size: 4})
	if lat == 0 {
		t.Fatal("zero miss latency")
	}
	if h.L1D.Misses() != 1 || h.L2.Misses() != 1 || h.DRAM.Reads() != 1 {
		t.Fatal("miss did not propagate")
	}
	// Second access hits in L1.
	lat2 := h.L1D.AtomicLatency(Access{Addr: 0x1004, Size: 4})
	if lat2 >= lat {
		t.Fatalf("hit latency %d not better than miss %d", lat2, lat)
	}
	// Instruction side is separate.
	h.L1I.AtomicLatency(Access{Addr: 0x1000, Size: 4, Inst: true})
	if h.L1I.Misses() != 1 {
		t.Fatal("L1I should miss independently")
	}
	if h.L2.Hits() != 1 {
		t.Fatalf("L2 hits = %d (L1I miss should hit L2)", h.L2.Hits())
	}
	// Timing path end-to-end.
	fired := false
	h.L1D.SendTiming(Access{Addr: 0x100000, Size: 8, Write: true}, func() { fired = true })
	sys.Run(sim.MaxTick, 0)
	if !fired {
		t.Fatal("timing access never completed")
	}
	if sys.Now() == 0 {
		t.Fatal("no time elapsed")
	}
}

func TestCacheMissRate(t *testing.T) {
	_, c, _ := newTestCache(t)
	if c.MissRate() != 0 {
		t.Fatal("empty miss rate")
	}
	c.AtomicLatency(Access{Addr: 0, Size: 4})
	c.AtomicLatency(Access{Addr: 0, Size: 4})
	c.AtomicLatency(Access{Addr: 4, Size: 4})
	if got := c.MissRate(); got != 1.0/3.0 {
		t.Fatalf("miss rate = %v", got)
	}
}
