package mem

import (
	"gem5prof/internal/lruidx"
	"gem5prof/internal/sim"
)

// TLBConfig sets the geometry of a guest translation lookaside buffer.
type TLBConfig struct {
	Name string
	// Entries is the fully-associative entry count.
	Entries int
	// PageBytes is the guest page size (must be a power of two).
	PageBytes uint32
	// MissLatency models the table-walk cost charged on a miss.
	MissLatency sim.Tick
	// Domain tags the walk events; per-core TLBs in a multicore guest carry
	// their core's domain (see CacheConfig.Domain).
	Domain sim.Domain
}

// TLB sits in front of a cache port and charges translation latency. The
// g5 guest uses identity mapping (physical == virtual), so the TLB models
// only the *timing* of translation, mirroring how the classic gem5 memory
// system charges TLB latency independently of the page-table contents.
//
// Replacement is exact LRU via an O(1) lruidx.Index rather than the
// original O(entries) scan; TestTLBDifferential pins the two to the same
// hit/miss and victim sequence.
type TLB struct {
	sys  *sim.System
	cfg  TLBConfig
	next Port

	idx *lruidx.Index

	fnLookup sim.FuncID
	nameWalk string

	// translations counts every lookup; since lookups resolve
	// synchronously, hits + misses == translations always holds — the
	// conformance invariant walker checks it.
	translations *sim.Counter
	hits         *sim.Counter
	misses       *sim.Counter
}

// NewTLB builds a TLB in front of next.
func NewTLB(sys *sim.System, cfg TLBConfig, next Port) *TLB {
	if cfg.Entries <= 0 || cfg.PageBytes == 0 || cfg.PageBytes&(cfg.PageBytes-1) != 0 {
		panic("mem: bad TLB config")
	}
	if next == nil {
		panic("mem: TLB needs a downstream port")
	}
	t := &TLB{sys: sys, cfg: cfg, next: next, idx: lruidx.New(cfg.Entries)}
	t.fnLookup = sys.Tracer().RegisterFunc(cfg.Name+"::translateTiming", 1900, sim.FuncVirtual)
	t.nameWalk = cfg.Name + ".walk"
	st := sys.Stats()
	t.translations = st.Counter(cfg.Name+".translations", "address translations requested")
	t.hits = st.Counter(cfg.Name+".hits", "TLB hits")
	t.misses = st.Counter(cfg.Name+".misses", "TLB misses (table walks)")
	sys.Register(t)
	return t
}

// Name implements sim.SimObject.
func (t *TLB) Name() string { return t.cfg.Name }

// Hits returns the hit count.
func (t *TLB) Hits() uint64 { return t.hits.Count() }

// Misses returns the miss (walk) count.
func (t *TLB) Misses() uint64 { return t.misses.Count() }

// MissRate returns misses / lookups.
func (t *TLB) MissRate() float64 {
	total := t.hits.Count() + t.misses.Count()
	if total == 0 {
		return 0
	}
	return float64(t.misses.Count()) / float64(total)
}

// Translations returns the total lookup count.
func (t *TLB) Translations() uint64 { return t.translations.Count() }

// lookup probes and fills the entry file; returns true on hit.
func (t *TLB) lookup(addr uint32) bool {
	t.sys.Tracer().Call(t.fnLookup)
	t.translations.Inc()
	page := uint64(addr / t.cfg.PageBytes)
	if slot, ok := t.idx.Lookup(page); ok {
		t.idx.Touch(slot)
		t.hits.Inc()
		return true
	}
	t.misses.Inc()
	t.idx.Insert(page)
	return false
}

// AtomicLatency implements Port.
func (t *TLB) AtomicLatency(acc Access) sim.Tick {
	extra := sim.Tick(0)
	if !t.lookup(acc.Addr) {
		extra = t.cfg.MissLatency
	}
	return extra + t.next.AtomicLatency(acc)
}

// SendTiming implements Port.
func (t *TLB) SendTiming(acc Access, done func()) {
	if t.lookup(acc.Addr) {
		t.next.SendTiming(acc, done)
		return
	}
	// Table walk, then the access proceeds.
	t.sys.ScheduleIn(sim.NewEvent(t.nameWalk, t.fnLookup, func() {
		t.next.SendTiming(acc, done)
	}).SetDomain(t.cfg.Domain), t.cfg.MissLatency)
}
