package mem

import "gem5prof/internal/sim"

// HierarchyConfig describes a classic two-level guest memory system:
// split L1 caches per CPU, a shared bus, a unified L2, and DRAM.
type HierarchyConfig struct {
	Prefix string
	L1I    CacheConfig
	L1D    CacheConfig
	L2     CacheConfig
	Bus    BusConfig
	DRAM   DRAMConfig
	// GuestTLBs inserts per-core instruction and data TLBs in front of the
	// L1s (gem5's ARM FS configuration). Off by default so the baseline
	// matches the classic SE-mode memory system.
	GuestTLBs bool
	ITB       TLBConfig
	DTB       TLBConfig
	// Directory inserts a MESI-style directory controller between the
	// per-core L1 data caches and the shared L2. Only meaningful for
	// NewMultiHierarchy with more than one core; off by default so the
	// single-core memory system (and its statistics) is untouched.
	Directory bool
	Dir       DirectoryConfig
}

// DefaultHierarchyConfig mirrors the gem5 ARM defaults used by the paper's
// simulations: 32KB 2-way L1s, a 1MB 8-way L2, and DDR4 DRAM.
func DefaultHierarchyConfig(prefix string) HierarchyConfig {
	return HierarchyConfig{
		Prefix: prefix,
		L1I: CacheConfig{
			Name:            prefix + ".l1i",
			SizeBytes:       32 * 1024,
			Ways:            2,
			BlockBytes:      64,
			HitLatency:      1 * sim.Nanosecond,
			ResponseLatency: 1 * sim.Nanosecond,
			MSHRs:           4,
		},
		L1D: CacheConfig{
			Name:            prefix + ".l1d",
			SizeBytes:       32 * 1024,
			Ways:            2,
			BlockBytes:      64,
			HitLatency:      2 * sim.Nanosecond,
			ResponseLatency: 2 * sim.Nanosecond,
			MSHRs:           8,
		},
		L2: CacheConfig{
			Name:            prefix + ".l2",
			SizeBytes:       1024 * 1024,
			Ways:            8,
			BlockBytes:      64,
			HitLatency:      12 * sim.Nanosecond,
			ResponseLatency: 4 * sim.Nanosecond,
			MSHRs:           16,
		},
		Bus: BusConfig{
			Name:         prefix + ".membus",
			Latency:      2 * sim.Nanosecond,
			TicksPerByte: 16,
		},
		DRAM: DefaultDDR4(prefix + ".dram"),
		Dir: DirectoryConfig{
			Name:              prefix + ".dir",
			LookupLatency:     4 * sim.Nanosecond,
			InvalidateLatency: 6 * sim.Nanosecond,
		},
		ITB: TLBConfig{
			Name:        prefix + ".itb",
			Entries:     48,
			PageBytes:   4096,
			MissLatency: 20 * sim.Nanosecond,
		},
		DTB: TLBConfig{
			Name:        prefix + ".dtb",
			Entries:     64,
			PageBytes:   4096,
			MissLatency: 20 * sim.Nanosecond,
		},
	}
}

// Hierarchy is one constructed memory system.
type Hierarchy struct {
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	Bus  *Bus
	DRAM *DRAM
}

// NewHierarchy builds the memory system bottom-up in sys. The DRAM
// controller is constructed against the memory domain's view so that, when
// sharding is enabled, its events run on the memory shard; everything above
// the bus stays on the CPU shard.
func NewHierarchy(sys *sim.System, cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{}
	h.DRAM = NewDRAM(sys.DomainView(sim.DomainMem), cfg.DRAM)
	h.Bus = NewBus(sys, cfg.Bus, h.DRAM)
	h.L2 = NewCache(sys, cfg.L2, h.Bus)
	h.L1I = NewCache(sys, cfg.L1I, h.L2)
	h.L1D = NewCache(sys, cfg.L1D, h.L2)
	return h
}
