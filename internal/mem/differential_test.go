package mem

// Differential tests: the flattened guest cache and the O(1) guest TLB
// must match the naive pre-refactor implementations access-for-access —
// same hits and misses, same victims (observed through the downstream
// writeback stream), same latencies.

import (
	"math/rand"
	"testing"

	"gem5prof/internal/sim"
)

// naiveGuestCache replicates the pre-refactor cache state: per-set line
// slices, division-based indexing, scan-based LRU victims. It models the
// atomic path (lookup → fill → writeback) and reports what the old code
// observably did for each access.
type naiveGuestCache struct {
	cfg     CacheConfig
	sets    [][]cacheLine
	numSets uint32
	lruSeq  uint64
}

func newNaiveGuestCache(cfg CacheConfig) *naiveGuestCache {
	numSets := cfg.SizeBytes / (uint32(cfg.Ways) * cfg.BlockBytes)
	c := &naiveGuestCache{cfg: cfg, numSets: numSets, sets: make([][]cacheLine, numSets)}
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, cfg.Ways)
	}
	return c
}

func (c *naiveGuestCache) index(addr uint32) (set uint32, tag uint32) {
	block := blockAlign(addr, c.cfg.BlockBytes)
	set = (block / c.cfg.BlockBytes) & (c.numSets - 1)
	tag = block / (c.cfg.BlockBytes * c.numSets)
	return set, tag
}

// access performs one atomic access and returns (hit, writebackAddr,
// wroteBack).
func (c *naiveGuestCache) access(acc Access) (bool, uint32, bool) {
	set, tag := c.index(acc.Addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			c.lruSeq++
			lines[i].lru = c.lruSeq
			if acc.Write {
				lines[i].dirty = true
			}
			return true, 0, false
		}
	}
	// Miss: fill over the LRU victim, writing back dirty lines.
	victim := &lines[0]
	for i := range lines {
		l := &lines[i]
		if !l.valid {
			victim = l
			break
		}
		if l.lru < victim.lru {
			victim = l
		}
	}
	var wbAddr uint32
	var wrote bool
	if victim.valid && victim.dirty {
		wbAddr = (victim.tag*c.numSets + set) * c.cfg.BlockBytes
		wrote = true
	}
	victim.tag = tag
	victim.valid = true
	victim.dirty = acc.Write
	c.lruSeq++
	victim.lru = c.lruSeq
	return false, wbAddr, wrote
}

// TestCacheDifferential drives the real cache's atomic path and the
// naive reference with identical randomized streams, comparing hit/miss
// outcomes and the downstream writeback traffic on every access.
func TestCacheDifferential(t *testing.T) {
	cfgs := []CacheConfig{
		{Name: "d1", SizeBytes: 1 << 10, Ways: 4, BlockBytes: 64, HitLatency: 1, ResponseLatency: 1, MSHRs: 4},
		{Name: "d2", SizeBytes: 32 << 10, Ways: 8, BlockBytes: 64, HitLatency: 1, ResponseLatency: 1, MSHRs: 4},
		{Name: "d3", SizeBytes: 4 << 10, Ways: 1, BlockBytes: 32, HitLatency: 1, ResponseLatency: 1, MSHRs: 4},
	}
	for ci, cfg := range cfgs {
		sys := sim.NewSystem(1)
		stub := &stubPort{sys: sys, latency: 7}
		c := NewCache(sys, cfg, stub)
		ref := newNaiveGuestCache(cfg)
		rng := rand.New(rand.NewSource(int64(ci)*1299721 + 5))
		footprint := 4 * cfg.SizeBytes
		for i := 0; i < 50000; i++ {
			acc := Access{
				Addr:  rng.Uint32() % footprint,
				Size:  8,
				Write: rng.Intn(3) == 0,
			}
			hitsBefore := c.Hits()
			wbBefore := len(stub.reqs)
			c.AtomicLatency(acc)
			gotHit := c.Hits() > hitsBefore
			wantHit, wantWB, wantWrote := ref.access(acc)
			if gotHit != wantHit {
				t.Fatalf("cfg %d step %d addr %#x: hit=%v want %v", ci, i, acc.Addr, gotHit, wantHit)
			}
			// On a miss the downstream sees the block fetch and, when the
			// victim was dirty, its writeback — victim-for-victim equality.
			var gotWB []Access
			if !gotHit {
				gotWB = stub.reqs[wbBefore:]
				want := 1
				if wantWrote {
					want = 2
				}
				if len(gotWB) != want {
					t.Fatalf("cfg %d step %d: %d downstream reqs, want %d", ci, i, len(gotWB), want)
				}
				if wantWrote {
					wb := gotWB[len(gotWB)-1]
					if !wb.Write || wb.Addr != wantWB {
						t.Fatalf("cfg %d step %d: writeback %+v, want addr %#x", ci, i, wb, wantWB)
					}
				}
			}
		}
		if c.Misses() == 0 || c.Hits() == 0 {
			t.Fatalf("cfg %d: degenerate stream (hits %d misses %d)", ci, c.Hits(), c.Misses())
		}
	}
}

// naiveGuestTLB is the pre-refactor scan-based TLB entry file.
type naiveGuestTLB struct {
	entries []struct {
		page  uint32
		lru   uint64
		valid bool
	}
	seq       uint64
	pageBytes uint32
}

func newNaiveGuestTLB(entries int, pageBytes uint32) *naiveGuestTLB {
	t := &naiveGuestTLB{pageBytes: pageBytes}
	t.entries = make([]struct {
		page  uint32
		lru   uint64
		valid bool
	}, entries)
	return t
}

func (t *naiveGuestTLB) lookup(addr uint32) bool {
	page := addr / t.pageBytes
	t.seq++
	victim := &t.entries[0]
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			e.lru = t.seq
			return true
		}
		if !e.valid {
			victim = e
		} else if victim.valid && e.lru < victim.lru {
			victim = e
		}
	}
	victim.page = page
	victim.valid = true
	victim.lru = t.seq
	return false
}

// TestTLBDifferential pins the O(1) guest TLB to the naive scan on
// randomized address streams: identical hit/miss sequences mean
// identical charged walk latencies.
func TestTLBDifferential(t *testing.T) {
	for _, entries := range []int{1, 4, 64} {
		sys := sim.NewSystem(1)
		stub := &stubPort{sys: sys, latency: 3}
		tl := NewTLB(sys, TLBConfig{Name: "dtlb", Entries: entries, PageBytes: 4096, MissLatency: 20}, stub)
		ref := newNaiveGuestTLB(entries, 4096)
		rng := rand.New(rand.NewSource(int64(entries) * 77))
		for i := 0; i < 40000; i++ {
			addr := rng.Uint32() % uint32(8*entries*4096)
			missBefore := tl.Misses()
			tl.AtomicLatency(Access{Addr: addr, Size: 8})
			gotHit := tl.Misses() == missBefore
			if wantHit := ref.lookup(addr); gotHit != wantHit {
				t.Fatalf("entries=%d step %d addr %#x: hit=%v want %v", entries, i, addr, gotHit, wantHit)
			}
		}
	}
}
