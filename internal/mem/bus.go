package mem

import "gem5prof/internal/sim"

// BusConfig sets the timing of a shared system bus / crossbar.
type BusConfig struct {
	Name string
	// Latency is the fixed arbitration + wire latency per transaction.
	Latency sim.Tick
	// TicksPerByte sets the bandwidth; a transaction of N bytes occupies the
	// bus for N*TicksPerByte ticks.
	TicksPerByte sim.Tick
}

// Bus serializes transactions from any number of upstream ports onto one
// downstream port, modeling arbitration latency and finite bandwidth.
type Bus struct {
	sys  *sim.System
	cfg  BusConfig
	next Port
	// fwdDomain is the simulation domain of the downstream port: the bus's
	// forward events are tagged with it so that, under sharded execution,
	// delivery to a memory-domain device fires on the memory shard.
	fwdDomain sim.Domain

	busyUntil sim.Tick

	fnForward sim.FuncID

	transactions *sim.Counter
	bytesMoved   *sim.Counter
	waitTicks    *sim.Counter
}

// NewBus builds a bus in sys in front of next.
func NewBus(sys *sim.System, cfg BusConfig, next Port) *Bus {
	if next == nil {
		panic("mem: bus needs a downstream port")
	}
	b := &Bus{sys: sys, cfg: cfg, next: next}
	if ds, ok := next.(DomainSource); ok {
		b.fwdDomain = ds.EventDomain()
	}
	b.fnForward = sys.Tracer().RegisterFunc(cfg.Name+"::recvTimingReq", 800, sim.FuncVirtual|sim.FuncHot)
	st := sys.Stats()
	b.transactions = st.Counter(cfg.Name+".transactions", "bus transactions")
	b.bytesMoved = st.Counter(cfg.Name+".bytes", "bytes transferred")
	b.waitTicks = st.Counter(cfg.Name+".waitTicks", "ticks spent waiting for the bus")
	sys.Register(b)
	return b
}

// Name implements sim.SimObject.
func (b *Bus) Name() string { return b.cfg.Name }

// occupancy returns how long a transaction of size bytes holds the bus.
func (b *Bus) occupancy(size uint8) sim.Tick {
	return sim.Tick(size) * b.cfg.TicksPerByte
}

// AtomicLatency implements Port. Atomic mode charges latency and occupancy
// but does not model contention (matching gem5's atomic crossbar).
func (b *Bus) AtomicLatency(acc Access) sim.Tick {
	b.sys.Tracer().Call(b.fnForward)
	b.account(acc)
	return b.cfg.Latency + b.occupancy(acc.Size) + b.next.AtomicLatency(acc)
}

// SendTiming implements Port.
func (b *Bus) SendTiming(acc Access, done func()) {
	b.sys.Tracer().Call(b.fnForward)
	b.account(acc)
	now := b.sys.Now()
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	b.waitTicks.Addn(uint64(start - now))
	b.busyUntil = start + b.occupancy(acc.Size)
	delay := (start - now) + b.cfg.Latency + b.occupancy(acc.Size)
	b.sys.ScheduleIn(sim.NewEvent(b.cfg.Name+".fwd", b.fnForward, func() {
		b.next.SendTiming(acc, done)
	}).SetDomain(b.fwdDomain), delay)
}

func (b *Bus) account(acc Access) {
	b.transactions.Inc()
	b.bytesMoved.Addn(uint64(acc.Size))
}

// BytesMoved returns the total traffic through the bus.
func (b *Bus) BytesMoved() uint64 { return b.bytesMoved.Count() }
