package mem

import (
	"fmt"
	"strings"
	"testing"

	"gem5prof/internal/sim"
)

// coherenceScript decodes a fuzz input into a deterministic access script
// against a multicore hierarchy with the directory enabled, runs it to
// quiescence, and returns the final stat dump plus every invariant
// violation. The address pool is 16 blocks across 4 cache sets, small
// enough that the script forces heavy sharing, upgrades, downgrades,
// evictions, and in-flight invalidations.
func coherenceScript(data []byte) (dump string, violations []string) {
	if len(data) < 2 {
		return "", nil
	}
	cores := 2 + int(data[0])%3
	atomic := data[0]&0x80 != 0
	script := data[1:]

	sys := sim.NewSystem(7)
	hcfg := DefaultHierarchyConfig("sys")
	hcfg.Directory = true
	h := NewMultiHierarchy(sys, hcfg, cores)

	decode := func(i int) (core int, acc Access) {
		b1, b2 := script[2*i], script[2*i+1]
		return int(b1) % cores, Access{
			Addr:  0x8000 + uint32(b2%16)*hcfg.L1D.BlockBytes,
			Size:  4,
			Write: b1&0x40 != 0,
		}
	}
	n := len(script) / 2
	if atomic {
		// The atomic path resolves every access synchronously inside one
		// event, the way an AtomicSimpleCPU guest drives the hierarchy.
		ev := sim.NewEvent("fuzz.atomic", 0, func() {
			for i := 0; i < n; i++ {
				core, acc := decode(i)
				h.DPort(core).AtomicLatency(acc)
			}
		})
		sys.ScheduleIn(ev, sim.Nanosecond)
	} else {
		// The timing path issues one access per nanosecond so fetches
		// overlap: conflicting requests queue at the busy directory entry
		// and invalidations land on in-flight MSHRs.
		for i := 0; i < n; i++ {
			i := i
			ev := sim.NewEvent(fmt.Sprintf("fuzz.acc%d", i), 0, func() {
				core, acc := decode(i)
				h.DPort(core).SendTiming(acc, nil)
			})
			sys.ScheduleIn(ev, sim.Tick(i+1)*sim.Nanosecond)
		}
	}
	res := sys.Run(sim.Second, 10_000_000)
	if res.Status != sim.ExitQueueEmpty {
		violations = append(violations, fmt.Sprintf("script did not drain: %v", res.Status))
	}

	violations = append(violations, h.Dir.Audit()...)

	// Drained conservation: every forwarded fetch is exactly one tracked
	// copy, eviction, invalidation, or dropped install.
	st := sys.Stats()
	get := func(leaf string) float64 { return st.Get(hcfg.Dir.Name + "." + leaf) }
	fetches := get("getS") + get("getM")
	resolved := get("putS") + get("putM") + get("invals") + get("droppedFills") + get("tracked")
	if fetches != resolved {
		violations = append(violations, fmt.Sprintf(
			"conservation: getS+getM = %.0f != putS+putM+invals+droppedFills+tracked = %.0f",
			fetches, resolved))
	}

	var b strings.Builder
	for _, name := range st.Names() {
		fmt.Fprintf(&b, "%s = %v\n", name, st.Get(name))
	}
	return b.String(), violations
}

// FuzzCoherence lets the fuzzer drive the directory protocol directly with
// adversarial access scripts: any structural audit failure, conservation
// break, stuck script, or run-to-run nondeterminism is a crasher. The
// corpus under testdata/fuzz/FuzzCoherence replays during plain `go test`
// as a regression suite.
func FuzzCoherence(f *testing.F) {
	f.Add([]byte{2, 0x00, 0x01, 0x40, 0x01, 0x01, 0x02, 0x41, 0x02})
	f.Add([]byte{3, 0x42, 0x05, 0x00, 0x05, 0x41, 0x05, 0x43, 0x05, 0x01, 0x05})
	f.Add([]byte{0x84, 0x40, 0x00, 0x01, 0x00, 0x42, 0x00, 0x03, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		dump, violations := coherenceScript(data)
		for _, v := range violations {
			t.Error(v)
		}
		again, _ := coherenceScript(data)
		if dump != again {
			t.Error("same script produced different stat dumps across runs")
		}
	})
}
