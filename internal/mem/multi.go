package mem

import (
	"fmt"

	"gem5prof/internal/sim"
)

// MultiHierarchy is a memory system for an n-core guest: private split L1s
// per core over a shared bus, a unified L2, and DRAM.
type MultiHierarchy struct {
	L1I []*Cache
	L1D []*Cache
	// ITB/DTB are per-core guest TLBs (nil entries when disabled).
	ITB []*TLB
	DTB []*TLB
	// Dir is the MESI directory between the L1Ds and the L2; nil unless
	// HierarchyConfig.Directory was set with more than one core.
	Dir  *Directory
	L2   *Cache
	Bus  *Bus
	DRAM *DRAM
}

// IPort returns the port the core's instruction fetches should use.
func (h *MultiHierarchy) IPort(i int) Port {
	if h.ITB != nil && h.ITB[i] != nil {
		return h.ITB[i]
	}
	return h.L1I[i]
}

// DPort returns the port the core's data accesses should use.
func (h *MultiHierarchy) DPort(i int) Port {
	if h.DTB != nil && h.DTB[i] != nil {
		return h.DTB[i]
	}
	return h.L1D[i]
}

// NewMultiHierarchy builds the n-core memory system in sys. The cache names
// in cfg are suffixed with the core index.
func NewMultiHierarchy(sys *sim.System, cfg HierarchyConfig, n int) *MultiHierarchy {
	if n <= 0 {
		panic("mem: hierarchy needs at least one core")
	}
	h := &MultiHierarchy{}
	h.DRAM = NewDRAM(sys.DomainView(sim.DomainMem), cfg.DRAM)
	h.Bus = NewBus(sys, cfg.Bus, h.DRAM)
	h.L2 = NewCache(sys, cfg.L2, h.Bus)
	if cfg.Directory && n > 1 {
		h.Dir = NewDirectory(sys, cfg.Dir, h.L2, n)
	}
	for i := 0; i < n; i++ {
		// Core-private levels carry the core's domain so that sharded
		// execution can place each core's L1/TLB events on that core's
		// shard (fused back onto the coordinator when the layout is
		// narrower). The shared L2/bus/directory stay on the default
		// coordinator domain.
		l1i := cfg.L1I
		l1i.Name = fmt.Sprintf("%s%d", cfg.L1I.Name, i)
		l1i.Domain = sim.DomainForCore(i)
		l1d := cfg.L1D
		l1d.Name = fmt.Sprintf("%s%d", cfg.L1D.Name, i)
		l1d.Domain = sim.DomainForCore(i)
		// Instruction caches bypass the directory: KISA code is read-only.
		h.L1I = append(h.L1I, NewCache(sys, l1i, h.L2))
		if h.Dir != nil {
			h.L1D = append(h.L1D, NewCache(sys, l1d, h.Dir.Port(i)))
			h.Dir.Attach(i, h.L1D[i])
		} else {
			h.L1D = append(h.L1D, NewCache(sys, l1d, h.L2))
		}
		if cfg.GuestTLBs {
			itb := cfg.ITB
			itb.Name = fmt.Sprintf("%s%d", cfg.ITB.Name, i)
			itb.Domain = sim.DomainForCore(i)
			dtb := cfg.DTB
			dtb.Name = fmt.Sprintf("%s%d", cfg.DTB.Name, i)
			dtb.Domain = sim.DomainForCore(i)
			h.ITB = append(h.ITB, NewTLB(sys, itb, h.L1I[i]))
			h.DTB = append(h.DTB, NewTLB(sys, dtb, h.L1D[i]))
		} else {
			h.ITB = append(h.ITB, nil)
			h.DTB = append(h.DTB, nil)
		}
	}
	return h
}
