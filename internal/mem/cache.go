package mem

import (
	"fmt"
	"math/bits"

	"gem5prof/internal/sim"
)

// CacheConfig sets the geometry and timing of one cache level.
type CacheConfig struct {
	Name       string
	SizeBytes  uint32
	Ways       int
	BlockBytes uint32
	// HitLatency is charged on the request path for every lookup.
	HitLatency sim.Tick
	// ResponseLatency is charged on the fill path of a miss.
	ResponseLatency sim.Tick
	// MSHRs bounds outstanding distinct misses; further misses queue.
	MSHRs int
	// NextLine enables a next-line prefetcher on misses.
	NextLine bool
	// Stride enables a constant-stride prefetcher (detects the demand
	// stream's block stride and runs one block ahead). Mutually exclusive
	// with NextLine.
	Stride bool
	// Domain tags this cache's self-scheduled events (hit responses, miss
	// forwards, fills). Core-private caches in a multicore guest carry their
	// core's domain so sharded execution can place them on the core's shard;
	// the zero value (DomainCPU) keeps shared caches on the coordinator.
	Domain sim.Domain
}

func (c *CacheConfig) validate() {
	switch {
	case c.SizeBytes == 0 || c.Ways <= 0 || c.BlockBytes == 0:
		panic(fmt.Sprintf("mem: cache %s: zero geometry", c.Name))
	case c.BlockBytes&(c.BlockBytes-1) != 0:
		panic(fmt.Sprintf("mem: cache %s: block size not a power of two", c.Name))
	case c.SizeBytes%(uint32(c.Ways)*c.BlockBytes) != 0:
		panic(fmt.Sprintf("mem: cache %s: size %d not divisible by ways*block", c.Name, c.SizeBytes))
	case c.MSHRs <= 0:
		panic(fmt.Sprintf("mem: cache %s: need at least one MSHR", c.Name))
	case c.NextLine && c.Stride:
		panic(fmt.Sprintf("mem: cache %s: NextLine and Stride are exclusive", c.Name))
	}
	sets := c.SizeBytes / (uint32(c.Ways) * c.BlockBytes)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache %s: set count %d not a power of two", c.Name, sets))
	}
}

type cacheLine struct {
	tag   uint32
	valid bool
	dirty bool
	// excl is the coherence ownership bit: the line is held Exclusive or
	// Modified, so stores need no directory upgrade. Always false when the
	// cache has no coherence hooks attached.
	excl bool
	lru  uint64 // last-use sequence number
}

type mshr struct {
	blockAddr uint32
	write     bool // any coalesced writer
	waiters   []func()
	prefetch  bool
	// fillExcl records that the directory granted exclusive ownership for
	// the outstanding fetch, so the fill installs the line with excl set.
	fillExcl bool
	// dropInstall is set when the directory invalidates the block while the
	// fetch is still in flight: the fill completes its waiters but must not
	// install the (stale) line.
	dropInstall bool
}

type pendingReq struct {
	acc  Access
	done func()
}

// Cache is one level of a classic write-back, write-allocate cache with LRU
// replacement and a bounded MSHR file. The line array is one contiguous
// set-major slice (lines[set*ways+way]) with the block/set shifts computed
// once at construction, so the per-access path has no divisions and no
// per-set pointer chase.
type Cache struct {
	sys  *sim.System
	cfg  CacheConfig
	next Port

	// coh, when non-nil, makes the cache a coherent participant: line
	// installs and evictions are reported so a directory can track
	// presence, and stores to non-exclusive lines request an upgrade.
	coh CoherenceHooks
	// pendingExcl carries an exclusivity grant delivered during an atomic
	// miss, where no MSHR exists to hold fillExcl.
	pendingExcl bool

	lines      []cacheLine // numSets × ways, set-major
	numSets    uint32
	ways       uint32
	blockShift uint
	setBits    uint
	lruSeq     uint64

	mshrs   map[uint32]*mshr
	pending []pendingReq

	// Event names are per-access in the timing path; building them with
	// string concatenation there showed up as steady allocation traffic.
	nameHitResp string
	nameMissFwd string
	nameFill    string

	// Stride-prefetcher state: last demand block, last delta, confidence.
	strideLast  uint32
	strideDelta int32
	strideConf  int

	// Host model attribution.
	fnAccess    sim.FuncID
	fnFill      sim.FuncID
	fnWriteback sim.FuncID
	tagHostBase uint64

	// Statistics. Every demand access entering the cache increments
	// accesses exactly once, and is resolved by exactly one of hits,
	// misses, or mshrHits — the conformance invariant walker checks
	// hits+misses+mshrHits == accesses on drained systems (<= otherwise,
	// since MSHR-full accesses park in pending unresolved).
	accesses   *sim.Counter
	hits       *sim.Counter
	misses     *sim.Counter
	mshrHits   *sim.Counter
	writebacks *sim.Counter
	prefetches *sim.Counter
}

// NewCache builds a cache in sys that forwards misses to next.
func NewCache(sys *sim.System, cfg CacheConfig, next Port) *Cache {
	cfg.validate()
	if next == nil {
		panic("mem: cache needs a downstream port")
	}
	numSets := cfg.SizeBytes / (uint32(cfg.Ways) * cfg.BlockBytes)
	c := &Cache{
		sys:         sys,
		cfg:         cfg,
		next:        next,
		numSets:     numSets,
		ways:        uint32(cfg.Ways),
		blockShift:  uint(bits.TrailingZeros32(cfg.BlockBytes)),
		setBits:     uint(bits.TrailingZeros32(numSets)),
		lines:       make([]cacheLine, numSets*uint32(cfg.Ways)),
		mshrs:       make(map[uint32]*mshr),
		nameHitResp: cfg.Name + ".hitResp",
		nameMissFwd: cfg.Name + ".missFwd",
		nameFill:    cfg.Name + ".fillResp",
	}
	tr := sys.Tracer()
	c.fnAccess = tr.RegisterFunc(cfg.Name+"::access", 1400, sim.FuncVirtual|sim.FuncHot)
	c.fnFill = tr.RegisterFunc(cfg.Name+"::handleFill", 1100, sim.FuncVirtual)
	c.fnWriteback = tr.RegisterFunc(cfg.Name+"::writebackBlk", 700, sim.FuncVirtual)
	c.tagHostBase = tr.AllocData(cfg.Name+".tags", uint64(numSets)*uint64(cfg.Ways)*16)
	st := sys.Stats()
	c.accesses = st.Counter(cfg.Name+".accesses", "demand accesses entering the cache")
	c.hits = st.Counter(cfg.Name+".hits", "demand hits")
	c.misses = st.Counter(cfg.Name+".misses", "demand misses")
	c.mshrHits = st.Counter(cfg.Name+".mshrHits", "misses coalesced into an MSHR")
	c.writebacks = st.Counter(cfg.Name+".writebacks", "dirty blocks written back")
	c.prefetches = st.Counter(cfg.Name+".prefetches", "prefetch fills issued")
	sys.Register(c)
	return c
}

// Name implements sim.SimObject.
func (c *Cache) Name() string { return c.cfg.Name }

// Config returns the cache configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Hits returns the demand hit count.
func (c *Cache) Hits() uint64 { return c.hits.Count() }

// Misses returns the demand miss count.
func (c *Cache) Misses() uint64 { return c.misses.Count() }

// Writebacks returns the dirty eviction count.
func (c *Cache) Writebacks() uint64 { return c.writebacks.Count() }

// MissRate returns misses / (hits+misses), or 0 with no traffic.
func (c *Cache) MissRate() float64 {
	total := c.hits.Count() + c.misses.Count()
	if total == 0 {
		return 0
	}
	return float64(c.misses.Count()) / float64(total)
}

func (c *Cache) index(addr uint32) (set uint32, tag uint32) {
	blockNum := addr >> c.blockShift
	return blockNum & (c.numSets - 1), blockNum >> c.setBits
}

// set returns the contiguous line window of one set.
func (c *Cache) set(set uint32) []cacheLine {
	base := set * c.ways
	return c.lines[base : base+c.ways]
}

// lookup returns the line holding addr, or nil.
func (c *Cache) lookup(addr uint32) *cacheLine {
	set, tag := c.index(addr)
	lines := c.set(set)
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			return &lines[i]
		}
	}
	return nil
}

// touch marks a line most-recently-used.
func (c *Cache) touch(l *cacheLine) {
	c.lruSeq++
	l.lru = c.lruSeq
}

// victim returns the LRU line of addr's set, preferring invalid lines.
func (c *Cache) victim(addr uint32) *cacheLine {
	set, _ := c.index(addr)
	lines := c.set(set)
	best := &lines[0]
	for i := range lines {
		l := &lines[i]
		if !l.valid {
			return l
		}
		if l.lru < best.lru {
			best = l
		}
	}
	return best
}

// traceTagProbe models the host-side tag array read for one lookup.
func (c *Cache) traceTagProbe(addr uint32) {
	set, _ := c.index(addr)
	c.sys.Tracer().Data(c.tagHostBase+uint64(set)*uint64(c.cfg.Ways)*16, 16, false)
}

// fill installs addr's block, evicting the LRU victim. Dirty victims are
// written back downstream. mode distinguishes timing from atomic traffic.
// excl installs the line with coherence ownership.
func (c *Cache) fill(addr uint32, dirty bool, atomic bool, excl bool) (wbLatency sim.Tick) {
	v := c.victim(addr)
	set, _ := c.index(addr)
	if v.valid && c.coh != nil {
		c.coh.OnEvict((v.tag<<c.setBits|set)<<c.blockShift, v.dirty)
	}
	if v.valid && v.dirty {
		c.writebacks.Inc()
		c.sys.Tracer().Call(c.fnWriteback)
		wb := Access{
			Addr:  (v.tag<<c.setBits | set) << c.blockShift,
			Size:  uint8(c.cfg.BlockBytes),
			Write: true,
		}
		if atomic {
			wbLatency = c.next.AtomicLatency(wb)
		} else {
			c.next.SendTiming(wb, nil)
		}
	}
	_, tag := c.index(addr)
	v.tag = tag
	v.valid = true
	v.dirty = dirty
	v.excl = excl || dirty
	c.touch(v)
	c.sys.Tracer().Call(c.fnFill)
	if c.coh != nil {
		c.coh.OnFill(blockAlign(addr, c.cfg.BlockBytes), v.excl)
	}
	return wbLatency
}

// Accesses returns the demand access count.
func (c *Cache) Accesses() uint64 { return c.accesses.Count() }

// AtomicLatency implements Port.
func (c *Cache) AtomicLatency(acc Access) sim.Tick {
	c.accesses.Inc()
	c.sys.Tracer().Call(c.fnAccess)
	c.traceTagProbe(acc.Addr)
	if l := c.lookup(acc.Addr); l != nil {
		c.hits.Inc()
		c.touch(l)
		lat := c.cfg.HitLatency
		if acc.Write {
			if c.coh != nil && !l.excl {
				lat += c.coh.OnWriteHit(blockAlign(acc.Addr, c.cfg.BlockBytes), true)
				l.excl = true
			}
			l.dirty = true
		}
		return lat
	}
	c.misses.Inc()
	lat := c.cfg.HitLatency
	fetch := Access{Addr: blockAlign(acc.Addr, c.cfg.BlockBytes), Size: uint8(c.cfg.BlockBytes), Inst: acc.Inst, Excl: acc.Write}
	c.pendingExcl = false
	lat += c.next.AtomicLatency(fetch)
	excl := c.pendingExcl
	c.pendingExcl = false
	lat += c.fill(acc.Addr, acc.Write, true, excl)
	lat += c.cfg.ResponseLatency
	return lat
}

// SendTiming implements Port.
func (c *Cache) SendTiming(acc Access, done func()) {
	c.accesses.Inc()
	c.sendTiming(acc, done)
}

// sendTiming is the access path shared by fresh demand accesses and
// MSHR-freed re-probes; only the former count toward the accesses stat.
func (c *Cache) sendTiming(acc Access, done func()) {
	c.sys.Tracer().Call(c.fnAccess)
	c.traceTagProbe(acc.Addr)
	if done == nil {
		done = func() {}
	}
	if l := c.lookup(acc.Addr); l != nil {
		c.hits.Inc()
		c.touch(l)
		lat := c.cfg.HitLatency
		if acc.Write {
			if c.coh != nil && !l.excl {
				// Store to a Shared line: upgrade through the directory.
				// The invalidation round trip is charged as a surcharge on
				// this hit's response.
				lat += c.coh.OnWriteHit(blockAlign(acc.Addr, c.cfg.BlockBytes), false)
				l.excl = true
			}
			l.dirty = true
		}
		ev := sim.NewEvent(c.nameHitResp, c.fnAccess, done).SetDomain(c.cfg.Domain)
		c.sys.ScheduleIn(ev, lat)
		return
	}
	c.startMiss(acc, done)
}

func (c *Cache) startMiss(acc Access, done func()) {
	block := blockAlign(acc.Addr, c.cfg.BlockBytes)
	if m, ok := c.mshrs[block]; ok {
		// Coalesce into the outstanding miss. Each coalesced access
		// resolves as exactly one of mshrHits or misses: a demand access
		// hitting a prefetch MSHR promotes it and counts as the demand
		// miss the prefetch hid.
		m.write = m.write || acc.Write
		m.waiters = append(m.waiters, done)
		if m.prefetch {
			m.prefetch = false
			c.misses.Inc()
		} else {
			c.mshrHits.Inc()
		}
		return
	}
	if len(c.mshrs) >= c.cfg.MSHRs {
		// MSHR file full: queue until one frees.
		c.pending = append(c.pending, pendingReq{acc: acc, done: done})
		return
	}
	c.misses.Inc()
	c.allocMSHR(acc, done, false)
}

func (c *Cache) allocMSHR(acc Access, done func(), prefetch bool) {
	block := blockAlign(acc.Addr, c.cfg.BlockBytes)
	m := &mshr{blockAddr: block, write: acc.Write, prefetch: prefetch}
	if done != nil {
		m.waiters = append(m.waiters, done)
	}
	c.mshrs[block] = m
	fetch := Access{Addr: block, Size: uint8(c.cfg.BlockBytes), Inst: acc.Inst, Excl: acc.Write}
	c.sys.ScheduleIn(sim.NewEvent(c.nameMissFwd, c.fnAccess, func() {
		c.next.SendTiming(fetch, func() { c.handleFill(m) })
	}).SetDomain(c.cfg.Domain), c.cfg.HitLatency)
	if !prefetch {
		switch {
		case c.cfg.NextLine:
			c.maybePrefetch(block+c.cfg.BlockBytes, acc.Inst)
		case c.cfg.Stride:
			if target, ok := c.observeStride(block); ok {
				c.maybePrefetch(target, acc.Inst)
			}
		}
	}
}

// observeStride trains the stride detector on a demand miss block and
// returns a prefetch target once the stride repeats.
func (c *Cache) observeStride(block uint32) (uint32, bool) {
	delta := int32(block) - int32(c.strideLast)
	if delta != 0 && delta == c.strideDelta {
		if c.strideConf < 4 {
			c.strideConf++
		}
	} else {
		c.strideDelta = delta
		c.strideConf = 0
	}
	c.strideLast = block
	if c.strideConf >= 1 {
		return uint32(int32(block) + c.strideDelta), true
	}
	return 0, false
}

// maybePrefetch issues a next-line prefetch when the block is absent and an
// MSHR is available.
func (c *Cache) maybePrefetch(addr uint32, inst bool) {
	if c.lookup(addr) != nil {
		return
	}
	block := blockAlign(addr, c.cfg.BlockBytes)
	if _, ok := c.mshrs[block]; ok {
		return
	}
	if len(c.mshrs) >= c.cfg.MSHRs {
		return
	}
	c.prefetches.Inc()
	c.allocMSHR(Access{Addr: block, Size: uint8(c.cfg.BlockBytes), Inst: inst}, nil, true)
}

func (c *Cache) handleFill(m *mshr) {
	delete(c.mshrs, m.blockAddr)
	respLat := c.cfg.ResponseLatency
	switch {
	case m.dropInstall:
		// The directory invalidated the block mid-flight: complete the
		// waiters (data moved functionally at execute time) but do not
		// install the stale line.
		if c.coh != nil {
			c.coh.OnDropInstall(m.blockAddr)
		}
	default:
		if c.coh != nil && m.write && !m.fillExcl {
			// A store coalesced into a read fetch after it was forwarded
			// without write intent: upgrade before installing dirty.
			respLat += c.coh.OnWriteHit(m.blockAddr, false)
		}
		c.fill(m.blockAddr, m.write, false, m.fillExcl)
	}
	for _, w := range m.waiters {
		ev := sim.NewEvent(c.nameFill, c.fnFill, w).SetDomain(c.cfg.Domain)
		c.sys.ScheduleIn(ev, respLat)
	}
	// Service a queued request now that an MSHR is free. The re-probe
	// must not recount the access: it was counted when it first entered.
	if len(c.pending) > 0 && len(c.mshrs) < c.cfg.MSHRs {
		p := c.pending[0]
		c.pending = c.pending[1:]
		// Re-probe: the fill may have satisfied it.
		c.sendTiming(p.acc, p.done)
	}
}

// OutstandingMisses returns the number of allocated MSHRs (tests).
func (c *Cache) OutstandingMisses() int { return len(c.mshrs) }

// CoherenceHooks receives line-lifetime notifications from a coherent cache
// and answers its ownership upgrades. Implemented by the per-core ports of
// a Directory; a cache with no hooks attached behaves classically.
type CoherenceHooks interface {
	// OnFill reports that block was installed, with or without ownership.
	OnFill(block uint32, excl bool)
	// OnEvict reports that block left the cache (clean or dirty).
	OnEvict(block uint32, dirty bool)
	// OnWriteHit requests ownership for a store to a non-exclusive block
	// and returns the invalidation latency to charge the store. atomic
	// selects how forced writebacks at other cores travel downstream.
	OnWriteHit(block uint32, atomic bool) sim.Tick
	// OnDropInstall reports that an invalidated in-flight fetch completed
	// without installing.
	OnDropInstall(block uint32)
}

// AttachCoherence makes the cache a coherent participant reporting to h.
// Must be called before any traffic.
func (c *Cache) AttachCoherence(h CoherenceHooks) { c.coh = h }

// Invalidate removes block (block-aligned) from the cache on behalf of a
// coherence directory, writing a dirty copy back downstream. An outstanding
// fetch of the block is marked to complete without installing. It returns
// whether a valid line was actually dropped, and in atomic mode the
// writeback latency to charge the requester that forced the invalidation.
func (c *Cache) Invalidate(block uint32, atomic bool) (hadLine bool, lat sim.Tick) {
	if m, ok := c.mshrs[block]; ok {
		m.dropInstall = true
		m.fillExcl = false
	}
	l := c.lookup(block)
	if l == nil {
		return false, 0
	}
	if l.dirty {
		lat = c.writebackFor(block, atomic)
	}
	l.valid, l.dirty, l.excl = false, false, false
	return true, lat
}

// Downgrade strips ownership of block (block-aligned) so another core can
// share it, writing a dirty copy back downstream. It returns whether the
// cache actually held the block exclusively.
func (c *Cache) Downgrade(block uint32, atomic bool) (hadExcl bool, lat sim.Tick) {
	if m, ok := c.mshrs[block]; ok && m.fillExcl {
		m.fillExcl = false
		hadExcl = true
	}
	l := c.lookup(block)
	if l == nil {
		return hadExcl, 0
	}
	hadExcl = hadExcl || l.excl
	if l.dirty {
		lat = c.writebackFor(block, atomic)
		l.dirty = false
	}
	l.excl = false
	return hadExcl, lat
}

// GrantExclusive records a directory's ownership grant for the fetch of
// block currently in flight (timing: its MSHR; atomic: the synchronous
// miss in progress).
func (c *Cache) GrantExclusive(block uint32) {
	if m, ok := c.mshrs[block]; ok {
		m.fillExcl = true
		return
	}
	c.pendingExcl = true
}

// VisitLines calls f for every valid line, in storage (set-then-way) order,
// reporting its block address and coherence state. The conformance audits
// use it to cross-check the cache contents against the directory.
func (c *Cache) VisitLines(f func(block uint32, dirty, excl bool)) {
	for i := range c.lines {
		l := &c.lines[i]
		if !l.valid {
			continue
		}
		set := uint32(i) / c.ways
		f((l.tag<<c.setBits|set)<<c.blockShift, l.dirty, l.excl)
	}
}

// writebackFor pushes one full block downstream as a coherence-forced
// writeback and returns its latency in atomic mode.
func (c *Cache) writebackFor(block uint32, atomic bool) sim.Tick {
	c.writebacks.Inc()
	c.sys.Tracer().Call(c.fnWriteback)
	wb := Access{Addr: block, Size: uint8(c.cfg.BlockBytes), Write: true}
	if atomic {
		return c.next.AtomicLatency(wb)
	}
	c.next.SendTiming(wb, nil)
	return 0
}
