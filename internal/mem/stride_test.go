package mem

import (
	"testing"

	"gem5prof/internal/sim"
)

func TestStridePrefetcher(t *testing.T) {
	sys := sim.NewSystem(1)
	stub := &stubPort{sys: sys, latency: 100}
	cfg := testCacheCfg("l1s")
	cfg.Stride = true
	cfg.MSHRs = 4
	c := NewCache(sys, cfg, stub)
	// Strided demand stream: blocks 0, 128, 256, ... (stride 2 blocks).
	for i := uint32(0); i < 3; i++ {
		c.SendTiming(Access{Addr: i * 128, Size: 4}, func() {})
		sys.Run(sim.MaxTick, 0)
	}
	if c.prefetches.Count() == 0 {
		t.Fatal("stride prefetcher never fired")
	}
	// The next strided block should have been prefetched.
	before := c.Misses()
	lat := c.AtomicLatency(Access{Addr: 3 * 128, Size: 4})
	if lat != cfg.HitLatency || c.Misses() != before {
		t.Fatalf("strided block missed (lat=%d)", lat)
	}
}

func TestStrideNextLineExclusive(t *testing.T) {
	sys := sim.NewSystem(1)
	cfg := testCacheCfg("bad")
	cfg.Stride = true
	cfg.NextLine = true
	defer func() {
		if recover() == nil {
			t.Fatal("exclusive prefetchers accepted")
		}
	}()
	NewCache(sys, cfg, &stubPort{sys: sys})
}
