// Package mem implements the guest memory system's timing model: classic
// set-associative caches with MSHRs and write-back policy, a shared bus, and
// a DRAM controller with an open-row model.
//
// Following the design split described in DESIGN.md, data moves functionally
// through guest.Memory at execute time; this package models only *when*
// accesses complete. Timing requests carry no data.
package mem

import "gem5prof/internal/sim"

// Access describes one memory-system request.
type Access struct {
	// Addr is the guest physical byte address.
	Addr uint32
	// Size is the access size in bytes.
	Size uint8
	// Write is true for stores and writebacks.
	Write bool
	// Inst is true for instruction fetches.
	Inst bool
	// Excl marks a miss fetch that carries write intent: the requester
	// wants the block in an exclusive (writable) state. Only a coherence
	// directory interprets it; plain hierarchy levels ignore the flag.
	Excl bool
}

// Port is one level of the timing memory hierarchy.
type Port interface {
	// SendTiming initiates the access. done is invoked (via a scheduled
	// event) when the access completes; it may be nil for fire-and-forget
	// traffic such as writebacks.
	SendTiming(acc Access, done func())
	// AtomicLatency performs the access in atomic mode: state (tags, rows)
	// is updated immediately and the total latency is returned.
	AtomicLatency(acc Access) sim.Tick
}

// DomainSource is optionally implemented by Ports whose timing callbacks must
// execute on a specific simulation domain's shard (see sim.ShardConfig). A
// port in front of such a component tags the event that delivers the request
// with this domain so that, under sharded execution, the callback fires on
// the owning shard's queue. Ports that do not implement it stay on the
// default (CPU) domain.
type DomainSource interface {
	EventDomain() sim.Domain
}

// blockAlign returns addr rounded down to a multiple of block.
func blockAlign(addr uint32, block uint32) uint32 { return addr &^ (block - 1) }
