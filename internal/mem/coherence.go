package mem

import (
	"fmt"
	"sort"

	"gem5prof/internal/sim"
)

// DirectoryConfig sets the timing of the MESI directory controller.
type DirectoryConfig struct {
	Name string
	// LookupLatency is charged on every miss fetch passing the directory
	// before it is forwarded to the shared level below.
	LookupLatency sim.Tick
	// InvalidateLatency is charged per sharer invalidated or owner
	// downgraded, on the requester that forced the transition.
	InvalidateLatency sim.Tick
}

func (c *DirectoryConfig) validate() {
	if c.Name == "" {
		panic("mem: directory needs a name")
	}
}

// dirEntry is the directory's view of one block: which L1s hold it, whether
// one of them owns it exclusively, and the in-flight serialization state.
type dirEntry struct {
	// exclusive marks the block owned (MESI E or M) by the sole sharer.
	// The directory does not distinguish E from M: the owner writes back
	// on downgrade/invalidation if it actually dirtied the line.
	exclusive bool
	// sharers is the presence bitmask over cores, maintained at install
	// time (OnFill) and cleared on eviction or invalidation.
	sharers uint64
	// busy blocks the entry while a miss fetch for it is outstanding
	// below; conflicting fetches queue in waiting and are serviced FIFO.
	busy    bool
	waiting []dirWaiting
}

type dirWaiting struct {
	core int
	acc  Access
	done func()
}

// Directory is a blocking MESI-style directory controller sitting between
// the per-core L1 data caches and the shared level below (L2). Miss fetches
// carry write intent in Access.Excl; the directory invalidates or downgrades
// other cores' copies before forwarding the fetch, and grants exclusive
// ownership back through Cache.GrantExclusive. Presence is tracked when the
// requesting cache actually installs the line (Cache fill → OnFill), so the
// bitmask never claims a copy that an in-flight invalidation dropped.
//
// The instruction caches bypass the directory: KISA code is read-only, and
// data moves functionally at execute time, so instruction-side staleness
// cannot arise. Like the rest of the package, the directory models only
// *when* coherence traffic completes — single-writer/multiple-reader is
// enforced on the timing state (line excl/dirty bits), not on data.
type Directory struct {
	sys    *sim.System
	cfg    DirectoryConfig
	next   Port
	caches []*Cache
	ports  []*dirPort

	entries    map[uint32]*dirEntry
	blockBytes uint32

	nameFwd  string
	fnLookup sim.FuncID

	// Transition counters. Every forwarded fetch (getS+getM) ends as
	// exactly one install (a presence in sharers until putS/putM/inval) or
	// one dropped install, so on a drained system
	//   getS + getM == putS + putM + invals + dropped + tracked
	// which conformance.CheckStats verifies.
	getS       *sim.Counter
	getM       *sim.Counter
	putS       *sim.Counter
	putM       *sim.Counter
	invals     *sim.Counter
	downgrades *sim.Counter
	upgrades   *sim.Counter
	dropped    *sim.Counter
}

// NewDirectory builds a directory for n cores in front of next (the shared
// L2). Wire each core's L1D with the directory as its downstream port and
// register it with Attach:
//
//	dir := NewDirectory(sys, dcfg, l2, n)
//	l1d := NewCache(sys, l1cfg, dir.Port(i))
//	dir.Attach(i, l1d)
func NewDirectory(sys *sim.System, cfg DirectoryConfig, next Port, n int) *Directory {
	cfg.validate()
	if next == nil {
		panic("mem: directory needs a downstream port")
	}
	if n < 2 || n > 64 {
		panic(fmt.Sprintf("mem: directory %s: core count %d outside [2,64]", cfg.Name, n))
	}
	d := &Directory{
		sys:     sys,
		cfg:     cfg,
		next:    next,
		caches:  make([]*Cache, n),
		entries: make(map[uint32]*dirEntry),
		nameFwd: cfg.Name + ".fwd",
	}
	d.fnLookup = sys.Tracer().RegisterFunc(cfg.Name+"::lookup", 900, sim.FuncVirtual)
	st := sys.Stats()
	d.getS = st.Counter(cfg.Name+".getS", "read miss fetches through the directory")
	d.getM = st.Counter(cfg.Name+".getM", "write-intent miss fetches through the directory")
	d.putS = st.Counter(cfg.Name+".putS", "clean L1 evictions observed")
	d.putM = st.Counter(cfg.Name+".putM", "dirty L1 evictions observed")
	d.invals = st.Counter(cfg.Name+".invals", "sharer copies invalidated")
	d.downgrades = st.Counter(cfg.Name+".downgrades", "exclusive owners downgraded to shared")
	d.upgrades = st.Counter(cfg.Name+".upgrades", "stores upgraded from shared to exclusive")
	d.dropped = st.Counter(cfg.Name+".droppedFills", "in-flight fetches invalidated before install")
	st.Formula(cfg.Name+".tracked", "L1 copies currently tracked by the directory", d.trackedCopies)
	for i := 0; i < n; i++ {
		d.ports = append(d.ports, &dirPort{d: d, core: i})
	}
	sys.Register(d)
	return d
}

// Name implements sim.SimObject.
func (d *Directory) Name() string { return d.cfg.Name }

// Port returns core i's request port into the directory.
func (d *Directory) Port(i int) Port { return d.ports[i] }

// Attach registers core i's L1 data cache and hooks it to the directory.
func (d *Directory) Attach(i int, c *Cache) {
	if d.blockBytes == 0 {
		d.blockBytes = c.cfg.BlockBytes
	} else if d.blockBytes != c.cfg.BlockBytes {
		panic(fmt.Sprintf("mem: directory %s: mixed L1 block sizes", d.cfg.Name))
	}
	d.caches[i] = c
	c.AttachCoherence(d.ports[i])
}

// trackedCopies sums the presence bitmask population over all entries.
func (d *Directory) trackedCopies() float64 {
	var n int
	//lint:deterministic commutative popcount sum over all entries
	for _, e := range d.entries {
		n += popcount(e.sharers)
	}
	return float64(n)
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func (d *Directory) entry(block uint32) *dirEntry {
	e := d.entries[block]
	if e == nil {
		e = &dirEntry{}
		d.entries[block] = e
	}
	return e
}

// release drops entries that track nothing, bounding the map.
func (d *Directory) release(block uint32, e *dirEntry) {
	if !e.busy && len(e.waiting) == 0 && e.sharers == 0 {
		delete(d.entries, block)
	}
}

// process performs the state transitions for one miss fetch from core and
// returns the invalidation/downgrade latency to charge it. The caller has
// already serialized conflicting requests (timing: entry busy bit; atomic:
// everything is synchronous).
func (d *Directory) process(core int, acc Access, atomic bool) sim.Tick {
	e := d.entry(acc.Addr)
	var lat sim.Tick
	if acc.Excl {
		d.getM.Inc()
		// Take every other copy, including fetches still in flight (their
		// MSHR is marked to drop the install).
		lat += d.takeCopies(e, acc.Addr, core, atomic)
		e.exclusive = true
		d.caches[core].GrantExclusive(acc.Addr)
		return lat
	}
	d.getS.Inc()
	if e.exclusive {
		// Downgrade the owner so the block can be shared.
		for i, c := range d.caches {
			if i == core || e.sharers&(1<<uint(i)) == 0 {
				continue
			}
			if had, wb := c.Downgrade(acc.Addr, atomic); had {
				d.downgrades.Inc()
				lat += d.cfg.InvalidateLatency + wb
			}
		}
		e.exclusive = false
	}
	if e.sharers == 0 {
		// Sole reader: MESI E grant, silently upgradable.
		e.exclusive = true
		d.caches[core].GrantExclusive(acc.Addr)
	}
	return lat
}

// takeCopies invalidates block everywhere except at core: present lines are
// dropped (dirty ones written back), in-flight fetches are marked to skip
// their install. Returns the latency to charge the requester.
func (d *Directory) takeCopies(e *dirEntry, block uint32, core int, atomic bool) sim.Tick {
	var lat sim.Tick
	for i, c := range d.caches {
		if i == core {
			continue
		}
		had, wb := c.Invalidate(block, atomic)
		if had {
			d.invals.Inc()
			e.sharers &^= 1 << uint(i)
			lat += d.cfg.InvalidateLatency + wb
		}
	}
	return lat
}

// start runs one request through the directory: transitions now, forward
// the fetch after the lookup+invalidate latency, unblock the entry when the
// level below responds (by which time the requester has installed).
func (d *Directory) start(core int, acc Access, done func()) {
	d.sys.Tracer().Call(d.fnLookup)
	e := d.entry(acc.Addr)
	e.busy = true
	lat := d.cfg.LookupLatency + d.process(core, acc, false)
	d.sys.ScheduleIn(sim.NewEvent(d.nameFwd, d.fnLookup, func() {
		d.next.SendTiming(acc, func() {
			e.busy = false
			done()
			d.drain(acc.Addr, e)
		})
	}), lat)
}

// drain services the next queued conflicting request, if any.
func (d *Directory) drain(block uint32, e *dirEntry) {
	if e.busy || len(e.waiting) == 0 {
		d.release(block, e)
		return
	}
	w := e.waiting[0]
	e.waiting = e.waiting[1:]
	d.start(w.core, w.acc, w.done)
}

// onFill tracks the install of a granted fetch.
func (d *Directory) onFill(core int, block uint32, excl bool) {
	e := d.entry(block)
	e.sharers |= 1 << uint(core)
	if excl {
		e.exclusive = true
	}
}

// onEvict tracks a copy silently leaving an L1.
func (d *Directory) onEvict(core int, block uint32, dirty bool) {
	e := d.entries[block]
	if e == nil || e.sharers&(1<<uint(core)) == 0 {
		return
	}
	e.sharers &^= 1 << uint(core)
	if dirty {
		d.putM.Inc()
	} else {
		d.putS.Inc()
	}
	if e.sharers == 0 {
		e.exclusive = false
	}
	d.release(block, e)
}

// onDropInstall accounts a fetch whose install was invalidated mid-flight.
func (d *Directory) onDropInstall(block uint32) {
	d.dropped.Inc()
	if e := d.entries[block]; e != nil {
		d.release(block, e)
	}
}

// upgrade services a store hitting a Shared copy at core: every other copy
// is taken and the block becomes core's exclusively. Returns the latency to
// surcharge the store. Safe against a concurrent in-flight fetch: the
// fetcher's install is dropped and it re-misses, serializing after the
// upgrade.
func (d *Directory) upgrade(core int, block uint32, atomic bool) sim.Tick {
	d.sys.Tracer().Call(d.fnLookup)
	e := d.entry(block)
	d.upgrades.Inc()
	lat := d.takeCopies(e, block, core, atomic)
	e.exclusive = true
	return lat
}

// Audit verifies the structural coherence invariants against the live
// directory and cache state and returns a description of every violation:
// single-writer (an exclusive entry tracks at most one sharer; an exclusive
// or dirty L1 line is the sole tracked copy), dirty-implies-owned, and
// presence completeness in both directions (every valid L1 line has its
// directory bit set and every set bit has a line behind it). The invariants
// hold at any event boundary — presence moves atomically with the line —
// so the conformance suites call it after every run, and the fuzz target
// after every generated access script.
func (d *Directory) Audit() []string {
	var out []string
	blocks := make([]uint32, 0, len(d.entries))
	//lint:deterministic collected keys are sorted before use
	for b := range d.entries {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for _, b := range blocks {
		e := d.entries[b]
		if e.exclusive && popcount(e.sharers) > 1 {
			out = append(out, fmt.Sprintf(
				"%s: block %#x exclusive with %d sharers (mask %#x)",
				d.cfg.Name, b, popcount(e.sharers), e.sharers))
		}
		for i, c := range d.caches {
			if e.sharers&(1<<uint(i)) == 0 {
				continue
			}
			held := false
			c.VisitLines(func(block uint32, dirty, excl bool) {
				held = held || block == b
			})
			if !held {
				out = append(out, fmt.Sprintf(
					"%s: block %#x tracked at core %d (%s) but not cached there",
					d.cfg.Name, b, i, c.Name()))
			}
		}
	}
	for i, c := range d.caches {
		core := i
		c.VisitLines(func(block uint32, dirty, excl bool) {
			e := d.entries[block]
			if e == nil || e.sharers&(1<<uint(core)) == 0 {
				out = append(out, fmt.Sprintf(
					"%s: core %d (%s) caches block %#x the directory does not track",
					d.cfg.Name, core, c.Name(), block))
				return
			}
			if dirty && !excl {
				out = append(out, fmt.Sprintf(
					"%s: core %d (%s) holds block %#x dirty without ownership",
					d.cfg.Name, core, c.Name(), block))
			}
			if excl && (!e.exclusive || e.sharers != 1<<uint(core)) {
				out = append(out, fmt.Sprintf(
					"%s: core %d (%s) holds block %#x exclusive but the directory tracks mask %#x (exclusive=%v)",
					d.cfg.Name, core, c.Name(), block, e.sharers, e.exclusive))
			}
		})
	}
	return out
}

// dirPort is core i's request port: demand fetches go through the
// coherence machinery, write traffic (evictions and coherence-forced
// writebacks, already accounted by the hooks) is forwarded untouched. It
// doubles as the cache's CoherenceHooks endpoint so the directory knows
// which core each notification comes from.
type dirPort struct {
	d    *Directory
	core int
}

// SendTiming implements Port.
func (p *dirPort) SendTiming(acc Access, done func()) {
	if acc.Write {
		p.d.next.SendTiming(acc, done)
		return
	}
	e := p.d.entry(acc.Addr)
	if e.busy {
		e.waiting = append(e.waiting, dirWaiting{core: p.core, acc: acc, done: done})
		return
	}
	p.d.start(p.core, acc, done)
}

// AtomicLatency implements Port.
func (p *dirPort) AtomicLatency(acc Access) sim.Tick {
	if acc.Write {
		return p.d.next.AtomicLatency(acc)
	}
	p.d.sys.Tracer().Call(p.d.fnLookup)
	lat := p.d.cfg.LookupLatency + p.d.process(p.core, acc, true)
	return lat + p.d.next.AtomicLatency(acc)
}

// OnFill implements CoherenceHooks.
func (p *dirPort) OnFill(block uint32, excl bool) { p.d.onFill(p.core, block, excl) }

// OnEvict implements CoherenceHooks.
func (p *dirPort) OnEvict(block uint32, dirty bool) { p.d.onEvict(p.core, block, dirty) }

// OnWriteHit implements CoherenceHooks.
func (p *dirPort) OnWriteHit(block uint32, atomic bool) sim.Tick {
	return p.d.upgrade(p.core, block, atomic)
}

// OnDropInstall implements CoherenceHooks.
func (p *dirPort) OnDropInstall(block uint32) { p.d.onDropInstall(block) }
