package mem

import (
	"testing"

	"gem5prof/internal/sim"
)

func newTestTLB(t *testing.T, entries int) (*sim.System, *TLB, *stubPort) {
	t.Helper()
	sys := sim.NewSystem(1)
	stub := &stubPort{sys: sys, latency: 10}
	tlb := NewTLB(sys, TLBConfig{
		Name: "itb", Entries: entries, PageBytes: 4096, MissLatency: 100,
	}, stub)
	return sys, tlb, stub
}

func TestTLBAtomicHitMiss(t *testing.T) {
	_, tlb, _ := newTestTLB(t, 4)
	// Cold: walk + downstream.
	if lat := tlb.AtomicLatency(Access{Addr: 0x1000, Size: 4}); lat != 100+10 {
		t.Fatalf("cold = %d", lat)
	}
	// Same page: hit.
	if lat := tlb.AtomicLatency(Access{Addr: 0x1FFC, Size: 4}); lat != 10 {
		t.Fatalf("warm = %d", lat)
	}
	if tlb.Hits() != 1 || tlb.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", tlb.Hits(), tlb.Misses())
	}
	if tlb.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v", tlb.MissRate())
	}
}

func TestTLBLRUEviction(t *testing.T) {
	_, tlb, _ := newTestTLB(t, 2)
	tlb.AtomicLatency(Access{Addr: 0x1000, Size: 4})
	tlb.AtomicLatency(Access{Addr: 0x2000, Size: 4})
	tlb.AtomicLatency(Access{Addr: 0x1000, Size: 4}) // page 1 MRU
	tlb.AtomicLatency(Access{Addr: 0x3000, Size: 4}) // evicts page 2
	if lat := tlb.AtomicLatency(Access{Addr: 0x2000, Size: 4}); lat != 110 {
		t.Fatalf("evicted page hit? lat=%d", lat)
	}
}

func TestTLBTimingWalkDelaysAccess(t *testing.T) {
	sys, tlb, _ := newTestTLB(t, 4)
	var cold, warm sim.Tick
	tlb.SendTiming(Access{Addr: 0x5000, Size: 4}, func() { cold = sys.Now() })
	sys.Run(sim.MaxTick, 0)
	start := sys.Now()
	tlb.SendTiming(Access{Addr: 0x5004, Size: 4}, func() { warm = sys.Now() })
	sys.Run(sim.MaxTick, 0)
	if cold != 110 {
		t.Fatalf("cold completion at %d", cold)
	}
	if warm-start != 10 {
		t.Fatalf("warm took %d", warm-start)
	}
}

func TestTLBBadConfigPanics(t *testing.T) {
	sys := sim.NewSystem(1)
	for _, cfg := range []TLBConfig{
		{Name: "a", Entries: 0, PageBytes: 4096},
		{Name: "b", Entries: 4, PageBytes: 4095},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", cfg.Name)
				}
			}()
			NewTLB(sys, cfg, &stubPort{sys: sys})
		}()
	}
}

func TestHierarchyWithGuestTLBs(t *testing.T) {
	sys := sim.NewSystem(1)
	cfg := DefaultHierarchyConfig("sys")
	cfg.GuestTLBs = true
	h := NewMultiHierarchy(sys, cfg, 2)
	if h.ITB[0] == nil || h.DTB[1] == nil {
		t.Fatal("TLBs missing")
	}
	if h.IPort(0) != Port(h.ITB[0]) || h.DPort(1) != Port(h.DTB[1]) {
		t.Fatal("ports must route through the TLBs")
	}
	// An access flows TLB -> L1 -> L2.
	h.IPort(0).AtomicLatency(Access{Addr: 0x1000, Size: 4, Inst: true})
	if h.ITB[0].Misses() != 1 || h.L1I[0].Misses() != 1 {
		t.Fatal("access did not flow through")
	}
	// Without TLBs the ports are the caches.
	h2 := NewMultiHierarchy(sys, DefaultHierarchyConfig("sys2"), 1)
	if h2.IPort(0) != Port(h2.L1I[0]) {
		t.Fatal("port should be the L1I when TLBs are off")
	}
}
