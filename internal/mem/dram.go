package mem

import "gem5prof/internal/sim"

// DRAMConfig sets the timing of the memory controller.
type DRAMConfig struct {
	Name string
	// Banks is the number of independently scheduled banks.
	Banks int
	// RowBytes is the size of one row buffer.
	RowBytes uint32
	// RowHitLatency is charged when the open row matches.
	RowHitLatency sim.Tick
	// RowMissLatency is charged on a row conflict (precharge + activate).
	RowMissLatency sim.Tick
	// TicksPerByte models the data-bus bandwidth.
	TicksPerByte sim.Tick
}

// DefaultDDR4 returns timings loosely modeled on DDR4-2933: ~15ns CAS on a
// row hit, ~45ns on a row conflict.
func DefaultDDR4(name string) DRAMConfig {
	return DRAMConfig{
		Name:           name,
		Banks:          16,
		RowBytes:       2048,
		RowHitLatency:  15 * sim.Nanosecond,
		RowMissLatency: 45 * sim.Nanosecond,
		TicksPerByte:   45, // ~22 GB/s per channel
	}
}

type dramBank struct {
	openRow   uint32
	rowValid  bool
	busyUntil sim.Tick
}

// DRAM terminates the memory hierarchy with a banked open-row controller.
type DRAM struct {
	sys   *sim.System
	cfg   DRAMConfig
	banks []dramBank

	fnAccess sim.FuncID

	reads      *sim.Counter
	writes     *sim.Counter
	bytesMoved *sim.Counter
	rowHits    *sim.Counter
	rowMisses  *sim.Counter
}

// NewDRAM builds a DRAM controller in sys.
func NewDRAM(sys *sim.System, cfg DRAMConfig) *DRAM {
	if cfg.Banks <= 0 || cfg.RowBytes == 0 {
		panic("mem: dram needs banks and a row size")
	}
	d := &DRAM{sys: sys, cfg: cfg, banks: make([]dramBank, cfg.Banks)}
	d.fnAccess = sys.Tracer().RegisterFunc(cfg.Name+"::recvAtomic", 1600, sim.FuncVirtual)
	st := sys.Stats()
	d.reads = st.Counter(cfg.Name+".reads", "read transactions")
	d.writes = st.Counter(cfg.Name+".writes", "write transactions")
	d.bytesMoved = st.Counter(cfg.Name+".bytes", "bytes transferred")
	d.rowHits = st.Counter(cfg.Name+".rowHits", "row-buffer hits")
	d.rowMisses = st.Counter(cfg.Name+".rowMisses", "row-buffer conflicts")
	sys.Register(d)
	return d
}

// Name implements sim.SimObject.
func (d *DRAM) Name() string { return d.cfg.Name }

// EventDomain implements DomainSource: DRAM timing callbacks (bank state,
// row-buffer updates, response scheduling) belong to the memory domain, so
// sharded execution runs them on the memory shard. Construct the controller
// against sys.DomainView(sim.DomainMem) so its Now() reads that shard's
// clock.
func (d *DRAM) EventDomain() sim.Domain { return sim.DomainMem }

// Reads returns the read transaction count.
func (d *DRAM) Reads() uint64 { return d.reads.Count() }

// Writes returns the write transaction count.
func (d *DRAM) Writes() uint64 { return d.writes.Count() }

// BytesMoved returns the total data moved through the controller.
func (d *DRAM) BytesMoved() uint64 { return d.bytesMoved.Count() }

// RowHitRate returns rowHits / (rowHits+rowMisses).
func (d *DRAM) RowHitRate() float64 {
	total := d.rowHits.Count() + d.rowMisses.Count()
	if total == 0 {
		return 0
	}
	return float64(d.rowHits.Count()) / float64(total)
}

// access updates bank state and returns the device latency (excluding
// queueing, which only timing mode models).
func (d *DRAM) access(acc Access) sim.Tick {
	d.sys.Tracer().Call(d.fnAccess)
	if acc.Write {
		d.writes.Inc()
	} else {
		d.reads.Inc()
	}
	d.bytesMoved.Addn(uint64(acc.Size))

	row := acc.Addr / d.cfg.RowBytes
	bank := &d.banks[int(row)%len(d.banks)]
	lat := d.cfg.RowMissLatency
	if bank.rowValid && bank.openRow == row {
		d.rowHits.Inc()
		lat = d.cfg.RowHitLatency
	} else {
		d.rowMisses.Inc()
		bank.openRow = row
		bank.rowValid = true
	}
	return lat + sim.Tick(acc.Size)*d.cfg.TicksPerByte
}

// AtomicLatency implements Port.
func (d *DRAM) AtomicLatency(acc Access) sim.Tick {
	return d.access(acc)
}

// SendTiming implements Port.
func (d *DRAM) SendTiming(acc Access, done func()) {
	row := acc.Addr / d.cfg.RowBytes
	bank := &d.banks[int(row)%len(d.banks)]
	now := d.sys.Now()
	start := now
	if bank.busyUntil > start {
		start = bank.busyUntil
	}
	lat := d.access(acc)
	bank.busyUntil = start + lat
	total := (start - now) + lat
	if done != nil {
		d.sys.ScheduleIn(sim.NewEvent(d.cfg.Name+".resp", d.fnAccess, done), total)
	}
}
