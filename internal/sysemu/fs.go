package sysemu

import (
	"gem5prof/internal/cpu"
	"gem5prof/internal/guest"
	"gem5prof/internal/sim"
)

// FSEnv is the full-system environment: ECALL traps into the guest kernel's
// machine-mode handler (via mtvec) instead of being serviced by the host.
type FSEnv struct {
	sys    *sim.System
	fnTrap sim.FuncID
}

// NewFSEnv builds an FS environment.
func NewFSEnv(sys *sim.System) *FSEnv {
	return &FSEnv{
		sys:    sys,
		fnTrap: sys.Tracer().RegisterFunc("FSWorkload::deliverTrap", 3100, sim.FuncVirtual|sim.FuncCold),
	}
}

// Ecall implements cpu.Env: deliver a machine-mode trap to the guest kernel.
func (e *FSEnv) Ecall(c *cpu.Core) {
	e.sys.Tracer().Call(e.fnTrap)
	c.Trap(cpu.CauseEcall, c.PC())
}

// Ebreak implements cpu.Env: in FS mode EBREAK acts as a firmware-level
// emergency exit (a guest bug escape hatch).
func (e *FSEnv) Ebreak(c *cpu.Core) {
	c.Halt()
	e.sys.RequestExit("FS ebreak", int(c.ReadReg(10)))
}

// Platform bundles the FS-mode machine: MMIO memory, devices, and the trap
// environment. It mirrors the VExpress-ish platform g5's FS kernel targets.
type Platform struct {
	Mem      *MMIOMem
	UART     *UART
	Timer    *Timer
	Poweroff *Poweroff
	Env      *FSEnv
}

// NewPlatform wires the standard device set over RAM. The timer interrupts
// sink (normally CPU 0's core).
func NewPlatform(sys *sim.System, ram *guest.Memory, sink InterruptSink) *Platform {
	p := &Platform{
		Mem: NewMMIOMem(sys, ram),
		Env: NewFSEnv(sys),
	}
	p.UART = NewUART(sys, "uart0", UARTBase)
	p.Timer = NewTimer(sys, "timer0", TimerBase, sink)
	p.Poweroff = NewPoweroff(sys, "poweroff0", PoweroffBase)
	p.Mem.Attach(p.UART)
	p.Mem.Attach(p.Timer)
	p.Mem.Attach(p.Poweroff)
	return p
}

// LateBindSink lets the platform be built before the CPU exists: the timer's
// sink is replaced once the core is constructed.
type LateBindSink struct{ Sink InterruptSink }

// RaiseInterrupt implements InterruptSink.
func (l *LateBindSink) RaiseInterrupt() {
	if l.Sink != nil {
		l.Sink.RaiseInterrupt()
	}
}

// ClearInterrupt implements InterruptSink.
func (l *LateBindSink) ClearInterrupt() {
	if l.Sink != nil {
		l.Sink.ClearInterrupt()
	}
}
