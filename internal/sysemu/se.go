// Package sysemu provides the two execution environments of the g5
// simulator: system-call emulation (SE mode), where ECALLs are serviced by
// the host, and full-system support (FS mode) with memory-mapped devices and
// machine-mode traps delivered to a guest mini-kernel.
package sysemu

import (
	"bytes"
	"fmt"

	"gem5prof/internal/cpu"
	"gem5prof/internal/guest"
	"gem5prof/internal/sim"
)

// SE-mode system call numbers (a7), following the RISC-V Linux convention
// used by the toolchains in the paper.
const (
	SysExit         = 93
	SysWrite        = 64
	SysRead         = 63
	SysBrk          = 214
	SysMmap         = 222
	SysClockGetTime = 113
	SysGetPID       = 172
)

// SEEnv is the system-call emulation environment: the guest's OS interface
// is serviced directly by the simulator, as in gem5's SE mode.
type SEEnv struct {
	sys *sim.System
	mem *guest.Memory

	brk    uint32
	mmapAt uint32

	stdout bytes.Buffer
	stdin  *bytes.Reader

	fnSyscall sim.FuncID

	numWrites *sim.Counter

	// threads is the multicore syscall surface; nil until AttachCores is
	// called with more than one core, so single-core guests are untouched.
	threads *threadState
}

// NewSEEnv builds an SE environment over the guest memory. brkBase is the
// initial program break (start of the emulated heap); mmapBase is where
// anonymous mappings are placed.
func NewSEEnv(sys *sim.System, m *guest.Memory, brkBase, mmapBase uint32) *SEEnv {
	e := &SEEnv{
		sys:    sys,
		mem:    m,
		brk:    brkBase,
		mmapAt: mmapBase,
		stdin:  bytes.NewReader(nil),
	}
	e.fnSyscall = sys.Tracer().RegisterFunc("SEWorkload::syscall", 5200, sim.FuncVirtual|sim.FuncCold)
	e.numWrites = sys.Stats().Counter("se.syscallWrites", "bytes written via sys_write")
	return e
}

// SetStdin provides input for SysRead.
func (e *SEEnv) SetStdin(data []byte) { e.stdin = bytes.NewReader(data) }

// Stdout returns everything the workload has written to fds 1 and 2.
func (e *SEEnv) Stdout() string { return e.stdout.String() }

// Ecall implements cpu.Env.
func (e *SEEnv) Ecall(c *cpu.Core) {
	e.sys.Tracer().Call(e.fnSyscall)
	num := c.ReadReg(17) // a7
	a0 := c.ReadReg(10)
	a1 := c.ReadReg(11)
	a2 := c.ReadReg(12)
	switch num {
	case SysExit:
		c.Halt()
		e.sys.RequestExit(fmt.Sprintf("SE exit(%d)", int32(a0)), int(a0))

	case SysWrite:
		if a0 != 1 && a0 != 2 {
			c.WriteReg(10, ^uint32(8)) // -EBADF
			return
		}
		buf := make([]byte, a2)
		if err := e.mem.ReadBytes(a1, buf); err != nil {
			c.WriteReg(10, ^uint32(13)) // -EFAULT
			return
		}
		e.stdout.Write(buf)
		e.numWrites.Addn(uint64(a2))
		c.WriteReg(10, a2)

	case SysRead:
		if a0 != 0 {
			c.WriteReg(10, ^uint32(8))
			return
		}
		buf := make([]byte, a2)
		n, _ := e.stdin.Read(buf)
		if err := e.mem.WriteBytes(a1, buf[:n]); err != nil {
			c.WriteReg(10, ^uint32(13))
			return
		}
		c.WriteReg(10, uint32(n))

	case SysBrk:
		if a0 != 0 && a0 >= e.brk && a0 < e.mem.Size() {
			e.brk = a0
		}
		c.WriteReg(10, e.brk)

	case SysMmap:
		// Anonymous mapping: bump allocate, page aligned.
		length := (a1 + guest.PageBytes - 1) &^ (guest.PageBytes - 1)
		if uint64(e.mmapAt)+uint64(length) > uint64(e.mem.Size()) {
			c.WriteReg(10, ^uint32(11)) // -ENOMEM
			return
		}
		addr := e.mmapAt
		e.mmapAt += length
		c.WriteReg(10, addr)

	case SysClockGetTime:
		// Returns nanoseconds of simulated time in (a0<<32 | a1) style:
		// write a timespec {sec, nsec} to the pointer in a1.
		ns := uint64(e.sys.Now() / sim.Nanosecond)
		_ = e.mem.Write(a1, 4, ns/1_000_000_000)
		_ = e.mem.Write(a1+4, 4, ns%1_000_000_000)
		c.WriteReg(10, 0)

	case SysGetPID:
		c.WriteReg(10, 1)

	case SysSpawn, SysJoin, SysThreadExit, SysFutexWait, SysFutexWake,
		SysAtomicAdd, SysAtomicCAS, SysNumCores:
		c.WriteReg(10, e.threadCall(c, num, a0, a1, a2))

	default:
		c.WriteReg(10, ^uint32(37)) // -ENOSYS
	}
}

// Ebreak implements cpu.Env: bare exit with code a0.
func (e *SEEnv) Ebreak(c *cpu.Core) {
	c.Halt()
	e.sys.RequestExit("SE ebreak", int(c.ReadReg(10)))
}
