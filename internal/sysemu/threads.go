package sysemu

import (
	"gem5prof/internal/cpu"
	"gem5prof/internal/sim"
)

// Threading syscall numbers (a7) of the SE-mode multicore surface. They sit
// outside the RISC-V Linux range so the Linux-convention calls above keep
// their numbers. The surface is a deliberately minimal clone/futex
// analogue: KISA has no atomic memory instructions, so cross-thread
// synchronization is expressed as syscalls, each serviced atomically within
// one simulator event (the calling core's ecall) — which is what makes the
// whole multicore guest sequentially consistent by construction.
const (
	// SysSpawn starts a secondary core: a0 = entry pc, a1 = stack top,
	// a2 = argument (lands in the child's a0). Returns the child hart id,
	// or -EAGAIN when every secondary core is busy.
	SysSpawn = 1001
	// SysJoin blocks until hart a0 calls SysThreadExit and returns its
	// result value. Joining an unspawned hart or self returns -EINVAL.
	SysJoin = 1002
	// SysThreadExit ends the calling secondary thread with result a0,
	// waking every joiner. The core parks and becomes spawnable again.
	SysThreadExit = 1003
	// SysFutexWait blocks while word [a0] still holds the expected value
	// a1 (-EAGAIN when it already differs), until a SysFutexWake on a0.
	SysFutexWait = 1004
	// SysFutexWake wakes up to a1 waiters parked on word [a0] in FIFO
	// order and returns how many it woke.
	SysFutexWake = 1005
	// SysAtomicAdd atomically adds a1 to word [a0] and returns the old
	// value.
	SysAtomicAdd = 1006
	// SysAtomicCAS compares word [a0] with a1 and, on match, stores a2.
	// Returns the old value either way.
	SysAtomicCAS = 1007
	// SysNumCores returns the guest core count.
	SysNumCores = 1008
)

// threadState is the SE environment's threading bookkeeping: which harts
// run, who waits on whom, and the futex wait queues. All queues are FIFO in
// arrival order, which is deterministic because syscalls execute in event
// order.
type threadState struct {
	cores   []*cpu.Core
	started []bool
	done    []bool
	result  []uint32
	joiners [][]int          // per target hart: harts parked in SysJoin
	futex   map[uint32][]int // word address -> parked harts, FIFO

	spawns     *sim.Counter
	joins      *sim.Counter
	futexWaits *sim.Counter
	futexWakes *sim.Counter
	atomics    *sim.Counter
}

// AttachCores hands the SE environment the guest's cores, enabling the
// threading syscall surface. Secondary cores must already be parked (the
// guest builder parks them before the simulation starts). With one core
// the surface stays dormant and nothing is registered, so a single-core
// guest's statistics are bit-identical to the pre-multicore builds.
func (e *SEEnv) AttachCores(cores []*cpu.Core) {
	if len(cores) < 2 {
		return
	}
	e.threads = newThreadState(e.sys.Stats(), cores)
}

// newThreadState builds the threading bookkeeping and registers its stats.
func newThreadState(st *sim.Registry, cores []*cpu.Core) *threadState {
	t := &threadState{
		cores:   cores,
		started: make([]bool, len(cores)),
		done:    make([]bool, len(cores)),
		result:  make([]uint32, len(cores)),
		joiners: make([][]int, len(cores)),
		futex:   make(map[uint32][]int),
	}
	t.started[0] = true // hart 0 is the main thread
	t.spawns = st.Counter("se.threads.spawns", "secondary threads spawned")
	t.joins = st.Counter("se.threads.joins", "joins completed")
	t.futexWaits = st.Counter("se.threads.futexWaits", "futex waits parked")
	t.futexWakes = st.Counter("se.threads.futexWakes", "futex waiters woken")
	t.atomics = st.Counter("se.threads.atomics", "atomic add/CAS syscalls")
	return t
}

// NumCores returns the attached core count (1 when threading is dormant).
func (e *SEEnv) NumCores() uint32 {
	if e.threads == nil {
		return 1
	}
	return uint32(len(e.threads.cores))
}

// threadCall services one threading syscall. It returns the value for the
// caller's a0; calls that park the caller have already written a0 (the
// caller's pc has advanced past the ecall by unwind time, so the parked
// core resumes right after it).
func (e *SEEnv) threadCall(c *cpu.Core, num, a0, a1, a2 uint32) uint32 {
	const (
		errAGAIN = ^uint32(10) // -EAGAIN
		errINVAL = ^uint32(21) // -EINVAL
		errFAULT = ^uint32(13) // -EFAULT
	)
	// The surface degrades gracefully on a single core (t == nil): the
	// atomics still perform their update (they are trivially atomic),
	// NumCores reports 1, wake has nobody to wake, a wait that would park
	// returns -EAGAIN (nobody could ever wake it), and spawn/join/exit
	// report no cores to run on — so the mt-suite workloads run unchanged
	// at every core count.
	t := e.threads
	self := int(c.HartID())
	switch num {
	case SysNumCores:
		return e.NumCores()

	case SysAtomicAdd:
		v, err := e.mem.Read(a0, 4)
		if err != nil {
			return errFAULT
		}
		if err := e.mem.Write(a0, 4, uint64(uint32(v)+a1)); err != nil {
			return errFAULT
		}
		if t != nil {
			t.atomics.Inc()
		}
		return uint32(v)

	case SysAtomicCAS:
		v, err := e.mem.Read(a0, 4)
		if err != nil {
			return errFAULT
		}
		if uint32(v) == a1 {
			if err := e.mem.Write(a0, 4, uint64(a2)); err != nil {
				return errFAULT
			}
		}
		if t != nil {
			t.atomics.Inc()
		}
		return uint32(v)

	case SysFutexWait:
		v, err := e.mem.Read(a0, 4)
		if err != nil {
			return errFAULT
		}
		if uint32(v) != a1 || t == nil {
			return errAGAIN
		}
		t.futex[a0] = append(t.futex[a0], self)
		t.futexWaits.Inc()
		c.Park()
		return 0

	case SysFutexWake:
		if t == nil {
			return 0
		}
		q := t.futex[a0]
		n := uint32(0)
		for len(q) > 0 && n < a1 {
			w := q[0]
			q = q[1:]
			t.cores[w].Unpark()
			t.futexWakes.Inc()
			n++
		}
		if len(q) == 0 {
			delete(t.futex, a0)
		} else {
			t.futex[a0] = q
		}
		return n
	}
	if t == nil {
		if num == SysSpawn {
			return errAGAIN // no secondary cores to run on
		}
		return errINVAL
	}
	switch num {
	case SysSpawn:
		for i := 1; i < len(t.cores); i++ {
			if t.started[i] && !t.done[i] {
				continue
			}
			t.started[i], t.done[i] = true, false
			child := t.cores[i]
			child.WriteReg(2, a1)  // sp
			child.WriteReg(10, a2) // argument
			child.SetPC(a0)
			child.Unpark()
			t.spawns.Inc()
			return uint32(i)
		}
		return errAGAIN

	case SysJoin:
		target := int(a0)
		if target == self || target <= 0 || target >= len(t.cores) || !t.started[target] {
			return errINVAL
		}
		if t.done[target] {
			t.joins.Inc()
			return t.result[target]
		}
		t.joiners[target] = append(t.joiners[target], self)
		c.Park()
		return 0 // overwritten by SysThreadExit's wake

	case SysThreadExit:
		if self == 0 {
			return errINVAL // the main thread exits via SysExit
		}
		t.done[self] = true
		t.result[self] = a0
		for _, j := range t.joiners[self] {
			jc := t.cores[j]
			jc.WriteReg(10, a0)
			jc.Unpark()
			t.joins.Inc()
		}
		t.joiners[self] = nil
		c.Park()
		return a0 // the parked core never observes this

	}
	return ^uint32(37) // -ENOSYS
}
