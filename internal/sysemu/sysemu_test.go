package sysemu

import (
	"strings"
	"testing"

	"gem5prof/internal/cpu"
	"gem5prof/internal/guest"
	"gem5prof/internal/isa"
	"gem5prof/internal/sim"
)

func seRig(t *testing.T, src string) (*sim.System, *SEEnv, cpu.CPU) {
	t.Helper()
	sys := sim.NewSystem(1)
	ram := guest.NewMemory(8 << 20)
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ram.Load(prog); err != nil {
		t.Fatal(err)
	}
	env := NewSEEnv(sys, ram, 0x40_0000, 0x60_0000)
	c := cpu.NewAtomicCPU(sys, cpu.Config{Name: "cpu0", Mem: ram, Env: env})
	c.Start(prog.Entry)
	return sys, env, c
}

func TestSEExit(t *testing.T) {
	sys, _, _ := seRig(t, `
_start:
	li a0, 42
	li a7, 93
	ecall
`)
	res := sys.Run(sim.MaxTick, 0)
	if res.Status != sim.ExitRequested || res.ExitCode != 42 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSEWrite(t *testing.T) {
	sys, env, _ := seRig(t, `
_start:
	li a0, 1
	la a1, msg
	li a2, 13
	li a7, 64
	ecall
	mv s0, a0       # bytes written
	li a0, 0
	li a7, 93
	ecall
msg:
	.asciz "hello, gem5!\n"
`)
	sys.Run(sim.MaxTick, 0)
	if env.Stdout() != "hello, gem5!\n" {
		t.Fatalf("stdout = %q", env.Stdout())
	}
}

func TestSEWriteBadFd(t *testing.T) {
	sys, _, c := seRig(t, `
_start:
	li a0, 7
	li a1, 0
	li a2, 4
	li a7, 64
	ecall
	mv s0, a0
	li a0, 0
	li a7, 93
	ecall
`)
	sys.Run(sim.MaxTick, 0)
	if int32(c.Core().ReadReg(8)) != -9 { // -EBADF
		t.Fatalf("write ret = %d", int32(c.Core().ReadReg(8)))
	}
}

func TestSERead(t *testing.T) {
	sys, env, c := seRig(t, `
_start:
	li a0, 0
	la a1, buf
	li a2, 8
	li a7, 63
	ecall
	mv s0, a0
	la t0, buf
	lbu s1, 0(t0)
	li a0, 0
	li a7, 93
	ecall
buf:
	.space 16
`)
	env.SetStdin([]byte("AB"))
	sys.Run(sim.MaxTick, 0)
	if c.Core().ReadReg(8) != 2 {
		t.Fatalf("read ret = %d", c.Core().ReadReg(8))
	}
	if c.Core().ReadReg(9) != 'A' {
		t.Fatalf("buf[0] = %d", c.Core().ReadReg(9))
	}
}

func TestSEBrkAndMmap(t *testing.T) {
	sys, _, c := seRig(t, `
_start:
	li a0, 0
	li a7, 214
	ecall            # query brk
	mv s0, a0
	li t0, 0x1000
	add a0, a0, t0
	li a7, 214
	ecall            # grow brk
	mv s1, a0
	li a0, 0
	li a1, 0x2000
	li a7, 222
	ecall            # mmap 8KB
	mv s2, a0
	li a0, 0
	li a1, 0x2000
	li a7, 222
	ecall            # second mmap must not overlap
	mv s3, a0
	li a0, 0
	li a7, 93
	ecall
`)
	sys.Run(sim.MaxTick, 0)
	core := c.Core()
	if core.ReadReg(8) != 0x40_0000 {
		t.Fatalf("initial brk = %#x", core.ReadReg(8))
	}
	if core.ReadReg(9) != 0x40_1000 {
		t.Fatalf("grown brk = %#x", core.ReadReg(9))
	}
	m1, m2 := core.ReadReg(18), core.ReadReg(19)
	if m1 < 0x60_0000 || m2 < m1+0x2000 {
		t.Fatalf("mmap results %#x %#x", m1, m2)
	}
}

func TestSEUnknownSyscall(t *testing.T) {
	sys, _, c := seRig(t, `
_start:
	li a7, 999
	ecall
	mv s0, a0
	li a0, 0
	li a7, 93
	ecall
`)
	sys.Run(sim.MaxTick, 0)
	if int32(c.Core().ReadReg(8)) != -38 { // -ENOSYS
		t.Fatalf("ret = %d", int32(c.Core().ReadReg(8)))
	}
}

func TestMMIORouting(t *testing.T) {
	sys := sim.NewSystem(1)
	ram := guest.NewMemory(1 << 20)
	w := NewMMIOMem(sys, ram)
	u := NewUART(sys, "u0", UARTBase)
	w.Attach(u)
	// RAM below the window still works.
	if err := w.Write(0x100, 4, 0xAABBCCDD); err != nil {
		t.Fatal(err)
	}
	v, err := w.Read(0x100, 4)
	if err != nil || v != 0xAABBCCDD {
		t.Fatalf("ram rt = %x %v", v, err)
	}
	// Device window.
	if err := w.Write(UARTBase, 1, 'h'); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(UARTBase, 1, 'i'); err != nil {
		t.Fatal(err)
	}
	if u.Output() != "hi" {
		t.Fatalf("uart = %q", u.Output())
	}
	st, _ := w.Read(UARTBase+4, 4)
	if st != 1 {
		t.Fatal("uart status not ready")
	}
	if w.HostAddr(UARTBase) == w.HostAddr(0x100) {
		t.Fatal("device host addresses must differ from RAM")
	}
}

func TestMMIOOverlapPanics(t *testing.T) {
	sys := sim.NewSystem(1)
	ram := guest.NewMemory(1 << 20)
	w := NewMMIOMem(sys, ram)
	w.Attach(NewUART(sys, "u0", UARTBase))
	defer func() {
		if recover() == nil {
			t.Fatal("overlap not caught")
		}
	}()
	w.Attach(NewUART(sys, "u1", UARTBase+0x10))
}

type fakeSink struct{ raised, cleared int }

func (f *fakeSink) RaiseInterrupt() { f.raised++ }
func (f *fakeSink) ClearInterrupt() { f.cleared++ }

func TestTimer(t *testing.T) {
	sys := sim.NewSystem(1)
	sink := &fakeSink{}
	tm := NewTimer(sys, "t0", TimerBase, sink)
	// mtime advances with simulated time.
	sys.Schedule(sim.NewEvent("nop", 0, func() {}), 5*TimerTick)
	sys.Run(sim.MaxTick, 0)
	v, _ := tm.ReadReg(0, 4)
	if v != 5 {
		t.Fatalf("mtime = %d", v)
	}
	// Arm 3 ticks ahead.
	if err := tm.WriteReg(8, 4, 8); err != nil {
		t.Fatal(err)
	}
	if sink.cleared != 1 {
		t.Fatal("arming must clear pending")
	}
	sys.Run(sim.MaxTick, 0)
	if sink.raised != 1 || tm.Interrupts() != 1 {
		t.Fatalf("raised = %d", sink.raised)
	}
	// Arming in the past fires immediately.
	if err := tm.WriteReg(8, 4, 1); err != nil {
		t.Fatal(err)
	}
	if sink.raised != 2 {
		t.Fatal("past deadline did not fire")
	}
	// cmp readback.
	lo, _ := tm.ReadReg(8, 4)
	if lo != 1 {
		t.Fatalf("mtimecmp = %d", lo)
	}
}

func TestPoweroff(t *testing.T) {
	sys := sim.NewSystem(1)
	p := NewPoweroff(sys, "p0", PoweroffBase)
	sys.Schedule(sim.NewEvent("off", 0, func() {
		_ = p.WriteReg(0, 4, 7)
	}), 100)
	res := sys.Run(sim.MaxTick, 0)
	if res.Status != sim.ExitRequested || res.ExitCode != 7 {
		t.Fatalf("res = %+v", res)
	}
	if !strings.Contains(res.ExitReason, "poweroff") {
		t.Fatalf("reason = %q", res.ExitReason)
	}
}

func TestPlatformWiring(t *testing.T) {
	sys := sim.NewSystem(1)
	ram := guest.NewMemory(1 << 20)
	sink := &LateBindSink{}
	p := NewPlatform(sys, ram, sink)
	if p.UART == nil || p.Timer == nil || p.Poweroff == nil || p.Env == nil {
		t.Fatal("platform incomplete")
	}
	// LateBindSink tolerates nil and forwards once bound.
	sink.RaiseInterrupt()
	sink.ClearInterrupt()
	fs := &fakeSink{}
	sink.Sink = fs
	sink.RaiseInterrupt()
	if fs.raised != 1 {
		t.Fatal("late-bound sink not forwarded")
	}
}
