package sysemu

import (
	"bytes"
	"fmt"
	"sort"

	"gem5prof/internal/guest"
	"gem5prof/internal/sim"
)

// Device is one memory-mapped peripheral.
type Device interface {
	sim.SimObject
	// Base returns the first address of the device window.
	Base() uint32
	// Len returns the window size in bytes.
	Len() uint32
	// ReadReg reads size bytes at offset off within the window.
	ReadReg(off uint32, size int) (uint64, error)
	// WriteReg writes size bytes at offset off within the window.
	WriteReg(off uint32, size int, v uint64) error
}

// MMIOMem wraps guest memory with a set of device windows, implementing
// cpu.FuncMem. Device windows take precedence over RAM.
type MMIOMem struct {
	mem      *guest.Memory
	devs     []Device
	hostBase uint64
}

// NewMMIOMem returns an MMIO-aware functional memory.
func NewMMIOMem(sys *sim.System, m *guest.Memory) *MMIOMem {
	return &MMIOMem{
		mem:      m,
		hostBase: sys.Tracer().AllocData("mmio.devregs", 1<<16),
	}
}

// Attach registers a device window. Overlapping windows panic.
func (w *MMIOMem) Attach(d Device) {
	for _, o := range w.devs {
		if d.Base() < o.Base()+o.Len() && o.Base() < d.Base()+d.Len() {
			panic(fmt.Sprintf("sysemu: device %s overlaps %s", d.Name(), o.Name()))
		}
	}
	w.devs = append(w.devs, d)
	sort.Slice(w.devs, func(i, j int) bool { return w.devs[i].Base() < w.devs[j].Base() })
}

func (w *MMIOMem) find(addr uint32) Device {
	for _, d := range w.devs {
		if addr >= d.Base() && addr < d.Base()+d.Len() {
			return d
		}
	}
	return nil
}

// Read implements cpu.FuncMem.
func (w *MMIOMem) Read(addr uint32, size int) (uint64, error) {
	if d := w.find(addr); d != nil {
		return d.ReadReg(addr-d.Base(), size)
	}
	return w.mem.Read(addr, size)
}

// Write implements cpu.FuncMem.
func (w *MMIOMem) Write(addr uint32, size int, v uint64) error {
	if d := w.find(addr); d != nil {
		return d.WriteReg(addr-d.Base(), size, v)
	}
	return w.mem.Write(addr, size, v)
}

// HostAddr implements cpu.FuncMem.
func (w *MMIOMem) HostAddr(addr uint32) uint64 {
	if d := w.find(addr); d != nil {
		return w.hostBase + uint64(addr-d.Base())
	}
	return w.mem.HostAddr(addr)
}

// Conventional device addresses of the g5 FS platform.
const (
	UARTBase     = 0x1000_0000
	TimerBase    = 0x1001_0000
	PoweroffBase = 0x1002_0000
)

// UART is a transmit-only serial port: a write to offset 0 emits one byte.
// Offset 4 reads as a always-ready status register.
type UART struct {
	name string
	base uint32
	out  bytes.Buffer

	bytesTx *sim.Counter
}

// NewUART builds a UART at base.
func NewUART(sys *sim.System, name string, base uint32) *UART {
	u := &UART{name: name, base: base}
	u.bytesTx = sys.Stats().Counter(name+".bytesTx", "bytes transmitted")
	sys.Register(u)
	return u
}

// Name implements sim.SimObject.
func (u *UART) Name() string { return u.name }

// Base implements Device.
func (u *UART) Base() uint32 { return u.base }

// Len implements Device.
func (u *UART) Len() uint32 { return 0x100 }

// Output returns everything transmitted so far.
func (u *UART) Output() string { return u.out.String() }

// ReadReg implements Device.
func (u *UART) ReadReg(off uint32, size int) (uint64, error) {
	switch off {
	case 4:
		return 1, nil // TX always ready
	default:
		return 0, nil
	}
}

// WriteReg implements Device.
func (u *UART) WriteReg(off uint32, size int, v uint64) error {
	if off == 0 {
		u.out.WriteByte(byte(v))
		u.bytesTx.Inc()
	}
	return nil
}

// InterruptSink receives device interrupts (implemented by cpu.Core).
type InterruptSink interface {
	RaiseInterrupt()
	ClearInterrupt()
}

// Timer is a cycle-granularity timer: mtime at offset 0 (read-only, in
// microseconds of guest time), mtimecmp at offset 8. Writing mtimecmp arms
// an interrupt at that time and clears any pending one.
type Timer struct {
	name string
	base uint32
	sys  *sim.System
	sink InterruptSink
	ev   *sim.Event
	cmp  uint64

	interrupts *sim.Counter
}

// TimerTick is the timer's time unit in simulation ticks (1 µs).
const TimerTick = sim.Microsecond

// NewTimer builds a timer at base that interrupts sink.
func NewTimer(sys *sim.System, name string, base uint32, sink InterruptSink) *Timer {
	t := &Timer{name: name, base: base, sys: sys, sink: sink}
	t.ev = sim.NewEvent(name+".fire", 0, func() {
		t.interrupts.Inc()
		t.sink.RaiseInterrupt()
	}).SetDomain(sim.DomainDev)
	t.interrupts = sys.Stats().Counter(name+".interrupts", "timer interrupts raised")
	sys.Register(t)
	return t
}

// Name implements sim.SimObject.
func (t *Timer) Name() string { return t.name }

// Base implements Device.
func (t *Timer) Base() uint32 { return t.base }

// Len implements Device.
func (t *Timer) Len() uint32 { return 0x100 }

// Interrupts returns how many timer interrupts have fired.
func (t *Timer) Interrupts() uint64 { return t.interrupts.Count() }

// ReadReg implements Device.
func (t *Timer) ReadReg(off uint32, size int) (uint64, error) {
	now := uint64(t.sys.Now() / TimerTick)
	switch off {
	case 0:
		return now & 0xffff_ffff, nil
	case 4:
		return now >> 32, nil
	case 8:
		return t.cmp & 0xffff_ffff, nil
	case 12:
		return t.cmp >> 32, nil
	}
	return 0, nil
}

// WriteReg implements Device.
func (t *Timer) WriteReg(off uint32, size int, v uint64) error {
	if off != 8 {
		return nil
	}
	t.cmp = v
	t.sink.ClearInterrupt()
	when := sim.Tick(v) * TimerTick
	if t.ev.Scheduled() {
		t.sys.Deschedule(t.ev)
	}
	if when <= t.sys.Now() {
		t.interrupts.Inc()
		t.sink.RaiseInterrupt()
		return nil
	}
	t.sys.Schedule(t.ev, when)
	return nil
}

// Poweroff terminates the simulation when written: the FS analogue of gem5's
// m5 exit pseudo-op.
type Poweroff struct {
	name string
	base uint32
	sys  *sim.System
}

// NewPoweroff builds the poweroff device at base.
func NewPoweroff(sys *sim.System, name string, base uint32) *Poweroff {
	p := &Poweroff{name: name, base: base, sys: sys}
	sys.Register(p)
	return p
}

// Name implements sim.SimObject.
func (p *Poweroff) Name() string { return p.name }

// Base implements Device.
func (p *Poweroff) Base() uint32 { return p.base }

// Len implements Device.
func (p *Poweroff) Len() uint32 { return 0x100 }

// ReadReg implements Device.
func (p *Poweroff) ReadReg(off uint32, size int) (uint64, error) { return 0, nil }

// WriteReg implements Device.
func (p *Poweroff) WriteReg(off uint32, size int, v uint64) error {
	p.sys.RequestExit("guest poweroff", int(v))
	return nil
}
