package workloads

import (
	"fmt"

	"gem5prof/internal/isa"
)

func init() {
	register(Spec{
		Name:         "ocean_cp",
		Suite:        "splash2x",
		DefaultScale: 64,
		Build:        func(scale int) (*isa.Program, uint32, error) { return buildOcean(scale, true) },
	})
	register(Spec{
		Name:         "ocean_ncp",
		Suite:        "splash2x",
		DefaultScale: 64,
		Build:        func(scale int) (*isa.Program, uint32, error) { return buildOcean(scale, false) },
	})
}

// buildOcean is the SPLASH-2x ocean kernel: Gauss-Seidel relaxation sweeps
// over a scale x scale float64 grid. The contiguous-partitions variant
// (ocean_cp) sweeps row-major; the non-contiguous variant (ocean_ncp)
// sweeps column-major, producing the strided, cache-hostile access pattern
// of the original benchmark pair.
func buildOcean(scale int, rowMajor bool) (*isa.Program, uint32, error) {
	if scale < 8 {
		return nil, 0, fmt.Errorf("workloads: ocean scale %d too small", scale)
	}
	const iters = 4
	g := scale
	name := "ocean_ncp"
	if rowMajor {
		name = "ocean_cp"
	}

	// The sweep body is identical; only the loop nest order differs.
	// Outer index s4, inner index s5; cell (row,col) derived per variant.
	var rowReg, colReg string
	if rowMajor {
		rowReg, colReg = "s4", "s5"
	} else {
		rowReg, colReg = "s5", "s4"
	}
	src := prologue() + fmt.Sprintf(`
	la   s0, grid
	li   s3, %d          # G
	# init grid[i][j] = ((i*G+j) %% 97) as float
	li   t0, 0           # linear index
	li   t1, %d          # G*G
initg:
	li   t2, 97
	remu t3, t0, t2
	fcvt.d.w f0, t3
	slli t4, t0, 3
	add  t4, t4, s0
	fsd  f0, 0(t4)
	addi t0, t0, 1
	blt  t0, t1, initg

	la   t6, oconsts
	fld  f10, 0(t6)      # 0.25
	li   s6, 0           # iteration
sweep:
	li   s4, 1           # outer = 1..G-2
outer:
	li   s5, 1           # inner = 1..G-2
inner:
	# addr of (row,col) = base + (row*G + col)*8
	mul  t0, %s, s3
	add  t0, t0, %s
	slli t0, t0, 3
	add  t0, t0, s0
	# neighbours: +-8 (col), +-8*G (row)
	fld  f0, 8(t0)
	fld  f1, -8(t0)
	fadd f0, f0, f1
	li   t2, %d
	add  t3, t0, t2
	fld  f1, 0(t3)
	fadd f0, f0, f1
	sub  t3, t0, t2
	fld  f1, 0(t3)
	fadd f0, f0, f1
	fmul f0, f0, f10
	fsd  f0, 0(t0)
	addi s5, s5, 1
	addi t4, s3, -1
	blt  s5, t4, inner
	addi s4, s4, 1
	blt  s4, t4, outer
	addi s6, s6, 1
	li   t5, %d
	blt  s6, t5, sweep

	# checksum: grid[G/2][G/2] * 1000
	li   t0, %d
	slli t0, t0, 3
	add  t0, t0, s0
	fld  f0, 0(t0)
	la   t6, oconsts
	fld  f1, 8(t6)
	fmul f0, f0, f1
	fcvt.w.d a0, f0
`, g, g*g, rowReg, colReg, 8*g, iters, (g/2)*g+g/2) + epilogue() + fmt.Sprintf(`
	.align 8
oconsts:
	.double 0.25
	.double 1000.0
	.align 64
grid:
	.space %d
`, 8*g*g)

	p, err := mustBuild(name, src)
	if err != nil {
		return nil, 0, err
	}
	return p, oceanRef(g, iters, rowMajor), nil
}

func oceanRef(g, iters int, rowMajor bool) uint32 {
	grid := make([]float64, g*g)
	for i := range grid {
		grid[i] = float64(i % 97)
	}
	at := func(r, c int) int { return r*g + c }
	for it := 0; it < iters; it++ {
		for outer := 1; outer < g-1; outer++ {
			for inner := 1; inner < g-1; inner++ {
				r, c := outer, inner
				if !rowMajor {
					r, c = inner, outer
				}
				i := at(r, c)
				// Match the assembly's accumulation order exactly:
				// east, west, south (+G), north (-G).
				v := grid[i+1] + grid[i-1]
				v += grid[i+g]
				v += grid[i-g]
				grid[i] = v * 0.25
			}
		}
	}
	return uint32(int32(grid[at(g/2, g/2)] * 1000.0))
}
