package workloads

import (
	"fmt"
	"math"

	"gem5prof/internal/isa"
)

func init() {
	register(Spec{
		Name:         "water_nsquared",
		Suite:        "splash2x",
		DefaultScale: 192,
		Build:        buildWaterNsquared,
	})
	register(Spec{
		Name:         "water_spatial",
		Suite:        "splash2x",
		DefaultScale: 256,
		Build:        buildWaterSpatial,
	})
}

// genMoleculesAsm emits the common molecule-placement code: N molecules with
// coordinates in [0,64) derived from the LCG, stored as 3 float64 per
// molecule at base label "mol".
func genMoleculesAsm(n int) string {
	return fmt.Sprintf(`
	la   s0, mol
	li   s3, %d          # N
	li   t1, 31415       # lcg
	li   t0, 0           # i
genm:
	li   t5, 24
	mul  t3, t0, t5      # i*24
	add  t3, t3, s0
`+lcgAsm("t1", "t6")+`
	srli t2, t1, 26      # 6-bit: 0..63
	fcvt.d.w f0, t2
	fsd  f0, 0(t3)
`+lcgAsm("t1", "t6")+`
	srli t2, t1, 26
	fcvt.d.w f0, t2
	fsd  f0, 8(t3)
`+lcgAsm("t1", "t6")+`
	srli t2, t1, 26
	fcvt.d.w f0, t2
	fsd  f0, 16(t3)
	addi t0, t0, 1
	blt  t0, s3, genm
`, n)
}

func genMoleculesRef(n int) [][3]float64 {
	mol := make([][3]float64, n)
	s := uint32(31415)
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			s = lcgNext(s)
			mol[i][d] = float64(int32(s >> 26))
		}
	}
	return mol
}

// pairForceAsm emits the inner force kernel shared by both water variants:
// given molecule addresses in t3 (i) and t4 (j), accumulate into f20.
// Clobbers f0-f9. Uses f10 = 1.0, f11 = cutoff^2 = 400.0.
const pairForceAsm = `
	fld  f0, 0(t3)
	fld  f1, 0(t4)
	fsub f0, f0, f1      # dx
	fld  f2, 8(t3)
	fld  f3, 8(t4)
	fsub f2, f2, f3      # dy
	fld  f4, 16(t3)
	fld  f5, 16(t4)
	fsub f4, f4, f5      # dz
	fmul f0, f0, f0
	fmul f2, f2, f2
	fmul f4, f4, f4
	fadd f6, f0, f2
	fadd f6, f6, f4      # r2
	flt  t5, f6, f11     # r2 < cutoff2 ?
	beq  t5, x0, pf_skip
	fadd f7, f6, f10     # r2+1 (avoid div by 0)
	fdiv f8, f10, f7     # 1/(r2+1)
	fsqrt f9, f7
	fdiv f9, f10, f9     # 1/sqrt(r2+1)
	fadd f8, f8, f9
	fadd f20, f20, f8
pf_skip:
`

func pairForceRef(a, b [3]float64, sum *float64) {
	dx := a[0] - b[0]
	dy := a[1] - b[1]
	dz := a[2] - b[2]
	r2 := dx*dx + dy*dy + dz*dz
	if r2 < 400.0 {
		f := 1/(r2+1) + 1/math.Sqrt(r2+1)
		*sum += f
	}
}

// buildWaterNsquared is the SPLASH-2x water_nsquared kernel: an O(N^2)
// all-pairs force computation. scale is the molecule count.
func buildWaterNsquared(scale int) (*isa.Program, uint32, error) {
	if scale < 8 {
		return nil, 0, fmt.Errorf("workloads: water_nsquared scale %d too small", scale)
	}
	// The shared pair kernel has a label; it appears once, inside the
	// doubly nested loop.
	src := prologue() + genMoleculesAsm(scale) + `
	la   t6, wconsts
	fld  f10, 0(t6)      # 1.0
	fld  f11, 8(t6)      # cutoff^2
	fcvt.d.w f20, x0     # force accumulator
	li   s4, 0           # i
iloop:
	addi s5, s4, 1       # j = i+1
jloop:
	bge  s5, s3, jdone
	li   t5, 24
	mul  t3, s4, t5
	add  t3, t3, s0
	mul  t4, s5, t5
	add  t4, t4, s0
` + pairForceAsm + `
	addi s5, s5, 1
	j    jloop
jdone:
	addi s4, s4, 1
	blt  s4, s3, iloop
	la   t6, wconsts
	fld  f0, 16(t6)      # 1000.0
	fmul f20, f20, f0
	fcvt.w.d a0, f20
` + epilogue() + fmt.Sprintf(`
	.align 8
wconsts:
	.double 1.0
	.double 400.0
	.double 1000.0
	.align 64
mol:
	.space %d
`, 24*scale)

	p, err := mustBuild("water_nsquared", src)
	if err != nil {
		return nil, 0, err
	}
	return p, waterNsquaredRef(scale), nil
}

func waterNsquaredRef(n int) uint32 {
	mol := genMoleculesRef(n)
	sum := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairForceRef(mol[i], mol[j], &sum)
		}
	}
	return uint32(int32(sum * 1000.0))
}

// buildWaterSpatial is water_spatial: the same force kernel restricted to
// pairs whose x coordinates fall in the same spatial slab, modeling the
// cell-list decomposition of the original. scale is the molecule count.
func buildWaterSpatial(scale int) (*isa.Program, uint32, error) {
	if scale < 8 {
		return nil, 0, fmt.Errorf("workloads: water_spatial scale %d too small", scale)
	}
	src := prologue() + genMoleculesAsm(scale) + `
	# cell[i] = int(x) >> 4  (4 slabs over [0,64))
	la   s1, cell
	li   t0, 0
genc:
	li   t5, 24
	mul  t3, t0, t5
	add  t3, t3, s0
	fld  f0, 0(t3)
	fcvt.w.d t2, f0
	srli t2, t2, 4
	add  t4, s1, t0
	sb   t2, 0(t4)
	addi t0, t0, 1
	blt  t0, s3, genc

	la   t6, wconsts
	fld  f10, 0(t6)
	fld  f11, 8(t6)
	fcvt.d.w f20, x0
	li   s4, 0
iloop:
	addi s5, s4, 1
jloop:
	bge  s5, s3, jdone
	add  t3, s1, s4
	lbu  t1, 0(t3)
	add  t4, s1, s5
	lbu  t2, 0(t4)
	bne  t1, t2, skippair  # different slab: far field ignored
	li   t5, 24
	mul  t3, s4, t5
	add  t3, t3, s0
	mul  t4, s5, t5
	add  t4, t4, s0
` + pairForceAsm + `
skippair:
	addi s5, s5, 1
	j    jloop
jdone:
	addi s4, s4, 1
	blt  s4, s3, iloop
	la   t6, wconsts
	fld  f0, 16(t6)
	fmul f20, f20, f0
	fcvt.w.d a0, f20
` + epilogue() + fmt.Sprintf(`
	.align 8
wconsts:
	.double 1.0
	.double 400.0
	.double 1000.0
	.align 64
mol:
	.space %d
	.align 64
cell:
	.space %d
`, 24*scale, scale)

	p, err := mustBuild("water_spatial", src)
	if err != nil {
		return nil, 0, err
	}
	return p, waterSpatialRef(scale), nil
}

func waterSpatialRef(n int) uint32 {
	mol := genMoleculesRef(n)
	cell := make([]uint8, n)
	for i := 0; i < n; i++ {
		cell[i] = uint8(int32(mol[i][0])) >> 4
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if cell[i] == cell[j] {
				pairForceRef(mol[i], mol[j], &sum)
			}
		}
	}
	return uint32(int32(sum * 1000.0))
}
