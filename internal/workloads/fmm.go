package workloads

import (
	"fmt"
	"math"

	"gem5prof/internal/isa"
)

func init() {
	register(Spec{
		Name:         "fmm",
		Suite:        "splash2x",
		DefaultScale: 512,
		Build:        buildFMM,
	})
}

// buildFMM models the SPLASH-2x fast-multipole kernel structure: bodies are
// binned into cells, cell aggregates (mass, center) are computed upward,
// far-field interactions happen cell-to-cell on aggregates, and the near
// field is evaluated exactly within each cell. scale is the body count;
// 16 cells along one dimension.
func buildFMM(scale int) (*isa.Program, uint32, error) {
	if scale < 32 {
		return nil, 0, fmt.Errorf("workloads: fmm scale %d too small", scale)
	}
	const cells = 16
	src := prologue() + fmt.Sprintf(`
	la   s0, pos         # body x positions (float64)
	la   s1, mass        # body masses
	la   s2, cellid      # body -> cell (byte)
	la   s7, cmass       # per-cell aggregate mass
	la   s8, ccenter     # per-cell weighted position sum
	la   s9, ccount      # per-cell body count (word)
	li   s3, %d          # N
	li   s6, %d          # CELLS

	# generate bodies: x in [0,256), mass in [1,17)
	li   t1, 2718        # lcg
	li   t0, 0
genb:
	slli t4, t0, 3
`+lcgAsm("t1", "t6")+`
	srli t2, t1, 24      # 0..255
	fcvt.d.w f0, t2
	add  t5, t4, s0
	fsd  f0, 0(t5)
	srli t3, t2, 4       # cell = x >> 4
	add  t5, s2, t0
	sb   t3, 0(t5)
`+lcgAsm("t1", "t6")+`
	srli t2, t1, 28      # 0..15
	addi t2, t2, 1
	fcvt.d.w f0, t2
	add  t5, t4, s1
	fsd  f0, 0(t5)
	addi t0, t0, 1
	blt  t0, s3, genb

	# upward pass: accumulate cell aggregates
	li   t0, 0
upward:
	add  t5, s2, t0
	lbu  t2, 0(t5)       # cell
	slli t3, t2, 3
	slli t4, t0, 3
	add  t5, t4, s1
	fld  f0, 0(t5)       # mass
	add  t5, t3, s7
	fld  f1, 0(t5)
	fadd f1, f1, f0
	fsd  f1, 0(t5)       # cmass += m
	add  t5, t4, s0
	fld  f2, 0(t5)       # x
	fmul f2, f2, f0      # m*x
	add  t5, t3, s8
	fld  f1, 0(t5)
	fadd f1, f1, f2
	fsd  f1, 0(t5)       # ccenter += m*x
	slli t3, t2, 2
	add  t5, t3, s9
	lw   t6, 0(t5)
	addi t6, t6, 1
	sw   t6, 0(t5)       # ccount++
	addi t0, t0, 1
	blt  t0, s3, upward

	la   t6, fconsts
	fld  f10, 0(t6)      # 1.0
	fcvt.d.w f20, x0     # far-field accumulator

	# far field: all cell pairs a < b on aggregates
	li   s4, 0
fara:
	addi s5, s4, 1
farb:
	bge  s5, s6, faradv
	slli t3, s4, 3
	slli t4, s5, 3
	add  t5, t3, s7
	fld  f0, 0(t5)       # Ma
	add  t5, t4, s7
	fld  f1, 0(t5)       # Mb
	fmul f2, f0, f1      # Ma*Mb
	add  t5, t3, s8
	fld  f3, 0(t5)
	add  t5, t4, s8
	fld  f4, 0(t5)
	fsub f3, f3, f4      # center diff (weighted)
	fabs f3, f3
	fadd f3, f3, f10     # +1
	fdiv f2, f2, f3
	fadd f20, f20, f2
	addi s5, s5, 1
	j    farb
faradv:
	addi s4, s4, 1
	addi t5, s6, -1
	blt  s4, t5, fara

	# near field: exact within-cell pairs
	li   s4, 0           # i
neari:
	addi s5, s4, 1
nearj:
	bge  s5, s3, nearadv
	add  t5, s2, s4
	lbu  t2, 0(t5)
	add  t5, s2, s5
	lbu  t3, 0(t5)
	bne  t2, t3, nearskip
	slli t3, s4, 3
	slli t4, s5, 3
	add  t5, t3, s0
	fld  f0, 0(t5)
	add  t5, t4, s0
	fld  f1, 0(t5)
	fsub f0, f0, f1
	fmul f0, f0, f0      # dx^2
	fadd f0, f0, f10     # +1
	fsqrt f1, f0
	add  t5, t3, s1
	fld  f2, 0(t5)
	add  t5, t4, s1
	fld  f3, 0(t5)
	fmul f2, f2, f3      # mi*mj
	fdiv f2, f2, f1
	fadd f20, f20, f2
nearskip:
	addi s5, s5, 1
	j    nearj
nearadv:
	addi s4, s4, 1
	blt  s4, s3, neari

	la   t6, fconsts
	fld  f0, 8(t6)       # 0.01
	fmul f20, f20, f0
	fcvt.w.d a0, f20
`, scale, cells) + epilogue() + fmt.Sprintf(`
	.align 8
fconsts:
	.double 1.0
	.double 0.01
	.align 64
pos:
	.space %d
mass:
	.space %d
cellid:
	.space %d
	.align 8
cmass:
	.space %d
ccenter:
	.space %d
ccount:
	.space %d
`, 8*scale, 8*scale, scale, 8*cells, 8*cells, 4*cells)

	p, err := mustBuild("fmm", src)
	if err != nil {
		return nil, 0, err
	}
	return p, fmmRef(scale, cells), nil
}

func fmmRef(n, cells int) uint32 {
	pos := make([]float64, n)
	mass := make([]float64, n)
	cellid := make([]uint8, n)
	s := uint32(2718)
	for i := 0; i < n; i++ {
		s = lcgNext(s)
		x := int32(s >> 24)
		pos[i] = float64(x)
		cellid[i] = uint8(x >> 4)
		s = lcgNext(s)
		mass[i] = float64(int32(s>>28) + 1)
	}
	cmass := make([]float64, cells)
	ccenter := make([]float64, cells)
	for i := 0; i < n; i++ {
		c := cellid[i]
		cmass[c] += mass[i]
		ccenter[c] += pos[i] * mass[i]
	}
	sum := 0.0
	for a := 0; a < cells-1; a++ {
		for b := a + 1; b < cells; b++ {
			sum += cmass[a] * cmass[b] / (math.Abs(ccenter[a]-ccenter[b]) + 1)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if cellid[i] != cellid[j] {
				continue
			}
			dx := pos[i] - pos[j]
			sum += mass[i] * mass[j] / math.Sqrt(dx*dx+1)
		}
	}
	return uint32(int32(sum * 0.01))
}
