package workloads

import (
	"fmt"

	"gem5prof/internal/isa"
)

func init() {
	register(Spec{
		Name:         "streamcluster",
		Suite:        "parsec",
		DefaultScale: 1024,
		Build:        buildStreamcluster,
	})
}

// buildStreamcluster models PARSEC streamcluster: online k-median style
// assignment of streaming points to centers by squared euclidean distance.
// scale is the point count; D=4 dimensions, K=8 centers.
func buildStreamcluster(scale int) (*isa.Program, uint32, error) {
	if scale < 16 {
		return nil, 0, fmt.Errorf("workloads: streamcluster scale %d too small", scale)
	}
	const (
		dims    = 4
		centers = 8
	)
	src := prologue() + fmt.Sprintf(`
	la   s0, points
	la   s1, ctrs
	li   s3, %d          # N
	li   t1, 5555        # lcg
	# generate N*D point coords in [0,256)
	li   t0, 0
	li   t2, %d          # N*D
genp:
`+lcgAsm("t1", "t6")+`
	srli t3, t1, 24
	fcvt.d.w f0, t3
	slli t4, t0, 3
	add  t4, t4, s0
	fsd  f0, 0(t4)
	addi t0, t0, 1
	blt  t0, t2, genp
	# centers: first K points
	li   t0, 0
	li   t2, %d          # K*D
genc:
	slli t4, t0, 3
	add  t5, t4, s0
	fld  f0, 0(t5)
	add  t5, t4, s1
	fsd  f0, 0(t5)
	addi t0, t0, 1
	blt  t0, t2, genc

	# assignment loop
	la   t6, scconsts
	fld  f10, 0(t6)      # 1e30 (big)
	fcvt.d.w f20, x0     # total cost
	li   a1, 0           # xor of assignments
	li   s4, 0           # point i
assign:
	li   t5, %d          # D*8
	mul  t3, s4, t5
	add  t3, t3, s0      # &point[i]
	fmv  f11, f10        # best = big
	li   s6, 0           # best k
	li   s5, 0           # k
kloop:
	li   t5, %d
	mul  t4, s5, t5
	add  t4, t4, s1      # &center[k]
	# squared distance over D=4 dims, unrolled
	fld  f0, 0(t3)
	fld  f1, 0(t4)
	fsub f0, f0, f1
	fmul f2, f0, f0
	fld  f0, 8(t3)
	fld  f1, 8(t4)
	fsub f0, f0, f1
	fmul f1, f0, f0
	fadd f2, f2, f1
	fld  f0, 16(t3)
	fld  f1, 16(t4)
	fsub f0, f0, f1
	fmul f1, f0, f0
	fadd f2, f2, f1
	fld  f0, 24(t3)
	fld  f1, 24(t4)
	fsub f0, f0, f1
	fmul f1, f0, f0
	fadd f2, f2, f1
	# keep min
	flt  t5, f2, f11
	beq  t5, x0, notbest
	fmv  f11, f2
	mv   s6, s5
notbest:
	addi s5, s5, 1
	li   t5, %d
	blt  s5, t5, kloop
	fadd f20, f20, f11
	xor  a1, a1, s6
	add  a1, a1, s6
	addi s4, s4, 1
	blt  s4, s3, assign

	la   t6, scconsts
	fld  f0, 8(t6)       # 0.001
	fmul f20, f20, f0
	fcvt.w.d a0, f20
	xor  a0, a0, a1
`, scale, scale*dims, centers*dims, dims*8, dims*8, centers) + epilogue() + fmt.Sprintf(`
	.align 8
scconsts:
	.double 1e30
	.double 0.001
	.align 64
points:
	.space %d
ctrs:
	.space %d
`, 8*scale*dims, 8*centers*dims)

	p, err := mustBuild("streamcluster", src)
	if err != nil {
		return nil, 0, err
	}
	return p, streamclusterRef(scale, dims, centers), nil
}

func streamclusterRef(n, dims, k int) uint32 {
	pts := make([]float64, n*dims)
	s := uint32(5555)
	for i := range pts {
		s = lcgNext(s)
		pts[i] = float64(int32(s >> 24))
	}
	ctrs := make([]float64, k*dims)
	copy(ctrs, pts[:k*dims])
	cost := 0.0
	var xorAcc uint32
	for i := 0; i < n; i++ {
		best := 1e30
		bestK := uint32(0)
		for c := 0; c < k; c++ {
			d2 := 0.0
			for d := 0; d < dims; d++ {
				diff := pts[i*dims+d] - ctrs[c*dims+d]
				d2 += diff * diff
			}
			if d2 < best {
				best = d2
				bestK = uint32(c)
			}
		}
		cost += best
		xorAcc ^= bestK
		xorAcc += bestK
	}
	return uint32(int32(cost*0.001)) ^ xorAcc
}
