package workloads_test

import (
	"strings"
	"testing"

	"gem5prof/internal/core"
	"gem5prof/internal/workloads"
)

func TestRegistry(t *testing.T) {
	names := workloads.Names()
	want := []string{
		"blackscholes", "canneal", "dedup", "dotprod_mt", "fmm",
		"histogram_mt", "matmul_mt", "ocean_cp", "ocean_ncp", "sieve",
		"streamcluster", "water_nsquared", "water_spatial",
	}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	if len(workloads.PARSEC()) != 9 {
		t.Fatalf("PARSEC count = %d", len(workloads.PARSEC()))
	}
	if _, ok := workloads.ByName("sieve"); !ok {
		t.Fatal("sieve missing")
	}
	if _, ok := workloads.ByName("doom"); ok {
		t.Fatal("phantom workload")
	}
}

// smallScale returns a fast problem size per workload for the cross-model
// matrix test.
func smallScale(name string) int {
	switch name {
	case "sieve":
		return 2048
	case "canneal":
		return 256
	case "dedup":
		return 2048
	case "blackscholes":
		return 256
	case "streamcluster":
		return 96
	case "water_nsquared":
		return 48
	case "water_spatial":
		return 64
	case "ocean_cp", "ocean_ncp":
		return 24
	case "fmm":
		return 96
	}
	return 64
}

// TestAllWorkloadsAtomicChecksum runs every workload at its default scale on
// the Atomic CPU and verifies the guest result against the Go reference.
func TestAllWorkloadsAtomicChecksum(t *testing.T) {
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			res, err := core.RunGuest(core.GuestConfig{
				CPU:      core.Atomic,
				Mode:     core.SE,
				Workload: name,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.ChecksumOK {
				t.Fatalf("checksum mismatch: got %#x, want %#x",
					uint32(res.ExitCode), res.Expected)
			}
			if res.Insts < 1000 {
				t.Fatalf("suspiciously few instructions: %d", res.Insts)
			}
			t.Logf("%s: %d insts, %d ticks", name, res.Insts, res.SimTicks)
		})
	}
}

// TestAllWorkloadsAllModels is the big cross-product: every workload at a
// reduced scale on every CPU model, with caches, all matching the
// reference checksum and committing identical instruction counts.
func TestAllWorkloadsAllModels(t *testing.T) {
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			var insts []uint64
			for _, model := range core.AllCPUModels {
				res, err := core.RunGuest(core.GuestConfig{
					CPU:      model,
					Mode:     core.SE,
					Workload: name,
					Scale:    smallScale(name),
				})
				if err != nil {
					t.Fatalf("%s/%s: %v", name, model, err)
				}
				if !res.ChecksumOK {
					t.Fatalf("%s/%s: checksum got %#x want %#x",
						name, model, uint32(res.ExitCode), res.Expected)
				}
				insts = append(insts, res.Insts)
			}
			for i := 1; i < len(insts); i++ {
				if insts[i] != insts[0] {
					t.Fatalf("inst counts diverge across models: %v", insts)
				}
			}
		})
	}
}

func TestBootExit(t *testing.T) {
	for _, model := range core.AllCPUModels {
		t.Run(string(model), func(t *testing.T) {
			res, err := core.RunGuest(core.GuestConfig{
				CPU:      model,
				Mode:     core.FS,
				BootExit: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.ExitCode != 0 {
				t.Fatalf("boot-exit code = %d", res.ExitCode)
			}
			if !strings.Contains(res.Stdout, "g5 kernel") {
				t.Fatalf("banner missing from UART output %q", res.Stdout)
			}
			if res.ExitReason != "guest poweroff" {
				t.Fatalf("exit reason = %q", res.ExitReason)
			}
			if res.Insts < 10_000 {
				t.Fatalf("boot too short: %d insts", res.Insts)
			}
		})
	}
}

func TestFSWorkload(t *testing.T) {
	// Run a real workload as FS init on two models.
	for _, model := range []core.CPUModel{core.Atomic, core.O3} {
		res, err := core.RunGuest(core.GuestConfig{
			CPU:      model,
			Mode:     core.FS,
			Workload: "sieve",
			Scale:    2048,
		})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if !res.ChecksumOK {
			t.Fatalf("%s: FS checksum got %#x want %#x", model, uint32(res.ExitCode), res.Expected)
		}
	}
}

func TestFSMultiCore(t *testing.T) {
	res, err := core.RunGuest(core.GuestConfig{
		CPU:      core.Atomic,
		Mode:     core.FS,
		BootExit: true,
		NumCPUs:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("quad-core boot-exit = %d", res.ExitCode)
	}
}

func TestCalendarQueueBackendMatchesHeap(t *testing.T) {
	run := func(cal bool) *core.GuestResult {
		res, err := core.RunGuest(core.GuestConfig{
			CPU:           core.Timing,
			Mode:          core.SE,
			Workload:      "sieve",
			Scale:         1024,
			CalendarQueue: cal,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	h := run(false)
	c := run(true)
	if h.SimTicks != c.SimTicks || h.Insts != c.Insts || h.ExitCode != c.ExitCode {
		t.Fatalf("backends diverge: heap(%d,%d) calendar(%d,%d)",
			h.SimTicks, h.Insts, c.SimTicks, c.Insts)
	}
}

func TestGuestTLBsSlowerButCorrect(t *testing.T) {
	base, err := core.RunGuest(core.GuestConfig{
		CPU: core.Timing, Mode: core.SE, Workload: "sieve", Scale: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	tlb, err := core.RunGuest(core.GuestConfig{
		CPU: core.Timing, Mode: core.SE, Workload: "sieve", Scale: 1024,
		GuestTLBs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tlb.ChecksumOK {
		t.Fatal("guest TLBs broke architectural results")
	}
	if tlb.SimTicks <= base.SimTicks {
		t.Fatalf("TLB walks should cost guest time: %d vs %d", tlb.SimTicks, base.SimTicks)
	}
	if tlb.Stats.Lookup("sys.itb0.misses") == nil {
		t.Fatal("TLB stats missing")
	}
}

func TestIdealMemoryFasterGuest(t *testing.T) {
	cached, err := core.RunGuest(core.GuestConfig{
		CPU: core.Timing, Mode: core.SE, Workload: "sieve", Scale: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := core.RunGuest(core.GuestConfig{
		CPU: core.Timing, Mode: core.SE, Workload: "sieve", Scale: 1024,
		IdealMemory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ideal.SimTicks >= cached.SimTicks {
		t.Fatalf("ideal memory (%d) should be faster than caches (%d)",
			ideal.SimTicks, cached.SimTicks)
	}
}

func TestWorkloadScaleValidation(t *testing.T) {
	for _, name := range workloads.Names() {
		spec, _ := workloads.ByName(name)
		if _, _, err := spec.Build(1); err == nil {
			t.Errorf("%s: scale 1 should fail", name)
		}
	}
	// canneal requires a power of two.
	spec, _ := workloads.ByName("canneal")
	if _, _, err := spec.Build(100); err == nil {
		t.Error("canneal: non-power-of-two scale should fail")
	}
}

func TestKernelBuild(t *testing.T) {
	cfg := workloads.DefaultKernelConfig()
	k, err := workloads.BuildKernel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k.Base != workloads.KernelBase || k.Entry != workloads.KernelBase {
		t.Fatalf("kernel base/entry = %#x/%#x", k.Base, k.Entry)
	}
	// Zero-value config gets usable defaults.
	if _, err := workloads.BuildKernel(workloads.KernelConfig{}); err != nil {
		t.Fatal(err)
	}
}
