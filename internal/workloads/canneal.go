package workloads

import (
	"fmt"

	"gem5prof/internal/isa"
)

func init() {
	register(Spec{
		Name:         "canneal",
		Suite:        "parsec",
		DefaultScale: 2048,
		Build:        buildCanneal,
	})
}

// buildCanneal models PARSEC canneal's behaviour: simulated-annealing swaps
// over a placement permutation with data-dependent accept branches, followed
// by a pointer-chasing traversal (the cache-hostile part of the original).
// scale is the number of elements; swaps = 4*scale.
func buildCanneal(scale int) (*isa.Program, uint32, error) {
	if scale < 8 || scale&(scale-1) != 0 {
		return nil, 0, fmt.Errorf("workloads: canneal scale must be a power of two >= 8, got %d", scale)
	}
	swaps := 4 * scale
	src := prologue() + fmt.Sprintf(`
	la   s0, perm
	li   s1, %d          # N
	li   s2, %d          # N-1 mask
	# init perm[i] = i
	li   t0, 0
init:
	slli t1, t0, 2
	add  t1, t1, s0
	sw   t0, 0(t1)
	addi t0, t0, 1
	blt  t0, s1, init
	# annealing swaps
	li   s3, 12345       # lcg state
	li   s4, 0           # swap counter
	li   s5, %d          # total swaps
anneal:
`+lcgAsm("s3", "t6")+`
	and  t0, s3, s2      # a = rand & (N-1)
`+lcgAsm("s3", "t6")+`
	and  t1, s3, s2      # b = rand & (N-1)
	slli t2, t0, 2
	add  t2, t2, s0
	slli t3, t1, 2
	add  t3, t3, s0
	lw   t4, 0(t2)       # perm[a]
	lw   t5, 0(t3)       # perm[b]
	# accept if (perm[a]^perm[b]) & 3 != 3 (data-dependent branch)
	xor  t6, t4, t5
	andi t6, t6, 3
	addi a1, x0, 3
	beq  t6, a1, reject
	sw   t5, 0(t2)
	sw   t4, 0(t3)
reject:
	addi s4, s4, 1
	blt  s4, s5, anneal
	# pointer-chase traversal: x = perm[x], N times, xor into checksum
	li   a0, 0
	li   t0, 0           # x
	li   t1, 0           # i
chase:
	slli t2, t0, 2
	add  t2, t2, s0
	lw   t0, 0(t2)
	xor  a0, a0, t0
	add  a0, a0, t1
	addi t1, t1, 1
	blt  t1, s1, chase
`, scale, scale-1, swaps) + epilogue() + fmt.Sprintf(`
	.align 64
perm:
	.space %d
`, 4*scale)

	p, err := mustBuild("canneal", src)
	if err != nil {
		return nil, 0, err
	}
	return p, cannealRef(scale, swaps), nil
}

func cannealRef(n, swaps int) uint32 {
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	s := uint32(12345)
	mask := uint32(n - 1)
	for k := 0; k < swaps; k++ {
		s = lcgNext(s)
		a := s & mask
		s = lcgNext(s)
		b := s & mask
		if (perm[a]^perm[b])&3 != 3 {
			perm[a], perm[b] = perm[b], perm[a]
		}
	}
	var sum uint32
	x := uint32(0)
	for i := 0; i < n; i++ {
		x = perm[x]
		sum ^= x
		sum += uint32(i)
	}
	return sum
}
