// Package workloads provides the guest programs simulated in the paper's
// experiments: nine PARSEC/SPLASH-2x-style kernels, the Sieve-of-
// Eratosthenes C++ program used on FireSim, and the FS-mode mini-kernel
// image used for Boot-Exit and full-system runs.
//
// Every workload is generated as KISA assembly parameterized by a scale
// factor, together with a Go reference model that computes the expected
// checksum; integration tests verify that every CPU model reproduces the
// reference result exactly.
package workloads

import (
	"fmt"
	"sort"

	"gem5prof/internal/isa"
)

// Spec describes one guest workload.
type Spec struct {
	// Name is the workload identifier (e.g. "water_nsquared").
	Name string
	// Suite is "parsec", "splash2x", or "cpp".
	Suite string
	// DefaultScale is the problem size used by the experiment harness
	// (the scaled-down analogue of the paper's simmedium inputs).
	DefaultScale int
	// Build assembles the program for a given scale and returns it with the
	// expected checksum (the program's exit value).
	Build func(scale int) (*isa.Program, uint32, error)
}

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workloads: duplicate workload " + s.Name)
	}
	registry[s.Name] = s
}

// ByName returns the workload with the given name.
func ByName(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names returns all workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	//lint:deterministic keys are sorted before use
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PARSEC returns the nine PARSEC/SPLASH-2x workloads of the paper's Fig. 1,
// sorted by name.
func PARSEC() []Spec {
	var out []Spec
	for _, n := range Names() {
		s := registry[n]
		if s.Suite == "parsec" || s.Suite == "splash2x" {
			out = append(out, s)
		}
	}
	return out
}

// Memory layout conventions shared by the SE workloads.
const (
	// StackTop is where _start points sp.
	StackTop = 0x00F0_0000
	// HeapBase is the initial program break for SE mode.
	HeapBase = 0x0040_0000
	// MmapBase is where SE anonymous mappings land.
	MmapBase = 0x0080_0000
)

// prologue returns the common _start preamble.
func prologue() string {
	return fmt.Sprintf(`
	.org 0x1000
_start:
	li   sp, %#x
`, StackTop)
}

// epilogue exits with the checksum that the kernel left in a0.
func epilogue() string {
	return `
	li   a7, 93
	ecall
`
}

// mustBuild assembles src, wrapping assembler failures with the workload
// name for diagnosability.
func mustBuild(name, src string) (*isa.Program, error) {
	p, err := isa.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", name, err)
	}
	return p, nil
}

// lcgNext is the shared guest LCG: s' = s*1103515245 + 12345 (mod 2^32).
func lcgNext(s uint32) uint32 { return s*1103515245 + 12345 }

// lcgAsm emits assembly advancing the LCG state in reg using tmp.
func lcgAsm(reg, tmp string) string {
	return fmt.Sprintf(`	li   %s, 1103515245
	mul  %s, %s, %s
	addi %s, %s, 12345
`, tmp, reg, reg, tmp, reg, reg)
}
