package workloads

import (
	"fmt"
	"math"

	"gem5prof/internal/isa"
)

func init() {
	register(Spec{
		Name:         "blackscholes",
		Suite:        "parsec",
		DefaultScale: 4096,
		Build:        buildBlackscholes,
	})
}

// buildBlackscholes models PARSEC blackscholes: a streaming floating-point
// option-pricing loop. The CDF is replaced by the rational approximation
// n(d) = 0.5 + 0.5*d/(1+|d|), keeping the FP operation mix (div, sqrt,
// multiply-add) of the original. scale is the number of options.
func buildBlackscholes(scale int) (*isa.Program, uint32, error) {
	if scale < 16 {
		return nil, 0, fmt.Errorf("workloads: blackscholes scale %d too small", scale)
	}
	src := prologue() + fmt.Sprintf(`
	# generate spot/strike/time arrays from the LCG, as float64
	la   s0, spot
	la   s1, strike
	la   s2, tte
	li   s3, %d          # N
	li   t1, 777         # lcg
	li   t0, 0
gen:
`+lcgAsm("t1", "t6")+`
	srli t2, t1, 20      # 12-bit
	addi t2, t2, 64      # 64..4159
	fcvt.d.w f0, t2
	slli t3, t0, 3
	add  t4, t3, s0
	fsd  f0, 0(t4)
`+lcgAsm("t1", "t6")+`
	srli t2, t1, 20
	addi t2, t2, 64
	fcvt.d.w f1, t2
	add  t4, t3, s1
	fsd  f1, 0(t4)
`+lcgAsm("t1", "t6")+`
	srli t2, t1, 24      # 8-bit
	addi t2, t2, 1       # 1..256
	fcvt.d.w f2, t2
	add  t4, t3, s2
	fsd  f2, 0(t4)
	addi t0, t0, 1
	blt  t0, s3, gen

	# pricing loop
	la   t5, consts
	fld  f10, 0(t5)      # 1.0
	fld  f11, 8(t5)      # 0.5
	fld  f12, 16(t5)     # 0.25 (rate*vol proxy)
	li   t0, 0
	fcvt.d.w f20, x0     # running sum = 0.0
price:
	slli t3, t0, 3
	add  t4, t3, s0
	fld  f0, 0(t4)       # S
	add  t4, t3, s1
	fld  f1, 0(t4)       # K
	add  t4, t3, s2
	fld  f2, 0(t4)       # T
	fsqrt f3, f2         # sqrt(T)
	fdiv f4, f0, f1      # S/K
	fsub f4, f4, f10     # S/K - 1
	fdiv f5, f4, f3      # d = (S/K-1)/sqrt(T)
	fabs f6, f5
	fadd f6, f6, f10     # 1+|d|
	fdiv f7, f5, f6      # d/(1+|d|)
	fmul f7, f7, f11     # 0.5*...
	fadd f7, f7, f11     # n(d)
	fmul f8, f0, f7      # S*n(d)
	fmul f9, f2, f12     # T*0.25
	fadd f9, f9, f10     # discount proxy
	fdiv f9, f1, f9      # K/(1+T*0.25)
	fmul f9, f9, f11     # *0.5
	fsub f8, f8, f9      # price
	fadd f20, f20, f8
	addi t0, t0, 1
	blt  t0, s3, price
	fcvt.w.d a0, f20
`, scale) + epilogue() + fmt.Sprintf(`
	.align 8
consts:
	.double 1.0
	.double 0.5
	.double 0.25
	.align 64
spot:
	.space %d
strike:
	.space %d
tte:
	.space %d
`, 8*scale, 8*scale, 8*scale)

	p, err := mustBuild("blackscholes", src)
	if err != nil {
		return nil, 0, err
	}
	return p, blackscholesRef(scale), nil
}

func blackscholesRef(n int) uint32 {
	spot := make([]float64, n)
	strike := make([]float64, n)
	tte := make([]float64, n)
	s := uint32(777)
	for i := 0; i < n; i++ {
		s = lcgNext(s)
		spot[i] = float64(int32(s>>20) + 64)
		s = lcgNext(s)
		strike[i] = float64(int32(s>>20) + 64)
		s = lcgNext(s)
		tte[i] = float64(int32(s>>24) + 1)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		S, K, T := spot[i], strike[i], tte[i]
		sqT := math.Sqrt(T)
		d := (S/K - 1) / sqT
		nd := d/(math.Abs(d)+1)*0.5 + 0.5
		price := S*nd - K/(T*0.25+1)*0.5
		sum += price
	}
	return uint32(int32(sum))
}
