package workloads

import (
	"fmt"

	"gem5prof/internal/isa"
	"gem5prof/internal/sysemu"
)

// KernelBase is the load address of the FS mini-kernel (the workload image
// occupies low memory starting at 0x1000).
const KernelBase uint32 = 0x0010_0000

// KernelConfig parameterizes the FS mini-kernel image.
type KernelConfig struct {
	// AppEntry, when nonzero, is jumped to after boot as the init process.
	// The app exits through an ECALL with a7=93; a0 becomes the poweroff
	// code. Zero means Boot-Exit: power off right after boot.
	AppEntry uint32
	// BootKBs is how many kilobytes of "page tables" boot zeroes (the
	// dominant boot work; scales boot length).
	BootKBs int
	// Jiffies is how many timer ticks boot waits for while "calibrating".
	Jiffies int
	// Harts is the number of CPUs; secondary harts park in WFI loops.
	Harts int
}

// DefaultKernelConfig returns the boot configuration used by the
// experiments: a scaled-down analogue of the paper's Linux 5.4 boot.
func DefaultKernelConfig() KernelConfig {
	return KernelConfig{BootKBs: 32, Jiffies: 4, Harts: 1}
}

// BuildKernel assembles the FS mini-kernel. The kernel:
//   - parks secondary harts,
//   - installs the machine trap vector,
//   - prints a boot banner over the UART,
//   - zeroes its "page table" region and probes devices,
//   - calibrates against the timer (taking real timer interrupts),
//   - runs the init app (if any), servicing its exit/write syscalls,
//   - powers the machine off.
func BuildKernel(cfg KernelConfig) (*isa.Program, error) {
	if cfg.BootKBs <= 0 {
		cfg.BootKBs = 32
	}
	if cfg.Jiffies <= 0 {
		cfg.Jiffies = 4
	}
	appCall := `
	# Boot-Exit: no init app.
`
	if cfg.AppEntry != 0 {
		appCall = fmt.Sprintf(`
	# spawn init: jump into the application image.
	li   t0, %#x
	jalr ra, 0(t0)
`, cfg.AppEntry)
	}

	src := fmt.Sprintf(`
	.org %#x
_start:
	# Secondary harts sleep forever.
	csrrs t0, 0xF14, x0       # mhartid
	beq  t0, x0, boot
park:
	wfi
	j    park

boot:
	li   sp, %#x
	la   t0, trap_vector
	csrrw x0, 0x305, t0       # mtvec

	# Banner out the UART.
	la   s0, banner
	li   s1, %#x              # UART tx
banner_loop:
	lbu  t0, 0(s0)
	beq  t0, x0, banner_done
	sb   t0, 0(s1)
	addi s0, s0, 1
	j    banner_loop
banner_done:

	# "Page table" init: zero the boot region.
	la   s0, boot_mem
	li   s1, %d               # words
	li   t0, 0
zero_loop:
	slli t1, t0, 2
	add  t1, t1, s0
	sw   x0, 0(t1)
	addi t0, t0, 1
	blt  t0, s1, zero_loop

	# Device probe: poll the UART status register.
	li   s0, %#x              # UART status
	li   t0, 0
	li   t1, 400
probe_loop:
	lw   t2, 0(s0)
	addi t0, t0, 1
	blt  t0, t1, probe_loop

	# Calibrate delay loop against the timer: wait for J jiffies.
	la   s0, jiffies
	sw   x0, 0(s0)
	li   t0, 8
	csrrs x0, 0x300, t0       # mstatus.MIE
	call arm_timer
calib_loop:
	la   s0, jiffies
	lw   t0, 0(s0)
	li   t1, %d
	bge  t0, t1, calib_done
	wfi
	j    calib_loop
calib_done:
%s
	# Power off; a0 carries the init exit code (0 for boot-exit).
	li   t0, %#x
	sw   a0, 0(t0)
hang:
	j    hang

# arm_timer: mtimecmp = mtime + 1 (one microsecond ahead).
arm_timer:
	li   t0, %#x              # timer base
	lw   t1, 0(t0)            # mtime lo
	addi t1, t1, 1
	sw   t1, 8(t0)            # mtimecmp lo
	ret

trap_vector:
	# Save clobbered registers.
	la   t6, trap_save
	sw   t0, 0(t6)
	sw   t1, 4(t6)
	sw   t2, 8(t6)
	sw   t3, 12(t6)
	sw   t4, 16(t6)
	csrrs t0, 0x342, x0       # mcause
	li   t1, 11
	beq  t0, t1, handle_ecall
	# Timer interrupt: jiffies++ and rearm while calibrating.
	la   t2, jiffies
	lw   t3, 0(t2)
	addi t3, t3, 1
	sw   t3, 0(t2)
	li   t4, %d
	bge  t3, t4, trap_ret     # calibration done: stop rearming
	li   t0, %#x
	lw   t1, 0(t0)
	addi t1, t1, 1
	sw   t1, 8(t0)
	j    trap_ret

handle_ecall:
	# Advance mepc past the ecall.
	csrrs t1, 0x341, x0
	addi t1, t1, 4
	csrrw x0, 0x341, t1
	# Dispatch on a7.
	li   t1, 93
	beq  a7, t1, sys_exit
	li   t1, 64
	beq  a7, t1, sys_write
	j    trap_ret             # ENOSYS: ignore
sys_exit:
	li   t0, %#x
	sw   a0, 0(t0)            # poweroff(code)
	j    trap_ret
sys_write:
	# write(fd=a0, buf=a1, len=a2) to the UART.
	li   t0, %#x
	mv   t1, a1
	mv   t2, a2
	beq  t2, x0, trap_ret
write_loop:
	lbu  t3, 0(t1)
	sb   t3, 0(t0)
	addi t1, t1, 1
	addi t2, t2, -1
	bne  t2, x0, write_loop
trap_ret:
	la   t6, trap_save
	lw   t0, 0(t6)
	lw   t1, 4(t6)
	lw   t2, 8(t6)
	lw   t3, 12(t6)
	lw   t4, 16(t6)
	mret

banner:
	.asciz "g5 kernel 5.4.0-repro booting on KISA...\n"
	.align 8
jiffies:
	.space 4
trap_save:
	.space 32
	.align 64
boot_mem:
	.space %d
`,
		KernelBase,
		KernelBase-0x100, // kernel stack grows below the image
		sysemu.UARTBase,
		cfg.BootKBs*1024/4,
		sysemu.UARTBase+4,
		cfg.Jiffies,
		appCall,
		sysemu.PoweroffBase,
		sysemu.TimerBase,
		cfg.Jiffies,
		sysemu.TimerBase,
		sysemu.PoweroffBase,
		sysemu.UARTBase,
		cfg.BootKBs*1024,
	)
	return mustBuild("kernel", src)
}
