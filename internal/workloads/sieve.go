package workloads

import (
	"fmt"

	"gem5prof/internal/isa"
)

func init() {
	register(Spec{
		Name:         "sieve",
		Suite:        "cpp",
		DefaultScale: 8192,
		Build:        buildSieve,
	})
}

// buildSieve generates the Sieve of Eratosthenes counting primes below
// scale, the "simple C++ program" the paper runs on gem5-on-FireSim.
func buildSieve(scale int) (*isa.Program, uint32, error) {
	if scale < 4 {
		return nil, 0, fmt.Errorf("workloads: sieve scale %d too small", scale)
	}
	src := prologue() + fmt.Sprintf(`
	la   s0, flags
	li   s1, %d          # N
	li   t0, 2           # i
	li   a0, 0           # prime count
outer:
	bge  t0, s1, done
	add  t1, s0, t0
	lbu  t2, 0(t1)
	bne  t2, x0, skip
	addi a0, a0, 1       # found a prime
	mul  t3, t0, t0      # j = i*i
mark:
	bge  t3, s1, skip
	add  t4, s0, t3
	li   t5, 1
	sb   t5, 0(t4)
	add  t3, t3, t0
	j    mark
skip:
	addi t0, t0, 1
	j    outer
done:
`, scale) + epilogue() + fmt.Sprintf(`
flags:
	.space %d
`, scale)

	p, err := mustBuild("sieve", src)
	if err != nil {
		return nil, 0, err
	}
	return p, sieveRef(scale), nil
}

// sieveRef is the Go reference model.
func sieveRef(n int) uint32 {
	flags := make([]bool, n)
	count := uint32(0)
	for i := 2; i < n; i++ {
		if flags[i] {
			continue
		}
		count++
		for j := i * i; j < n; j += i {
			flags[j] = true
		}
	}
	return count
}
