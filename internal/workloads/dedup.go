package workloads

import (
	"fmt"

	"gem5prof/internal/isa"
)

func init() {
	register(Spec{
		Name:         "dedup",
		Suite:        "parsec",
		DefaultScale: 16384,
		Build:        buildDedup,
	})
}

// buildDedup models PARSEC dedup: content-defined chunking with a rolling
// hash over a pseudo-random buffer, then duplicate detection through an
// open-addressed hash table. scale is the buffer size in bytes.
func buildDedup(scale int) (*isa.Program, uint32, error) {
	if scale < 256 {
		return nil, 0, fmt.Errorf("workloads: dedup scale %d too small", scale)
	}
	const tableSlots = 512 // power of two
	src := prologue() + fmt.Sprintf(`
	la   s0, data
	li   s1, %d          # N bytes
	# generate data with the LCG
	li   t0, 0
	li   t1, 98765       # lcg state
gen:
`+lcgAsm("t1", "t6")+`
	srli t2, t1, 16
	add  t3, s0, t0
	sb   t2, 0(t3)
	addi t0, t0, 1
	blt  t0, s1, gen

	# chunking pass
	la   s2, table
	li   s3, 0           # chunk count
	li   s4, 0           # dup count
	li   t0, 0           # i
	li   t1, 0           # rolling hash
	li   t2, 0           # chunk hash
chunk:
	add  t3, s0, t0
	lbu  t4, 0(t3)
	# rolling = rolling*31 + b
	slli t5, t1, 5
	sub  t5, t5, t1
	add  t1, t5, t4
	# chunkhash = chunkhash*131 + b
	slli t5, t2, 7
	add  t5, t5, t2
	add  t5, t5, t5      # *131 approximated as (x*128+x)*2 + b - x ... keep simple: *258
	add  t2, t5, t4
	# boundary when rolling & 63 == 0
	andi t5, t1, 63
	bne  t5, x0, nextb
	# end of chunk: probe table[chunkhash & (slots-1)]
	addi s3, s3, 1
	andi t5, t2, %d
	slli t5, t5, 2
	add  t5, t5, s2
	lw   t6, 0(t5)
	bne  t6, t2, insert
	addi s4, s4, 1       # duplicate
	j    chunkdone
insert:
	sw   t2, 0(t5)
chunkdone:
	li   t2, 0
nextb:
	addi t0, t0, 1
	blt  t0, s1, chunk
	# checksum = chunks<<16 ^ dups ^ lasthash
	slli a0, s3, 16
	xor  a0, a0, s4
	xor  a0, a0, t2
`, scale, tableSlots-1) + epilogue() + fmt.Sprintf(`
	.align 64
data:
	.space %d
	.align 64
table:
	.space %d
`, scale, 4*tableSlots)

	p, err := mustBuild("dedup", src)
	if err != nil {
		return nil, 0, err
	}
	return p, dedupRef(scale, tableSlots), nil
}

func dedupRef(n, slots int) uint32 {
	data := make([]byte, n)
	s := uint32(98765)
	for i := range data {
		s = lcgNext(s)
		data[i] = byte(s >> 16)
	}
	table := make([]uint32, slots)
	var chunks, dups, rolling, chunkHash uint32
	for i := 0; i < n; i++ {
		b := uint32(data[i])
		rolling = rolling*31 + b
		// Mirror the assembly exactly: t5 = h*128+h; t5 += t5; h = t5 + b.
		chunkHash = (chunkHash*128+chunkHash)*2 + b
		if rolling&63 == 0 {
			chunks++
			slot := chunkHash & uint32(slots-1)
			if table[slot] == chunkHash {
				dups++
			} else {
				table[slot] = chunkHash
			}
			chunkHash = 0
		}
	}
	return chunks<<16 ^ dups ^ chunkHash
}
