package workloads

import (
	"fmt"

	"gem5prof/internal/isa"
)

// The "mt" suite holds multi-threaded variants of the kernels, written
// against the SE threading syscall surface (internal/sysemu): the program
// reads the guest core count with SysNumCores, spawns one worker per
// secondary core with SysSpawn, partitions the iteration space, and joins
// the workers with SysJoin. The combination step is associative, so the
// checksum is core-count-independent: the same Spec runs (and verifies)
// on one core or many. The suite is deliberately distinct from
// parsec/splash2x so PARSEC() figure sweeps are unchanged.
func init() {
	register(Spec{
		Name:         "dotprod_mt",
		Suite:        "mt",
		DefaultScale: 2048,
		Build:        buildDotprodMT,
	})
	register(Spec{
		Name:         "histogram_mt",
		Suite:        "mt",
		DefaultScale: 4096,
		Build:        buildHistogramMT,
	})
	register(Spec{
		Name:         "matmul_mt",
		Suite:        "mt",
		DefaultScale: 1024,
		Build:        buildMatmulMT,
	})
}

// mtStackStride spaces the per-thread stacks below StackTop.
const mtStackStride = 0x8000

// buildDotprodMT is a parallel integer dot product: main generates two
// length-scale vectors, workers sum chunk products mod 2^32 and return
// their partials through SysThreadExit; main adds its own chunk, the
// remainder tail, and the joined partials.
func buildDotprodMT(scale int) (*isa.Program, uint32, error) {
	if scale < 64 {
		return nil, 0, fmt.Errorf("workloads: dotprod_mt scale %d too small", scale)
	}
	src := prologue() + fmt.Sprintf(`
	# generate a[i], b[i]
	la   s0, vecA
	la   s1, vecB
	li   s3, %d          # N
	li   t1, 911         # lcg
	li   t0, 0
gen:
`+lcgAsm("t1", "t2")+`
	slli t4, t0, 2
	add  t5, t4, s0
	sw   t1, 0(t5)
`+lcgAsm("t1", "t2")+`
	add  t5, t4, s1
	sw   t1, 0(t5)
	addi t0, t0, 1
	blt  t0, s3, gen

	li   a7, 1008        # SysNumCores
	ecall
	mv   s4, a0          # nc
	divu s5, s3, s4      # chunk = N / nc
	la   t0, gchunk
	sw   s5, 0(t0)

	# spawn workers t = 1..nc-1
	li   s6, 1
spawn:
	bge  s6, s4, spawned
	la   a0, worker
	li   t0, %#x         # StackTop
	li   t2, %#x         # stack stride
	mul  t3, s6, t2
	sub  a1, t0, t3
	mv   a2, s6          # arg: thread index
	li   a7, 1001        # SysSpawn
	ecall
	la   t0, harts
	slli t1, s6, 2
	add  t0, t0, t1
	sw   a0, 0(t0)
	addi s6, s6, 1
	j    spawn
spawned:

	# main: chunk 0 plus the remainder tail [chunk*nc, N)
	li   s7, 0           # acc
	li   t0, 0
	mv   t1, s5
mloop:
	bge  t0, t1, mdone
	slli t2, t0, 2
	add  t3, t2, s0
	lw   t4, 0(t3)
	add  t3, t2, s1
	lw   t5, 0(t3)
	mul  t4, t4, t5
	add  s7, s7, t4
	addi t0, t0, 1
	j    mloop
mdone:
	mul  t0, s5, s4      # tail start
	mv   t1, s3
mloopt:
	bge  t0, t1, joinw
	slli t2, t0, 2
	add  t3, t2, s0
	lw   t4, 0(t3)
	add  t3, t2, s1
	lw   t5, 0(t3)
	mul  t4, t4, t5
	add  s7, s7, t4
	addi t0, t0, 1
	j    mloopt

	# join workers, folding their partials
joinw:
	li   s6, 1
jloop:
	bge  s6, s4, jdone
	la   t0, harts
	slli t1, s6, 2
	add  t0, t0, t1
	lw   a0, 0(t0)
	li   a7, 1002        # SysJoin
	ecall
	add  s7, s7, a0
	addi s6, s6, 1
	j    jloop
jdone:
	mv   a0, s7
`, scale, StackTop, mtStackStride) + epilogue() + `
worker:                  # a0 = thread index
	mv   t6, a0
	la   t0, gchunk
	lw   s5, 0(t0)
	la   s0, vecA
	la   s1, vecB
	mul  t0, t6, s5      # start
	add  t1, t0, s5      # end
	li   s7, 0
wsum:
	bge  t0, t1, wdone
	slli t2, t0, 2
	add  t3, t2, s0
	lw   t4, 0(t3)
	add  t3, t2, s1
	lw   t5, 0(t3)
	mul  t4, t4, t5
	add  s7, s7, t4
	addi t0, t0, 1
	j    wsum
wdone:
	mv   a0, s7
	li   a7, 1003        # SysThreadExit
	ecall
` + fmt.Sprintf(`
	.align 64
gchunk:
	.space 4
harts:
	.space 64
vecA:
	.space %d
vecB:
	.space %d
`, 4*scale, 4*scale)

	p, err := mustBuild("dotprod_mt", src)
	if err != nil {
		return nil, 0, err
	}
	return p, dotprodMTRef(scale), nil
}

// dotprodMTRef mirrors the guest: two LCG streams interleaved per index,
// full dot product mod 2^32 — partitioning cannot change it.
func dotprodMTRef(n int) uint32 {
	s := uint32(911)
	var acc uint32
	for i := 0; i < n; i++ {
		s = lcgNext(s)
		a := s
		s = lcgNext(s)
		acc += a * s
	}
	return acc
}

// buildHistogramMT is a parallel 16-bucket byte histogram: workers gate on
// a futex until main releases them, count their chunk into a private
// histogram, then merge it into the shared one with SysAtomicAdd. Main
// folds the shared histogram into the checksum after joining everyone.
func buildHistogramMT(scale int) (*isa.Program, uint32, error) {
	if scale < 64 {
		return nil, 0, fmt.Errorf("workloads: histogram_mt scale %d too small", scale)
	}
	// Main's counting loop and the worker's are the same code shape; main
	// runs it twice (chunk 0, then the remainder tail).
	count := func(label string) string {
		return fmt.Sprintf(`
%[1]s:
	bge  t0, t1, %[1]s_x
	add  t2, t0, s0
	lbu  t3, 0(t2)
	srli t3, t3, 4       # bucket
	slli t3, t3, 2
	add  t3, t3, s8
	lw   t4, 0(t3)
	addi t4, t4, 1
	sw   t4, 0(t3)
	addi t0, t0, 1
	j    %[1]s
%[1]s_x:
`, label)
	}
	src := prologue() + fmt.Sprintf(`
	la   s0, hdata
	li   s3, %d          # N
	li   t1, 1337        # lcg
	li   t0, 0
hgen:
`+lcgAsm("t1", "t2")+`
	srli t3, t1, 24
	add  t4, t0, s0
	sb   t3, 0(t4)
	addi t0, t0, 1
	blt  t0, s3, hgen

	li   a7, 1008        # SysNumCores
	ecall
	mv   s4, a0
	divu s5, s3, s4      # chunk
	la   t0, hchunk
	sw   s5, 0(t0)

	li   s6, 1
hspawn:
	bge  s6, s4, hspawned
	la   a0, hworker
	li   t0, %#x
	li   t2, %#x
	mul  t3, s6, t2
	sub  a1, t0, t3
	mv   a2, s6
	li   a7, 1001        # SysSpawn
	ecall
	la   t0, hharts
	slli t1, s6, 2
	add  t0, t0, t1
	sw   a0, 0(t0)
	addi s6, s6, 1
	j    hspawn
hspawned:
	# open the start gate and wake every waiter
	la   a0, hgate
	li   t1, 1
	sw   t1, 0(a0)
	li   a1, 64
	li   a7, 1005        # SysFutexWake
	ecall

	# main counts chunk 0 into private area 0, then the tail
	la   s8, hpriv
	li   t0, 0
	mv   t1, s5
`, scale, StackTop, mtStackStride) + count("hmain") + `
	mul  t0, s5, s4
	mv   t1, s3
` + count("htail") + `
	# merge private 0 into the shared histogram
	li   t0, 0
	la   t5, hhist
hmrg:
	slli t2, t0, 2
	add  t3, t2, s8
	lw   a1, 0(t3)
	add  a0, t2, t5
	li   a7, 1006        # SysAtomicAdd
	ecall
	addi t0, t0, 1
	li   t3, 16
	blt  t0, t3, hmrg

	# join workers
	li   s6, 1
hjoin:
	bge  s6, s4, hfold
	la   t0, hharts
	slli t1, s6, 2
	add  t0, t0, t1
	lw   a0, 0(t0)
	li   a7, 1002        # SysJoin
	ecall
	addi s6, s6, 1
	j    hjoin

	# checksum = sum hist[b]*(b+1)
hfold:
	la   t0, hhist
	li   t1, 0
	li   s7, 0
hfl:
	slli t2, t1, 2
	add  t3, t2, t0
	lw   t4, 0(t3)
	addi t5, t1, 1
	mul  t4, t4, t5
	add  s7, s7, t4
	addi t1, t1, 1
	li   t5, 16
	blt  t1, t5, hfl
	mv   a0, s7
` + epilogue() + `
hworker:                 # a0 = thread index
	mv   t6, a0
hwait:
	la   a0, hgate
	lw   t0, 0(a0)
	bne  t0, x0, hgo
	li   a1, 0
	li   a7, 1004        # SysFutexWait
	ecall
	j    hwait
hgo:
	la   t0, hchunk
	lw   s5, 0(t0)
	la   s0, hdata
	la   s8, hpriv
	slli t2, t6, 6       # 16 words per thread
	add  s8, s8, t2
	mul  t0, t6, s5
	add  t1, t0, s5
` + count("hwcnt") + `
	li   t0, 0
	la   t5, hhist
hwm:
	slli t2, t0, 2
	add  t3, t2, s8
	lw   a1, 0(t3)
	add  a0, t2, t5
	li   a7, 1006        # SysAtomicAdd
	ecall
	addi t0, t0, 1
	li   t3, 16
	blt  t0, t3, hwm
	li   a0, 0
	li   a7, 1003        # SysThreadExit
	ecall
` + fmt.Sprintf(`
	.align 64
hchunk:
	.space 4
hgate:
	.space 4
hharts:
	.space 64
hhist:
	.space 64
hpriv:
	.space 1024
hdata:
	.space %d
`, scale)

	p, err := mustBuild("histogram_mt", src)
	if err != nil {
		return nil, 0, err
	}
	return p, histogramMTRef(scale), nil
}

// matDim maps a scale (total elements per matrix) to the square dimension:
// the largest n with n*n <= scale.
func matDim(scale int) int {
	n := 0
	for (n+1)*(n+1) <= scale {
		n++
	}
	return n
}

// buildMatmulMT is a parallel n x n integer matrix multiply, the
// coherence-heavy member of the mt suite: workers own disjoint row bands of
// C (and read disjoint row bands of A), but every worker streams the entire
// shared B matrix column-wise, so B's lines bounce through the directory in
// the shared state from every L1 at once. Each worker folds its C band into
// a position-weighted checksum and returns it through SysThreadExit; the
// fold is associative over disjoint bands, so the total is core-count-
// independent.
func buildMatmulMT(scale int) (*isa.Program, uint32, error) {
	n := matDim(scale)
	if n < 8 {
		return nil, 0, fmt.Errorf("workloads: matmul_mt scale %d too small", scale)
	}
	// rows computes C rows [a2, a3) and accumulates sum C[l]*(l+1) into s7.
	// Expects s0=A, s1=B, s9=C, s2=n. Main runs it twice (band 0, then the
	// remainder tail), each worker once.
	rows := func(label string) string {
		return fmt.Sprintf(`
%[1]s:
	bge  a2, a3, %[1]s_x
	mul  t2, a2, s2      # i*n
	li   a4, 0           # j
%[1]s_c:
	bge  a4, s2, %[1]s_cx
	li   a5, 0           # k
	li   a6, 0           # dot accumulator
%[1]s_k:
	bge  a5, s2, %[1]s_kx
	add  t3, t2, a5
	slli t3, t3, 2
	add  t3, t3, s0
	lw   t4, 0(t3)       # A[i][k] (private band)
	mul  t5, a5, s2
	add  t5, t5, a4
	slli t5, t5, 2
	add  t5, t5, s1
	lw   t6, 0(t5)       # B[k][j] (shared, column stride)
	mul  t4, t4, t6
	add  a6, a6, t4
	addi a5, a5, 1
	j    %[1]s_k
%[1]s_kx:
	add  t3, t2, a4      # l = i*n + j
	slli t5, t3, 2
	add  t5, t5, s9
	sw   a6, 0(t5)       # C[l]
	addi t3, t3, 1
	mul  t4, a6, t3      # C[l] * (l+1)
	add  s7, s7, t4
	addi a4, a4, 1
	j    %[1]s_c
%[1]s_cx:
	addi a2, a2, 1
	j    %[1]s
%[1]s_x:
`, label)
	}
	src := prologue() + fmt.Sprintf(`
	# generate A and B
	la   s0, matA
	la   s1, matB
	li   s2, %d          # n
	li   s3, %d          # n*n
	li   t1, 2027        # lcg
	li   t0, 0
mmgen:
`+lcgAsm("t1", "t2")+`
	slli t4, t0, 2
	add  t5, t4, s0
	sw   t1, 0(t5)
`+lcgAsm("t1", "t2")+`
	add  t5, t4, s1
	sw   t1, 0(t5)
	addi t0, t0, 1
	blt  t0, s3, mmgen

	li   a7, 1008        # SysNumCores
	ecall
	mv   s4, a0          # nc
	divu s5, s2, s4      # row band = n / nc
	la   t0, mmchunk
	sw   s5, 0(t0)

	# spawn workers t = 1..nc-1
	li   s6, 1
mmspawn:
	bge  s6, s4, mmsp_x
	la   a0, mmworker
	li   t0, %#x         # StackTop
	li   t2, %#x         # stack stride
	mul  t3, s6, t2
	sub  a1, t0, t3
	mv   a2, s6          # arg: thread index
	li   a7, 1001        # SysSpawn
	ecall
	la   t0, mmharts
	slli t1, s6, 2
	add  t0, t0, t1
	sw   a0, 0(t0)
	addi s6, s6, 1
	j    mmspawn
mmsp_x:
	# main: band 0, then the remainder tail [band*nc, n)
	la   s9, matC
	li   s7, 0
	li   a2, 0
	mv   a3, s5
`, n, n*n, StackTop, mtStackStride) + rows("mmain") + `
	mul  a2, s5, s4
	mv   a3, s2
` + rows("mmtail") + `
	# join workers, folding their band checksums
	li   s6, 1
mmjoin:
	bge  s6, s4, mmj_x
	la   t0, mmharts
	slli t1, s6, 2
	add  t0, t0, t1
	lw   a0, 0(t0)
	li   a7, 1002        # SysJoin
	ecall
	add  s7, s7, a0
	addi s6, s6, 1
	j    mmjoin
mmj_x:
	mv   a0, s7
` + epilogue() + fmt.Sprintf(`
mmworker:                # a0 = thread index
	mv   t6, a0
	la   t0, mmchunk
	lw   s5, 0(t0)
	la   s0, matA
	la   s1, matB
	la   s9, matC
	li   s2, %d          # n
	mul  a2, t6, s5      # band start
	add  a3, a2, s5      # band end
	li   s7, 0
`, n) + rows("mmw") + `
	mv   a0, s7
	li   a7, 1003        # SysThreadExit
	ecall
` + fmt.Sprintf(`
	.align 64
mmchunk:
	.space 4
mmharts:
	.space 64
matA:
	.space %d
matB:
	.space %d
matC:
	.space %d
`, 4*n*n, 4*n*n, 4*n*n)

	p, err := mustBuild("matmul_mt", src)
	if err != nil {
		return nil, 0, err
	}
	return p, matmulMTRef(scale), nil
}

// matmulMTRef mirrors the guest: interleaved LCG fills of A and B, full
// multiply, position-weighted fold mod 2^32 — row partitioning cannot
// change it.
func matmulMTRef(scale int) uint32 {
	n := matDim(scale)
	a := make([]uint32, n*n)
	b := make([]uint32, n*n)
	s := uint32(2027)
	for i := range a {
		s = lcgNext(s)
		a[i] = s
		s = lcgNext(s)
		b[i] = s
	}
	var acc uint32
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var c uint32
			for k := 0; k < n; k++ {
				c += a[i*n+k] * b[k*n+j]
			}
			l := uint32(i*n + j)
			acc += c * (l + 1)
		}
	}
	return acc
}

// histogramMTRef mirrors the guest: LCG top-byte stream, 16 buckets,
// weighted fold — the merge order cannot change it.
func histogramMTRef(n int) uint32 {
	var hist [16]uint32
	s := uint32(1337)
	for i := 0; i < n; i++ {
		s = lcgNext(s)
		hist[(s>>24)>>4]++
	}
	var acc uint32
	for b, c := range hist {
		acc += c * uint32(b+1)
	}
	return acc
}
