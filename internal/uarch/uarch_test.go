package uarch

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{
		Name:          "test",
		FreqGHz:       3.0,
		PageBytes:     4096,
		HugePageBytes: 2 << 20,
		THPCoverage:   0.5,
		L1I:           CacheGeom{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L1D:           CacheGeom{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L2:            CacheGeom{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64},
		LLC:           CacheGeom{SizeBytes: 8 << 20, Ways: 16, LineBytes: 64},
		L2Cycles:      14, LLCCycles: 40, DRAMNanos: 90,
		PeakDRAMBytesPerSec: 100e9,
		ITLBEntries:         64, DTLBEntries: 64, STLBEntries: 1024,
		STLBCycles: 8, WalkCycles: 40,
		IssueWidth: 4, DecodeWidth: 3, DSBUops: 1536, DSBWidth: 6,
		BPTableEntries: 4096, BTBEntries: 1024,
		MispredictCycles: 15, ResteerCycles: 8, BAClearCycles: 9,
		MLPOverlap: 0.7,
	}
}

func TestCacheGeomSets(t *testing.T) {
	g := CacheGeom{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}
	if g.Sets() != 64 {
		t.Fatalf("sets = %d", g.Sets())
	}
}

func TestCacheHitMissLRU(t *testing.T) {
	c := newCache(CacheGeom{SizeBytes: 1024, Ways: 2, LineBytes: 64}) // 8 sets
	if c.access(0) {
		t.Fatal("cold access hit")
	}
	if !c.access(0) || !c.access(63) {
		t.Fatal("warm access missed")
	}
	// Fill set 0 (stride 8*64=512) beyond 2 ways.
	c.access(512)
	c.access(0) // touch 0: 512 is now LRU
	c.access(1024)
	if c.access(512) {
		t.Fatal("LRU line survived")
	}
	// Filling 512 evicted the then-LRU line 0; 1024 must still be resident.
	if !c.access(1024) {
		t.Fatal("MRU line evicted")
	}
	if c.OccupancyBytes() == 0 || c.MissRate() == 0 {
		t.Fatal("accounting empty")
	}
	if !c.probe(512) || c.probe(0xdeadbe00) {
		t.Fatal("probe wrong")
	}
}

// TestCacheWorkingSetInvariant: a working set of at most Ways blocks mapping
// to one set never re-misses (property over random access sequences).
func TestCacheWorkingSetInvariant(t *testing.T) {
	f := func(seq []uint8) bool {
		c := newCache(CacheGeom{SizeBytes: 4096, Ways: 4, LineBytes: 64}) // 16 sets
		blocks := []uint64{0, 1024, 2048, 3072}                           // all set 0
		seen := map[uint64]bool{}
		cold := 0
		for _, s := range seq {
			b := blocks[int(s)%len(blocks)]
			if !seen[b] {
				seen[b] = true
				cold++
			}
			c.access(b)
		}
		return int(c.Misses) == cold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCachePanicsOnBadGeometry(t *testing.T) {
	for _, g := range []CacheGeom{
		{SizeBytes: 1000, Ways: 2, LineBytes: 64},
		{SizeBytes: 4096, Ways: 3, LineBytes: 64},
		{SizeBytes: 4096, Ways: 2, LineBytes: 60},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %+v did not panic", g)
				}
			}()
			newCache(g)
		}()
	}
}

func TestTLB(t *testing.T) {
	tl := newTLB(2)
	if tl.access(1) {
		t.Fatal("cold hit")
	}
	if !tl.access(1) {
		t.Fatal("warm miss")
	}
	tl.access(2)
	tl.access(1) // 2 becomes LRU
	tl.access(3) // evicts 2
	if tl.access(2) {
		t.Fatal("LRU page survived")
	}
	if tl.MissRate() <= 0 || tl.MissRate() > 1 {
		t.Fatalf("miss rate %v", tl.MissRate())
	}
}

func TestGsharePredictorLearns(t *testing.T) {
	g := newGshare(1024, 256)
	// Strongly biased branch: after warmup, always predicted.
	for i := 0; i < 64; i++ {
		g.conditional(0x1000, true)
	}
	before := g.Mispredicts
	for i := 0; i < 100; i++ {
		g.conditional(0x1000, true)
	}
	if g.Mispredicts != before {
		t.Fatalf("biased branch still mispredicting (%d new)", g.Mispredicts-before)
	}
	// Indirect: first sight misses, stable target then hits.
	if g.indirect(0x2000, 0x3000) {
		t.Fatal("cold BTB hit")
	}
	if !g.indirect(0x2000, 0x3000) {
		t.Fatal("warm BTB miss")
	}
	if g.indirect(0x2000, 0x4000) {
		t.Fatal("changed target should miss")
	}
	if g.IndirectClears == 0 || g.MispredictRate() <= 0 {
		t.Fatal("accounting empty")
	}
}

func TestTopDownBucketsSumToTotal(t *testing.T) {
	td := TopDown{
		RetiringCycles: 10, FEBandwidthMITE: 1, FEBandwidthDSB: 2,
		FELatICache: 3, FELatITLB: 4, FELatMispredictResteer: 5,
		FELatClearResteer: 6, FELatUnknownBranch: 7,
		BadSpecCycles: 8, BEMemCycles: 9, BECoreCycles: 11,
	}
	want := 10.0 + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 11
	if td.Total() != want {
		t.Fatalf("total = %v, want %v", td.Total(), want)
	}
	if td.FrontEndBound() != td.FELatency()+td.FEBandwidth() {
		t.Fatal("front-end split inconsistent")
	}
}

func TestMachineFetchAndReport(t *testing.T) {
	m := NewMachine(testConfig())
	m.MapText(0x40_0000, 0x80_0000)
	for i := 0; i < 1000; i++ {
		m.FetchBlock(0x40_0000+uint64(i%10)*64, 32, 8)
	}
	r := m.Report()
	if r.Uops != 8000 {
		t.Fatalf("uops = %d", r.Uops)
	}
	if r.Cycles <= 0 || r.TimeSeconds <= 0 {
		t.Fatal("no cycles")
	}
	// Breakdown fractions must sum to ~1.
	l1 := r.Level1
	sum := l1.Retiring + l1.FrontEndBound + l1.BadSpeculation + l1.BackEndBound
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("level-1 fractions sum to %v", sum)
	}
	// Hot loop: almost everything should come from the DSB.
	if r.DSBCoverage < 0.9 {
		t.Fatalf("hot loop DSB coverage = %v", r.DSBCoverage)
	}
	if !strings.Contains(r.String(), "Top-Down") {
		t.Fatal("String() malformed")
	}
}

func TestMachineColdCodeThrashesDSB(t *testing.T) {
	m := NewMachine(testConfig())
	// Walk 1MB of code cyclically: reuse distance >> DSB reach.
	for pass := 0; pass < 4; pass++ {
		for off := uint64(0); off < 1<<20; off += 32 {
			m.FetchBlock(0x40_0000+off, 32, 8)
		}
	}
	r := m.Report()
	if r.DSBCoverage > 0.05 {
		t.Fatalf("cyclic walk should thrash the DSB, coverage %v", r.DSBCoverage)
	}
	if r.Level1.MITE <= r.Level1.DSB {
		t.Fatal("MITE should dominate bandwidth-bound cycles")
	}
}

func TestMachineITLBAndHugePages(t *testing.T) {
	walk := func(hp HugePageMode) float64 {
		cfg := testConfig()
		cfg.HugePages = hp
		cfg.THPCoverage = 1.0
		m := NewMachine(cfg)
		m.MapText(0x40_0000, 0x40_0000+64<<20)
		// Touch 2048 distinct 4KB pages repeatedly: far beyond iTLB+STLB.
		for pass := 0; pass < 3; pass++ {
			for p := uint64(0); p < 2048; p++ {
				m.FetchBlock(0x40_0000+p*4096, 32, 4)
			}
		}
		return m.Report().TopDown.FELatITLB
	}
	base := walk(PagesBase)
	thp := walk(PagesTHP)
	ehp := walk(PagesEHP)
	if base <= 0 {
		t.Fatal("no iTLB pressure with base pages")
	}
	if thp > base*0.4 || ehp > base*0.4 {
		t.Fatalf("huge pages should slash iTLB stalls: base %.0f thp %.0f ehp %.0f", base, thp, ehp)
	}
}

func TestMachineBranchAccounting(t *testing.T) {
	m := NewMachine(testConfig())
	// Unknown-target indirect branches charge FE latency, not bad-spec.
	for i := 0; i < 100; i++ {
		m.Branch(0x1000+uint64(i)*8, uint64(0x9000+i*64), true, true)
	}
	r := m.Report()
	if r.TopDown.FELatUnknownBranch == 0 {
		t.Fatal("no BAClear cost")
	}
	if r.TopDown.BadSpecCycles != 0 {
		t.Fatal("indirect misses should not be bad speculation")
	}
	// Noisy conditional branches create bad speculation.
	m2 := NewMachine(testConfig())
	for i := 0; i < 2000; i++ {
		m2.Branch(0x1000, 0x2000, i%3 == 0, false)
	}
	if m2.Report().TopDown.BadSpecCycles == 0 {
		t.Fatal("no mispredict cost")
	}
}

func TestMachineDataPathAndStreams(t *testing.T) {
	cfg := testConfig()
	m := NewMachine(cfg)
	m.MapData(0x10_0000, 0x10_0000+64<<20)
	// Sequential sweep: the stream prefetcher should hide most of it.
	for i := uint64(0); i < 20000; i++ {
		m.Data(0x10_0000+i*64, 8, false)
	}
	seq := m.Report().TopDown.BEMemCycles

	m2 := NewMachine(cfg)
	m2.MapData(0x10_0000, 0x10_0000+64<<20)
	rng := uint64(12345)
	for i := 0; i < 20000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		m2.Data(0x10_0000+(rng>>11)%(64<<20), 8, false)
	}
	rand := m2.Report().TopDown.BEMemCycles
	if seq >= rand/4 {
		t.Fatalf("sequential (%0.f) should be far cheaper than random (%0.f)", seq, rand)
	}
	if m2.Report().DRAMBytes == 0 {
		t.Fatal("random misses should reach DRAM")
	}
}

func TestMachineLLCOptional(t *testing.T) {
	cfg := testConfig()
	cfg.LLC = CacheGeom{} // two-level host
	m := NewMachine(cfg)
	m.Data(0x5000, 8, false)
	r := m.Report()
	if r.LLCOccupancyBytes == 0 {
		t.Fatal("occupancy should fall back to L2")
	}
}

func TestConfigValidation(t *testing.T) {
	ok := testConfig()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	vipt := testConfig()
	vipt.L1I = CacheGeom{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64} // 8KB way > 4KB page
	if err := vipt.Validate(); err == nil || !strings.Contains(err.Error(), "VIPT") {
		t.Fatalf("VIPT violation not caught: %v", err)
	}
	vipt.SkipVIPTCheck = true
	if err := vipt.Validate(); err != nil {
		t.Fatalf("SkipVIPTCheck ignored: %v", err)
	}
	bad := testConfig()
	bad.FreqGHz = 0
	if bad.Validate() == nil {
		t.Fatal("zero frequency accepted")
	}
	bad = testConfig()
	bad.MLPOverlap = 1.0
	if bad.Validate() == nil {
		t.Fatal("MLP 1.0 accepted")
	}
	bad = testConfig()
	bad.IssueWidth = 0
	if bad.Validate() == nil {
		t.Fatal("zero width accepted")
	}
}

func TestHugePageModeString(t *testing.T) {
	if PagesBase.String() != "base" || PagesTHP.String() != "thp" || PagesEHP.String() != "ehp" {
		t.Fatal("mode strings wrong")
	}
	if !strings.Contains(HugePageMode(9).String(), "9") {
		t.Fatal("unknown mode string")
	}
}
