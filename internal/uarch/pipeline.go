package uarch

import (
	"context"
	"runtime/pprof"

	"gem5prof/internal/ring"
)

// This file is the consumer half of the pipelined co-simulation: decoding
// batched ring.Records back into Machine sink calls and running the drain
// loop on its own goroutine. Because the ring is strict-FIFO SPSC and
// every record maps to exactly one sink call, the Machine's state after a
// drain is bit-identical to what the same event stream produces when
// applied synchronously (the differential test in internal/core proves
// this end to end).

// ApplyRecord decodes one host-trace record into the corresponding sink
// call.
func (m *Machine) ApplyRecord(rec *ring.Record) {
	switch rec.Op {
	case ring.OpFetch:
		m.FetchBlock(rec.Addr, rec.A, rec.B)
	case ring.OpBranch:
		m.Branch(rec.Addr, rec.Arg,
			rec.Flags&ring.FlagTaken != 0, rec.Flags&ring.FlagIndirect != 0)
	case ring.OpData:
		m.Data(rec.Addr, rec.A, rec.Flags&ring.FlagWrite != 0)
	}
}

// ApplyBatch decodes a whole batch in record order.
func (m *Machine) ApplyBatch(b *ring.Batch) {
	recs := b.Records()
	for i := range recs {
		m.ApplyRecord(&recs[i])
	}
}

// Consumer drives a Machine from a trace ring on a dedicated goroutine.
// Lifecycle: Start once, then — after the producer has flushed and closed
// the ring — Wait, which is the flush-on-report barrier: once Wait
// returns, every published record has been applied and the Machine may be
// Report()ed (or otherwise read) safely from the caller's goroutine.
type Consumer struct {
	m    *Machine
	r    *ring.Ring
	done chan struct{}
}

// NewConsumer pairs m with r; call Start to begin draining.
func NewConsumer(m *Machine, r *ring.Ring) *Consumer {
	return &Consumer{m: m, r: r}
}

// Start launches the drain goroutine. The goroutine carries the pprof
// label cosim-stage=uarch-consumer so -cpuprofile output attributes its
// time separately from the producer's. Start is not idempotent-safe
// against concurrent calls; call it once from the producer's goroutine.
func (c *Consumer) Start() {
	if c.done != nil {
		return
	}
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		pprof.Do(context.Background(),
			pprof.Labels("cosim-stage", "uarch-consumer"),
			func(context.Context) {
				for {
					b := c.r.Acquire()
					if b == nil {
						return
					}
					c.m.ApplyBatch(b)
					c.r.Release()
				}
			})
	}()
}

// Wait blocks until the drain goroutine has exited — i.e. until the ring
// was closed and every published batch applied (or the consumer aborted).
// After Wait the caller has exclusive access to the Machine again. Wait on
// a never-Started consumer returns immediately.
func (c *Consumer) Wait() {
	if c.done != nil {
		<-c.done
	}
}
