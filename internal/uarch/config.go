package uarch

import "fmt"

// HugePageMode selects how the host backs the simulator's code segment,
// reproducing the paper's Sec. V-A system tuning.
type HugePageMode int

// Huge-page modes for the text segment.
const (
	// PagesBase backs code with the platform's base page size.
	PagesBase HugePageMode = iota
	// PagesTHP backs the hottest part of the code with transparent 2MB
	// pages (Intel iodlr-style remapping of a subset of the text).
	PagesTHP
	// PagesEHP backs the whole binary with explicit huge pages
	// (libhugetlbfs-style, with a sub-optimal layout).
	PagesEHP
)

func (m HugePageMode) String() string {
	switch m {
	case PagesBase:
		return "base"
	case PagesTHP:
		return "thp"
	case PagesEHP:
		return "ehp"
	}
	return fmt.Sprintf("HugePageMode(%d)", int(m))
}

// Config describes one host machine (one column of the paper's Table II, or
// one FireSim configuration from Table I / Fig. 14).
type Config struct {
	Name string
	// FreqGHz is the core clock. Time = cycles / (FreqGHz * 1e9).
	FreqGHz float64
	// PageBytes is the base virtual-memory page size (4KB Xeon, 16KB M1).
	PageBytes uint64
	// HugePages selects text-segment backing; HugePageBytes is the huge
	// page size (2MB); THPCoverage is the fraction of text remapped by THP.
	HugePages     HugePageMode
	HugePageBytes uint64
	THPCoverage   float64

	// Cache hierarchy. L1 caches are VIPT-constrained (validated).
	L1I, L1D CacheGeom
	L2, LLC  CacheGeom
	// Latencies in cycles (L2/LLC) and nanoseconds (DRAM).
	L2Cycles  float64
	LLCCycles float64
	DRAMNanos float64
	// PeakDRAMBytesPerSec for bandwidth-utilization reporting.
	PeakDRAMBytesPerSec float64

	// TLBs.
	ITLBEntries, DTLBEntries, STLBEntries int
	STLBCycles                            float64
	WalkCycles                            float64

	// Front end.
	IssueWidth  float64 // rename/retire slots per cycle
	DecodeWidth float64 // legacy decoder (MITE) uops per cycle
	DSBUops     int     // uop cache capacity (0 = none, e.g. M1)
	DSBWidth    float64 // uop-cache delivery rate
	// Branch handling.
	BPTableEntries, BTBEntries int
	MispredictCycles           float64 // total flush cost
	ResteerCycles              float64 // front-end refill share of a flush
	BAClearCycles              float64 // unknown-target (indirect) resteer

	// Back end.
	MLPOverlap    float64 // fraction of data-miss latency hidden by MLP/OoO
	SkipVIPTCheck bool    // ablation A2: allow non-VIPT L1 geometries
}

// Validate checks internal consistency, including the VIPT constraint the
// paper leans on: one L1 way must not exceed the page size.
func (c *Config) Validate() error {
	if c.FreqGHz <= 0 || c.PageBytes == 0 {
		return fmt.Errorf("uarch: %s: frequency and page size required", c.Name)
	}
	if !c.SkipVIPTCheck {
		for _, l1 := range []struct {
			name string
			g    CacheGeom
		}{{"L1I", c.L1I}, {"L1D", c.L1D}} {
			wayBytes := l1.g.SizeBytes / uint64(l1.g.Ways)
			if wayBytes > c.PageBytes {
				return fmt.Errorf("uarch: %s: %s way (%d B) exceeds page size (%d B): VIPT constraint violated",
					c.Name, l1.name, wayBytes, c.PageBytes)
			}
		}
	}
	if c.IssueWidth <= 0 || c.DecodeWidth <= 0 {
		return fmt.Errorf("uarch: %s: widths required", c.Name)
	}
	if c.MLPOverlap < 0 || c.MLPOverlap >= 1 {
		return fmt.Errorf("uarch: %s: MLPOverlap must be in [0,1)", c.Name)
	}
	return nil
}
