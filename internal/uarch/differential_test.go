package uarch

// Differential tests: the flattened cache and the O(1) exact-LRU TLB
// must be indistinguishable from the naive implementations they replaced
// — hit-for-hit, miss-for-miss, and victim-for-victim — on randomized
// access streams. The naive models below are verbatim ports of the
// pre-refactor structures (slice-of-slices sets with a per-access
// popcount; scan-based fully-associative LRU entry file).

import (
	"math/rand"
	"testing"
)

// naivePopcount is the hand-rolled bit count the old cache used on every
// access; kept here so the reference model is a faithful replica.
func naivePopcount(mask uint64) uint {
	var n uint
	for mask != 0 {
		n += uint(mask & 1)
		mask >>= 1
	}
	return n
}

// naiveCache is the pre-refactor set-associative LRU cache.
type naiveCache struct {
	sets     [][]cacheLine
	setMask  uint64
	lineBits uint
	seq      uint64
}

func newNaiveCache(g CacheGeom) *naiveCache {
	sets := g.Sets()
	c := &naiveCache{setMask: sets - 1}
	for g.LineBytes>>c.lineBits > 1 {
		c.lineBits++
	}
	c.sets = make([][]cacheLine, sets)
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, g.Ways)
	}
	return c
}

// access returns (hit, evictedTag, evictedValid) for one reference.
func (c *naiveCache) access(addr uint64) (bool, uint64, bool) {
	block := addr >> c.lineBits
	set := c.sets[block&c.setMask]
	tag := block >> naivePopcount(c.setMask)
	c.seq++
	victim := &set[0]
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.lru = c.seq
			return true, 0, false
		}
		if !l.valid {
			victim = l
		} else if victim.valid && l.lru < victim.lru {
			victim = l
		}
	}
	evTag, evOK := victim.tag, victim.valid
	victim.tag = tag
	victim.valid = true
	victim.lru = c.seq
	return false, evTag, evOK
}

// naiveTLB is the pre-refactor scan-based fully-associative LRU TLB.
type naiveTLB struct {
	entries []struct {
		page, lru uint64
		valid     bool
	}
	seq uint64
}

func newNaiveTLB(entries int) *naiveTLB {
	t := &naiveTLB{}
	t.entries = make([]struct {
		page, lru uint64
		valid     bool
	}, entries)
	return t
}

func (t *naiveTLB) access(page uint64) (bool, uint64, bool) {
	t.seq++
	victim := &t.entries[0]
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			e.lru = t.seq
			return true, 0, false
		}
		if !e.valid {
			victim = e
		} else if victim.valid && e.lru < victim.lru {
			victim = e
		}
	}
	evPage, evOK := victim.page, victim.valid
	victim.page = page
	victim.valid = true
	victim.lru = t.seq
	return false, evPage, evOK
}

// TestCacheDifferential drives the flattened cache and the naive
// reference with identical randomized streams across several geometries,
// comparing hit/miss and eviction victims on every access.
func TestCacheDifferential(t *testing.T) {
	geoms := []CacheGeom{
		{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64},   // 8 sets
		{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},  // L1-like
		{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64},  // L2-like
		{SizeBytes: 48 << 10, Ways: 12, LineBytes: 64}, // non-power-of-two ways
		{SizeBytes: 2 << 10, Ways: 1, LineBytes: 32},   // direct-mapped
	}
	for gi, g := range geoms {
		c := newCache(g)
		ref := newNaiveCache(g)
		rng := rand.New(rand.NewSource(int64(gi) + 42))
		footprint := 4 * g.SizeBytes
		for i := 0; i < 60000; i++ {
			addr := rng.Uint64() % footprint
			if rng.Intn(3) == 0 {
				addr = rng.Uint64() % (g.SizeBytes / 4) // hot subset
			}
			c.evictedOK = false
			gotHit := c.access(addr)
			wantHit, wantEv, wantEvOK := ref.access(addr)
			if gotHit != wantHit || c.evictedOK != wantEvOK ||
				(wantEvOK && c.evictedTag != wantEv) {
				t.Fatalf("geom %d step %d addr %#x: got (hit=%v ev=%#x,%v) want (hit=%v ev=%#x,%v)",
					gi, i, addr, gotHit, c.evictedTag, c.evictedOK, wantHit, wantEv, wantEvOK)
			}
			// probe must agree with a state-preserving membership check.
			p := rng.Uint64() % footprint
			if c.probe(p) != refProbe(ref, p) {
				t.Fatalf("geom %d step %d: probe(%#x) disagrees", gi, i, p)
			}
		}
	}
}

func refProbe(c *naiveCache, addr uint64) bool {
	block := addr >> c.lineBits
	set := c.sets[block&c.setMask]
	tag := block >> naivePopcount(c.setMask)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// TestTLBDifferential drives the O(1) TLB and the naive scan with
// identical randomized page streams across the entry counts the host
// configs use (64-entry L1 TLBs up to the 1.5k-entry Xeon STLB).
func TestTLBDifferential(t *testing.T) {
	for _, entries := range []int{1, 2, 64, 128, 1536} {
		for _, pages := range []uint64{4, uint64(entries), uint64(3 * entries)} {
			tl := newTLB(entries)
			ref := newNaiveTLB(entries)
			rng := rand.New(rand.NewSource(int64(entries)*31 + int64(pages)))
			for i := 0; i < 40000; i++ {
				page := (rng.Uint64() % pages) << 12
				tl.evictedOK = false
				gotHit := tl.access(page)
				wantHit, wantEv, wantEvOK := ref.access(page)
				if gotHit != wantHit || tl.evictedOK != wantEvOK ||
					(wantEvOK && tl.evictedPage != wantEv) {
					t.Fatalf("entries=%d pages=%d step %d page %#x: got (hit=%v ev=%#x,%v) want (hit=%v ev=%#x,%v)",
						entries, pages, i, page, gotHit, tl.evictedPage, tl.evictedOK,
						wantHit, wantEv, wantEvOK)
				}
			}
			if tl.MissRate() <= 0 || tl.MissRate() > 1 {
				t.Fatalf("entries=%d: miss rate %v out of range", entries, tl.MissRate())
			}
		}
	}
}

// TestPageOfMemoization checks the memoized + binary-search pageOf
// against a plain first-match scan over the insertion-ordered regions,
// including THP split text and out-of-region fallback addresses.
func TestPageOfMemoization(t *testing.T) {
	cfg := testConfig()
	cfg.HugePages = PagesTHP
	cfg.THPCoverage = 0.6
	m := NewMachine(cfg)
	m.MapText(0x40_0000, 0x40_0000+64<<20)
	m.MapData(0x7f00_0000_0000, 0x7f00_0000_0000+32<<20)
	m.MapData(0x7fff_ff00_0000-(1<<20), 0x7fff_ff00_0000+(1<<12))

	scan := func(addr uint64) uint64 {
		for _, r := range m.regions {
			if addr >= r.base && addr < r.end {
				return addr &^ (r.pageBytes - 1)
			}
		}
		return addr &^ (m.cfg.PageBytes - 1)
	}

	rng := rand.New(rand.NewSource(99))
	spans := [][2]uint64{
		{0x40_0000, 0x40_0000 + 64<<20},
		{0x7f00_0000_0000, 0x7f00_0000_0000 + 32<<20},
		{0x7fff_ff00_0000 - (1 << 20), 0x7fff_ff00_0000 + (1 << 12)},
		{0, 1 << 30}, // mostly unmapped
	}
	for i := 0; i < 200000; i++ {
		s := spans[rng.Intn(len(spans))]
		addr := s[0] + rng.Uint64()%(s[1]-s[0])
		if got, want := m.pageOf(addr), scan(addr); got != want {
			t.Fatalf("pageOf(%#x) = %#x, want %#x", addr, got, want)
		}
	}
}
