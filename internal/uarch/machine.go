package uarch

import "sort"

// TopDown is the level-1/level-2 cycle accounting of the VTune Top-Down
// method: every modeled cycle lands in exactly one bucket.
type TopDown struct {
	RetiringCycles float64

	// Front-end bandwidth.
	FEBandwidthMITE float64
	FEBandwidthDSB  float64
	// Front-end latency.
	FELatICache            float64
	FELatITLB              float64
	FELatMispredictResteer float64
	FELatClearResteer      float64
	FELatUnknownBranch     float64

	BadSpecCycles float64

	BEMemCycles  float64
	BECoreCycles float64
}

// FEBandwidth returns the total front-end bandwidth-bound cycles.
func (t *TopDown) FEBandwidth() float64 { return t.FEBandwidthMITE + t.FEBandwidthDSB }

// FELatency returns the total front-end latency-bound cycles.
func (t *TopDown) FELatency() float64 {
	return t.FELatICache + t.FELatITLB + t.FELatMispredictResteer +
		t.FELatClearResteer + t.FELatUnknownBranch
}

// FrontEndBound returns all front-end-bound cycles.
func (t *TopDown) FrontEndBound() float64 { return t.FEBandwidth() + t.FELatency() }

// BackEndBound returns all back-end-bound cycles.
func (t *TopDown) BackEndBound() float64 { return t.BEMemCycles + t.BECoreCycles }

// Total returns all modeled cycles.
func (t *TopDown) Total() float64 {
	return t.RetiringCycles + t.FrontEndBound() + t.BadSpecCycles + t.BackEndBound()
}

// pageRegion maps an address range to a page size.
type pageRegion struct {
	base, end uint64
	pageBytes uint64
}

// Machine is one modeled host machine consuming the hostmodel micro-event
// stream. It implements hostmodel.Sink.
type Machine struct {
	cfg Config

	l1i, l1d, l2, llc *cache
	itlb, dtlb, stlb  *tlb
	dsb               *cache
	bp                *gshare

	// regions holds page regions in insertion order (the documented
	// first-match-wins contract); sorted holds the same regions ordered by
	// base for the O(log n) lookup, valid only while they stay disjoint.
	regions    []pageRegion
	sorted     []pageRegion
	overlapped bool
	lastRegion int // memo: index into sorted of the last region hit

	td         TopDown
	uops       uint64
	uopsDSB    uint64
	uopsMITE   uint64
	lastWasDSB bool

	dataReads  uint64
	dataWrites uint64
	dramBytes  uint64
	branches   uint64

	// streams are hardware stream-prefetcher trackers: ascending sequences
	// of line addresses whose misses are hidden.
	streams    [16]uint64
	streamNext int
	prefetched uint64
}

// NewMachine builds a host machine model from a validated config.
func NewMachine(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		cfg:  cfg,
		l1i:  newCache(cfg.L1I),
		l1d:  newCache(cfg.L1D),
		l2:   newCache(cfg.L2),
		itlb: newTLB(cfg.ITLBEntries),
		dtlb: newTLB(cfg.DTLBEntries),
		stlb: newTLB(cfg.STLBEntries),
		bp:   newGshare(cfg.BPTableEntries, cfg.BTBEntries),
	}
	if cfg.LLC.SizeBytes > 0 {
		// Two-level hosts (the FireSim Rocket) have no LLC.
		m.llc = newCache(cfg.LLC)
	}
	if cfg.DSBUops > 0 {
		// The DSB holds decoded uops for 32-byte code windows; its
		// effective reach in code bytes is about one byte per uop capacity
		// once per-window fragmentation is accounted for, so only loops of
		// roughly a kilobyte live entirely out of it.
		reach := uint64(cfg.DSBUops)
		ways := 8
		for reach/(uint64(ways)*32)&(reach/(uint64(ways)*32)-1) != 0 {
			reach += 32 * uint64(ways) // round up to a power-of-two set count
		}
		m.dsb = newCache(CacheGeom{SizeBytes: reach, Ways: ways, LineBytes: 32})
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// MapText registers the simulator's code segment, applying the configured
// huge-page mode.
func (m *Machine) MapText(base, end uint64) {
	switch m.cfg.HugePages {
	case PagesTHP:
		// THP remaps the hottest prefix of the text to huge pages.
		split := base + uint64(float64(end-base)*m.cfg.THPCoverage)
		split &^= m.cfg.HugePageBytes - 1
		if split > base {
			m.addRegion(pageRegion{base, split, m.cfg.HugePageBytes})
		}
		m.addRegion(pageRegion{split, end, m.cfg.PageBytes})
	case PagesEHP:
		m.addRegion(pageRegion{base, end, m.cfg.HugePageBytes})
	default:
		m.addRegion(pageRegion{base, end, m.cfg.PageBytes})
	}
}

// MapData registers a data range with the base page size.
func (m *Machine) MapData(base, end uint64) {
	m.addRegion(pageRegion{base, end, m.cfg.PageBytes})
}

// addRegion records r in insertion order and maintains the sorted index
// used by the fast pageOf path. Overlapping registrations (none of the
// current callers produce any) fall back to the insertion-order scan so
// the documented first-match-wins behaviour is preserved exactly.
func (m *Machine) addRegion(r pageRegion) {
	m.regions = append(m.regions, r)
	if r.end <= r.base {
		return // empty region: can never match an address
	}
	i := sort.Search(len(m.sorted), func(i int) bool { return m.sorted[i].base > r.base })
	if (i > 0 && m.sorted[i-1].end > r.base) || (i < len(m.sorted) && r.end > m.sorted[i].base) {
		m.overlapped = true
		return
	}
	m.sorted = append(m.sorted, pageRegion{})
	copy(m.sorted[i+1:], m.sorted[i:])
	m.sorted[i] = r
	m.lastRegion = 0
}

func (m *Machine) pageOf(addr uint64) uint64 {
	if m.overlapped {
		for _, r := range m.regions {
			if addr >= r.base && addr < r.end {
				return addr &^ (r.pageBytes - 1)
			}
		}
		return addr &^ (m.cfg.PageBytes - 1)
	}
	// Fast path: consecutive fetches and data touches overwhelmingly land
	// in the region hit last time.
	rs := m.sorted
	if lr := m.lastRegion; lr < len(rs) {
		if r := &rs[lr]; addr >= r.base && addr < r.end {
			return addr &^ (r.pageBytes - 1)
		}
	}
	// Miss path: binary search for the greatest base <= addr. Regions are
	// disjoint here, so it is the only candidate.
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rs[mid].base > addr {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo > 0 {
		if r := &rs[lo-1]; addr >= r.base && addr < r.end {
			m.lastRegion = lo - 1
			return addr &^ (r.pageBytes - 1)
		}
	}
	return addr &^ (m.cfg.PageBytes - 1)
}

// missLatency walks L2 → LLC → DRAM for one missing line and returns the
// latency in cycles.
func (m *Machine) missLatency(line uint64) float64 {
	if m.l2.access(line) {
		return m.cfg.L2Cycles
	}
	if m.llc != nil {
		if m.llc.access(line) {
			return m.cfg.LLCCycles
		}
		m.dramBytes += m.cfg.LLC.LineBytes
	} else {
		m.dramBytes += m.cfg.L2.LineBytes
	}
	return m.cfg.DRAMNanos * m.cfg.FreqGHz
}

// FetchBlock implements hostmodel.Sink.
func (m *Machine) FetchBlock(addr uint64, bytes uint32, uops uint32) {
	lineB := m.cfg.L1I.LineBytes
	first := addr &^ (lineB - 1)
	last := (addr + uint64(bytes) - 1) &^ (lineB - 1)
	for line := first; line <= last; line += lineB {
		if !m.l1i.access(line) {
			m.td.FELatICache += m.missLatency(line)
		}
	}
	// Instruction TLB on the first page touched.
	page := m.pageOf(addr)
	if !m.itlb.access(page) {
		cost := m.cfg.STLBCycles
		if !m.stlb.access(page) {
			cost += m.cfg.WalkCycles
		}
		m.td.FELatITLB += cost
	}

	// Uop supply: DSB hit streams decoded uops; otherwise the legacy
	// decode pipeline (MITE) limits bandwidth.
	u := float64(uops)
	fromDSB := false
	if m.dsb != nil {
		fromDSB = m.dsb.access(addr &^ 31)
	}
	if fromDSB {
		m.uopsDSB += uint64(uops)
		if d := u * (1/m.cfg.DSBWidth - 1/m.cfg.IssueWidth); d > 0 {
			m.td.FEBandwidthDSB += d
		}
		if !m.lastWasDSB {
			m.td.FEBandwidthDSB += 1.0 // MITE→DSB switch penalty
		}
	} else {
		m.uopsMITE += uint64(uops)
		if d := u * (1/m.cfg.DecodeWidth - 1/m.cfg.IssueWidth); d > 0 {
			m.td.FEBandwidthMITE += d
		}
		if m.lastWasDSB && m.dsb != nil {
			m.td.FEBandwidthMITE += 1.0 // DSB→MITE switch penalty
		}
	}
	m.lastWasDSB = fromDSB

	m.uops += uint64(uops)
	m.td.RetiringCycles += u / m.cfg.IssueWidth
	// Execution-port contention: a small per-uop core-bound tax.
	m.td.BECoreCycles += u * 0.005
}

// Branch implements hostmodel.Sink.
func (m *Machine) Branch(pc, target uint64, taken, indirect bool) {
	m.branches++
	if indirect {
		if !m.bp.indirect(pc, target) {
			// Unknown target: the front end stalls until the branch unit
			// resolves it (a BAClear), with no wrong-path execution.
			m.td.FELatUnknownBranch += m.cfg.BAClearCycles
		}
		return
	}
	if !m.bp.conditional(pc, taken) {
		// A real misprediction: wasted back-end slots plus the front-end
		// resteer to refill the pipe, and the machine-clear share.
		m.td.BadSpecCycles += m.cfg.MispredictCycles
		m.td.FELatMispredictResteer += m.cfg.ResteerCycles
		m.td.FELatClearResteer += 0.2 * m.cfg.ResteerCycles
	}
}

// Data implements hostmodel.Sink.
func (m *Machine) Data(addr uint64, size uint32, write bool) {
	if write {
		m.dataWrites++
	} else {
		m.dataReads++
	}
	page := m.pageOf(addr)
	if !m.dtlb.access(page) {
		cost := m.cfg.STLBCycles
		if !m.stlb.access(page) {
			cost += m.cfg.WalkCycles
		}
		m.td.BEMemCycles += cost
	}
	line := addr &^ (m.cfg.L1D.LineBytes - 1)
	if !m.l1d.access(line) {
		lat := m.missLatency(line)
		factor := 1 - m.cfg.MLPOverlap
		switch {
		case m.streamHit(line):
			// The stream prefetcher already issued this line: the demand
			// access pays only a residual L2-ish latency.
			m.prefetched++
			lat = m.cfg.L2Cycles * 0.3
		case write:
			// Stores retire before the miss completes; only buffer
			// pressure shows up.
			factor *= 0.4
		}
		m.td.BEMemCycles += lat * factor
	}
}

// streamHit reports whether line continues a tracked ascending stream, and
// trains the trackers.
func (m *Machine) streamHit(line uint64) bool {
	lb := m.cfg.L1D.LineBytes
	for i := range m.streams {
		if line == m.streams[i]+lb || line == m.streams[i]+2*lb {
			m.streams[i] = line
			return true
		}
	}
	// New potential stream replaces the oldest tracker.
	m.streams[m.streamNext] = line
	m.streamNext = (m.streamNext + 1) % len(m.streams)
	return false
}

var _ interface {
	FetchBlock(addr uint64, bytes uint32, uops uint32)
	Branch(pc, target uint64, taken, indirect bool)
	Data(addr uint64, size uint32, write bool)
} = (*Machine)(nil)

// Cycles returns the total modeled host cycles so far.
func (m *Machine) Cycles() float64 { return m.td.Total() }

// TimeSeconds returns modeled host seconds (the paper's simulation time
// metric).
func (m *Machine) TimeSeconds() float64 {
	return m.td.Total() / (m.cfg.FreqGHz * 1e9)
}
